#include "sim/network.h"

#include <gtest/gtest.h>

#include <vector>

#include "common/rng.h"
#include "sim/event_queue.h"

namespace cht::sim {
namespace {

struct Fixture {
  EventQueue queue;
  NetworkConfig config;
  std::vector<std::pair<RealTime, Message>> delivered;

  Network make(std::uint64_t seed = 1) {
    Network network(queue, Rng(seed), config);
    return network;
  }
};

Message make_msg(int from, int to, const std::string& type = "t") {
  Message m;
  m.from = ProcessId(from);
  m.to = ProcessId(to);
  m.type = type;
  return m;
}

TEST(NetworkTest, PostGstDelaysBoundedByDelta) {
  Fixture f;
  f.config.gst = RealTime::zero();
  f.config.delta = Duration::millis(5);
  f.config.delta_min = Duration::micros(100);
  Network network = f.make();
  network.set_deliver_fn([&](const Message& m) {
    f.delivered.emplace_back(f.queue.now(), m);
  });
  for (int i = 0; i < 200; ++i) network.send(make_msg(0, 1));
  RealTime start = f.queue.now();
  while (f.queue.step()) {
  }
  ASSERT_EQ(f.delivered.size(), 200u);
  for (const auto& [at, m] : f.delivered) {
    EXPECT_LE(at - start, Duration::millis(5));
    EXPECT_GE(at - start, Duration::micros(100));
  }
  EXPECT_EQ(network.stats().sent, 200);
  EXPECT_EQ(network.stats().delivered, 200);
  EXPECT_EQ(network.stats().dropped, 0);
}

TEST(NetworkTest, PreGstMessagesCanBeLost) {
  Fixture f;
  f.config.gst = RealTime::max();
  f.config.pre_gst_loss_probability = 0.5;
  Network network = f.make();
  int delivered = 0;
  network.set_deliver_fn([&](const Message&) { ++delivered; });
  for (int i = 0; i < 1000; ++i) network.send(make_msg(0, 1));
  while (f.queue.step()) {
  }
  EXPECT_GT(delivered, 300);
  EXPECT_LT(delivered, 700);
  EXPECT_EQ(network.stats().dropped, 1000 - delivered);
}

TEST(NetworkTest, InFlightMessagesRespectDeltaAfterGst) {
  // A message sent just before GST must arrive within delta after GST.
  Fixture f;
  f.config.gst = RealTime::zero() + Duration::millis(100);
  f.config.pre_gst_delay_max = Duration::seconds(10);  // would overshoot
  f.config.pre_gst_loss_probability = 0.0;
  Network network = f.make();
  RealTime arrival = RealTime::zero();
  network.set_deliver_fn([&](const Message&) { arrival = f.queue.now(); });
  f.queue.schedule(f.config.gst - Duration::millis(1),
                   [&] { network.send(make_msg(0, 1)); });
  while (f.queue.step()) {
  }
  EXPECT_LE(arrival, f.config.gst + f.config.delta);
}

TEST(NetworkTest, DownLinksDropMessages) {
  Fixture f;
  Network network = f.make();
  int delivered = 0;
  network.set_deliver_fn([&](const Message&) { ++delivered; });
  network.set_link_down(ProcessId(0), ProcessId(1), true);
  network.send(make_msg(0, 1));
  network.send(make_msg(1, 0));  // reverse direction unaffected
  while (f.queue.step()) {
  }
  EXPECT_EQ(delivered, 1);
  network.set_link_down(ProcessId(0), ProcessId(1), false);
  network.send(make_msg(0, 1));
  while (f.queue.step()) {
  }
  EXPECT_EQ(delivered, 2);
}

TEST(NetworkTest, IsolationCutsBothDirections) {
  Fixture f;
  Network network = f.make();
  int delivered = 0;
  network.set_deliver_fn([&](const Message&) { ++delivered; });
  network.set_process_isolated(ProcessId(1), true, 3);
  network.send(make_msg(0, 1));
  network.send(make_msg(1, 2));
  network.send(make_msg(0, 2));  // unaffected pair
  while (f.queue.step()) {
  }
  EXPECT_EQ(delivered, 1);
}

TEST(NetworkTest, PerTypeCounters) {
  Fixture f;
  Network network = f.make();
  network.set_deliver_fn([](const Message&) {});
  network.send(make_msg(0, 1, "a"));
  network.send(make_msg(0, 1, "a"));
  network.send(make_msg(0, 1, "b"));
  EXPECT_EQ(network.stats().sent_of("a"), 2);
  EXPECT_EQ(network.stats().sent_of("b"), 1);
  EXPECT_EQ(network.stats().sent_of("c"), 0);
}

TEST(NetworkTest, ExtraLinkDelayAppliesOnce) {
  Fixture f;
  f.config.delta = Duration::millis(1);
  f.config.delta_min = Duration::millis(1);
  Network network = f.make();
  std::vector<RealTime> arrivals;
  network.set_deliver_fn([&](const Message&) { arrivals.push_back(f.queue.now()); });
  network.add_link_delay(ProcessId(0), ProcessId(1), Duration::millis(50));
  network.send(make_msg(0, 1));
  network.send(make_msg(0, 1));
  while (f.queue.step()) {
  }
  ASSERT_EQ(arrivals.size(), 2u);
  std::sort(arrivals.begin(), arrivals.end());
  EXPECT_EQ(arrivals[0] - RealTime::zero(), Duration::millis(1));
  EXPECT_EQ(arrivals[1] - RealTime::zero(), Duration::millis(51));
}

}  // namespace
}  // namespace cht::sim
