// Viewstamped Replication baseline (Oki & Liskov PODC'88; Liskov & Cowling,
// "Viewstamped Replication Revisited", MIT-CSAIL-TR-2012-021).
//
// The paper's Section 5 contrasts two VR design points with its algorithm:
//   - *static leader order*: the leader of view v is process (v mod n).
//     "If the next several processes to become leaders based on the IDs are
//     partitioned away from the majority, the system will cycle through a
//     succession of ineffective views before it reaches one whose leader
//     can commit operations" — measurable here (see bench_failover);
//   - *reads treated like all other operations*: every read goes through
//     the full Prepare/PrepareOK round, so reads are neither local nor fast.
//
// Scope: normal operation (Prepare/PrepareOK with in-order log append,
// commit on f+1, piggybacked commit numbers), view changes
// (StartViewChange/DoViewChange/StartView), and state transfer for lagging
// replicas (NewState). Application recovery protocol and reconfiguration
// are out of scope.
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <vector>

#include "client/gateway.h"
#include "common/time.h"
#include "common/types.h"
#include "metrics/registry.h"
#include "metrics/span.h"
#include "object/object.h"
#include "sim/process.h"

namespace cht::vr {

struct VrConfig {
  Duration heartbeat_interval = Duration::millis(10);   // leader commit msgs
  Duration view_change_timeout = Duration::millis(100); // follower patience
  Duration client_retry = Duration::millis(40);

  static VrConfig defaults_for(Duration delta) {
    VrConfig c;
    c.heartbeat_interval = delta;
    c.view_change_timeout = 10 * delta;
    c.client_retry = 4 * delta;
    return c;
  }
};

struct VrLogEntry {
  OperationId id;
  object::Operation op;
  bool operator==(const VrLogEntry&) const = default;
};

namespace msg {

inline constexpr const char* kRequest = "vr.request";
inline constexpr const char* kPrepare = "vr.prepare";
inline constexpr const char* kPrepareOk = "vr.prepareok";
inline constexpr const char* kCommit = "vr.commit";
inline constexpr const char* kStartViewChange = "vr.startviewchange";
inline constexpr const char* kDoViewChange = "vr.doviewchange";
inline constexpr const char* kStartView = "vr.startview";
inline constexpr const char* kGetState = "vr.getstate";
inline constexpr const char* kNewState = "vr.newstate";
inline constexpr const char* kRecovery = "vr.recovery";
inline constexpr const char* kRecoveryResponse = "vr.recoveryresponse";

struct Request {
  OperationId id;
  object::Operation op;
};

struct Prepare {
  std::int64_t view = 0;
  std::int64_t op_number = 0;        // number of the LAST entry in `entries`
  std::vector<VrLogEntry> entries;  // suffix starting after follower's ack
  std::int64_t commit_number = 0;
};

struct PrepareOk {
  std::int64_t view = 0;
  std::int64_t op_number = 0;
};

struct Commit {
  std::int64_t view = 0;
  std::int64_t commit_number = 0;
};

struct StartViewChange {
  std::int64_t view = 0;
};

struct DoViewChange {
  std::int64_t view = 0;
  std::vector<VrLogEntry> log;
  std::int64_t last_normal_view = 0;
  std::int64_t op_number = 0;
  std::int64_t commit_number = 0;
};

struct StartView {
  std::int64_t view = 0;
  std::vector<VrLogEntry> log;
  std::int64_t op_number = 0;
  std::int64_t commit_number = 0;
};

struct GetState {
  std::int64_t view = 0;
  std::int64_t op_number = 0;  // requester's last op
};

struct NewState {
  std::int64_t view = 0;
  std::vector<VrLogEntry> suffix;  // entries after the requested op_number
  std::int64_t op_number = 0;
  std::int64_t commit_number = 0;
};

// VR Revisited sec. 4.3 recovery protocol: VR keeps no stable storage at
// all; a restarted replica re-learns its state from a quorum, with a nonce
// tying responses to this particular recovery attempt (a response to an
// earlier, pre-crash attempt must not be mistaken for a current one).
struct Recovery {
  std::uint64_t nonce = 0;
};

struct RecoveryResponse {
  std::uint64_t nonce = 0;
  std::int64_t view = 0;
  // Only the primary of `view` ships its log (and the fields below are only
  // meaningful with it); follower responses just certify the view count.
  bool is_primary = false;
  std::vector<VrLogEntry> log;
  std::int64_t op_number = 0;
  std::int64_t commit_number = 0;
};

}  // namespace msg

class VrReplica : public sim::Process {
 public:
  using Callback = std::function<void(const object::Response&)>;
  enum class Status { kNormal, kViewChange, kRecovering };

  VrReplica(std::shared_ptr<const object::ObjectModel> model, VrConfig config);

  // Client API: VR treats reads and RMWs identically. Returns the
  // operation's id for harness-side durability accounting.
  OperationId submit(object::Operation op, Callback callback);

  void on_start() override;
  // VR Revisited sec. 4.3: rejoin via the nonce-based recovery protocol —
  // broadcast Recovery, wait for a majority of RecoveryResponses including
  // one from the primary of the newest view seen, adopt its log. No stable
  // storage involved; the replica takes no protocol steps while recovering.
  void on_restart() override;
  void on_message(const sim::Message& message) override;

  struct Stats {
    std::int64_t ops_submitted = 0;
    std::int64_t ops_completed = 0;
    std::int64_t view_changes_started = 0;
    std::int64_t views_led = 0;
  };

  std::int64_t view() const { return view_; }
  Status status() const { return status_; }
  bool is_primary() const {
    return status_ == Status::kNormal && primary_of(view_) == id();
  }
  std::int64_t commit_number() const { return commit_number_; }
  std::size_t log_size() const { return log_.size(); }
  const std::vector<VrLogEntry>& log() const { return log_; }
  const Stats& stats() const { return stats_; }
  const object::ObjectState& applied_state() const { return *state_; }

  // Observability: view-change duration span (see docs/OBSERVABILITY.md).
  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

  // Replica-side endpoint for networked clients (src/client/): everything —
  // reads included — is accepted only at the primary of a normal view;
  // other replicas redirect at primary_of(view).
  client::ReplicaGateway& client_gateway() { return gateway_; }

 private:
  struct PendingClientOp {
    object::Operation op;
    Callback callback;
    sim::EventHandle retry_timer;
  };

  ProcessId primary_of(std::int64_t view) const {
    return ProcessId(static_cast<int>(view % cluster_size()));
  }
  int majority() const { return cluster_size() / 2 + 1; }
  std::int64_t op_number() const {
    return static_cast<std::int64_t>(log_.size());
  }

  // Normal operation.
  void on_request(ProcessId from, const msg::Request& request);
  void on_prepare(ProcessId from, const msg::Prepare& prepare);
  void on_prepare_ok(ProcessId from, const msg::PrepareOk& ok);
  void on_commit(ProcessId from, const msg::Commit& commit);
  void advance_commit(std::int64_t to);
  void apply_committed();
  void heartbeat_tick();
  void send_prepare_to(ProcessId to);

  // View changes.
  void reset_view_timer();
  void suspect_primary();
  void begin_view_change(std::int64_t new_view);
  void end_viewchange_span();
  void on_start_view_change(ProcessId from, const msg::StartViewChange& m);
  void maybe_send_do_view_change();
  void on_do_view_change(ProcessId from, const msg::DoViewChange& m);
  void maybe_become_primary();
  void on_start_view(ProcessId from, const msg::StartView& m);

  // State transfer.
  void on_get_state(ProcessId from, const msg::GetState& m);
  void on_new_state(const msg::NewState& m);
  void truncate_uncommitted_tail();

  // Crash recovery (sec. 4.3).
  void seed_op_sequence();
  void recovery_tick();
  void on_recovery(ProcessId from, const msg::Recovery& m);
  void on_recovery_response(ProcessId from, const msg::RecoveryResponse& m);
  void maybe_finish_recovery();

  // Clients. A submitting process completes its own operation when it
  // applies the corresponding log entry (clients are colocated with
  // replicas, as in the other protocols here).
  void client_send(const OperationId& id);

  std::shared_ptr<const object::ObjectModel> model_;
  VrConfig config_;

  std::int64_t view_ = 0;
  Status status_ = Status::kNormal;
  std::int64_t last_normal_view_ = 0;
  std::vector<VrLogEntry> log_;
  // Ordered (not hashed): deterministic by construction (detlint rule D3).
  std::set<OperationId> ids_in_log_;
  std::int64_t commit_number_ = 0;
  std::int64_t applied_ = 0;
  std::unique_ptr<object::ObjectState> state_;

  // Primary state.
  std::vector<std::int64_t> acked_op_;  // per replica, highest PrepareOk
  sim::EventHandle heartbeat_timer_;

  // View-change state.
  std::set<int> svc_votes_;                       // StartViewChange senders
  std::map<int, msg::DoViewChange> dvc_received_; // by sender, for view_
  bool dvc_sent_ = false;                         // one DoViewChange per view
  sim::EventHandle view_timer_;

  // Recovery state (sec. 4.3).
  std::uint64_t recovery_nonce_ = 0;
  std::map<int, msg::RecoveryResponse> recovery_responses_;  // by sender
  sim::EventHandle recovery_timer_;

  // Client state.
  std::int64_t op_seq_ = 0;
  std::map<OperationId, PendingClientOp> pending_ops_;

  Stats stats_;

  // Observability (write-only from protocol code).
  metrics::Registry metrics_;
  metrics::Span span_viewchange_;  // first StartViewChange -> normal status
  metrics::Counter* c_recoveries_;
  metrics::Counter* c_recovered_entries_;
  metrics::Span span_recovery_;    // restart -> recovery protocol finished

  // Networked-client endpoint (declared after metrics_: ctor order).
  client::ReplicaGateway gateway_;
};

}  // namespace cht::vr
