#include "sim/simulation.h"

#include <utility>

namespace cht::sim {

Simulation::Simulation(SimulationConfig config)
    : config_(config),
      rng_(config.seed),
      network_(queue_, rng_.split(), config.network) {
  network_.set_deliver_fn([this](const Message& m) { deliver(m); });
  network_.set_trace(&trace_);
}

ProcessId Simulation::add_process(std::unique_ptr<Process> process) {
  CHT_ASSERT(!started_, "cannot add processes after start()");
  CHT_ASSERT(cluster_n_ == static_cast<int>(processes_.size()),
             "cluster members must be added before any client");
  ++cluster_n_;
  return add_slot(std::move(process));
}

ProcessId Simulation::add_client(std::unique_ptr<Process> process) {
  CHT_ASSERT(!started_, "cannot add clients after start()");
  return add_slot(std::move(process));
}

ProcessId Simulation::add_slot(std::unique_ptr<Process> process) {
  const ProcessId id(static_cast<int>(processes_.size()));
  processes_.push_back(std::move(process));
  const std::int64_t half = config_.epsilon.to_micros() / 2;
  const Duration offset =
      half == 0 ? Duration::zero() : Duration::micros(rng_.next_in(-half, half));
  clocks_.emplace_back(offset);
  // Storage seeds derive from (sim seed, index) inside StableStorage — no
  // draw from rng_, so pre-storage seeds keep their exact event streams.
  storages_.push_back(std::make_unique<StableStorage>(config_.seed, id.index(),
                                                      config_.storage));
  last_crash_.emplace_back();
  incarnations_.push_back(0);
  return id;
}

void Simulation::start() {
  CHT_ASSERT(!started_, "start() called twice");
  started_ = true;
  const int n = static_cast<int>(processes_.size());
  // Everyone — replicas and clients — is attached with the replica count:
  // cluster_size() feeds quorum math and broadcast fan-out, neither of which
  // may ever include a client.
  for (int i = 0; i < n; ++i) {
    processes_[i]->attach(this, ProcessId(i), cluster_n_);
  }
  for (int i = 0; i < n; ++i) {
    if (!processes_[i]->crashed()) processes_[i]->on_start();
  }
}

void Simulation::run_until(RealTime deadline) {
  while (!queue_.empty() && queue_.next_event_time() <= deadline) {
    queue_.step();
  }
}

bool Simulation::run_until(const std::function<bool()>& pred,
                           RealTime deadline) {
  if (pred()) return true;
  while (!queue_.empty() && queue_.next_event_time() <= deadline) {
    queue_.step();
    if (pred()) return true;
  }
  return false;
}

void Simulation::crash(ProcessId p) {
  Process& proc = process(p);
  if (proc.crashed()) return;
  trace_.record(now(), p, "crash", "");
  last_crash_.at(p.index()) = now();
  proc.mark_crashed();
  proc.on_crash();
  // The crash is abrupt: whatever the process wrote but never synced is now
  // subject to seed-deterministic loss/tearing (private storage Rng — no
  // perturbation of the global stream).
  storages_.at(p.index())->lose_unsynced_writes();
}

void Simulation::restart(ProcessId p, std::unique_ptr<Process> fresh) {
  CHT_ASSERT(started_, "restart() before start()");
  CHT_ASSERT(fresh != nullptr, "restart() needs a fresh incarnation");
  Process& old = process(p);
  CHT_ASSERT(old.crashed(), "restart() requires a crashed process");
  trace_.record(now(), p, "restart", "");
  ++incarnations_.at(p.index());
  graveyard_.push_back(std::move(processes_[p.index()]));
  fresh->attach(this, p, cluster_n_);
  processes_[p.index()] = std::move(fresh);
  processes_[p.index()]->on_restart();
}

bool Simulation::crashed_at_or_after(ProcessId p, RealTime t) const {
  if (processes_.at(p.index())->crashed()) return true;
  const auto& last = last_crash_.at(p.index());
  return last.has_value() && *last >= t;
}

void Simulation::set_clock_offset(ProcessId p, Duration offset) {
  clocks_.at(p.index()).set_offset(offset);
}

void Simulation::deliver(const Message& message) {
  // Messages already in flight when their sender crashed are still
  // delivered (the crash model loses no sent messages); crashed receivers
  // take no steps.
  Process& target = process(message.to);
  if (target.crashed()) return;
  target.on_message(message);
}

// --- Process service implementations (need Simulation's internals) --------

RealTime Process::now_real() const {
  CHT_ASSERT(sim_ != nullptr, "process not attached");
  return sim_->now();
}

LocalTime Process::now_local() const {
  CHT_ASSERT(sim_ != nullptr, "process not attached");
  return sim_->clock(id_).local_time(sim_->now());
}

void Process::send(ProcessId to, std::string type, std::any payload) {
  CHT_ASSERT(sim_ != nullptr, "process not attached");
  if (crashed_) return;
  // Self-sends also go through the network (uniform accounting, no handler
  // reentrancy).
  Message m{id_, to, std::move(type), std::move(payload), sim_->now(),
            sim_->clock(id_).local_time(sim_->now())};
  sim_->network().send(std::move(m));
}

void Process::broadcast(const std::string& type, const std::any& payload) {
  for (int i = 0; i < n_; ++i) {
    if (i == id_.index()) continue;
    send(ProcessId(i), type, payload);
  }
}

Rng& Process::rng() const {
  CHT_ASSERT(sim_ != nullptr, "process not attached");
  return sim_->rng();
}

StableStorage& Process::storage() const {
  CHT_ASSERT(sim_ != nullptr, "process not attached");
  return sim_->storage(id_);
}

int Process::incarnation() const {
  CHT_ASSERT(sim_ != nullptr, "process not attached");
  return sim_->incarnation(id_);
}

void Process::sync_storage(std::function<void()> fn) {
  StableStorage& st = storage();
  st.sync();
  if (st.effective_sync_latency() == Duration::zero()) {
    if (fn) fn();
    return;
  }
  // The data is durable from this moment; what nonzero latency models is the
  // *cost* of the fsync, paid serially at the device (sync_completion_us
  // queues this sync behind any still in flight). Continuations — and with
  // them every ack gated on durability — wait for the completion.
  const std::int64_t now_us = now_real().to_micros();
  const std::int64_t done_us = st.sync_completion_us(now_us);
  if (fn) schedule_after(Duration::micros(done_us - now_us), std::move(fn));
}

void Process::request_sync(std::function<void()> fn) {
  StableStorage& st = storage();
  if (!st.config().group_commit ||
      st.effective_sync_latency() == Duration::zero()) {
    st.note_flush_width(1);
    sync_storage(std::move(fn));
    return;
  }
  sync_pending_.push_back(std::move(fn));
  if (!sync_in_flight_) start_group_sync();
}

void Process::start_group_sync() {
  // Claim exactly the requests whose writes precede this sync() call;
  // requests arriving during the latency window are not covered by it and
  // queue for the next one.
  auto burst = std::make_shared<std::vector<std::function<void()>>>();
  burst->swap(sync_pending_);
  storage().note_flush_width(burst->size());
  sync_in_flight_ = true;
  sync_storage([this, burst] {
    for (auto& fn : *burst) {
      if (fn) fn();
    }
    sync_in_flight_ = false;
    if (!sync_pending_.empty()) start_group_sync();
  });
}

void Process::trace_event(std::string category, std::string detail) const {
  CHT_ASSERT(sim_ != nullptr, "process not attached");
  sim_->trace().record(sim_->now(), id_, std::move(category),
                       std::move(detail));
}

bool Process::tracing() const {
  CHT_ASSERT(sim_ != nullptr, "process not attached");
  return sim_->trace().enabled();
}

EventHandle Process::schedule_after(Duration delay, std::function<void()> fn) {
  CHT_ASSERT(sim_ != nullptr, "process not attached");
  if (crashed_) return EventHandle();
  return sim_->queue().schedule(
      sim_->now() + delay, [this, fn = std::move(fn)] {
        if (!crashed_) fn();
      });
}

EventHandle Process::schedule_at_local(LocalTime when,
                                       std::function<void()> fn) {
  CHT_ASSERT(sim_ != nullptr, "process not attached");
  if (crashed_) return EventHandle();
  Clock& clock = sim_->clock(id_);
  RealTime target = clock.real_time_when(when);
  if (target < sim_->now()) target = sim_->now();
  return sim_->queue().schedule(target, [this, when, fn = std::move(fn)] {
    if (crashed_) return;
    if (now_local() >= when) {
      fn();
    } else {
      // Clock was adjusted; re-arm.
      schedule_at_local(when, fn);
    }
  });
}

}  // namespace cht::sim
