// Fixture: rule D1 — wall-clock / OS time sources in protocol code.
#include <chrono>
#include <ctime>

namespace fixture {

long bad_steady() {
  auto t = std::chrono::steady_clock::now();  // detlint-expect: D1
  return t.time_since_epoch().count();
}

long bad_system() {
  return std::chrono::system_clock::now().time_since_epoch().count();  // detlint-expect: D1
}

long bad_c_time() {
  time_t now = time(nullptr);  // detlint-expect: D1
  time_t now2 = time(&now);  // detlint-expect: D1
  return static_cast<long>(now + now2);
}

long bad_gettimeofday() {
  struct timeval {
    long tv_sec;
    long tv_usec;
  } tv;
  gettimeofday(&tv, nullptr);  // detlint-expect: D1
  return tv.tv_sec;
}

long bad_clock_gettime() {
  struct timespec ts;
  clock_gettime(0, &ts);  // detlint-expect: D1
  return ts.tv_sec;
}

// Negative cases: simulated-time vocabulary that merely contains the word
// "time" must not trip the rule.
struct Clock {
  long local_time() const { return 17; }
  long next_event_time() const { return 18; }
};

long good_simulated(const Clock& clock) {
  long time_limit = 5;
  return clock.local_time() + clock.next_event_time() + time_limit;
}

}  // namespace fixture
