// Megastore's Chubby-dependent write invalidation (paper Section 5).
//
// In Megastore, a write can only commit after every replica acknowledged
// it, or after each non-acknowledging replica has been *invalidated* —
// marked out-of-date so it refuses local reads. Invalidation is arbitrated
// by the Chubby lock service: a replica is invalidated once its Chubby
// session is observed (by the writer, through Chubby) to have expired.
//
// The vulnerability the paper highlights: "If the leader loses contact with
// Chubby while other processes maintain contact, writes can be left blocked
// forever. ... this problem ... requires manual intervention by an operator
// to fix." The writer cannot observe anything through Chubby while cut off
// from it, so the invalidation — and therefore the write — never completes,
// even though a majority of replicas is healthy.
//
// Our algorithm needs no such arbiter: the leader waits out the lease on
// its own (epsilon-synchronized) clock. This module exists to make that
// contrast executable (test_megastore_chubby.cc and E6 commentary).
//
// Scope: the session/invalidation machinery only; the data path (append,
// acks) is abstracted to "the writer collects acks", which is the part the
// vulnerability does not depend on.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <set>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "sim/process.h"

namespace cht::baselines {

struct ChubbyConfig {
  Duration session_ttl = Duration::millis(120);
  Duration keepalive_interval = Duration::millis(30);
  Duration query_retry = Duration::millis(20);
};

namespace chubby_msg {
inline constexpr const char* kKeepAlive = "chubby.keepalive";
inline constexpr const char* kLeaseGrant = "chubby.leasegrant";
inline constexpr const char* kQuery = "chubby.query";
inline constexpr const char* kQueryReply = "chubby.queryreply";

struct KeepAlive {};
struct LeaseGrant {
  Duration ttl;
};
struct Query {
  int subject;           // whose session is being asked about
  std::int64_t query_id;
};
struct QueryReply {
  int subject;
  std::int64_t query_id;
  bool session_expired;
};
}  // namespace chubby_msg

// The lock service itself (a single well-known process, as Megastore uses
// it; its own fault tolerance is out of scope here).
class ChubbyService : public sim::Process {
 public:
  explicit ChubbyService(ChubbyConfig config) : config_(config) {}

  void on_start() override;
  // Session expiries are the service's acceptor-like state: a granted TTL is
  // synced before the grant leaves, and a restarted service replays them —
  // otherwise it would report live sessions as expired and let a writer
  // invalidate a replica whose lease is still running.
  void on_restart() override;
  void on_message(const sim::Message& message) override;

  bool session_alive(int client);

 private:
  void persist_session(int client);

  ChubbyConfig config_;
  std::vector<LocalTime> session_expiry_;
};

// A Megastore-style participant: keeps a Chubby session alive and, when
// acting as the writer, runs the invalidation protocol for a write.
class MegastoreNode : public sim::Process {
 public:
  MegastoreNode(ProcessId chubby, ChubbyConfig config)
      : chubby_(chubby), config_(config) {}

  void on_start() override;
  void on_message(const sim::Message& message) override;

  // Begins a write for which `non_ackers` did not acknowledge: it completes
  // once Chubby confirms each of their sessions expired. (Acks themselves
  // are abstracted away; pass the stragglers directly.)
  void begin_write(std::set<int> non_ackers);
  std::int64_t writes_completed() const { return writes_completed_; }
  std::int64_t writes_pending() const {
    return static_cast<std::int64_t>(pending_.size());
  }

  // Fault injection helper: stop sending keepalives (models losing Chubby
  // contact in the direction that matters for sessions; cutting the network
  // link via Network::set_link_down models full disconnection).
  void stop_keepalives() { keepalives_enabled_ = false; }

  bool has_chubby_contact() const;

 private:
  struct PendingWrite {
    std::set<int> awaiting_invalidation;
    sim::EventHandle retry_timer;
  };

  void keepalive_tick();
  void query_tick(std::int64_t write_seq);

  ProcessId chubby_;
  ChubbyConfig config_;
  bool keepalives_enabled_ = true;
  LocalTime lease_until_ = LocalTime::min();
  std::int64_t query_seq_ = 0;
  std::int64_t write_seq_ = 0;
  std::map<std::int64_t, PendingWrite> pending_;
  std::map<std::int64_t, std::int64_t> query_to_write_;
  std::int64_t writes_completed_ = 0;
};

}  // namespace cht::baselines
