#include "harness/vr_cluster.h"

namespace cht::harness {

VrCluster::VrCluster(ClusterConfig config,
                     std::shared_ptr<const object::ObjectModel> model)
    : config_(config),
      model_(std::move(model)),
      vr_config_(vr::VrConfig::defaults_for(config.delta)),
      sim_(config.to_sim_config()) {
  for (int i = 0; i < config_.n; ++i) {
    sim_.add_process(std::make_unique<vr::VrReplica>(model_, vr_config_));
  }
  sim_.start();
}

void VrCluster::submit(int i, object::Operation op) {
  const auto token = history_.begin(ProcessId(i), op, sim_.now());
  const bool is_read = model_->is_read(op);
  ++submitted_;
  const OperationId id =
      replica(i).submit(std::move(op),
                        [this, token](const object::Response& response) {
                          history_.end(token, response, sim_.now());
                          ++completed_;
                        });
  // Reads travel through the VR log too, but durability accounting only
  // joins on writes; keep read ids off the history like the other stacks.
  if (!is_read) history_.set_id(token, id);
}

void VrCluster::restart(int i) {
  sim_.restart(ProcessId(i), std::make_unique<vr::VrReplica>(model_, vr_config_));
}

bool VrCluster::await_quiesce(Duration timeout) {
  const RealTime deadline = sim_.now() + timeout;
  return sim_.run_until([this] { return completed_ == submitted_; }, deadline);
}

int VrCluster::primary() {
  int found = -1;
  std::int64_t best_view = -1;
  for (int i = 0; i < config_.n; ++i) {
    auto& r = replica(i);
    if (!r.crashed() && r.is_primary() && r.view() > best_view) {
      best_view = r.view();
      found = i;
    }
  }
  return found;
}

bool VrCluster::await_primary(Duration timeout) {
  const RealTime deadline = sim_.now() + timeout;
  return sim_.run_until([this] { return primary() >= 0; }, deadline);
}

}  // namespace cht::harness
