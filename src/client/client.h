// Networked client process.
//
// A Client is a simulated process (added via Simulation::add_client, so it
// never counts toward quorum math) that submits operations to the replica
// cluster over the network and owns the whole retry story:
//
//   - per-client session: RMWs carry strictly monotonic sequence numbers
//     and at most one RMW is ever outstanding (later submissions queue),
//     which is what lets replica-side session tables stay one entry per
//     client;
//   - exactly-once retries: a timed-out request is re-sent under the SAME
//     OperationId (possibly to a different replica) with exponential
//     backoff, so the replicas' dedup machinery — not client luck —
//     guarantees single application;
//   - leader routing: Redirects teach the client where the leader is; a
//     timeout forgets the hint and falls back to deterministic target
//     rotation (home, home+1, ... — no randomness, so runs stay
//     reproducible);
//   - read fallback policy: reads go to the client's home replica first
//     (the paper's local lease reads make that the fast path); after
//     `escalate_reads_after` timeouts the read escalates to leader_only and
//     chases Redirects to the leader.
//
// Completion, latency, retry, redirect and escalation counts land in the
// client's own metrics registry under "client.*".
#pragma once

#include <cstdint>
#include <deque>
#include <functional>
#include <optional>
#include <string>

#include "client/wire.h"
#include "common/time.h"
#include "common/types.h"
#include "metrics/registry.h"
#include "object/object.h"
#include "sim/process.h"

namespace cht::client {

struct ClientConfig {
  Duration delta = Duration::millis(10);
  // Per-attempt timeout before the first backoff doubling. Generous (a
  // commit takes a few delta plus fsync cost) so calm runs rarely retry.
  Duration request_timeout = Duration::millis(80);
  // Backoff cap; keeps post-heal recovery latency bounded.
  Duration backoff_cap = Duration::millis(640);
  // Read attempts served locally before escalating to a leader read.
  int escalate_reads_after = 2;

  static ClientConfig defaults_for(Duration delta) {
    ClientConfig c;
    c.delta = delta;
    c.request_timeout = 8 * delta;
    c.backoff_cap = 64 * delta;
    return c;
  }
};

class Client : public sim::Process {
 public:
  using Callback = std::function<void(const OperationId&, const std::string&)>;
  // Fires once, when the operation leaves the internal queue and its first
  // request goes on the wire. History recorders hang the invocation instant
  // off this — the queue wait is client-library internal, not observable
  // concurrency, and recording it as such would make every queued op appear
  // concurrent with everything that runs while it waits.
  using DispatchHook = std::function<void(const OperationId&)>;

  // `home` is the preferred replica index (reads go there first; rotation
  // starts there).
  Client(int home, ClientConfig config) : config_(config), home_(home) {}

  // Enqueues an operation; strictly sequential per client — the head of the
  // queue is the only request on the wire. Returns the OperationId the
  // operation will travel under (stable across every retry). `cb` fires
  // exactly once, on the first accepted reply; `on_dispatch` (optional)
  // fires once, when the operation is first sent.
  OperationId submit(object::Operation op, bool is_read, Callback cb,
                     DispatchHook on_dispatch = nullptr);

  void on_message(const sim::Message& message) override;

  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }
  std::size_t inflight_plus_queued() const {
    return (current_ ? 1 : 0) + queue_.size();
  }

 private:
  struct Pending {
    OperationId id;
    object::Operation op;
    bool is_read = false;
    bool leader_only = false;
    Callback cb;
    DispatchHook on_dispatch;
    int attempts = 0;
    int redirect_hops = 0;
    RealTime begun;
  };

  void dispatch_current();
  void send_current();
  void arm_timer();
  void on_timeout();
  void complete(const std::string& response);
  int target_for(const Pending& pending) const;

  ClientConfig config_;
  int home_ = 0;
  int leader_hint_ = -1;
  std::int64_t seq_ = 0;
  std::optional<Pending> current_;
  std::deque<Pending> queue_;
  sim::EventHandle timer_;
  metrics::Registry metrics_;
};

}  // namespace cht::client
