#include "chaos/workload.h"

#include "common/assert.h"
#include "object/bank_object.h"
#include "object/counter_object.h"
#include "object/kv_object.h"
#include "object/lock_object.h"
#include "object/queue_object.h"

namespace cht::chaos {

WorkloadGen::WorkloadGen(const RunSpec& spec, std::uint64_t seed)
    : object_(spec.object),
      read_fraction_(spec.read_fraction),
      key_skew_(spec.key_skew),
      keys_(spec.keys),
      rng_(seed) {}

std::string WorkloadGen::pick_key() {
  // Geometric skew: key 0 is hottest; with skew 0 the draw is uniform.
  int k = 0;
  if (key_skew_ <= 0) {
    k = static_cast<int>(rng_.next_below(static_cast<std::uint64_t>(keys_)));
  } else {
    while (k < keys_ - 1 && !rng_.next_bool(key_skew_)) ++k;
  }
  return "k" + std::to_string(k);
}

object::Operation WorkloadGen::next() {
  const bool read = rng_.next_bool(read_fraction_);
  const std::string value = "v" + std::to_string(seq_++);
  if (object_ == "kv") {
    if (read) {
      return rng_.next_bool(0.9) ? object::KVObject::get(pick_key())
                                 : object::KVObject::size();
    }
    const std::string key = pick_key();
    const double kind = rng_.next_double();
    if (kind < 0.7) return object::KVObject::put(key, value);
    if (kind < 0.85) return object::KVObject::del(key);
    return object::KVObject::cas(key, value, "swapped-" + value);
  }
  if (object_ == "counter") {
    if (read) {
      return rng_.next_bool(0.5) ? object::CounterObject::value()
                                 : object::CounterObject::parity();
    }
    return object::CounterObject::add(rng_.next_in(-3, 7));
  }
  if (object_ == "bank") {
    if (read) {
      return rng_.next_bool(0.7) ? object::BankObject::balance(pick_key())
                                 : object::BankObject::total();
    }
    if (rng_.next_bool(0.5)) {
      return object::BankObject::deposit(pick_key(), rng_.next_in(1, 50));
    }
    const std::string from = pick_key();
    std::string to = pick_key();
    if (to == from) to = "k" + std::to_string((keys_ - 1));
    return object::BankObject::transfer(from, to, rng_.next_in(1, 30));
  }
  if (object_ == "queue") {
    if (read) {
      return rng_.next_bool(0.6) ? object::QueueObject::front()
                                 : object::QueueObject::length();
    }
    return rng_.next_bool(0.6) ? object::QueueObject::enqueue(value)
                               : object::QueueObject::dequeue();
  }
  if (object_ == "lock") {
    const std::string who = "c" + std::to_string(rng_.next_in(0, 3));
    if (read) return object::LockObject::holder();
    return rng_.next_bool(0.6) ? object::LockObject::try_acquire(who)
                               : object::LockObject::release(who);
  }
  CHT_ASSERT(false, "unknown workload object");
  return {};
}

}  // namespace cht::chaos
