// Ablation — choosing LeasePeriod (DESIGN.md §7).
//
// The paper leaves LeasePeriod as "a suitably defined parameter". It trades
// three costs against each other:
//   - worst-case RMW delay when a leaseholder crashes (the one-time
//     lease-expiry wait is ~LeasePeriod + epsilon);
//   - read unavailability after a *leader* crash (followers must sit out
//     their leases before... no: they hold leases from the dead leader that
//     remain valid but whose batch k grows stale only if commits continue —
//     commits can't continue while leaderless, so reads stay available from
//     the old lease until it expires, then block until the new leader
//     grants; we measure the read-stall window around failover);
//   - renewal traffic (independent of LeasePeriod as long as the renewal
//     interval scales with it; we fix renewal = LeasePeriod/4 and report).
#include <iostream>
#include <memory>

#include "common/bench_util.h"
#include "common/experiment.h"
#include "object/register_object.h"

namespace cht::bench {
namespace {

constexpr Duration kDelta = Duration::millis(10);

struct TradeoffResult {
  Duration crash_write_delay;   // first write after a leaseholder crash
  Duration failover_read_stall; // longest read block around leader failover
  double lease_msgs_per_sec;
};

core::ConfigOverrides lease_overrides(std::int64_t lease_multiple) {
  const Duration period = lease_multiple * kDelta;
  core::ConfigOverrides overrides;
  overrides.lease_period = period;
  overrides.lease_renew_interval = std::max(Duration::millis(5), period / 4);
  return overrides;
}

TradeoffResult run(ExperimentResult& result, std::int64_t lease_multiple,
                   std::uint64_t seed) {
  const auto overrides = lease_overrides(lease_multiple);
  TradeoffResult out;

  // (a) one-time write delay after a leaseholder crash.
  {
    harness::ClusterConfig config;
    config.n = 5;
    config.seed = seed;
    config.delta = kDelta;
    harness::Cluster cluster(config, std::make_shared<object::RegisterObject>(),
                             overrides);
    cluster.await_steady_leader(Duration::seconds(5));
    cluster.run_for(Duration::seconds(1));
    const int leader = cluster.steady_leader();
    cluster.sim().crash(ProcessId((leader + 1) % cluster.n()));
    const RealTime t0 = cluster.sim().now();
    cluster.submit((leader + 2) % cluster.n(),
                   object::RegisterObject::write("x"));
    cluster.await_quiesce(Duration::seconds(60));
    out.crash_write_delay = cluster.sim().now() - t0;
    // lease traffic over one steady second.
    const auto before = cluster.sim().network().stats().sent_of(
        core::msg::kLeaseGrant);
    cluster.run_for(Duration::seconds(1));
    out.lease_msgs_per_sec = static_cast<double>(
        cluster.sim().network().stats().sent_of(core::msg::kLeaseGrant) -
        before);
    const std::string label = "lease-" + std::to_string(lease_multiple) + "x";
    result.config(label, cluster.config(), cluster.overrides());
    result.observe(label, cluster);
  }

  // (b) read stall around a leader crash.
  {
    harness::ClusterConfig config;
    config.n = 5;
    config.seed = seed + 1;
    config.delta = kDelta;
    harness::Cluster cluster(config, std::make_shared<object::RegisterObject>(),
                             overrides);
    cluster.await_steady_leader(Duration::seconds(5));
    cluster.run_for(Duration::seconds(1));
    const int leader = cluster.steady_leader();
    cluster.sim().crash(ProcessId(leader));
    // Hammer reads at one follower until well after recovery; the max block
    // is the availability gap.
    const int reader = (leader + 1) % cluster.n();
    for (int i = 0; i < result.scaled(200, 40); ++i) {
      cluster.submit(reader, object::RegisterObject::read());
      cluster.run_for(Duration::millis(10));
    }
    cluster.await_quiesce(Duration::seconds(60));
    const auto* blocks =
        cluster.replica(reader).metrics().find_histogram("span.read.block_us");
    out.failover_read_stall =
        Duration::micros(blocks == nullptr ? 0 : blocks->max());
  }
  return out;
}

}  // namespace
}  // namespace cht::bench

int main(int argc, char** argv) {
  using namespace cht;
  using namespace cht::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  ExperimentResult result("lease_tradeoff", args);
  result.begin(
      "Ablation: LeasePeriod (delta = 10 ms, renewal = LeasePeriod/4)",
      "Short leases: cheap leaseholder-crash recovery but frequent renewals\n"
      "and a tighter failover window; long leases: rare renewals but a long\n"
      "one-time write stall when a leaseholder dies.");
  result.columns({"LeasePeriod (x delta)", "write delay after lh crash (ms)",
                  "read stall across leader crash (ms)", "LeaseGrant msgs/s"});
  const std::vector<std::int64_t> sweep =
      result.smoke() ? std::vector<std::int64_t>{4, 48}
                     : std::vector<std::int64_t>{4, 8, 12, 24, 48};
  for (const std::int64_t multiple : sweep) {
    const auto r = run(result, multiple, 7000 + static_cast<std::uint64_t>(multiple));
    result.row({metrics::Table::num(multiple), ms2(r.crash_write_delay),
                ms2(r.failover_read_stall),
                metrics::Table::num(r.lease_msgs_per_sec, 0)});
    const std::string prefix = "lease_" + std::to_string(multiple) + "x_";
    result.metric(prefix + "crash_write_delay_us",
                  r.crash_write_delay.to_micros());
    result.metric(prefix + "failover_read_stall_us",
                  r.failover_read_stall.to_micros());
    result.metric(prefix + "lease_msgs_per_sec", r.lease_msgs_per_sec);
  }
  result.note(
      "Expected shape: the write-delay column grows linearly with\n"
      "LeasePeriod (~LeasePeriod + epsilon + commit time); the read\n"
      "stall is dominated by failure detection + new-leader init\n"
      "and grows only mildly; renewal traffic falls as 1/LeasePeriod.");
  result.end();
  return result.finish();
}
