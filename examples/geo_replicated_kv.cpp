// Geo-replicated key-value store: the read-dominated workload that
// motivates the paper (Section 1: leverage replication for performance,
// not just fault tolerance).
//
// Five replicas with wide-area delays (delta = 40 ms). A read-heavy
// workload (95% reads) runs twice: once on the paper's algorithm (local
// lease reads) and once with every read forwarded to the leader. The
// printout contrasts read latency and message traffic.
#include <iostream>
#include <memory>

#include "harness/cluster.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "object/kv_object.h"

namespace {

using namespace cht;  // NOLINT: example brevity

struct RunResult {
  metrics::LatencyRecorder read_latency;
  metrics::LatencyRecorder write_latency;
  std::int64_t messages;
};

RunResult run(core::ReadPolicy policy) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = 2024;
  config.delta = Duration::millis(40);  // wide-area delay bound
  harness::Cluster cluster(config, std::make_shared<object::KVObject>(),
                           core::ConfigOverrides{.read_policy = policy});
  cluster.await_steady_leader(Duration::seconds(10));
  cluster.run_for(Duration::seconds(2));

  Rng rng(7);
  const auto msgs_before = cluster.sim().network().stats().sent;
  for (int step = 0; step < 200; ++step) {
    if (step % 20 == 0) {
      cluster.submit(static_cast<int>(rng.next_below(5)),
                     object::KVObject::put("profile-" + std::to_string(step % 3),
                                           "v" + std::to_string(step)));
    }
    for (int r = 0; r < 19; ++r) {
      cluster.submit(static_cast<int>(rng.next_below(5)),
                     object::KVObject::get("profile-" + std::to_string(r % 3)));
    }
    cluster.run_for(Duration::millis(80));
  }
  cluster.await_quiesce(Duration::seconds(120));

  RunResult result;
  result.messages = cluster.sim().network().stats().sent - msgs_before;
  for (const auto& op : cluster.history().ops()) {
    if (!op.completed()) continue;
    if (cluster.model().is_read(op.op)) {
      result.read_latency.record(op.latency());
    } else {
      result.write_latency.record(op.latency());
    }
  }
  return result;
}

}  // namespace

int main() {
  std::cout << "Geo-replicated KV store, delta = 40 ms, 95% reads\n\n";
  const RunResult ours = run(core::ReadPolicy::kLocalLease);
  const RunResult forwarded = run(core::ReadPolicy::kLeaderForward);

  metrics::Table table({"metric", "local lease reads (paper)",
                        "leader-forwarded reads"});
  auto ms = [](Duration d) { return metrics::Table::num(d.to_millis_f(), 1); };
  table.add_row({"reads completed",
                 std::to_string(ours.read_latency.count()),
                 std::to_string(forwarded.read_latency.count())});
  table.add_row({"read p50 (ms)", ms(ours.read_latency.p50()),
                 ms(forwarded.read_latency.p50())});
  table.add_row({"read p99 (ms)", ms(ours.read_latency.p99()),
                 ms(forwarded.read_latency.p99())});
  table.add_row({"write p50 (ms)", ms(ours.write_latency.p50()),
                 ms(forwarded.write_latency.p50())});
  table.add_row({"total messages", std::to_string(ours.messages),
                 std::to_string(forwarded.messages)});
  table.print(std::cout);
  std::cout << "\nLocal lease reads keep the wide-area network out of the\n"
               "read path entirely; forwarding pays a round trip per read\n"
               "and multiplies message traffic.\n";
  return 0;
}
