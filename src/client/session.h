// Replica-side client session table (Raft-thesis §6.3 style dedup).
//
// One entry per client, holding the sequence number and response of that
// client's last *applied* RMW. Because clients issue RMWs strictly
// sequentially with monotonic sequence numbers, one entry is enough to
// decide every arriving request: seq > last is fresh, seq == last is a
// retry of the completed op (answer from the cache), seq < last is stale
// (the client has already moved on; drop).
//
// The table is replicated state: every replica updates it at *apply* time,
// in log order, from the same applied sequence — so all replicas agree on
// it, and crash recovery rebuilds it for free when the stack replays its
// durable log/batches through the apply path. No separate persistence, and
// the size is bounded by the number of clients.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/types.h"

namespace cht::client {

class SessionTable {
 public:
  enum class Admit { kFresh, kDuplicate, kStale };

  // Classifies an arriving RMW against the client's applied prefix.
  Admit admit(const OperationId& id) const {
    const auto it = entries_.find(id.process.index());
    if (it == entries_.end() || id.seq > it->second.last_seq) {
      return Admit::kFresh;
    }
    return id.seq == it->second.last_seq ? Admit::kDuplicate : Admit::kStale;
  }

  // The cached response for a kDuplicate request; nullptr otherwise.
  const std::string* cached(const OperationId& id) const {
    const auto it = entries_.find(id.process.index());
    if (it == entries_.end() || it->second.last_seq != id.seq) return nullptr;
    return &it->second.last_response;
  }

  // Records an applied RMW. Called in apply order; a lower-seq record after
  // a higher one (impossible for sequential clients, but cheap to guard) is
  // ignored.
  void record(const OperationId& id, const std::string& response) {
    Entry& entry = entries_[id.process.index()];
    if (id.seq < entry.last_seq) return;
    entry.last_seq = id.seq;
    entry.last_response = response;
  }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::int64_t last_seq = 0;
    std::string last_response;
  };
  // Keyed by client process index; ordered for deterministic iteration.
  std::map<int, Entry> entries_;
};

}  // namespace cht::client
