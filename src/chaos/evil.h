// Mutation self-test support: an adapter decorator that deliberately breaks
// linearizability, so the chaos harness can prove it has teeth.
//
// EvilAdapter interposes on the submit path of any ClusterAdapter and serves
// a fraction of reads from a frozen snapshot of the initial object state —
// the classic "read from a stale applied index" bug. Any read answered this
// way after a completed conflicting write yields a non-linearizable history
// that the sweep MUST flag; test_chaos_mutation.cc asserts it does within a
// bounded seed budget.
//
// Build-time gated: this header and evil.cc refuse to compile unless
// CHT_CHAOS_ENABLE_EVIL is defined, and evil.cc is deliberately NOT part of
// the cht_chaos library — only the mutation self-test target compiles it.
#pragma once

#ifndef CHT_CHAOS_ENABLE_EVIL
#error "chaos evil mode must be enabled explicitly (-DCHT_CHAOS_ENABLE_EVIL)"
#endif

#include <memory>

#include "chaos/adapter.h"

namespace cht::chaos {

class EvilAdapter final : public ClusterAdapter {
 public:
  // Serves every `stale_every`-th read from the frozen initial state.
  EvilAdapter(std::unique_ptr<ClusterAdapter> inner, int stale_every = 3);

  const std::string& protocol() const override { return inner_->protocol(); }
  sim::Simulation& sim() override { return inner_->sim(); }
  int n() const override { return inner_->n(); }
  const object::ObjectModel& model() const override { return inner_->model(); }
  checker::HistoryRecorder& history() override { return inner_->history(); }
  void submit(int process, object::Operation op) override;
  bool crashed(int process) const override { return inner_->crashed(process); }
  void restart(int process) override { inner_->restart(process); }
  bool recovering(int process) const override {
    return inner_->recovering(process);
  }
  std::vector<OperationId> committed_op_ids() override {
    return inner_->committed_op_ids();
  }
  int leader() override { return inner_->leader(); }
  bool await_quiesce(Duration timeout) override {
    return inner_->await_quiesce(timeout);
  }
  std::size_t submitted() const override {
    return inner_->submitted() + stale_served_;
  }
  std::size_t completed() const override {
    return inner_->completed() + stale_served_;
  }
  std::vector<std::string> protocol_invariants() override {
    return inner_->protocol_invariants();
  }
  std::int64_t leadership_changes() override {
    return inner_->leadership_changes();
  }
  void merge_metrics_into(metrics::Registry& out) override {
    inner_->merge_metrics_into(out);
  }

  std::size_t stale_served() const { return stale_served_; }

 private:
  std::unique_ptr<ClusterAdapter> inner_;
  int stale_every_;
  int reads_seen_ = 0;
  std::size_t stale_served_ = 0;
  std::unique_ptr<object::ObjectState> frozen_state_;
};

}  // namespace cht::chaos
