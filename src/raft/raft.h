// Raft baseline (Ongaro & Ousterhout, USENIX ATC'14), implemented on the
// same simulation substrate as the paper's algorithm so the two can be
// compared head to head (paper Section 5).
//
// Scope: leader election with randomized timeouts, log replication with
// conflict truncation, commit on current-term majority match, a no-op entry
// at the start of each leadership term, and two read modes:
//
//   kReadIndex    — the paper's description of Raft reads: "each read
//                   operation is sent to the current leader, and when the
//                   leader receives a read request it exchanges heartbeat
//                   messages with a majority of the cluster before
//                   responding". Reads are never local and always block for
//                   at least one round trip to the leader plus one majority
//                   round.
//   kLeaderLease  — the etcd-style clock-based optimization Raft's authors
//                   mention in passing: the leader serves reads locally
//                   while it holds a majority heartbeat lease. Reads are
//                   still not local for followers (forwarded to the leader).
//
// Cluster membership changes and snapshotting are out of scope (the paper's
// comparison does not touch them).
#pragma once

#include <cstdint>
#include <functional>
#include <list>
#include <map>
#include <memory>
#include <optional>
#include <set>
#include <string>
#include <vector>

#include "client/gateway.h"
#include "common/time.h"
#include "common/types.h"
#include "core/clock_guard.h"
#include "metrics/registry.h"
#include "metrics/span.h"
#include "object/object.h"
#include "sim/process.h"

namespace cht::raft {

enum class ReadMode { kReadIndex, kLeaderLease };

struct RaftConfig {
  Duration heartbeat_interval = Duration::millis(10);
  Duration election_timeout_min = Duration::millis(100);
  Duration election_timeout_max = Duration::millis(200);
  Duration client_retry = Duration::millis(40);
  ReadMode read_mode = ReadMode::kReadIndex;
  // Clock-health guard (core/clock_guard.h). Only kLeaderLease reads depend
  // on clocks, so only they degrade (to the ReadIndex round) while the
  // leader is clock-suspect; kReadIndex is clock-free already.
  core::ClockGuardConfig clock_guard;

  static RaftConfig defaults_for(Duration delta) {
    RaftConfig c;
    c.heartbeat_interval = delta;
    c.election_timeout_min = 10 * delta;
    c.election_timeout_max = 20 * delta;
    c.client_retry = 4 * delta;
    return c;
  }
};

struct LogEntry {
  std::int64_t term = 0;
  OperationId id;
  object::Operation op;
  bool operator==(const LogEntry&) const = default;
};

namespace msg {

inline constexpr const char* kRequestVote = "raft.requestvote";
inline constexpr const char* kVoteReply = "raft.votereply";
inline constexpr const char* kAppendEntries = "raft.appendentries";
inline constexpr const char* kAppendReply = "raft.appendreply";
inline constexpr const char* kClientRmw = "raft.clientrmw";
inline constexpr const char* kClientRead = "raft.clientread";
inline constexpr const char* kReadReply = "raft.readreply";

struct RequestVote {
  std::int64_t term = 0;
  std::int64_t last_log_index = 0;
  std::int64_t last_log_term = 0;
};

struct VoteReply {
  std::int64_t term = 0;
  bool granted = false;
};

struct AppendEntries {
  std::int64_t term = 0;
  std::int64_t prev_index = 0;
  std::int64_t prev_term = 0;
  std::vector<LogEntry> entries;
  std::int64_t leader_commit = 0;
  std::int64_t probe_seq = 0;  // ReadIndex confirmation round
  // Leader-local send time, echoed back in AppendReply. The read lease must
  // anchor at the time a heartbeat round was *sent*: the ack's receive time
  // overestimates how recently the follower reset its election timer by the
  // reply's flight time, which is unbounded before GST.
  LocalTime lease_stamp;
};

struct AppendReply {
  std::int64_t term = 0;
  bool success = false;
  std::int64_t match_index = 0;  // on success; on failure, follower's log length
  std::int64_t probe_seq = 0;
  LocalTime lease_stamp;  // echoed from the AppendEntries being answered
};

struct ClientRmw {
  OperationId id;
  object::Operation op;
};

struct ClientRead {
  OperationId id;
  object::Operation op;
};

struct ReadReply {
  OperationId id;
  object::Response response;
};

}  // namespace msg

class RaftReplica : public sim::Process {
 public:
  using Callback = std::function<void(const object::Response&)>;
  enum class Role { kFollower, kCandidate, kLeader };

  RaftReplica(std::shared_ptr<const object::ObjectModel> model,
              RaftConfig config);

  // Client API, mirroring core::Replica. submit_rmw returns the operation's
  // id for harness-side durability accounting.
  OperationId submit_rmw(object::Operation op, Callback callback);
  void submit_read(object::Operation op, Callback callback);

  void on_start() override;
  // Crash recovery per the Raft paper's persistent-state rules: currentTerm,
  // votedFor and the log are synced to StableStorage before any vote or
  // successful AppendReply leaves this process (and before the leader counts
  // its own log as replicated); a restarted replica replays them and rejoins
  // as a follower.
  void on_restart() override;
  void on_message(const sim::Message& message) override;

  struct Stats {
    std::int64_t rmws_submitted = 0;
    std::int64_t rmws_completed = 0;
    std::int64_t reads_submitted = 0;
    std::int64_t reads_completed = 0;
    std::int64_t reads_served_by_lease = 0;
    std::int64_t reads_degraded = 0;  // lease-mode reads demoted to ReadIndex
    std::int64_t elections_started = 0;
    std::int64_t terms_won = 0;
  };

  Role role() const { return role_; }
  std::int64_t term() const { return term_; }
  std::int64_t commit_index() const { return commit_index_; }
  std::int64_t last_applied() const { return last_applied_; }
  std::size_t log_size() const { return log_.size(); }
  const std::vector<LogEntry>& log() const { return log_; }
  ProcessId leader_hint() const { return leader_hint_; }
  const Stats& stats() const { return stats_; }
  const object::ObjectState& applied_state() const { return *state_; }
  // Clock-health guard state, for the chaos checker's exposure-window
  // accounting and tests.
  const core::ClockSkewGuard& clock_guard() const { return clock_guard_; }

  // Observability: span histograms for the election round and the ReadIndex
  // confirmation round (see docs/OBSERVABILITY.md).
  metrics::Registry& metrics() { return metrics_; }
  const metrics::Registry& metrics() const { return metrics_; }

  // Replica-side endpoint for networked clients (src/client/): RMWs and
  // leader_only reads are accepted only while leading; everything else is
  // redirected at leader_hint().
  client::ReplicaGateway& client_gateway() { return gateway_; }

 private:
  struct PendingClientOp {
    object::Operation op;
    Callback callback;
    bool is_read = false;
    sim::EventHandle retry_timer;
  };

  // Leader-side pending ReadIndex reads.
  struct PendingLeaderRead {
    ProcessId from;
    OperationId id;
    object::Operation op;
    std::int64_t read_index = 0;
    std::int64_t probe_seq = 0;
    LocalTime enqueued;  // leader-local arrival, for the round span
  };

  // --- Roles & elections ---
  void reset_election_timer();
  void start_election();
  void become_follower(std::int64_t term);
  void become_leader();
  void on_request_vote(ProcessId from, const msg::RequestVote& request);
  void on_vote_reply(ProcessId from, const msg::VoteReply& reply);

  // --- Replication ---
  void heartbeat_tick();
  void send_append(ProcessId to);
  void on_append_entries(ProcessId from, const msg::AppendEntries& append);
  void on_append_reply(ProcessId from, const msg::AppendReply& reply);
  void advance_commit();
  void apply_committed();

  // --- Clients ---
  // --- Crash recovery ---
  void seed_op_sequence();
  void persist_hard_state();  // currentTerm + votedFor keyed records
  void append_log_entry(const LogEntry& entry);  // log_ + storage log
  void truncate_log_suffix(std::int64_t first_dropped);
  void recover_from_storage();

  void client_send(const OperationId& id);
  void on_client_rmw(ProcessId from, const msg::ClientRmw& rmw);
  void on_client_read(ProcessId from, const msg::ClientRead& read);
  void maybe_answer_reads();
  void answer_read(const PendingLeaderRead& read);
  void on_message_read_reply(const msg::ReadReply& reply);
  bool lease_valid();

  std::int64_t last_log_index() const {
    return static_cast<std::int64_t>(log_.size());
  }
  std::int64_t term_at(std::int64_t index) const {
    return index == 0 ? 0 : log_.at(static_cast<std::size_t>(index - 1)).term;
  }
  int majority() const { return cluster_size() / 2 + 1; }

  std::shared_ptr<const object::ObjectModel> model_;
  RaftConfig config_;

  // Persistent state.
  std::int64_t term_ = 0;
  std::optional<int> voted_for_;
  std::vector<LogEntry> log_;  // log_[i] holds index i+1
  // Ordered (not hashed): deterministic by construction (detlint rule D3).
  std::set<OperationId> ids_in_log_;
  // Highest log index covered by a *completed* sync. The pipelined write
  // path appends, starts the covering sync, and sends replication flights
  // immediately; advance_commit counts this replica's own log toward the
  // majority only up to here, so commits never rest on an in-flight fsync.
  std::int64_t synced_log_index_ = 0;

  // Volatile state.
  Role role_ = Role::kFollower;
  ProcessId leader_hint_;
  std::int64_t commit_index_ = 0;
  std::int64_t last_applied_ = 0;
  std::unique_ptr<object::ObjectState> state_;
  sim::EventHandle election_timer_;
  // Last time (local clock) this replica heard from a live leader of the
  // current term — or, on the leader itself, sent a heartbeat round. Votes
  // are disregarded within election_timeout_min of it (leader stickiness,
  // Raft thesis sec. 6.4.1): granting earlier could elect a new leader
  // inside the old leader's read lease.
  LocalTime last_leader_contact_ = LocalTime::min();

  // Leader state.
  std::vector<std::int64_t> next_index_;
  std::vector<std::int64_t> match_index_;
  std::set<int> votes_;
  sim::EventHandle heartbeat_timer_;
  std::int64_t probe_seq_ = 0;
  std::vector<std::int64_t> probe_acked_;
  std::vector<LocalTime> last_ack_local_;  // per follower, for lease reads
  std::list<PendingLeaderRead> leader_reads_;

  // Client state.
  std::int64_t op_seq_ = 0;
  std::map<OperationId, PendingClientOp> pending_ops_;

  Stats stats_;
  core::ClockSkewGuard clock_guard_;

  // Observability (write-only from protocol code).
  metrics::Registry metrics_;
  metrics::Span span_election_;         // start_election -> term won
  metrics::Histogram* h_readindex_round_;  // read arrival -> answered
  metrics::Counter* c_recoveries_;
  metrics::Counter* c_recovered_entries_;
  metrics::Counter* c_clock_transitions_;
  metrics::Counter* c_reads_degraded_;
  metrics::Span span_recovery_;         // restart -> first live-protocol sign

  // Networked-client endpoint (declared after metrics_: ctor order).
  client::ReplicaGateway gateway_;
};

}  // namespace cht::raft
