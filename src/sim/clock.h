// Per-process local clocks.
//
// The model (paper, "Model sketch"): local clocks are monotonically
// increasing with respect to real time and always synchronized within a
// known constant epsilon of each other (satisfied when each clock is within
// epsilon/2 of real time). We implement each clock as real time plus an
// adjustable offset; offsets are drawn within [-epsilon/2, +epsilon/2].
//
// For robustness experiments the offset can be changed at runtime
// ("desync injection"). Monotonicity is preserved by clamping: the clock
// never reports a value below the largest value it has reported before.
#pragma once

#include "common/time.h"

namespace cht::sim {

class Clock {
 public:
  Clock() = default;
  explicit Clock(Duration offset) : offset_(offset) {}

  // The clock reading at real time `real`. Monotonic across calls with
  // non-decreasing `real` even if the offset was lowered in between.
  LocalTime local_time(RealTime real) {
    LocalTime raw = LocalTime::zero() + (real - RealTime::zero()) + offset_;
    if (raw < high_water_) raw = high_water_;
    high_water_ = raw;
    return raw;
  }

  // Earliest real time at which this clock will read at least `local`,
  // assuming the offset does not change. Callers that schedule wake-ups at
  // this time must re-check the clock on wake-up (the offset may have moved).
  RealTime real_time_when(LocalTime local) const {
    if (local <= high_water_) return RealTime::min();
    return RealTime::zero() + (local - LocalTime::zero()) - offset_;
  }

  Duration offset() const { return offset_; }

  // Desync injection: shifts the clock by setting a new offset. Lowering the
  // offset does not make the clock run backwards (see local_time).
  void set_offset(Duration offset) { offset_ = offset; }

 private:
  Duration offset_ = Duration::zero();
  LocalTime high_water_ = LocalTime::min();
};

}  // namespace cht::sim
