// Fixture: rule D10 — timer hygiene. Deadline arithmetic must derive from
// named duration symbols (config fields, constexpr constants, named
// locals); an anonymous Duration literal buried in an expression has no
// name, no unit audit, and no config surface.

namespace fixture {

struct Duration {
  static Duration micros(long v);
  static Duration millis(long v);
  static Duration seconds(long v);
  Duration operator+(Duration other) const;
};

struct Config {
  // Negative: a member default *names* the quantity.
  Duration support_interval = Duration::millis(5);
};

// Negative: a constexpr constant is the canonical way to name a literal.
constexpr Duration kGrantSlack = Duration::micros(1);

struct Service {
  Config config_;
  void schedule_after(Duration d, int token);

  void arm() {
    // Negative: a named local binds the literal before use.
    Duration patience = Duration::millis(25);
    schedule_after(patience + kGrantSlack, 1);
    schedule_after(config_.support_interval, 2);
    schedule_after(Duration::millis(250), 3);  // detlint-expect: D10
    schedule_after(config_.support_interval + Duration::micros(7), 4);  // detlint-expect: D10
  }
};

}  // namespace fixture
