// E11 — RMW efficiency parity (paper Section 1).
//
// Claim: the algorithm "handles ... RMW operations about as efficiently as
// existing implementations of linearizable replicated objects". We run the
// same write-only workload through ours, Raft, and Viewstamped Replication
// on identical network conditions and compare commit latency and messages
// per committed operation — once with one write in flight at a time, and
// once with pipelined offered load (where batching kicks in).
#include <iostream>
#include <memory>

#include "common/bench_util.h"
#include "harness/vr_cluster.h"
#include "object/register_object.h"

namespace cht::bench {
namespace {

constexpr Duration kDelta = Duration::millis(10);

harness::ClusterConfig net_config(std::uint64_t seed) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = kDelta;
  return config;
}

struct RmwResult {
  metrics::LatencyRecorder latency;
  double messages_per_op;
};

// `pipelined`: submit `count` writes up front (batching allowed) instead of
// one at a time.
template <class ClusterT>
RmwResult measure(ClusterT& cluster, bool pipelined, int count) {
  const auto msgs_before = cluster.sim().network().stats().sent;
  RmwResult result;
  if (pipelined) {
    for (int i = 0; i < count; ++i) {
      cluster.submit(i % cluster.n(),
                     object::RegisterObject::write(std::to_string(i)));
    }
    cluster.await_quiesce(Duration::seconds(120));
    for (const auto& op : cluster.history().ops()) {
      if (op.completed()) result.latency.record(op.latency());
    }
  } else {
    for (int i = 0; i < count; ++i) {
      const RealTime t0 = cluster.sim().now();
      cluster.submit(i % cluster.n(),
                     object::RegisterObject::write(std::to_string(i)));
      cluster.await_quiesce(Duration::seconds(30));
      result.latency.record(cluster.sim().now() - t0);
    }
  }
  result.messages_per_op =
      static_cast<double>(cluster.sim().network().stats().sent - msgs_before) /
      count;
  return result;
}

template <class ClusterT, class AwaitFn>
RmwResult run(ClusterT& cluster, AwaitFn await_ready, bool pipelined) {
  await_ready();
  cluster.run_for(Duration::seconds(1));
  return measure(cluster, pipelined, 50);
}

void add_row(metrics::Table& table, const std::string& name,
             const RmwResult& r) {
  table.add_row({name, ms2(r.latency.p50()), ms2(r.latency.p99()),
                 metrics::Table::num(r.messages_per_op, 1)});
}

}  // namespace
}  // namespace cht::bench

int main() {
  using namespace cht;
  using namespace cht::bench;

  print_experiment_header(
      "E11: RMW cost parity with standard SMR (delta = 10 ms, n = 5)",
      "Claim (paper S1): RMW operations are handled about as efficiently as\n"
      "existing linearizable replication algorithms. Same write workload on\n"
      "identical simulated networks. Note: messages/op includes each\n"
      "protocol's fixed background traffic (heartbeats, leases, supports)\n"
      "amortized over the 50 writes.");

  for (const bool pipelined : {false, true}) {
    std::cout << (pipelined ? "\n-- pipelined (50 writes offered at once; "
                              "batching allowed) --\n"
                            : "\n-- closed loop (one write in flight) --\n");
    metrics::Table table({"algorithm", "p50 (ms)", "p99 (ms)", "msgs/op"});
    {
      harness::Cluster cluster(net_config(3),
                               std::make_shared<object::RegisterObject>());
      add_row(table, "ours",
              run(cluster,
                  [&] { cluster.await_steady_leader(Duration::seconds(10)); },
                  pipelined));
    }
    {
      harness::RaftCluster cluster(net_config(3),
                                   std::make_shared<object::RegisterObject>());
      add_row(table, "raft",
              run(cluster,
                  [&] { cluster.await_leader(Duration::seconds(10)); },
                  pipelined));
    }
    {
      harness::VrCluster cluster(net_config(3),
                                 std::make_shared<object::RegisterObject>());
      add_row(table, "viewstamped replication",
              run(cluster,
                  [&] { cluster.await_primary(Duration::seconds(10)); },
                  pipelined));
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape: same order of magnitude across all three\n"
               "(one forward hop when the submitter is a follower, plus one\n"
               "round to a majority, ~2-3*delta end to end); ours batches\n"
               "aggressively in the pipelined case.\n";
  return 0;
}
