// A bank: named accounts with balances and atomic transfers.
//
// Operations:
//   balance(a)        -> amount   (read; conflicts with RMWs touching a)
//   total()           -> amount   (read; transfers preserve the total, so it
//                                  conflicts only with deposits)
//   deposit(a, k)     -> new balance of a                  (RMW)
//   transfer(a, b, k) -> "ok" | "insufficient"             (RMW)
#pragma once

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "object/object.h"

namespace cht::object {

class BankState final : public ObjectState {
 public:
  std::unique_ptr<ObjectState> clone() const override {
    return std::make_unique<BankState>(*this);
  }
  std::string fingerprint() const override;

  std::map<std::string, std::int64_t>& accounts() { return accounts_; }
  const std::map<std::string, std::int64_t>& accounts() const {
    return accounts_;
  }

 private:
  std::map<std::string, std::int64_t> accounts_;
};

class BankObject final : public ObjectModel {
 public:
  std::string name() const override { return "bank"; }
  std::unique_ptr<ObjectState> make_initial_state() const override {
    return std::make_unique<BankState>();
  }
  Response apply(ObjectState& state, const Operation& op) const override;
  bool is_read(const Operation& op) const override {
    return op.kind == "balance" || op.kind == "total";
  }
  bool conflicts(const Operation& read, const Operation& rmw) const override;
  // Accounts are independent for balance/deposit; transfer and total span
  // accounts and force a whole-history check.
  std::string partition_label(const Operation& op) const override {
    if (op.kind == "balance") return op.arg;
    if (op.kind == "deposit") return arg_field(op.arg, 0);
    return "";
  }

  static Operation balance(const std::string& account) {
    return {"balance", account};
  }
  static Operation total() { return {"total", ""}; }
  static Operation deposit(const std::string& account, std::int64_t amount) {
    return {"deposit", encode_args({account, std::to_string(amount)})};
  }
  static Operation transfer(const std::string& from, const std::string& to,
                            std::int64_t amount) {
    return {"transfer", encode_args({from, to, std::to_string(amount)})};
  }
};

}  // namespace cht::object
