// Fixture: rule D11 — metric-name hygiene. Registration names must be
// string literals (dynamic names defeat pre-registration and explode
// cardinality) and every emitted name must appear in the metric-name
// registry in docs/OBSERVABILITY.md (the corpus carries its own copy).
#include <string>

namespace fixture {

struct Registry {
  void counter(const char* name);
  void histogram(const char* name);
  void add(const std::string& name, long delta);
};

struct Probe {
  Registry metrics_;

  void setup(int term) {
    // Negatives: literal names listed in the corpus registry doc.
    metrics_.counter("fixture.documented");
    metrics_.histogram("fixture.lat_us");
    // Positive: literal name missing from the registry doc.
    metrics_.counter("fixture.undocumented");  // detlint-expect: D11
    // Positives: dynamically constructed names.
    metrics_.add("fixture.term." + std::to_string(term), 1);  // detlint-expect: D11
    const std::string picked = pick();
    metrics_.add(picked, 1);  // detlint-expect: D11
  }

  std::string pick();
};

}  // namespace fixture
