#include "checker/sessions.h"

#include <map>
#include <optional>
#include <sstream>

#include "object/object.h"

namespace cht::checker {
namespace {

// A write's externally visible effect on one key, when it has (or may have)
// one: put installs arg[1], del installs "", cas installs arg[2] iff it
// succeeded. A pending put/del/cas may have applied before the crash or run
// end, so it still counts as a possible source for a read.
struct WriteEffect {
  std::string key;
  std::string value;
};

std::optional<WriteEffect> effect_of(const HistoryOp& op) {
  if (op.op.kind == "put") {
    return WriteEffect{object::arg_field(op.op.arg, 0),
                       object::arg_field(op.op.arg, 1)};
  }
  if (op.op.kind == "del") return WriteEffect{op.op.arg, ""};
  if (op.op.kind == "cas") {
    // A completed cas that answered "fail" wrote nothing; a pending one may
    // have succeeded.
    if (op.response.has_value() && *op.response != "ok") return std::nullopt;
    return WriteEffect{object::arg_field(op.op.arg, 0),
                       object::arg_field(op.op.arg, 2)};
  }
  return std::nullopt;
}

// The client's last acknowledged write to a key: what the session guarantee
// obliges later reads to observe (or something newer).
struct OwnWrite {
  std::string value;
  RealTime invoked;
  std::string describe;  // "put(k:v)" etc., for the violation message
};

}  // namespace

std::vector<std::string> check_read_your_writes(
    const std::vector<HistoryOp>& ops) {
  std::vector<std::string> violations;

  // ops is in global invocation order (the recorder appends at begin()), so
  // filtering by process preserves each client's sequential session order.
  std::map<int, std::map<std::string, OwnWrite>> sessions;

  for (const auto& op : ops) {
    const int client = op.process.index();

    if (op.op.kind == "get") {
      if (!op.completed()) continue;
      auto session = sessions.find(client);
      if (session == sessions.end()) continue;
      auto own = session->second.find(op.op.arg);
      if (own == session->second.end()) continue;

      const std::string& got = *op.response;
      if (got == own->second.value) continue;  // saw the own write itself

      // The read returned something else; legitimate only if some write of
      // exactly that value to this key may linearize after the client's own
      // write and before this read. (The implicit initial "" precedes
      // everything, so it can never justify missing an own write.)
      bool justified = false;
      for (const auto& source : ops) {
        const auto effect = effect_of(source);
        if (!effect || effect->key != op.op.arg || effect->value != got) {
          continue;
        }
        const bool before_own_write =
            source.completed() && *source.responded < own->second.invoked;
        const bool after_read = source.invoked > *op.responded;
        if (!before_own_write && !after_read) {
          justified = true;
          break;
        }
      }
      if (!justified) {
        std::ostringstream os;
        os << "read-your-writes: " << op.process << " get(" << op.op.arg
           << ") returned \"" << got << "\" after its own acknowledged "
           << own->second.describe
           << "; no write of that value can linearize after the client's own";
        violations.push_back(os.str());
      }
      continue;
    }

    // Only acknowledged writes enter the session obligation: the client
    // cannot demand to see a write it was never told succeeded.
    if (!op.completed()) continue;
    const auto effect = effect_of(op);
    if (!effect) continue;
    std::ostringstream describe;
    describe << op.op;
    sessions[client][effect->key] =
        OwnWrite{effect->value, op.invoked, describe.str()};
  }

  return violations;
}

}  // namespace cht::checker
