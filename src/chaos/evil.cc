#include "chaos/evil.h"

namespace cht::chaos {

EvilAdapter::EvilAdapter(std::unique_ptr<ClusterAdapter> inner,
                         int stale_every)
    : ForwardingAdapter(std::move(inner)), stale_every_(stale_every) {
  frozen_state_ = model().make_initial_state();
}

void EvilAdapter::submit(int process, object::Operation op) {
  if (model().is_read(op) && ++reads_seen_ % stale_every_ == 0) {
    // The injected bug: answer instantly from the state as of applied index
    // 0, ignoring everything the cluster has committed since.
    const auto token =
        history().begin(ProcessId(process), op, sim().now());
    auto snapshot = frozen_state_->clone();
    const object::Response response = model().apply(*snapshot, op);
    history().end(token, response, sim().now());
    ++stale_served_;
    return;
  }
  inner().submit(process, std::move(op));
}

}  // namespace cht::chaos
