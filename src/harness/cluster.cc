#include "harness/cluster.h"

namespace cht::harness {

Cluster::Cluster(ClusterConfig config,
                 std::shared_ptr<const object::ObjectModel> model,
                 core::ConfigOverrides overrides)
    : config_(config),
      model_(std::move(model)),
      overrides_(std::move(overrides)),
      core_config_(core::Config::defaults_for(config.delta, config.epsilon)),
      sim_(config.to_sim_config()),
      clients_(sim_) {
  core_config_.clock_guard.enabled = config_.clock_guard;
  overrides_.apply(core_config_);
  for (int i = 0; i < config_.n; ++i) {
    sim_.add_process(std::make_unique<core::Replica>(model_, core_config_));
  }
  clients_.populate(config_);
  sim_.start();
}

void Cluster::merge_metrics_into(metrics::Registry& out) {
  for (int i = 0; i < config_.n; ++i) {
    out.merge_from(replica(i).metrics());
    // Storage lives beside the replica (it survives incarnations), so its
    // fsync count is merged here rather than in the replica registry.
    out.add("fsyncs", sim_.storage(ProcessId(i)).fsyncs());
    out.add("sync_stall_us", sim_.storage(ProcessId(i)).sync_stall_us());
    // Batch sizes of completed flushes: how wide group commit actually ran.
    metrics::Histogram& widths = out.histogram("storage.flush_width");
    for (const auto& [width, count] : sim_.storage(ProcessId(i)).flush_widths()) {
      for (std::int64_t c = 0; c < count; ++c) {
        widths.record(static_cast<std::int64_t>(width));
      }
    }
  }
  clients_.merge_metrics_into(out);
}

void Cluster::submit(int i, object::Operation op,
                     core::Replica::Callback user_callback) {
  ++submitted_;
  if (clients_.enabled()) {
    client::Client& via = clients_.for_slot(i);
    const bool is_read = model_->is_read(op);
    // Invocation is recorded at dispatch (first wire send), not enqueue:
    // the client's internal queue is not observable concurrency, and the
    // reply always arrives after dispatch, so the token is set by then.
    const auto token = std::make_shared<checker::HistoryRecorder::Token>();
    const ProcessId pid = via.id();
    object::Operation recorded = op;  // hook's copy; `op` moves into submit
    via.submit(
        std::move(op), is_read,
        [this, token, user_callback = std::move(user_callback)](
            const OperationId&, const std::string& response) {
          history_.end(*token, response, sim_.now());
          ++completed_;
          if (user_callback) user_callback(response);
        },
        [this, token, pid, is_read,
         recorded = std::move(recorded)](const OperationId& cid) {
          *token = history_.begin(pid, recorded, sim_.now());
          if (!is_read) history_.set_id(*token, cid);
        });
    return;
  }
  core::Replica& target = replica(i);
  const auto token =
      history_.begin(ProcessId(i), op, sim_.now());
  auto callback = [this, token, user_callback = std::move(user_callback)](
                      const object::Response& response) {
    history_.end(token, response, sim_.now());
    ++completed_;
    if (user_callback) user_callback(response);
  };
  if (model_->is_read(op)) {
    target.submit_read(std::move(op), std::move(callback));
  } else {
    history_.set_id(token,
                    target.submit_rmw(std::move(op), std::move(callback)));
  }
}

void Cluster::restart(int i) {
  sim_.restart(ProcessId(i),
               std::make_unique<core::Replica>(model_, core_config_));
}

bool Cluster::await_quiesce(Duration timeout) {
  const RealTime deadline = sim_.now() + timeout;
  return sim_.run_until([this] { return completed_ == submitted_; }, deadline);
}

int Cluster::steady_leader() {
  for (int i = 0; i < config_.n; ++i) {
    if (!replica(i).crashed() && replica(i).is_steady_leader()) return i;
  }
  return -1;
}

bool Cluster::await_steady_leader(Duration timeout) {
  const RealTime deadline = sim_.now() + timeout;
  return sim_.run_until([this] { return steady_leader() >= 0; }, deadline);
}

}  // namespace cht::harness
