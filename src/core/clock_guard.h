// Clock-health guard: runtime detection of broken epsilon-synchrony.
//
// The paper's lease reads (and the Raft/PQL lease baselines) are only
// linearizable while every pair of clocks stays within epsilon. Rather than
// assume that, each protocol message carries the sender's local clock
// reading (sim::Message::sent_local) and every receiver feeds the pair
// (send stamp, receive-time local clock) into this guard, which derives a
// *sound lower bound* on the pairwise clock offset:
//
//   recv - send = flight + (offset_recv - offset_send),  flight in [0, delta]
//   post-GST, so
//     recv - send - delta <= offset_recv - offset_send   (fast receiver)
//     send - recv         <= offset_send - offset_recv   (fast sender)
//   and  lb = max(recv - send - delta, send - recv) <= |offset_recv - offset_send|.
//
// If lb exceeds the suspicion threshold (default epsilon), the pairwise skew
// provably exceeds the model bound and the receiver marks itself
// clock-suspect: it cannot tell which of the two clocks is wrong, and
// degrading to a clock-free read path is always safe. The detector is
// interval-based and assumes no synchrony beyond the model's own post-GST
// delta: before GST, long flights can trip it spuriously, which only costs
// read latency, never correctness. Detection is also inherently incomplete —
// a skew of s is only witnessed by messages whose flight satisfies
// flight > delta - s + threshold — so the chaos checker's exposure-window
// accounting (chaos/invariants.cc) closes windows at heal + drain, not at
// detection alone.
//
// Re-qualification is lazy (no timers, so the detlint timer model stays
// unchanged): once suspect, the first clean sample arriving at least
// `requalify_window` (default 2*delta + epsilon) after the last bad sample —
// measured on the receiver's own monotonic local clock — clears the state.
// A clock frozen by the monotonic clamp after a heal keeps generating bad
// evidence until it has decayed, so the window only starts counting once the
// clock is actually healthy again.
// Header-only so the Raft and baseline stacks can use it without linking
// against the chtread core library.
#pragma once

#include <algorithm>
#include <vector>

#include "common/time.h"

namespace cht::core {

struct ClockGuardConfig {
  bool enabled = true;
  // Post-GST one-way delay bound used to discount flight time from the
  // observed stamp gap.
  Duration delta = Duration::millis(10);
  // A skew lower bound above this marks the replica clock-suspect. Defaults
  // to epsilon: anything beyond it provably violates the model.
  Duration suspect_threshold = Duration::millis(1);
  // Clean-evidence span (on the local clock) required before a suspect
  // replica re-qualifies for lease reads.
  Duration requalify_window = Duration::millis(21);

  static ClockGuardConfig defaults_for(Duration delta, Duration epsilon) {
    ClockGuardConfig c;
    c.delta = delta;
    c.suspect_threshold = epsilon;
    c.requalify_window = 2 * delta + epsilon;
    return c;
  }
};

class ClockSkewGuard {
 public:
  // One suspect-state flip, stamped in real time for the chaos checker's
  // exposure-window accounting (the stamp never feeds back into protocol
  // decisions).
  struct Transition {
    RealTime at;
    bool suspect = false;
  };

  ClockSkewGuard() = default;
  explicit ClockSkewGuard(const ClockGuardConfig& config) : config_(config) {}

  // Feed one received message's send stamp and the receiver's local clock at
  // delivery. `now` is the receiver's real-time reading, recorded only into
  // the transition log. Returns true iff the suspect state flipped.
  bool observe(LocalTime sent, LocalTime recv, RealTime now) {
    if (!config_.enabled || sent == LocalTime::min()) return false;
    const Duration lb = std::max(recv - sent - config_.delta, sent - recv);
    if (lb > config_.suspect_threshold) {
      last_bad_ = std::max(last_bad_, recv);
      if (!suspect_) {
        suspect_ = true;
        transitions_.push_back({now, true});
        return true;
      }
      return false;
    }
    if (suspect_ && recv - last_bad_ >= config_.requalify_window) {
      suspect_ = false;
      transitions_.push_back({now, false});
      return true;
    }
    return false;
  }

  bool suspect() const { return config_.enabled && suspect_; }
  const ClockGuardConfig& config() const { return config_; }
  const std::vector<Transition>& transitions() const { return transitions_; }

 private:
  ClockGuardConfig config_;
  bool suspect_ = false;
  LocalTime last_bad_ = LocalTime::min();
  std::vector<Transition> transitions_;
};

}  // namespace cht::core
