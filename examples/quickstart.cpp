// Quickstart: a 5-process replicated register with local reads.
//
// Builds a simulated cluster, waits for a leader, performs a write and
// reads from every replica, and prints what happened — including the
// message counts that show reads are local (they generate no messages).
#include <iostream>
#include <memory>

#include "harness/cluster.h"
#include "object/register_object.h"

int main() {
  using namespace cht;  // NOLINT: example brevity

  harness::ClusterConfig config;
  config.n = 5;
  config.delta = Duration::millis(10);     // post-GST message delay bound
  config.epsilon = Duration::millis(1);    // clock skew bound
  config.gst = RealTime::zero();           // stable from the start

  harness::Cluster cluster(config, std::make_shared<object::RegisterObject>());

  if (!cluster.await_steady_leader(Duration::seconds(5))) {
    std::cerr << "no leader elected\n";
    return 1;
  }
  std::cout << "steady leader: p" << cluster.steady_leader() << " after "
            << cluster.sim().now().to_millis_f() << " ms\n";

  // Write through a follower; the request is forwarded to the leader, which
  // batches and commits it via the majority protocol.
  cluster.submit(1, object::RegisterObject::write("hello, replicated world"));
  cluster.await_quiesce(Duration::seconds(5));
  std::cout << "write committed at " << cluster.sim().now().to_millis_f()
            << " ms\n";

  // Give the lease mechanism one renewal so every replica can serve the new
  // value locally, then read at every process.
  cluster.run_for(cluster.core_config().lease_renew_interval * 2);
  const auto msgs_before = cluster.sim().network().stats().sent;
  for (int i = 0; i < cluster.n(); ++i) {
    cluster.submit(i, object::RegisterObject::read());
  }
  cluster.await_quiesce(Duration::seconds(5));
  const auto msgs_after = cluster.sim().network().stats().sent;

  for (const auto& op : cluster.history().ops()) {
    if (cluster.model().is_read(op.op)) {
      std::cout << "  " << op.process << " read -> \"" << *op.response
                << "\" in " << op.latency().to_micros() << " us\n";
    }
  }
  std::cout << "messages sent during the 5 reads (protocol background "
               "traffic only): "
            << msgs_after - msgs_before << "\n";
  std::cout << "reads completed locally: none of them generated messages.\n";
  return 0;
}
