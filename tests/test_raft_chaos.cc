// Raft baseline under asynchrony, loss and crashes — safety must hold in
// the same adversarial conditions the core algorithm is tested under.
#include <gtest/gtest.h>

#include <memory>

#include "checker/linearizability.h"
#include "common/rng.h"
#include "harness/raft_cluster.h"
#include "object/kv_object.h"

namespace cht {
namespace {

using harness::ClusterConfig;
using harness::RaftCluster;

class RaftChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(RaftChaosTest, LinearizableUnderChaosAndCrash) {
  ClusterConfig config;
  config.n = 5;
  config.seed = GetParam();
  config.delta = Duration::millis(10);
  config.gst = RealTime::zero() + Duration::seconds(1);
  config.pre_gst_loss = 0.15;
  config.pre_gst_delay_max = Duration::millis(120);
  RaftCluster cluster(config, std::make_shared<object::KVObject>());
  Rng rng(GetParam() * 31 + 7);

  bool crashed = false;
  for (int step = 0; step < 60; ++step) {
    const int proc = static_cast<int>(rng.next_below(5));
    if (cluster.replica(proc).crashed()) continue;
    // Two keys (checker partitions per key); space submissions out before
    // GST to bound the concurrency the checker must untangle.
    const std::string key = rng.next_bool(0.5) ? "k1" : "k2";
    if (rng.next_bool(0.5)) {
      cluster.submit(proc, object::KVObject::get(key));
    } else {
      cluster.submit(proc, object::KVObject::put(key, "s" + std::to_string(step)));
    }
    const bool pre_gst = cluster.sim().now() < config.gst;
    cluster.run_for(Duration::millis(pre_gst ? rng.next_in(60, 140)
                                             : rng.next_in(20, 80)));
    if (!crashed && step == 30) {
      const int leader = cluster.leader();
      if (leader >= 0) {
        cluster.sim().crash(ProcessId(leader));
        crashed = true;
      }
    }
  }
  const bool quiesced = cluster.await_quiesce(Duration::seconds(120));
  if (!quiesced) {
    // Only ops submitted at the crashed process may hang.
    for (const auto& op : cluster.history().ops()) {
      if (!op.completed()) {
        EXPECT_TRUE(cluster.replica(op.process.index()).crashed())
            << op.process << " op never completed";
      }
    }
  }
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;

  // Election safety: at most one leader per term across final states.
  std::map<std::int64_t, int> per_term;
  for (int i = 0; i < cluster.n(); ++i) {
    if (!cluster.replica(i).crashed() &&
        cluster.replica(i).role() == raft::RaftReplica::Role::kLeader) {
      EXPECT_LE(++per_term[cluster.replica(i).term()], 1);
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, RaftChaosTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u, 7u, 8u));

}  // namespace
}  // namespace cht
