#include "chaos/invariants.h"

#include <algorithm>
#include <map>
#include <set>
#include <sstream>

#include "checker/linearizability.h"
#include "checker/sessions.h"
#include "object/kv_object.h"

namespace cht::chaos {
namespace {

// Half-open real-time interval [lo, hi).
struct Interval {
  RealTime lo = RealTime::zero();
  RealTime hi = RealTime::zero();
};

// Per-replica suspect spans derived from the guard's transition record for
// the current incarnation: the guard starts non-suspect, flips at each
// transition, and a span still open at the end of the run closes at `end`.
std::vector<Interval> suspect_spans(
    const std::vector<core::ClockSkewGuard::Transition>& transitions,
    RealTime end) {
  std::vector<Interval> spans;
  bool suspect = false;
  RealTime open = RealTime::zero();
  for (const auto& t : transitions) {
    if (t.suspect && !suspect) {
      suspect = true;
      open = t.at;
    } else if (!t.suspect && suspect) {
      suspect = false;
      spans.push_back({open, t.at});
    }
  }
  if (suspect) spans.push_back({open, end});
  return spans;
}

std::vector<Interval> intersect(const std::vector<Interval>& a,
                                const std::vector<Interval>& b) {
  std::vector<Interval> out;
  std::size_t i = 0;
  std::size_t j = 0;
  while (i < a.size() && j < b.size()) {
    const RealTime lo = std::max(a[i].lo, b[j].lo);
    const RealTime hi = std::min(a[i].hi, b[j].hi);
    if (lo < hi) out.push_back({lo, hi});
    if (a[i].hi < b[j].hi) {
      ++i;
    } else {
      ++j;
    }
  }
  return out;
}

// `window` minus the (sorted, disjoint) intervals in `cut`.
std::vector<Interval> subtract(Interval window,
                               const std::vector<Interval>& cut) {
  std::vector<Interval> out;
  RealTime cursor = window.lo;
  for (const auto& c : cut) {
    if (c.hi <= cursor || c.lo >= window.hi) continue;
    if (c.lo > cursor) out.push_back({cursor, std::min(c.lo, window.hi)});
    cursor = std::max(cursor, c.hi);
    if (cursor >= window.hi) break;
  }
  if (cursor < window.hi) out.push_back({cursor, window.hi});
  return out;
}

// The real-time spans during which a stale read is *tolerable* with the
// clock guard on: synchrony is broken (or its effects may still linger) and
// not every replica has noticed yet.
//
//   skew_active = [first injection, heal + drain)
//   drain       = skew_max + 14*delta + epsilon
//
// The drain term bounds how long skew effects outlive the heal: a
// monotonicity-clamped (frozen) fast clock lags real time by up to skew_max
// after its offset is restored; a lease issued at the last skewed instant
// stays nominally valid for up to 12*delta (chtread lease_period; Raft's
// 10*delta lease is shorter); one message flight of delta can still deliver
// a stale-based reply; plus delta + epsilon margin.
//
// Within skew_active, instants where *every* replica's guard is suspect are
// carved out: no lease read is served anywhere then (every stack degrades
// to its clock-free path), so a stale read completed wholly inside such an
// instant is a real bug, not exposure. Replicas that restarted lose their
// incarnation's transitions and conservatively count as never-suspect,
// which only shrinks the carve-out (more reads excused, never fewer).
std::vector<Interval> exposed_spans(ClusterAdapter& cluster,
                                    const ExposureInput& exposure,
                                    RealTime end) {
  if (exposure.first_skew == RealTime::max()) return {};
  const Duration drain =
      exposure.skew_max + 14 * exposure.delta + exposure.epsilon;
  const RealTime close = exposure.heal_time == RealTime::max()
                             ? RealTime::max()
                             : std::min(exposure.heal_time + drain, end);
  const Interval window{exposure.first_skew, std::min(close, end)};
  if (!(window.lo < window.hi)) return {};
  std::vector<Interval> all_suspect = suspect_spans(
      cluster.guard_transitions_of(0), end);
  for (int i = 1; i < cluster.n() && !all_suspect.empty(); ++i) {
    all_suspect =
        intersect(all_suspect, suspect_spans(cluster.guard_transitions_of(i), end));
  }
  return subtract(window, all_suspect);
}

// A completed read is excused iff its [invoked, responded] span touches an
// exposed span: it *may* have been served off a lease measured on a broken
// clock before detecting evidence arrived.
bool excused(const checker::HistoryOp& op, const object::ObjectModel& model,
             const std::vector<Interval>& exposed) {
  if (!op.completed() || !model.is_read(op.op)) return false;
  for (const auto& span : exposed) {
    if (op.invoked < span.hi && *op.responded >= span.lo) return true;
  }
  return false;
}

}  // namespace

InvariantReport check_invariants(ClusterAdapter& cluster,
                                 const NemesisProfile& profile, bool quiesced,
                                 std::size_t check_budget,
                                 const ExposureInput& exposure) {
  InvariantReport report;
  std::vector<std::string>& violations = report.violations;

  // Liveness: with every fault healed, only a crash at the submitter excuses
  // a pending operation — including a crash the submitter has since
  // *recovered* from (the crash wiped the in-memory client session, so the
  // callback can never fire even though the process is live again).
  if (!quiesced) {
    for (const auto& op : cluster.history().ops()) {
      if (op.completed()) continue;
      if (cluster.crashed(op.process.index())) continue;
      if (cluster.sim().crashed_at_or_after(op.process, op.invoked)) continue;
      std::ostringstream os;
      os << "liveness: " << op.op << " submitted at live " << op.process
         << " never completed";
      violations.push_back(os.str());
    }
  }

  // Durability: every acknowledged write must still be committed on some
  // live replica. Power cycles tear/lose unsynced storage writes at crash,
  // so this is exactly the claim that each stack's sync-before-externalize
  // discipline is placed correctly: an op the cluster responded to may never
  // roll back, no matter how many crash/recover cycles follow the ack.
  {
    const auto ids = cluster.committed_op_ids();
    const std::set<OperationId> committed(ids.begin(), ids.end());
    for (const auto& op : cluster.history().ops()) {
      if (!op.completed() || cluster.model().is_read(op.op)) continue;
      if (!op.id.process.valid()) continue;  // submit path exposed no id
      if (!committed.contains(op.id)) {
        std::ostringstream os;
        os << "durability: acked write " << op.id << " (" << op.op
           << ") is no longer committed on any live replica";
        violations.push_back(os.str());
      }
    }
  }

  // Exactly-once: no acknowledged RMW was applied twice. Client retries
  // re-send an operation under the same session id (possibly to several
  // replicas across leader changes); the replica-side session/dedup tables
  // must collapse them to a single log/batch entry. Counted per replica so a
  // duplicate is caught even if the duplicated sequence is consistent
  // cluster-wide.
  {
    std::set<OperationId> acked;
    for (const auto& op : cluster.history().ops()) {
      if (!op.completed() || cluster.model().is_read(op.op)) continue;
      if (op.id.process.valid()) acked.insert(op.id);
    }
    for (int i = 0; i < cluster.n(); ++i) {
      if (cluster.crashed(i) || cluster.recovering(i)) continue;
      std::map<OperationId, int> seen;
      for (const OperationId& id : cluster.committed_op_ids_of(i)) {
        if (!acked.contains(id)) continue;
        if (++seen[id] == 2) {
          std::ostringstream os;
          os << "exactly-once: acked RMW " << id
             << " applied twice at replica p" << i;
          violations.push_back(os.str());
        }
      }
    }
  }

  // Exposure spans: empty unless this run both tolerates stale reads and
  // ran the clock-health guard (then a stale read is excusable only inside
  // them).
  const bool exposure_mode =
      profile.allows_stale_reads && exposure.clock_guard;
  const std::vector<Interval> exposed =
      exposure_mode ? exposed_spans(cluster, exposure, cluster.sim().now())
                    : std::vector<Interval>{};

  // Read-your-writes (KV histories only). Implied by linearizability, but
  // checked separately: it is linear-time (so it still decides when the
  // checker below exhausts its budget) and names the offending client and
  // value when it fires. With the guard off, skipped when clock skew
  // legally permits stale reads (a stale local read may miss the reader's
  // own write); with the guard on, checked with exposure-excused reads
  // removed — outside the window, reads must be fresh again.
  if ((!profile.allows_stale_reads || exposure_mode) &&
      dynamic_cast<const object::KVObject*>(&cluster.model()) != nullptr) {
    std::vector<checker::HistoryOp> ryw_ops;
    for (const auto& op : cluster.history().ops()) {
      if (!excused(op, cluster.model(), exposed)) ryw_ops.push_back(op);
    }
    for (auto& v : checker::check_read_your_writes(ryw_ops)) {
      violations.push_back(std::move(v));
    }
  }

  // Linearizability. Clock skew beyond epsilon may yield stale reads; what
  // that legally means depends on the clock-health guard:
  //
  //   guard ON   two-pass exposure accounting. Pass 1 checks the full
  //              history (most runs pass outright: the skew never produced
  //              an anomaly or the guard caught it first). On failure,
  //              pass 2 drops the exposure-excused reads and re-checks —
  //              dropping operations from a linearizable history keeps it
  //              linearizable, so this only ever forgives, never convicts.
  //              A failure that survives pass 2 is a stale read *outside*
  //              its exposure window (or an RMW anomaly): a real bug.
  //   guard OFF  legacy fallback: only the RMW sub-history is guaranteed
  //              (the paper's Section 1 robustness claim).
  if (profile.allows_stale_reads && !exposure_mode) {
    const auto rmw = checker::check_rmw_subhistory_linearizable(
        cluster.model(), cluster.history().ops(), check_budget);
    if (!rmw.decided) {
      report.checker_decided = false;
    } else if (!rmw.linearizable) {
      violations.push_back("rmw sub-history not linearizable: " +
                           rmw.explanation);
    }
  } else {
    const auto full = checker::check_linearizable(
        cluster.model(), cluster.history().ops(), check_budget);
    if (!full.decided) {
      report.checker_decided = false;
    } else if (!full.linearizable && !exposure_mode) {
      violations.push_back("history not linearizable: " + full.explanation);
    } else if (!full.linearizable) {
      std::vector<checker::HistoryOp> filtered;
      std::size_t dropped = 0;
      for (const auto& op : cluster.history().ops()) {
        if (excused(op, cluster.model(), exposed)) {
          ++dropped;
        } else {
          filtered.push_back(op);
        }
      }
      const auto pass2 = checker::check_linearizable(
          cluster.model(), std::move(filtered), check_budget);
      if (!pass2.decided) {
        report.checker_decided = false;
      } else if (!pass2.linearizable) {
        violations.push_back(
            "history not linearizable outside clock-skew exposure windows: " +
            pass2.explanation);
      } else {
        report.reads_excused = dropped;
      }
    }
  }

  for (auto& v : cluster.protocol_invariants()) {
    violations.push_back(std::move(v));
  }
  return report;
}

}  // namespace cht::chaos
