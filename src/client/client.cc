#include "client/client.h"

#include <algorithm>
#include <utility>

#include "common/assert.h"

namespace cht::client {

OperationId Client::submit(object::Operation op, bool is_read, Callback cb,
                           DispatchHook on_dispatch) {
  CHT_ASSERT(id().valid(), "client not attached");
  Pending pending;
  pending.id = OperationId{id(), ++seq_};
  pending.op = std::move(op);
  pending.is_read = is_read;
  pending.cb = std::move(cb);
  pending.on_dispatch = std::move(on_dispatch);
  metrics_.add(is_read ? "client.reads" : "client.rmws");
  const OperationId out = pending.id;
  if (current_) {
    queue_.push_back(std::move(pending));
  } else {
    current_ = std::move(pending);
    dispatch_current();
  }
  return out;
}

void Client::dispatch_current() {
  Pending& pending = *current_;
  pending.begun = now_real();
  if (pending.on_dispatch) pending.on_dispatch(pending.id);
  send_current();
}

int Client::target_for(const Pending& pending) const {
  // First read attempt: the home replica (the local-lease fast path).
  // Otherwise prefer a learned leader; fall back to deterministic rotation
  // anchored at home.
  if (pending.attempts == 0 && pending.is_read && !pending.leader_only) {
    return home_;
  }
  if (leader_hint_ >= 0) return leader_hint_;
  return (home_ + pending.attempts) % cluster_size();
}

void Client::send_current() {
  Pending& pending = *current_;
  msg::ClientRequest request{pending.id, pending.op, pending.is_read,
                             pending.leader_only};
  send(ProcessId(target_for(pending)), msg::kRequest, std::move(request));
  arm_timer();
}

void Client::arm_timer() {
  timer_.cancel();
  const int doublings = std::min(current_->attempts, 8);
  const Duration timeout =
      std::min(Duration::micros(config_.request_timeout.to_micros()
                                << doublings),
               config_.backoff_cap);
  timer_ = schedule_after(timeout, [this] { on_timeout(); });
}

void Client::on_timeout() {
  if (!current_) return;
  Pending& pending = *current_;
  ++pending.attempts;
  pending.redirect_hops = 0;
  // The hint led nowhere (crashed or deposed leader); forget it and let
  // rotation / fresh Redirects re-teach us.
  leader_hint_ = -1;
  metrics_.add("client.retries");
  if (pending.is_read && !pending.leader_only &&
      pending.attempts >= config_.escalate_reads_after) {
    pending.leader_only = true;
    metrics_.add("client.read_escalations");
  }
  send_current();
}

void Client::on_message(const sim::Message& message) {
  if (message.is(msg::kReply)) {
    const auto& reply = message.as<msg::ClientReply>();
    if (!current_ || reply.id != current_->id) {
      metrics_.add("client.late_replies");
      return;
    }
    complete(reply.response);
    return;
  }
  if (message.is(msg::kRedirect)) {
    const auto& redirect = message.as<msg::Redirect>();
    if (!current_ || redirect.id != current_->id) return;
    metrics_.add("client.redirects");
    Pending& pending = *current_;
    if (redirect.leader_hint >= 0 && redirect.leader_hint < cluster_size() &&
        pending.redirect_hops < cluster_size()) {
      ++pending.redirect_hops;
      leader_hint_ = redirect.leader_hint;
      send_current();
    }
    // Hint unknown or hop budget spent: wait for the timeout to rotate.
    return;
  }
}

void Client::complete(const std::string& response) {
  timer_.cancel();
  Pending done = std::move(*current_);
  current_.reset();
  const std::int64_t latency_us = (now_real() - done.begun).to_micros();
  metrics_.histogram(done.is_read ? "client.read_latency_us"
                                  : "client.rmw_latency_us")
      .record(latency_us);
  metrics_.histogram("client.attempts_per_op").record(done.attempts + 1);
  if (!queue_.empty()) {
    current_ = std::move(queue_.front());
    queue_.pop_front();
    dispatch_current();
  }
  if (done.cb) done.cb(done.id, response);
}

}  // namespace cht::client
