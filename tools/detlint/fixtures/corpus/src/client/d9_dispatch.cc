// Fixture: rule D9 — handler exhaustiveness over the vocabulary declared in
// wire_d9.h. Positive cases: an arm for a type that is never sent, and an
// arm for a type the stack never declared. (The declared-but-unhandled case
// is flagged at the declaration, in wire_d9.h.)
#include <string>

namespace fixture {

struct Message {
  bool is(const char* type) const;
};

struct Endpoint {
  void send(int to, const char* type, const std::string& payload);
  void broadcast(const char* type, const std::string& payload);

  void pump() {
    send(1, msg::kPing, "x");
    broadcast(msg::kPong, "y");
    send(2, msg::kLost, "z");
  }

  void on_message(const Message& message) {
    if (message.is(msg::kPing)) {
      // Negative: declared, dispatched, sent.
    } else if (message.is(msg::kPong)) {
      // Negative: broadcast counts as a send site.
    } else if (message.is(msg::kGhost)) {  // detlint-expect: D9
      // Unreachable: nothing in this stack ever sends cl.ghost.
    } else if (message.is(msg::kAlien)) {  // detlint-expect: D9
      // Undeclared: kAlien is not part of this stack's vocabulary.
    }
  }
};

}  // namespace fixture
