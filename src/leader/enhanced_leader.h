// Enhanced leader service (paper Section 2 / Appendix B reconstruction).
//
// Transforms any Omega-style leader() black box into a service providing
// AmLeader(t1, t2) with:
//
//  (EL1) If AmLeader(t1,t2) and AmLeader(t1',t2') by *distinct* processes
//        both return true, the intervals [t1,t2] and [t1',t2'] are disjoint
//        (no two processes are leaders at the same local time).
//  (EL2) Eventually some correct process l is permanently the leader: there
//        is a local time t* such that for all t2 >= t1 >= t*,
//        AmLeader(t1,t2) returns true at l (when called at local time
//        >= t2) and false at every other process.
//
// Mechanism (from the paper's prose): each process q periodically polls
// leader() and sends the believed leader a *support* message containing an
// interval of local time during which q supports it, plus a counter c of how
// many times q has observed the leader change. The key rule making EL1 hold
// is that q's support intervals for different leaders never overlap: when q
// switches leaders, the new support interval starts strictly after the end
// of the last interval q granted to the previous leader.
//
// AmLeader(t1,t2) at p: true iff a strict majority of processes q (possibly
// including p itself) have sent p support such that, for a single counter
// value c_q, one recorded interval covers t1 and one covers t2. The shared
// counter certifies that q supported p continuously between the two covers
// (q increments c on every observed change, so an unchanged c means q never
// supported anyone else in between).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "sim/message.h"
#include "sim/process.h"

namespace cht::leader {

struct EnhancedLeaderConfig {
  // How often each process re-polls leader() and renews its support.
  Duration support_interval = Duration::millis(5);
  // Length of each granted support interval. Must comfortably exceed
  // support_interval + delta so that a stable leader's support never lapses.
  Duration support_duration = Duration::millis(40);
  // Recorded support intervals ending further than this before `now` are
  // pruned (they can no longer cover any queried time of interest).
  Duration history_horizon = Duration::seconds(10);
};

// Payload of "els.support" messages.
struct SupportGrant {
  std::int64_t counter = 0;
  LocalTime start;
  LocalTime end;
};

class EnhancedLeaderService {
 public:
  EnhancedLeaderService(sim::Process& host,
                        std::function<ProcessId()> leader_fn,
                        EnhancedLeaderConfig config)
      : host_(host), leader_fn_(std::move(leader_fn)), config_(config) {}

  void start();

  // Restores the granting-side invariants from stable storage after a crash
  // and restart, then starts the service. The change counter is persisted
  // (synced) before any grant uses it, so resuming from the stored value
  // guarantees fresh counters; the first post-restart grant is additionally
  // pushed past every interval the previous incarnation could have granted
  // (crash-local-time + support_duration), keeping EL1's disjointness intact
  // even though the old grant ends were lost with the crash.
  void recover();

  // True iff this process has been the leader continuously at all local
  // times in [t1, t2] (as certified by a majority of supporters).
  bool am_leader(LocalTime t1, LocalTime t2);

  // The raw leader() belief (where non-leaders send their RMW requests).
  ProcessId believed_leader() { return leader_fn_(); }

  bool handle_message(const sim::Message& message);

  static constexpr const char* kSupportType = "els.support";

 private:
  struct Interval {
    LocalTime start;
    LocalTime end;
    bool covers(LocalTime t) const { return start <= t && t <= end; }
  };
  // Supports received from one process, keyed by counter.
  using SupporterRecord = std::map<std::int64_t, std::vector<Interval>>;

  void support_tick();
  void persist_counter();
  void deliver_grant(ProcessId target, const SupportGrant& grant);
  void record_support(ProcessId from, const SupportGrant& grant);
  void prune(SupporterRecord& record);
  static bool covers(const SupporterRecord& record, LocalTime t1, LocalTime t2);

  sim::Process& host_;
  std::function<ProcessId()> leader_fn_;
  EnhancedLeaderConfig config_;

  // --- Granting side (this process as supporter) ---
  ProcessId supported_ = ProcessId::invalid();
  std::int64_t change_counter_ = 0;
  LocalTime last_grant_end_ = LocalTime::min();
  LocalTime min_grant_start_ = LocalTime::min();

  // --- Receiving side (this process as candidate leader) ---
  std::map<int, SupporterRecord> supports_;  // by supporter index
};

}  // namespace cht::leader
