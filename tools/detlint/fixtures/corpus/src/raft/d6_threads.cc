// Fixture: rule D6 — threading primitives in simulated protocol code. The
// simulator is single-threaded by construction; parallelism lives in the
// seed sweeper and bench harnesses only.
#include <atomic>  // detlint-expect: D6
#include <mutex>  // detlint-expect: D6
#include <thread>  // detlint-expect: D6

namespace fixture {

struct Worker {
  std::atomic<int> counter_{0};  // detlint-expect: D6
  std::mutex mu_;  // detlint-expect: D6

  void bad_spawn() {
    std::thread t([this] { counter_.fetch_add(1); });  // detlint-expect: D6
    t.join();
  }

  void bad_lock() {
    std::lock_guard<std::mutex> lock(mu_);  // detlint-expect: D6
  }

  // Negative: suppressed with rationale.
  void tolerated() {
    std::atomic_thread_fence(std::memory_order_seq_cst);  // detlint: allow(D6) documented fence experiment
  }
};

}  // namespace fixture
