// A single read/write register.
//
// Operations:  read() -> value ;  write(v) -> "ok".
// Every write conflicts with the read (unless it writes the current value,
// which the static predicate cannot know, so it is conservatively true).
#pragma once

#include <memory>
#include <string>

#include "object/object.h"

namespace cht::object {

class RegisterState final : public ObjectState {
 public:
  explicit RegisterState(std::string value) : value_(std::move(value)) {}
  std::unique_ptr<ObjectState> clone() const override {
    return std::make_unique<RegisterState>(value_);
  }
  std::string fingerprint() const override { return value_; }

  const std::string& value() const { return value_; }
  void set_value(std::string v) { value_ = std::move(v); }

 private:
  std::string value_;
};

class RegisterObject final : public ObjectModel {
 public:
  explicit RegisterObject(std::string initial = "0")
      : initial_(std::move(initial)) {}

  std::string name() const override { return "register"; }
  std::unique_ptr<ObjectState> make_initial_state() const override {
    return std::make_unique<RegisterState>(initial_);
  }
  Response apply(ObjectState& state, const Operation& op) const override;
  bool is_read(const Operation& op) const override { return op.kind == "read"; }
  bool conflicts(const Operation&, const Operation& rmw) const override {
    return !is_no_op(rmw);  // any write may change what read returns
  }

  static Operation read() { return {"read", ""}; }
  static Operation write(std::string value) {
    return {"write", std::move(value)};
  }

 private:
  std::string initial_;
};

}  // namespace cht::object
