// Tunables of the replication algorithm.
//
// All protocol timing is expressed in terms of the model parameters:
// delta (the known post-GST bound on message delay, measured on local
// clocks) and epsilon (the known bound on clock skew). The defaults follow
// the relationships the paper's analysis needs:
//   - LeasePeriod >> delta so leases are usually valid;
//   - lease renewals more frequent than LeasePeriod so a stable leader's
//     leases never lapse at connected processes;
//   - retry/resend intervals of a few delta to ride out pre-GST loss.
#pragma once

#include <optional>
#include <string>
#include <utility>
#include <vector>

#include "common/time.h"
#include "core/clock_guard.h"
#include "leader/enhanced_leader.h"
#include "leader/omega.h"

namespace cht::core {

// Which processes must acknowledge a Prepare (beyond the majority) before the
// leader may commit without waiting out lease expiry. These knobs isolate the
// mechanisms the paper contrasts in Section 5; the defaults are the paper's
// algorithm.
enum class CommitGate {
  // Paper: wait for the tracked leaseholder set (or lease expiry, once);
  // unresponsive processes are dropped from the set and delay RMWs at most
  // once.
  kLeaseholders,
  // Megastore-style: every process must acknowledge every write (or be
  // waited out each time); there is no leaseholder-set memory, so a crashed
  // process delays *every* subsequent write until it is invalidated again.
  kAllProcesses,
  // Plain state-machine replication (VR/Raft-style): commit on majority acks
  // alone. Unsafe to combine with local lease reads; pair it with
  // ReadPolicy::kLeaderForward.
  kMajorityOnly,
};

enum class ReadPolicy {
  // Paper: local reads against a lease, blocking only on *conflicting*
  // pending batches.
  kLocalLease,
  // Spanner option (a) / Raft without leases: forward every read to the
  // leader (non-local; concentrates load).
  kLeaderForward,
  // Paxos-Quorum-Leases-style conflict-blindness: a read waits for every
  // pending batch, whether or not it conflicts.
  kAnyPendingBlocks,
  // Spanner option (b): stamp the read with the current local time and wait
  // until the replica's safe time passes it (we use the leader's periodic
  // LeaseGrant timestamps as the safe-time watermark, which bounds the wait
  // by the renewal interval; pure Spanner waits for the next write and can
  // block unboundedly). Every read blocks, even with no writes in flight.
  kSafeTime,
  // DELIBERATELY UNSAFE: answer every read immediately from the local
  // applied state, with no lease and no blocking. Exists only to demonstrate
  // the necessity-of-blocking lower bound (paper Section 4): with this
  // policy the checker finds the linearizability violation that Theorem 4.1
  // predicts for any algorithm whose reads are "too fast".
  kUnsafeLocal,
};

struct Config {
  Duration delta = Duration::millis(10);
  Duration epsilon = Duration::millis(1);

  CommitGate commit_gate = CommitGate::kLeaseholders;
  ReadPolicy read_policy = ReadPolicy::kLocalLease;
  // Spanner-style commit wait: after the gate, the leader additionally waits
  // out this much clock uncertainty before committing each batch (zero for
  // the paper's algorithm, whose commit latency is independent of epsilon
  // after GST).
  Duration commit_wait = Duration::zero();

  Duration lease_period;            // read-lease validity
  Duration lease_renew_interval;    // leader renewal cadence
  Duration leader_check_interval;   // thread-2 "am I leader?" poll cadence
  Duration steady_tick;             // leader steady-state loop cadence
  Duration estreq_resend;           // EstReq resend while collecting
  Duration prepare_resend;          // Prepare resend while awaiting acks
  Duration rmw_retry;               // client re-submit of a pending RMW
  Duration anti_entropy_interval;   // gap-fill poll (not read-triggered)
  Duration commit_rebroadcast;      // lazy rebroadcast of last commit

  leader::OmegaConfig omega;
  leader::EnhancedLeaderConfig els;

  // Runtime detection of broken epsilon-synchrony (clock_guard.h). While a
  // replica is clock-suspect its lease reads degrade to the RMW/consensus
  // path; disable to reproduce the paper's assume-synchrony behaviour.
  ClockGuardConfig clock_guard;

  // Whether each replica's metrics::Registry records anything. Metrics never
  // feed back into protocol decisions, so this flag cannot change simulation
  // behaviour (asserted by test_observability's determinism check).
  bool metrics_enabled = true;

  static Config defaults_for(Duration delta, Duration epsilon) {
    Config c;
    c.delta = delta;
    c.epsilon = epsilon;
    c.lease_period = 12 * delta;
    c.lease_renew_interval = 3 * delta;
    c.leader_check_interval = delta / 2;
    c.steady_tick = delta / 4;
    c.estreq_resend = 2 * delta;
    c.prepare_resend = 2 * delta;
    c.rmw_retry = 4 * delta;
    c.anti_entropy_interval = 2 * delta;
    c.commit_rebroadcast = 8 * delta;
    c.omega.heartbeat_interval = delta;
    c.omega.timeout = 4 * delta + epsilon;
    c.els.support_interval = delta;
    c.els.support_duration = 8 * delta;
    c.els.history_horizon = 100 * delta;
    c.clock_guard = ClockGuardConfig::defaults_for(delta, epsilon);
    return c;
  }

  static Config defaults() {
    return defaults_for(Duration::millis(10), Duration::millis(1));
  }
};

inline const char* to_string(CommitGate gate) {
  switch (gate) {
    case CommitGate::kLeaseholders:
      return "leaseholders";
    case CommitGate::kAllProcesses:
      return "all_processes";
    case CommitGate::kMajorityOnly:
      return "majority_only";
  }
  return "?";
}

inline const char* to_string(ReadPolicy policy) {
  switch (policy) {
    case ReadPolicy::kLocalLease:
      return "local_lease";
    case ReadPolicy::kLeaderForward:
      return "leader_forward";
    case ReadPolicy::kAnyPendingBlocks:
      return "any_pending_blocks";
    case ReadPolicy::kSafeTime:
      return "safe_time";
    case ReadPolicy::kUnsafeLocal:
      return "unsafe_local";
  }
  return "?";
}

// Declarative experiment-level deviations from `Config::defaults_for`. This
// replaces the old opaque `std::function<void(Config&)>` tweak callback:
// every field an experiment may vary is a named optional, so harnesses can
// print and serialize exactly what a run changed (the JSON artifacts embed
// `entries()` verbatim). Unset fields leave the computed defaults alone;
// `apply()` runs after `defaults_for(delta, epsilon)` has filled the config.
struct ConfigOverrides {
  std::optional<ReadPolicy> read_policy;
  std::optional<CommitGate> commit_gate;
  std::optional<Duration> commit_wait;
  std::optional<Duration> lease_period;
  std::optional<Duration> lease_renew_interval;
  std::optional<Duration> anti_entropy_interval;
  std::optional<Duration> rmw_retry;
  std::optional<bool> metrics_enabled;

  void apply(Config& config) const {
    if (read_policy) config.read_policy = *read_policy;
    if (commit_gate) config.commit_gate = *commit_gate;
    if (commit_wait) config.commit_wait = *commit_wait;
    if (lease_period) config.lease_period = *lease_period;
    if (lease_renew_interval) {
      config.lease_renew_interval = *lease_renew_interval;
    }
    if (anti_entropy_interval) {
      config.anti_entropy_interval = *anti_entropy_interval;
    }
    if (rmw_retry) config.rmw_retry = *rmw_retry;
    if (metrics_enabled) config.metrics_enabled = *metrics_enabled;
  }

  bool empty() const {
    return !read_policy && !commit_gate && !commit_wait && !lease_period &&
           !lease_renew_interval && !anti_entropy_interval && !rmw_retry &&
           !metrics_enabled;
  }

  // The set fields as (name, value) strings, in declaration order — the
  // printable/serializable form used by tables and JSON artifacts.
  std::vector<std::pair<std::string, std::string>> entries() const {
    std::vector<std::pair<std::string, std::string>> out;
    const auto us = [](Duration d) {
      return std::to_string(d.to_micros()) + "us";
    };
    if (read_policy) out.emplace_back("read_policy", to_string(*read_policy));
    if (commit_gate) out.emplace_back("commit_gate", to_string(*commit_gate));
    if (commit_wait) out.emplace_back("commit_wait", us(*commit_wait));
    if (lease_period) out.emplace_back("lease_period", us(*lease_period));
    if (lease_renew_interval) {
      out.emplace_back("lease_renew_interval", us(*lease_renew_interval));
    }
    if (anti_entropy_interval) {
      out.emplace_back("anti_entropy_interval", us(*anti_entropy_interval));
    }
    if (rmw_retry) out.emplace_back("rmw_retry", us(*rmw_retry));
    if (metrics_enabled) {
      out.emplace_back("metrics_enabled", *metrics_enabled ? "true" : "false");
    }
    return out;
  }
};

}  // namespace cht::core
