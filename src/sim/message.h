// Message envelope carried by the simulated network.
//
// Payloads are type-erased so each protocol module defines its own message
// structs without a shared grand variant; receivers dispatch on `type` (an
// interned name, also used for per-type message accounting) and any_cast the
// payload.
#pragma once

#include <any>
#include <string>
#include <utility>

#include "common/assert.h"
#include "common/time.h"
#include "common/types.h"

namespace cht::sim {

struct Message {
  ProcessId from;
  ProcessId to;
  std::string type;
  std::any payload;
  RealTime sent_at;
  // The sender's local clock reading at send time, stamped by Process::send.
  // Receivers with a clock guard derive a sound pairwise-skew lower bound
  // from it (clock_guard.h). LocalTime::min() marks an unstamped message
  // (hand-crafted in tests); guards ignore those.
  LocalTime sent_local = LocalTime::min();

  template <class T>
  const T& as() const {
    const T* p = std::any_cast<T>(&payload);
    CHT_ASSERT(p != nullptr, "message payload type mismatch");
    return *p;
  }

  bool is(std::string_view t) const { return type == t; }
};

}  // namespace cht::sim
