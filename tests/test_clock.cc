#include "sim/clock.h"

#include <gtest/gtest.h>

namespace cht::sim {
namespace {

RealTime rt(std::int64_t us) { return RealTime::zero() + Duration::micros(us); }
LocalTime lt(std::int64_t us) {
  return LocalTime::zero() + Duration::micros(us);
}

TEST(ClockTest, OffsetApplied) {
  Clock clock(Duration::micros(250));
  EXPECT_EQ(clock.local_time(rt(1000)), lt(1250));
}

TEST(ClockTest, NegativeOffset) {
  Clock clock(Duration::micros(-250));
  EXPECT_EQ(clock.local_time(rt(1000)), lt(750));
}

TEST(ClockTest, RealTimeWhenInvertsOffset) {
  Clock clock(Duration::micros(100));
  EXPECT_EQ(clock.real_time_when(lt(500)), rt(400));
  EXPECT_EQ(clock.local_time(clock.real_time_when(lt(500))), lt(500));
}

TEST(ClockTest, MonotonicUnderOffsetDecrease) {
  Clock clock(Duration::micros(1000));
  EXPECT_EQ(clock.local_time(rt(5000)), lt(6000));
  clock.set_offset(Duration::micros(-1000));  // desync injection
  // The raw reading would be 4500, below the 6000 already reported.
  EXPECT_EQ(clock.local_time(rt(5500)), lt(6000));
  // Once real time catches up, the clock advances again.
  EXPECT_EQ(clock.local_time(rt(8000)), lt(8000 - 1000));
}

TEST(ClockTest, RealTimeWhenAlreadyReached) {
  Clock clock(Duration::micros(0));
  EXPECT_EQ(clock.local_time(rt(100)), lt(100));
  EXPECT_LE(clock.real_time_when(lt(50)), rt(100));
}

TEST(ClockTest, SkewBetweenTwoClocksBounded) {
  // Two clocks with offsets within [-eps/2, eps/2] stay within eps.
  const Duration eps = Duration::millis(2);
  Clock a(eps / 2);
  Clock b(Duration::zero() - eps / 2);
  for (std::int64_t t = 0; t < 1'000'000; t += 100'000) {
    const Duration skew = a.local_time(rt(t)) - b.local_time(rt(t));
    EXPECT_LE(skew, eps);
  }
}

}  // namespace
}  // namespace cht::sim
