// Observability core: a per-process registry of named counters, gauges and
// fixed-bucket log-scale histograms.
//
// Design constraints (see docs/OBSERVABILITY.md):
//   - the record path (Counter::inc, Gauge::set, Histogram::record) is
//     allocation-free: handles are obtained once at registration time and
//     write into pre-allocated storage;
//   - with the registry disabled every record call costs exactly one branch
//     (no allocation, no sample storage) — asserted by test_metrics;
//   - registries are mergeable by metric name (Registry::merge_from), so
//     per-replica registries aggregate into one cluster-wide view;
//   - iteration order is deterministic (name order), so exported artifacts
//     are reproducible byte for byte.
//
// Metrics never feed back into protocol decisions, so enabling or disabling
// a registry cannot change simulation behaviour (chaos fingerprints are
// invariant; test_observability asserts this).
#pragma once

#include <algorithm>
#include <array>
#include <bit>
#include <cstdint>
#include <limits>
#include <map>
#include <memory>
#include <string>
#include <string_view>

namespace cht::metrics {

class Registry;

// Monotonically increasing event count.
class Counter {
 public:
  void inc(std::int64_t delta = 1) {
    if (!*enabled_) return;
    value_ += delta;
  }
  std::int64_t value() const { return value_; }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  Counter(std::string name, const bool* enabled)
      : name_(std::move(name)), enabled_(enabled) {}
  std::string name_;
  const bool* enabled_;
  std::int64_t value_ = 0;
};

// Last-write-wins instantaneous value.
class Gauge {
 public:
  void set(std::int64_t value) {
    if (!*enabled_) return;
    value_ = value;
  }
  std::int64_t value() const { return value_; }
  const std::string& name() const { return name_; }

 private:
  friend class Registry;
  Gauge(std::string name, const bool* enabled)
      : name_(std::move(name)), enabled_(enabled) {}
  std::string name_;
  const bool* enabled_;
  std::int64_t value_ = 0;
};

// Fixed-bucket log-scale histogram (HDR-style: 4 sub-buckets per power of
// two). Covers non-negative 63-bit values with <= 25% relative bucket error;
// min/max/sum are tracked exactly. By convention histogram names carry their
// unit as a suffix (e.g. "span.doops.total_us").
class Histogram {
 public:
  static constexpr int kSubBuckets = 4;
  static constexpr int kBuckets = 248;  // bucket_of(INT64_MAX) == 247

  void record(std::int64_t value) {
    if (!*enabled_) return;
    if (value < 0) value = 0;
    ++buckets_[static_cast<std::size_t>(bucket_of(value))];
    ++count_;
    sum_ += value;
    min_ = std::min(min_, value);
    max_ = std::max(max_, value);
  }

  std::int64_t count() const { return count_; }
  std::int64_t sum() const { return sum_; }
  std::int64_t min() const { return count_ == 0 ? 0 : min_; }
  std::int64_t max() const { return count_ == 0 ? 0 : max_; }
  std::int64_t mean() const { return count_ == 0 ? 0 : sum_ / count_; }

  // Nearest-rank percentile, q in [0, 1]. Returns the upper bound of the
  // bucket holding the rank-th sample (exact at the extremes: q == 0 gives
  // the tracked min, q == 1 the tracked max).
  std::int64_t percentile(double q) const;
  std::int64_t p50() const { return percentile(0.50); }
  std::int64_t p99() const { return percentile(0.99); }

  void merge_from(const Histogram& other);

  const std::string& name() const { return name_; }
  const std::array<std::int64_t, kBuckets>& buckets() const { return buckets_; }

  // Log-scale bucketing: values 0..3 map to their own buckets; beyond that,
  // each power of two splits into kSubBuckets linear sub-buckets.
  static int bucket_of(std::int64_t value) {
    if (value < kSubBuckets) return static_cast<int>(value);
    const int msb = 63 - std::countl_zero(static_cast<std::uint64_t>(value));
    const int shift = msb - 2;
    const int sub = static_cast<int>((value >> shift) & 3);
    return (msb - 2) * kSubBuckets + kSubBuckets + sub;
  }
  static std::int64_t bucket_lower(int bucket) {
    if (bucket < kSubBuckets) return bucket;
    const int octave = (bucket - kSubBuckets) / kSubBuckets;
    const int sub = (bucket - kSubBuckets) % kSubBuckets;
    return static_cast<std::int64_t>(kSubBuckets + sub) << octave;
  }
  static std::int64_t bucket_upper(int bucket) {
    if (bucket < kSubBuckets) return bucket;
    const int octave = (bucket - kSubBuckets) / kSubBuckets;
    return bucket_lower(bucket) + (std::int64_t{1} << octave) - 1;
  }

 private:
  friend class Registry;
  Histogram(std::string name, const bool* enabled)
      : name_(std::move(name)), enabled_(enabled) {}
  std::string name_;
  const bool* enabled_;
  std::array<std::int64_t, kBuckets> buckets_{};
  std::int64_t count_ = 0;
  std::int64_t sum_ = 0;
  std::int64_t min_ = std::numeric_limits<std::int64_t>::max();
  std::int64_t max_ = 0;
};

// Owns all metrics of one process. Registration (counter/gauge/histogram)
// allocates and may be called at any time; the returned references stay
// valid for the registry's lifetime. Not copyable or movable: handles point
// into it.
class Registry {
 public:
  explicit Registry(bool enabled = true) : enabled_(enabled) {}
  Registry(const Registry&) = delete;
  Registry& operator=(const Registry&) = delete;

  bool enabled() const { return enabled_; }
  void set_enabled(bool enabled) { enabled_ = enabled; }

  Counter& counter(std::string_view name);
  Gauge& gauge(std::string_view name);
  Histogram& histogram(std::string_view name);

  // Convenience name-based increment (does a map lookup; prefer handles on
  // hot paths).
  void add(std::string_view name, std::int64_t delta = 1) {
    if (!enabled_) return;
    counter(name).inc(delta);
  }

  // Read-only lookups; zero/null when the metric does not exist.
  std::int64_t value(std::string_view name) const;
  const Histogram* find_histogram(std::string_view name) const;

  // Adds every metric of `other` into this registry, matching by name and
  // creating missing entries (counters/gauges add values; histograms merge
  // bucket-wise). Used to aggregate per-replica registries.
  void merge_from(const Registry& other);

  // Deterministic (name-ordered) iteration for exporters.
  template <class Fn>
  void for_each_counter(Fn fn) const {
    for (const auto& [name, c] : counters_) fn(*c);
  }
  template <class Fn>
  void for_each_gauge(Fn fn) const {
    for (const auto& [name, g] : gauges_) fn(*g);
  }
  template <class Fn>
  void for_each_histogram(Fn fn) const {
    for (const auto& [name, h] : histograms_) fn(*h);
  }

 private:
  bool enabled_;
  std::map<std::string, std::unique_ptr<Counter>, std::less<>> counters_;
  std::map<std::string, std::unique_ptr<Gauge>, std::less<>> gauges_;
  std::map<std::string, std::unique_ptr<Histogram>, std::less<>> histograms_;
};

}  // namespace cht::metrics
