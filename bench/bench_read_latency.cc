// E4 — Read latency across algorithms (paper S5 comparison).
//
// Claim: the paper's algorithm serves reads locally (0 network hops), so
// read latency is unaffected by delta; Raft ReadIndex reads pay a forward
// hop plus a majority round (>= 2 * delta when issued at a follower); reads
// forwarded to the leader (Spanner option (a)) pay a round trip; conflict-
// blind blocking (PQL-style) inflates tail latency under writes even for
// reads that touch unrelated keys.
//
// Workload: geo-style delta = 25 ms, read-heavy mix (95% reads) over 4 keys,
// with a moderate write stream on one hot key.
#include <iostream>
#include <memory>

#include "common/bench_util.h"
#include "common/experiment.h"
#include "object/kv_object.h"

namespace cht::bench {
namespace {

constexpr Duration kDelta = Duration::millis(25);

harness::ClusterConfig geo_config() {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = 4242;
  config.delta = kDelta;
  return config;
}

template <class ClusterT>
void drive(ClusterT& cluster, Rng& rng, int steps) {
  const std::vector<std::string> keys = {"hot", "a", "b", "c"};
  for (int step = 0; step < steps; ++step) {
    // One write per step on the hot key...
    cluster.submit(static_cast<int>(rng.next_below(5)),
                   object::KVObject::put("hot", std::to_string(step)));
    // ...and ~19 reads spread over all keys and processes.
    for (int r = 0; r < 19; ++r) {
      cluster.submit(static_cast<int>(rng.next_below(5)),
                     object::KVObject::get(keys[rng.next_below(keys.size())]));
    }
    cluster.run_for(Duration::millis(50));
  }
  cluster.await_quiesce(Duration::seconds(120));
}

metrics::LatencyRecorder run_core(ExperimentResult& result,
                                  const std::string& label,
                                  core::ReadPolicy policy) {
  Rng rng(1);
  core::ConfigOverrides overrides;
  overrides.read_policy = policy;
  harness::Cluster cluster(geo_config(), std::make_shared<object::KVObject>(),
                           overrides);
  cluster.await_steady_leader(Duration::seconds(10));
  cluster.run_for(Duration::seconds(2));
  drive(cluster, rng, result.scaled(400, 10));
  result.config(label, cluster.config(), cluster.overrides());
  result.observe(label, cluster);
  const auto reads = split_latencies(cluster.model(), cluster.history()).reads;
  result.latency(label, reads);
  return reads;
}

metrics::LatencyRecorder run_raft(ExperimentResult& result,
                                  const std::string& label,
                                  raft::ReadMode mode) {
  Rng rng(1);
  harness::RaftCluster cluster(geo_config(),
                               std::make_shared<object::KVObject>(), mode);
  cluster.await_leader(Duration::seconds(10));
  cluster.run_for(Duration::seconds(2));
  drive(cluster, rng, result.scaled(400, 10));
  result.config(label, cluster.config());
  result.observe(label, cluster);
  const auto reads = split_latencies(cluster.model(), cluster.history()).reads;
  result.latency(label, reads);
  return reads;
}

void add_row(ExperimentResult& result, const std::string& name,
             const metrics::LatencyRecorder& lat) {
  result.row({name, metrics::Table::num(static_cast<std::int64_t>(lat.count())),
              ms2(lat.p50()), ms2(lat.percentile(0.9)), ms2(lat.p99()),
              ms2(lat.max())});
}

}  // namespace
}  // namespace cht::bench

int main(int argc, char** argv) {
  using namespace cht;
  using namespace cht::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  ExperimentResult result("read_latency", args);
  result.begin(
      "E4: read latency, ours vs baselines (delta = 25 ms, 95% reads)",
      "Claim (paper S5): local lease reads complete in 0 network hops and\n"
      "block only on conflicting writes; every baseline pays network hops\n"
      "and/or conflict-blind blocking.");
  result.columns(
      {"algorithm", "reads", "p50 (ms)", "p90 (ms)", "p99 (ms)", "max (ms)"});
  add_row(result, "ours (local lease reads)",
          run_core(result, "ours", core::ReadPolicy::kLocalLease));
  add_row(result, "ours, conflict-blind (PQL-style blocking)",
          run_core(result, "conflict-blind", core::ReadPolicy::kAnyPendingBlocks));
  add_row(result, "leader-forwarded reads (Spanner option a)",
          run_core(result, "leader-forward", core::ReadPolicy::kLeaderForward));
  add_row(result, "timestamp + safe-time wait (Spanner option b)",
          run_core(result, "safe-time", core::ReadPolicy::kSafeTime));
  add_row(result, "raft ReadIndex",
          run_raft(result, "raft-readindex", raft::ReadMode::kReadIndex));
  add_row(result, "raft leader-lease",
          run_raft(result, "raft-lease", raft::ReadMode::kLeaderLease));
  result.note(
      "Expected shape: ours p50 = 0 ms (local, non-blocking), p99\n"
      "<= 3*delta = 75 ms; conflict-blind inflates p50/p99; safe-time\n"
      "waits ~half a beacon interval per read even with no writes; leader\n"
      "forwarding >= 1 RTT (~2*delta median); Raft ReadIndex is the\n"
      "slowest (forward + majority round); Raft leader-lease helps\n"
      "only reads issued *at* the leader (1/5 of them).");
  result.end();
  return result.finish();
}
