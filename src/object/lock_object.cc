#include "object/lock_object.h"

#include "common/assert.h"

namespace cht::object {

Response LockObject::apply(ObjectState& state, const Operation& op) const {
  auto& lock = dynamic_cast<LockState&>(state);
  if (op.kind == "holder") return lock.owner();
  if (op.kind == "try_acquire") {
    if (!lock.owner().empty() && lock.owner() != op.arg) return "held";
    lock.set_owner(op.arg);
    return "ok";
  }
  if (op.kind == "release") {
    if (lock.owner() != op.arg) return "not-held";
    lock.set_owner("");
    return "ok";
  }
  if (op.kind == "noop") return "ok";
  CHT_UNREACHABLE("unknown lock operation");
}

}  // namespace cht::object
