// E2 + E3 — Non-blocking reads and the 3*delta blocking bound (paper S3).
//
// Claims:
//   (E2) After the system stabilizes, reads at the leader never block; reads
//        at any other process block only when a *conflicting* RMW operation
//        is pending there.
//   (E3) A read that does block does so for at most 3*delta local time.
//
// We sweep the conflicting-write rate and report, per process class
// (leader / followers), the fraction of reads that blocked and the maximum
// blocking duration, as a multiple of delta. A second table sweeps delta
// itself to show the 3*delta scaling.
#include <iostream>
#include <memory>

#include "common/bench_util.h"
#include "common/experiment.h"
#include "object/kv_object.h"

namespace cht::bench {
namespace {

struct BlockingResult {
  std::int64_t leader_reads = 0;
  std::int64_t leader_blocked = 0;
  std::int64_t follower_reads = 0;
  std::int64_t follower_blocked = 0;
  Duration follower_max_block = Duration::zero();
};

BlockingResult run(ExperimentResult& result, Duration delta, Duration write_gap,
                   bool conflicting, std::uint64_t seed,
                   const std::string& observe_label = "") {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = delta;
  harness::Cluster cluster(config, std::make_shared<object::KVObject>());
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();

  struct ReadCounts {
    std::int64_t completed;
    std::int64_t blocked;
  };
  std::vector<ReadCounts> before(static_cast<std::size_t>(cluster.n()));
  for (int i = 0; i < cluster.n(); ++i) {
    auto& m = cluster.replica(i).metrics();
    before[static_cast<std::size_t>(i)] = {m.value("reads_completed"),
                                           m.value("reads_blocked")};
  }

  const std::string read_key = "hot";
  const std::string write_key = conflicting ? "hot" : "cold";
  for (int step = 0; step < result.scaled(300, 40); ++step) {
    cluster.submit((leader + 1) % cluster.n(),
                   object::KVObject::put(write_key, std::to_string(step)));
    // Reads land while the write is (likely) still pending.
    cluster.run_for(delta / 2);
    for (int i = 0; i < cluster.n(); ++i) {
      cluster.submit(i, object::KVObject::get(read_key));
    }
    cluster.run_for(write_gap);
  }
  cluster.await_quiesce(Duration::seconds(60));

  BlockingResult out;
  for (int i = 0; i < cluster.n(); ++i) {
    auto& m = cluster.replica(i).metrics();
    const auto& b = before[static_cast<std::size_t>(i)];
    const auto reads = m.value("reads_completed") - b.completed;
    const auto blocked = m.value("reads_blocked") - b.blocked;
    if (i == leader) {
      out.leader_reads += reads;
      out.leader_blocked += blocked;
    } else {
      out.follower_reads += reads;
      out.follower_blocked += blocked;
      const auto* blocks = m.find_histogram("span.read.block_us");
      if (blocks != nullptr) {
        out.follower_max_block =
            std::max(out.follower_max_block, Duration::micros(blocks->max()));
      }
    }
  }
  if (!observe_label.empty()) result.observe(observe_label, cluster);
  return out;
}

std::string pct(std::int64_t part, std::int64_t whole) {
  if (whole == 0) return "-";
  return metrics::Table::num(100.0 * part / whole, 1) + "%";
}

}  // namespace
}  // namespace cht::bench

int main(int argc, char** argv) {
  using namespace cht;
  using namespace cht::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  ExperimentResult result("blocking", args);

  result.begin(
      "E2: which reads block (post-GST)",
      "Claim (paper S3): leader reads never block; follower reads block only\n"
      "when a pending RMW *conflicts*; non-conflicting writes never block\n"
      "reads. Workload: continuous writes, reads at every process.");
  {
    const Duration delta = Duration::millis(10);
    result.columns({"writes", "leader blocked", "follower blocked",
                    "follower max block (x delta)"});
    for (const bool conflicting : {true, false}) {
      const auto r = run(result, delta, Duration::millis(15), conflicting, 7,
                         conflicting ? "conflicting" : "non-conflicting");
      result.row(
          {conflicting ? "conflicting (same key)" : "non-conflicting (other key)",
           pct(r.leader_blocked, r.leader_reads),
           pct(r.follower_blocked, r.follower_reads),
           metrics::Table::num(r.follower_max_block.to_micros() /
                                   static_cast<double>(delta.to_micros()),
                               2)});
      const std::string prefix = conflicting ? "conflicting_" : "nonconflicting_";
      result.metric(prefix + "leader_blocked", r.leader_blocked);
      result.metric(prefix + "follower_blocked", r.follower_blocked);
      result.metric(prefix + "follower_max_block_us",
                    r.follower_max_block.to_micros());
    }
    result.end();
  }

  result.begin(
      "E3: blocked reads are bounded by 3*delta",
      "Claim (paper S3): a read that blocks does so for at most 3*delta.\n"
      "Sweep delta; the max observed block must stay below 3*delta.");
  {
    result.columns({"delta (ms)", "max block (ms)", "max block / delta",
                    "bound 3*delta respected"});
    const std::vector<std::int64_t> sweep =
        result.smoke() ? std::vector<std::int64_t>{2, 50}
                       : std::vector<std::int64_t>{2, 5, 10, 20, 50};
    bool all_respected = true;
    for (const std::int64_t delta_ms : sweep) {
      const Duration delta = Duration::millis(delta_ms);
      Duration worst = Duration::zero();
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const auto r =
            run(result, delta, Duration::millis(delta_ms * 3 / 2), true, seed);
        worst = std::max(worst, r.follower_max_block);
      }
      const bool respected = worst <= 3 * delta;
      all_respected = all_respected && respected;
      result.row({metrics::Table::num(static_cast<std::int64_t>(delta_ms)),
                  ms2(worst),
                  metrics::Table::num(worst.to_micros() /
                                          static_cast<double>(delta.to_micros()),
                                      2),
                  respected ? "yes" : "NO"});
      result.metric("max_block_us_delta" + std::to_string(delta_ms),
                    worst.to_micros());
    }
    result.metric("bound_3delta_respected",
                  static_cast<std::int64_t>(all_respected ? 1 : 0));
    result.note(
        "Expected shape: leader 0% blocked; follower blocking only in\n"
        "the conflicting row; max block / delta <= 3 at every delta.");
    result.end();
  }
  return result.finish();
}
