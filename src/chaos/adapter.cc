#include "chaos/adapter.h"

#include <algorithm>
#include <map>
#include <sstream>

#include "common/assert.h"
#include "harness/cluster.h"
#include "harness/raft_cluster.h"
#include "harness/vr_cluster.h"
#include "object/bank_object.h"
#include "object/counter_object.h"
#include "object/kv_object.h"
#include "object/lock_object.h"
#include "object/queue_object.h"

namespace cht::chaos {
namespace {

harness::ClusterConfig cluster_config(const RunSpec& spec) {
  harness::ClusterConfig config;
  config.n = spec.n;
  config.seed = spec.seed;
  config.delta = spec.delta();
  config.epsilon = spec.epsilon();
  config.gst = spec.gst();
  config.pre_gst_loss = spec.pre_gst_loss;
  config.storage.sync_latency = Duration::micros(spec.sync_latency_us);
  config.storage.unsynced_key_loss = spec.unsynced_key_loss;
  config.storage.group_commit = spec.group_commit;
  // One networked client per replica slot: the driver's submit(i, op) then
  // maps 1:1 onto client i, whose home replica is i.
  config.clients = spec.client_path ? spec.n : 0;
  config.clock_guard = spec.clock_guard;
  return config;
}

// --- chtread (the paper's algorithm) ---------------------------------------

class ChtreadAdapter final : public ClusterAdapter {
 public:
  ChtreadAdapter(const RunSpec& spec,
                 std::shared_ptr<const object::ObjectModel> model)
      : cluster_(cluster_config(spec), std::move(model),
                 core::ConfigOverrides{}) {}

  const std::string& protocol() const override {
    static const std::string kName = "chtread";
    return kName;
  }
  sim::Simulation& sim() override { return cluster_.sim(); }
  int n() const override { return cluster_.n(); }
  const object::ObjectModel& model() const override { return cluster_.model(); }
  checker::HistoryRecorder& history() override { return cluster_.history(); }
  void submit(int process, object::Operation op) override {
    cluster_.submit(process, std::move(op));
  }
  bool crashed(int process) const override {
    if (process >= n()) return false;  // clients never crash
    return const_cast<harness::Cluster&>(cluster_).replica(process).crashed();
  }
  void restart(int process) override { cluster_.restart(process); }
  std::vector<OperationId> committed_op_ids_of(int replica) override {
    std::vector<OperationId> ids;
    const auto snap = cluster_.replica(replica).snapshot();
    for (const auto& [k, batch] : snap.batches) {
      if (k > snap.applied_upto) continue;
      for (const auto& bop : batch) {
        if (!model().is_read(bop.op)) ids.push_back(bop.id);
      }
    }
    return ids;
  }
  std::vector<OperationId> durable_op_ids_of(int replica) override {
    // Durability counts everything the replica's batch store carries, not
    // just the applied prefix: a replica revived at heal time may durably
    // hold batches past applied_upto that it has not re-applied before the
    // final-state check runs. The op is not lost — applying is a matter of
    // local progress, not of surviving the crash.
    std::vector<OperationId> ids;
    const auto snap = cluster_.replica(replica).snapshot();
    for (const auto& [k, batch] : snap.batches) {
      for (const auto& bop : batch) {
        if (!model().is_read(bop.op)) ids.push_back(bop.id);
      }
    }
    return ids;
  }
  std::vector<core::ClockSkewGuard::Transition> guard_transitions_of(
      int replica) override {
    return cluster_.replica(replica).clock_guard().transitions();
  }
  int leader() override { return cluster_.steady_leader(); }
  bool await_quiesce(Duration timeout) override {
    return cluster_.await_quiesce(timeout);
  }
  std::size_t submitted() const override { return cluster_.submitted(); }
  std::size_t completed() const override { return cluster_.completed(); }

  std::vector<std::string> protocol_invariants() override {
    std::vector<std::string> violations;
    // At most one steady leader among survivors (post-stabilization there
    // must not be two processes both passing the AmLeader check).
    int steady = 0;
    for (int i = 0; i < n(); ++i) {
      auto& r = cluster_.replica(i);
      if (!r.crashed() && r.is_steady_leader()) ++steady;
    }
    if (steady > 1) {
      violations.push_back("chtread: " + std::to_string(steady) +
                           " simultaneous steady leaders");
    }
    // Committed-batch agreement: batches applied by two survivors must be
    // identical (the "pre-determined order, the same for all processes").
    for (int i = 0; i < n(); ++i) {
      if (cluster_.replica(i).crashed()) continue;
      const auto si = cluster_.replica(i).snapshot();
      for (int j = i + 1; j < n(); ++j) {
        if (cluster_.replica(j).crashed()) continue;
        const auto sj = cluster_.replica(j).snapshot();
        const auto upto = std::min(si.applied_upto, sj.applied_upto);
        const auto& a = si.batches;
        const auto& b = sj.batches;
        for (BatchNumber k = 1; k <= upto; ++k) {
          const auto ia = a.find(k);
          const auto ib = b.find(k);
          if (ia == a.end() || ib == b.end() || ia->second != ib->second) {
            std::ostringstream os;
            os << "chtread: applied batch " << k << " differs between p" << i
               << " and p" << j;
            violations.push_back(os.str());
          }
        }
      }
    }
    return violations;
  }

  std::int64_t leadership_changes() override {
    std::int64_t total = 0;
    for (int i = 0; i < n(); ++i) {
      total += cluster_.replica(i).metrics().value("became_leader");
    }
    return total;
  }

  void merge_metrics_into(metrics::Registry& out) override {
    cluster_.merge_metrics_into(out);
  }

 private:
  harness::Cluster cluster_;
};

// --- Raft (both read modes) ------------------------------------------------

class RaftAdapter final : public ClusterAdapter {
 public:
  RaftAdapter(const RunSpec& spec,
              std::shared_ptr<const object::ObjectModel> model,
              raft::ReadMode mode)
      : name_(mode == raft::ReadMode::kLeaderLease ? "raft-lease" : "raft"),
        cluster_(cluster_config(spec), std::move(model), mode) {}

  const std::string& protocol() const override { return name_; }
  sim::Simulation& sim() override { return cluster_.sim(); }
  int n() const override { return cluster_.n(); }
  const object::ObjectModel& model() const override { return cluster_.model(); }
  checker::HistoryRecorder& history() override { return cluster_.history(); }
  void submit(int process, object::Operation op) override {
    cluster_.submit(process, std::move(op));
  }
  bool crashed(int process) const override {
    if (process >= n()) return false;  // clients never crash
    return const_cast<harness::RaftCluster&>(cluster_)
        .replica(process)
        .crashed();
  }
  void restart(int process) override { cluster_.restart(process); }
  std::vector<OperationId> committed_op_ids_of(int replica) override {
    std::vector<OperationId> ids;
    auto& r = cluster_.replica(replica);
    const auto& log = r.log();
    const auto upto = static_cast<std::size_t>(r.commit_index());
    for (std::size_t k = 0; k < upto && k < log.size(); ++k) {
      if (!model().is_read(log[k].op)) ids.push_back(log[k].id);
    }
    return ids;
  }
  std::vector<core::ClockSkewGuard::Transition> guard_transitions_of(
      int replica) override {
    return cluster_.replica(replica).clock_guard().transitions();
  }
  int leader() override { return cluster_.leader(); }
  bool await_quiesce(Duration timeout) override {
    return cluster_.await_quiesce(timeout);
  }
  std::size_t submitted() const override { return cluster_.submitted(); }
  std::size_t completed() const override { return cluster_.completed(); }

  std::vector<std::string> protocol_invariants() override {
    std::vector<std::string> violations;
    // Election safety: at most one leader per term across survivors.
    std::map<std::int64_t, int> leaders_per_term;
    for (int i = 0; i < n(); ++i) {
      auto& r = cluster_.replica(i);
      if (!r.crashed() && r.role() == raft::RaftReplica::Role::kLeader) {
        if (++leaders_per_term[r.term()] > 1) {
          violations.push_back("raft: two leaders in term " +
                               std::to_string(r.term()));
        }
      }
    }
    // Log matching on the committed prefix across survivors.
    for (int i = 0; i < n(); ++i) {
      if (cluster_.replica(i).crashed()) continue;
      for (int j = i + 1; j < n(); ++j) {
        if (cluster_.replica(j).crashed()) continue;
        const auto& a = cluster_.replica(i).log();
        const auto& b = cluster_.replica(j).log();
        const std::int64_t upto = std::min(cluster_.replica(i).commit_index(),
                                           cluster_.replica(j).commit_index());
        for (std::int64_t k = 0; k < upto; ++k) {
          if (a.at(static_cast<std::size_t>(k)) !=
              b.at(static_cast<std::size_t>(k))) {
            std::ostringstream os;
            os << "raft: committed log divergence at index " << k + 1
               << " between p" << i << " and p" << j;
            violations.push_back(os.str());
          }
        }
      }
    }
    return violations;
  }

  std::int64_t leadership_changes() override {
    std::int64_t total = 0;
    for (int i = 0; i < n(); ++i) {
      total += cluster_.replica(i).stats().terms_won;
    }
    return total;
  }

  void merge_metrics_into(metrics::Registry& out) override {
    cluster_.merge_metrics_into(out);
  }

 private:
  std::string name_;
  harness::RaftCluster cluster_;
};

// --- Viewstamped Replication -----------------------------------------------

class VrAdapter final : public ClusterAdapter {
 public:
  VrAdapter(const RunSpec& spec,
            std::shared_ptr<const object::ObjectModel> model)
      : cluster_(cluster_config(spec), std::move(model)) {}

  const std::string& protocol() const override {
    static const std::string kName = "vr";
    return kName;
  }
  sim::Simulation& sim() override { return cluster_.sim(); }
  int n() const override { return cluster_.n(); }
  const object::ObjectModel& model() const override { return cluster_.model(); }
  checker::HistoryRecorder& history() override { return cluster_.history(); }
  void submit(int process, object::Operation op) override {
    cluster_.submit(process, std::move(op));
  }
  bool crashed(int process) const override {
    if (process >= n()) return false;  // clients never crash
    return const_cast<harness::VrCluster&>(cluster_).replica(process).crashed();
  }
  void restart(int process) override { cluster_.restart(process); }
  bool recovering(int process) const override {
    if (process >= n()) return false;
    auto& r = const_cast<harness::VrCluster&>(cluster_).replica(process);
    return !r.crashed() && r.status() == vr::VrReplica::Status::kRecovering;
  }
  std::vector<OperationId> committed_op_ids_of(int replica) override {
    std::vector<OperationId> ids;
    auto& r = cluster_.replica(replica);
    const auto& log = r.log();
    const auto upto = static_cast<std::size_t>(r.commit_number());
    for (std::size_t k = 0; k < upto && k < log.size(); ++k) {
      if (!model().is_read(log[k].op)) ids.push_back(log[k].id);
    }
    return ids;
  }
  int leader() override { return cluster_.primary(); }
  bool await_quiesce(Duration timeout) override {
    return cluster_.await_quiesce(timeout);
  }
  std::size_t submitted() const override { return cluster_.submitted(); }
  std::size_t completed() const override { return cluster_.completed(); }

  std::vector<std::string> protocol_invariants() override {
    std::vector<std::string> violations;
    // At most one normal-status primary per view across survivors.
    std::map<std::int64_t, int> primaries_per_view;
    for (int i = 0; i < n(); ++i) {
      auto& r = cluster_.replica(i);
      if (!r.crashed() && r.is_primary()) {
        if (++primaries_per_view[r.view()] > 1) {
          violations.push_back("vr: two primaries in view " +
                               std::to_string(r.view()));
        }
      }
    }
    // Committed log prefixes agree across survivors.
    for (int i = 0; i < n(); ++i) {
      if (cluster_.replica(i).crashed()) continue;
      for (int j = i + 1; j < n(); ++j) {
        if (cluster_.replica(j).crashed()) continue;
        const auto& a = cluster_.replica(i).log();
        const auto& b = cluster_.replica(j).log();
        const std::int64_t upto = std::min(cluster_.replica(i).commit_number(),
                                           cluster_.replica(j).commit_number());
        for (std::int64_t k = 0; k < upto; ++k) {
          if (!(a.at(static_cast<std::size_t>(k)) ==
                b.at(static_cast<std::size_t>(k)))) {
            std::ostringstream os;
            os << "vr: committed prefix divergence at " << k + 1
               << " between p" << i << " and p" << j;
            violations.push_back(os.str());
          }
        }
      }
    }
    return violations;
  }

  std::int64_t leadership_changes() override {
    std::int64_t total = 0;
    for (int i = 0; i < n(); ++i) {
      total += cluster_.replica(i).stats().views_led;
    }
    return total;
  }

  void merge_metrics_into(metrics::Registry& out) override {
    cluster_.merge_metrics_into(out);
  }

 private:
  harness::VrCluster cluster_;
};

}  // namespace

const std::vector<std::string>& known_protocols() {
  static const std::vector<std::string> kProtocols = {"chtread", "raft",
                                                      "raft-lease", "vr"};
  return kProtocols;
}

const std::vector<std::string>& known_objects() {
  static const std::vector<std::string> kObjects = {"kv", "counter", "bank",
                                                    "queue", "lock"};
  return kObjects;
}

std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream) {
  // splitmix64 over (seed, stream): independent streams per component.
  std::uint64_t x = seed * 0x9e3779b97f4a7c15ULL + stream;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

std::shared_ptr<const object::ObjectModel> make_object_model(
    const std::string& name) {
  if (name == "kv") return std::make_shared<object::KVObject>();
  if (name == "counter") return std::make_shared<object::CounterObject>();
  if (name == "bank") return std::make_shared<object::BankObject>();
  if (name == "queue") return std::make_shared<object::QueueObject>();
  if (name == "lock") return std::make_shared<object::LockObject>();
  CHT_ASSERT(false, "unknown object model");
  return nullptr;
}

std::unique_ptr<ClusterAdapter> make_adapter(const RunSpec& spec) {
  auto model = make_object_model(spec.object);
  if (spec.protocol == "chtread") {
    return std::make_unique<ChtreadAdapter>(spec, std::move(model));
  }
  if (spec.protocol == "raft") {
    return std::make_unique<RaftAdapter>(spec, std::move(model),
                                         raft::ReadMode::kReadIndex);
  }
  if (spec.protocol == "raft-lease") {
    return std::make_unique<RaftAdapter>(spec, std::move(model),
                                         raft::ReadMode::kLeaderLease);
  }
  if (spec.protocol == "vr") {
    return std::make_unique<VrAdapter>(spec, std::move(model));
  }
  CHT_ASSERT(false, "unknown protocol");
  return nullptr;
}

}  // namespace cht::chaos
