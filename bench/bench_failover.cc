// E7 — Failover behaviour (paper S3 leader initialization, S5 Megastore
// livelock / VR static-order contrasts).
//
// Claims:
//   - a new leader deterministically resolves its predecessor's half-done
//     batch (commit-or-supersede) during initialization;
//   - failover time is a small multiple of the failure-detection timeout,
//     regardless of at which protocol phase the old leader crashed;
//   - read availability returns as soon as the new leader issues leases.
#include <iostream>
#include <memory>

#include "common/bench_util.h"
#include "common/experiment.h"
#include "harness/vr_cluster.h"
#include "object/kv_object.h"

namespace cht::bench {
namespace {

constexpr Duration kDelta = Duration::millis(10);

struct FailoverResult {
  Duration new_leader_elected;   // crash -> a different steady leader
  Duration write_completed;      // crash -> in-flight write committed
  Duration reads_available;      // crash -> follower read completes
  bool consistent = false;
};

FailoverResult run(ExperimentResult& result, Duration crash_offset,
                   std::uint64_t seed, bool observe,
                   Duration sync_latency = Duration::zero(),
                   bool group_commit = true) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = kDelta;
  config.storage.sync_latency = sync_latency;
  config.storage.group_commit = group_commit;
  harness::Cluster cluster(config, std::make_shared<object::KVObject>());
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  const int old_leader = cluster.steady_leader();
  const int submitter = (old_leader + 1) % cluster.n();

  // A write is in flight when the leader dies.
  cluster.submit(submitter, object::KVObject::put("k", "in-flight"));
  cluster.run_for(crash_offset);
  cluster.sim().crash(ProcessId(old_leader));
  const RealTime crash_at = cluster.sim().now();

  FailoverResult out;
  int new_leader = -1;
  cluster.sim().run_until(
      [&] {
        new_leader = cluster.steady_leader();
        return new_leader >= 0 && new_leader != old_leader;
      },
      crash_at + Duration::seconds(60));
  out.new_leader_elected = cluster.sim().now() - crash_at;
  cluster.await_quiesce(Duration::seconds(60));
  out.write_completed = cluster.sim().now() - crash_at;
  // First follower read after failover.
  const int reader = (old_leader + 2) % cluster.n();
  cluster.submit(reader, object::KVObject::get("k"));
  cluster.await_quiesce(Duration::seconds(60));
  out.reads_available = cluster.sim().now() - crash_at;
  out.consistent = *cluster.history().ops().back().response == "in-flight";
  if (observe) {
    result.config("failover", cluster.config(), cluster.overrides());
    result.observe("failover", cluster);
  }
  return out;
}

// --- Static vs dynamic leader order (paper S5, VR/Raft contrast) ----------
// Crash the current leader while its next `isolated` static successors are
// partitioned away. VR must cycle through that many ineffective views; our
// algorithm's Omega-based choice goes straight to a connected process.

Duration ours_recovery(int isolated, std::uint64_t seed) {
  harness::ClusterConfig config;
  config.n = 9;  // majority (5) stays connected with <= 3 isolated + 1 crash
  config.seed = seed;
  config.delta = kDelta;
  harness::Cluster cluster(config, std::make_shared<object::KVObject>());
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  const int old_leader = cluster.steady_leader();
  for (int k = 1; k <= isolated; ++k) {
    cluster.sim().network().set_process_isolated(
        ProcessId((old_leader + k) % cluster.n()), true, cluster.n());
  }
  cluster.sim().crash(ProcessId(old_leader));
  const RealTime crash_at = cluster.sim().now();
  int new_leader = -1;
  cluster.sim().run_until(
      [&] {
        new_leader = cluster.steady_leader();
        return new_leader >= 0 && new_leader != old_leader;
      },
      crash_at + Duration::seconds(120));
  return cluster.sim().now() - crash_at;
}

Duration vr_recovery(int isolated, std::uint64_t seed) {
  harness::ClusterConfig config;
  config.n = 9;
  config.seed = seed;
  config.delta = kDelta;
  harness::VrCluster cluster(config, std::make_shared<object::KVObject>());
  cluster.await_primary(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  const int old_primary = cluster.primary();
  for (int k = 1; k <= isolated; ++k) {
    cluster.sim().network().set_process_isolated(
        ProcessId((old_primary + k) % cluster.n()), true, cluster.n());
  }
  cluster.sim().crash(ProcessId(old_primary));
  const RealTime crash_at = cluster.sim().now();
  cluster.sim().run_until(
      [&] {
        const int p = cluster.primary();
        if (p < 0 || p == old_primary) return false;
        // Require an *effective* primary: one that can actually commit.
        for (int k = 1; k <= isolated; ++k) {
          if (p == (old_primary + k) % cluster.n()) return false;
        }
        return true;
      },
      crash_at + Duration::seconds(120));
  return cluster.sim().now() - crash_at;
}

}  // namespace
}  // namespace cht::bench

int main(int argc, char** argv) {
  using namespace cht;
  using namespace cht::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  ExperimentResult result("failover", args);

  result.begin(
      "E7: leader failover with a half-done batch",
      "Claim (paper S3): the new leader's initialization (estimate\n"
      "collection -> batch recovery -> re-commit) deterministically resolves\n"
      "the predecessor's in-flight batch; progress does not depend on where\n"
      "in the protocol the crash landed. delta = 10 ms; Omega timeout = 41 ms;\n"
      "crash offset = time between submitting the write and killing the\n"
      "leader (sweeps the protocol phase being interrupted).");
  result.columns({"crash offset (ms)", "new leader (ms)",
                  "write committed (ms)", "reads available (ms)",
                  "in-flight write preserved"});
  const std::vector<std::int64_t> offsets =
      result.smoke() ? std::vector<std::int64_t>{0, 9, 25}
                     : std::vector<std::int64_t>{0, 3, 6, 9, 12, 15, 25};
  bool all_consistent = true;
  for (const std::int64_t offset_ms : offsets) {
    const auto r =
        run(result, Duration::millis(offset_ms),
            static_cast<std::uint64_t>(700 + offset_ms),
            offset_ms == offsets.back());
    all_consistent = all_consistent && r.consistent;
    result.row({metrics::Table::num(offset_ms), ms2(r.new_leader_elected),
                ms2(r.write_completed), ms2(r.reads_available),
                r.consistent ? "yes" : "NO"});
    result.metric("failover_reads_available_us_offset" +
                      std::to_string(offset_ms),
                  r.reads_available.to_micros());
  }
  result.metric("in_flight_write_always_preserved",
                static_cast<std::int64_t>(all_consistent ? 1 : 0));
  result.note(
      "Expected shape: all columns bounded and similar across\n"
      "crash offsets (deterministic failover, ~Omega timeout plus a\n"
      "few delta); the in-flight write always survives (committed\n"
      "by recovery or by the submitter's retry, never lost or\n"
      "duplicated).");
  result.end();

  result.begin(
      "E7b: static (VR) vs dynamic (Omega) leader succession",
      "Paper S5: \"with a static leader election scheme, if the next several\n"
      "processes to become leaders are partitioned away from the majority,\n"
      "the system will cycle through a succession of ineffective views\".\n"
      "n = 9; the leader crashes while its next k static successors are\n"
      "partitioned. Ours picks a connected leader directly.");
  result.columns({"partitioned successors", "ours: recovery (ms)",
                  "VR: recovery (ms)", "VR/ours"});
  const std::vector<int> isolations =
      result.smoke() ? std::vector<int>{0, 3} : std::vector<int>{0, 1, 2, 3};
  for (const int isolated : isolations) {
    const Duration ours_t =
        ours_recovery(isolated, static_cast<std::uint64_t>(900 + isolated));
    const Duration vr_t =
        vr_recovery(isolated, static_cast<std::uint64_t>(900 + isolated));
    result.row({metrics::Table::num(static_cast<std::int64_t>(isolated)),
                ms2(ours_t), ms2(vr_t),
                metrics::Table::num(
                    static_cast<double>(vr_t.to_micros()) / ours_t.to_micros(),
                    2)});
    result.metric("ours_recovery_us_k" + std::to_string(isolated),
                  ours_t.to_micros());
    result.metric("vr_recovery_us_k" + std::to_string(isolated),
                  vr_t.to_micros());
  }
  result.note(
      "Expected shape: ours is flat in k (Omega only proposes\n"
      "connected processes); VR grows by roughly one view-change\n"
      "timeout per partitioned successor.");
  result.end();

  result.begin(
      "E7c: failover under real fsync cost",
      "Companion to E6c's steady-state axis: the same sync-cost x discipline\n"
      "grid, but measuring the failure path. The new leader's initialization\n"
      "must persist its own records (estimates, the recovered batch) before\n"
      "externalizing, so a nonzero fsync cost lands on the failover critical\n"
      "path; group commit folds those records into covering syncs while the\n"
      "naive discipline pays the device serially. Crash offset fixed at 9 ms\n"
      "(mid-protocol, the most recovery work).");
  result.columns({"sync cost", "discipline", "new leader (ms)",
                  "write committed (ms)", "reads available (ms)",
                  "in-flight write preserved"});
  const std::vector<std::pair<std::string, Duration>> sync_axis =
      result.smoke()
          ? std::vector<std::pair<std::string, Duration>>{{"2*delta",
                                                           2 * kDelta}}
          : std::vector<std::pair<std::string, Duration>>{
                {"0", Duration::zero()},
                {"0.5*delta", Duration::micros(kDelta.to_micros() / 2)},
                {"2*delta", 2 * kDelta}};
  bool sync_axis_consistent = true;
  for (const auto& [axis_label, sync_latency] : sync_axis) {
    for (const bool group : {true, false}) {
      const std::string discipline = group ? "group-commit" : "naive";
      const auto r = run(result, Duration::millis(9),
                         static_cast<std::uint64_t>(
                             1100 + sync_latency.to_micros() / 1000 +
                             (group ? 0 : 1)),
                         /*observe=*/false, sync_latency, group);
      sync_axis_consistent = sync_axis_consistent && r.consistent;
      result.row({axis_label, discipline, ms2(r.new_leader_elected),
                  ms2(r.write_completed), ms2(r.reads_available),
                  r.consistent ? "yes" : "NO"});
      const std::string suffix =
          (group ? "_group" : "_naive") + std::string("_sync") +
          std::to_string(sync_latency.to_micros());
      result.metric("failover_write_committed_us" + suffix,
                    r.write_completed.to_micros());
      result.metric("failover_reads_available_us" + suffix,
                    r.reads_available.to_micros());
    }
  }
  result.metric("sync_axis_write_always_preserved",
                static_cast<std::int64_t>(sync_axis_consistent ? 1 : 0));
  result.note(
      "Expected shape: the zero-cost rows match E7's 9 ms-offset row; at\n"
      "nonzero cost failover stretches by a few fsyncs' worth, with\n"
      "group commit strictly no slower than naive at 2*delta. The\n"
      "in-flight write survives on every cell.");
  result.end();
  return result.finish();
}
