#include "metrics/stats.h"

#include "common/assert.h"

namespace cht::metrics {

Duration LatencyRecorder::min() const {
  CHT_ASSERT(!samples_.empty(), "no samples");
  return *std::min_element(samples_.begin(), samples_.end());
}

Duration LatencyRecorder::max() const {
  CHT_ASSERT(!samples_.empty(), "no samples");
  return *std::max_element(samples_.begin(), samples_.end());
}

Duration LatencyRecorder::mean() const {
  CHT_ASSERT(!samples_.empty(), "no samples");
  std::int64_t total = 0;
  for (Duration d : samples_) total += d.to_micros();
  return Duration::micros(total / static_cast<std::int64_t>(samples_.size()));
}

Duration LatencyRecorder::percentile(double q) const {
  CHT_ASSERT(!samples_.empty(), "no samples");
  CHT_ASSERT(q >= 0.0 && q <= 1.0, "quantile out of range");
  std::vector<Duration> sorted = samples_;
  std::sort(sorted.begin(), sorted.end());
  const auto rank = static_cast<std::size_t>(q * (sorted.size() - 1) + 0.5);
  return sorted[std::min(rank, sorted.size() - 1)];
}

}  // namespace cht::metrics
