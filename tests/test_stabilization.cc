// Behaviour across GST: before stabilization the network is asynchronous and
// lossy and liveness may be delayed; after GST everything completes and the
// non-blocking-reads guarantees kick in. Safety holds throughout.
#include <gtest/gtest.h>

#include <memory>

#include "checker/linearizability.h"
#include "harness/cluster.h"
#include "object/kv_object.h"
#include "object/register_object.h"

namespace cht {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

ClusterConfig chaotic_config(std::uint64_t seed) {
  ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = Duration::millis(10);
  config.gst = RealTime::zero() + Duration::seconds(2);
  config.pre_gst_loss = 0.15;
  config.pre_gst_delay_max = Duration::millis(300);
  return config;
}

TEST(StabilizationTest, OpsSubmittedDuringChaosEventuallyComplete) {
  Cluster cluster(chaotic_config(41), std::make_shared<object::KVObject>());
  // Submit through the asynchronous period.
  for (int i = 0; i < 10; ++i) {
    cluster.submit(i % cluster.n(),
                   object::KVObject::put("k" + std::to_string(i), "v"));
    cluster.run_for(Duration::millis(150));
  }
  // Everything terminates after stabilization (paper: any operation issued
  // by a correct process eventually terminates).
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(60)));
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(StabilizationTest, ReadsBecomeNonBlockingAfterGst) {
  Cluster cluster(chaotic_config(42), std::make_shared<object::RegisterObject>());
  // Reads during chaos may block...
  cluster.run_for(Duration::millis(500));
  for (int i = 0; i < cluster.n(); ++i) {
    cluster.submit(i, object::RegisterObject::read());
  }
  // ...but after stabilization plus a couple of lease renewals, reads at
  // every process are non-blocking in the absence of conflicting RMWs.
  cluster.run_for(Duration::seconds(4));  // beyond GST
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)));
  std::vector<std::int64_t> blocked_before(cluster.n());
  for (int i = 0; i < cluster.n(); ++i) {
    blocked_before[i] = cluster.replica(i).metrics().value("reads_blocked");
  }
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < cluster.n(); ++i) {
      cluster.submit(i, object::RegisterObject::read());
    }
    cluster.run_for(Duration::millis(5));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  for (int i = 0; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.replica(i).metrics().value("reads_blocked"),
              blocked_before[i])
        << "post-GST read blocked at replica " << i;
  }
}

TEST(StabilizationTest, LinearizableUnderHeavyPreGstLoss) {
  ClusterConfig config = chaotic_config(43);
  config.pre_gst_loss = 0.4;
  Cluster cluster(config, std::make_shared<object::KVObject>());
  for (int i = 0; i < 15; ++i) {
    if (i % 3 == 0) {
      cluster.submit(i % cluster.n(), object::KVObject::get("k"));
    } else {
      cluster.submit(i % cluster.n(), object::KVObject::put("k", "v" + std::to_string(i)));
    }
    cluster.run_for(Duration::millis(200));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(60)));
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(StabilizationTest, PermanentAsynchronyLosesOnlyLiveness) {
  // GST never arrives: liveness is not guaranteed, but whatever completes is
  // correct (the paper's robustness claim for unmet timing assumptions).
  ClusterConfig config = chaotic_config(44);
  config.gst = RealTime::max();
  config.pre_gst_loss = 0.5;
  config.pre_gst_delay_max = Duration::seconds(1);
  Cluster cluster(config, std::make_shared<object::KVObject>());
  for (int i = 0; i < 10; ++i) {
    cluster.submit(i % cluster.n(), object::KVObject::put("k", std::to_string(i)));
    cluster.run_for(Duration::millis(300));
  }
  cluster.run_for(Duration::seconds(30));
  // No termination promise — but no wrong results either.
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

}  // namespace
}  // namespace cht
