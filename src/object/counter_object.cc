#include "object/counter_object.h"

#include "common/assert.h"

namespace cht::object {

Response CounterObject::apply(ObjectState& state, const Operation& op) const {
  auto& counter = dynamic_cast<CounterState&>(state);
  if (op.kind == "value") return std::to_string(counter.count());
  if (op.kind == "parity") return counter.count() % 2 == 0 ? "even" : "odd";
  if (op.kind == "add") {
    counter.add(std::stoll(op.arg));
    return std::to_string(counter.count());
  }
  if (op.kind == "noop") return "ok";
  CHT_UNREACHABLE("unknown counter operation");
}

bool CounterObject::conflicts(const Operation& read,
                              const Operation& rmw) const {
  if (is_no_op(rmw)) return false;
  if (rmw.kind == "add" && std::stoll(rmw.arg) == 0) return false;
  if (read.kind == "parity") {
    // Adding an even amount never changes parity: the exact, non-conservative
    // conflict predicate from the paper's definition.
    return rmw.kind == "add" && std::stoll(rmw.arg) % 2 != 0;
  }
  return true;
}

}  // namespace cht::object
