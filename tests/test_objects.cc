#include <gtest/gtest.h>

#include <memory>

#include "object/bank_object.h"
#include "object/counter_object.h"
#include "object/kv_object.h"
#include "object/lock_object.h"
#include "object/queue_object.h"
#include "object/register_object.h"

namespace cht::object {
namespace {

// --- Register ---------------------------------------------------------------

TEST(RegisterObjectTest, ReadAndWrite) {
  RegisterObject model("init");
  auto state = model.make_initial_state();
  EXPECT_EQ(model.apply(*state, RegisterObject::read()), "init");
  EXPECT_EQ(model.apply(*state, RegisterObject::write("x")), "ok");
  EXPECT_EQ(model.apply(*state, RegisterObject::read()), "x");
}

TEST(RegisterObjectTest, Classification) {
  RegisterObject model;
  EXPECT_TRUE(model.is_read(RegisterObject::read()));
  EXPECT_FALSE(model.is_read(RegisterObject::write("x")));
  EXPECT_FALSE(model.is_read(no_op()));
  EXPECT_TRUE(model.conflicts(RegisterObject::read(), RegisterObject::write("x")));
  EXPECT_FALSE(model.conflicts(RegisterObject::read(), no_op()));
}

TEST(RegisterObjectTest, CloneIsIndependent) {
  RegisterObject model;
  auto state = model.make_initial_state();
  model.apply(*state, RegisterObject::write("a"));
  auto copy = state->clone();
  model.apply(*state, RegisterObject::write("b"));
  EXPECT_EQ(model.apply(*copy, RegisterObject::read()), "a");
  EXPECT_EQ(model.apply(*state, RegisterObject::read()), "b");
}

TEST(RegisterObjectTest, FingerprintTracksValue) {
  RegisterObject model;
  auto a = model.make_initial_state();
  auto b = model.make_initial_state();
  EXPECT_EQ(a->fingerprint(), b->fingerprint());
  model.apply(*a, RegisterObject::write("z"));
  EXPECT_NE(a->fingerprint(), b->fingerprint());
}

// --- KV ----------------------------------------------------------------------

TEST(KVObjectTest, PutGetDelete) {
  KVObject model;
  auto state = model.make_initial_state();
  EXPECT_EQ(model.apply(*state, KVObject::get("k")), "");
  EXPECT_EQ(model.apply(*state, KVObject::put("k", "v1")), "ok");
  EXPECT_EQ(model.apply(*state, KVObject::get("k")), "v1");
  EXPECT_EQ(model.apply(*state, KVObject::size()), "1");
  EXPECT_EQ(model.apply(*state, KVObject::del("k")), "ok");
  EXPECT_EQ(model.apply(*state, KVObject::get("k")), "");
  EXPECT_EQ(model.apply(*state, KVObject::size()), "0");
}

TEST(KVObjectTest, CompareAndSwap) {
  KVObject model;
  auto state = model.make_initial_state();
  EXPECT_EQ(model.apply(*state, KVObject::cas("k", "", "v1")), "ok");
  EXPECT_EQ(model.apply(*state, KVObject::cas("k", "wrong", "v2")), "fail");
  EXPECT_EQ(model.apply(*state, KVObject::get("k")), "v1");
  EXPECT_EQ(model.apply(*state, KVObject::cas("k", "v1", "v2")), "ok");
  EXPECT_EQ(model.apply(*state, KVObject::get("k")), "v2");
}

TEST(KVObjectTest, PerKeyConflicts) {
  KVObject model;
  EXPECT_TRUE(model.conflicts(KVObject::get("a"), KVObject::put("a", "1")));
  EXPECT_FALSE(model.conflicts(KVObject::get("a"), KVObject::put("b", "1")));
  EXPECT_TRUE(model.conflicts(KVObject::get("a"), KVObject::del("a")));
  EXPECT_FALSE(model.conflicts(KVObject::get("a"), KVObject::cas("b", "", "x")));
  EXPECT_TRUE(model.conflicts(KVObject::size(), KVObject::put("a", "1")));
  EXPECT_FALSE(model.conflicts(KVObject::get("a"), no_op()));
}

TEST(KVObjectTest, FingerprintOrderIndependent) {
  KVObject model;
  auto a = model.make_initial_state();
  auto b = model.make_initial_state();
  model.apply(*a, KVObject::put("x", "1"));
  model.apply(*a, KVObject::put("y", "2"));
  model.apply(*b, KVObject::put("y", "2"));
  model.apply(*b, KVObject::put("x", "1"));
  EXPECT_EQ(a->fingerprint(), b->fingerprint());
}

// --- Counter ------------------------------------------------------------------

TEST(CounterObjectTest, AddReturnsNewValue) {
  CounterObject model;
  auto state = model.make_initial_state();
  EXPECT_EQ(model.apply(*state, CounterObject::add(5)), "5");
  EXPECT_EQ(model.apply(*state, CounterObject::add(-2)), "3");
  EXPECT_EQ(model.apply(*state, CounterObject::value()), "3");
  EXPECT_EQ(model.apply(*state, CounterObject::parity()), "odd");
}

TEST(CounterObjectTest, SemanticConflictPredicate) {
  CounterObject model;
  // parity() is unaffected by even increments: exact, not conservative.
  EXPECT_FALSE(model.conflicts(CounterObject::parity(), CounterObject::add(2)));
  EXPECT_TRUE(model.conflicts(CounterObject::parity(), CounterObject::add(3)));
  EXPECT_TRUE(model.conflicts(CounterObject::value(), CounterObject::add(1)));
  EXPECT_FALSE(model.conflicts(CounterObject::value(), CounterObject::add(0)));
  EXPECT_FALSE(model.conflicts(CounterObject::value(), no_op()));
}

// --- Bank ---------------------------------------------------------------------

TEST(BankObjectTest, DepositsAndTransfers) {
  BankObject model;
  auto state = model.make_initial_state();
  EXPECT_EQ(model.apply(*state, BankObject::deposit("a", 100)), "100");
  EXPECT_EQ(model.apply(*state, BankObject::transfer("a", "b", 30)), "ok");
  EXPECT_EQ(model.apply(*state, BankObject::balance("a")), "70");
  EXPECT_EQ(model.apply(*state, BankObject::balance("b")), "30");
  EXPECT_EQ(model.apply(*state, BankObject::total()), "100");
  EXPECT_EQ(model.apply(*state, BankObject::transfer("a", "b", 1000)),
            "insufficient");
  EXPECT_EQ(model.apply(*state, BankObject::total()), "100");
}

TEST(BankObjectTest, TotalConflictsOnlyWithDeposits) {
  BankObject model;
  EXPECT_TRUE(model.conflicts(BankObject::total(), BankObject::deposit("a", 1)));
  EXPECT_FALSE(
      model.conflicts(BankObject::total(), BankObject::transfer("a", "b", 1)));
}

TEST(BankObjectTest, BalanceConflictsPerAccount) {
  BankObject model;
  EXPECT_TRUE(
      model.conflicts(BankObject::balance("a"), BankObject::deposit("a", 1)));
  EXPECT_FALSE(
      model.conflicts(BankObject::balance("c"), BankObject::deposit("a", 1)));
  EXPECT_TRUE(model.conflicts(BankObject::balance("b"),
                              BankObject::transfer("a", "b", 1)));
  EXPECT_FALSE(model.conflicts(BankObject::balance("c"),
                               BankObject::transfer("a", "b", 1)));
}

// --- Lock ----------------------------------------------------------------------

TEST(LockObjectTest, AcquireReleaseSemantics) {
  LockObject model;
  auto state = model.make_initial_state();
  EXPECT_EQ(model.apply(*state, LockObject::holder()), "");
  EXPECT_EQ(model.apply(*state, LockObject::try_acquire("p1")), "ok");
  EXPECT_EQ(model.apply(*state, LockObject::try_acquire("p2")), "held");
  EXPECT_EQ(model.apply(*state, LockObject::try_acquire("p1")), "ok");
  EXPECT_EQ(model.apply(*state, LockObject::holder()), "p1");
  EXPECT_EQ(model.apply(*state, LockObject::release("p2")), "not-held");
  EXPECT_EQ(model.apply(*state, LockObject::release("p1")), "ok");
  EXPECT_EQ(model.apply(*state, LockObject::holder()), "");
}

// --- Queue ---------------------------------------------------------------------

TEST(QueueObjectTest, FifoSemantics) {
  QueueObject model;
  auto state = model.make_initial_state();
  EXPECT_EQ(model.apply(*state, QueueObject::front()), "");
  EXPECT_EQ(model.apply(*state, QueueObject::dequeue()), "");
  EXPECT_EQ(model.apply(*state, QueueObject::enqueue("a")), "1");
  EXPECT_EQ(model.apply(*state, QueueObject::enqueue("b")), "2");
  EXPECT_EQ(model.apply(*state, QueueObject::front()), "a");
  EXPECT_EQ(model.apply(*state, QueueObject::length()), "2");
  EXPECT_EQ(model.apply(*state, QueueObject::dequeue()), "a");
  EXPECT_EQ(model.apply(*state, QueueObject::front()), "b");
  EXPECT_EQ(model.apply(*state, QueueObject::dequeue()), "b");
  EXPECT_EQ(model.apply(*state, QueueObject::length()), "0");
}

TEST(QueueObjectTest, Classification) {
  QueueObject model;
  EXPECT_TRUE(model.is_read(QueueObject::front()));
  EXPECT_TRUE(model.is_read(QueueObject::length()));
  EXPECT_FALSE(model.is_read(QueueObject::enqueue("x")));
  EXPECT_FALSE(model.is_read(QueueObject::dequeue()));
  EXPECT_TRUE(model.conflicts(QueueObject::front(), QueueObject::dequeue()));
  EXPECT_FALSE(model.conflicts(QueueObject::front(), no_op()));
}

TEST(QueueObjectTest, FingerprintDistinguishesOrder) {
  QueueObject model;
  auto a = model.make_initial_state();
  auto b = model.make_initial_state();
  model.apply(*a, QueueObject::enqueue("x"));
  model.apply(*a, QueueObject::enqueue("y"));
  model.apply(*b, QueueObject::enqueue("y"));
  model.apply(*b, QueueObject::enqueue("x"));
  EXPECT_NE(a->fingerprint(), b->fingerprint());
}

// --- Arg codec ------------------------------------------------------------------

TEST(ArgCodecTest, RoundTrip) {
  const std::string encoded = encode_args({"a", "bb", "ccc"});
  EXPECT_EQ(arg_field(encoded, 0), "a");
  EXPECT_EQ(arg_field(encoded, 1), "bb");
  EXPECT_EQ(arg_field(encoded, 2), "ccc");
}

TEST(ArgCodecTest, EmptyFields) {
  const std::string encoded = encode_args({"", "x", ""});
  EXPECT_EQ(arg_field(encoded, 0), "");
  EXPECT_EQ(arg_field(encoded, 1), "x");
  EXPECT_EQ(arg_field(encoded, 2), "");
}

// --- NoOp must be accepted by every model ----------------------------------------

TEST(NoOpTest, AllModelsAcceptNoOp) {
  std::vector<std::unique_ptr<ObjectModel>> models;
  models.push_back(std::make_unique<RegisterObject>());
  models.push_back(std::make_unique<KVObject>());
  models.push_back(std::make_unique<CounterObject>());
  models.push_back(std::make_unique<BankObject>());
  models.push_back(std::make_unique<LockObject>());
  models.push_back(std::make_unique<QueueObject>());
  for (const auto& model : models) {
    auto state = model->make_initial_state();
    const std::string before = state->fingerprint();
    EXPECT_EQ(model->apply(*state, no_op()), "ok") << model->name();
    EXPECT_EQ(state->fingerprint(), before) << model->name();
    EXPECT_FALSE(model->is_read(no_op())) << model->name();
  }
}

}  // namespace
}  // namespace cht::object
