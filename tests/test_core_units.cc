// Unit tests for the core wire/data types and configuration relationships.
#include <gtest/gtest.h>

#include "core/config.h"
#include "core/messages.h"
#include "object/register_object.h"

namespace cht::core {
namespace {

BatchOp op(int proc, std::int64_t seq, const std::string& value) {
  return BatchOp{OperationId{ProcessId(proc), seq},
                 object::RegisterObject::write(value)};
}

TEST(BatchTest, CanonicalizeSortsById) {
  Batch batch{op(2, 1, "c"), op(0, 5, "a"), op(1, 1, "b")};
  canonicalize(batch);
  ASSERT_EQ(batch.size(), 3u);
  EXPECT_EQ(batch[0].id.process, ProcessId(0));
  EXPECT_EQ(batch[1].id.process, ProcessId(1));
  EXPECT_EQ(batch[2].id.process, ProcessId(2));
}

TEST(BatchTest, CanonicalizeDeduplicates) {
  Batch batch{op(0, 1, "a"), op(0, 1, "a"), op(1, 1, "b")};
  canonicalize(batch);
  EXPECT_EQ(batch.size(), 2u);
}

TEST(BatchTest, SameIdOrderedByOpContent) {
  // BatchOp ordering is (id, op); equality needs both.
  Batch a{op(0, 1, "x")};
  Batch b{op(0, 1, "x")};
  EXPECT_EQ(a, b);
  Batch c{op(0, 1, "y")};
  EXPECT_NE(a, c);
}

TEST(EstimateTest, FreshnessIsLexicographic) {
  Estimate older{{}, LocalTime::micros(100), 7};
  Estimate newer_time{{}, LocalTime::micros(200), 3};
  Estimate newer_batch{{}, LocalTime::micros(100), 8};
  EXPECT_LT(older.freshness(), newer_time.freshness());
  EXPECT_LT(older.freshness(), newer_batch.freshness());
  // Leader time dominates the batch number.
  EXPECT_LT(newer_batch.freshness(), newer_time.freshness());
}

TEST(ConfigTest, DefaultsScaleWithDelta) {
  const auto small = Config::defaults_for(Duration::millis(1), Duration::micros(100));
  const auto large = Config::defaults_for(Duration::millis(100), Duration::millis(10));
  EXPECT_EQ(small.lease_period, Duration::millis(12));
  EXPECT_EQ(large.lease_period, Duration::millis(1200));
  // Relationships the protocol's liveness depends on.
  for (const auto& c : {small, large}) {
    EXPECT_LT(c.lease_renew_interval, c.lease_period);
    EXPECT_GT(c.els.support_duration, 2 * c.els.support_interval + c.delta);
    EXPECT_GT(c.omega.timeout, c.omega.heartbeat_interval + c.delta);
    EXPECT_EQ(c.commit_gate, CommitGate::kLeaseholders);
    EXPECT_EQ(c.read_policy, ReadPolicy::kLocalLease);
    EXPECT_EQ(c.commit_wait, Duration::zero());
  }
}

TEST(OperationIdTest, OrderingAndHash) {
  const OperationId a{ProcessId(0), 1};
  const OperationId b{ProcessId(0), 2};
  const OperationId c{ProcessId(1), 1};
  EXPECT_LT(a, b);
  EXPECT_LT(a, c);
  EXPECT_EQ(std::hash<OperationId>{}(a), std::hash<OperationId>{}(OperationId{ProcessId(0), 1}));
}

}  // namespace
}  // namespace cht::core
