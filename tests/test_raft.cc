// Raft baseline: election safety, log replication, read correctness.
#include <gtest/gtest.h>

#include <memory>

#include "checker/linearizability.h"
#include "harness/raft_cluster.h"
#include "object/kv_object.h"
#include "object/register_object.h"

namespace cht {
namespace {

using harness::ClusterConfig;
using harness::RaftCluster;

ClusterConfig base_config(std::uint64_t seed = 3) {
  ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = Duration::millis(10);
  return config;
}

TEST(RaftTest, ElectsExactlyOneLeaderPerTerm) {
  RaftCluster cluster(base_config(), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(2));
  // Count leaders per term across the run's final state.
  std::map<std::int64_t, int> leaders_by_term;
  for (int i = 0; i < cluster.n(); ++i) {
    if (cluster.replica(i).role() == raft::RaftReplica::Role::kLeader) {
      ++leaders_by_term[cluster.replica(i).term()];
    }
  }
  for (const auto& [term, count] : leaders_by_term) {
    EXPECT_LE(count, 1) << "two leaders in term " << term;
  }
}

TEST(RaftTest, ReplicatesAndAppliesWrites) {
  RaftCluster cluster(base_config(), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_leader(Duration::seconds(5)));
  for (int i = 0; i < 10; ++i) {
    cluster.submit(i % cluster.n(),
                   object::KVObject::put("k" + std::to_string(i), "v"));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  cluster.run_for(Duration::seconds(1));  // let followers catch up
  for (int i = 0; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.replica(i).applied_state().fingerprint(),
              cluster.replica(0).applied_state().fingerprint());
  }
}

TEST(RaftTest, LogsAreConsistentPrefixes) {
  RaftCluster cluster(base_config(17), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_leader(Duration::seconds(5)));
  for (int i = 0; i < 20; ++i) {
    cluster.submit(i % cluster.n(), object::KVObject::put("k", "v" + std::to_string(i)));
    cluster.run_for(Duration::millis(5));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  cluster.run_for(Duration::seconds(1));
  // Log matching property: committed prefixes agree everywhere.
  const auto& ref = cluster.replica(0).log();
  const std::int64_t ref_commit = cluster.replica(0).commit_index();
  for (int i = 1; i < cluster.n(); ++i) {
    const auto& log = cluster.replica(i).log();
    const std::int64_t upto =
        std::min(ref_commit, cluster.replica(i).commit_index());
    for (std::int64_t j = 0; j < upto; ++j) {
      EXPECT_EQ(log.at(static_cast<std::size_t>(j)),
                ref.at(static_cast<std::size_t>(j)))
          << "divergence at index " << j + 1 << " on replica " << i;
    }
  }
}

TEST(RaftTest, ReadIndexReadsAreLinearizable) {
  RaftCluster cluster(base_config(5), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_leader(Duration::seconds(5)));
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < cluster.n(); ++i) {
      if ((round + i) % 3 == 0) {
        cluster.submit(i, object::KVObject::put("k", "r" + std::to_string(round) +
                                                         "p" + std::to_string(i)));
      } else {
        cluster.submit(i, object::KVObject::get("k"));
      }
    }
    cluster.run_for(Duration::millis(30));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(RaftTest, ReadsAlwaysGenerateMessages) {
  // The paper's Section 5 point: Raft reads are not local — every read
  // reaches the leader and triggers a majority round.
  RaftCluster cluster(base_config(), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.leader();
  const int follower = (leader + 1) % cluster.n();
  const auto before = cluster.sim().network().stats().sent;
  cluster.submit(follower, object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  const auto after = cluster.sim().network().stats().sent;
  // At least: forward to leader + heartbeat round (n-1) + acks + reply,
  // minus unrelated background heartbeats (bounded below conservatively).
  EXPECT_GE(after - before, 3);
}

TEST(RaftTest, SurvivesLeaderCrash) {
  RaftCluster cluster(base_config(11), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_leader(Duration::seconds(5)));
  cluster.submit(0, object::KVObject::put("a", "1"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  const int old_leader = cluster.leader();
  cluster.sim().crash(ProcessId(old_leader));
  const int submitter = (old_leader + 1) % cluster.n();
  cluster.submit(submitter, object::KVObject::put("b", "2"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(20)));
  const int new_leader = cluster.leader();
  EXPECT_NE(new_leader, old_leader);
  EXPECT_GE(new_leader, 0);
  EXPECT_EQ(cluster.model().apply(
                const_cast<object::ObjectState&>(
                    cluster.replica(new_leader).applied_state()),
                object::KVObject::get("a")),
            "1");
}

TEST(RaftTest, LeaderLeaseModeServesReadsWithoutExtraRound) {
  RaftCluster cluster(base_config(), std::make_shared<object::RegisterObject>(),
                      raft::ReadMode::kLeaderLease);
  ASSERT_TRUE(cluster.await_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.leader();
  cluster.submit(leader, object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  EXPECT_GE(cluster.replica(leader).stats().reads_served_by_lease, 1);
  // A leader-local lease read completes without any message exchange.
  const auto& record = cluster.history().ops().back();
  EXPECT_EQ(record.latency(), Duration::zero());
}

}  // namespace
}  // namespace cht
