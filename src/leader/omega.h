// Omega failure detector (the `leader()` procedure of Section 2).
//
// Guarantee: there is a nonfaulty process l and a time after which every
// call to leader() returns l. We implement the standard heartbeat scheme:
// every process broadcasts heartbeats; leader() returns the smallest-id
// process whose heartbeat was seen recently (self counts as always alive).
// Before GST this can bounce arbitrarily (heartbeats are delayed/lost);
// after GST it converges to the smallest-id correct process, satisfying
// Omega. The timeout must exceed heartbeat_interval + delta + epsilon.
//
// This is a *component*: it is hosted by a sim::Process, sends it own
// message types ("omega.hb") and owns its timers.
#pragma once

#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "sim/message.h"
#include "sim/process.h"

namespace cht::leader {

struct OmegaConfig {
  Duration heartbeat_interval = Duration::millis(5);
  Duration timeout = Duration::millis(25);
};

class OmegaDetector {
 public:
  OmegaDetector(sim::Process& host, OmegaConfig config)
      : host_(host), config_(config) {}

  void start();

  // The current leader belief. Never returns an invalid id.
  ProcessId leader();

  // Returns true iff the message belonged to this component.
  bool handle_message(const sim::Message& message);

  static constexpr const char* kHeartbeatType = "omega.hb";

 private:
  void send_heartbeat();

  sim::Process& host_;
  OmegaConfig config_;
  std::vector<LocalTime> last_seen_;  // by process index, on host clock
};

}  // namespace cht::leader
