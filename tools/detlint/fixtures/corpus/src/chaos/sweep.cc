// Fixture: negative for rules D6 and D7 — src/chaos/sweep.cc is the
// allowlisted home of the parallel seed sweeper and the repro-artifact
// reader/writer; threads/atomics/mutexes and file streams are expected
// here.
#include <atomic>
#include <fstream>
#include <mutex>
#include <thread>
#include <vector>

namespace fixture {

void write_artifact_like(const char* path) {
  std::ofstream out(path);
  out << "seed=1\n";
}

int sweep(int jobs) {
  std::atomic<int> next{0};
  std::mutex mu;
  int done = 0;
  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1);
      if (i >= jobs) return;
      std::lock_guard<std::mutex> lock(mu);
      ++done;
    }
  };
  std::vector<std::thread> pool;
  for (int t = 0; t < 2; ++t) pool.emplace_back(worker);
  for (auto& t : pool) t.join();
  return done;
}

}  // namespace fixture
