#!/usr/bin/env python3
"""detlint — determinism & protocol-hygiene static analysis for this repo.

Everything the repo claims (bit-identical `chtread_fuzz --repro`, the
metrics-determinism golden test, the delta/epsilon/GST-parameterized
guarantees) rests on the simulator being deterministic. detlint statically
rejects the ways a contributor could break that:

  D1  wall-clock      No OS/ambient time sources (std::chrono::*_clock,
                      time(), gettimeofday, clock_gettime, ...) outside the
                      allowlisted src/common/time.h. Simulated time comes
                      from sim::Clock only.
  D2  randomness      No ambient randomness (rand, srand, std::random_device,
                      std::mt19937, default_random_engine, /dev/urandom)
                      outside src/common/rng.h. All randomness flows through
                      explicitly seeded cht::Rng streams.
  D3  hash-order      No unordered_map/unordered_set declarations or
                      iteration in protocol directories (src/core, src/raft,
                      src/vr, src/leader, src/baselines, src/sim,
                      src/checker, src/chaos) unless the site carries a
                      `// detlint: order-independent (<reason>)`
                      justification. Hash iteration order is
                      implementation-defined; protocol decisions derived
                      from it are invisible nondeterminism.
  D4  pointer-order   No ordered containers keyed on raw pointers
                      (std::map<T*, ...>, std::set<T*>, pointer-keyed
                      priority_queue). Pointer order is allocation order —
                      nondeterministic across runs.
  D5  uninit-fields   Every scalar field of message/event/config structs in
                      the wire-format files (src/core/messages.h,
                      src/sim/message.h, src/raft/raft.h, src/vr/vr.h,
                      src/core/config.h, src/chaos/spec.h, src/client/wire.h)
                      must carry a member initializer. An uninitialized field
                      in a message struct is frame-garbage nondeterminism.
  D6  threading       No std::thread/atomics/mutexes outside the parallel
                      seed sweeper (src/chaos/sweep.cc) and bench/. The
                      simulator itself is single-threaded by construction.
  D7  file-io         No direct file I/O (std::fstream family, fopen/freopen,
                      POSIX open/openat/creat, <fstream>/<cstdio> includes)
                      in protocol directories. Durable state must go through
                      the simulated sim::StableStorage so crash/loss/tearing
                      semantics apply; a real file would silently survive
                      simulated power cycles. src/chaos/sweep.cc (repro
                      artifact reader/writer) is the allowlisted exception.

v2 adds a cross-file pass: before linting, detlint *extracts a protocol
model* from the tree — the wire-message vocabulary per stack and the
dispatch arms that consume it, the StableStorage keys written vs. read on
recovery paths, timer/deadline expressions and the config symbols they
derive from, the metric names actually registered vs. those documented in
docs/OBSERVABILITY.md, and every suppression annotation with whether it
still suppresses anything. The model is dumped as a versioned JSON artifact
(`--model=PATH`, drift-checked by `--check-model=PATH`) and enforced by five
rule families:

  D8  persistence     Every StableStorage key a protocol directory writes
                      must be read back — and read back on a recovery path
                      (a function whose name contains recover/restart).
                      A key read but never written is equally a finding:
                      the recovery path trusts state nobody produces.
  D9  dispatch        Every wire message type declared for a stack must have
                      a dispatch arm (`message.is(msg::kX)`); an arm for a
                      type that is never sent, or that is not declared in
                      the stack, is unreachable/untyped and a finding.
  D10 timer-hygiene   Deadline/timer arithmetic must derive from *named*
                      duration symbols (config fields, named constants,
                      named locals). An anonymous Duration::millis(250)
                      buried in an expression is safety-adjacent arithmetic
                      with no name, no unit audit, and no config surface.
  D11 metric-names    Metric registrations must use literal names (no
                      concatenation/to_string — dynamic names defeat the
                      pre-registration discipline and explode cardinality),
                      and every emitted name must appear in the metric-name
                      registry in docs/OBSERVABILITY.md.
  D12 suppressions    A `detlint: allow(...)`/`order-independent` annotation
                      that no longer suppresses a real finding — or that is
                      malformed (missing its mandatory reason) — is itself a
                      finding, so justification debt ratchets down, never up.
                      D12 cannot be suppressed.

Cross-file rules (D8/D9 and the D11 documented-set check) need the whole
tree to reason about, so they run only on full scans (no explicit [files...]
arguments).

Suppression grammar (see docs/STATIC_ANALYSIS.md):
    // detlint: allow(D<k>) <reason>
    // detlint: order-independent (<reason>)     [sugar for allow(D3)]
A suppression applies to its own line, or — when it is the only thing on the
line — to the next line. The reason is mandatory.

Engines:
  --engine=regex   Pure-Python lexer + pattern pass (always available; the
                   engine CI gates on, so CI never hard-depends on libclang).
  --engine=clang   libclang (clang Python bindings) AST pass layered on top
                   of the regex pass for D1/D2/D3/D6 call/type resolution
                   (union, deduplicated by site — the regex findings are the
                   floor, the AST only adds). Falls back to regex with a
                   notice if the bindings are missing.
  --engine=auto    clang if importable, else regex (default: regex, so runs
                   are byte-stable across machines).

Usage:
    detlint.py [--root DIR] [--engine=regex|clang|auto] [--json[=PATH]]
               [--sarif=PATH] [--model=PATH] [--check-model=PATH]
               [--selftest] [--parity] [--list-rules] [files...]

Exit status: 0 = clean, 1 = findings, 2 = usage/internal error,
             77 = --parity skipped (libclang unavailable).
"""

import argparse
import json
import os
import re
import sys

VERSION = 2
MODEL_VERSION = 1
EXIT_SKIP = 77

# Directories scanned relative to the repo root (files... overrides).
SCAN_ROOTS = ("src", "tools", "bench", "examples")
# detlint's own tree (including fixtures, which are violations on purpose).
EXCLUDE_PREFIXES = ("tools/detlint",)
CPP_SUFFIXES = (".h", ".cc", ".cpp", ".hpp")

# Protocol directories where hash-iteration order can reach protocol
# decisions, verdicts, or the event schedule (rule D3).
PROTOCOL_DIRS = (
    "src/core", "src/raft", "src/vr", "src/leader", "src/baselines",
    "src/sim", "src/checker", "src/chaos", "src/client",
)

# Protocol stacks the model extraction groups by: each directory is one
# analysis unit for message dispatch (D9) and persistence completeness (D8).
# (src/baselines holds two mechanism-only protocols; their message and key
# namespaces are disjoint, so directory granularity stays sound.)
STACK_DIRS = (
    "src/core", "src/raft", "src/vr", "src/client", "src/leader",
    "src/baselines",
)

# Wire-format / spec files whose structs rule D5 audits.
D5_FILES = (
    "src/core/messages.h", "src/sim/message.h", "src/raft/raft.h",
    "src/vr/vr.h", "src/core/config.h", "src/chaos/spec.h",
    "src/client/wire.h",
)

# The documented metric-name registry rule D11 checks emitted names against.
OBSERVABILITY_DOC = "docs/OBSERVABILITY.md"

ALLOWLIST = {
    "D1": ("src/common/time.h",),
    "D2": ("src/common/rng.h",),
    "D3": (),
    "D4": (),
    "D5": (),
    "D6": ("src/chaos/sweep.cc", "bench/"),
    "D7": ("src/chaos/sweep.cc",),
    "D8": (),
    "D9": (),
    # config.h IS the place duration defaults get their names.
    "D10": ("src/core/config.h",),
    # The registry implementation manipulates names generically.
    "D11": ("src/metrics/",),
    "D12": (),
}

RULES = {
    "D1": "wall-clock or OS time source outside src/common/time.h",
    "D2": "ambient randomness outside src/common/rng.h",
    "D3": "unordered container in a protocol directory without an "
          "order-independence justification",
    "D4": "ordered container keyed on a raw pointer (allocation-order "
          "nondeterminism)",
    "D5": "scalar field of a wire-format struct without a member initializer",
    "D6": "std::thread/atomic/mutex outside src/chaos/sweep.cc and bench/",
    "D7": "direct file I/O in a protocol directory (bypasses the simulated "
          "stable storage)",
    "D8": "stable-storage persistence incompleteness (key written but never "
          "recovered, or recovered but never written)",
    "D9": "wire-message dispatch non-exhaustive (declared type without a "
          "dispatch arm, or an unreachable/undeclared arm)",
    "D10": "anonymous duration literal in protocol code (deadlines must "
           "derive from named config symbols)",
    "D11": "metric name dynamically constructed, or emitted but absent from "
           "the docs/OBSERVABILITY.md registry",
    "D12": "stale or malformed detlint suppression (justification debt must "
           "ratchet down)",
}

SUGGESTIONS = {
    "D1": "route through sim::Clock / cht::LocalTime (src/common/time.h); "
          "simulated components must never read the host clock",
    "D2": "take an explicitly seeded cht::Rng (src/common/rng.h), or derive "
          "a stream with Rng::split() / chaos::derive_seed()",
    "D3": "use std::map/std::set, iterate a sorted copy, or append "
          "'// detlint: order-independent (<why order cannot matter>)'",
    "D4": "key on a stable id (ProcessId, OperationId, sequence number) "
          "instead of the object's address",
    "D5": "add a member initializer ('= 0', '= false', '{}') so a "
          "default-constructed message has no indeterminate bits",
    "D6": "keep simulated code single-threaded; parallelism belongs in the "
          "seed sweeper (src/chaos/sweep.cc) or bench/ harnesses",
    "D7": "persist through sim::StableStorage (src/sim/storage.h) so writes "
          "participate in simulated crash/loss semantics; host files are "
          "invisible to the power-cycle nemesis",
    "D8": "read the key back in the stack's recover()/on_restart() path (or "
          "delete the write if the state is genuinely volatile); a write "
          "recovery never consults is durability theater",
    "D9": "add a dispatch arm in the stack's on_message switch for every "
          "declared type; delete arms (and declarations) for messages the "
          "stack no longer sends",
    "D10": "bind the literal to a named symbol first (a Config field, a "
           "constexpr Duration kFoo, or a named local) so deadline "
           "arithmetic reads as named quantities",
    "D11": "register metrics with literal names (pre-registered handles, "
           "bounded cardinality) and list each name in the metric-name "
           "registry table in docs/OBSERVABILITY.md",
    "D12": "delete the annotation (the finding it justified is gone) or fix "
           "its grammar: a reason is mandatory, and D12 itself cannot be "
           "suppressed",
}


class Finding:
    def __init__(self, rule, path, line, snippet, message=None):
        self.rule = rule
        self.path = path
        self.line = line
        self.snippet = snippet.strip()
        self.message = message or RULES[rule]
        self.suggestion = SUGGESTIONS[rule]

    def key(self):
        return (self.path, self.line, self.rule)

    def to_json(self):
        return {
            "rule": self.rule,
            "path": self.path,
            "line": self.line,
            "snippet": self.snippet,
            "message": self.message,
            "suggestion": self.suggestion,
        }


# --- Lexing -------------------------------------------------------------------

def strip_lines(text):
    """Split a C++ source into per-line (code, comment, craw) triples.

    `code` has string/char literals blanked (their quotes kept) and comments
    removed — rule patterns match against it so literal/comment text cannot
    spoof a rule. `craw` keeps literal content but removes comments — call
    arguments (storage keys, metric names) are parsed from it, since
    positions in `code` shift once literals are blanked. Handles multi-line
    /* */ comments; raw strings are not used in this codebase and are
    treated as ordinary literals.
    """
    out = []
    in_block = False
    for raw in text.splitlines():
        code = []
        craw = []
        comment = []
        i, n = 0, len(raw)
        while i < n:
            c = raw[i]
            if in_block:
                end = raw.find("*/", i)
                if end < 0:
                    comment.append(raw[i:])
                    i = n
                else:
                    comment.append(raw[i:end])
                    i = end + 2
                    in_block = False
                continue
            if c == "/" and i + 1 < n and raw[i + 1] == "/":
                comment.append(raw[i + 2:])
                i = n
                continue
            if c == "/" and i + 1 < n and raw[i + 1] == "*":
                in_block = True
                i += 2
                continue
            if c in "\"'":
                quote = c
                code.append(quote)
                start = i
                i += 1
                while i < n:
                    if raw[i] == "\\":
                        i += 2
                        continue
                    if raw[i] == quote:
                        code.append(quote)
                        i += 1
                        break
                    i += 1
                craw.append(raw[start:i])
                continue
            code.append(c)
            craw.append(c)
            i += 1
        out.append(("".join(code), " ".join(comment).strip(),
                    "".join(craw)))
    return out


RULE_ID = r"D(?:1[0-2]|[1-9])"
SUPPRESS_RE = re.compile(
    r"detlint:\s*(?:allow\((" + RULE_ID + r")\)\s*(\S.*)?"
    r"|order-independent\s*(\(.+\))?)")
# Broad matcher for collecting *all* annotation sites (valid or not) so D12
# can audit them; `allow(...)` with any argument, and bare order-independent.
SUPPRESS_SITE_RE = re.compile(
    r"detlint:\s*(?:allow\((\w+)\)\s*(\S.*)?"
    r"|(order-independent)\s*(\(.+\))?)")


def suppressions(comment):
    """Rules suppressed by this comment; None-reason suppressions are invalid
    (the justification grammar requires a reason) and are ignored. D12 is
    never suppressible — a stale-suppression finding cannot itself be
    justified away."""
    rules = set()
    for m in SUPPRESS_RE.finditer(comment):
        if m.group(1):                       # allow(Dk) reason
            if m.group(2) and m.group(1) != "D12":
                rules.add(m.group(1))
        elif m.group(3):                     # order-independent (reason)
            rules.add("D3")
    return rules


def suppression_sites(comment):
    """All annotation sites in this comment as (rule, valid) pairs. `rule` is
    the annotated rule id ('D3' for order-independent sugar); `valid` is
    False when the mandatory reason is missing, the rule id is unknown, or
    the annotation targets D12."""
    sites = []
    for m in SUPPRESS_SITE_RE.finditer(comment):
        if m.group(1):
            rule = m.group(1)
            valid = (bool(m.group(2)) and rule in RULES and rule != "D12")
            sites.append((rule if rule in RULES else "D?", valid))
        elif m.group(3):
            sites.append(("D3", bool(m.group(4))))
    return sites


# --- Regex engine (per-line rules) -------------------------------------------

D1_PATTERNS = [
    re.compile(r"std::chrono::\w*_clock\b"),
    re.compile(r"\bchrono::\w*_clock\b"),
    re.compile(r"\bgettimeofday\s*\("),
    re.compile(r"\bclock_gettime\s*\("),
    re.compile(r"(?<![\w:.>])clock\s*\(\s*\)"),
    re.compile(r"(?<![\w:.>])time\s*\(\s*(?:NULL|nullptr|0|&\w+|\))"),
    re.compile(r"\b(?:localtime|gmtime|mktime)\s*\("),
]

D2_PATTERNS = [
    re.compile(r"\bstd::random_device\b"),
    re.compile(r"\bstd::mt19937(?:_64)?\b"),
    re.compile(r"\bstd::default_random_engine\b"),
    re.compile(r"\bstd::minstd_rand0?\b"),
    re.compile(r"\bstd::ranlux\w+\b"),
    re.compile(r"(?<![\w:.])s?rand\s*\("),
    re.compile(r"\barc4random\w*\s*\("),
    re.compile(r"\bgetentropy\s*\("),
]
D2_RAW_PATTERNS = [re.compile(r"/dev/u?random")]

D4_PATTERNS = [
    re.compile(r"std::(?:multi)?(?:map|set)\s*<\s*(?:const\s+)?[\w:]+\s*\*"),
    re.compile(r"std::priority_queue\s*<\s*(?:const\s+)?[\w:]+\s*\*"),
]

# D7 — direct file I/O in protocol directories (rule scope applied at the
# scan site: only PROTOCOL_DIRS files are checked). The bare open/openat/
# creat pattern deliberately excludes member calls (`file.open(...)`,
# `is_open()`) and qualified names via the lookbehind.
D7_PATTERNS = [
    re.compile(r"\bstd::(?:basic_)?[io]?fstream\b"),
    re.compile(r"\bf(?:re)?open\s*\("),
    re.compile(r"(?<![\w:.>])(?:open|openat|creat)\s*\("),
    re.compile(r"#\s*include\s*<(?:fstream|cstdio|stdio\.h|fcntl\.h)>"),
]

D6_PATTERNS = [
    re.compile(r"\bstd::(?:jthread|thread)\b"),
    re.compile(r"\bstd::atomic\b|\bstd::atomic_\w+\b"),
    re.compile(r"\bstd::(?:shared_|recursive_)?mutex\b"),
    re.compile(r"\bstd::condition_variable\b"),
    re.compile(r"\bstd::(?:lock_guard|unique_lock|scoped_lock|shared_lock)\b"),
    re.compile(r"\bstd::(?:async|future|promise|packaged_task)\b"),
    re.compile(r"#\s*include\s*<(?:thread|atomic|mutex|condition_variable|"
               r"future|shared_mutex|semaphore|barrier|latch)>"),
]

UNORDERED_DECL_RE = re.compile(
    r"(?:std::)?unordered_(?:map|set|multimap|multiset)\s*<")
# `... > name ;|=|{` — the declared variable at the end of an unordered decl.
UNORDERED_NAME_RE = re.compile(r">\s*(\w+)\s*(?:;|=|\{)")
UNORDERED_ALIAS_RE = re.compile(
    r"\busing\s+(\w+)\s*=\s*(?:std::)?unordered_(?:map|set)")

# D5 scalar field types that have indeterminate values unless initialized.
D5_SCALAR = (
    r"(?:std::)?u?int(?:8|16|32|64|ptr)?_t|(?:std::)?size_t|"
    r"(?:unsigned\s+)?(?:long\s+long|long|int|short|char)|unsigned|"
    r"bool|float|double|BatchNumber"
)
D5_FIELD_RE = re.compile(
    r"^\s*(?:mutable\s+)?(?P<type>(?:" + D5_SCALAR + r")(?:\s*\*)?)\s+"
    r"(?P<name>\w+)\s*(?P<init>;|=|\{)")
STRUCT_OPEN_RE = re.compile(r"^\s*(?:struct|class)\s+(\w+)[^;]*\{")

# D10 — an anonymous duration literal inside an expression. A literal is
# fine exactly where it *names* a symbol: a config-struct default, a
# constexpr constant, a named local ("Duration patience = ...").
D10_LITERAL_RE = re.compile(r"Duration::(?:micros|millis|seconds)\s*\(\s*\d")
D10_NAMED_BINDING_RE = re.compile(
    r"(?:^|[({,]\s*|\s)(?:constexpr\s+|static\s+|const\s+|inline\s+)*"
    r"(?:sim::|cht::)?Duration\s+\w+\s*[={]")

# D11 — metric registration sites: a registry-shaped receiver followed by a
# name-taking registration call. Lookups (value(), find_histogram()) are not
# registrations and are ignored.
D11_CALL_RE = re.compile(
    r"(?:\bmetrics_\w*|\bmetrics\(\)|->\s*metrics\(\)|\bout\b|\bregistry\w*"
    r"|\breg\b)\s*(?:\.|->)\s*(counter|gauge|histogram|add)\s*\(")
D11_DYNAMIC_MARKERS = re.compile(r"\+|\bto_string\b|\bformat\b|\bappend\s*\(")

STRING_LITERAL_RE = re.compile(r'"([^"\\]*(?:\\.[^"\\]*)*)"')


def rel_in(path, prefixes):
    return any(path == p or path.startswith(p.rstrip("/") + "/")
               for p in prefixes)


def allowlisted(rule, path):
    return rel_in(path, ALLOWLIST[rule])


def stack_of(path):
    """The STACK_DIRS prefix this path belongs to, or None."""
    for d in STACK_DIRS:
        if rel_in(path, (d,)):
            return d
    return None


class FileScan:
    """Everything one file contributes to the scan: per-line findings,
    pre-suppression candidates (for the D12 liveness audit), suppression
    annotation sites, and the per-line active suppression sets (reused when
    cross-file rules anchor findings into this file)."""

    def __init__(self, path, text):
        self.path = path
        self.raw = text.splitlines()
        self.lines = strip_lines(text)
        self.findings = []
        self.candidates = set()   # (line 1-based, rule), post-allowlist
        self.suppress = []        # (line 1-based, rule, valid, standalone)
        # Suppressions: own line, plus carry-over from a pure-comment line.
        self.active = []
        carried = set()
        for lineno, (code, comment, _craw) in enumerate(self.lines):
            own = suppressions(comment)
            standalone = not code.strip()
            for rule, valid in suppression_sites(comment):
                self.suppress.append((lineno + 1, rule, valid, standalone))
            self.active.append(own | carried)
            carried = own if standalone else set()

    def emit(self, rule, lineno0, message=None):
        """Record a finding on 0-based line `lineno0`, honoring the allowlist
        and suppressions. Suppressed findings still count as candidates so
        the suppression registers as live."""
        if allowlisted(rule, self.path):
            return
        self.candidates.add((lineno0 + 1, rule))
        if rule in self.active[lineno0]:
            return
        snippet = self.raw[lineno0] if lineno0 < len(self.raw) else ""
        self.findings.append(Finding(rule, self.path, lineno0 + 1,
                                     snippet, message))


def first_call_arg(scan, lineno0, start_col):
    """Parse the first argument of a call whose opening paren sits at or
    after `start_col` on comment-stripped line `lineno0` (craw — literal
    content intact). Returns (literals, dynamic, text): the string literals
    inside the first argument, whether the argument shows dynamic
    construction, and the argument text. Spans at most three lines."""
    pieces = []
    depth = 0
    started = False
    done = False
    for off in range(3):
        idx = lineno0 + off
        if idx >= len(scan.lines):
            break
        raw = scan.lines[idx][2]
        i = start_col if off == 0 else 0
        while i < len(raw):
            c = raw[i]
            if c == '"':
                j = i + 1
                while j < len(raw):
                    if raw[j] == "\\":
                        j += 2
                        continue
                    if raw[j] == '"':
                        break
                    j += 1
                if started:
                    pieces.append(raw[i:j + 1])
                i = j + 1
                continue
            if c == "(":
                depth += 1
                if depth == 1:
                    started = True
                    i += 1
                    continue
            elif c == ")":
                depth -= 1
                if depth <= 0 and started:
                    done = True
                    break
            elif c == "," and depth == 1:
                done = True
                break
            if started:
                pieces.append(c)
            i += 1
        if done:
            break
    text = "".join(pieces)
    literals = STRING_LITERAL_RE.findall(text)
    blanked = STRING_LITERAL_RE.sub('""', text)
    dynamic = bool(D11_DYNAMIC_MARKERS.search(blanked))
    return literals, dynamic, text.strip()


def paired_calls(regex, code, craw):
    """Matches of `regex` on the craw line, but only for calls that also
    match on the blanked `code` line (so literal content cannot spoof a
    call site), paired by occurrence order — craw positions are what
    first_call_arg needs."""
    code_ms = list(regex.finditer(code))
    if not code_ms:
        return []
    craw_ms = list(regex.finditer(craw))
    return craw_ms[:len(code_ms)]


def scan_file_regex(scan):
    """Run the per-line rules (D1–D7, D10, D11-dynamic) over one file."""
    path = scan.path
    lines = scan.lines

    in_protocol_dir = rel_in(path, PROTOCOL_DIRS)

    # Pass 1: collect unordered-typed names (declarations and aliases).
    unordered_names = set()
    unordered_aliases = set()
    for idx, (code, _, _craw) in enumerate(lines):
        m = UNORDERED_ALIAS_RE.search(code)
        if m:
            unordered_aliases.add(m.group(1))
        if UNORDERED_DECL_RE.search(code):
            m = UNORDERED_NAME_RE.search(code)
            if m:
                unordered_names.add(m.group(1))
        for alias in unordered_aliases:
            m = re.search(r"\b" + re.escape(alias) + r"\s+(\w+)\s*(?:;|=|\{)",
                          code)
            if m:
                unordered_names.add(m.group(1))

    # Pass 2: per-line rules.
    for idx, (code, _, craw) in enumerate(lines):
        for pattern in D1_PATTERNS:
            if pattern.search(code):
                scan.emit("D1", idx)
                break
        hit_d2 = any(p.search(code) for p in D2_PATTERNS) or \
            any(p.search(craw) for p in D2_RAW_PATTERNS)
        if hit_d2:
            scan.emit("D2", idx)
        if in_protocol_dir:
            if UNORDERED_DECL_RE.search(code) or \
                    UNORDERED_ALIAS_RE.search(code):
                scan.emit("D3", idx,
                          "unordered container declared in a protocol "
                          "directory without an order-independence "
                          "justification")
            else:
                for name in unordered_names:
                    esc = re.escape(name)
                    if re.search(r"for\s*\([^;)]*:\s*" + esc + r"\s*\)", code) \
                            or re.search(r"\b" + esc + r"\s*\.\s*c?begin\s*\(",
                                         code):
                        scan.emit("D3", idx,
                                  "iteration over unordered container '%s' "
                                  "(hash order is implementation-defined)"
                                  % name)
                        break
        for pattern in D4_PATTERNS:
            if pattern.search(code):
                scan.emit("D4", idx)
                break
        for pattern in D6_PATTERNS:
            if pattern.search(code):
                scan.emit("D6", idx)
                break
        if in_protocol_dir:
            for pattern in D7_PATTERNS:
                if pattern.search(code):
                    scan.emit("D7", idx)
                    break
            if D10_LITERAL_RE.search(code) and \
                    not D10_NAMED_BINDING_RE.search(code):
                scan.emit("D10", idx,
                          "anonymous duration literal in an expression "
                          "(bind it to a named config symbol or constant)")
        if path.startswith("src/"):
            for m in paired_calls(D11_CALL_RE, code, craw):
                literals, dynamic, text = first_call_arg(
                    scan, idx, m.end() - 1)
                if dynamic or not literals:
                    scan.emit("D11", idx,
                              "dynamically constructed metric name '%s' "
                              "(names must be literals so registration is "
                              "bounded and auditable)" % (text[:60] or "?"))

    # Pass 3: D5 struct-field audit (configured files only).
    if path in D5_FILES:
        depth = 0
        struct_depth = []  # brace depth at which each open struct's body sits
        for idx, (code, _, _craw) in enumerate(lines):
            opens_struct = STRUCT_OPEN_RE.search(code)
            if opens_struct:
                struct_depth.append(depth + 1)
            if struct_depth and depth == struct_depth[-1] and "(" not in code:
                m = D5_FIELD_RE.search(code)
                if m and m.group("init") == ";":
                    scan.emit("D5", idx,
                              "field '%s %s' of a wire-format struct has no "
                              "member initializer" % (m.group("type").strip(),
                                                      m.group("name")))
            depth += code.count("{") - code.count("}")
            while struct_depth and depth < struct_depth[-1]:
                struct_depth.pop()


# --- Protocol-model extraction ------------------------------------------------

CONST_STR_RE = re.compile(
    r"(?:inline\s+|static\s+)*constexpr\s+const\s+char\s*\*\s*"
    r"(k\w+)\s*=\s*")
CONST_STR_VALUE_RE = re.compile(
    r"(?:inline\s+|static\s+)*constexpr\s+const\s+char\s*\*\s*"
    r"(k\w+)\s*=\s*\"([^\"]*)\"")
MESSAGE_VALUE_RE = re.compile(r"^[a-z]\w*\.[a-z]\w*$")
DISPATCH_RE = re.compile(r"\.\s*is\s*\(\s*((?:\w+::)*k\w+)\s*\)")
SEND_RE = re.compile(r"\b(?:send|broadcast)\s*\(")
STORAGE_ALIAS_RE = re.compile(r"StableStorage&\s+(\w+)\s*=")
STORAGE_OPS = ("write", "erase", "read", "append", "truncate_log",
               "keys_with_prefix", "log_size", "log")
RECOVERY_FN_RE = re.compile(r"recover|restart", re.IGNORECASE)
FUNC_DEF_RE = re.compile(
    r"^\s*(?:template\s*<[^>]*>\s*)?(?:[\w:<>,*&~\]\[]+\s+)+"
    r"(?:\w+::)*(~?\w+)\s*\(")
FUNC_KEYWORDS = {"if", "for", "while", "switch", "return", "else", "do",
                 "case", "new", "delete", "sizeof", "throw", "co_return"}
SCHEDULE_RE = re.compile(r"\b(schedule_after|schedule_at_local|schedule_at)"
                         r"\s*\(")
DEADLINE_FN_RE = re.compile(
    r"Duration\s+(?:\w+::)*(\w*(?:deadline|timeout|period|interval)\w*)"
    r"\s*\(\s*\)")
CONFIG_SYMBOL_RE = re.compile(
    r"\b(?:config_|config\(\))\s*\.\s*(\w+)|\bconfig\(\)\.(\w+)")
DOC_METRIC_RE = re.compile(r"`([a-z][a-z0-9_.]*)`")


def site(path, lineno1):
    return "%s:%d" % (path, lineno1)


def current_function_tracker(scan):
    """Yields (lineno0, code, current_function_name) for a file, tracking the
    most recent function-definition-shaped line (a return type and possibly
    qualified name before the parameter list, not a control keyword, not a
    pure declaration)."""
    current = ""
    for idx, (code, _, craw) in enumerate(scan.lines):
        stripped = code.strip()
        first_word = re.match(r"[A-Za-z_~]\w*", stripped)
        if first_word and first_word.group(0) not in FUNC_KEYWORDS:
            m = FUNC_DEF_RE.match(code)
            if m and not stripped.endswith(";"):
                current = m.group(1)
        yield idx, code, craw, current


def parse_key_arg(scan, lineno0, start_col, constants):
    """Classify the key argument of a storage call starting at `start_col`
    (the column of the opening paren) on raw line lineno0. Returns
    (pattern, kind) where kind is 'exact', 'prefix', or 'dynamic'."""
    literals, _, text = first_call_arg(scan, lineno0, start_col)
    if not text:
        return None, "dynamic"
    concat = "+" in STRING_LITERAL_RE.sub('""', text)
    if literals:
        return literals[0], ("prefix" if concat else "exact")
    m = re.match(r"^([A-Za-z_]\w*)", text)
    if m and m.group(1) in constants:
        return constants[m.group(1)], ("prefix" if concat else "exact")
    return None, "dynamic"


def extract_model(scans, root):
    """Builds the cross-file protocol model: per-stack message vocabulary and
    dispatch/send sites, storage-key read/write sites, timer expressions, the
    emitted metric-name registry, and all suppression annotations."""
    model = {
        "tool": "detlint",
        "model_version": MODEL_VERSION,
        "stacks": {},
        "metrics": {"emitted": {}, "documented": None},
        "suppressions": [],
    }

    def stack_entry(stack):
        return model["stacks"].setdefault(stack, {
            "messages": {},       # const name -> info
            "storage": {"keys": {}, "log": {"writes": [], "reads": []},
                        "dynamic_reads": []},
            "timers": [],
        })

    # Pass A: declarations (string constants) per stack, storage-key usage.
    constants_by_file = {}
    for scan in scans.values():
        consts = {}
        for idx, (code, _, craw) in enumerate(scan.lines):
            if CONST_STR_RE.search(code):
                m = CONST_STR_VALUE_RE.search(craw)
                if m:
                    consts[m.group(1)] = (m.group(2), idx + 1)
        constants_by_file[scan.path] = consts

    constants_by_stack = {}
    for scan in scans.values():
        stack = stack_of(scan.path)
        if stack is None:
            continue
        bucket = constants_by_stack.setdefault(stack, {})
        for name, (value, lineno1) in constants_by_file[scan.path].items():
            bucket.setdefault(name, (value, scan.path, lineno1))

    # Pass B: storage calls, dispatch/send sites, timers — per stack file.
    storage_key_consts = {}   # stack -> set of const names used as keys
    for scan in scans.values():
        stack = stack_of(scan.path)
        if stack is None:
            continue
        entry = stack_entry(stack)
        file_consts = {
            n: v for n, (v, _p, _l) in constants_by_stack[stack].items()}
        aliases = set()
        for code, _, _craw in scan.lines:
            m = STORAGE_ALIAS_RE.search(code)
            if m:
                aliases.add(m.group(1))
        recv = r"(?:storage\s*\(\s*\)"
        for a in sorted(aliases):
            recv += r"|\b" + re.escape(a) + r"\b"
        recv += r")"
        storage_call_re = re.compile(
            recv + r"\s*\.\s*(" + "|".join(STORAGE_OPS) + r")\s*\(")

        for idx, code, craw, fn in current_function_tracker(scan):
            for m in paired_calls(storage_call_re, code, craw):
                op = m.group(1)
                where = site(scan.path, idx + 1)
                recovery = bool(RECOVERY_FN_RE.search(fn))
                if op in ("append", "truncate_log"):
                    entry["storage"]["log"]["writes"].append(
                        {"op": op, "site": where, "function": fn})
                    continue
                if op in ("log", "log_size"):
                    entry["storage"]["log"]["reads"].append(
                        {"op": op, "site": where, "function": fn,
                         "recovery": recovery})
                    continue
                pattern, kind = parse_key_arg(scan, idx, m.end() - 1,
                                              file_consts)
                if kind == "dynamic":
                    if op in ("read", "keys_with_prefix"):
                        entry["storage"]["dynamic_reads"].append(
                            {"op": op, "site": where, "function": fn})
                    continue
                if op == "keys_with_prefix":
                    kind = "prefix"
                rec = entry["storage"]["keys"].setdefault(
                    pattern, {"kind": kind, "writes": [], "reads": [],
                              "recovery_reads": []})
                if kind == "prefix":
                    rec["kind"] = "prefix"
                if op in ("write",):
                    rec["writes"].append({"site": where, "function": fn})
                elif op in ("erase",):
                    pass  # cleanup of a key; neither produces nor consumes
                else:  # read / keys_with_prefix
                    rec["reads"].append({"site": where, "function": fn})
                    if recovery:
                        rec["recovery_reads"].append(where)
                # Remember constants used as storage keys so the message
                # inventory can exclude them (e.g. "els.counter").
                arg_m = re.match(r"\s*([A-Za-z_]\w*)", craw[m.end():])
                if arg_m and arg_m.group(1) in file_consts:
                    storage_key_consts.setdefault(stack, set()).add(
                        arg_m.group(1))

            # Timers: scheduling sites and deadline-function definitions.
            for sched in paired_calls(SCHEDULE_RE, code, craw)[:1]:
                _lits, _dyn, arg = first_call_arg(scan, idx, sched.end() - 1)
                symbols = sorted({g1 or g2 for g1, g2 in
                                  CONFIG_SYMBOL_RE.findall(arg)})
                entry["timers"].append(
                    {"kind": "schedule", "call": sched.group(1),
                     "site": site(scan.path, idx + 1), "function": fn,
                     "expr": arg[:120], "config_symbols": symbols,
                     "has_literal": bool(D10_LITERAL_RE.search(arg))})
            dl = DEADLINE_FN_RE.search(code)
            if dl and not code.strip().endswith(";"):
                entry["timers"].append(
                    {"kind": "deadline_fn", "name": dl.group(1),
                     "site": site(scan.path, idx + 1), "function": fn,
                     "expr": "", "config_symbols": [],
                     "has_literal": False})

    # Pass C: message inventory + dispatch/send sites.
    for stack, consts in sorted(constants_by_stack.items()):
        entry = stack_entry(stack)
        key_consts = storage_key_consts.get(stack, set())
        messages = {}
        for name, (value, path, lineno1) in sorted(consts.items()):
            if name in key_consts:
                continue
            if not MESSAGE_VALUE_RE.match(value):
                continue
            messages[name] = {"type": value,
                              "declared": site(path, lineno1),
                              "dispatched": [], "sent": []}
        undeclared_arms = []
        for scan in scans.values():
            if stack_of(scan.path) != stack:
                continue
            decl_lines = {info["declared"] for info in messages.values()}
            for idx, (code, _, _craw) in enumerate(scan.lines):
                where = site(scan.path, idx + 1)
                for m in DISPATCH_RE.finditer(code):
                    name = m.group(1).split("::")[-1]
                    if name in messages:
                        messages[name]["dispatched"].append(where)
                    elif name in consts or name in key_consts:
                        pass  # a storage-key or non-message constant
                    else:
                        undeclared_arms.append((name, scan.path, idx))
                if SEND_RE.search(code) and where not in decl_lines:
                    for name in messages:
                        if re.search(r"\b" + re.escape(name) + r"\b", code):
                            messages[name]["sent"].append(where)
        entry["messages"] = messages
        entry["undeclared_arms"] = [
            {"name": n, "site": site(p, i + 1)} for n, p, i in undeclared_arms]

    # Pass D: metric registrations (literal names only; dynamic ones were
    # already flagged per-line) across src/.
    for scan in scans.values():
        if not scan.path.startswith("src/") or \
                rel_in(scan.path, ALLOWLIST["D11"]):
            continue
        for idx, (code, _, craw) in enumerate(scan.lines):
            for m in paired_calls(D11_CALL_RE, code, craw):
                literals, dynamic, _text = first_call_arg(scan, idx,
                                                          m.end() - 1)
                if dynamic or not literals:
                    continue
                for name in literals:
                    model["metrics"]["emitted"].setdefault(name, []).append(
                        {"site": site(scan.path, idx + 1),
                         "kind": m.group(1)})

    # Pass E: the documented metric-name registry.
    doc_path = os.path.join(root, OBSERVABILITY_DOC)
    if os.path.isfile(doc_path):
        with open(doc_path, "r", encoding="utf-8", errors="replace") as f:
            doc = f.read()
        model["metrics"]["documented"] = sorted(set(
            DOC_METRIC_RE.findall(doc)))

    # Pass F: suppression inventory (liveness filled in by the caller).
    for scan in sorted(scans.values(), key=lambda s: s.path):
        for lineno1, rule, valid, standalone in scan.suppress:
            model["suppressions"].append(
                {"site": site(scan.path, lineno1), "rule": rule,
                 "valid": valid, "standalone": standalone, "live": None})
    return model


def cross_file_findings(scans, model):
    """Evaluates the model rules D8, D9 and the D11 documented-set check,
    emitting findings through each file's FileScan (so allowlists and
    suppressions apply, and suppressed cross-file findings still register
    as candidates for the D12 liveness audit)."""

    def emit_at(where, rule, message):
        path, lineno1 = where.rsplit(":", 1)
        scan = scans.get(path)
        if scan is None:
            return
        scan.emit(rule, int(lineno1) - 1, message)

    for stack, entry in sorted(model["stacks"].items()):
        # --- D8: persistence completeness -------------------------------
        keys = entry["storage"]["keys"]
        for pattern, rec in sorted(keys.items()):
            reads = list(rec["reads"])
            recovery_reads = list(rec["recovery_reads"])
            # A prefix write is satisfied by a prefix read of a compatible
            # prefix; an exact write by an exact read of the same key or a
            # covering prefix read.
            for other_pat, other in keys.items():
                if other_pat == pattern:
                    continue
                if other["kind"] == "prefix" and \
                        pattern.startswith(other_pat):
                    reads += other["reads"]
                    recovery_reads += other["recovery_reads"]
            if rec["writes"] and not reads:
                emit_at(rec["writes"][0]["site"], "D8",
                        "storage key '%s' is written but never read back "
                        "in %s — recovery silently ignores it" %
                        (pattern, stack))
            elif rec["writes"] and not recovery_reads:
                emit_at(rec["writes"][0]["site"], "D8",
                        "storage key '%s' is written but never read on a "
                        "recovery path (recover*/on_restart) in %s" %
                        (pattern, stack))
            elif reads and not rec["writes"]:
                emit_at(reads[0]["site"], "D8",
                        "storage key '%s' is read but never written in %s — "
                        "recovery consumes state nobody produces" %
                        (pattern, stack))
        log = entry["storage"]["log"]
        if log["writes"] and not log["reads"]:
            emit_at(log["writes"][0]["site"], "D8",
                    "append log is written but never replayed in %s" % stack)
        elif log["reads"] and not log["writes"]:
            emit_at(log["reads"][0]["site"], "D8",
                    "append log is replayed but never written in %s" % stack)

        # --- D9: handler exhaustiveness ---------------------------------
        for name, info in sorted(entry["messages"].items()):
            if not info["dispatched"]:
                emit_at(info["declared"], "D9",
                        "message type %s (\"%s\") has no dispatch arm in %s"
                        % (name, info["type"], stack))
            elif not info["sent"]:
                emit_at(info["dispatched"][0], "D9",
                        "dispatch arm for %s (\"%s\") is unreachable: the "
                        "type is never sent in %s"
                        % (name, info["type"], stack))
        for arm in entry.get("undeclared_arms", []):
            emit_at(arm["site"], "D9",
                    "dispatch arm references %s, which is not a message "
                    "type declared in %s" % (arm["name"], stack))

    # --- D11: emitted ⊆ documented ------------------------------------
    documented = model["metrics"]["documented"]
    if documented is not None:
        doc_set = set(documented)
        for name, sites in sorted(model["metrics"]["emitted"].items()):
            if name not in doc_set:
                emit_at(sites[0]["site"], "D11",
                        "metric '%s' is emitted but not listed in the "
                        "metric-name registry (%s)"
                        % (name, OBSERVABILITY_DOC))


def audit_suppressions(scans, model):
    """Rule D12: every annotation must be valid and still suppress at least
    one candidate finding of its rule (on its own line, or the next line for
    standalone-comment annotations)."""
    for entry in model["suppressions"]:
        path, lineno1 = entry["site"].rsplit(":", 1)
        lineno1 = int(lineno1)
        scan = scans.get(path)
        if scan is None:
            continue
        covered = {lineno1}
        if entry["standalone"]:
            covered.add(lineno1 + 1)
        live = any((line, entry["rule"]) in scan.candidates
                   for line in covered)
        entry["live"] = live
        if not entry["valid"]:
            scan.emit("D12", lineno1 - 1,
                      "malformed detlint annotation (reason is mandatory; "
                      "rule id must be D1–D11)")
        elif not live:
            scan.emit("D12", lineno1 - 1,
                      "stale suppression: allow(%s) no longer matches any "
                      "finding here" % entry["rule"])


def canonical_model(model):
    """The model with volatile fields normalized for drift comparison."""
    return json.dumps(model, indent=2, sort_keys=True) + "\n"


# --- Clang engine (optional) --------------------------------------------------

def scan_files_clang(root, paths):
    """AST-based augmentation pass for D1/D2/D3/D6 via the clang Python
    bindings. The regex pass is always the floor; AST findings are unioned
    in (deduplicated by site), so enabling clang can only add resolution,
    never lose a regex-detectable finding. Returns None if libclang is
    unavailable so the caller can fall back."""
    try:
        from clang import cindex  # type: ignore
    except ImportError:
        return None
    try:
        index = cindex.Index.create()
    except Exception:  # missing libclang.so despite bindings
        return None

    banned_calls = {
        "gettimeofday": "D1", "clock_gettime": "D1", "time": "D1",
        "clock": "D1", "localtime": "D1", "gmtime": "D1", "mktime": "D1",
        "rand": "D2", "srand": "D2", "arc4random": "D2", "getentropy": "D2",
    }
    banned_types = {
        "std::random_device": "D2", "std::mt19937": "D2",
        "std::mt19937_64": "D2", "std::default_random_engine": "D2",
        "std::thread": "D6", "std::jthread": "D6", "std::mutex": "D6",
        "std::condition_variable": "D6", "std::atomic": "D6",
    }
    findings = []
    args = ["-std=c++20", "-I" + os.path.join(root, "src"),
            "-I" + os.path.join(root, "bench")]
    for path in paths:
        full = os.path.join(root, path)
        try:
            tu = index.parse(full, args=args)
        except cindex.TranslationUnitLoadError:
            continue
        for cursor in tu.cursor.walk_preorder():
            loc = cursor.location
            if not loc.file or os.path.abspath(loc.file.name) != \
                    os.path.abspath(full):
                continue
            rule = None
            if cursor.kind == cindex.CursorKind.CALL_EXPR and \
                    cursor.spelling in banned_calls:
                rule = banned_calls[cursor.spelling]
            elif cursor.kind in (cindex.CursorKind.VAR_DECL,
                                 cindex.CursorKind.FIELD_DECL):
                type_name = cursor.type.get_canonical().spelling
                for banned, r in banned_types.items():
                    if type_name.startswith(banned):
                        rule = r
                        break
                if rule is None and rel_in(path, PROTOCOL_DIRS) and \
                        ("unordered_map" in type_name or
                         "unordered_set" in type_name):
                    rule = "D3"
            elif cursor.kind == cindex.CursorKind.CXX_FOR_RANGE_STMT:
                children = list(cursor.get_children())
                if children:
                    range_type = children[-2].type.get_canonical().spelling \
                        if len(children) >= 2 else ""
                    if rel_in(path, PROTOCOL_DIRS) and (
                            "unordered_map" in range_type or
                            "unordered_set" in range_type):
                        rule = "D3"
            if rule and not allowlisted(rule, path):
                with open(full, "r", encoding="utf-8", errors="replace") as f:
                    raw = f.read().splitlines()
                lineno = loc.line
                comment = raw[lineno - 1] if lineno <= len(raw) else ""
                prev = raw[lineno - 2] if lineno >= 2 else ""
                if rule in suppressions(comment) | suppressions(prev):
                    continue
                snippet = raw[lineno - 1] if lineno <= len(raw) else ""
                findings.append(Finding(rule, path, lineno, snippet))
    return findings


# --- Driver -------------------------------------------------------------------

def collect_files(root, explicit):
    if explicit:
        paths = []
        for p in explicit:
            rel = os.path.relpath(os.path.abspath(p), root)
            paths.append(rel.replace(os.sep, "/"))
        return sorted(paths)
    paths = []
    for scan_root in SCAN_ROOTS:
        base = os.path.join(root, scan_root)
        if not os.path.isdir(base):
            continue
        for dirpath, dirnames, filenames in os.walk(base):
            dirnames.sort()
            for name in sorted(filenames):
                if not name.endswith(CPP_SUFFIXES):
                    continue
                rel = os.path.relpath(os.path.join(dirpath, name), root)
                rel = rel.replace(os.sep, "/")
                if rel_in(rel, EXCLUDE_PREFIXES):
                    continue
                paths.append(rel)
    return paths


def run_scan(root, files, engine, full_scan=True):
    """Returns (findings, engine_used, model). `full_scan` enables the
    cross-file model rules (D8/D9/D11-doc/D12); partial scans (explicit file
    arguments) run the per-line rules only, since "never read"/"never
    dispatched" cannot be decided from a subset of the tree."""
    engine_used = "regex"
    clang_findings = None
    if engine in ("clang", "auto"):
        clang_findings = scan_files_clang(root, files)
        if clang_findings is None:
            if engine == "clang":
                sys.stderr.write(
                    "detlint: clang python bindings unavailable; "
                    "falling back to --engine=regex\n")
        else:
            engine_used = "clang+regex"

    scans = {}
    for path in files:
        full = os.path.join(root, path)
        try:
            with open(full, "r", encoding="utf-8", errors="replace") as f:
                text = f.read()
        except OSError as e:
            sys.stderr.write("detlint: cannot read %s: %s\n" % (path, e))
            continue
        scan = FileScan(path, text)
        scan_file_regex(scan)
        scans[path] = scan

    model = None
    if full_scan:
        model = extract_model(scans, root)
        cross_file_findings(scans, model)
        audit_suppressions(scans, model)

    findings = []
    for path in sorted(scans):
        findings.extend(scans[path].findings)
    if clang_findings is not None:
        findings += clang_findings
    seen = set()
    deduped = []
    for f in sorted(findings, key=Finding.key):
        if f.key() not in seen:
            seen.add(f.key())
            deduped.append(f)
    return deduped, engine_used, model


def report(findings, engine_used, json_out, quiet=False):
    doc = {
        "tool": "detlint",
        "version": VERSION,
        "engine": engine_used,
        "counts": {},
        "findings": [f.to_json() for f in findings],
    }
    for f in findings:
        doc["counts"][f.rule] = doc["counts"].get(f.rule, 0) + 1
    if json_out is not None:
        text = json.dumps(doc, indent=2, sort_keys=True) + "\n"
        if json_out == "-":
            sys.stdout.write(text)
        else:
            with open(json_out, "w", encoding="utf-8") as f:
                f.write(text)
    if json_out != "-" and not quiet:
        for f in findings:
            print("%s:%d: [%s] %s" % (f.path, f.line, f.rule, f.message))
            print("    %s" % f.snippet)
            print("    fix: %s" % f.suggestion)
        summary = ", ".join("%s=%d" % (r, n)
                            for r, n in sorted(doc["counts"].items()))
        print("detlint (%s): %d finding(s)%s" %
              (engine_used, len(findings),
               (" [" + summary + "]") if summary else ""))


def write_sarif(findings, path):
    """SARIF 2.1.0 export so CI code scanning renders findings as PR
    annotations."""
    rules = []
    for rule in sorted(RULES):
        rules.append({
            "id": rule,
            "shortDescription": {"text": RULES[rule]},
            "help": {"text": SUGGESTIONS[rule]},
            "defaultConfiguration": {"level": "error"},
        })
    results = []
    for f in findings:
        results.append({
            "ruleId": f.rule,
            "level": "error",
            "message": {"text": "%s — fix: %s" % (f.message, f.suggestion)},
            "locations": [{
                "physicalLocation": {
                    "artifactLocation": {"uri": f.path},
                    "region": {"startLine": f.line},
                },
            }],
        })
    doc = {
        "$schema": "https://json.schemastore.org/sarif-2.1.0.json",
        "version": "2.1.0",
        "runs": [{
            "tool": {"driver": {
                "name": "detlint",
                "version": str(VERSION),
                "informationUri":
                    "docs/STATIC_ANALYSIS.md",
                "rules": rules,
            }},
            "results": results,
        }],
    }
    with open(path, "w", encoding="utf-8") as f:
        f.write(json.dumps(doc, indent=2, sort_keys=True) + "\n")


# --- Self-test ----------------------------------------------------------------

EXPECT_RE = re.compile(
    r"detlint-expect:\s*((?:" + RULE_ID + r")(?:\s*,\s*(?:" + RULE_ID +
    r"))*)")


def selftest(tool_dir):
    """Scan the fixture corpus and require findings to match the
    `// detlint-expect: Dk` markers exactly — every seeded violation caught,
    no false positives on the negative cases."""
    corpus = os.path.join(tool_dir, "fixtures", "corpus")
    if not os.path.isdir(corpus):
        sys.stderr.write("detlint --selftest: missing fixture corpus at %s\n"
                         % corpus)
        return 2
    files = collect_files(corpus, None)
    expected = set()
    for path in files:
        with open(os.path.join(corpus, path), encoding="utf-8") as f:
            for lineno, line in enumerate(f, start=1):
                m = EXPECT_RE.search(line)
                if m:
                    for rule in re.split(r"\s*,\s*", m.group(1)):
                        expected.add((path, lineno, rule))
    findings, _, _ = run_scan(corpus, files, "regex")
    found = {f.key() for f in findings}
    missed = sorted(expected - found)
    surprise = sorted(found - expected)
    for path, line, rule in missed:
        print("MISSED  %s:%d expected %s not reported" % (path, line, rule))
    for path, line, rule in surprise:
        print("EXTRA   %s:%d unexpected %s finding" % (path, line, rule))
    rules_seen = {rule for (_, _, rule) in expected}
    missing_rules = sorted(set(RULES) - rules_seen)
    if missing_rules:
        print("CORPUS  no positive fixture for rule(s): %s"
              % ", ".join(missing_rules))
    ok = not missed and not surprise and not missing_rules
    print("detlint selftest: %s (%d expected findings across %d files)"
          % ("PASS" if ok else "FAIL", len(expected), len(files)))
    return 0 if ok else 1


def parity(tool_dir):
    """Engine parity: when libclang is importable, --engine=clang and the
    regex engine must produce identical finding sets over the fixture
    corpus (the AST pass may only confirm regex findings, never diverge).
    Exit 77 (skip) when the bindings are unavailable."""
    corpus = os.path.join(tool_dir, "fixtures", "corpus")
    files = collect_files(corpus, None)
    regex_findings, _, _ = run_scan(corpus, files, "regex")
    clang_findings, engine_used, _ = run_scan(corpus, files, "clang")
    if engine_used == "regex":
        print("detlint parity: SKIP (clang python bindings unavailable)")
        return EXIT_SKIP
    regex_keys = {f.key() for f in regex_findings}
    clang_keys = {f.key() for f in clang_findings}
    only_regex = sorted(regex_keys - clang_keys)
    only_clang = sorted(clang_keys - regex_keys)
    for path, line, rule in only_regex:
        print("REGEX-ONLY  %s:%d %s" % (path, line, rule))
    for path, line, rule in only_clang:
        print("CLANG-ONLY  %s:%d %s" % (path, line, rule))
    ok = not only_regex and not only_clang
    print("detlint parity: %s (%d regex vs %d clang findings)"
          % ("PASS" if ok else "FAIL", len(regex_keys), len(clang_keys)))
    return 0 if ok else 1


def main(argv):
    parser = argparse.ArgumentParser(prog="detlint", add_help=True)
    parser.add_argument("--root", default=None,
                        help="repo root (default: two levels above this file)")
    parser.add_argument("--engine", choices=("regex", "clang", "auto"),
                        default="regex")
    parser.add_argument("--json", nargs="?", const="-", default=None,
                        metavar="PATH", help="machine-readable output "
                        "(to stdout with no PATH)")
    parser.add_argument("--sarif", default=None, metavar="PATH",
                        help="write findings as SARIF 2.1.0 for CI "
                        "code-scanning annotations")
    parser.add_argument("--model", default=None, metavar="PATH",
                        help="dump the extracted protocol model as "
                        "versioned JSON ('-' for stdout)")
    parser.add_argument("--check-model", default=None, metavar="PATH",
                        help="diff the freshly extracted protocol model "
                        "against a committed JSON artifact; exit 1 on drift")
    parser.add_argument("--selftest", action="store_true",
                        help="check the rules against the fixture corpus")
    parser.add_argument("--parity", action="store_true",
                        help="require regex and clang engines to agree over "
                        "the fixture corpus (exit 77 if clang unavailable)")
    parser.add_argument("--list-rules", action="store_true")
    parser.add_argument("files", nargs="*")
    args = parser.parse_args(argv)

    tool_dir = os.path.dirname(os.path.abspath(__file__))
    if args.list_rules:
        for rule in sorted(RULES, key=lambda r: int(r[1:])):
            print("%s  %s" % (rule, RULES[rule]))
            print("    fix: %s" % SUGGESTIONS[rule])
        return 0
    if args.selftest:
        return selftest(tool_dir)
    if args.parity:
        return parity(tool_dir)

    root = args.root or os.path.dirname(os.path.dirname(tool_dir))
    root = os.path.abspath(root)
    full_scan = not args.files
    if (args.model or args.check_model) and not full_scan:
        sys.stderr.write("detlint: --model/--check-model require a full "
                         "scan (no explicit file arguments)\n")
        return 2
    files = collect_files(root, args.files or None)
    findings, engine_used, model = run_scan(root, files, args.engine,
                                            full_scan=full_scan)
    if args.model is not None:
        text = canonical_model(model)
        if args.model == "-":
            sys.stdout.write(text)
        else:
            with open(args.model, "w", encoding="utf-8") as f:
                f.write(text)
    if args.check_model is not None:
        try:
            with open(args.check_model, "r", encoding="utf-8") as f:
                committed = f.read()
        except OSError as e:
            sys.stderr.write("detlint: cannot read committed model: %s\n" % e)
            return 2
        fresh = canonical_model(model)
        if committed != fresh:
            committed_doc = json.loads(committed) if committed.strip() else {}
            fresh_doc = json.loads(fresh)
            drift = []
            for key in ("stacks", "metrics", "suppressions"):
                if committed_doc.get(key) != fresh_doc.get(key):
                    drift.append(key)
            print("detlint model drift: committed artifact is out of date "
                  "(sections changed: %s)" % (", ".join(drift) or "header"))
            print("regenerate with: python3 tools/detlint/detlint.py "
                  "--model=tools/detlint/protocol_model.json")
            return 1
        print("detlint model drift: OK (model matches committed artifact)")
    if args.sarif is not None:
        write_sarif(findings, args.sarif)
    report(findings, engine_used, args.json, quiet=(args.model == "-"))
    return 1 if findings else 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
