#include "sim/trace.h"

#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <sstream>

#include "harness/cluster.h"
#include "object/register_object.h"

namespace cht {
namespace {

TEST(TraceTest, DisabledByDefaultAndRecordsNothing) {
  sim::Trace trace;
  EXPECT_FALSE(trace.enabled());
  trace.record(RealTime::zero(), ProcessId(0), "x", "y");
  EXPECT_TRUE(trace.events().empty());
}

TEST(TraceTest, RecordsWhenEnabled) {
  sim::Trace trace;
  trace.enable();
  trace.record(RealTime::micros(1000), ProcessId(2), "leader.become", "t=5");
  ASSERT_EQ(trace.events().size(), 1u);
  EXPECT_EQ(trace.events()[0].category, "leader.become");
  EXPECT_EQ(trace.events()[0].process, ProcessId(2));
}

TEST(TraceTest, DumpFiltersAndLimits) {
  sim::Trace trace;
  trace.enable();
  for (int i = 0; i < 5; ++i) {
    trace.record(RealTime::micros(i * 1000), ProcessId(0), "net.send",
                 "m" + std::to_string(i));
    trace.record(RealTime::micros(i * 1000 + 1), ProcessId(1), "batch.commit",
                 "j=" + std::to_string(i));
  }
  auto lines = [](const std::string& text) {
    return std::count(text.begin(), text.end(), '\n');
  };
  std::ostringstream all_os;
  trace.dump(all_os);
  const std::string all = all_os.str();
  EXPECT_EQ(lines(all), 10);

  std::ostringstream commits_os;
  trace.dump(commits_os, 0, "batch.");
  const std::string commits = commits_os.str();
  EXPECT_EQ(lines(commits), 5);
  EXPECT_EQ(commits.find("net.send"), std::string::npos);

  std::ostringstream last2_os;
  trace.dump(last2_os, 2, "batch.");
  const std::string last2 = last2_os.str();
  EXPECT_EQ(lines(last2), 2);
  EXPECT_NE(last2.find("j=4"), std::string::npos);
  EXPECT_EQ(last2.find("j=1"), std::string::npos);
}

TEST(TraceTest, ClusterProtocolEventsRecorded) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = 4;
  config.delta = Duration::millis(10);
  harness::Cluster cluster(config, std::make_shared<object::RegisterObject>());
  cluster.sim().trace().enable();
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.submit(1, object::RegisterObject::write("x"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  int become = 0, commit = 0, grant = 0;
  for (const auto& event : cluster.sim().trace().events()) {
    if (event.category == "leader.become") ++become;
    if (event.category == "batch.commit") ++commit;
    if (event.category == "lease.grant") ++grant;
  }
  EXPECT_GE(become, 1);
  EXPECT_GE(commit, 2);  // the NoOp batch + our write
  EXPECT_GE(grant, 1);
  // Crash events come from the simulation itself.
  cluster.sim().crash(ProcessId(0));
  EXPECT_EQ(cluster.sim().trace().events().back().category, "crash");
}

}  // namespace
}  // namespace cht
