// Simulation driver: owns the event queue, network, clocks and processes.
//
// Usage:
//   Simulation sim(SimulationConfig{...});
//   sim.add_process(std::make_unique<MyProcess>(...));  // n times
//   sim.start();
//   sim.run_until(RealTime::micros(...));               // or run_until(pred)
//
// Fault injection: crash(p), set_clock_offset(p, d), network().set_link_down.
// Determinism: all randomness comes from the seed in SimulationConfig.
#pragma once

#include <functional>
#include <memory>
#include <optional>
#include <vector>

#include "common/assert.h"
#include "common/rng.h"
#include "common/time.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/network.h"
#include "sim/process.h"
#include "sim/storage.h"
#include "sim/trace.h"

namespace cht::sim {

struct SimulationConfig {
  std::uint64_t seed = 1;
  NetworkConfig network;
  // Clocks are synchronized within epsilon of each other: each process's
  // offset is drawn uniformly from [-epsilon/2, +epsilon/2].
  Duration epsilon = Duration::millis(1);
  // Per-process stable storage behaviour (sync latency, crash-time loss of
  // unsynced writes).
  StorageConfig storage;
};

class Simulation {
 public:
  explicit Simulation(SimulationConfig config);

  // Adds a cluster member; returns its id. All processes must be added
  // before start(). The process's clock offset is drawn from the seed.
  ProcessId add_process(std::unique_ptr<Process> process);

  // Adds a client process: a full simulation participant (clock, storage
  // slot, network links) that is NOT part of the replicated cluster. Client
  // ids follow the replica ids, and every process — replica or client — is
  // attached with cluster_size() equal to the replica count, so quorum math
  // and Process::broadcast never see clients. Clients must be added after
  // every add_process() call (enforced), preserving replica clock-offset
  // draws of client-free seeds.
  ProcessId add_client(std::unique_ptr<Process> process);

  // Re-attaches ids/cluster size and calls on_start on every process.
  void start();

  // --- Execution ----------------------------------------------------------
  void step() { queue_.step(); }
  void run_until(RealTime deadline);
  // Runs until pred() holds (checked after each event) or deadline passes.
  // Returns true iff pred() held.
  bool run_until(const std::function<bool()>& pred, RealTime deadline);
  RealTime now() const { return queue_.now(); }

  // Schedules an arbitrary callback on the simulation timeline (used for
  // fault schedules and workload generators).
  EventHandle at(RealTime when, std::function<void()> fn) {
    return queue_.schedule(when, std::move(fn));
  }
  EventHandle after(Duration delay, std::function<void()> fn) {
    return queue_.schedule(queue_.now() + delay, std::move(fn));
  }

  // --- Fault injection ----------------------------------------------------
  void crash(ProcessId p);
  void set_clock_offset(ProcessId p, Duration offset);

  // Replaces a crashed process with a fresh incarnation sharing its id and
  // stable storage, then calls on_restart() on it. The old incarnation is
  // parked (not destroyed) so its still-queued timers fire as harmless
  // no-ops against a permanently-crashed object.
  void restart(ProcessId p, std::unique_ptr<Process> fresh);

  // True iff p is currently crashed OR crashed at any point at or after t
  // (even if since restarted). Used by liveness checking: an operation in
  // flight across a crash may legitimately never complete.
  bool crashed_at_or_after(ProcessId p, RealTime t) const;

  // Number of restarts slot p has been through (0 for the original
  // incarnation). Recovery code namespaces identifiers by this so a fresh
  // incarnation never reuses an OperationId without a per-op fsync.
  int incarnation(ProcessId p) const { return incarnations_.at(p.index()); }

  // --- Access -------------------------------------------------------------
  int n() const { return static_cast<int>(processes_.size()); }
  // Replicated-cluster size (excludes clients); what every process is
  // attached with as Process::cluster_size().
  int cluster_n() const { return cluster_n_; }
  Process& process(ProcessId p) { return *processes_.at(p.index()); }
  template <class T>
  T& process_as(ProcessId p) {
    T* typed = dynamic_cast<T*>(&process(p));
    CHT_ASSERT(typed != nullptr, "process type mismatch");
    return *typed;
  }
  Network& network() { return network_; }
  EventQueue& queue() { return queue_; }
  Clock& clock(ProcessId p) { return clocks_.at(p.index()); }
  StableStorage& storage(ProcessId p) { return *storages_.at(p.index()); }
  Rng& rng() { return rng_; }
  Trace& trace() { return trace_; }
  const SimulationConfig& config() const { return config_; }

 private:
  friend class Process;
  void deliver(const Message& message);
  ProcessId add_slot(std::unique_ptr<Process> process);

  SimulationConfig config_;
  Rng rng_;
  EventQueue queue_;
  Network network_;
  std::vector<std::unique_ptr<Process>> processes_;
  std::vector<Clock> clocks_;
  // One storage per process slot; outlives process incarnations.
  std::vector<std::unique_ptr<StableStorage>> storages_;
  std::vector<std::optional<RealTime>> last_crash_;
  std::vector<int> incarnations_;
  // Replaced incarnations. Their queued timers capture raw Process*, so
  // they must stay alive (permanently crashed) until the simulation dies.
  std::vector<std::unique_ptr<Process>> graveyard_;
  Trace trace_;
  bool started_ = false;
  int cluster_n_ = 0;
};

}  // namespace cht::sim
