// Fixture: rule D3 — unordered containers in protocol directories.
#include <map>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

namespace fixture {

struct Tracker {
  std::unordered_map<int, int> pending_;  // detlint-expect: D3
  std::unordered_set<int> acked_;  // detlint-expect: D3

  // Negative: justified declaration (membership checks only, never iterated).
  std::unordered_set<std::string> seen_;  // detlint: order-independent (insert/contains only; never iterated)

  // Negative: a justification on its own line covers the next line.
  // detlint: order-independent (memo cache; size() and contains() only)
  std::unordered_set<std::string> memo_;

  // Negative: ordered container, iteration order is well-defined.
  std::map<int, int> batches_;

  int bad_iteration() const {
    int sum = 0;
    for (const auto& [key, value] : pending_) {  // detlint-expect: D3
      sum += key + value;
    }
    return sum;
  }

  int bad_iterator_loop() const {
    int sum = 0;
    for (auto it = acked_.begin(); it != acked_.end(); ++it) {  // detlint-expect: D3
      sum += *it;
    }
    return sum;
  }

  // Negative: iterating the ordered mirror is fine.
  int good_ordered_iteration() const {
    int sum = 0;
    for (const auto& [key, value] : batches_) sum += key + value;
    return sum;
  }

  // Negative: justified iteration (e.g. accumulating a commutative sum).
  int good_justified_iteration() const {
    int sum = 0;
    for (int v : acked_) sum += v;  // detlint: order-independent (commutative sum)
    return sum;
  }
};

// Alias declarations are hash containers too.
using HotSet = std::unordered_set<int>;  // detlint-expect: D3

}  // namespace fixture
