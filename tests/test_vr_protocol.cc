// White-box VR protocol tests: a single VrReplica driven by scripted
// puppets — view-change quorums, log selection, state transfer, commit
// clamping.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "object/register_object.h"
#include "sim/simulation.h"
#include "vr/vr.h"

namespace cht {
namespace {

using object::RegisterObject;
using vr::VrLogEntry;
using vr::VrReplica;

class VrPuppet : public sim::Process {
 public:
  void on_message(const sim::Message& message) override {
    received.push_back(message);
  }
  std::vector<sim::Message> received;
  int count(std::string_view type) const {
    int n = 0;
    for (const auto& m : received) {
      if (m.is(type)) ++n;
    }
    return n;
  }
  const sim::Message* last(std::string_view type) const {
    for (auto it = received.rbegin(); it != received.rend(); ++it) {
      if (it->is(type)) return &*it;
    }
    return nullptr;
  }
};

// The replica under test is process 1 (so it is the primary of view 1 and a
// backup in view 0, whose primary is puppet 0).
class VrProtocolTest : public ::testing::Test {
 protected:
  VrProtocolTest() : sim_(make_config()) {
    vr::VrConfig config = vr::VrConfig::defaults_for(Duration::millis(2));
    config.view_change_timeout = Duration::seconds(100);  // no spontaneous VC
    sim_.add_process(std::make_unique<VrPuppet>());  // p0: view-0 primary
    sim_.add_process(std::make_unique<VrReplica>(
        std::make_shared<RegisterObject>(), config));  // p1: under test
    for (int i = 2; i < 5; ++i) sim_.add_process(std::make_unique<VrPuppet>());
    sim_.start();
  }
  static sim::SimulationConfig make_config() {
    sim::SimulationConfig c;
    c.seed = 13;
    c.epsilon = Duration::zero();
    c.network.gst = RealTime::zero();
    c.network.delta = Duration::millis(2);
    c.network.delta_min = Duration::millis(1);
    return c;
  }

  VrPuppet& puppet(int i) { return sim_.process_as<VrPuppet>(ProcessId(i)); }
  VrReplica& replica() { return sim_.process_as<VrReplica>(ProcessId(1)); }
  static ProcessId replica_id() { return ProcessId(1); }
  void run(Duration d) { sim_.run_until(sim_.now() + d); }

  static VrLogEntry entry(int proc, std::int64_t seq, const std::string& v) {
    return VrLogEntry{OperationId{ProcessId(proc), seq},
                      RegisterObject::write(v)};
  }

  sim::Simulation sim_;
};

TEST_F(VrProtocolTest, BackupAppendsAndAcksInOrder) {
  puppet(0).send(replica_id(), vr::msg::kPrepare,
                 vr::msg::Prepare{0, 2, {entry(0, 1, "a"), entry(0, 2, "b")}, 0});
  run(Duration::millis(10));
  EXPECT_EQ(replica().log_size(), 2u);
  ASSERT_EQ(puppet(0).count(vr::msg::kPrepareOk), 1);
  EXPECT_EQ(puppet(0).last(vr::msg::kPrepareOk)->as<vr::msg::PrepareOk>().op_number,
            2);
}

TEST_F(VrProtocolTest, GapTriggersStateTransfer) {
  // A Prepare whose suffix starts beyond our log end cannot be applied.
  puppet(0).send(replica_id(), vr::msg::kPrepare,
                 vr::msg::Prepare{0, 5, {entry(0, 5, "e")}, 0});
  run(Duration::millis(10));
  EXPECT_EQ(replica().log_size(), 0u);
  EXPECT_EQ(puppet(0).count(vr::msg::kGetState), 1);
  // Serve the transfer; the replica catches up.
  puppet(0).send(replica_id(), vr::msg::kNewState,
                 vr::msg::NewState{0,
                                   {entry(0, 1, "a"), entry(0, 2, "b"),
                                    entry(0, 3, "c"), entry(0, 4, "d"),
                                    entry(0, 5, "e")},
                                   5, 3});
  run(Duration::millis(10));
  EXPECT_EQ(replica().log_size(), 5u);
  EXPECT_EQ(replica().commit_number(), 3);
  EXPECT_EQ(replica().applied_state().fingerprint(), "c");
}

TEST_F(VrProtocolTest, CommitClampedToLogLength) {
  puppet(0).send(replica_id(), vr::msg::kPrepare,
                 vr::msg::Prepare{0, 1, {entry(0, 1, "a")}, 99});
  run(Duration::millis(10));
  EXPECT_EQ(replica().commit_number(), 1);
}

TEST_F(VrProtocolTest, BecomesPrimaryOfViewOneAfterQuorum) {
  // Give the replica a log first.
  puppet(0).send(replica_id(), vr::msg::kPrepare,
                 vr::msg::Prepare{0, 1, {entry(0, 1, "a")}, 1});
  run(Duration::millis(10));
  // Two puppets announce a view change to view 1 (whose primary is p1).
  puppet(2).send(replica_id(), vr::msg::kStartViewChange,
                 vr::msg::StartViewChange{1});
  puppet(3).send(replica_id(), vr::msg::kStartViewChange,
                 vr::msg::StartViewChange{1});
  run(Duration::millis(10));
  EXPECT_EQ(replica().view(), 1);
  // DoViewChanges from a majority (incl. the replica's own).
  puppet(2).send(replica_id(), vr::msg::kDoViewChange,
                 vr::msg::DoViewChange{1, {entry(0, 1, "a")}, 0, 1, 1});
  puppet(3).send(replica_id(), vr::msg::kDoViewChange,
                 vr::msg::DoViewChange{1, {entry(0, 1, "a"), entry(0, 2, "b")},
                                       0, 2, 1});
  run(Duration::millis(10));
  EXPECT_TRUE(replica().is_primary());
  // It selected the longest same-view log...
  EXPECT_EQ(replica().log_size(), 2u);
  // ...and broadcast StartView to everyone.
  EXPECT_GE(puppet(2).count(vr::msg::kStartView), 1);
  EXPECT_GE(puppet(3).count(vr::msg::kStartView), 1);
}

TEST_F(VrProtocolTest, HigherLastNormalViewBeatsLongerLog) {
  puppet(2).send(replica_id(), vr::msg::kStartViewChange,
                 vr::msg::StartViewChange{1});
  puppet(3).send(replica_id(), vr::msg::kStartViewChange,
                 vr::msg::StartViewChange{1});
  run(Duration::millis(10));
  // Puppet 2's log is longer but from an older normal view; puppet 3's
  // shorter log from a newer normal view must win (it may contain commits
  // the longer, staler log predates).
  puppet(2).send(
      replica_id(), vr::msg::kDoViewChange,
      vr::msg::DoViewChange{
          1, {entry(0, 1, "a"), entry(0, 2, "b"), entry(0, 3, "c")}, 0, 3, 1});
  run(Duration::millis(10));
  EXPECT_FALSE(replica().is_primary());  // only 2 DVCs (incl. own) so far
  // Craft: to have last_normal_view > 0, pretend a view 0.5... views are
  // integers; give puppet 3 last_normal_view = 0 but this test needs a
  // genuine newer view. Use view 6 (primary = p1 again, 6 mod 5 = 1).
  puppet(2).send(replica_id(), vr::msg::kStartViewChange,
                 vr::msg::StartViewChange{6});
  puppet(3).send(replica_id(), vr::msg::kStartViewChange,
                 vr::msg::StartViewChange{6});
  run(Duration::millis(10));
  puppet(2).send(
      replica_id(), vr::msg::kDoViewChange,
      vr::msg::DoViewChange{
          6, {entry(0, 1, "a"), entry(0, 2, "b"), entry(0, 3, "c")}, 0, 3, 0});
  puppet(3).send(replica_id(), vr::msg::kDoViewChange,
                 vr::msg::DoViewChange{6, {entry(1, 1, "x")}, 4, 1, 1});
  run(Duration::millis(10));
  EXPECT_TRUE(replica().is_primary());
  EXPECT_EQ(replica().view(), 6);
  ASSERT_EQ(replica().log_size(), 1u);
  EXPECT_EQ(replica().log()[0].op.arg, "x");
}

TEST_F(VrProtocolTest, StaleViewMessagesIgnored) {
  // Move to view 6 (see above), then messages from view 0 must be ignored.
  puppet(2).send(replica_id(), vr::msg::kStartViewChange,
                 vr::msg::StartViewChange{6});
  puppet(3).send(replica_id(), vr::msg::kStartViewChange,
                 vr::msg::StartViewChange{6});
  run(Duration::millis(10));
  const auto acks_before = puppet(0).count(vr::msg::kPrepareOk);
  puppet(0).send(replica_id(), vr::msg::kPrepare,
                 vr::msg::Prepare{0, 1, {entry(0, 1, "a")}, 0});
  run(Duration::millis(10));
  EXPECT_EQ(puppet(0).count(vr::msg::kPrepareOk), acks_before);
  EXPECT_EQ(replica().log_size(), 0u);
}

}  // namespace
}  // namespace cht
