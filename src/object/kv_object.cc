#include "object/kv_object.h"

#include "common/assert.h"

namespace cht::object {

std::string KVState::fingerprint() const {
  std::string out;
  for (const auto& [k, v] : entries_) {
    out += k;
    out += '=';
    out += v;
    out += ';';
  }
  return out;
}

std::string KVObject::key_of(const Operation& op) {
  if (op.kind == "get" || op.kind == "del") return op.arg;
  if (op.kind == "put" || op.kind == "cas") return arg_field(op.arg, 0);
  return "";
}

Response KVObject::apply(ObjectState& state, const Operation& op) const {
  auto& kv = dynamic_cast<KVState&>(state);
  if (op.kind == "get") {
    auto it = kv.entries().find(op.arg);
    return it == kv.entries().end() ? "" : it->second;
  }
  if (op.kind == "size") return std::to_string(kv.entries().size());
  if (op.kind == "put") {
    kv.entries()[arg_field(op.arg, 0)] = arg_field(op.arg, 1);
    return "ok";
  }
  if (op.kind == "del") {
    kv.entries().erase(op.arg);
    return "ok";
  }
  if (op.kind == "cas") {
    const std::string key = arg_field(op.arg, 0);
    const std::string expected = arg_field(op.arg, 1);
    const std::string desired = arg_field(op.arg, 2);
    auto it = kv.entries().find(key);
    const std::string current = it == kv.entries().end() ? "" : it->second;
    if (current != expected) return "fail";
    kv.entries()[key] = desired;
    return "ok";
  }
  if (op.kind == "noop") return "ok";
  CHT_UNREACHABLE("unknown kv operation");
}

bool KVObject::conflicts(const Operation& read, const Operation& rmw) const {
  if (is_no_op(rmw)) return false;
  if (read.kind == "size") return true;  // put/del/cas may change key set
  return key_of(read) == key_of(rmw);
}

}  // namespace cht::object
