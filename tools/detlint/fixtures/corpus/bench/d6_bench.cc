// Fixture: negative for rule D6 — bench/ harnesses may use threads (they
// measure the real machine, not the simulation).
#include <thread>

namespace fixture {

unsigned worker_count() { return std::thread::hardware_concurrency(); }

}  // namespace fixture
