#include "object/object.h"

#include "common/assert.h"

namespace cht::object {

std::string encode_args(std::initializer_list<std::string> fields) {
  std::string out;
  bool first = true;
  for (const auto& f : fields) {
    CHT_ASSERT(f.find(':') == std::string::npos,
               "argument fields must not contain ':'");
    if (!first) out += ':';
    out += f;
    first = false;
  }
  return out;
}

std::string arg_field(const std::string& arg, int index) {
  std::size_t start = 0;
  for (int i = 0; i < index; ++i) {
    const std::size_t colon = arg.find(':', start);
    CHT_ASSERT(colon != std::string::npos, "argument field index out of range");
    start = colon + 1;
  }
  const std::size_t end = arg.find(':', start);
  return end == std::string::npos ? arg.substr(start)
                                  : arg.substr(start, end - start);
}

}  // namespace cht::object
