// A replicated try-lock (the paper's motivating "generic shared resource,
// such as ... a lock").
//
// Operations:
//   holder()          -> owner or ""   (read)
//   try_acquire(who)  -> "ok"|"held"   (RMW)
//   release(who)      -> "ok"|"not-held" (RMW)
#pragma once

#include <memory>
#include <string>

#include "object/object.h"

namespace cht::object {

class LockState final : public ObjectState {
 public:
  std::unique_ptr<ObjectState> clone() const override {
    return std::make_unique<LockState>(*this);
  }
  std::string fingerprint() const override { return owner_; }

  const std::string& owner() const { return owner_; }
  void set_owner(std::string owner) { owner_ = std::move(owner); }

 private:
  std::string owner_;  // empty = free
};

class LockObject final : public ObjectModel {
 public:
  std::string name() const override { return "lock"; }
  std::unique_ptr<ObjectState> make_initial_state() const override {
    return std::make_unique<LockState>();
  }
  Response apply(ObjectState& state, const Operation& op) const override;
  bool is_read(const Operation& op) const override {
    return op.kind == "holder";
  }
  bool conflicts(const Operation&, const Operation& rmw) const override {
    return !is_no_op(rmw);  // acquire/release may change the holder
  }

  static Operation holder() { return {"holder", ""}; }
  static Operation try_acquire(const std::string& who) {
    return {"try_acquire", who};
  }
  static Operation release(const std::string& who) { return {"release", who}; }
};

}  // namespace cht::object
