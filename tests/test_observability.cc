// Observability integration tests.
//
// Three properties the metrics subsystem must keep:
//   1. The artifact JSON schema is pinned: a fixed ExperimentResult renders
//      byte-for-byte identical to the golden file (schema_version 1). A
//      schema change must bump metrics::kBenchSchemaVersion and regenerate
//      the golden (CHT_REGEN_GOLDEN=1 ctest -R test_observability).
//   2. Metrics are pure observers: a cluster run with metrics disabled is
//      event-for-event identical to the same run with metrics enabled
//      (histories, final state fingerprints and simulated clocks match).
//   3. A steady-state chtread run populates the protocol-phase span
//      histograms the benches and artifacts rely on.
#include <gtest/gtest.h>

#include <cstdlib>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "common/experiment.h"
#include "harness/cluster.h"
#include "metrics/json.h"
#include "metrics/registry.h"
#include "metrics/stats.h"
#include "object/kv_object.h"
#include "object/register_object.h"

namespace cht {
namespace {

std::string read_file(const std::string& path) {
  std::ifstream in(path);
  std::ostringstream os;
  os << in.rdbuf();
  return os.str();
}

// A fully deterministic artifact exercising every schema section.
std::string render_fixed_artifact(const std::string& path) {
  bench::ExperimentResult result("golden", path, /*smoke=*/true);
  result.begin("E0: schema pin", "Claim: the artifact layout is stable.");
  result.columns({"variant", "value"});
  result.row({"alpha", "1"});
  result.row({"beta", "2"});
  result.note("Expected shape: two rows, one note.");
  result.end();
  result.metric("ops_total", static_cast<std::int64_t>(42));
  result.metric("ratio", 1.5);

  harness::ClusterConfig cluster;
  cluster.n = 5;
  cluster.seed = 7;
  cluster.delta = Duration::millis(10);
  cluster.epsilon = Duration::millis(1);
  core::ConfigOverrides overrides;
  overrides.read_policy = core::ReadPolicy::kLeaderForward;
  overrides.commit_wait = Duration::millis(3);
  result.config("main", cluster, overrides);

  metrics::Registry registry;
  registry.counter("reads_completed").inc(10);
  registry.gauge("depth").set(2);
  auto& h = registry.histogram("span.read.block_us");
  h.record(100);
  h.record(900);
  sim::MessageStats messages;
  messages.sent = 50;
  messages.delivered = 48;
  messages.dropped = 2;
  messages.sent_by_type["Prepare"] = 20;
  messages.sent_by_type["Commit"] = 30;
  result.observe_registry("main", registry, messages);

  metrics::LatencyRecorder reads;
  for (int i = 1; i <= 100; ++i) reads.record(Duration::micros(10 * i));
  result.latency("reads", reads);

  EXPECT_EQ(result.finish(), 0);
  return read_file(path);
}

TEST(ObservabilityTest, ArtifactMatchesGoldenSchema) {
  const std::string artifact_path = "cht_observability_artifact.json";
  const std::string artifact = render_fixed_artifact(artifact_path);
  ASSERT_FALSE(artifact.empty());
  // Version pin: a schema break shows up here even before the golden diff.
  EXPECT_NE(artifact.find("\"schema\": \"cht.bench.v1\""), std::string::npos);
  EXPECT_NE(artifact.find("\"schema_version\": 1"), std::string::npos);
  static_assert(metrics::kBenchSchemaVersion == 1,
                "schema bumped: regenerate tests/golden and update this test");

  const std::string golden_path =
      std::string(CHT_TEST_GOLDEN_DIR) + "/bench_schema.golden.json";
  if (std::getenv("CHT_REGEN_GOLDEN") != nullptr) {
    std::ofstream out(golden_path);
    out << artifact;
    GTEST_SKIP() << "regenerated " << golden_path;
  }
  const std::string golden = read_file(golden_path);
  ASSERT_FALSE(golden.empty()) << "missing golden file " << golden_path
                               << " (run with CHT_REGEN_GOLDEN=1 once)";
  EXPECT_EQ(artifact, golden)
      << "artifact schema drifted; if intentional, bump "
         "metrics::kBenchSchemaVersion and regenerate the golden file";
  std::remove(artifact_path.c_str());
}

// Drives the same deterministic workload on one cluster.
void drive(harness::Cluster& cluster) {
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  for (int i = 0; i < 40; ++i) {
    cluster.submit((leader + 1) % cluster.n(),
                   object::KVObject::put("k" + std::to_string(i % 3),
                                         "v" + std::to_string(i)));
    cluster.run_for(Duration::millis(2));
    cluster.submit((leader + 2) % cluster.n(),
                   object::KVObject::get("k" + std::to_string(i % 3)));
    cluster.run_for(Duration::millis(8));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(20)));
}

TEST(ObservabilityTest, MetricsCannotPerturbTheSimulation) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = 99;
  config.delta = Duration::millis(10);

  harness::Cluster with_metrics(config, std::make_shared<object::KVObject>());
  core::ConfigOverrides off;
  off.metrics_enabled = false;
  harness::Cluster without_metrics(config, std::make_shared<object::KVObject>(),
                                   off);
  drive(with_metrics);
  drive(without_metrics);

  // Event-for-event identical: same simulated end time, same message counts,
  // same history, same final object state.
  EXPECT_EQ(with_metrics.sim().now(), without_metrics.sim().now());
  EXPECT_EQ(with_metrics.sim().network().stats().sent,
            without_metrics.sim().network().stats().sent);
  const auto& a = with_metrics.history().ops();
  const auto& b = without_metrics.history().ops();
  ASSERT_EQ(a.size(), b.size());
  for (std::size_t i = 0; i < a.size(); ++i) {
    EXPECT_EQ(a[i].op.kind, b[i].op.kind);
    EXPECT_EQ(a[i].response, b[i].response);
    EXPECT_EQ(a[i].invoked, b[i].invoked);
    EXPECT_EQ(a[i].completed(), b[i].completed());
  }
  for (int i = 0; i < config.n; ++i) {
    EXPECT_EQ(with_metrics.replica(i).applied_state().fingerprint(),
              without_metrics.replica(i).applied_state().fingerprint());
  }
  // And the disabled registries really recorded nothing.
  for (int i = 0; i < config.n; ++i) {
    EXPECT_EQ(without_metrics.replica(i).metrics().value("reads_completed"), 0);
    const auto* h =
        without_metrics.replica(i).metrics().find_histogram("span.read.block_us");
    ASSERT_NE(h, nullptr);
    EXPECT_EQ(h->count(), 0);
  }
}

TEST(ObservabilityTest, SteadyRunPopulatesProtocolPhaseSpans) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = 5;
  config.delta = Duration::millis(10);
  harness::Cluster cluster(config, std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  for (int i = 0; i < 30; ++i) {
    cluster.submit((leader + 1) % cluster.n(),
                   object::RegisterObject::write("v" + std::to_string(i)));
    cluster.run_for(Duration::millis(3));
    cluster.submit((leader + 2) % cluster.n(), object::RegisterObject::read());
    cluster.run_for(Duration::millis(9));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(20)));

  metrics::Registry merged;
  cluster.merge_metrics_into(merged);
  int populated = 0;
  for (const char* name :
       {"span.doops.prepare_us", "span.doops.gate_us", "span.doops.total_us",
        "span.leader.init_us", "span.lease.interval_us",
        "span.read.block_us"}) {
    const auto* h = merged.find_histogram(name);
    ASSERT_NE(h, nullptr) << name;
    if (h->count() > 0) ++populated;
  }
  EXPECT_GE(populated, 4)
      << "steady run should exercise at least four protocol-phase spans";
  // DoOps phases nest: no prepare phase can exceed its enclosing round.
  const auto* prepare = merged.find_histogram("span.doops.prepare_us");
  const auto* total = merged.find_histogram("span.doops.total_us");
  EXPECT_LE(prepare->max(), total->max());
  // 30 writes commit in fewer DoOps rounds (batching), but well above 1.
  EXPECT_GE(total->count(), 20);
}

}  // namespace
}  // namespace cht
