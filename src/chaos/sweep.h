// Deterministic chaos runs and the parallel seed sweeper.
//
// run_one() executes one fully deterministic simulation described by a
// RunSpec: build the protocol stack behind a ClusterAdapter, arm the
// Nemesis, drive the workload, heal, quiesce, and evaluate the invariant
// registry. The result carries a fingerprint (a hash of the complete
// operation history and final simulated time); equal spec => equal
// fingerprint, which is what `chtread_fuzz --repro` verifies.
//
// sweep_seeds() fans N specs (same base, consecutive seeds) across worker
// threads. Each seed is an independent simulation with zero shared state, so
// the sweep parallelizes perfectly; failures dump self-contained repro
// artifacts (spec + nemesis schedule + trace tail + history) that
// load_artifact() turns back into an exact replay.
//
// Worker-count independence (tested by test_sweep_determinism): seed index i
// always runs seed first_seed+i no matter which worker claims it, and both
// `results` and `artifacts` come back in seed order — `--threads N` can
// never change which seeds fail, their fingerprints, or the artifact list.
// Only the on_result progress callback fires in completion order.
#pragma once

#include <cstdint>
#include <functional>
#include <optional>
#include <string>
#include <vector>

#include "chaos/adapter.h"
#include "chaos/nemesis.h"
#include "chaos/spec.h"

namespace cht::chaos {

struct RunResult {
  RunSpec spec;
  bool quiesced = false;
  // False iff the linearizability search exhausted spec.check_budget; the
  // run then counts as neither pass nor fail on that axis (surfaced in the
  // CLI summary so undecided seeds are never silently dropped).
  bool checker_decided = true;
  std::vector<std::string> violations;
  std::size_t submitted = 0;
  std::size_t completed = 0;
  // Total leadership acquisitions across the cluster (elections won /
  // reigns begun) — the "how eventful was this seed" metric used to pick
  // corpus seeds.
  std::int64_t leadership_changes = 0;
  int crashes = 0;
  // Power-ups performed by the nemesis (restart/bounce actions plus the
  // end-of-run revival under power-cycling profiles).
  int restarts = 0;
  // Completed reads the exposure-window accounting had to excuse for the
  // verdict (see invariants.h). Nonzero only under allows_stale_reads
  // profiles with the clock guard on whose full history failed pass 1.
  std::size_t reads_excused = 0;
  // Clock-offset injections performed by the nemesis, in injection order,
  // and each replica's guard transitions (final incarnation) — together
  // enough to derive guard detection latency offline (bench_robustness).
  std::vector<SkewEvent> skew_events;
  std::vector<std::vector<core::ClockSkewGuard::Transition>> guard_transitions;
  std::string fingerprint;
  std::vector<std::string> nemesis_schedule;
  std::vector<std::string> trace_tail;
  // The complete recorded history, one formatted line per operation.
  std::vector<std::string> history;

  bool ok() const { return violations.empty(); }
};

// Runs one deterministic simulation. `hook` optionally decorates the adapter
// (see AdapterHook); the default runs the stack unmodified.
RunResult run_one(const RunSpec& spec, const AdapterHook& hook = nullptr);

// --- Repro artifacts --------------------------------------------------------

// Writes a self-contained artifact for a (typically failing) run.
// Returns false on I/O failure.
bool write_artifact(const std::string& path, const RunResult& result);

// Parses an artifact back into the spec it was produced from, plus the
// fingerprint recorded at dump time. Returns nullopt on parse failure.
struct Artifact {
  RunSpec spec;
  std::string fingerprint;
};
std::optional<Artifact> load_artifact(const std::string& path);

// --- Parallel seed sweep ----------------------------------------------------

struct SweepOptions {
  int threads = 0;                 // 0 = hardware concurrency
  std::string artifact_dir;        // empty = do not write artifacts
  AdapterHook hook;                // test interposition (see evil.h)
  // Called under a lock as each seed finishes (progress reporting). Fires
  // in completion order — the one place a sweep is allowed to depend on
  // thread scheduling; never derive results from callback order.
  std::function<void(const RunResult&)> on_result;
};

struct SweepResult {
  std::vector<RunResult> results;  // ordered by seed
  std::vector<std::string> artifacts;  // ordered by seed (worker-count-free)

  int failures() const {
    int n = 0;
    for (const auto& r : results) {
      if (!r.ok()) ++n;
    }
    return n;
  }
  int undecided() const {
    int n = 0;
    for (const auto& r : results) {
      if (!r.checker_decided) ++n;
    }
    return n;
  }
  std::vector<std::uint64_t> failing_seeds() const {
    std::vector<std::uint64_t> seeds;
    for (const auto& r : results) {
      if (!r.ok()) seeds.push_back(r.spec.seed);
    }
    return seeds;
  }
};

SweepResult sweep_seeds(const RunSpec& base, std::uint64_t first_seed,
                        int count, const SweepOptions& options = {});

}  // namespace cht::chaos
