#include "common/logging.h"

#include <cstdlib>
#include <cstring>

namespace cht {
namespace {

LogLevel initial_level() {
  const char* env = std::getenv("CHT_LOG_LEVEL");
  if (env == nullptr) return LogLevel::kOff;
  if (std::strcmp(env, "debug") == 0) return LogLevel::kDebug;
  if (std::strcmp(env, "info") == 0) return LogLevel::kInfo;
  if (std::strcmp(env, "warn") == 0) return LogLevel::kWarn;
  if (std::strcmp(env, "error") == 0) return LogLevel::kError;
  return LogLevel::kOff;
}

LogLevel g_level = initial_level();

}  // namespace

LogLevel log_level() { return g_level; }
void set_log_level(LogLevel level) { g_level = level; }

}  // namespace cht
