// Fixture: rule D2 — ambient randomness in protocol code.
#include <cstdlib>
#include <random>

namespace fixture {

int bad_c_rand() {
  srand(42);  // detlint-expect: D2
  return rand();  // detlint-expect: D2
}

unsigned bad_random_device() {
  std::random_device device;  // detlint-expect: D2
  return device();
}

unsigned bad_default_seeded_twister() {
  std::mt19937 engine;  // detlint-expect: D2
  return static_cast<unsigned>(engine());
}

unsigned bad_default_engine() {
  std::default_random_engine engine;  // detlint-expect: D2
  return static_cast<unsigned>(engine());
}

// Negative cases: the repo's deterministic Rng vocabulary.
struct Rng {
  explicit Rng(unsigned long seed) : state_(seed) {}
  unsigned long next_u64() { return state_ += 0x9e3779b97f4a7c15ULL; }
  unsigned long state_;
};

unsigned long good_seeded(unsigned long seed) {
  Rng rng(seed);
  // Words like "randomized timeout" in comments must not trip the rule.
  return rng.next_u64();
}

}  // namespace fixture
