#include "leader/enhanced_leader.h"

#include <algorithm>
#include <string>

#include "sim/storage.h"

namespace cht::leader {

namespace {
constexpr const char* kCounterKey = "els.counter";
// Smallest representable local-time advance — "strictly after" an instant
// on a clock that ticks in whole microseconds.
constexpr Duration kTickAfter = Duration::micros(1);
}  // namespace

void EnhancedLeaderService::start() { support_tick(); }

void EnhancedLeaderService::persist_counter() {
  host_.storage().write(kCounterKey, std::to_string(change_counter_));
}

void EnhancedLeaderService::recover() {
  if (const auto stored = host_.storage().read(kCounterKey)) {
    change_counter_ = std::stoll(*stored);
  }
  // Every pre-crash grant ended at most support_duration after the local
  // time of the crash, which is at most the local time now. Starting all new
  // grants strictly after now + support_duration keeps this process's
  // supports for distinct leaders disjoint across the restart.
  min_grant_start_ =
      host_.now_local() + config_.support_duration + kTickAfter;
  last_grant_end_ = LocalTime::min();
  support_tick();
}

void EnhancedLeaderService::support_tick() {
  const ProcessId current = leader_fn_();
  const LocalTime now = host_.now_local();

  bool counter_changed = false;
  if (current != supported_) {
    // Observed a leader change: bump the counter. Grants to the new leader
    // must start strictly after every interval we granted to the previous
    // one, so our supports for distinct leaders are disjoint (this is what
    // makes EL1 hold via majority intersection). Grants to the *same* leader
    // may freely overlap each other.
    ++change_counter_;
    persist_counter();
    counter_changed = true;
    supported_ = current;
    if (last_grant_end_ != LocalTime::min()) {
      min_grant_start_ = last_grant_end_ + kTickAfter;
    }
  }
  const LocalTime start = std::max(now, min_grant_start_);
  const LocalTime end = std::max(start, now + config_.support_duration);
  const SupportGrant grant{change_counter_, start, end};
  last_grant_end_ = std::max(last_grant_end_, end);

  const ProcessId target = supported_;
  if (counter_changed) {
    // No grant may carry a counter value that could be forgotten: the first
    // grant after a bump leaves only once the covering sync completes
    // (coalescing with whatever else is pending in the group-commit window).
    host_.request_sync([this, target, grant] { deliver_grant(target, grant); });
  } else {
    // Renewals reuse an already-durable counter and need no sync.
    deliver_grant(target, grant);
  }
  host_.schedule_after(config_.support_interval, [this] { support_tick(); });
}

void EnhancedLeaderService::deliver_grant(ProcessId target,
                                          const SupportGrant& grant) {
  if (target == host_.id()) {
    record_support(host_.id(), grant);  // self-support needs no message
  } else {
    host_.send(target, kSupportType, grant);
  }
}

bool EnhancedLeaderService::handle_message(const sim::Message& message) {
  if (!message.is(kSupportType)) return false;
  record_support(message.from, message.as<SupportGrant>());
  return true;
}

void EnhancedLeaderService::record_support(ProcessId from,
                                           const SupportGrant& grant) {
  SupporterRecord& record = supports_[from.index()];
  std::vector<Interval>& intervals = record[grant.counter];
  // Merge with the previous interval when overlapping or adjacent (the
  // common case: periodic renewal extends the current interval).
  if (!intervals.empty() && grant.start <= intervals.back().end &&
      grant.end >= intervals.back().start) {
    intervals.back().start = std::min(intervals.back().start, grant.start);
    intervals.back().end = std::max(intervals.back().end, grant.end);
  } else {
    intervals.push_back(Interval{grant.start, grant.end});
  }
  prune(record);
}

void EnhancedLeaderService::prune(SupporterRecord& record) {
  const LocalTime horizon = host_.now_local() - config_.history_horizon;
  for (auto it = record.begin(); it != record.end();) {
    auto& intervals = it->second;
    std::erase_if(intervals, [&](const Interval& iv) {
      return iv.end < horizon;
    });
    it = intervals.empty() ? record.erase(it) : std::next(it);
  }
}

bool EnhancedLeaderService::covers(const SupporterRecord& record, LocalTime t1,
                                   LocalTime t2) {
  for (const auto& [counter, intervals] : record) {
    const bool covers_t1 = std::any_of(
        intervals.begin(), intervals.end(),
        [&](const Interval& iv) { return iv.covers(t1); });
    if (!covers_t1) continue;
    const bool covers_t2 = std::any_of(
        intervals.begin(), intervals.end(),
        [&](const Interval& iv) { return iv.covers(t2); });
    if (covers_t2) return true;
  }
  return false;
}

bool EnhancedLeaderService::am_leader(LocalTime t1, LocalTime t2) {
  if (t1 > t2) return false;
  int supporters = 0;
  for (auto it = supports_.begin(); it != supports_.end();) {
    // Lazy horizon pruning: a supporter that went quiet still ages out.
    prune(it->second);
    if (it->second.empty()) {
      it = supports_.erase(it);
      continue;
    }
    if (covers(it->second, t1, t2)) ++supporters;
    ++it;
  }
  return supporters > host_.cluster_size() / 2;
}

}  // namespace cht::leader
