// Session-guarantee checks over operation histories.
//
// Linearizability of the full history implies every session guarantee, but
// the linearizability checker is exponential and may exhaust its budget on
// long chaos histories. The checks here are linear-time, decide always, and
// produce a much sharper explanation when they fire ("client pX read a
// value older than its own write") than a generic "no linearization order
// exists". They are sound — no false positives — but deliberately not
// complete: an undetected violation is left for the full checker.
#pragma once

#include <string>
#include <vector>

#include "checker/history.h"

namespace cht::checker {

// Read-your-writes for the KV object (operation kinds get/put/del/cas; any
// other kind is ignored). Clients are sequential, so within one client's
// session every completed write to a key strictly precedes every later read
// of that key. A completed get(k) by client C therefore must not return a
// value that can only have been installed *before* C's own last completed
// write to k. The decision is made on real-time windows: a foreign write S
// can legally be the read's source only if S might linearize after C's
// write (S did not respond before C's write was invoked) and before the
// read's response (S was invoked by then). If no such source exists for the
// returned value, C's write was skipped.
//
// Sound for histories whose written values identify their writer (the chaos
// workload writes run-unique values); duplicate values can only mask a
// violation, never invent one.
std::vector<std::string> check_read_your_writes(
    const std::vector<HistoryOp>& ops);

}  // namespace cht::checker
