// A shared counter.
//
// Operations:  value() -> n  (read);  add(k) -> new value  (RMW, returns the
// value after the addition, so it is a true read-modify-write);
// parity() -> "even"|"odd" (read; conflicts only with odd increments).
#pragma once

#include <cstdint>
#include <memory>
#include <string>

#include "object/object.h"

namespace cht::object {

class CounterState final : public ObjectState {
 public:
  std::unique_ptr<ObjectState> clone() const override {
    return std::make_unique<CounterState>(*this);
  }
  std::string fingerprint() const override { return std::to_string(count_); }

  std::int64_t count() const { return count_; }
  void add(std::int64_t k) { count_ += k; }

 private:
  std::int64_t count_ = 0;
};

class CounterObject final : public ObjectModel {
 public:
  std::string name() const override { return "counter"; }
  std::unique_ptr<ObjectState> make_initial_state() const override {
    return std::make_unique<CounterState>();
  }
  Response apply(ObjectState& state, const Operation& op) const override;
  bool is_read(const Operation& op) const override {
    return op.kind == "value" || op.kind == "parity";
  }
  bool conflicts(const Operation& read, const Operation& rmw) const override;

  static Operation value() { return {"value", ""}; }
  static Operation parity() { return {"parity", ""}; }
  static Operation add(std::int64_t k) { return {"add", std::to_string(k)}; }
};

}  // namespace cht::object
