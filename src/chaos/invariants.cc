#include "chaos/invariants.h"

#include <sstream>

#include "checker/linearizability.h"

namespace cht::chaos {

InvariantReport check_invariants(ClusterAdapter& cluster,
                                 const NemesisProfile& profile, bool quiesced,
                                 std::size_t check_budget) {
  InvariantReport report;
  std::vector<std::string>& violations = report.violations;

  // Liveness: with every fault healed, only a crashed submitter excuses a
  // pending operation.
  if (!quiesced) {
    for (const auto& op : cluster.history().ops()) {
      if (!op.completed() && !cluster.crashed(op.process.index())) {
        std::ostringstream os;
        os << "liveness: " << op.op << " submitted at live " << op.process
           << " never completed";
        violations.push_back(os.str());
      }
    }
  }

  // Linearizability. Clock skew beyond epsilon may legally yield stale
  // reads; the paper still guarantees the RMW sub-history.
  if (profile.allows_stale_reads) {
    const auto rmw = checker::check_rmw_subhistory_linearizable(
        cluster.model(), cluster.history().ops(), check_budget);
    if (!rmw.decided) {
      report.checker_decided = false;
    } else if (!rmw.linearizable) {
      violations.push_back("rmw sub-history not linearizable: " +
                           rmw.explanation);
    }
  } else {
    const auto full = checker::check_linearizable(
        cluster.model(), cluster.history().ops(), check_budget);
    if (!full.decided) {
      report.checker_decided = false;
    } else if (!full.linearizable) {
      violations.push_back("history not linearizable: " + full.explanation);
    }
  }

  for (auto& v : cluster.protocol_invariants()) {
    violations.push_back(std::move(v));
  }
  return report;
}

}  // namespace cht::chaos
