// Cluster knobs shared by every stack harness (chtread, Raft in both read
// modes, VR). Exactly one place derives a sim::SimulationConfig from them,
// so a new knob (or a changed derivation like delta_min) cannot drift
// between stacks. Stack harnesses embed this by inheritance
// (harness::ClusterConfig) and chaos::ClusterAdapter builds it from a
// RunSpec in a single helper (chaos/adapter.cc).
#pragma once

#include <algorithm>
#include <cstdint>

#include "common/time.h"
#include "sim/simulation.h"

namespace cht::harness {

struct CommonConfig {
  int n = 5;
  std::uint64_t seed = 1;
  Duration delta = Duration::millis(10);
  Duration epsilon = Duration::millis(1);
  // Real time at which the system stabilizes (0 = synchronous from start).
  RealTime gst = RealTime::zero();
  double pre_gst_loss = 0.05;
  Duration pre_gst_delay_max = Duration::millis(200);
  // Stable-storage model (fsync latency, crash-time loss, group commit).
  sim::StorageConfig storage;
  // Networked clients (src/client/). 0 = legacy colocated submission (ops
  // are injected directly at replica i); > 0 = the harness adds this many
  // client::Client processes after the replicas and routes every submitted
  // operation through one of them, so requests cross the simulated network
  // and retries/redirects/session dedup are on the path.
  int clients = 0;
  // Clock-health guard (core/clock_guard.h): when true, replicas detect
  // broken epsilon-synchrony from message stamps and degrade lease reads to
  // a clock-free path while suspect. Off reproduces the assume-synchrony
  // behaviour (and is what legacy repro artifacts replay with).
  bool clock_guard = true;

  sim::SimulationConfig to_sim_config() const {
    sim::SimulationConfig sc;
    sc.seed = seed;
    sc.epsilon = epsilon;
    sc.storage = storage;
    sc.network.gst = gst;
    sc.network.delta = delta;
    sc.network.delta_min = Duration::micros(
        std::max<std::int64_t>(1, delta.to_micros() / 20));
    sc.network.pre_gst_loss_probability = pre_gst_loss;
    sc.network.pre_gst_delay_max = pre_gst_delay_max;
    return sc;
  }
};

}  // namespace cht::harness
