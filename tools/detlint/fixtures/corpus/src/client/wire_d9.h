// Fixture: rule D9 — wire-message vocabulary for the dispatch-exhaustiveness
// checks in d9_dispatch.cc. A declared type nobody dispatches is flagged at
// its declaration; see the .cc for the arm-side cases.
#pragma once

namespace fixture::msg {

inline constexpr const char* kPing = "cl.ping";
inline constexpr const char* kPong = "cl.pong";
// Declared and sent, but no dispatch arm handles it: a receiver drops it on
// the floor.
inline constexpr const char* kLost = "cl.lost";  // detlint-expect: D9
// Declared and dispatched, but never sent — the arm is dead code; the
// finding lands on the arm in d9_dispatch.cc.
inline constexpr const char* kGhost = "cl.ghost";

}  // namespace fixture::msg
