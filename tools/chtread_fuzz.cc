// chtread_fuzz — parallel deterministic chaos fuzzer.
//
// Fans seed ranges across hardware threads; each seed is one independent
// deterministic simulation of a protocol stack under a nemesis profile, held
// to the full invariant registry (linearizability, liveness after heal,
// election safety / committed-prefix agreement, durability of acked writes
// across power cycles). Failing seeds dump self-contained repro artifacts
// that --repro replays bit-identically.
//
// Usage:
//   chtread_fuzz [--protocol=chtread|raft|raft-lease|vr|all]
//                [--profile=calm|rolling-partitions|leader-hunter|
//                 clock-storm|power-cycle|crash-loop|degraded-reads|all]
//                [--object=kv|counter|bank|queue|lock|all]
//                [--seeds=200] [--seed-start=1] [--threads=0 (auto)]
//                [--n=5] [--ops=80] [--read-fraction=0.5] [--key-skew=0.5]
//                [--delta-ms=10] [--epsilon-ms=1] [--gst-ms=1000]
//                [--loss=0.1] [--sync-latency-us=5000] [--key-loss=0.5]
//                [--group-commit=1] [--client-path=1] [--clock-guard=1]
//                [--max-inflight=6] [--check-budget=500000]
//                [--artifact-dir=.] [--metrics-out=PATH.json] [--verbose]
//   chtread_fuzz --repro=<artifact-file>
//
// --metrics-out writes the sweep summary plus, per protocol, a full
// observability capture (merged per-replica metric registries, span
// histograms, message counts) from one representative re-run of the first
// (profile, object) combination — schema cht.bench.v1, same as the benches.
//
// Exit status: 0 if every run passed (or a --repro replay reproduced its
// recorded fingerprint), 1 otherwise.
#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "chaos/adapter.h"
#include "chaos/nemesis.h"
#include "chaos/spec.h"
#include "chaos/sweep.h"
#include "common/experiment.h"
#include "metrics/table.h"

namespace {

using namespace cht;  // NOLINT: tool brevity

struct Options {
  chaos::RunSpec base;
  std::string protocol = "chtread";
  std::string profile = "rolling-partitions";
  std::string object = "kv";
  int seeds = 50;
  std::uint64_t seed_start = 1;
  int threads = 0;
  std::string artifact_dir = ".";
  std::string repro;
  std::string metrics_out;  // bench-artifact JSON path; empty = off
  bool verbose = false;
};

bool parse_flag(const std::string& arg, const std::string& name,
                std::string& out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (parse_flag(arg, "protocol", value)) {
      options.protocol = value;
    } else if (parse_flag(arg, "profile", value)) {
      options.profile = value;
    } else if (parse_flag(arg, "object", value)) {
      options.object = value;
    } else if (parse_flag(arg, "seeds", value)) {
      options.seeds = std::stoi(value);
    } else if (parse_flag(arg, "seed-start", value)) {
      options.seed_start = std::stoull(value);
    } else if (parse_flag(arg, "threads", value)) {
      options.threads = std::stoi(value);
    } else if (parse_flag(arg, "n", value)) {
      options.base.n = std::stoi(value);
    } else if (parse_flag(arg, "ops", value)) {
      options.base.ops = std::stoi(value);
    } else if (parse_flag(arg, "read-fraction", value)) {
      options.base.read_fraction = std::stod(value);
    } else if (parse_flag(arg, "key-skew", value)) {
      options.base.key_skew = std::stod(value);
    } else if (parse_flag(arg, "delta-ms", value)) {
      options.base.delta_ms = std::stoll(value);
    } else if (parse_flag(arg, "epsilon-ms", value)) {
      options.base.epsilon_ms = std::stoll(value);
    } else if (parse_flag(arg, "gst-ms", value)) {
      options.base.gst_ms = std::stoll(value);
    } else if (parse_flag(arg, "loss", value)) {
      options.base.pre_gst_loss = std::stod(value);
    } else if (parse_flag(arg, "sync-latency-us", value)) {
      options.base.sync_latency_us = std::stoll(value);
    } else if (parse_flag(arg, "key-loss", value)) {
      options.base.unsynced_key_loss = std::stod(value);
    } else if (parse_flag(arg, "group-commit", value)) {
      options.base.group_commit = std::stoi(value) != 0;
    } else if (parse_flag(arg, "client-path", value)) {
      options.base.client_path = std::stoi(value) != 0;
    } else if (parse_flag(arg, "clock-guard", value)) {
      options.base.clock_guard = std::stoi(value) != 0;
    } else if (parse_flag(arg, "max-inflight", value)) {
      options.base.max_inflight = std::stoi(value);
    } else if (parse_flag(arg, "check-budget", value)) {
      options.base.check_budget = std::stoll(value);
    } else if (parse_flag(arg, "artifact-dir", value)) {
      options.artifact_dir = value;
    } else if (parse_flag(arg, "repro", value)) {
      options.repro = value;
    } else if (parse_flag(arg, "metrics-out", value)) {
      options.metrics_out = value;
    } else if (arg == "--verbose") {
      options.verbose = true;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "see the usage comment at the top of tools/chtread_fuzz.cc\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(2);
    }
  }
  // Validate names up front so a typo gets a usage error, not an assert
  // from deep inside adapter construction (and a vacuous --seeds=0 sweep
  // cannot report "all runs passed").
  const auto check_name = [](const std::string& flag, const std::string& value,
                             const std::vector<std::string>& known) {
    if (value == "all") return;
    for (const auto& k : known) {
      if (value == k) return;
    }
    std::cerr << "unknown --" << flag << "=" << value << " (known:";
    for (const auto& k : known) std::cerr << " " << k;
    std::cerr << " all)\n";
    std::exit(2);
  };
  if (options.repro.empty()) {
    check_name("protocol", options.protocol, chaos::known_protocols());
    check_name("profile", options.profile, chaos::known_profiles());
    check_name("object", options.object, chaos::known_objects());
    if (options.seeds < 1) {
      std::cerr << "--seeds must be >= 1 (got " << options.seeds << ")\n";
      std::exit(2);
    }
  }
  return options;
}

int replay(const std::string& path) {
  const auto artifact = chaos::load_artifact(path);
  if (!artifact) {
    std::cerr << "cannot read repro artifact: " << path << "\n";
    return 2;
  }
  std::cout << "replaying " << path << " (protocol=" << artifact->spec.protocol
            << " profile=" << artifact->spec.profile
            << " object=" << artifact->spec.object
            << " seed=" << artifact->spec.seed << ")\n";
  const chaos::RunResult result = chaos::run_one(artifact->spec);
  std::cout << "verdict: " << (result.ok() ? "PASS" : "FAIL") << "\n";
  for (const auto& v : result.violations) std::cout << "  violation: " << v << "\n";
  const bool identical = result.fingerprint == artifact->fingerprint;
  std::cout << "fingerprint: " << result.fingerprint
            << (identical ? "  (bit-identical to artifact)"
                          : "  (DIFFERS from artifact " + artifact->fingerprint +
                                ")")
            << "\n";
  return identical ? 0 : 1;
}

std::vector<std::string> expand(const std::string& value,
                                const std::vector<std::string>& all) {
  if (value == "all") return all;
  return {value};
}

// Captures observability out of a run_one() adapter at teardown: run_one
// owns and destroys the adapter, so the destructor is the last point where
// the replicas (and their metric registries) still exist. Pure observer —
// every protocol-visible call forwards unchanged, so the decorated run's
// fingerprint is identical to an undecorated one.
class CapturingAdapter final : public chaos::ForwardingAdapter {
 public:
  struct Capture {
    metrics::Registry merged;
    sim::MessageStats messages;
    metrics::LatencyRecorder reads;
    metrics::LatencyRecorder rmws;
  };

  CapturingAdapter(std::unique_ptr<chaos::ClusterAdapter> inner, Capture& out)
      : ForwardingAdapter(std::move(inner)), out_(out) {}
  ~CapturingAdapter() override {
    inner().merge_metrics_into(out_.merged);
    out_.messages = inner().sim().network().stats();
    for (const auto& op : inner().history().ops()) {
      if (!op.completed()) continue;
      (inner().model().is_read(op.op) ? out_.reads : out_.rmws)
          .record(op.latency());
    }
  }

 private:
  Capture& out_;
};

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);
  if (!options.repro.empty()) return replay(options.repro);

  const auto protocols = expand(options.protocol, chaos::known_protocols());
  const auto profiles = expand(options.profile, chaos::known_profiles());
  const auto objects = expand(options.object, chaos::known_objects());

  cht::bench::ExperimentResult result("fuzz", options.metrics_out,
                                      /*smoke=*/false);
  result.begin("chtread_fuzz seed sweep",
               "seeds=" + std::to_string(options.seeds) +
                   " start=" + std::to_string(options.seed_start) +
                   " n=" + std::to_string(options.base.n) +
                   " ops=" + std::to_string(options.base.ops));
  result.columns({"protocol", "profile", "object", "seeds", "failed",
                  "undecided", "leader changes", "crashes", "restarts"});
  int total_failures = 0;
  int total_undecided = 0;
  std::vector<std::string> artifacts;
  for (const auto& protocol : protocols) {
    for (const auto& profile : profiles) {
      for (const auto& object : objects) {
        chaos::RunSpec base = options.base;
        base.protocol = protocol;
        base.profile = profile;
        base.object = object;
        chaos::SweepOptions sweep_options;
        sweep_options.threads = options.threads;
        sweep_options.artifact_dir = options.artifact_dir;
        if (options.verbose) {
          sweep_options.on_result = [](const chaos::RunResult& r) {
            std::cout << "  seed " << r.spec.seed << ": "
                      << (r.ok() ? "ok" : "FAIL") << "  ops "
                      << r.completed << "/" << r.submitted << "  leaders "
                      << r.leadership_changes << "  fp " << r.fingerprint
                      << "\n";
          };
        }
        const chaos::SweepResult sweep = chaos::sweep_seeds(
            base, options.seed_start, options.seeds, sweep_options);
        std::int64_t leaders = 0;
        int crashes = 0;
        int restarts = 0;
        for (const auto& r : sweep.results) {
          leaders += r.leadership_changes;
          crashes += r.crashes;
          restarts += r.restarts;
        }
        result.row({protocol, profile, object,
                    metrics::Table::num(std::int64_t{options.seeds}),
                    metrics::Table::num(std::int64_t{sweep.failures()}),
                    metrics::Table::num(std::int64_t{sweep.undecided()}),
                    metrics::Table::num(leaders),
                    metrics::Table::num(std::int64_t{crashes}),
                    metrics::Table::num(std::int64_t{restarts})});
        total_failures += sweep.failures();
        total_undecided += sweep.undecided();
        for (const auto& path : sweep.artifacts) artifacts.push_back(path);
        for (const auto seed : sweep.failing_seeds()) {
          std::cout << "FAIL protocol=" << protocol << " profile=" << profile
                    << " object=" << object << " seed=" << seed << "\n";
        }
      }
    }
  }
  result.end();
  for (const auto& path : artifacts) {
    std::cout << "repro artifact: " << path << "\n";
  }
  if (total_undecided > 0) {
    std::cout << total_undecided
              << " runs undecided (checker state budget exhausted; rerun with "
                 "a larger --check-budget or smaller --max-inflight)\n";
  }
  std::cout << (total_failures == 0 ? "all runs passed"
                                    : std::to_string(total_failures) +
                                          " runs FAILED")
            << "\n";

  int exit_code = total_failures == 0 ? 0 : 1;
  if (!options.metrics_out.empty()) {
    result.metric("total_failures", std::int64_t{total_failures});
    result.metric("total_undecided", std::int64_t{total_undecided});
    // One representative re-run per protocol (first profile/object combo)
    // to capture merged registries, span histograms and message counts.
    for (const auto& protocol : protocols) {
      chaos::RunSpec spec = options.base;
      spec.protocol = protocol;
      spec.profile = profiles.front();
      spec.object = objects.front();
      spec.seed = options.seed_start;
      CapturingAdapter::Capture capture;
      chaos::run_one(spec, [&](std::unique_ptr<chaos::ClusterAdapter> inner) {
        return std::make_unique<CapturingAdapter>(std::move(inner), capture);
      });
      result.observe_registry(protocol, capture.merged, capture.messages);
      result.latency(protocol + "-reads", capture.reads);
      result.latency(protocol + "-rmws", capture.rmws);
    }
    const int finish_code = result.finish();
    if (exit_code == 0) exit_code = finish_code;
  }
  return exit_code;
}
