// Linearizability checker: accepts valid histories, rejects classic
// violations, handles pending and concurrent operations.
#include "checker/linearizability.h"

#include <gtest/gtest.h>

#include "checker/sessions.h"
#include "object/bank_object.h"
#include "object/counter_object.h"
#include "object/kv_object.h"
#include "object/register_object.h"

namespace cht::checker {
namespace {

using object::BankObject;
using object::CounterObject;
using object::RegisterObject;

RealTime rt(std::int64_t us) { return RealTime::zero() + Duration::micros(us); }

HistoryOp op(int proc, object::Operation operation, std::int64_t invoke_us,
             std::int64_t respond_us, std::string response) {
  HistoryOp h;
  h.process = ProcessId(proc);
  h.op = std::move(operation);
  h.invoked = rt(invoke_us);
  h.responded = rt(respond_us);
  h.response = std::move(response);
  return h;
}

HistoryOp pending(int proc, object::Operation operation,
                  std::int64_t invoke_us) {
  HistoryOp h;
  h.process = ProcessId(proc);
  h.op = std::move(operation);
  h.invoked = rt(invoke_us);
  return h;
}

TEST(CheckerTest, EmptyHistoryIsLinearizable) {
  RegisterObject model;
  EXPECT_TRUE(check_linearizable(model, {}).linearizable);
}

TEST(CheckerTest, SequentialHistoryAccepted) {
  RegisterObject model("0");
  std::vector<HistoryOp> h{
      op(0, RegisterObject::read(), 0, 10, "0"),
      op(0, RegisterObject::write("1"), 20, 30, "ok"),
      op(1, RegisterObject::read(), 40, 50, "1"),
  };
  EXPECT_TRUE(check_linearizable(model, h).linearizable);
}

TEST(CheckerTest, StaleReadRejected) {
  RegisterObject model("0");
  std::vector<HistoryOp> h{
      op(0, RegisterObject::write("1"), 0, 10, "ok"),
      op(1, RegisterObject::read(), 20, 30, "0"),  // stale: write completed
  };
  const auto result = check_linearizable(model, h);
  EXPECT_FALSE(result.linearizable);
  EXPECT_FALSE(result.explanation.empty());
}

TEST(CheckerTest, ConcurrentReadMayGoEitherWay) {
  RegisterObject model("0");
  // Read overlaps the write: both old and new value are linearizable.
  for (const char* value : {"0", "1"}) {
    std::vector<HistoryOp> h{
        op(0, RegisterObject::write("1"), 0, 100, "ok"),
        op(1, RegisterObject::read(), 50, 60, value),
    };
    EXPECT_TRUE(check_linearizable(model, h).linearizable) << value;
  }
}

TEST(CheckerTest, ReadNewThenOldRejected) {
  RegisterObject model("0");
  // Second read starts after the first finished; values went 1 -> 0 with no
  // intervening write: not linearizable.
  std::vector<HistoryOp> h{
      op(0, RegisterObject::write("1"), 0, 200, "ok"),
      op(1, RegisterObject::read(), 50, 60, "1"),
      op(1, RegisterObject::read(), 70, 80, "0"),
  };
  EXPECT_FALSE(check_linearizable(model, h).linearizable);
}

TEST(CheckerTest, LostUpdateRejected) {
  CounterObject model;
  // Two adds both claim to have observed only themselves.
  std::vector<HistoryOp> h{
      op(0, CounterObject::add(1), 0, 10, "1"),
      op(1, CounterObject::add(1), 20, 30, "1"),  // must have been "2"
  };
  EXPECT_FALSE(check_linearizable(model, h).linearizable);
}

TEST(CheckerTest, RmwResponsesOrderTheHistory) {
  CounterObject model;
  // Responses determine the only valid order: p1's add saw 1 first.
  std::vector<HistoryOp> h{
      op(0, CounterObject::add(1), 0, 100, "2"),
      op(1, CounterObject::add(1), 0, 100, "1"),
      op(2, CounterObject::value(), 150, 160, "2"),
  };
  const auto result = check_linearizable(model, h);
  ASSERT_TRUE(result.linearizable);
  EXPECT_EQ(result.order.size(), 3u);
}

TEST(CheckerTest, PendingOpMayTakeEffect) {
  RegisterObject model("0");
  // The write never returned, but a later read observed it: allowed.
  std::vector<HistoryOp> h{
      pending(0, RegisterObject::write("1"), 0),
      op(1, RegisterObject::read(), 50, 60, "1"),
  };
  EXPECT_TRUE(check_linearizable(model, h).linearizable);
}

TEST(CheckerTest, PendingOpMayNeverTakeEffect) {
  RegisterObject model("0");
  std::vector<HistoryOp> h{
      pending(0, RegisterObject::write("1"), 0),
      op(1, RegisterObject::read(), 50, 60, "0"),
  };
  EXPECT_TRUE(check_linearizable(model, h).linearizable);
}

TEST(CheckerTest, PendingOpCannotTakeEffectBeforeInvocation) {
  RegisterObject model("0");
  // The read *completed before* the write was even invoked.
  std::vector<HistoryOp> h{
      op(1, RegisterObject::read(), 0, 10, "1"),
      pending(0, RegisterObject::write("1"), 50),
  };
  EXPECT_FALSE(check_linearizable(model, h).linearizable);
}

TEST(CheckerTest, RmwSubhistoryFilterIgnoresReads) {
  RegisterObject model("0");
  // Full history has a stale read; the RMW sub-history is fine. This mirrors
  // the paper's clock-desync robustness claim.
  std::vector<HistoryOp> h{
      op(0, RegisterObject::write("1"), 0, 10, "ok"),
      op(1, RegisterObject::read(), 20, 30, "0"),  // stale
      op(0, RegisterObject::write("2"), 40, 50, "ok"),
  };
  EXPECT_FALSE(check_linearizable(model, h).linearizable);
  EXPECT_TRUE(check_rmw_subhistory_linearizable(model, h).linearizable);
}

TEST(CheckerTest, DeepConcurrencyStillDecided) {
  RegisterObject model("0");
  // Five fully concurrent writes and a read that saw one of them.
  std::vector<HistoryOp> h;
  for (int i = 0; i < 5; ++i) {
    h.push_back(op(i, RegisterObject::write(std::to_string(i)), 0, 100, "ok"));
  }
  h.push_back(op(5, RegisterObject::read(), 200, 210, "3"));
  EXPECT_TRUE(check_linearizable(model, h).linearizable);
  // ...but seeing a value nobody wrote is rejected.
  h.back() = op(5, RegisterObject::read(), 200, 210, "9");
  EXPECT_FALSE(check_linearizable(model, h).linearizable);
}

TEST(CheckerTest, CrossAccountPhantomRejected) {
  BankObject model;
  // A completed transfer moved 50 from a to b, yet sequential reads *after*
  // it observe the credit on b without the debit on a — a state no single
  // linearization point produces. Transfers span accounts, so bank histories
  // containing them are unpartitionable and must be caught whole.
  std::vector<HistoryOp> h{
      op(0, BankObject::deposit("a", 100), 0, 10, "100"),
      op(0, BankObject::transfer("a", "b", 50), 20, 30, "ok"),
      op(1, BankObject::balance("b"), 40, 50, "50"),
      op(1, BankObject::balance("a"), 60, 70, "100"),  // debit went missing
  };
  EXPECT_FALSE(check_linearizable(model, h).linearizable);
  // With the debit observed, the same history is fine.
  h.back() = op(1, BankObject::balance("a"), 60, 70, "50");
  EXPECT_TRUE(check_linearizable(model, h).linearizable);
}

TEST(CheckerTest, TotalObservesConservationAcrossTransfers) {
  BankObject model;
  // total() conflicts with deposits but commutes with transfers: any value
  // other than the deposited sum is rejected no matter how the concurrent
  // transfer is placed.
  std::vector<HistoryOp> h{
      op(0, BankObject::deposit("a", 100), 0, 10, "100"),
      op(0, BankObject::transfer("a", "b", 30), 20, 200, "ok"),
      op(1, BankObject::total(), 50, 60, "70"),  // transfers conserve money
  };
  EXPECT_FALSE(check_linearizable(model, h).linearizable);
  h.back() = op(1, BankObject::total(), 50, 60, "100");
  EXPECT_TRUE(check_linearizable(model, h).linearizable);
}

TEST(CheckerTest, StateBudgetYieldsUndecidedNotVerdict) {
  RegisterObject model("0");
  // Wide concurrency with an absurdly small budget: the search must give up
  // explicitly (decided == false) rather than hang or claim a verdict.
  std::vector<HistoryOp> h;
  for (int i = 0; i < 12; ++i) {
    h.push_back(op(i, RegisterObject::write(std::to_string(i)), 0, 100, "ok"));
  }
  h.push_back(op(12, RegisterObject::read(), 200, 210, "7"));
  const auto bounded = check_linearizable(model, h, /*max_states=*/3);
  EXPECT_FALSE(bounded.decided);
  EXPECT_FALSE(bounded.linearizable);
  // The same history resolves cleanly without the budget.
  const auto unbounded = check_linearizable(model, h);
  EXPECT_TRUE(unbounded.decided);
  EXPECT_TRUE(unbounded.linearizable);
}

TEST(CheckerTest, LongSequentialHistoryFast) {
  CounterObject model;
  std::vector<HistoryOp> h;
  std::int64_t t = 0;
  for (int i = 1; i <= 5000; ++i) {
    h.push_back(op(0, CounterObject::add(1), t, t + 5, std::to_string(i)));
    t += 10;
  }
  EXPECT_TRUE(check_linearizable(model, h).linearizable);
}

// --- Read-your-writes session guarantee (checker/sessions.h) ----------------

using object::KVObject;

TEST(ReadYourWritesTest, ReadMissingOwnWriteIsFlagged) {
  // The negative case the invariant exists for: the client's put was
  // acknowledged, yet its own later read returns the initial "".
  std::vector<HistoryOp> h{
      op(0, KVObject::put("k", "v1"), 0, 10, "ok"),
      op(0, KVObject::get("k"), 20, 30, ""),
  };
  const auto violations = check_read_your_writes(h);
  ASSERT_EQ(violations.size(), 1u);
  EXPECT_NE(violations[0].find("read-your-writes"), std::string::npos);
  EXPECT_NE(violations[0].find("put(k:v1)"), std::string::npos);
}

TEST(ReadYourWritesTest, ReadOfValueOlderThanOwnWriteIsFlagged) {
  // Another client's write that finished before ours even started cannot
  // linearize after ours — reading it back means our write was skipped.
  std::vector<HistoryOp> h{
      op(1, KVObject::put("k", "old"), 0, 10, "ok"),
      op(0, KVObject::put("k", "new"), 20, 30, "ok"),
      op(0, KVObject::get("k"), 40, 50, "old"),
  };
  EXPECT_EQ(check_read_your_writes(h).size(), 1u);
}

TEST(ReadYourWritesTest, OwnValueAndNewerForeignValueAccepted) {
  std::vector<HistoryOp> h{
      op(0, KVObject::put("k", "mine"), 0, 10, "ok"),
      op(0, KVObject::get("k"), 20, 30, "mine"),
      // A foreign write invoked after ours may linearize between our write
      // and our second read.
      op(1, KVObject::put("k", "theirs"), 35, 45, "ok"),
      op(0, KVObject::get("k"), 50, 60, "theirs"),
  };
  EXPECT_TRUE(check_read_your_writes(h).empty());
}

TEST(ReadYourWritesTest, ConcurrentForeignWriteJustifiesEitherValue) {
  // The foreign write overlaps the client's own, so either order is legal.
  for (const char* value : {"mine", "theirs"}) {
    std::vector<HistoryOp> h{
        op(1, KVObject::put("k", "theirs"), 0, 100, "ok"),
        op(0, KVObject::put("k", "mine"), 50, 60, "ok"),
        op(0, KVObject::get("k"), 70, 80, value),
    };
    EXPECT_TRUE(check_read_your_writes(h).empty()) << value;
  }
}

TEST(ReadYourWritesTest, PendingDeleteJustifiesEmptyRead) {
  // A delete pending at the end of the run may have applied between the
  // client's write and its read, so "" is not (provably) a violation.
  std::vector<HistoryOp> h{
      op(0, KVObject::put("k", "v1"), 0, 10, "ok"),
      pending(1, KVObject::del("k"), 15),
      op(0, KVObject::get("k"), 20, 30, ""),
  };
  EXPECT_TRUE(check_read_your_writes(h).empty());
}

TEST(ReadYourWritesTest, OwnDeleteObligesEmptyRead) {
  std::vector<HistoryOp> h{
      op(0, KVObject::put("k", "v1"), 0, 10, "ok"),
      op(0, KVObject::del("k"), 20, 30, "ok"),
      op(0, KVObject::get("k"), 40, 50, "v1"),  // resurrected: violation
  };
  EXPECT_EQ(check_read_your_writes(h).size(), 1u);
}

TEST(ReadYourWritesTest, FailedCasCreatesNoObligation) {
  std::vector<HistoryOp> h{
      op(1, KVObject::put("k", "base"), 0, 10, "ok"),
      op(0, KVObject::cas("k", "wrong", "swapped"), 20, 30, "fail"),
      op(0, KVObject::get("k"), 40, 50, "base"),
  };
  EXPECT_TRUE(check_read_your_writes(h).empty());
}

TEST(ReadYourWritesTest, SuccessfulCasObligesItsDesiredValue) {
  std::vector<HistoryOp> h{
      op(0, KVObject::put("k", "base"), 0, 10, "ok"),
      op(0, KVObject::cas("k", "base", "swapped"), 20, 30, "ok"),
      op(0, KVObject::get("k"), 40, 50, "base"),  // pre-cas value: violation
  };
  EXPECT_EQ(check_read_your_writes(h).size(), 1u);
}

TEST(ReadYourWritesTest, UnacknowledgedOwnWriteCreatesNoObligation) {
  // The client was never told the put succeeded, so reading "" is legal.
  std::vector<HistoryOp> h{
      pending(0, KVObject::put("k", "v1"), 0),
      op(0, KVObject::get("k"), 20, 30, ""),
  };
  EXPECT_TRUE(check_read_your_writes(h).empty());
}

TEST(ReadYourWritesTest, OtherClientsSessionsAreIndependent) {
  // Client 1 never wrote k; reading the initial "" is fine for it even
  // though client 0's write completed long before.
  std::vector<HistoryOp> h{
      op(0, KVObject::put("k", "v1"), 0, 10, "ok"),
      op(1, KVObject::get("k"), 20, 30, ""),  // stale but not a RYW breach
  };
  EXPECT_TRUE(check_read_your_writes(h).empty());
}

}  // namespace
}  // namespace cht::checker
