// Fixture: the one file allowed to touch OS time sources (rule D1
// allowlists src/common/time.h). Everything here is a negative case.
#pragma once
#include <ctime>

namespace fixture {

inline long monotonic_micros() {
  struct timespec ts;
  clock_gettime(0, &ts);
  return ts.tv_sec * 1000000L + ts.tv_nsec / 1000L;
}

inline long wall_seconds() { return static_cast<long>(time(nullptr)); }

}  // namespace fixture
