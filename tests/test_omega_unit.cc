// White-box Omega failure detector tests: suspicion timing, smallest-id
// rule, self-aliveness, recovery of belief when heartbeats resume.
#include <gtest/gtest.h>

#include <memory>

#include "leader/omega.h"
#include "sim/simulation.h"

namespace cht {
namespace {

using leader::OmegaConfig;
using leader::OmegaDetector;

class OmegaHost : public sim::Process {
 public:
  explicit OmegaHost(OmegaConfig config) : omega_(*this, config) {}
  void on_start() override { omega_.start(); }
  void on_message(const sim::Message& message) override {
    omega_.handle_message(message);
  }
  OmegaDetector& omega() { return omega_; }

 private:
  OmegaDetector omega_;
};

class Quiet : public sim::Process {
 public:
  void on_message(const sim::Message&) override {}
};

class OmegaUnitTest : public ::testing::Test {
 protected:
  OmegaUnitTest() : sim_(make_config()) {
    OmegaConfig config;
    config.heartbeat_interval = Duration::millis(5);
    config.timeout = Duration::millis(25);
    // Host is process 2 (so ids 0 and 1 are both "smaller").
    sim_.add_process(std::make_unique<Quiet>());
    sim_.add_process(std::make_unique<Quiet>());
    sim_.add_process(std::make_unique<OmegaHost>(config));
    sim_.start();
  }
  static sim::SimulationConfig make_config() {
    sim::SimulationConfig c;
    c.seed = 2;
    c.network.gst = RealTime::zero();
    c.network.delta = Duration::millis(2);
    c.network.delta_min = Duration::millis(1);
    return c;
  }
  OmegaHost& host() { return sim_.process_as<OmegaHost>(ProcessId(2)); }
  void heartbeat_from(int i) {
    sim_.process(ProcessId(i)).send(ProcessId(2),
                                    OmegaDetector::kHeartbeatType, 0);
  }
  void run(Duration d) { sim_.run_until(sim_.now() + d); }
  sim::Simulation sim_;
};

TEST_F(OmegaUnitTest, SelfIsLeaderWhenNoHeartbeats) {
  run(Duration::millis(50));
  EXPECT_EQ(host().omega().leader(), ProcessId(2));
}

TEST_F(OmegaUnitTest, SmallestRecentlyHeardIdWins) {
  heartbeat_from(1);
  run(Duration::millis(5));
  EXPECT_EQ(host().omega().leader(), ProcessId(1));
  heartbeat_from(0);
  run(Duration::millis(5));
  EXPECT_EQ(host().omega().leader(), ProcessId(0));
}

TEST_F(OmegaUnitTest, SuspicionAfterTimeout) {
  heartbeat_from(0);
  run(Duration::millis(5));
  EXPECT_EQ(host().omega().leader(), ProcessId(0));
  // No further heartbeats: after the timeout, p0 is suspected and the
  // belief falls back to self (p1 never sent anything).
  run(Duration::millis(30));
  EXPECT_EQ(host().omega().leader(), ProcessId(2));
}

TEST_F(OmegaUnitTest, BeliefRecoversWhenHeartbeatsResume) {
  heartbeat_from(0);
  run(Duration::millis(40));  // suspected by now
  EXPECT_EQ(host().omega().leader(), ProcessId(2));
  heartbeat_from(0);
  run(Duration::millis(5));
  EXPECT_EQ(host().omega().leader(), ProcessId(0));
}

TEST_F(OmegaUnitTest, FallsBackToNextSmallest) {
  heartbeat_from(0);
  heartbeat_from(1);
  run(Duration::millis(5));
  EXPECT_EQ(host().omega().leader(), ProcessId(0));
  // Keep p1 alive while p0 goes quiet.
  for (int i = 0; i < 8; ++i) {
    heartbeat_from(1);
    run(Duration::millis(5));
  }
  EXPECT_EQ(host().omega().leader(), ProcessId(1));
}

TEST_F(OmegaUnitTest, HostEmitsPeriodicHeartbeats) {
  run(Duration::millis(23));
  // The host broadcasts to both peers every 5 ms: >= 4 rounds by now.
  EXPECT_GE(sim_.network().stats().sent_of(OmegaDetector::kHeartbeatType), 8);
}

}  // namespace
}  // namespace cht
