// Always-on invariant checks.
//
// These checks guard protocol invariants (I1-I3, EL1, ...) whose violation
// means a bug in the implementation, not a recoverable condition; we abort
// with a message rather than throw so the failing simulation state is
// preserved for a debugger.
#pragma once

#include <cstdio>
#include <cstdlib>

namespace cht::detail {

[[noreturn]] inline void assert_fail(const char* expr, const char* msg,
                                     const char* file, int line) {
  std::fprintf(stderr, "CHT_ASSERT failed: %s (%s) at %s:%d\n", expr, msg,
               file, line);
  std::abort();
}

}  // namespace cht::detail

#define CHT_ASSERT(expr, msg)                                         \
  do {                                                                \
    if (!(expr)) [[unlikely]] {                                       \
      ::cht::detail::assert_fail(#expr, (msg), __FILE__, __LINE__);   \
    }                                                                 \
  } while (false)

#define CHT_UNREACHABLE(msg) \
  ::cht::detail::assert_fail("unreachable", (msg), __FILE__, __LINE__)
