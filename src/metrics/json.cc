#include "metrics/json.h"

#include <cassert>
#include <cmath>
#include <cstdio>
#include <ostream>
#include <sstream>

namespace cht::metrics {
namespace json {

Value& Value::push(Value element) {
  assert(kind_ == Kind::kArray);
  elements_.push_back(std::move(element));
  return *this;
}

Value& Value::set(std::string key, Value value) {
  assert(kind_ == Kind::kObject);
  for (auto& [k, v] : fields_) {
    if (k == key) {
      v = std::move(value);
      return *this;
    }
  }
  fields_.emplace_back(std::move(key), std::move(value));
  return *this;
}

const Value* Value::find(const std::string& key) const {
  if (kind_ != Kind::kObject) return nullptr;
  for (const auto& [k, v] : fields_) {
    if (k == key) return &v;
  }
  return nullptr;
}

std::size_t Value::size() const {
  switch (kind_) {
    case Kind::kArray:
      return elements_.size();
    case Kind::kObject:
      return fields_.size();
    default:
      return 0;
  }
}

std::string escape(const std::string& s) {
  std::string out;
  out.reserve(s.size() + 2);
  for (const char c : s) {
    switch (c) {
      case '"':
        out += "\\\"";
        break;
      case '\\':
        out += "\\\\";
        break;
      case '\n':
        out += "\\n";
        break;
      case '\t':
        out += "\\t";
        break;
      case '\r':
        out += "\\r";
        break;
      default:
        if (static_cast<unsigned char>(c) < 0x20) {
          char buf[8];
          std::snprintf(buf, sizeof(buf), "\\u%04x", c);
          out += buf;
        } else {
          out += c;
        }
    }
  }
  return out;
}

namespace {

void write_indent(std::ostream& out, int indent, int depth) {
  if (indent <= 0) return;
  out << '\n';
  for (int i = 0; i < indent * depth; ++i) out << ' ';
}

void write_double(std::ostream& out, double d) {
  if (!std::isfinite(d)) {
    out << "null";  // JSON has no NaN/Inf; null keeps parsers happy.
    return;
  }
  if (d == static_cast<double>(static_cast<std::int64_t>(d)) &&
      std::abs(d) < 1e15) {
    out << static_cast<std::int64_t>(d) << ".0";
    return;
  }
  std::ostringstream tmp;
  tmp.precision(12);
  tmp << d;
  out << tmp.str();
}

}  // namespace

void Value::write(std::ostream& out, int indent, int depth) const {
  switch (kind_) {
    case Kind::kNull:
      out << "null";
      break;
    case Kind::kBool:
      out << (bool_ ? "true" : "false");
      break;
    case Kind::kInt:
      out << int_;
      break;
    case Kind::kDouble:
      write_double(out, double_);
      break;
    case Kind::kString:
      out << '"' << escape(string_) << '"';
      break;
    case Kind::kArray: {
      if (elements_.empty()) {
        out << "[]";
        break;
      }
      out << '[';
      bool first = true;
      for (const auto& element : elements_) {
        if (!first) out << ',';
        first = false;
        write_indent(out, indent, depth + 1);
        element.write(out, indent, depth + 1);
      }
      write_indent(out, indent, depth);
      out << ']';
      break;
    }
    case Kind::kObject: {
      if (fields_.empty()) {
        out << "{}";
        break;
      }
      out << '{';
      bool first = true;
      for (const auto& [key, value] : fields_) {
        if (!first) out << ',';
        first = false;
        write_indent(out, indent, depth + 1);
        out << '"' << escape(key) << "\": ";
        value.write(out, indent, depth + 1);
      }
      write_indent(out, indent, depth);
      out << '}';
      break;
    }
  }
}

std::string Value::dump(int indent) const {
  std::ostringstream out;
  write(out, indent, 0);
  return out.str();
}

}  // namespace json

json::Value histogram_to_json(const Histogram& histogram) {
  auto value = json::Value::object();
  value.set("count", histogram.count());
  value.set("sum", histogram.sum());
  value.set("min", histogram.min());
  value.set("max", histogram.max());
  value.set("mean", histogram.mean());
  value.set("p50", histogram.p50());
  value.set("p99", histogram.p99());
  auto buckets = json::Value::array();
  for (int b = 0; b < Histogram::kBuckets; ++b) {
    const std::int64_t n = histogram.buckets()[static_cast<std::size_t>(b)];
    if (n == 0) continue;
    buckets.push(
        json::Value::array().push(Histogram::bucket_lower(b)).push(n));
  }
  value.set("buckets", std::move(buckets));
  return value;
}

json::Value registry_to_json(const Registry& registry) {
  auto value = json::Value::object();
  auto counters = json::Value::object();
  registry.for_each_counter(
      [&](const Counter& c) { counters.set(c.name(), c.value()); });
  value.set("counters", std::move(counters));
  auto gauges = json::Value::object();
  registry.for_each_gauge(
      [&](const Gauge& g) { gauges.set(g.name(), g.value()); });
  value.set("gauges", std::move(gauges));
  auto histograms = json::Value::object();
  registry.for_each_histogram([&](const Histogram& h) {
    histograms.set(h.name(), histogram_to_json(h));
  });
  value.set("histograms", std::move(histograms));
  return value;
}

}  // namespace cht::metrics
