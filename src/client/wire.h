// Client <-> replica wire protocol.
//
// Clients are simulated processes that reach replicas over the network
// instead of calling into them in-process. The protocol is three message
// types:
//
//   ClientRequest — an operation keyed by the client's OperationId
//     {client process, session sequence number}. RMW sequence numbers are
//     strictly monotonic per client and the client never has more than one
//     RMW outstanding, so a replica-side session table of one entry per
//     client suffices for exactly-once semantics. `leader_only` marks the
//     escalated form of a read: serve only if you are (or believe you are)
//     the leader, otherwise Redirect.
//
//   ClientReply — the response, keyed by the same id. Clients match replies
//     against their current in-flight id and drop anything stale, so
//     duplicated or late replies (an op retried at two replicas is answered
//     by both) are harmless.
//
//   Redirect — "not me; try leader_hint". -1 means the replica has no
//     current belief; the client falls back to deterministic rotation.
#pragma once

#include <string>

#include "common/types.h"
#include "object/object.h"

namespace cht::client {
namespace msg {

inline constexpr const char* kRequest = "client.request";
inline constexpr const char* kReply = "client.reply";
inline constexpr const char* kRedirect = "client.redirect";

struct ClientRequest {
  OperationId id;
  object::Operation op;
  bool is_read = false;
  bool leader_only = false;
};

struct ClientReply {
  OperationId id;
  std::string response;
};

struct Redirect {
  OperationId id;
  int leader_hint = -1;
};

}  // namespace msg
}  // namespace cht::client
