#include "metrics/registry.h"

namespace cht::metrics {

std::int64_t Histogram::percentile(double q) const {
  if (count_ == 0) return 0;
  if (q <= 0.0) return min();
  if (q >= 1.0) return max();
  // Nearest-rank: the smallest bucket whose cumulative count reaches
  // ceil(q * count).
  std::int64_t rank = static_cast<std::int64_t>(q * static_cast<double>(count_));
  if (static_cast<double>(rank) < q * static_cast<double>(count_)) ++rank;
  if (rank < 1) rank = 1;
  std::int64_t seen = 0;
  for (int b = 0; b < kBuckets; ++b) {
    seen += buckets_[static_cast<std::size_t>(b)];
    if (seen >= rank) {
      // Clamp to the exact extremes so percentiles never report a value
      // outside the observed range.
      return std::clamp(bucket_upper(b), min(), max());
    }
  }
  return max();
}

void Histogram::merge_from(const Histogram& other) {
  if (other.count_ == 0) return;
  for (int b = 0; b < kBuckets; ++b) {
    buckets_[static_cast<std::size_t>(b)] +=
        other.buckets_[static_cast<std::size_t>(b)];
  }
  count_ += other.count_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

Counter& Registry::counter(std::string_view name) {
  auto it = counters_.find(name);
  if (it == counters_.end()) {
    it = counters_
             .emplace(std::string(name), std::unique_ptr<Counter>(new Counter(
                                             std::string(name), &enabled_)))
             .first;
  }
  return *it->second;
}

Gauge& Registry::gauge(std::string_view name) {
  auto it = gauges_.find(name);
  if (it == gauges_.end()) {
    it = gauges_
             .emplace(std::string(name), std::unique_ptr<Gauge>(new Gauge(
                                             std::string(name), &enabled_)))
             .first;
  }
  return *it->second;
}

Histogram& Registry::histogram(std::string_view name) {
  auto it = histograms_.find(name);
  if (it == histograms_.end()) {
    it = histograms_
             .emplace(std::string(name),
                      std::unique_ptr<Histogram>(
                          new Histogram(std::string(name), &enabled_)))
             .first;
  }
  return *it->second;
}

std::int64_t Registry::value(std::string_view name) const {
  if (const auto it = counters_.find(name); it != counters_.end()) {
    return it->second->value();
  }
  if (const auto it = gauges_.find(name); it != gauges_.end()) {
    return it->second->value();
  }
  return 0;
}

const Histogram* Registry::find_histogram(std::string_view name) const {
  const auto it = histograms_.find(name);
  return it == histograms_.end() ? nullptr : it->second.get();
}

void Registry::merge_from(const Registry& other) {
  other.for_each_counter(
      [this](const Counter& c) { counter(c.name()).inc(c.value()); });
  other.for_each_gauge([this](const Gauge& g) {
    gauge(g.name()).set(gauge(g.name()).value() + g.value());
  });
  other.for_each_histogram(
      [this](const Histogram& h) { histogram(h.name()).merge_from(h); });
}

}  // namespace cht::metrics
