#include "chaos/sweep.h"

#include <algorithm>
#include <atomic>
#include <fstream>
#include <iomanip>
#include <mutex>
#include <sstream>
#include <thread>

#include "chaos/invariants.h"
#include "chaos/nemesis.h"
#include "chaos/workload.h"
#include "sim/trace.h"

namespace cht::chaos {
namespace {

constexpr std::size_t kTraceTail = 40;

// Seed-stream tags: each run component draws from its own derived stream.
constexpr std::uint64_t kNemesisStream = 0x6e656d;   // "nem"
constexpr std::uint64_t kWorkloadStream = 0x776f726b;  // "work"
constexpr std::uint64_t kDriverStream = 0x64727631;  // "drv1"

// Slack appended to the nemesis window and allowed after healing before
// final-state invariants run: a few heartbeat intervals at any sane delta,
// so a just-healed stale leader can learn it was deposed.
constexpr Duration kSettleSlack = Duration::seconds(2);

std::uint64_t fnv1a(std::uint64_t hash, const std::string& s) {
  for (unsigned char c : s) {
    hash ^= c;
    hash *= 0x100000001b3ULL;
  }
  return hash;
}

std::string fingerprint_of(const ClusterAdapter& cluster_const,
                           sim::Simulation& sim,
                           const std::vector<std::string>& violations) {
  auto& cluster = const_cast<ClusterAdapter&>(cluster_const);
  std::uint64_t hash = 0xcbf29ce484222325ULL;
  for (const auto& op : cluster.history().ops()) {
    std::ostringstream os;
    os << op.process << '|' << op.op << '|' << op.invoked.to_micros() << '|';
    if (op.completed()) {
      os << op.responded->to_micros() << '|' << *op.response;
    } else {
      os << "pending";
    }
    hash = fnv1a(hash, os.str());
  }
  hash = fnv1a(hash, std::to_string(sim.now().to_micros()));
  for (const auto& v : violations) hash = fnv1a(hash, v);
  std::ostringstream os;
  os << std::hex << std::setw(16) << std::setfill('0') << hash;
  return os.str();
}

std::string format_double(double v) {
  std::ostringstream os;
  os << std::setprecision(17) << v;
  return os.str();
}

}  // namespace

RunResult run_one(const RunSpec& spec, const AdapterHook& hook) {
  RunResult result;
  result.spec = spec;

  std::unique_ptr<ClusterAdapter> adapter = make_adapter(spec);
  if (hook) adapter = hook(std::move(adapter));
  ClusterAdapter& cluster = *adapter;
  // Protocol-level events only: network events would dwarf them in the
  // artifact tail.
  cluster.sim().trace().enable(/*include_network=*/false);

  Nemesis nemesis(cluster,
                  nemesis_profile(spec.profile, spec.delta(), spec.epsilon()),
                  derive_seed(spec.seed, kNemesisStream));
  WorkloadGen workload(spec, derive_seed(spec.seed, kWorkloadStream));
  Rng driver(derive_seed(spec.seed, kDriverStream));

  // The nemesis stays active for a generous bound on the workload window; it
  // reschedules itself between submissions because run_for drains the same
  // event queue.
  nemesis.arm(Duration::millis((spec.op_gap_max_ms * 3 + 1) * spec.ops) +
              kSettleSlack);
  // Open operations at live processes. Pending ops whose submitter crashed
  // stay open forever and are excluded — they no longer add client load.
  const auto live_inflight = [&cluster] {
    std::size_t open = 0;
    for (const auto& op : cluster.history().ops()) {
      if (op.completed()) continue;
      // An op orphaned by a crash of its submitter stays open forever even
      // if the submitter restarted (the crash wiped the client session); it
      // no longer adds client load either way.
      if (cluster.crashed(op.process.index())) continue;
      if (cluster.sim().crashed_at_or_after(op.process, op.invoked)) continue;
      ++open;
    }
    return open;
  };
  for (int i = 0; i < spec.ops; ++i) {
    const int process = static_cast<int>(
        driver.next_below(static_cast<std::uint64_t>(spec.n)));
    const object::Operation op = workload.next();
    // Bounded client concurrency: stall (in simulated time) until an open
    // operation completes. The guard bounds the stall so a genuinely stuck
    // cluster still reaches the liveness check instead of spinning here.
    for (int guard = 0;
         live_inflight() >= static_cast<std::size_t>(spec.max_inflight) &&
         guard < 400;
         ++guard) {
      cluster.run_for(Duration::millis(spec.op_gap_max_ms));
    }
    const bool pre_gst = cluster.sim().now() < cluster.sim().network().config().gst;
    // On the client path the slot's client is alive regardless of replica
    // crashes (it retries elsewhere); without it, submission is colocated
    // with the replica and a crashed slot cannot accept work.
    if (spec.client_path || !cluster.crashed(process)) {
      cluster.submit(process, op);
    }
    // Slower pacing while the network is asynchronous bounds the concurrency
    // the checker must untangle (same discipline as the original chaos
    // suites).
    const std::int64_t gap =
        driver.next_in(spec.op_gap_min_ms, spec.op_gap_max_ms);
    cluster.run_for(Duration::millis(pre_gst ? gap * 3 : gap));
  }
  const RealTime heal_time = cluster.sim().now();
  nemesis.stop_and_heal();
  result.quiesced =
      cluster.await_quiesce(Duration::seconds(spec.quiesce_timeout_s));
  // Let leadership settle before final-state invariants (a just-healed stale
  // leader needs a few heartbeats to learn it was deposed).
  cluster.run_for(kSettleSlack);

  const NemesisProfile profile =
      nemesis_profile(spec.profile, spec.delta(), spec.epsilon());
  ExposureInput exposure;
  exposure.clock_guard = spec.clock_guard;
  exposure.delta = spec.delta();
  exposure.epsilon = spec.epsilon();
  exposure.skew_max = profile.clock_skew_max;
  if (!nemesis.skew_events().empty()) {
    exposure.first_skew = nemesis.skew_events().front().at;
    exposure.heal_time = heal_time;
  }
  InvariantReport report = check_invariants(
      cluster, profile, result.quiesced,
      spec.check_budget > 0 ? static_cast<std::size_t>(spec.check_budget) : 0,
      exposure);
  result.violations = std::move(report.violations);
  result.checker_decided = report.checker_decided;
  result.reads_excused = report.reads_excused;
  result.submitted = cluster.submitted();
  result.completed = cluster.completed();
  result.leadership_changes = cluster.leadership_changes();
  result.crashes = nemesis.crashes();
  result.restarts = nemesis.restarts();
  result.nemesis_schedule = nemesis.schedule_log();
  result.skew_events = nemesis.skew_events();
  for (int i = 0; i < cluster.n(); ++i) {
    result.guard_transitions.push_back(cluster.guard_transitions_of(i));
  }
  const auto& events = cluster.sim().trace().events();
  const std::size_t start =
      events.size() > kTraceTail ? events.size() - kTraceTail : 0;
  for (std::size_t i = start; i < events.size(); ++i) {
    std::ostringstream os;
    os << events[i].at.to_millis_f() << "ms " << events[i].process << " "
       << events[i].category;
    if (!events[i].detail.empty()) os << " " << events[i].detail;
    result.trace_tail.push_back(os.str());
  }
  for (const auto& op : cluster.history().ops()) {
    std::ostringstream os;
    os << op.process << " " << op.op << " @" << op.invoked.to_millis_f()
       << "ms";
    if (op.completed()) {
      os << " -> \"" << *op.response << "\" @" << op.responded->to_millis_f()
         << "ms";
    } else {
      os << " -> <pending>";
    }
    result.history.push_back(os.str());
  }
  result.fingerprint =
      fingerprint_of(cluster, cluster.sim(), result.violations);
  return result;
}

// --- Repro artifacts --------------------------------------------------------

bool write_artifact(const std::string& path, const RunResult& result) {
  std::ofstream out(path);
  if (!out) return false;
  const RunSpec& s = result.spec;
  out << "# chtread_fuzz repro artifact v1\n"
      << "# replay: chtread_fuzz --repro=" << path << "\n"
      << "protocol=" << s.protocol << "\n"
      << "profile=" << s.profile << "\n"
      << "object=" << s.object << "\n"
      << "seed=" << s.seed << "\n"
      << "n=" << s.n << "\n"
      << "delta_ms=" << s.delta_ms << "\n"
      << "epsilon_ms=" << s.epsilon_ms << "\n"
      << "gst_ms=" << s.gst_ms << "\n"
      << "pre_gst_loss=" << format_double(s.pre_gst_loss) << "\n"
      << "sync_latency_us=" << s.sync_latency_us << "\n"
      << "unsynced_key_loss=" << format_double(s.unsynced_key_loss) << "\n"
      << "group_commit=" << (s.group_commit ? 1 : 0) << "\n"
      << "client_path=" << (s.client_path ? 1 : 0) << "\n"
      << "clock_guard=" << (s.clock_guard ? 1 : 0) << "\n"
      << "ops=" << s.ops << "\n"
      << "read_fraction=" << format_double(s.read_fraction) << "\n"
      << "key_skew=" << format_double(s.key_skew) << "\n"
      << "keys=" << s.keys << "\n"
      << "op_gap_min_ms=" << s.op_gap_min_ms << "\n"
      << "op_gap_max_ms=" << s.op_gap_max_ms << "\n"
      << "max_inflight=" << s.max_inflight << "\n"
      << "check_budget=" << s.check_budget << "\n"
      << "quiesce_timeout_s=" << s.quiesce_timeout_s << "\n"
      << "fingerprint=" << result.fingerprint << "\n"
      << "quiesced=" << (result.quiesced ? 1 : 0) << "\n"
      << "crashes=" << result.crashes << "\n"
      << "restarts=" << result.restarts << "\n"
      << "reads_excused=" << result.reads_excused << "\n";
  out << "\n[violations]\n";
  for (const auto& v : result.violations) out << v << "\n";
  out << "\n[nemesis-schedule]\n";
  for (const auto& line : result.nemesis_schedule) out << line << "\n";
  out << "\n[trace-tail]\n";
  for (const auto& line : result.trace_tail) out << line << "\n";
  out << "\n[history]\n";
  for (const auto& line : result.history) out << line << "\n";
  return static_cast<bool>(out);
}

std::optional<Artifact> load_artifact(const std::string& path) {
  std::ifstream in(path);
  if (!in) return std::nullopt;
  Artifact artifact;
  // Artifacts written before the client path existed carry no client_path
  // key; they must replay as the legacy colocated runs they recorded. The
  // same applies to the clock guard: pre-guard artifacts recorded runs with
  // no guard in the replicas, so they replay with it off.
  artifact.spec.client_path = false;
  artifact.spec.clock_guard = false;
  bool saw_protocol = false;
  std::string line;
  while (std::getline(in, line)) {
    if (line.empty() || line[0] == '#') continue;
    if (line[0] == '[') break;  // informational sections
    const auto eq = line.find('=');
    if (eq == std::string::npos) continue;
    const std::string key = line.substr(0, eq);
    const std::string value = line.substr(eq + 1);
    RunSpec& s = artifact.spec;
    if (key == "protocol") { s.protocol = value; saw_protocol = true; }
    else if (key == "profile") s.profile = value;
    else if (key == "object") s.object = value;
    else if (key == "seed") s.seed = std::stoull(value);
    else if (key == "n") s.n = std::stoi(value);
    else if (key == "delta_ms") s.delta_ms = std::stoll(value);
    else if (key == "epsilon_ms") s.epsilon_ms = std::stoll(value);
    else if (key == "gst_ms") s.gst_ms = std::stoll(value);
    else if (key == "pre_gst_loss") s.pre_gst_loss = std::stod(value);
    else if (key == "sync_latency_us") s.sync_latency_us = std::stoll(value);
    else if (key == "unsynced_key_loss") s.unsynced_key_loss = std::stod(value);
    else if (key == "group_commit") s.group_commit = std::stoi(value) != 0;
    else if (key == "client_path") s.client_path = std::stoi(value) != 0;
    else if (key == "clock_guard") s.clock_guard = std::stoi(value) != 0;
    else if (key == "ops") s.ops = std::stoi(value);
    else if (key == "read_fraction") s.read_fraction = std::stod(value);
    else if (key == "key_skew") s.key_skew = std::stod(value);
    else if (key == "keys") s.keys = std::stoi(value);
    else if (key == "op_gap_min_ms") s.op_gap_min_ms = std::stoll(value);
    else if (key == "op_gap_max_ms") s.op_gap_max_ms = std::stoll(value);
    else if (key == "max_inflight") s.max_inflight = std::stoi(value);
    else if (key == "check_budget") s.check_budget = std::stoll(value);
    else if (key == "quiesce_timeout_s") s.quiesce_timeout_s = std::stoll(value);
    else if (key == "fingerprint") artifact.fingerprint = value;
  }
  // A file that never named a protocol or fingerprint is not an artifact;
  // replaying the default spec against an empty fingerprint would "fail"
  // confusingly instead of reporting the real problem.
  if (!saw_protocol || artifact.fingerprint.empty()) return std::nullopt;
  return artifact;
}

// --- Parallel seed sweep ----------------------------------------------------

SweepResult sweep_seeds(const RunSpec& base, std::uint64_t first_seed,
                        int count, const SweepOptions& options) {
  SweepResult sweep;
  sweep.results.resize(static_cast<std::size_t>(count));

  int threads = options.threads;
  if (threads <= 0) {
    threads = static_cast<int>(std::thread::hardware_concurrency());
    if (threads <= 0) threads = 4;
  }
  threads = std::min(threads, count);

  // Everything a sweep returns must be independent of the worker count:
  // each seed index maps to a fixed seed regardless of which worker claims
  // it, results land in per-index slots, and artifact paths are collected
  // into per-index slots too (the old push_back-under-lock collected them in
  // completion order, which varied with --threads). Only the on_result
  // progress callback observes completion order, and is documented as such.
  std::atomic<int> next{0};
  std::mutex mu;  // serializes progress callbacks
  std::vector<std::string> artifact_slots(static_cast<std::size_t>(count));
  auto worker = [&] {
    for (;;) {
      const int i = next.fetch_add(1);
      if (i >= count) return;
      RunSpec spec = base;
      spec.seed = first_seed + static_cast<std::uint64_t>(i);
      RunResult result = run_one(spec, options.hook);
      if (!result.ok() && !options.artifact_dir.empty()) {
        std::ostringstream path;
        path << options.artifact_dir << "/repro_" << spec.protocol << "_"
             << spec.profile << "_" << spec.object << "_seed" << spec.seed
             << ".txt";
        // No lock: artifact files have distinct per-seed names and the slot
        // is owned by exactly one worker.
        if (write_artifact(path.str(), result)) {
          artifact_slots[static_cast<std::size_t>(i)] = path.str();
        }
      }
      {
        std::lock_guard<std::mutex> lock(mu);
        if (options.on_result) options.on_result(result);
        sweep.results[static_cast<std::size_t>(i)] = std::move(result);
      }
    }
  };
  if (threads <= 1) {
    worker();
  } else {
    std::vector<std::thread> pool;
    pool.reserve(static_cast<std::size_t>(threads));
    for (int t = 0; t < threads; ++t) pool.emplace_back(worker);
    for (auto& t : pool) t.join();
  }
  for (auto& path : artifact_slots) {
    if (!path.empty()) sweep.artifacts.push_back(std::move(path));
  }
  return sweep;
}

}  // namespace cht::chaos
