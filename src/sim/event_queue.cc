#include "sim/event_queue.h"

#include <utility>

#include "common/assert.h"

namespace cht::sim {

EventHandle EventQueue::schedule(RealTime at, std::function<void()> fn) {
  CHT_ASSERT(at >= now_, "cannot schedule an event in the past");
  auto cancelled = std::make_shared<bool>(false);
  heap_.push(Event{at, next_seq_++, std::move(fn), cancelled});
  return EventHandle(std::move(cancelled));
}

void EventQueue::drop_cancelled() const {
  while (!heap_.empty() && *heap_.top().cancelled) heap_.pop();
}

bool EventQueue::empty() const {
  drop_cancelled();
  return heap_.empty();
}

RealTime EventQueue::next_event_time() const {
  drop_cancelled();
  return heap_.empty() ? RealTime::max() : heap_.top().at;
}

bool EventQueue::step() {
  drop_cancelled();
  if (heap_.empty()) return false;
  Event event = heap_.top();
  heap_.pop();
  CHT_ASSERT(event.at >= now_, "event queue time went backwards");
  now_ = event.at;
  event.fn();
  return true;
}

}  // namespace cht::sim
