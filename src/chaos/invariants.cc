#include "chaos/invariants.h"

#include <map>
#include <set>
#include <sstream>

#include "checker/linearizability.h"
#include "checker/sessions.h"
#include "object/kv_object.h"

namespace cht::chaos {

InvariantReport check_invariants(ClusterAdapter& cluster,
                                 const NemesisProfile& profile, bool quiesced,
                                 std::size_t check_budget) {
  InvariantReport report;
  std::vector<std::string>& violations = report.violations;

  // Liveness: with every fault healed, only a crash at the submitter excuses
  // a pending operation — including a crash the submitter has since
  // *recovered* from (the crash wiped the in-memory client session, so the
  // callback can never fire even though the process is live again).
  if (!quiesced) {
    for (const auto& op : cluster.history().ops()) {
      if (op.completed()) continue;
      if (cluster.crashed(op.process.index())) continue;
      if (cluster.sim().crashed_at_or_after(op.process, op.invoked)) continue;
      std::ostringstream os;
      os << "liveness: " << op.op << " submitted at live " << op.process
         << " never completed";
      violations.push_back(os.str());
    }
  }

  // Durability: every acknowledged write must still be committed on some
  // live replica. Power cycles tear/lose unsynced storage writes at crash,
  // so this is exactly the claim that each stack's sync-before-externalize
  // discipline is placed correctly: an op the cluster responded to may never
  // roll back, no matter how many crash/recover cycles follow the ack.
  {
    const auto ids = cluster.committed_op_ids();
    const std::set<OperationId> committed(ids.begin(), ids.end());
    for (const auto& op : cluster.history().ops()) {
      if (!op.completed() || cluster.model().is_read(op.op)) continue;
      if (!op.id.process.valid()) continue;  // submit path exposed no id
      if (!committed.contains(op.id)) {
        std::ostringstream os;
        os << "durability: acked write " << op.id << " (" << op.op
           << ") is no longer committed on any live replica";
        violations.push_back(os.str());
      }
    }
  }

  // Exactly-once: no acknowledged RMW was applied twice. Client retries
  // re-send an operation under the same session id (possibly to several
  // replicas across leader changes); the replica-side session/dedup tables
  // must collapse them to a single log/batch entry. Counted per replica so a
  // duplicate is caught even if the duplicated sequence is consistent
  // cluster-wide.
  {
    std::set<OperationId> acked;
    for (const auto& op : cluster.history().ops()) {
      if (!op.completed() || cluster.model().is_read(op.op)) continue;
      if (op.id.process.valid()) acked.insert(op.id);
    }
    for (int i = 0; i < cluster.n(); ++i) {
      if (cluster.crashed(i) || cluster.recovering(i)) continue;
      std::map<OperationId, int> seen;
      for (const OperationId& id : cluster.committed_op_ids_of(i)) {
        if (!acked.contains(id)) continue;
        if (++seen[id] == 2) {
          std::ostringstream os;
          os << "exactly-once: acked RMW " << id
             << " applied twice at replica p" << i;
          violations.push_back(os.str());
        }
      }
    }
  }

  // Read-your-writes (KV histories only). Implied by linearizability, but
  // checked separately: it is linear-time (so it still decides when the
  // checker below exhausts its budget) and names the offending client and
  // value when it fires. Skipped when clock skew legally permits stale
  // reads — a stale local read may miss the reader's own write.
  if (!profile.allows_stale_reads &&
      dynamic_cast<const object::KVObject*>(&cluster.model()) != nullptr) {
    for (auto& v : checker::check_read_your_writes(cluster.history().ops())) {
      violations.push_back(std::move(v));
    }
  }

  // Linearizability. Clock skew beyond epsilon may legally yield stale
  // reads; the paper still guarantees the RMW sub-history.
  if (profile.allows_stale_reads) {
    const auto rmw = checker::check_rmw_subhistory_linearizable(
        cluster.model(), cluster.history().ops(), check_budget);
    if (!rmw.decided) {
      report.checker_decided = false;
    } else if (!rmw.linearizable) {
      violations.push_back("rmw sub-history not linearizable: " +
                           rmw.explanation);
    }
  } else {
    const auto full = checker::check_linearizable(
        cluster.model(), cluster.history().ops(), check_budget);
    if (!full.decided) {
      report.checker_decided = false;
    } else if (!full.linearizable) {
      violations.push_back("history not linearizable: " + full.explanation);
    }
  }

  for (auto& v : cluster.protocol_invariants()) {
    violations.push_back(std::move(v));
  }
  return report;
}

}  // namespace cht::chaos
