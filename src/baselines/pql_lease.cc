#include "baselines/pql_lease.h"

#include <algorithm>
#include <string>

#include "common/assert.h"
#include "sim/storage.h"

namespace cht::baselines {

void PqlProcess::on_start() {
  guarantee_expiry_.assign(cluster_size(), RealTime::min());
  renewal_tick();
}

void PqlProcess::on_restart() {
  guarantee_expiry_.assign(cluster_size(), RealTime::min());
  // Leaseholder guarantees are conservatively gone; the grantor round is
  // acceptor state and resumes past every round the previous incarnation
  // could have promised.
  if (const auto round = storage().read("round")) round_ = std::stoll(*round);
  write_seq_ = static_cast<std::int64_t>(incarnation()) << 40;
  renewal_tick();
}

void PqlProcess::renewal_tick() {
  // Grantor role: start a renewal round with every leaseholder. PQL measures
  // leases with elapsed-time timers, so establishing one guarantee takes two
  // round trips per (grantor, leaseholder) pair: the first to bound the
  // clockless skew, the second to activate the guarantee.
  ++round_;
  ++stats_.renewals_started;
  storage().write("round", std::to_string(round_));
  // The round record is acceptor state: no Promise for round r may leave
  // before r is durable, so the broadcast rides the covering sync
  // (coalescing with any other record replays pending in the window).
  const std::int64_t round = round_;
  request_sync([this, round] {
    broadcast(msg::kPromise, msg::Promise{round});
  });
  schedule_after(config_.renewal_interval, [this] { renewal_tick(); });
}

bool PqlProcess::lease_active() {
  const RealTime now = now_real();
  if (now < revoke_quiet_until_) return false;
  int active = 1;  // self-granted guarantee is trivially fresh
  for (int i = 0; i < cluster_size(); ++i) {
    if (i == id().index()) continue;
    if (guarantee_expiry_[i] > now) ++active;
  }
  const bool held = active > cluster_size() / 2;
  if (held && clock_guard_.suspect()) {
    // Degraded: the guarantees were measured on a clock the guard distrusts,
    // so report the lease inactive and let callers take the quorum path.
    ++stats_.lease_checks_degraded;
    return false;
  }
  return held;
}

void PqlProcess::begin_write() {
  // The writing quorum revokes all outstanding leases; the write completes
  // when every leaseholder acknowledged the revocation or its lease expired.
  ++write_seq_;
  PendingWrite write;
  write.seq = write_seq_;
  write.acked.assign(cluster_size(), false);
  write.acked[id().index()] = true;
  const std::int64_t seq = write.seq;
  write.expiry_timer =
      schedule_after(config_.lease_duration + config_.guard, [this, seq] {
        for (auto& w : pending_writes_) {
          if (w.seq == seq) {
            std::fill(w.acked.begin(), w.acked.end(), true);
          }
        }
        maybe_finish_write();
      });
  pending_writes_.push_back(std::move(write));
  broadcast(msg::kRevoke, msg::Revoke{write_seq_});
  maybe_finish_write();
}

void PqlProcess::maybe_finish_write() {
  for (auto it = pending_writes_.begin(); it != pending_writes_.end();) {
    const bool done =
        std::all_of(it->acked.begin(), it->acked.end(), [](bool b) { return b; });
    if (done) {
      it->expiry_timer.cancel();
      ++writes_completed_;
      it = pending_writes_.erase(it);
    } else {
      ++it;
    }
  }
}

void PqlProcess::on_message(const sim::Message& message) {
  if (clock_guard_.observe(message.sent_local, now_local(), now_real())) {
    ++stats_.clock_suspect_transitions;
  }
  if (message.is(msg::kPromise)) {
    send(message.from, msg::kPromiseAck,
         msg::PromiseAck{message.as<msg::Promise>().round});
  } else if (message.is(msg::kPromiseAck)) {
    // Round trip one done: activate the guarantee with a second round trip.
    send(message.from, msg::kGuarantee,
         msg::Guarantee{message.as<msg::PromiseAck>().round});
  } else if (message.is(msg::kGuarantee)) {
    ++stats_.guarantees_received;
    if (now_real() >= revoke_quiet_until_) {
      guarantee_expiry_[message.from.index()] =
          now_real() + config_.lease_duration;
    }
    send(message.from, msg::kGuaranteeAck,
         msg::GuaranteeAck{message.as<msg::Guarantee>().round});
  } else if (message.is(msg::kGuaranteeAck)) {
    // Grantor bookkeeping only.
  } else if (message.is(msg::kRevoke)) {
    ++stats_.revocations_received;
    // Drop every guarantee and ignore in-flight ones: reads stop being
    // local until the next full renewal completes.
    guarantee_expiry_.assign(cluster_size(), RealTime::min());
    revoke_quiet_until_ = now_real() + config_.revoke_quiet;
    send(message.from, msg::kRevokeAck,
         msg::RevokeAck{message.as<msg::Revoke>().write_seq});
  } else if (message.is(msg::kRevokeAck)) {
    for (auto& write : pending_writes_) {
      if (write.seq == message.as<msg::RevokeAck>().write_seq) {
        write.acked[message.from.index()] = true;
      }
    }
    maybe_finish_write();
  } else {
    CHT_UNREACHABLE("unknown message type for pql process");
  }
}

}  // namespace cht::baselines
