#include "sim/event_queue.h"

#include <gtest/gtest.h>

#include <vector>

namespace cht::sim {
namespace {

RealTime at_us(std::int64_t us) { return RealTime::zero() + Duration::micros(us); }

TEST(EventQueueTest, FiresInTimeOrder) {
  EventQueue q;
  std::vector<int> fired;
  q.schedule(at_us(30), [&] { fired.push_back(3); });
  q.schedule(at_us(10), [&] { fired.push_back(1); });
  q.schedule(at_us(20), [&] { fired.push_back(2); });
  while (q.step()) {
  }
  EXPECT_EQ(fired, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(q.now(), at_us(30));
}

TEST(EventQueueTest, SameInstantFiresInInsertionOrder) {
  EventQueue q;
  std::vector<int> fired;
  for (int i = 0; i < 10; ++i) {
    q.schedule(at_us(5), [&fired, i] { fired.push_back(i); });
  }
  while (q.step()) {
  }
  for (int i = 0; i < 10; ++i) EXPECT_EQ(fired[i], i);
}

TEST(EventQueueTest, CancelledEventsAreSkipped) {
  EventQueue q;
  bool fired = false;
  EventHandle h = q.schedule(at_us(10), [&] { fired = true; });
  EXPECT_TRUE(h.active());
  h.cancel();
  EXPECT_FALSE(h.active());
  while (q.step()) {
  }
  EXPECT_FALSE(fired);
}

TEST(EventQueueTest, EventsCanScheduleEvents) {
  EventQueue q;
  int count = 0;
  std::function<void()> chain = [&] {
    if (++count < 5) q.schedule(q.now() + Duration::micros(1), chain);
  };
  q.schedule(at_us(1), chain);
  while (q.step()) {
  }
  EXPECT_EQ(count, 5);
  EXPECT_EQ(q.now(), at_us(5));
}

TEST(EventQueueTest, NextEventTime) {
  EventQueue q;
  EXPECT_EQ(q.next_event_time(), RealTime::max());
  auto h = q.schedule(at_us(42), [] {});
  EXPECT_EQ(q.next_event_time(), at_us(42));
  h.cancel();
  EXPECT_EQ(q.next_event_time(), RealTime::max());
  EXPECT_TRUE(q.empty());
}

TEST(EventQueueTest, EmptyQueueStepReturnsFalse) {
  EventQueue q;
  EXPECT_FALSE(q.step());
}

}  // namespace
}  // namespace cht::sim
