// E6 — RMW commit latency: leaseholder-set memory and commit-wait (paper
// S3 "leaseholder mechanism" + S5 Megastore/Spanner contrasts).
//
// Claims:
//   (a) ours: a crashed/disconnected leaseholder delays RMW commits at most
//       once (the lease-expiry wait), after which it is dropped from the
//       leaseholder set and writes return to ~2*delta;
//   (b) Megastore-style all-ack commits have no such memory: *every* write
//       pays the invalidation wait while a process is down;
//   (c) Spanner-style commit-wait adds the clock uncertainty epsilon to
//       every write; ours is independent of epsilon after GST.
#include <iostream>
#include <memory>

#include "common/bench_util.h"
#include "common/experiment.h"
#include "object/register_object.h"

namespace cht::bench {
namespace {

constexpr Duration kDelta = Duration::millis(10);

harness::ClusterConfig base_config(std::uint64_t seed = 61) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = kDelta;
  return config;
}

// Sequence of per-write commit latencies around a leaseholder crash.
std::vector<Duration> crash_timeline(ExperimentResult& result,
                                     core::CommitGate gate,
                                     const std::string& label) {
  core::ConfigOverrides overrides;
  overrides.commit_gate = gate;
  harness::Cluster cluster(base_config(),
                           std::make_shared<object::RegisterObject>(),
                           overrides);
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const int submitter = (leader + 2) % cluster.n();

  std::vector<Duration> latencies;
  auto timed_write = [&](int i) {
    const RealTime t0 = cluster.sim().now();
    cluster.submit(submitter, object::RegisterObject::write(std::to_string(i)));
    cluster.await_quiesce(Duration::seconds(60));
    latencies.push_back(cluster.sim().now() - t0);
  };
  for (int i = 0; i < 3; ++i) timed_write(i);  // healthy
  cluster.sim().crash(ProcessId((leader + 1) % cluster.n()));
  for (int i = 3; i < 10; ++i) timed_write(i);  // after the crash
  result.config(label, cluster.config(), cluster.overrides());
  result.observe(label, cluster);
  metrics::LatencyRecorder lat;
  for (const Duration d : latencies) lat.record(d);
  result.latency(label, lat);
  return latencies;
}

// One cell of the E6c sync-latency axis: steady-state writes under a given
// fsync cost and sync discipline, with fsync count and device stall captured
// over the timed window only (startup elections/leases are excluded).
struct SyncAxisCell {
  Duration p50;
  double fsyncs_per_batch = 0;
  std::int64_t sync_stall_us = 0;
};

SyncAxisCell sync_axis_run(ExperimentResult& result, Duration sync_latency,
                           bool group_commit, const std::string& label) {
  harness::ClusterConfig config = base_config(83);
  config.storage.sync_latency = sync_latency;
  config.storage.group_commit = group_commit;
  harness::Cluster cluster(config,
                           std::make_shared<object::RegisterObject>(),
                           core::ConfigOverrides{});
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));

  auto totals = [&](std::int64_t& fsyncs, std::int64_t& stall) {
    fsyncs = 0;
    stall = 0;
    for (int i = 0; i < cluster.n(); ++i) {
      fsyncs += cluster.sim().storage(ProcessId(i)).fsyncs();
      stall += cluster.sim().storage(ProcessId(i)).sync_stall_us();
    }
  };
  std::int64_t fsyncs_before = 0, stall_before = 0;
  totals(fsyncs_before, stall_before);

  metrics::LatencyRecorder lat;
  const int writes = result.scaled(25, 8);
  for (int i = 0; i < writes; ++i) {
    const RealTime t0 = cluster.sim().now();
    cluster.submit(1, object::RegisterObject::write(std::to_string(i)));
    cluster.await_quiesce(Duration::seconds(60));
    lat.record(cluster.sim().now() - t0);
  }

  std::int64_t fsyncs_after = 0, stall_after = 0;
  totals(fsyncs_after, stall_after);
  result.config(label, cluster.config(), cluster.overrides());
  result.latency(label, lat);

  SyncAxisCell cell;
  cell.p50 = lat.p50();
  cell.fsyncs_per_batch =
      static_cast<double>(fsyncs_after - fsyncs_before) / writes;
  cell.sync_stall_us = stall_after - stall_before;
  return cell;
}

Duration steady_write_latency(ExperimentResult& result, Duration commit_wait,
                              std::uint64_t seed) {
  core::ConfigOverrides overrides;
  overrides.commit_wait = commit_wait;
  harness::Cluster cluster(base_config(seed),
                           std::make_shared<object::RegisterObject>(),
                           overrides);
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  metrics::LatencyRecorder lat;
  for (int i = 0; i < result.scaled(20, 6); ++i) {
    const RealTime t0 = cluster.sim().now();
    cluster.submit(1, object::RegisterObject::write(std::to_string(i)));
    cluster.await_quiesce(Duration::seconds(30));
    lat.record(cluster.sim().now() - t0);
  }
  return lat.p50();
}

}  // namespace
}  // namespace cht::bench

int main(int argc, char** argv) {
  using namespace cht;
  using namespace cht::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  ExperimentResult result("write_latency", args);

  result.begin(
      "E6a: write latency timeline around a leaseholder crash",
      "Claim (paper S3/S5): ours pays the lease-expiry wait exactly once\n"
      "(write #4, the first after the crash), then drops the dead process\n"
      "from the leaseholder set; Megastore-style all-ack commits pay the\n"
      "wait on every write. (LeasePeriod = 12*delta = 120 ms.)");
  const auto ours = crash_timeline(result, core::CommitGate::kLeaseholders,
                                   "ours-leaseholders");
  const auto allack = crash_timeline(result, core::CommitGate::kAllProcesses,
                                     "all-ack");
  result.columns({"write#", "ours (ms)", "all-ack/Megastore (ms)", "note"});
  for (std::size_t i = 0; i < ours.size(); ++i) {
    std::string note;
    if (i < 3) note = "healthy";
    else if (i == 3) note = "first write after crash";
    else note = "subsequent writes";
    result.row({metrics::Table::num(static_cast<std::int64_t>(i + 1)),
                ms2(ours[i]), ms2(allack[i]), note});
  }
  result.end();

  result.begin(
      "E6b: write latency vs clock uncertainty epsilon",
      "Claim (paper S5, Spanner): commit-wait writes pay epsilon each;\n"
      "ours is independent of epsilon after GST.");
  result.columns({"epsilon (ms)", "ours p50 (ms)", "commit-wait p50 (ms)"});
  const std::vector<std::int64_t> sweep =
      result.smoke() ? std::vector<std::int64_t>{0, 50}
                     : std::vector<std::int64_t>{0, 5, 10, 25, 50};
  for (const std::int64_t e_ms : sweep) {
    const Duration epsilon = Duration::millis(e_ms);
    const Duration ours_p50 =
        steady_write_latency(result, Duration::zero(), 71);
    const Duration wait_p50 = steady_write_latency(result, epsilon, 71);
    result.row({metrics::Table::num(e_ms), ms2(ours_p50), ms2(wait_p50)});
    result.metric("ours_p50_us_eps" + std::to_string(e_ms),
                  ours_p50.to_micros());
    result.metric("commit_wait_p50_us_eps" + std::to_string(e_ms),
                  wait_p50.to_micros());
  }
  result.note(
      "Expected shape: E6a — ours spikes only at write #4 (by\n"
      "~LeasePeriod), all-ack spikes on every write 4..10; E6b —\n"
      "ours flat, commit-wait grows linearly with epsilon.");
  result.end();

  result.begin(
      "E6c: write latency and fsync amplification vs sync cost",
      "Claim: with a real (nonzero) fsync cost, group commit — one covering\n"
      "sync per ack burst, acks released only after it completes — commits\n"
      "with fewer fsyncs per batch AND lower median latency than the naive\n"
      "discipline that syncs every record individually (the extra syncs\n"
      "queue at the serial device ahead of the ack-critical one). At zero\n"
      "sync cost the two disciplines are identical by construction.");
  result.columns({"sync cost", "discipline", "p50 (ms)", "fsyncs/batch",
                  "sync stall (ms)"});
  const std::vector<std::pair<std::string, Duration>> sync_axis = {
      {"0", Duration::zero()},
      {"0.5*delta", Duration::micros(kDelta.to_micros() / 2)},
      {"2*delta", 2 * kDelta}};
  for (const auto& [axis_label, sync_latency] : sync_axis) {
    for (const bool group : {true, false}) {
      const std::string discipline = group ? "group-commit" : "naive";
      const std::string label = "sync-" + axis_label + "-" + discipline;
      const SyncAxisCell cell =
          sync_axis_run(result, sync_latency, group, label);
      result.row({axis_label, discipline, ms2(cell.p50),
                  metrics::Table::num(cell.fsyncs_per_batch, 2),
                  ms2(Duration::micros(cell.sync_stall_us))});
      const std::string suffix =
          (group ? "_group" : "_naive") + std::string("_sync") +
          std::to_string(sync_latency.to_micros());
      result.metric("p50_us" + suffix, cell.p50.to_micros());
      result.metric("fsyncs_per_batch" + suffix, cell.fsyncs_per_batch);
      result.metric("sync_stall_us" + suffix, cell.sync_stall_us);
    }
  }
  result.note(
      "Expected shape: the two zero-cost rows are identical; at every\n"
      "nonzero cost group commit issues strictly fewer fsyncs per batch;\n"
      "at 2*delta — where the serial device is the bottleneck — it also\n"
      "shows clearly lower p50 (at 0.5*delta the device is rarely backed\n"
      "up, so the latencies are close).");
  result.end();
  return result.finish();
}
