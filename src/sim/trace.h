// Structured event tracing.
//
// When enabled, the simulation records network sends/deliveries, crashes,
// and any protocol-level events processes choose to report (leadership
// changes, commits, lease grants, ...). Disabled (the default) it costs one
// branch per event. Used for debugging failing seeds and by chtread_sim
// --trace.
#pragma once

#include <ostream>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/types.h"

namespace cht::sim {

struct TraceEvent {
  RealTime at;
  ProcessId process;     // invalid for simulation-global events
  std::string category;  // e.g. "net.send", "net.deliver", "crash", "leader"
  std::string detail;
};

class Trace {
 public:
  // `include_network` controls whether per-message net.send events are
  // recorded too; protocol-level events are usually what you want, and
  // network events outnumber them by orders of magnitude.
  void enable(bool include_network = true) {
    enabled_ = true;
    network_enabled_ = include_network;
  }
  void disable() { enabled_ = false; }
  bool enabled() const { return enabled_; }
  bool network_enabled() const { return enabled_ && network_enabled_; }

  void record(RealTime at, ProcessId process, std::string category,
              std::string detail) {
    if (!enabled_) return;
    events_.push_back(
        TraceEvent{at, process, std::move(category), std::move(detail)});
  }

  const std::vector<TraceEvent>& events() const { return events_; }
  void clear() { events_.clear(); }

  // Prints the last `limit` events (0 = all), optionally filtered to a
  // category prefix (e.g. "net." or "leader").
  void dump(std::ostream& os, std::size_t limit = 0,
            const std::string& category_prefix = "") const;

 private:
  bool enabled_ = false;
  bool network_enabled_ = true;
  std::vector<TraceEvent> events_;
};

}  // namespace cht::sim
