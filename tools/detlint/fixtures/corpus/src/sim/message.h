// Fixture: rule D5 in a second wire-format file (mirrors src/sim/message.h).
#pragma once
#include <string>

namespace fixture::sim {

struct Event {
  double at;  // detlint-expect: D5
  int priority;  // detlint-expect: D5
  std::string category;     // negative: value-initializes
  bool network = false;     // negative: initialized
};

class Envelope {
 public:
  std::string type;         // negative: value-initializes

 private:
  std::int64_t seq_ = 0;    // negative: initialized
  std::uint64_t stamp;  // detlint-expect: D5
};

}  // namespace fixture::sim
