#include "object/queue_object.h"

#include "common/assert.h"

namespace cht::object {

std::string QueueState::fingerprint() const {
  std::string out;
  for (const auto& item : items_) {
    out += item;
    out += '|';
  }
  return out;
}

Response QueueObject::apply(ObjectState& state, const Operation& op) const {
  auto& queue = dynamic_cast<QueueState&>(state);
  if (op.kind == "enqueue") {
    queue.items().push_back(op.arg);
    return std::to_string(queue.items().size());
  }
  if (op.kind == "dequeue") {
    if (queue.items().empty()) return "";
    const std::string front = queue.items().front();
    queue.items().pop_front();
    return front;
  }
  if (op.kind == "front") {
    return queue.items().empty() ? "" : queue.items().front();
  }
  if (op.kind == "length") return std::to_string(queue.items().size());
  if (op.kind == "noop") return "ok";
  CHT_UNREACHABLE("unknown queue operation");
}

}  // namespace cht::object
