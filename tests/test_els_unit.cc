// White-box tests of the enhanced leader service: drive one service
// instance with hand-crafted support grants and check the AmLeader
// predicate's exact semantics (majority counting, same-counter requirement,
// interval coverage, grant disjointness on the granting side).
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "leader/enhanced_leader.h"
#include "sim/simulation.h"

namespace cht {
namespace {

using leader::EnhancedLeaderConfig;
using leader::EnhancedLeaderService;
using leader::SupportGrant;

// Hosts a service whose leader() belief is controlled by the test; peers
// are inert message sinks we use as support senders.
class ElsHost : public sim::Process {
 public:
  explicit ElsHost(EnhancedLeaderConfig config)
      : els_(*this, [this] { return believed_; }, config) {}

  void on_start() override { els_.start(); }
  void on_message(const sim::Message& message) override {
    els_.handle_message(message);
  }

  EnhancedLeaderService& els() { return els_; }
  void set_believed(ProcessId p) { believed_ = p; }

 private:
  EnhancedLeaderService els_;
  ProcessId believed_ = ProcessId(0);
};

class Sink : public sim::Process {
 public:
  void on_message(const sim::Message& message) override {
    received.push_back(message);
  }
  std::vector<sim::Message> received;
};

class ElsUnitTest : public ::testing::Test {
 protected:
  ElsUnitTest() : sim_(make_config()) {
    EnhancedLeaderConfig config;
    config.support_interval = Duration::millis(5);
    config.support_duration = Duration::millis(40);
    // Process 0: the host under test. 1-4: sinks used as supporters.
    sim_.add_process(std::make_unique<ElsHost>(config));
    for (int i = 1; i < 5; ++i) sim_.add_process(std::make_unique<Sink>());
    sim_.start();
  }
  static sim::SimulationConfig make_config() {
    sim::SimulationConfig c;
    c.seed = 11;
    c.epsilon = Duration::zero();
    c.network.gst = RealTime::zero();
    c.network.delta = Duration::millis(1);
    c.network.delta_min = Duration::micros(500);
    return c;
  }

  ElsHost& host() { return sim_.process_as<ElsHost>(ProcessId(0)); }
  Sink& sink(int i) { return sim_.process_as<Sink>(ProcessId(i)); }
  void run(Duration d) { sim_.run_until(sim_.now() + d); }
  LocalTime lt(std::int64_t us) { return LocalTime::micros(us); }

  void support(int from, std::int64_t counter, std::int64_t start_us,
               std::int64_t end_us) {
    sink(from).send(ProcessId(0), EnhancedLeaderService::kSupportType,
                    SupportGrant{counter, lt(start_us), lt(end_us)});
  }

  sim::Simulation sim_;
};

TEST_F(ElsUnitTest, MajorityOfSupportsRequired) {
  // Self-support (host believes itself leader) counts as one of five; two
  // more are needed for a majority of 3.
  host().set_believed(ProcessId(0));
  run(Duration::millis(20));  // several self-grants recorded
  const LocalTime t = host().now_local();
  EXPECT_FALSE(host().els().am_leader(t, t));
  support(1, 1, 0, 1'000'000);
  run(Duration::millis(5));
  EXPECT_FALSE(host().els().am_leader(host().now_local(), host().now_local()));
  support(2, 1, 0, 1'000'000);
  run(Duration::millis(5));
  const LocalTime now = host().now_local();
  EXPECT_TRUE(host().els().am_leader(now, now));
}

TEST_F(ElsUnitTest, CoverageOfBothEndpointsRequired) {
  host().set_believed(ProcessId(0));
  run(Duration::millis(20));
  // Supports covering only early times do not certify later ones.
  support(1, 1, 0, 30'000);
  support(2, 1, 0, 30'000);
  run(Duration::millis(5));
  EXPECT_TRUE(host().els().am_leader(lt(25'000), lt(26'000)));
  EXPECT_FALSE(host().els().am_leader(lt(25'000), lt(50'000)))
      << "t2 beyond every supporter interval must fail";
  EXPECT_FALSE(host().els().am_leader(lt(50'000), lt(60'000)));
}

TEST_F(ElsUnitTest, DifferentCountersDoNotCertifyContinuity) {
  host().set_believed(ProcessId(0));
  run(Duration::millis(20));
  // Supporter 1 covers t1 with counter 1 and t2 with counter 3 (it switched
  // away and back in between): that must NOT certify [t1, t2].
  support(1, 1, 0, 10'000);
  support(1, 3, 20'000, 30'000);
  support(2, 1, 0, 30'000);  // continuous
  run(Duration::millis(5));
  EXPECT_FALSE(host().els().am_leader(lt(5'000), lt(25'000)))
      << "a counter change between covers means interrupted support";
  // Within a single counter's interval it is fine.
  EXPECT_TRUE(host().els().am_leader(lt(25'000), lt(28'000)));
}

TEST_F(ElsUnitTest, SameCounterGapIsAcceptable) {
  // A gap within the same counter means the supporter never supported
  // anyone else (it would have bumped the counter), so covering t1 and t2
  // with the same counter suffices even across a gap.
  host().set_believed(ProcessId(0));
  run(Duration::millis(20));
  support(1, 2, 0, 10'000);
  support(1, 2, 20'000, 30'000);
  support(2, 2, 0, 30'000);
  run(Duration::millis(5));
  EXPECT_TRUE(host().els().am_leader(lt(5'000), lt(25'000)));
}

TEST_F(ElsUnitTest, GrantsToDifferentLeadersAreDisjoint) {
  // Granting side: when the believed leader changes, new grants must start
  // strictly after every interval granted to the previous leader.
  host().set_believed(ProcessId(1));
  run(Duration::millis(25));  // several grants to p1
  host().set_believed(ProcessId(2));
  run(Duration::millis(25));  // grants to p2
  LocalTime p1_max_end = LocalTime::min();
  for (const auto& m : sink(1).received) {
    const auto& g = m.as<SupportGrant>();
    p1_max_end = std::max(p1_max_end, g.end);
  }
  ASSERT_FALSE(sink(2).received.empty());
  for (const auto& m : sink(2).received) {
    const auto& g = m.as<SupportGrant>();
    EXPECT_GT(g.start, p1_max_end)
        << "grant to the new leader overlaps one given to the old leader";
  }
  // And the counter was bumped.
  EXPECT_GT(sink(2).received.front().as<SupportGrant>().counter,
            sink(1).received.front().as<SupportGrant>().counter);
}

TEST_F(ElsUnitTest, SupportsExpireFromHistoryHorizon) {
  host().set_believed(ProcessId(0));
  support(1, 1, 0, 10'000);
  support(2, 1, 0, 10'000);
  run(Duration::millis(20));
  EXPECT_TRUE(host().els().am_leader(lt(5'000), lt(6'000)));
  // After the horizon passes, the old intervals are pruned and can no
  // longer certify anything.
  run(Duration::seconds(11));  // horizon default 10 s
  EXPECT_FALSE(host().els().am_leader(lt(5'000), lt(6'000)));
}

}  // namespace
}  // namespace cht
