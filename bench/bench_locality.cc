// E1 — Read locality (paper Sections 1 & 3).
//
// Claim: "reads are local: the number of messages sent during the execution
// does not depend on the number of reads performed". We fix a background RMW
// rate, sweep the read count over three orders of magnitude, and report the
// total messages on the wire and the marginal messages per read. For
// contrast, the same sweep runs with ReadPolicy::kLeaderForward (Spanner
// option (a)) and on Raft with ReadIndex reads, whose traffic grows linearly
// with reads.
#include <iostream>
#include <memory>

#include "common/bench_util.h"
#include "common/experiment.h"
#include "core/replica.h"
#include "object/kv_object.h"

namespace cht::bench {
namespace {

struct Result {
  std::int64_t messages;
  std::int64_t completed_reads;
};

harness::ClusterConfig base_config() {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = 99;
  config.delta = Duration::millis(10);
  return config;
}

// Fixed experiment body: 50 writes over 5 simulated seconds, plus `reads`
// reads spread evenly. Returns messages counted over the measured window.
template <class ClusterT>
Result run_window(ClusterT& cluster, int reads) {
  const auto before = cluster.sim().network().stats().sent;
  const int steps = 50;
  const int reads_per_step = reads / steps;
  for (int step = 0; step < steps; ++step) {
    cluster.submit(step % cluster.n(),
                   object::KVObject::put("k" + std::to_string(step % 4), "v"));
    for (int r = 0; r < reads_per_step; ++r) {
      cluster.submit((step + r) % cluster.n(),
                     object::KVObject::get("k" + std::to_string(r % 4)));
    }
    cluster.run_for(Duration::millis(100));
  }
  cluster.await_quiesce(Duration::seconds(60));
  return Result{static_cast<std::int64_t>(
                    cluster.sim().network().stats().sent - before),
                reads};
}

Result run_core(ExperimentResult& result, int reads, core::ReadPolicy policy,
                const std::string& label) {
  core::ConfigOverrides overrides;
  overrides.read_policy = policy;
  harness::Cluster cluster(base_config(), std::make_shared<object::KVObject>(),
                           overrides);
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  const auto window = run_window(cluster, reads);
  if (!label.empty()) {
    result.config(label, cluster.config(), cluster.overrides());
    result.observe(label, cluster);
  }
  return window;
}

Result run_raft(ExperimentResult& result, int reads, const std::string& label) {
  harness::RaftCluster cluster(base_config(),
                               std::make_shared<object::KVObject>());
  cluster.await_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  const auto window = run_window(cluster, reads);
  if (!label.empty()) {
    result.config(label, cluster.config());
    result.observe(label, cluster);
  }
  return window;
}

}  // namespace
}  // namespace cht::bench

int main(int argc, char** argv) {
  using namespace cht;
  using namespace cht::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  ExperimentResult result("locality", args);
  result.begin(
      "E1: read locality — messages vs number of reads",
      "Claim (paper S1/S3): with the paper's algorithm the number of\n"
      "messages is independent of the number of reads (slope ~= 0 msg/read);\n"
      "leader-forwarded reads and Raft ReadIndex reads pay messages per read.");
  result.columns({"reads", "ours: msgs", "ours: msg/read", "fwd: msgs",
                  "fwd: msg/read", "raft: msgs", "raft: msg/read"});

  const std::vector<int> sweep =
      result.smoke() ? std::vector<int>{0, 100} : std::vector<int>{0, 100, 1000, 10000};
  const int largest = sweep.back();
  std::int64_t ours_base = 0, fwd_base = 0, raft_base = 0;
  for (const int reads : sweep) {
    // Capture configs/observability only at the largest sweep point, where
    // the traffic contrast is the sharpest.
    const bool capture = reads == largest;
    const auto ours = run_core(result, reads, core::ReadPolicy::kLocalLease,
                               capture ? "ours" : "");
    const auto fwd = run_core(result, reads, core::ReadPolicy::kLeaderForward,
                              capture ? "leader-forward" : "");
    const auto raft = run_raft(result, reads, capture ? "raft-readindex" : "");
    if (reads == 0) {
      ours_base = ours.messages;
      fwd_base = fwd.messages;
      raft_base = raft.messages;
    }
    auto per_read = [&](std::int64_t messages, std::int64_t baseline) {
      if (reads == 0) return std::string("-");
      return metrics::Table::num(
          static_cast<double>(messages - baseline) / reads, 3);
    };
    result.row({metrics::Table::num(static_cast<std::int64_t>(reads)),
                metrics::Table::num(ours.messages),
                per_read(ours.messages, ours_base),
                metrics::Table::num(fwd.messages),
                per_read(fwd.messages, fwd_base),
                metrics::Table::num(raft.messages),
                per_read(raft.messages, raft_base)});
    if (reads == largest && reads > 0) {
      result.metric("ours_msg_per_read",
                    static_cast<double>(ours.messages - ours_base) / reads);
      result.metric("fwd_msg_per_read",
                    static_cast<double>(fwd.messages - fwd_base) / reads);
      result.metric("raft_msg_per_read",
                    static_cast<double>(raft.messages - raft_base) / reads);
    }
  }
  result.note(
      "Expected shape: 'ours: msg/read' ~ 0 at every scale;\n"
      "'fwd' and 'raft' grow by >= 2 messages per read.");
  result.end();
  return result.finish();
}
