// ClusterAdapter: one uniform surface over every protocol stack the chaos
// subsystem can torture — the paper's algorithm (harness::Cluster), the Raft
// baseline in both read modes (harness::RaftCluster) and Viewstamped
// Replication (harness::VrCluster).
//
// The nemesis, workload driver, seed sweeper and invariant registry are all
// written against this interface, so a fault schedule or a safety check is
// authored once and exercises all four stacks identically.
#pragma once

#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "checker/history.h"
#include "chaos/spec.h"
#include "common/time.h"
#include "core/clock_guard.h"
#include "metrics/registry.h"
#include "object/object.h"
#include "sim/simulation.h"

namespace cht::chaos {

class ClusterAdapter {
 public:
  virtual ~ClusterAdapter() = default;

  virtual const std::string& protocol() const = 0;
  virtual sim::Simulation& sim() = 0;
  virtual int n() const = 0;
  virtual const object::ObjectModel& model() const = 0;
  virtual checker::HistoryRecorder& history() = 0;

  // Submits a client operation via process `process`, recording it in the
  // history (reads and RMWs routed per the protocol's client API).
  virtual void submit(int process, object::Operation op) = 0;

  // Whether replica `process` is currently crashed. Indices at or beyond
  // n() denote networked clients (spec.client_path), which the nemesis never
  // crashes; implementations return false for them.
  virtual bool crashed(int process) const = 0;

  // Power-cycles crashed process `process` back up: a fresh replica instance
  // is attached to the slot's surviving StableStorage and runs the stack's
  // recovery path (on_restart). Asserts if the process is not crashed.
  virtual void restart(int process) = 0;

  // True while `process` is up but still inside its stack's recovery
  // protocol (VR's nonce recovery spans many message delays; storage-replay
  // recovery is instantaneous and never reports true). The nemesis counts
  // these as down for its crash budget: VR Revisited assumes at most a
  // minority of replicas are simultaneously failed-or-recovering, and a
  // budget blind to recovering nodes can legally drive every replica into
  // recovery — a permanent deadlock (nobody normal is left to respond), not
  // an implementation bug. Found by the power-cycle sweep, seed 4.
  virtual bool recovering(int /*process*/) const { return false; }

  // Ids of committed non-read operations at one replica, in the protocol's
  // commit order: applied-batch contents (chtread), the log prefix up to
  // commit_index (raft) or commit_number (vr). The exactly-once invariant
  // counts per-id occurrences in this sequence — an acked RMW appearing
  // twice at one replica means a retry was applied twice.
  virtual std::vector<OperationId> committed_op_ids_of(int replica) = 0;

  // Ids of *durable* non-read operations at one replica: everything the
  // replica's stable state still carries, whether or not it has been applied
  // yet. Defaults to the applied prefix; chtread overrides it with stored
  // batch contents, because a just-restarted replica may durably hold a
  // batch it has not re-applied when the final-state check runs (the applied
  // prefix momentarily understates what survived the crash). The durability
  // invariant consumes this; exactly-once keeps the strict applied prefix.
  virtual std::vector<OperationId> durable_op_ids_of(int replica) {
    return committed_op_ids_of(replica);
  }

  // Union over all currently-live (not crashed, not recovering) replicas.
  // The durability invariant checks every acknowledged write's id is in
  // here after the run.
  virtual std::vector<OperationId> committed_op_ids() {
    std::vector<OperationId> ids;
    for (int i = 0; i < n(); ++i) {
      if (crashed(i) || recovering(i)) continue;
      std::vector<OperationId> one = durable_op_ids_of(i);
      ids.insert(ids.end(), one.begin(), one.end());
    }
    return ids;
  }

  // Clock-guard suspect/requalified flips at one replica, in time order,
  // for the current incarnation (a restart starts a fresh, non-suspect
  // guard). Stacks without a guard (vr, clock-free raft ReadIndex state is
  // still guarded at the replica) return empty. The exposure-window
  // accounting in invariants.cc folds these into an all-replicas-suspect
  // timeline; benches derive detection latency from them.
  virtual std::vector<core::ClockSkewGuard::Transition> guard_transitions_of(
      int /*replica*/) {
    return {};
  }

  // The protocol's current notion of "the leader": steady leader (chtread),
  // highest-term leader (raft), normal-status primary (vr); -1 if none.
  // The leader-hunter nemesis profile targets whoever this returns.
  virtual int leader() = 0;

  virtual bool await_quiesce(Duration timeout) = 0;
  virtual std::size_t submitted() const = 0;
  virtual std::size_t completed() const = 0;

  // Protocol-specific safety invariants, evaluated against final replica
  // state (election safety, committed-prefix agreement, ...). Returns
  // human-readable violation descriptions; empty means all hold.
  virtual std::vector<std::string> protocol_invariants() = 0;

  // Total leadership acquisitions (reigns begun / terms won / views led)
  // across the cluster — a cheap "how eventful was this run" metric.
  virtual std::int64_t leadership_changes() = 0;

  // Merges every replica's metric registry (counters, protocol-phase span
  // histograms) into `out`. Read-only aggregation; safe at any quiet point.
  virtual void merge_metrics_into(metrics::Registry& out) = 0;

  void run_for(Duration d) { sim().run_until(sim().now() + d); }
};

// Decorator base for adapter wrappers: owns an inner adapter and forwards
// every virtual. Derive and override only what you need (fault injection in
// chaos/evil.h, metrics capture in tests and benches) — new ClusterAdapter
// virtuals then flow through existing decorators automatically.
class ForwardingAdapter : public ClusterAdapter {
 public:
  explicit ForwardingAdapter(std::unique_ptr<ClusterAdapter> inner)
      : inner_(std::move(inner)) {}

  const std::string& protocol() const override { return inner_->protocol(); }
  sim::Simulation& sim() override { return inner_->sim(); }
  int n() const override { return inner_->n(); }
  const object::ObjectModel& model() const override { return inner_->model(); }
  checker::HistoryRecorder& history() override { return inner_->history(); }
  void submit(int process, object::Operation op) override {
    inner_->submit(process, std::move(op));
  }
  bool crashed(int process) const override { return inner_->crashed(process); }
  void restart(int process) override { inner_->restart(process); }
  bool recovering(int process) const override {
    return inner_->recovering(process);
  }
  std::vector<OperationId> committed_op_ids_of(int replica) override {
    return inner_->committed_op_ids_of(replica);
  }
  std::vector<OperationId> durable_op_ids_of(int replica) override {
    return inner_->durable_op_ids_of(replica);
  }
  std::vector<OperationId> committed_op_ids() override {
    return inner_->committed_op_ids();
  }
  std::vector<core::ClockSkewGuard::Transition> guard_transitions_of(
      int replica) override {
    return inner_->guard_transitions_of(replica);
  }
  int leader() override { return inner_->leader(); }
  bool await_quiesce(Duration timeout) override {
    return inner_->await_quiesce(timeout);
  }
  std::size_t submitted() const override { return inner_->submitted(); }
  std::size_t completed() const override { return inner_->completed(); }
  std::vector<std::string> protocol_invariants() override {
    return inner_->protocol_invariants();
  }
  std::int64_t leadership_changes() override {
    return inner_->leadership_changes();
  }
  void merge_metrics_into(metrics::Registry& out) override {
    inner_->merge_metrics_into(out);
  }

 protected:
  ClusterAdapter& inner() { return *inner_; }
  const ClusterAdapter& inner() const { return *inner_; }

 private:
  std::unique_ptr<ClusterAdapter> inner_;
};

// Builds the adapter named by spec.protocol (see known_protocols()) over the
// object model named by spec.object. Asserts on unknown names.
std::unique_ptr<ClusterAdapter> make_adapter(const RunSpec& spec);

// Optional decorator applied to a freshly built adapter before a run; lets
// tests interpose on the submit path (see evil.h) without the chaos library
// linking any fault-injection-into-ourselves code.
using AdapterHook =
    std::function<std::unique_ptr<ClusterAdapter>(std::unique_ptr<ClusterAdapter>)>;

// Builds the ObjectModel named by spec.object (kv|counter|bank|queue|lock).
std::shared_ptr<const object::ObjectModel> make_object_model(
    const std::string& name);

}  // namespace cht::chaos
