// Paxos Quorum Leases (Moraru, Andersen, Kaminsky; SoCC'14) — the lease
// *mechanism* only, as contrasted by the paper's Section 5:
//
//   - lease renewal involves a majority of *grantors* talking to every
//     leaseholder: Theta(n^2) messages per renewal, versus Theta(n) for the
//     paper's leader-granted leases;
//   - because PQL uses elapsed-time timers instead of synchronized clocks,
//     each grantor-leaseholder pair needs a four-message (two round-trip)
//     exchange per renewal — Promise / PromiseAck / Guarantee / GuaranteeAck
//     — versus the paper's single one-way LeaseGrant;
//   - a write revokes leases: grantors notify leaseholders and the write
//     waits for revocation acks (or expiry), and reads block while any
//     write is pending, conflicting or not; under a steady write stream the
//     guarantee never stays valid, permanently disabling local reads.
//
// We do not re-implement PQL's Paxos-based leaseholder-set agreement (the
// paper's third contrast point): the consensus substrate is shared with our
// core algorithm in the comparison benches. This module provides the
// renewal/revocation traffic and lease-validity timeline used by experiments
// E4/E5.
#pragma once

#include <cstdint>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "core/clock_guard.h"
#include "sim/process.h"

namespace cht::baselines {

struct PqlConfig {
  Duration renewal_interval = Duration::millis(30);
  Duration lease_duration = Duration::millis(120);
  // One-way delay budget used for the guard that a grantor's guarantee
  // expires at the grantor no later than at the leaseholder.
  Duration guard = Duration::millis(10);
  // After a revocation, guarantees already in flight (issued before the
  // revoke) must not resurrect the lease; the leaseholder ignores incoming
  // guarantees for this long (< renewal_interval, so the next full renewal
  // round re-establishes the lease).
  Duration revoke_quiet = Duration::millis(25);
  // Clock-health guard (core/clock_guard.h). PQL's elapsed-time timers are
  // less clock-sensitive than synchronized-clock leases, but the simulated
  // timers still tick on a skewable local clock, so a clock-suspect process
  // degrades lease_active() to false (callers fall back to quorum reads).
  core::ClockGuardConfig clock_guard;
};

namespace msg {
inline constexpr const char* kPromise = "pql.promise";
inline constexpr const char* kPromiseAck = "pql.promiseack";
inline constexpr const char* kGuarantee = "pql.guarantee";
inline constexpr const char* kGuaranteeAck = "pql.guaranteeack";
inline constexpr const char* kRevoke = "pql.revoke";
inline constexpr const char* kRevokeAck = "pql.revokeack";

struct Promise {
  std::int64_t round;
};
struct PromiseAck {
  std::int64_t round;
};
struct Guarantee {
  std::int64_t round;
};
struct GuaranteeAck {
  std::int64_t round;
};
struct Revoke {
  std::int64_t write_seq;
};
struct RevokeAck {
  std::int64_t write_seq;
};
}  // namespace msg

// Every process is both a grantor and a leaseholder (the common PQL
// deployment the paper compares against).
class PqlProcess : public sim::Process {
 public:
  explicit PqlProcess(PqlConfig config)
      : config_(config), clock_guard_(config_.clock_guard) {}

  void on_start() override;
  // Recovers the grantor round (synced before each Promise broadcast, so a
  // restarted grantor can never reuse a round number) and rejoins with all
  // leaseholder-side guarantees conservatively dropped.
  void on_restart() override;
  void on_message(const sim::Message& message) override;

  // True iff this process currently holds unexpired guarantees from a
  // majority of grantors and no revocation is in progress against it.
  bool lease_active();

  // Initiates a write as this process (playing the quorum's proposer):
  // revokes all leases and returns (via the simulator's timeline) once all
  // leaseholders acked or their leases expired. Completion is observable via
  // writes_completed().
  void begin_write();
  std::int64_t writes_completed() const { return writes_completed_; }

  struct Stats {
    std::int64_t renewals_started = 0;
    std::int64_t guarantees_received = 0;
    std::int64_t revocations_received = 0;
    // Clock guard metering: suspect-state flips, and lease_active() calls
    // that would have answered true but were degraded to false by suspicion.
    std::int64_t clock_suspect_transitions = 0;
    std::int64_t lease_checks_degraded = 0;
  };
  const Stats& stats() const { return stats_; }
  const core::ClockSkewGuard& clock_guard() const { return clock_guard_; }

 private:
  struct PendingWrite {
    std::int64_t seq;
    std::vector<bool> acked;
    sim::EventHandle expiry_timer;
  };

  void renewal_tick();
  void maybe_finish_write();

  PqlConfig config_;

  // Grantor side.
  std::int64_t round_ = 0;

  // Leaseholder side: per grantor, the expiry (real time approximated by the
  // local timer timeline) of the last guarantee.
  std::vector<RealTime> guarantee_expiry_;
  RealTime revoke_quiet_until_ = RealTime::min();

  // Writer side.
  std::int64_t write_seq_ = 0;
  std::vector<PendingWrite> pending_writes_;
  std::int64_t writes_completed_ = 0;

  Stats stats_;
  core::ClockSkewGuard clock_guard_;
};

}  // namespace cht::baselines
