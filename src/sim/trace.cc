#include "sim/trace.h"

namespace cht::sim {

void Trace::dump(std::ostream& os, std::size_t limit,
                 const std::string& category_prefix) const {
  std::vector<const TraceEvent*> selected;
  for (const auto& event : events_) {
    if (!category_prefix.empty() &&
        event.category.rfind(category_prefix, 0) != 0) {
      continue;
    }
    selected.push_back(&event);
  }
  const std::size_t start =
      (limit != 0 && selected.size() > limit) ? selected.size() - limit : 0;
  for (std::size_t i = start; i < selected.size(); ++i) {
    const TraceEvent& event = *selected[i];
    os << "[" << event.at.to_millis_f() << " ms] ";
    if (event.process.valid()) os << event.process << " ";
    os << event.category;
    if (!event.detail.empty()) os << ": " << event.detail;
    os << "\n";
  }
}

}  // namespace cht::sim
