// Minimal leveled logging, off by default.
//
// The simulator is single-threaded, so no synchronization is needed. Logging
// is controlled by a global level so tests and benches stay quiet unless a
// failing scenario is being debugged (set CHT_LOG_LEVEL=debug in the
// environment or call set_log_level).
#pragma once

#include <iostream>
#include <sstream>
#include <string_view>

namespace cht {

enum class LogLevel { kDebug = 0, kInfo = 1, kWarn = 2, kError = 3, kOff = 4 };

LogLevel log_level();
void set_log_level(LogLevel level);

namespace detail {

class LogLine {
 public:
  LogLine(LogLevel level, std::string_view tag) {
    stream_ << "[" << name(level) << "][" << tag << "] ";
  }
  ~LogLine() {
    stream_ << "\n";
    std::cerr << stream_.str();
  }
  template <class T>
  LogLine& operator<<(const T& value) {
    stream_ << value;
    return *this;
  }

 private:
  static constexpr std::string_view name(LogLevel level) {
    switch (level) {
      case LogLevel::kDebug: return "DEBUG";
      case LogLevel::kInfo: return "INFO ";
      case LogLevel::kWarn: return "WARN ";
      case LogLevel::kError: return "ERROR";
      case LogLevel::kOff: return "OFF";
    }
    return "?";
  }
  std::ostringstream stream_;
};

}  // namespace detail
}  // namespace cht

#define CHT_LOG(level, tag)                       \
  if (::cht::log_level() > (level)) {             \
  } else                                          \
    ::cht::detail::LogLine((level), (tag))

#define CHT_DEBUG(tag) CHT_LOG(::cht::LogLevel::kDebug, (tag))
#define CHT_INFO(tag) CHT_LOG(::cht::LogLevel::kInfo, (tag))
#define CHT_WARN(tag) CHT_LOG(::cht::LogLevel::kWarn, (tag))
#define CHT_ERROR(tag) CHT_LOG(::cht::LogLevel::kError, (tag))
