// Linearizability checker (Wing & Gong search with memoized pruning).
//
// Decides whether a history has a linearization: a total order of its
// operations, consistent with real-time precedence (op A before op B if A's
// response precedes B's invocation), such that running the operations in
// that order through the object model reproduces every completed operation's
// response. Pending operations (no response) may take effect at any point
// after their invocation, or never.
//
// The search linearizes operations in invocation order with a bounded
// "out-of-order window" of concurrently open operations, memoizing visited
// (frontier, state) configurations. With the bounded concurrency of our
// workloads this is fast for histories of tens of thousands of operations;
// it is exponential in the worst case (the problem is NP-complete).
#pragma once

#include <string>
#include <vector>

#include "checker/history.h"
#include "object/object.h"

namespace cht::checker {

struct LinearizabilityResult {
  bool linearizable = false;
  // False iff the search exhausted its state budget before reaching a
  // verdict (then `linearizable` is false but means "unknown", not "no").
  // Callers running unbounded searches can ignore this: it is always true.
  bool decided = true;
  // On success: indices into the input history in linearization order
  // (pending operations that never took effect are omitted).
  std::vector<std::size_t> order;
  std::string explanation;  // on failure, a short diagnostic
};

// `max_states` bounds the number of distinct memoized search states explored
// (0 = unlimited). The bound is a safety valve for adversarial histories
// with huge concurrency windows (the problem is NP-complete); when it trips,
// the result has decided == false.
LinearizabilityResult check_linearizable(const object::ObjectModel& model,
                                         std::vector<HistoryOp> history,
                                         std::size_t max_states = 0);

// Checks only the RMW sub-history (the paper's robustness claim under clock
// desynchronization: the execution *excluding reads* remains linearizable).
LinearizabilityResult check_rmw_subhistory_linearizable(
    const object::ObjectModel& model, const std::vector<HistoryOp>& history,
    std::size_t max_states = 0);

}  // namespace cht::checker
