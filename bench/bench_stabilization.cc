// E10 — Behaviour across the global stabilization time (paper model, S1).
//
// Claim: before GST the system is asynchronous (arbitrary delays, loss) and
// operations may take arbitrarily long; after GST, RMWs commit in a few
// delta, reads become local and non-blocking, and only LeaseGrant messages
// remain on the red path. We submit a steady mixed workload across GST and
// print a per-interval timeline of op latencies and blocked-read counts.
#include <iostream>
#include <memory>

#include "common/bench_util.h"
#include "common/experiment.h"
#include "object/kv_object.h"

int main(int argc, char** argv) {
  using namespace cht;
  using namespace cht::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  ExperimentResult result("stabilization", args);
  result.begin(
      "E10: operation latency timeline across GST",
      "GST = 3.0 s; pre-GST: delays up to 250 ms, 20% loss; post-GST:\n"
      "delays <= delta = 10 ms. Steady workload: 1 write + 4 reads per\n"
      "100 ms window, submitters round-robin.");

  harness::ClusterConfig config;
  config.n = 5;
  config.seed = 1001;
  config.delta = Duration::millis(10);
  config.gst = RealTime::zero() + Duration::seconds(3);
  config.pre_gst_loss = 0.2;
  config.pre_gst_delay_max = Duration::millis(250);
  harness::Cluster cluster(config, std::make_shared<object::KVObject>());

  struct Sample {
    RealTime submitted;
    bool is_read;
    std::size_t index;
  };
  std::vector<Sample> samples;

  const Duration step = Duration::millis(100);
  const int total_steps = 60;  // 6 seconds: 3 before GST, 3 after
  for (int s = 0; s < total_steps; ++s) {
    const std::size_t base = cluster.history().ops().size();
    cluster.submit(s % cluster.n(), object::KVObject::put("k", std::to_string(s)));
    samples.push_back({cluster.sim().now(), false, base});
    for (int r = 0; r < 4; ++r) {
      samples.push_back({cluster.sim().now(), true, base + 1 + r});
      cluster.submit((s + r) % cluster.n(), object::KVObject::get("k"));
    }
    cluster.run_for(step);
  }
  cluster.await_quiesce(Duration::seconds(120));

  result.columns({"window (s)", "phase", "writes p50 (ms)", "writes max (ms)",
                  "reads p50 (ms)", "reads max (ms)", "reads still pending"});
  const auto& ops = cluster.history().ops();
  metrics::LatencyRecorder post_gst_reads, post_gst_writes;
  for (int w = 0; w < 6; ++w) {
    const RealTime lo = RealTime::zero() + Duration::seconds(w);
    const RealTime hi = lo + Duration::seconds(1);
    metrics::LatencyRecorder writes, reads;
    int pending = 0;
    for (const auto& sample : samples) {
      if (sample.submitted < lo || sample.submitted >= hi) continue;
      const auto& record = ops.at(sample.index);
      if (!record.completed()) {
        ++pending;
        continue;
      }
      (sample.is_read ? reads : writes).record(record.latency());
      if (w >= 3) {
        (sample.is_read ? post_gst_reads : post_gst_writes)
            .record(record.latency());
      }
    }
    auto cell = [](const metrics::LatencyRecorder& r, bool max) {
      if (r.empty()) return std::string("-");
      return metrics::Table::num((max ? r.max() : r.p50()).to_millis_f(), 1);
    };
    result.row({std::to_string(w) + ".." + std::to_string(w + 1),
                w < 3 ? "pre-GST (async, lossy)" : "post-GST (delta bound)",
                cell(writes, false), cell(writes, true), cell(reads, false),
                cell(reads, true),
                metrics::Table::num(static_cast<std::int64_t>(pending))});
  }
  result.config("across-gst", cluster.config(), cluster.overrides());
  result.observe("across-gst", cluster);
  result.latency("post-gst-reads", post_gst_reads);
  result.latency("post-gst-writes", post_gst_writes);
  result.note(
      "Expected shape: pre-GST windows show large/irregular\n"
      "latencies (possibly hundreds of ms); post-GST writes settle\n"
      "to ~2-3*delta and reads to ~0 ms (local), with nothing left\n"
      "pending.");
  result.end();
  return result.finish();
}
