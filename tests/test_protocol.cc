// White-box protocol tests: a single core::Replica surrounded by scripted
// "puppet" peers. Each test hand-crafts the exact message exchanges of the
// paper's pseudocode and checks the replica's visible reaction — estimate
// adoption rules, the promise mechanism, ack conditions, lease membership,
// batch serving.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "core/replica.h"
#include "leader/enhanced_leader.h"
#include "leader/omega.h"
#include "object/register_object.h"
#include "sim/simulation.h"

namespace cht {
namespace {

using core::Batch;
using core::BatchOp;
using object::RegisterObject;

// Records everything it receives; sends only when scripted to.
class Puppet : public sim::Process {
 public:
  void on_message(const sim::Message& message) override {
    received.push_back(message);
  }
  std::vector<sim::Message> received;

  int count(std::string_view type) const {
    int n = 0;
    for (const auto& m : received) {
      if (m.is(type)) ++n;
    }
    return n;
  }
  const sim::Message* last(std::string_view type) const {
    for (auto it = received.rbegin(); it != received.rend(); ++it) {
      if (it->is(type)) return &*it;
    }
    return nullptr;
  }
};

// Fixture: replica under test is process 4; processes 0-3 are puppets.
// Puppet 0 plays the (believed) leader: it emits Omega heartbeats so the
// replica never considers itself leader.
class ProtocolTest : public ::testing::Test {
 protected:
  ProtocolTest() : sim_(make_config()) {
    const auto cc = core::Config::defaults_for(delta_, Duration::zero());
    for (int i = 0; i < 4; ++i) sim_.add_process(std::make_unique<Puppet>());
    sim_.add_process(std::make_unique<core::Replica>(
        std::make_shared<RegisterObject>(), cc));
    sim_.start();
    // Keep puppet 0 "alive" for the replica's Omega.
    heartbeat_tick();
  }

  static sim::SimulationConfig make_config() {
    sim::SimulationConfig c;
    c.seed = 42;
    c.epsilon = Duration::zero();  // all clocks = real time
    c.network.gst = RealTime::zero();
    c.network.delta = Duration::millis(2);
    c.network.delta_min = Duration::millis(1);
    return c;
  }

  void heartbeat_tick() {
    puppet(0).send(replica_id(), leader::OmegaDetector::kHeartbeatType,
                   0);
    sim_.at(sim_.now() + Duration::millis(5), [this] { heartbeat_tick(); });
  }

  Puppet& puppet(int i) { return sim_.process_as<Puppet>(ProcessId(i)); }
  core::Replica& replica() {
    return sim_.process_as<core::Replica>(ProcessId(4));
  }
  static ProcessId replica_id() { return ProcessId(4); }

  void run(Duration d) { sim_.run_until(sim_.now() + d); }

  LocalTime lt(std::int64_t us) { return LocalTime::micros(us); }

  Batch batch_of(const std::string& value, int proc = 0, std::int64_t seq = 1) {
    return Batch{BatchOp{OperationId{ProcessId(proc), seq},
                         RegisterObject::write(value)}};
  }

  Duration delta_ = Duration::millis(2);
  sim::Simulation sim_;
};

TEST_F(ProtocolTest, PrepareIsAdoptedAndAcked) {
  const Batch ops = batch_of("a");
  puppet(0).send(replica_id(), core::msg::kPrepare,
                 core::msg::Prepare{ops, lt(1000), 1, {}});
  run(Duration::millis(10));
  ASSERT_EQ(puppet(0).count(core::msg::kPrepareAck), 1);
  const auto& ack = puppet(0).last(core::msg::kPrepareAck)
                        ->as<core::msg::PrepareAck>();
  EXPECT_EQ(ack.leader_time, lt(1000));
  EXPECT_EQ(ack.number, 1);
  ASSERT_TRUE(replica().snapshot().estimate.has_value());
  EXPECT_EQ(replica().snapshot().estimate->k, 1);
  EXPECT_EQ(replica().snapshot().estimate->ts, lt(1000));
  EXPECT_EQ(replica().snapshot().estimate->ops, ops);
}

TEST_F(ProtocolTest, StalePrepareIsIgnoredAfterFresherEstimate) {
  puppet(0).send(replica_id(), core::msg::kPrepare,
                 core::msg::Prepare{batch_of("new"), lt(2000), 1, {}});
  run(Duration::millis(10));
  ASSERT_EQ(puppet(0).count(core::msg::kPrepareAck), 1);
  // An older leader's Prepare for the same slot must not be adopted.
  puppet(1).send(replica_id(), core::msg::kPrepare,
                 core::msg::Prepare{batch_of("old"), lt(500), 1, {}});
  run(Duration::millis(10));
  EXPECT_EQ(puppet(1).count(core::msg::kPrepareAck), 0);
  EXPECT_EQ(replica().snapshot().estimate->ts, lt(2000));
}

TEST_F(ProtocolTest, EstReqPromiseBlocksOlderPrepares) {
  // Answering a newer leader's EstReq is a promise: Prepares from older
  // leader times must no longer be acknowledged.
  puppet(1).send(replica_id(), core::msg::kEstReq, core::msg::EstReq{lt(5000)});
  run(Duration::millis(10));
  ASSERT_EQ(puppet(1).count(core::msg::kEstReply), 1);
  puppet(0).send(replica_id(), core::msg::kPrepare,
                 core::msg::Prepare{batch_of("x"), lt(4000), 1, {}});
  run(Duration::millis(10));
  EXPECT_EQ(puppet(0).count(core::msg::kPrepareAck), 0);
  EXPECT_FALSE(replica().snapshot().estimate.has_value());
}

TEST_F(ProtocolTest, StaleEstReqGetsNoReply) {
  puppet(1).send(replica_id(), core::msg::kEstReq, core::msg::EstReq{lt(5000)});
  run(Duration::millis(10));
  puppet(2).send(replica_id(), core::msg::kEstReq, core::msg::EstReq{lt(4000)});
  run(Duration::millis(10));
  EXPECT_EQ(puppet(2).count(core::msg::kEstReply), 0);
}

TEST_F(ProtocolTest, EstReplyCarriesEstimateAndPreviousBatch) {
  // Commit batch 1, then prepare batch 2; an EstReq must yield the estimate
  // (batch 2) together with committed batch 1 (invariant I2 in transit).
  const Batch b1 = batch_of("one", 0, 1);
  const Batch b2 = batch_of("two", 0, 2);
  puppet(0).send(replica_id(), core::msg::kPrepare,
                 core::msg::Prepare{b1, lt(1000), 1, {}});
  run(Duration::millis(5));
  puppet(0).send(replica_id(), core::msg::kCommit, core::msg::Commit{b1, 1});
  run(Duration::millis(5));
  puppet(0).send(replica_id(), core::msg::kPrepare,
                 core::msg::Prepare{b2, lt(1000), 2, b1});
  run(Duration::millis(5));
  puppet(1).send(replica_id(), core::msg::kEstReq, core::msg::EstReq{lt(9000)});
  run(Duration::millis(10));
  const auto* reply_msg = puppet(1).last(core::msg::kEstReply);
  ASSERT_NE(reply_msg, nullptr);
  const auto& reply = reply_msg->as<core::msg::EstReply>();
  ASSERT_TRUE(reply.estimate.has_value());
  EXPECT_EQ(reply.estimate->k, 2);
  EXPECT_EQ(reply.estimate->ops, b2);
  ASSERT_TRUE(reply.prev_batch.has_value());
  EXPECT_EQ(*reply.prev_batch, b1);
}

TEST_F(ProtocolTest, CommitAppliesInOrderAndFillsGaps) {
  const Batch b1 = batch_of("one", 0, 1);
  const Batch b2 = batch_of("two", 0, 2);
  // Deliver commit 2 first: the replica must fetch batch 1 before applying.
  puppet(0).send(replica_id(), core::msg::kCommit, core::msg::Commit{b2, 2});
  run(Duration::millis(10));
  EXPECT_EQ(replica().snapshot().applied_upto, 0);
  EXPECT_GT(puppet(0).count(core::msg::kBatchRequest) +
                puppet(1).count(core::msg::kBatchRequest),
            0)
      << "replica should be requesting the missing batch 1";
  puppet(1).send(replica_id(), core::msg::kBatchReply,
                 core::msg::BatchReply{1, b1});
  run(Duration::millis(10));
  EXPECT_EQ(replica().snapshot().applied_upto, 2);
  EXPECT_EQ(replica().applied_state().fingerprint(), "two");
}

TEST_F(ProtocolTest, PrepareStoresPreviousBatch) {
  const Batch b1 = batch_of("one", 0, 1);
  const Batch b2 = batch_of("two", 0, 2);
  // A Prepare for batch 2 carries committed batch 1; the replica must store
  // and apply it even though it never saw Prepare/Commit for 1.
  puppet(0).send(replica_id(), core::msg::kPrepare,
                 core::msg::Prepare{b2, lt(1000), 2, b1});
  run(Duration::millis(10));
  EXPECT_TRUE(replica().snapshot().batches.contains(1));
  EXPECT_EQ(replica().snapshot().applied_upto, 1);
  EXPECT_EQ(puppet(0).count(core::msg::kPrepareAck), 1);
}

TEST_F(ProtocolTest, LeaseGrantOnlyAcceptedWhenMember) {
  // Not in the leaseholder set: replica must ask for reintegration and must
  // not serve reads off this grant.
  puppet(0).send(replica_id(), core::msg::kLeaseGrant,
                 core::msg::LeaseGrant{0, lt(1000), {0, 1, 2, 3}});
  run(Duration::millis(10));
  EXPECT_EQ(puppet(0).count(core::msg::kLeaseRequest), 1);
  EXPECT_FALSE(replica().snapshot().lease.has_value());
  // Included now: lease accepted.
  puppet(0).send(replica_id(), core::msg::kLeaseGrant,
                 core::msg::LeaseGrant{0, lt(2000), {0, 1, 2, 3, 4}});
  run(Duration::millis(10));
  ASSERT_TRUE(replica().snapshot().lease.has_value());
  EXPECT_EQ(replica().snapshot().lease->issued, lt(2000));
}

TEST_F(ProtocolTest, OlderLeaseGrantDoesNotRegress) {
  puppet(0).send(replica_id(), core::msg::kLeaseGrant,
                 core::msg::LeaseGrant{3, lt(5000), {4}});
  run(Duration::millis(5));
  puppet(0).send(replica_id(), core::msg::kLeaseGrant,
                 core::msg::LeaseGrant{2, lt(4000), {4}});
  run(Duration::millis(5));
  ASSERT_TRUE(replica().snapshot().lease.has_value());
  EXPECT_EQ(replica().snapshot().lease->issued, lt(5000));
  EXPECT_EQ(replica().snapshot().lease->batch, 3);
}

TEST_F(ProtocolTest, BatchRequestServedOnlyWhenKnown) {
  const Batch b1 = batch_of("one", 0, 1);
  puppet(2).send(replica_id(), core::msg::kBatchRequest,
                 core::msg::BatchRequest{1});
  run(Duration::millis(10));
  EXPECT_EQ(puppet(2).count(core::msg::kBatchReply), 0);
  puppet(0).send(replica_id(), core::msg::kCommit, core::msg::Commit{b1, 1});
  run(Duration::millis(5));
  puppet(2).send(replica_id(), core::msg::kBatchRequest,
                 core::msg::BatchRequest{1});
  run(Duration::millis(10));
  ASSERT_EQ(puppet(2).count(core::msg::kBatchReply), 1);
  EXPECT_EQ(puppet(2).last(core::msg::kBatchReply)->as<core::msg::BatchReply>().ops,
            b1);
}

TEST_F(ProtocolTest, RmwRequestForwardedToBelievedLeader) {
  // The replica believes puppet 0 is the leader (it heartbeats); a local
  // submit_rmw must be sent there, with periodic retries.
  replica().submit_rmw(RegisterObject::write("w"), core::Replica::Callback());
  run(Duration::millis(10));
  EXPECT_GE(puppet(0).count(core::msg::kRmwRequest), 1);
  run(Duration::millis(30));
  EXPECT_GE(puppet(0).count(core::msg::kRmwRequest), 2) << "no retry observed";
}

TEST_F(ProtocolTest, ReadBlocksOnPendingConflictUntilCommit) {
  const Batch b1 = batch_of("one", 0, 1);
  const Batch b2 = batch_of("two", 0, 2);
  puppet(0).send(replica_id(), core::msg::kPrepare,
                 core::msg::Prepare{b1, lt(1000), 1, {}});
  run(Duration::millis(5));
  puppet(0).send(replica_id(), core::msg::kCommit, core::msg::Commit{b1, 1});
  run(Duration::millis(5));
  // Valid lease for batch 1, then a *pending* conflicting batch 2.
  const LocalTime now = replica().now_local();
  puppet(0).send(replica_id(), core::msg::kLeaseGrant,
                 core::msg::LeaseGrant{1, now, {0, 1, 2, 3, 4}});
  run(Duration::millis(5));
  puppet(0).send(replica_id(), core::msg::kPrepare,
                 core::msg::Prepare{b2, lt(1000), 2, b1});
  run(Duration::millis(5));
  std::optional<std::string> result;
  replica().submit_read(RegisterObject::read(),
                        [&](const object::Response& r) { result = r; });
  EXPECT_FALSE(result.has_value()) << "read must block on pending batch 2";
  puppet(0).send(replica_id(), core::msg::kCommit, core::msg::Commit{b2, 2});
  run(Duration::millis(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, "two");
}

TEST_F(ProtocolTest, ReadWithValidLeaseAndNoConflictIsImmediate) {
  const Batch b1 = batch_of("one", 0, 1);
  puppet(0).send(replica_id(), core::msg::kCommit, core::msg::Commit{b1, 1});
  run(Duration::millis(5));
  const LocalTime now = replica().now_local();
  puppet(0).send(replica_id(), core::msg::kLeaseGrant,
                 core::msg::LeaseGrant{1, now, {0, 1, 2, 3, 4}});
  run(Duration::millis(5));
  std::optional<std::string> result;
  replica().submit_read(RegisterObject::read(),
                        [&](const object::Response& r) { result = r; });
  ASSERT_TRUE(result.has_value()) << "read must complete synchronously";
  EXPECT_EQ(*result, "one");
  EXPECT_EQ(replica().metrics().value("reads_blocked"), 0);
}

TEST_F(ProtocolTest, ReadWithExpiredLeaseWaits) {
  const Batch b1 = batch_of("one", 0, 1);
  puppet(0).send(replica_id(), core::msg::kCommit, core::msg::Commit{b1, 1});
  run(Duration::millis(5));
  // Grant issued far in the past: already expired.
  puppet(0).send(replica_id(), core::msg::kLeaseGrant,
                 core::msg::LeaseGrant{1, lt(1), {0, 1, 2, 3, 4}});
  run(replica().config().lease_period + Duration::millis(5));
  std::optional<std::string> result;
  replica().submit_read(RegisterObject::read(),
                        [&](const object::Response& r) { result = r; });
  EXPECT_FALSE(result.has_value());
  // Fresh grant unblocks it.
  puppet(0).send(replica_id(), core::msg::kLeaseGrant,
                 core::msg::LeaseGrant{1, replica().now_local(),
                                       {0, 1, 2, 3, 4}});
  run(Duration::millis(5));
  ASSERT_TRUE(result.has_value());
  EXPECT_EQ(*result, "one");
}

}  // namespace
}  // namespace cht
