// Harness for clusters of the Viewstamped Replication baseline.
#pragma once

#include <memory>

#include "checker/history.h"
#include "harness/client_pool.h"
#include "harness/cluster.h"  // ClusterConfig
#include "object/object.h"
#include "sim/simulation.h"
#include "vr/vr.h"

namespace cht::harness {

class VrCluster {
 public:
  VrCluster(ClusterConfig config,
            std::shared_ptr<const object::ObjectModel> model);

  sim::Simulation& sim() { return sim_; }
  int n() const { return config_.n; }
  const ClusterConfig& config() const { return config_; }
  vr::VrReplica& replica(int i) {
    return sim_.process_as<vr::VrReplica>(ProcessId(i));
  }
  const object::ObjectModel& model() const { return *model_; }
  checker::HistoryRecorder& history() { return history_; }
  const vr::VrConfig& vr_config() const { return vr_config_; }

  // With config.clients > 0 the operation travels through a networked
  // client (slot i picks client i % clients); see harness::Cluster::submit.
  void submit(int i, object::Operation op);
  client::Client& client(int j) { return clients_.client(j); }
  bool client_path() const { return clients_.enabled(); }

  // Merges all replicas' (and clients', when enabled) registries plus
  // storage counters into `out`; mirrors harness::Cluster.
  void merge_metrics_into(metrics::Registry& out);
  // Power-cycles crashed process i back up with a fresh VrReplica; recovery
  // runs VR Revisited's storage-free nonce protocol (vr.h, on_restart).
  void restart(int i);
  void run_for(Duration d) { sim_.run_until(sim_.now() + d); }
  bool await_quiesce(Duration timeout);
  int primary();  // index of the normal-status primary in the highest view
  bool await_primary(Duration timeout);

  std::size_t completed() const { return completed_; }
  std::size_t submitted() const { return submitted_; }

 private:
  ClusterConfig config_;
  std::shared_ptr<const object::ObjectModel> model_;
  vr::VrConfig vr_config_;
  sim::Simulation sim_;
  ClientPool clients_;
  checker::HistoryRecorder history_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
};

}  // namespace cht::harness
