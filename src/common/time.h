// Strong time types for the partially synchronous model.
//
// The paper distinguishes *real time* (the global simulation timeline) from
// *local time* (the value of a process's clock, synchronized within epsilon
// of other clocks). Mixing the two is the classic bug in lease-based
// protocols, so we make them distinct vocabulary types. Durations are shared
// (a span of local time and a span of real time have the same unit).
//
// All times are int64 microseconds.
#pragma once

#include <compare>
#include <cstdint>
#include <limits>
#include <ostream>

namespace cht {

// A span of time, in microseconds. Valid for both timelines.
class Duration {
 public:
  constexpr Duration() = default;
  static constexpr Duration micros(std::int64_t us) { return Duration(us); }
  static constexpr Duration millis(std::int64_t ms) {
    return Duration(ms * 1000);
  }
  static constexpr Duration seconds(std::int64_t s) {
    return Duration(s * 1'000'000);
  }
  static constexpr Duration zero() { return Duration(0); }
  static constexpr Duration max() {
    return Duration(std::numeric_limits<std::int64_t>::max());
  }

  constexpr std::int64_t to_micros() const { return us_; }
  constexpr double to_millis_f() const { return static_cast<double>(us_) / 1e3; }
  constexpr double to_seconds_f() const {
    return static_cast<double>(us_) / 1e6;
  }

  friend constexpr Duration operator+(Duration a, Duration b) {
    return Duration(a.us_ + b.us_);
  }
  friend constexpr Duration operator-(Duration a, Duration b) {
    return Duration(a.us_ - b.us_);
  }
  friend constexpr Duration operator*(Duration a, std::int64_t k) {
    return Duration(a.us_ * k);
  }
  friend constexpr Duration operator*(std::int64_t k, Duration a) {
    return Duration(a.us_ * k);
  }
  friend constexpr Duration operator/(Duration a, std::int64_t k) {
    return Duration(a.us_ / k);
  }
  constexpr auto operator<=>(const Duration&) const = default;

  friend std::ostream& operator<<(std::ostream& os, Duration d) {
    return os << d.us_ << "us";
  }

 private:
  constexpr explicit Duration(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

namespace detail {

// CRTP base providing point-in-time arithmetic against Duration.
template <class Derived>
class TimePoint {
 public:
  constexpr TimePoint() = default;
  static constexpr Derived micros(std::int64_t us) { return Derived(us); }
  static constexpr Derived zero() { return Derived(0); }
  static constexpr Derived max() {
    return Derived(std::numeric_limits<std::int64_t>::max());
  }
  static constexpr Derived min() {
    return Derived(std::numeric_limits<std::int64_t>::min());
  }

  constexpr std::int64_t to_micros() const { return us_; }
  constexpr double to_millis_f() const { return static_cast<double>(us_) / 1e3; }
  constexpr double to_seconds_f() const {
    return static_cast<double>(us_) / 1e6;
  }

  friend constexpr Derived operator+(Derived a, Duration d) {
    return Derived(a.us_ + d.to_micros());
  }
  friend constexpr Derived operator+(Duration d, Derived a) {
    return Derived(a.us_ + d.to_micros());
  }
  friend constexpr Derived operator-(Derived a, Duration d) {
    return Derived(a.us_ - d.to_micros());
  }
  friend constexpr Duration operator-(Derived a, Derived b) {
    return Duration::micros(a.us_ - b.us_);
  }
  constexpr auto operator<=>(const TimePoint&) const = default;

 protected:
  constexpr explicit TimePoint(std::int64_t us) : us_(us) {}
  std::int64_t us_ = 0;
};

}  // namespace detail

// A point on the global (simulation) timeline.
class RealTime : public detail::TimePoint<RealTime> {
 public:
  constexpr RealTime() = default;
  constexpr explicit RealTime(std::int64_t us) : TimePoint(us) {}
  friend std::ostream& operator<<(std::ostream& os, RealTime t) {
    return os << "r" << t.to_micros() << "us";
  }
};

// A point as read off some process's local clock.
class LocalTime : public detail::TimePoint<LocalTime> {
 public:
  constexpr LocalTime() = default;
  constexpr explicit LocalTime(std::int64_t us) : TimePoint(us) {}
  friend std::ostream& operator<<(std::ostream& os, LocalTime t) {
    return os << "l" << t.to_micros() << "us";
  }
};

}  // namespace cht
