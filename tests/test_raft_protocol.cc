// White-box Raft protocol tests: a single RaftReplica driven by scripted
// puppet peers — term handling, vote restrictions, log truncation, commit
// rules.
#include <gtest/gtest.h>

#include <memory>
#include <vector>

#include "object/register_object.h"
#include "raft/raft.h"
#include "sim/simulation.h"

namespace cht {
namespace {

using object::RegisterObject;
using raft::LogEntry;
using raft::RaftReplica;

class RaftPuppet : public sim::Process {
 public:
  void on_message(const sim::Message& message) override {
    received.push_back(message);
  }
  std::vector<sim::Message> received;

  int count(std::string_view type) const {
    int n = 0;
    for (const auto& m : received) {
      if (m.is(type)) ++n;
    }
    return n;
  }
  const sim::Message* last(std::string_view type) const {
    for (auto it = received.rbegin(); it != received.rend(); ++it) {
      if (it->is(type)) return &*it;
    }
    return nullptr;
  }
};

class RaftProtocolTest : public ::testing::Test {
 protected:
  RaftProtocolTest() : sim_(make_config()) {
    raft::RaftConfig rc = raft::RaftConfig::defaults_for(Duration::millis(2));
    // Keep the replica from starting elections during scripted exchanges.
    rc.election_timeout_min = Duration::seconds(100);
    rc.election_timeout_max = Duration::seconds(200);
    for (int i = 0; i < 4; ++i) {
      sim_.add_process(std::make_unique<RaftPuppet>());
    }
    sim_.add_process(std::make_unique<RaftReplica>(
        std::make_shared<RegisterObject>(), rc));
    sim_.start();
  }

  static sim::SimulationConfig make_config() {
    sim::SimulationConfig c;
    c.seed = 9;
    c.epsilon = Duration::zero();
    c.network.gst = RealTime::zero();
    c.network.delta = Duration::millis(2);
    c.network.delta_min = Duration::millis(1);
    return c;
  }

  RaftPuppet& puppet(int i) { return sim_.process_as<RaftPuppet>(ProcessId(i)); }
  RaftReplica& replica() {
    return sim_.process_as<RaftReplica>(ProcessId(4));
  }
  static ProcessId replica_id() { return ProcessId(4); }
  void run(Duration d) {
    // Anchor the target with a no-op event: run_until only advances now() by
    // processing events, and several tests wait out real stretches of idle
    // time (e.g. the leader-stickiness window).
    sim_.after(d, [] {});
    sim_.run_until(sim_.now() + d);
  }

  static LogEntry entry(std::int64_t term, int proc, std::int64_t seq,
                        const std::string& value) {
    return LogEntry{term, OperationId{ProcessId(proc), seq},
                    RegisterObject::write(value)};
  }

  sim::Simulation sim_;
};

TEST_F(RaftProtocolTest, GrantsVoteToUpToDateCandidate) {
  puppet(0).send(replica_id(), raft::msg::kRequestVote,
                 raft::msg::RequestVote{1, 0, 0});
  run(Duration::millis(10));
  ASSERT_EQ(puppet(0).count(raft::msg::kVoteReply), 1);
  const auto& reply =
      puppet(0).last(raft::msg::kVoteReply)->as<raft::msg::VoteReply>();
  EXPECT_TRUE(reply.granted);
  EXPECT_EQ(reply.term, 1);
  EXPECT_EQ(replica().term(), 1);
}

TEST_F(RaftProtocolTest, DoesNotVoteTwiceInSameTerm) {
  puppet(0).send(replica_id(), raft::msg::kRequestVote,
                 raft::msg::RequestVote{1, 0, 0});
  run(Duration::millis(10));
  puppet(1).send(replica_id(), raft::msg::kRequestVote,
                 raft::msg::RequestVote{1, 0, 0});
  run(Duration::millis(10));
  ASSERT_EQ(puppet(1).count(raft::msg::kVoteReply), 1);
  EXPECT_FALSE(
      puppet(1).last(raft::msg::kVoteReply)->as<raft::msg::VoteReply>().granted);
}

TEST_F(RaftProtocolTest, RejectsVoteForStaleLog) {
  // Give the replica a log entry at term 2 via AppendEntries.
  puppet(0).send(replica_id(), raft::msg::kAppendEntries,
                 raft::msg::AppendEntries{2, 0, 0,
                                          {entry(2, 0, 1, "x")}, 0, 0, LocalTime()});
  run(Duration::millis(10));
  EXPECT_EQ(replica().log_size(), 1u);
  // Age out the leader-stickiness window so votes are considered on their
  // merits (this test is about the log up-to-dateness restriction).
  run(Duration::seconds(100));
  // A candidate with an older last-log term must be rejected even in a
  // newer term.
  puppet(1).send(replica_id(), raft::msg::kRequestVote,
                 raft::msg::RequestVote{3, 5, 1});
  run(Duration::millis(10));
  ASSERT_EQ(puppet(1).count(raft::msg::kVoteReply), 1);
  EXPECT_FALSE(
      puppet(1).last(raft::msg::kVoteReply)->as<raft::msg::VoteReply>().granted);
  // One with an equal term and >= length is accepted.
  puppet(2).send(replica_id(), raft::msg::kRequestVote,
                 raft::msg::RequestVote{3, 1, 2});
  run(Duration::millis(10));
  EXPECT_TRUE(
      puppet(2).last(raft::msg::kVoteReply)->as<raft::msg::VoteReply>().granted);
}

TEST_F(RaftProtocolTest, LeaderContactBlocksPromptVotes) {
  // A heartbeat from the term-1 leader...
  puppet(0).send(replica_id(), raft::msg::kAppendEntries,
                 raft::msg::AppendEntries{1, 0, 0, {}, 0, 0, LocalTime()});
  run(Duration::millis(10));
  // ...makes the replica disregard an otherwise acceptable vote request for
  // election_timeout_min (leader stickiness: granting sooner could elect a
  // new leader inside the old leader's read lease).
  puppet(1).send(replica_id(), raft::msg::kRequestVote,
                 raft::msg::RequestVote{2, 0, 0});
  run(Duration::millis(10));
  ASSERT_EQ(puppet(1).count(raft::msg::kVoteReply), 1);
  EXPECT_FALSE(
      puppet(1).last(raft::msg::kVoteReply)->as<raft::msg::VoteReply>().granted);
  EXPECT_EQ(replica().term(), 1);  // disregarded entirely: no term bump
  // Once the window lapses with no further leader contact, the same request
  // is granted.
  run(Duration::seconds(100));
  puppet(1).send(replica_id(), raft::msg::kRequestVote,
                 raft::msg::RequestVote{2, 0, 0});
  run(Duration::millis(10));
  EXPECT_TRUE(
      puppet(1).last(raft::msg::kVoteReply)->as<raft::msg::VoteReply>().granted);
}

TEST_F(RaftProtocolTest, AppendRejectsMismatchedPrev) {
  puppet(0).send(replica_id(), raft::msg::kAppendEntries,
                 raft::msg::AppendEntries{1, 3, 1, {entry(1, 0, 1, "x")}, 0, 0, LocalTime()});
  run(Duration::millis(10));
  ASSERT_EQ(puppet(0).count(raft::msg::kAppendReply), 1);
  const auto& reply =
      puppet(0).last(raft::msg::kAppendReply)->as<raft::msg::AppendReply>();
  EXPECT_FALSE(reply.success);
  EXPECT_EQ(reply.match_index, 0);  // hint: follower log length
  EXPECT_EQ(replica().log_size(), 0u);
}

TEST_F(RaftProtocolTest, ConflictingSuffixIsTruncated) {
  // Term-1 leader appends two entries.
  puppet(0).send(
      replica_id(), raft::msg::kAppendEntries,
      raft::msg::AppendEntries{
          1, 0, 0, {entry(1, 0, 1, "a"), entry(1, 0, 2, "b")}, 0, 0, LocalTime()});
  run(Duration::millis(10));
  EXPECT_EQ(replica().log_size(), 2u);
  // Term-2 leader replaces index 2 with its own entry.
  puppet(1).send(
      replica_id(), raft::msg::kAppendEntries,
      raft::msg::AppendEntries{2, 1, 1, {entry(2, 1, 1, "c")}, 0, 0, LocalTime()});
  run(Duration::millis(10));
  ASSERT_EQ(replica().log_size(), 2u);
  EXPECT_EQ(replica().log()[1].term, 2);
  EXPECT_EQ(replica().log()[1].op.arg, "c");
}

TEST_F(RaftProtocolTest, CommitFollowsLeaderCommit) {
  puppet(0).send(
      replica_id(), raft::msg::kAppendEntries,
      raft::msg::AppendEntries{
          1, 0, 0, {entry(1, 0, 1, "a"), entry(1, 0, 2, "b")}, 1, 0, LocalTime()});
  run(Duration::millis(10));
  EXPECT_EQ(replica().commit_index(), 1);
  EXPECT_EQ(replica().last_applied(), 1);
  // Leader commit beyond our log length is clamped.
  puppet(0).send(replica_id(), raft::msg::kAppendEntries,
                 raft::msg::AppendEntries{1, 2, 1, {}, 99, 0, LocalTime()});
  run(Duration::millis(10));
  EXPECT_EQ(replica().commit_index(), 2);
  EXPECT_EQ(replica().applied_state().fingerprint(), "b");
}

TEST_F(RaftProtocolTest, StaleTermAppendRejected) {
  puppet(0).send(replica_id(), raft::msg::kRequestVote,
                 raft::msg::RequestVote{5, 0, 0});
  run(Duration::millis(10));
  EXPECT_EQ(replica().term(), 5);
  puppet(1).send(replica_id(), raft::msg::kAppendEntries,
                 raft::msg::AppendEntries{3, 0, 0, {entry(3, 1, 1, "x")}, 0, 0, LocalTime()});
  run(Duration::millis(10));
  const auto& reply =
      puppet(1).last(raft::msg::kAppendReply)->as<raft::msg::AppendReply>();
  EXPECT_FALSE(reply.success);
  EXPECT_EQ(reply.term, 5);
  EXPECT_EQ(replica().log_size(), 0u);
}

TEST_F(RaftProtocolTest, DuplicateAppendIsIdempotent) {
  const raft::msg::AppendEntries append{1, 0, 0, {entry(1, 0, 1, "a")}, 1, 0, LocalTime()};
  puppet(0).send(replica_id(), raft::msg::kAppendEntries, append);
  puppet(0).send(replica_id(), raft::msg::kAppendEntries, append);
  run(Duration::millis(10));
  EXPECT_EQ(replica().log_size(), 1u);
  EXPECT_EQ(replica().commit_index(), 1);
  EXPECT_EQ(puppet(0).count(raft::msg::kAppendReply), 2);  // both acked
}

}  // namespace
}  // namespace cht
