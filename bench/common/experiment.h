// ExperimentResult: the one declaration behind both bench outputs.
//
// Replaces the old free-function header/table printing. A bench declares its
// sections (header + table rows), named metrics, cluster configs and
// observability captures through this builder; the builder renders the
// stdout tables exactly as before AND emits the versioned BENCH_<name>.json
// artifact from the same data, so the human-readable and machine-readable
// outputs cannot drift apart.
//
// Every bench main() follows the same shape:
//
//   int main(int argc, char** argv) {
//     auto args = cht::bench::parse_bench_args(argc, argv);   // --smoke, --out=
//     cht::bench::ExperimentResult result("read_latency", args);
//     result.begin("E4: ...", "Claim: ...");
//     result.columns({"algorithm", "p50 (ms)", ...});
//     result.row({...});
//     result.note("Expected shape: ...");
//     result.end();
//     ...
//     return result.finish();   // prints nothing; writes BENCH_read_latency.json
//   }
//
// The artifact schema is pinned in metrics/json.h and documented in
// docs/OBSERVABILITY.md; tools/bench_diff.py validates it in CI.
#pragma once

#include <cstdlib>
#include <fstream>
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "common/bench_util.h"
#include "harness/cluster.h"
#include "metrics/json.h"
#include "metrics/registry.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "sim/network.h"

namespace cht::bench {

struct BenchArgs {
  bool smoke = false;  // tiny op counts for CI bench-smoke
  std::string out;     // artifact path; empty = BENCH_<name>.json in cwd
};

inline BenchArgs parse_bench_args(int argc, char** argv) {
  BenchArgs args;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      args.smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      args.out = arg.substr(6);
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "usage: bench [--smoke] [--out=ARTIFACT.json]\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << arg
                << " (known: --smoke --out=PATH)\n";
      std::exit(2);
    }
  }
  return args;
}

class ExperimentResult {
 public:
  ExperimentResult(std::string name, const BenchArgs& args)
      : ExperimentResult(std::move(name), args.out, args.smoke) {}

  ExperimentResult(std::string name, std::string out_path, bool smoke)
      : name_(std::move(name)),
        out_path_(out_path.empty() ? "BENCH_" + name_ + ".json"
                                   : std::move(out_path)),
        smoke_(smoke),
        metrics_(metrics::json::Value::object()),
        sections_(metrics::json::Value::array()),
        configs_(metrics::json::Value::array()),
        observability_(metrics::json::Value::array()),
        latencies_(metrics::json::Value::array()) {}

  bool smoke() const { return smoke_; }
  // Pick the full-size or the --smoke-size parameter.
  int scaled(int full, int smoke_size) const {
    return smoke_ ? smoke_size : full;
  }

  // --- Sections: one experiment header + table, printed as declared --------
  void begin(const std::string& id, const std::string& claim) {
    std::cout << "\n=== " << id << " ===\n" << claim << "\n\n";
    section_ = metrics::json::Value::object();
    section_.set("id", id);
    section_.set("claim", claim);
    section_rows_ = metrics::json::Value::array();
    section_notes_ = metrics::json::Value::array();
    table_.reset();
    in_section_ = true;
  }

  void columns(std::vector<std::string> headers) {
    auto hs = metrics::json::Value::array();
    for (const auto& h : headers) hs.push(h);
    section_.set("headers", std::move(hs));
    table_ = std::make_unique<metrics::Table>(std::move(headers));
  }

  void row(std::vector<std::string> cells) {
    auto cs = metrics::json::Value::array();
    for (const auto& c : cells) cs.push(c);
    section_rows_.push(std::move(cs));
    if (table_) table_->add_row(std::move(cells));
  }

  // Prose printed after the current section's table (the "expected shape"
  // paragraphs); also lands in the artifact.
  void note(const std::string& text) {
    section_notes_.push(text);
    pending_note_texts_.push_back(text);
  }

  void end() {
    if (!in_section_) return;
    if (table_) table_->print(std::cout);
    for (const auto& text : pending_note_texts_) {
      std::cout << "\n" << text << "\n";
    }
    pending_note_texts_.clear();
    section_.set("rows", std::move(section_rows_));
    section_.set("notes", std::move(section_notes_));
    sections_.push(std::move(section_));
    table_.reset();
    in_section_ = false;
  }

  // --- Flat named metrics --------------------------------------------------
  void metric(const std::string& name, std::int64_t value) {
    metrics_.set(name, value);
  }
  void metric(const std::string& name, double value) {
    metrics_.set(name, value);
  }

  // --- Experiment configuration capture ------------------------------------
  void config(const std::string& label, const harness::ClusterConfig& cluster,
              const core::ConfigOverrides& overrides = {}) {
    auto value = metrics::json::Value::object();
    value.set("label", label);
    value.set("n", cluster.n);
    value.set("seed", static_cast<std::int64_t>(cluster.seed));
    value.set("delta_us", cluster.delta.to_micros());
    value.set("epsilon_us", cluster.epsilon.to_micros());
    value.set("gst_us", cluster.gst.to_micros());
    value.set("pre_gst_loss", cluster.pre_gst_loss);
    auto ov = metrics::json::Value::object();
    for (const auto& [k, v] : overrides.entries()) ov.set(k, v);
    value.set("overrides", std::move(ov));
    configs_.push(std::move(value));
  }

  // --- Observability capture: merged registries + message counts -----------
  // Works for any cluster exposing n(), replica(i).metrics() and sim().
  template <class ClusterT>
  void observe(const std::string& label, ClusterT& cluster) {
    metrics::Registry merged;
    for (int i = 0; i < cluster.n(); ++i) {
      merged.merge_from(cluster.replica(i).metrics());
    }
    observe_registry(label, merged, cluster.sim().network().stats());
  }

  void observe_registry(const std::string& label,
                        const metrics::Registry& registry,
                        const sim::MessageStats& messages) {
    auto value = metrics::json::Value::object();
    value.set("label", label);
    const auto reg = metrics::registry_to_json(registry);
    if (const auto* c = reg.find("counters")) value.set("counters", *c);
    if (const auto* g = reg.find("gauges")) value.set("gauges", *g);
    if (const auto* h = reg.find("histograms")) value.set("histograms", *h);
    auto msgs = metrics::json::Value::object();
    msgs.set("sent", messages.sent);
    msgs.set("delivered", messages.delivered);
    msgs.set("dropped", messages.dropped);
    auto by_type = metrics::json::Value::object();
    for (const auto& [type, count] : messages.sent_by_type) {
      by_type.set(type, count);
    }
    msgs.set("by_type", std::move(by_type));
    value.set("messages", std::move(msgs));
    observability_.push(std::move(value));
  }

  // --- Latency percentiles from a recorder ---------------------------------
  void latency(const std::string& label,
               const metrics::LatencyRecorder& recorder) {
    auto value = metrics::json::Value::object();
    value.set("label", label);
    value.set("count", static_cast<std::int64_t>(recorder.count()));
    value.set("p50_us", recorder.p50().to_micros());
    value.set("p90_us", recorder.percentile(0.9).to_micros());
    value.set("p99_us", recorder.p99().to_micros());
    value.set("max_us", recorder.max().to_micros());
    value.set("mean_us", recorder.mean().to_micros());
    latencies_.push(std::move(value));
  }

  // Writes the artifact. Returns the process exit code (0 on success).
  int finish() {
    end();  // close a dangling section, if any
    auto root = metrics::json::Value::object();
    root.set("schema", metrics::kBenchSchema);
    root.set("schema_version", metrics::kBenchSchemaVersion);
    root.set("name", name_);
    root.set("smoke", smoke_);
    root.set("sections", std::move(sections_));
    root.set("metrics", std::move(metrics_));
    root.set("configs", std::move(configs_));
    root.set("observability", std::move(observability_));
    root.set("latencies", std::move(latencies_));
    std::ofstream out(out_path_);
    if (!out) {
      std::cerr << "cannot write artifact: " << out_path_ << "\n";
      return 1;
    }
    root.write(out);
    out << "\n";
    std::cout << "\nartifact: " << out_path_ << "\n";
    return 0;
  }

 private:
  std::string name_;
  std::string out_path_;
  bool smoke_;
  metrics::json::Value metrics_;
  metrics::json::Value sections_;
  metrics::json::Value configs_;
  metrics::json::Value observability_;
  metrics::json::Value latencies_;
  metrics::json::Value section_ = metrics::json::Value::object();
  metrics::json::Value section_rows_ = metrics::json::Value::array();
  metrics::json::Value section_notes_ = metrics::json::Value::array();
  std::vector<std::string> pending_note_texts_;
  std::unique_ptr<metrics::Table> table_;
  bool in_section_ = false;
};

}  // namespace cht::bench
