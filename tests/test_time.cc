#include "common/time.h"

#include <gtest/gtest.h>

#include <sstream>

namespace cht {
namespace {

TEST(DurationTest, Arithmetic) {
  EXPECT_EQ((Duration::millis(3) + Duration::micros(500)).to_micros(), 3500);
  EXPECT_EQ((Duration::seconds(1) - Duration::millis(1)).to_micros(), 999000);
  EXPECT_EQ((Duration::millis(2) * 3).to_micros(), 6000);
  EXPECT_EQ((3 * Duration::millis(2)).to_micros(), 6000);
  EXPECT_EQ((Duration::millis(9) / 3).to_micros(), 3000);
}

TEST(DurationTest, Comparisons) {
  EXPECT_LT(Duration::millis(1), Duration::millis(2));
  EXPECT_EQ(Duration::millis(1), Duration::micros(1000));
  EXPECT_GE(Duration::zero(), Duration::zero());
}

TEST(DurationTest, Conversions) {
  EXPECT_DOUBLE_EQ(Duration::micros(1500).to_millis_f(), 1.5);
  EXPECT_DOUBLE_EQ(Duration::millis(2500).to_seconds_f(), 2.5);
}

TEST(TimePointTest, RealTimeArithmetic) {
  const RealTime t = RealTime::zero() + Duration::millis(5);
  EXPECT_EQ(t.to_micros(), 5000);
  EXPECT_EQ((t + Duration::millis(1)).to_micros(), 6000);
  EXPECT_EQ((t - Duration::millis(1)).to_micros(), 4000);
  EXPECT_EQ(t - RealTime::zero(), Duration::millis(5));
}

TEST(TimePointTest, LocalAndRealAreDistinctTypes) {
  // LocalTime and RealTime must not be interchangeable; this is a
  // compile-time property, checked here via traits.
  static_assert(!std::is_convertible_v<LocalTime, RealTime>);
  static_assert(!std::is_convertible_v<RealTime, LocalTime>);
  SUCCEED();
}

TEST(TimePointTest, Ordering) {
  EXPECT_LT(LocalTime::zero(), LocalTime::zero() + Duration::micros(1));
  EXPECT_LT(LocalTime::min(), LocalTime::zero());
  EXPECT_LT(LocalTime::zero(), LocalTime::max());
}

TEST(TimePointTest, Streaming) {
  std::ostringstream os;
  os << (RealTime::zero() + Duration::micros(7)) << " "
     << (LocalTime::zero() + Duration::micros(8)) << " " << Duration::micros(9);
  EXPECT_EQ(os.str(), "r7us l8us 9us");
}

}  // namespace
}  // namespace cht
