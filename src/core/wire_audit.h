// Compile-time audit of wire-format structs (detlint rule D5's runtime-free
// counterpart). Pulled in by tests only — it includes every protocol's
// message header, so it must never be included from protocol code itself.
//
// Two tiers:
//   - Fixed-size payloads (no vectors/strings/optionals) must be trivially
//     copyable and standard-layout: they could be memcpy'd onto a real wire
//     verbatim, and a default-constructed instance has no indeterminate
//     bits (every scalar field carries a member initializer, enforced
//     statically by detlint D5 and exercised here via value-initialization
//     equality in the determinism tests).
//   - Variable-size payloads (carrying Batch/std::vector/std::string)
//     cannot be trivially copyable, but their handles must still be
//     default-constructible and copyable so the simulated network's
//     std::any envelopes behave like value serialization.
#pragma once

#include <type_traits>

#include "client/wire.h"
#include "common/time.h"
#include "common/types.h"
#include "core/messages.h"
#include "raft/raft.h"
#include "sim/message.h"
#include "vr/vr.h"

namespace cht::audit {

template <class T>
inline constexpr bool wire_scalar_v =
    std::is_trivially_copyable_v<T> && std::is_standard_layout_v<T> &&
    std::is_default_constructible_v<T>;

template <class T>
inline constexpr bool wire_value_v =
    std::is_default_constructible_v<T> && std::is_copy_constructible_v<T> &&
    std::is_copy_assignable_v<T>;

// --- Identifier & time vocabulary (common/) ---------------------------------
static_assert(wire_scalar_v<ProcessId>);
static_assert(wire_scalar_v<OperationId>);
static_assert(wire_scalar_v<Duration>);
static_assert(wire_scalar_v<LocalTime>);
static_assert(wire_scalar_v<RealTime>);
static_assert(wire_scalar_v<BatchNumber>);

// --- Paper algorithm (core/messages.h) --------------------------------------
static_assert(wire_scalar_v<core::Lease>);
static_assert(wire_scalar_v<core::msg::EstReq>);
static_assert(wire_scalar_v<core::msg::PrepareAck>);
static_assert(wire_scalar_v<core::msg::LeaseRequest>);
static_assert(wire_scalar_v<core::msg::BatchRequest>);
static_assert(wire_value_v<core::Estimate>);
static_assert(wire_value_v<core::msg::RmwRequest>);
static_assert(wire_value_v<core::msg::EstReply>);
static_assert(wire_value_v<core::msg::Prepare>);
static_assert(wire_value_v<core::msg::Commit>);
static_assert(wire_value_v<core::msg::LeaseGrant>);
static_assert(wire_value_v<core::msg::BatchReply>);
static_assert(wire_value_v<core::msg::ReadRequest>);
static_assert(wire_value_v<core::msg::ReadReply>);

// --- Raft baseline (raft/raft.h) --------------------------------------------
static_assert(wire_scalar_v<raft::msg::RequestVote>);
static_assert(wire_scalar_v<raft::msg::VoteReply>);
static_assert(wire_scalar_v<raft::msg::AppendReply>);
static_assert(wire_value_v<raft::LogEntry>);
static_assert(wire_value_v<raft::msg::AppendEntries>);
static_assert(wire_value_v<raft::msg::ClientRmw>);
static_assert(wire_value_v<raft::msg::ClientRead>);
static_assert(wire_value_v<raft::msg::ReadReply>);

// --- Viewstamped Replication baseline (vr/vr.h) -----------------------------
static_assert(wire_scalar_v<vr::msg::PrepareOk>);
static_assert(wire_scalar_v<vr::msg::Commit>);
static_assert(wire_scalar_v<vr::msg::StartViewChange>);
static_assert(wire_scalar_v<vr::msg::GetState>);
static_assert(wire_value_v<vr::VrLogEntry>);
static_assert(wire_value_v<vr::msg::Request>);
static_assert(wire_value_v<vr::msg::Prepare>);
static_assert(wire_value_v<vr::msg::DoViewChange>);
static_assert(wire_value_v<vr::msg::StartView>);
static_assert(wire_value_v<vr::msg::NewState>);

// --- Networked client path (client/wire.h) ----------------------------------
static_assert(wire_scalar_v<client::msg::Redirect>);
static_assert(wire_value_v<client::msg::ClientRequest>);
static_assert(wire_value_v<client::msg::ClientReply>);

// --- Simulator envelope (sim/message.h) -------------------------------------
static_assert(wire_value_v<sim::Message>);

}  // namespace cht::audit
