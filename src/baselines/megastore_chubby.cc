#include "baselines/megastore_chubby.h"

#include <string>

#include "common/assert.h"
#include "sim/storage.h"

namespace cht::baselines {

// ===========================================================================
// ChubbyService
// ===========================================================================

void ChubbyService::on_start() {
  session_expiry_.assign(cluster_size(), LocalTime::min());
}

void ChubbyService::on_restart() {
  session_expiry_.assign(cluster_size(), LocalTime::min());
  for (const std::string& key : storage().keys_with_prefix("session.")) {
    const int client = std::stoi(key.substr(8));
    session_expiry_.at(static_cast<std::size_t>(client)) =
        LocalTime::micros(std::stoll(*storage().read(key)));
  }
}

void ChubbyService::persist_session(int client) {
  storage().write("session." + std::to_string(client),
                  std::to_string(session_expiry_.at(
                      static_cast<std::size_t>(client)).to_micros()));
}

bool ChubbyService::session_alive(int client) {
  return session_expiry_.at(client) > now_local();
}

void ChubbyService::on_message(const sim::Message& message) {
  if (message.is(chubby_msg::kKeepAlive)) {
    session_expiry_.at(message.from.index()) =
        now_local() + config_.session_ttl;
    // Durable before the grant leaves: a restarted service must not think a
    // granted, still-running session has expired. KeepAlives from several
    // clients pending in one group-commit window share a covering sync and
    // their grants leave as one burst.
    persist_session(message.from.index());
    const ProcessId client = message.from;
    request_sync([this, client] {
      send(client, chubby_msg::kLeaseGrant,
           chubby_msg::LeaseGrant{config_.session_ttl});
    });
  } else if (message.is(chubby_msg::kQuery)) {
    const auto& query = message.as<chubby_msg::Query>();
    send(message.from, chubby_msg::kQueryReply,
         chubby_msg::QueryReply{query.subject, query.query_id,
                                !session_alive(query.subject)});
  } else {
    CHT_UNREACHABLE("unknown message type for chubby service");
  }
}

// ===========================================================================
// MegastoreNode
// ===========================================================================

void MegastoreNode::on_start() { keepalive_tick(); }

void MegastoreNode::keepalive_tick() {
  if (keepalives_enabled_) {
    send(chubby_, chubby_msg::kKeepAlive, chubby_msg::KeepAlive{});
  }
  schedule_after(config_.keepalive_interval, [this] { keepalive_tick(); });
}

bool MegastoreNode::has_chubby_contact() const {
  return lease_until_ > LocalTime::min();
}

void MegastoreNode::begin_write(std::set<int> non_ackers) {
  const std::int64_t seq = ++write_seq_;
  PendingWrite write;
  write.awaiting_invalidation = std::move(non_ackers);
  pending_.emplace(seq, std::move(write));
  if (pending_.at(seq).awaiting_invalidation.empty()) {
    pending_.erase(seq);
    ++writes_completed_;
    return;
  }
  query_tick(seq);
}

void MegastoreNode::query_tick(std::int64_t write_seq) {
  auto it = pending_.find(write_seq);
  if (it == pending_.end()) return;
  // Ask Chubby about every straggler still awaiting invalidation. If we are
  // cut off from Chubby, these queries go nowhere — and there is no other
  // authority to consult: the write stays blocked (the paper's point).
  for (int subject : it->second.awaiting_invalidation) {
    const std::int64_t qid = ++query_seq_;
    query_to_write_[qid] = write_seq;
    send(chubby_, chubby_msg::kQuery, chubby_msg::Query{subject, qid});
  }
  it->second.retry_timer = schedule_after(
      config_.query_retry, [this, write_seq] { query_tick(write_seq); });
}

void MegastoreNode::on_message(const sim::Message& message) {
  if (message.is(chubby_msg::kLeaseGrant)) {
    lease_until_ = now_local() + message.as<chubby_msg::LeaseGrant>().ttl;
  } else if (message.is(chubby_msg::kQueryReply)) {
    const auto& reply = message.as<chubby_msg::QueryReply>();
    auto mapped = query_to_write_.find(reply.query_id);
    if (mapped == query_to_write_.end()) return;
    const std::int64_t write_seq = mapped->second;
    query_to_write_.erase(mapped);
    if (!reply.session_expired) return;
    auto it = pending_.find(write_seq);
    if (it == pending_.end()) return;
    it->second.awaiting_invalidation.erase(reply.subject);
    if (it->second.awaiting_invalidation.empty()) {
      it->second.retry_timer.cancel();
      pending_.erase(it);
      ++writes_completed_;
    }
  } else {
    CHT_UNREACHABLE("unknown message type for megastore node");
  }
}

}  // namespace cht::baselines
