// The Megastore/Chubby vulnerability (paper Section 5): a writer cut off
// from Chubby cannot invalidate a straggler replica, so its writes block
// forever — while our algorithm's lease-expiry wait needs no external
// arbiter and always completes.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/megastore_chubby.h"
#include "harness/cluster.h"
#include "object/register_object.h"

namespace cht {
namespace {

using baselines::ChubbyConfig;
using baselines::ChubbyService;
using baselines::MegastoreNode;

struct Fixture {
  sim::Simulation sim;
  // Process 0: Chubby. Processes 1..4: Megastore nodes.
  explicit Fixture(std::uint64_t seed = 1) : sim(make_config(seed)) {
    ChubbyConfig config;
    sim.add_process(std::make_unique<ChubbyService>(config));
    for (int i = 1; i <= 4; ++i) {
      sim.add_process(std::make_unique<MegastoreNode>(ProcessId(0), config));
    }
    sim.start();
  }
  static sim::SimulationConfig make_config(std::uint64_t seed) {
    sim::SimulationConfig c;
    c.seed = seed;
    c.network.gst = RealTime::zero();
    c.network.delta = Duration::millis(5);
    c.network.delta_min = Duration::micros(500);
    return c;
  }
  ChubbyService& chubby() { return sim.process_as<ChubbyService>(ProcessId(0)); }
  MegastoreNode& node(int i) {
    return sim.process_as<MegastoreNode>(ProcessId(i));
  }
  void run(Duration d) { sim.run_until(sim.now() + d); }
};

TEST(MegastoreChubbyTest, SessionsEstablishAndExpire) {
  Fixture f;
  f.run(Duration::millis(100));
  EXPECT_TRUE(f.chubby().session_alive(1));
  f.node(1).stop_keepalives();
  f.run(Duration::millis(300));  // > session_ttl
  EXPECT_FALSE(f.chubby().session_alive(1));
  EXPECT_TRUE(f.chubby().session_alive(2));
}

TEST(MegastoreChubbyTest, WriteCompletesWhenAllAcked) {
  Fixture f;
  f.run(Duration::millis(100));
  f.node(1).begin_write({});
  EXPECT_EQ(f.node(1).writes_completed(), 1);
}

TEST(MegastoreChubbyTest, WriteCompletesAfterStragglerSessionExpires) {
  Fixture f;
  f.run(Duration::millis(100));
  // Node 3 crashes (stops acking and stops keepalives).
  f.sim.crash(ProcessId(3));
  f.node(1).begin_write({3});
  EXPECT_EQ(f.node(1).writes_pending(), 1);
  // Once Chubby sees node 3's session lapse, the invalidation succeeds.
  const RealTime deadline = f.sim.now() + Duration::seconds(2);
  EXPECT_TRUE(f.sim.run_until(
      [&] { return f.node(1).writes_completed() == 1; }, deadline));
  // The wait was about one session TTL.
  EXPECT_GT(f.sim.now() - RealTime::zero(), Duration::millis(100));
}

TEST(MegastoreChubbyTest, WriterCutOffFromChubbyBlocksForever) {
  // The paper's scenario: the writer loses contact with Chubby while other
  // processes keep theirs. The straggler can never be invalidated from the
  // writer's point of view: the write stays pending indefinitely.
  Fixture f;
  f.run(Duration::millis(100));
  f.sim.crash(ProcessId(3));  // the straggler
  // Cut the writer (node 1) off from Chubby in both directions.
  f.sim.network().set_link_down(ProcessId(1), ProcessId(0), true);
  f.sim.network().set_link_down(ProcessId(0), ProcessId(1), true);
  f.node(1).begin_write({3});
  // Simulate ten minutes: the straggler's session expired long ago at
  // Chubby, but the writer cannot observe that.
  f.run(Duration::seconds(600));
  EXPECT_FALSE(f.chubby().session_alive(3));
  EXPECT_EQ(f.node(1).writes_completed(), 0);
  EXPECT_EQ(f.node(1).writes_pending(), 1);
  // "Manual intervention by an operator": healing the link fixes it.
  f.sim.network().set_link_down(ProcessId(1), ProcessId(0), false);
  f.sim.network().set_link_down(ProcessId(0), ProcessId(1), false);
  const RealTime deadline = f.sim.now() + Duration::seconds(2);
  EXPECT_TRUE(f.sim.run_until(
      [&] { return f.node(1).writes_completed() == 1; }, deadline));
}

TEST(MegastoreChubbyTest, OurAlgorithmHasNoSuchDependency) {
  // Same shape of failure against our algorithm: one replica crashes, the
  // leader is NOT cut off from anything it depends on (there is no Chubby);
  // the write completes after the self-timed lease-expiry wait.
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = 5;
  config.delta = Duration::millis(10);
  harness::Cluster cluster(config, std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  cluster.sim().crash(ProcessId((leader + 1) % cluster.n()));
  cluster.submit((leader + 2) % cluster.n(),
                 object::RegisterObject::write("completes"));
  EXPECT_TRUE(cluster.await_quiesce(Duration::seconds(10)))
      << "our write must complete without any external arbiter";
}

}  // namespace
}  // namespace cht
