// Failover walkthrough: watch a new leader initialize after a crash.
//
// Narrates the timeline of the paper's Section 3 leader initialization:
// crash detection (Omega), estimate collection, recovery of the half-done
// batch, the liveness NoOp, and the return of read availability.
#include <iostream>
#include <memory>

#include "harness/cluster.h"
#include "object/kv_object.h"

int main() {
  using namespace cht;  // NOLINT: example brevity

  harness::ClusterConfig config;
  config.n = 5;
  config.seed = 3;
  config.delta = Duration::millis(10);
  harness::Cluster cluster(config, std::make_shared<object::KVObject>());

  auto stamp = [&] {
    std::cout << "[t=" << cluster.sim().now().to_millis_f() << " ms] ";
  };

  cluster.await_steady_leader(Duration::seconds(5));
  const int leader1 = cluster.steady_leader();
  stamp();
  std::cout << "p" << leader1 << " is the steady leader\n";

  cluster.submit(1, object::KVObject::put("inventory", "42"));
  cluster.await_quiesce(Duration::seconds(5));
  stamp();
  std::cout << "put(inventory, 42) committed (batch "
            << cluster.replica(leader1).snapshot().applied_upto << ")\n";

  // Submit a write and kill the leader while it is being prepared.
  cluster.submit(2, object::KVObject::put("inventory", "41"));
  cluster.run_for(Duration::millis(3));
  cluster.sim().crash(ProcessId(leader1));
  stamp();
  std::cout << "p" << leader1
            << " CRASHED with put(inventory, 41) in flight (half-done batch)\n";

  int leader2 = -1;
  cluster.sim().run_until(
      [&] {
        leader2 = cluster.steady_leader();
        return leader2 >= 0 && leader2 != leader1;
      },
      cluster.sim().now() + Duration::seconds(30));
  stamp();
  std::cout << "p" << leader2 << " became leader (Omega detected the crash,\n"
            << "              collected estimates from a majority, recovered\n"
            << "              missing batches, re-committed the half-done\n"
            << "              batch, and committed its liveness NoOp)\n";

  cluster.await_quiesce(Duration::seconds(30));
  stamp();
  std::cout << "the in-flight write completed under the new leader\n";

  // Show reads are served locally everywhere again.
  cluster.run_for(cluster.core_config().lease_renew_interval * 3);
  for (int p = 0; p < cluster.n(); ++p) {
    if (cluster.replica(p).crashed()) continue;
    cluster.submit(p, object::KVObject::get("inventory"));
  }
  cluster.await_quiesce(Duration::seconds(10));
  stamp();
  std::cout << "all survivors answered get(inventory) locally:\n";
  for (const auto& op : cluster.history().ops()) {
    if (op.completed() && op.op.kind == "get") {
      std::cout << "    " << op.process << " -> " << *op.response << " (in "
                << op.latency().to_micros() << " us)\n";
    }
  }

  const auto& metrics = cluster.replica(leader2).metrics();
  std::cout << "\nnew leader committed "
            << metrics.value("batches_committed_as_leader")
            << " batches since taking over; became leader "
            << metrics.value("became_leader") << "x\n";
  return 0;
}
