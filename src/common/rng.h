// Deterministic, splittable pseudo-random number generator.
//
// All randomness in the simulator flows through explicitly seeded Rng
// instances so that every run is reproducible from its seed. We use
// xoshiro256** seeded via splitmix64, which is fast and has no global state.
#pragma once

#include <cstdint>

#include "common/assert.h"

namespace cht {

class Rng {
 public:
  explicit Rng(std::uint64_t seed) {
    // splitmix64 expansion of the seed into the xoshiro state.
    std::uint64_t x = seed;
    for (auto& s : state_) {
      x += 0x9e3779b97f4a7c15ULL;
      std::uint64_t z = x;
      z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
      z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
      s = z ^ (z >> 31);
    }
  }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const std::uint64_t t = state_[1] << 17;
    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);
    return result;
  }

  // Uniform in [0, bound). bound must be > 0.
  std::uint64_t next_below(std::uint64_t bound) {
    CHT_ASSERT(bound > 0, "next_below requires positive bound");
    // Rejection sampling to avoid modulo bias.
    const std::uint64_t threshold = (0 - bound) % bound;
    for (;;) {
      const std::uint64_t r = next_u64();
      if (r >= threshold) return r % bound;
    }
  }

  // Uniform integer in [lo, hi], inclusive.
  std::int64_t next_in(std::int64_t lo, std::int64_t hi) {
    CHT_ASSERT(lo <= hi, "next_in requires lo <= hi");
    return lo + static_cast<std::int64_t>(
                    next_below(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  // Uniform double in [0, 1).
  double next_double() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  bool next_bool(double p_true) { return next_double() < p_true; }

  // Derive an independent child generator (for per-process streams).
  Rng split() { return Rng(next_u64() ^ 0xdeadbeefcafef00dULL); }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }
  std::uint64_t state_[4];
};

}  // namespace cht
