// Fixture: rule D4 — pointer-keyed ordered containers. Pointer comparison
// order is allocation order: it varies run to run, so anything scheduled
// from it is nondeterministic.
#include <map>
#include <queue>
#include <set>
#include <vector>

namespace fixture {

struct Node {
  int id = 0;
};

struct Scheduler {
  std::map<const Node*, int> deadline_by_node_;  // detlint-expect: D4
  std::set<Node*> ready_;  // detlint-expect: D4
  std::priority_queue<Node*> runnable_;  // detlint-expect: D4

  // Negative: pointers as *values* of a deterministic key are fine.
  std::map<int, Node*> node_by_id_;

  // Negative: suppressed with rationale.
  std::set<Node*> debug_only_;  // detlint: allow(D4) debug dump aid, never drives scheduling

  // Negative: keying on stable ids.
  std::map<int, int> deadline_by_id_;
};

}  // namespace fixture
