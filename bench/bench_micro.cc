// Micro benchmarks (google-benchmark): substrate costs underlying the
// experiment harnesses — object apply, event-queue throughput, simulated
// cluster event rate, and linearizability checking.
#include <benchmark/benchmark.h>

#include <memory>

#include "checker/linearizability.h"
#include "harness/cluster.h"
#include "object/kv_object.h"
#include "object/register_object.h"
#include "sim/event_queue.h"

namespace {

using namespace cht;  // NOLINT: bench-local convenience

void BM_ObjectApplyKV(benchmark::State& state) {
  object::KVObject model;
  auto obj = model.make_initial_state();
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.apply(*obj, object::KVObject::put("k" + std::to_string(i % 64),
                                                "v")));
    ++i;
  }
}
BENCHMARK(BM_ObjectApplyKV);

void BM_EventQueueScheduleStep(benchmark::State& state) {
  sim::EventQueue queue;
  std::int64_t fired = 0;
  for (auto _ : state) {
    queue.schedule(queue.now() + Duration::micros(1), [&fired] { ++fired; });
    queue.step();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueScheduleStep);

void BM_SimulatedClusterSecond(benchmark::State& state) {
  // Cost of simulating one second of a quiet 5-process cluster (heartbeats,
  // supports, lease renewals).
  for (auto _ : state) {
    harness::ClusterConfig config;
    config.n = static_cast<int>(state.range(0));
    harness::Cluster cluster(config,
                             std::make_shared<object::RegisterObject>());
    cluster.run_for(Duration::seconds(1));
    benchmark::DoNotOptimize(cluster.sim().network().stats().sent);
  }
}
BENCHMARK(BM_SimulatedClusterSecond)->Arg(3)->Arg(5)->Arg(9);

void BM_LinearizabilityChecker(benchmark::State& state) {
  // Sequential register history of `range` ops: checker fast path.
  const std::int64_t ops = state.range(0);
  object::RegisterObject model;
  std::vector<checker::HistoryOp> history;
  for (std::int64_t i = 0; i < ops; ++i) {
    checker::HistoryOp op;
    op.process = ProcessId(0);
    const bool write = i % 2 == 0;
    op.op = write ? object::RegisterObject::write(std::to_string(i))
                  : object::RegisterObject::read();
    op.invoked = RealTime::zero() + Duration::micros(10 * i);
    op.responded = op.invoked + Duration::micros(5);
    op.response = write ? "ok" : std::to_string(i - 1);
    history.push_back(op);
  }
  for (auto _ : state) {
    auto result = checker::check_linearizable(model, history);
    benchmark::DoNotOptimize(result.linearizable);
  }
}
BENCHMARK(BM_LinearizabilityChecker)->Arg(100)->Arg(1000);

void BM_FullProtocolWriteThroughput(benchmark::State& state) {
  // End-to-end protocol cost: committed writes per wall-second through the
  // full stack (leader batching, majority round, lease gate) on a quiet
  // post-GST cluster.
  harness::ClusterConfig config;
  config.n = 5;
  harness::Cluster cluster(config, std::make_shared<object::RegisterObject>());
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  std::int64_t writes = 0;
  for (auto _ : state) {
    cluster.submit(static_cast<int>(writes % 5),
                   object::RegisterObject::write(std::to_string(writes)));
    cluster.await_quiesce(Duration::seconds(10));
    ++writes;
  }
  state.SetItemsProcessed(writes);
}
BENCHMARK(BM_FullProtocolWriteThroughput);

void BM_FullProtocolLocalRead(benchmark::State& state) {
  harness::ClusterConfig config;
  config.n = 5;
  harness::Cluster cluster(config, std::make_shared<object::RegisterObject>());
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.submit(0, object::RegisterObject::write("v"));
  cluster.await_quiesce(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  std::int64_t reads = 0;
  for (auto _ : state) {
    cluster.submit(static_cast<int>(reads % 5), object::RegisterObject::read());
    ++reads;
  }
  cluster.await_quiesce(Duration::seconds(5));
  state.SetItemsProcessed(reads);
}
BENCHMARK(BM_FullProtocolLocalRead);

void BM_CheckerConcurrentWindow(benchmark::State& state) {
  // Checker cost as the concurrent-window width grows: `width` fully
  // overlapping writes followed by a read.
  const std::int64_t width = state.range(0);
  object::RegisterObject model("0");
  std::vector<checker::HistoryOp> history;
  for (std::int64_t i = 0; i < width; ++i) {
    checker::HistoryOp op;
    op.process = ProcessId(static_cast<int>(i % 5));
    op.op = object::RegisterObject::write(std::to_string(i));
    op.invoked = RealTime::zero();
    op.responded = RealTime::zero() + Duration::millis(100);
    op.response = "ok";
    history.push_back(op);
  }
  checker::HistoryOp read;
  read.process = ProcessId(0);
  read.op = object::RegisterObject::read();
  read.invoked = RealTime::zero() + Duration::millis(200);
  read.responded = read.invoked + Duration::millis(1);
  read.response = std::to_string(width - 1);
  history.push_back(read);
  for (auto _ : state) {
    auto result = checker::check_linearizable(model, history);
    benchmark::DoNotOptimize(result.linearizable);
  }
}
BENCHMARK(BM_CheckerConcurrentWindow)->Arg(4)->Arg(8)->Arg(12);

}  // namespace

BENCHMARK_MAIN();
