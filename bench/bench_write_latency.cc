// E6 — RMW commit latency: leaseholder-set memory and commit-wait (paper
// S3 "leaseholder mechanism" + S5 Megastore/Spanner contrasts).
//
// Claims:
//   (a) ours: a crashed/disconnected leaseholder delays RMW commits at most
//       once (the lease-expiry wait), after which it is dropped from the
//       leaseholder set and writes return to ~2*delta;
//   (b) Megastore-style all-ack commits have no such memory: *every* write
//       pays the invalidation wait while a process is down;
//   (c) Spanner-style commit-wait adds the clock uncertainty epsilon to
//       every write; ours is independent of epsilon after GST.
#include <iostream>
#include <memory>

#include "common/bench_util.h"
#include "common/experiment.h"
#include "object/register_object.h"

namespace cht::bench {
namespace {

constexpr Duration kDelta = Duration::millis(10);

harness::ClusterConfig base_config(std::uint64_t seed = 61) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = kDelta;
  return config;
}

// Sequence of per-write commit latencies around a leaseholder crash.
std::vector<Duration> crash_timeline(ExperimentResult& result,
                                     core::CommitGate gate,
                                     const std::string& label) {
  core::ConfigOverrides overrides;
  overrides.commit_gate = gate;
  harness::Cluster cluster(base_config(),
                           std::make_shared<object::RegisterObject>(),
                           overrides);
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const int submitter = (leader + 2) % cluster.n();

  std::vector<Duration> latencies;
  auto timed_write = [&](int i) {
    const RealTime t0 = cluster.sim().now();
    cluster.submit(submitter, object::RegisterObject::write(std::to_string(i)));
    cluster.await_quiesce(Duration::seconds(60));
    latencies.push_back(cluster.sim().now() - t0);
  };
  for (int i = 0; i < 3; ++i) timed_write(i);  // healthy
  cluster.sim().crash(ProcessId((leader + 1) % cluster.n()));
  for (int i = 3; i < 10; ++i) timed_write(i);  // after the crash
  result.config(label, cluster.config(), cluster.overrides());
  result.observe(label, cluster);
  metrics::LatencyRecorder lat;
  for (const Duration d : latencies) lat.record(d);
  result.latency(label, lat);
  return latencies;
}

Duration steady_write_latency(ExperimentResult& result, Duration commit_wait,
                              std::uint64_t seed) {
  core::ConfigOverrides overrides;
  overrides.commit_wait = commit_wait;
  harness::Cluster cluster(base_config(seed),
                           std::make_shared<object::RegisterObject>(),
                           overrides);
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  metrics::LatencyRecorder lat;
  for (int i = 0; i < result.scaled(20, 6); ++i) {
    const RealTime t0 = cluster.sim().now();
    cluster.submit(1, object::RegisterObject::write(std::to_string(i)));
    cluster.await_quiesce(Duration::seconds(30));
    lat.record(cluster.sim().now() - t0);
  }
  return lat.p50();
}

}  // namespace
}  // namespace cht::bench

int main(int argc, char** argv) {
  using namespace cht;
  using namespace cht::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  ExperimentResult result("write_latency", args);

  result.begin(
      "E6a: write latency timeline around a leaseholder crash",
      "Claim (paper S3/S5): ours pays the lease-expiry wait exactly once\n"
      "(write #4, the first after the crash), then drops the dead process\n"
      "from the leaseholder set; Megastore-style all-ack commits pay the\n"
      "wait on every write. (LeasePeriod = 12*delta = 120 ms.)");
  const auto ours = crash_timeline(result, core::CommitGate::kLeaseholders,
                                   "ours-leaseholders");
  const auto allack = crash_timeline(result, core::CommitGate::kAllProcesses,
                                     "all-ack");
  result.columns({"write#", "ours (ms)", "all-ack/Megastore (ms)", "note"});
  for (std::size_t i = 0; i < ours.size(); ++i) {
    std::string note;
    if (i < 3) note = "healthy";
    else if (i == 3) note = "first write after crash";
    else note = "subsequent writes";
    result.row({metrics::Table::num(static_cast<std::int64_t>(i + 1)),
                ms2(ours[i]), ms2(allack[i]), note});
  }
  result.end();

  result.begin(
      "E6b: write latency vs clock uncertainty epsilon",
      "Claim (paper S5, Spanner): commit-wait writes pay epsilon each;\n"
      "ours is independent of epsilon after GST.");
  result.columns({"epsilon (ms)", "ours p50 (ms)", "commit-wait p50 (ms)"});
  const std::vector<std::int64_t> sweep =
      result.smoke() ? std::vector<std::int64_t>{0, 50}
                     : std::vector<std::int64_t>{0, 5, 10, 25, 50};
  for (const std::int64_t e_ms : sweep) {
    const Duration epsilon = Duration::millis(e_ms);
    const Duration ours_p50 =
        steady_write_latency(result, Duration::zero(), 71);
    const Duration wait_p50 = steady_write_latency(result, epsilon, 71);
    result.row({metrics::Table::num(e_ms), ms2(ours_p50), ms2(wait_p50)});
    result.metric("ours_p50_us_eps" + std::to_string(e_ms),
                  ours_p50.to_micros());
    result.metric("commit_wait_p50_us_eps" + std::to_string(e_ms),
                  wait_p50.to_micros());
  }
  result.note(
      "Expected shape: E6a — ours spikes only at write #4 (by\n"
      "~LeasePeriod), all-ack spikes on every write 4..10; E6b —\n"
      "ours flat, commit-wait grows linearly with epsilon.");
  result.end();
  return result.finish();
}
