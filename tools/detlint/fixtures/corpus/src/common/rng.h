// Fixture: the one file allowed to touch standard-library randomness (rule
// D2 allowlists src/common/rng.h). Everything here is a negative case.
#pragma once
#include <random>

namespace fixture {

inline unsigned raw_draw(unsigned seed) {
  std::mt19937 engine(seed);
  return static_cast<unsigned>(engine());
}

inline unsigned entropy_seed() {
  std::random_device device;
  return device();
}

}  // namespace fixture
