#include "sim/simulation.h"

#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>
#include <vector>

namespace cht::sim {
namespace {

// A process that logs everything it sees, for observing runtime semantics.
class Probe : public Process {
 public:
  std::vector<std::string> events;
  void on_start() override { events.push_back("start"); }
  void on_message(const Message& message) override {
    events.push_back("msg:" + message.type + ":from" +
                     std::to_string(message.from.index()));
  }
  void on_crash() override { events.push_back("crash"); }
};

SimulationConfig quick_config(std::uint64_t seed = 1) {
  SimulationConfig config;
  config.seed = seed;
  config.network.gst = RealTime::zero();
  config.network.delta = Duration::millis(2);
  config.network.delta_min = Duration::micros(100);
  return config;
}

TEST(SimulationTest, StartCallsEveryProcess) {
  Simulation sim(quick_config());
  for (int i = 0; i < 3; ++i) sim.add_process(std::make_unique<Probe>());
  sim.start();
  for (int i = 0; i < 3; ++i) {
    EXPECT_EQ(sim.process_as<Probe>(ProcessId(i)).events.front(), "start");
  }
}

TEST(SimulationTest, SendAndBroadcastDeliver) {
  Simulation sim(quick_config());
  for (int i = 0; i < 3; ++i) sim.add_process(std::make_unique<Probe>());
  sim.start();
  sim.process(ProcessId(0)).broadcast("hello", std::string("x"));
  sim.run_until(RealTime::zero() + Duration::millis(10));
  EXPECT_EQ(sim.process_as<Probe>(ProcessId(1)).events.back(), "msg:hello:from0");
  EXPECT_EQ(sim.process_as<Probe>(ProcessId(2)).events.back(), "msg:hello:from0");
  // Broadcast excludes self.
  EXPECT_EQ(sim.process_as<Probe>(ProcessId(0)).events.size(), 1u);
}

TEST(SimulationTest, CrashedProcessesReceiveNothingAndSendNothing) {
  Simulation sim(quick_config());
  for (int i = 0; i < 2; ++i) sim.add_process(std::make_unique<Probe>());
  sim.start();
  sim.crash(ProcessId(1));
  EXPECT_EQ(sim.process_as<Probe>(ProcessId(1)).events.back(), "crash");
  sim.process(ProcessId(0)).send(ProcessId(1), "m", std::string());
  sim.process(ProcessId(1)).send(ProcessId(0), "m", std::string());
  sim.run_until(RealTime::zero() + Duration::millis(10));
  EXPECT_EQ(sim.process_as<Probe>(ProcessId(0)).events.size(), 1u);  // start only
  EXPECT_EQ(sim.process_as<Probe>(ProcessId(1)).events.back(), "crash");
}

TEST(SimulationTest, MessagesInFlightAtCrashStillDeliver) {
  Simulation sim(quick_config());
  for (int i = 0; i < 2; ++i) sim.add_process(std::make_unique<Probe>());
  sim.start();
  sim.process(ProcessId(1)).send(ProcessId(0), "last-words", std::string());
  sim.crash(ProcessId(1));
  sim.run_until(RealTime::zero() + Duration::millis(10));
  EXPECT_EQ(sim.process_as<Probe>(ProcessId(0)).events.back(),
            "msg:last-words:from1");
}

TEST(SimulationTest, CrashedProcessTimersDoNotFire) {
  Simulation sim(quick_config());
  sim.add_process(std::make_unique<Probe>());
  sim.start();
  bool fired = false;
  sim.process(ProcessId(0)).schedule_after(Duration::millis(5),
                                           [&] { fired = true; });
  sim.crash(ProcessId(0));
  sim.run_until(RealTime::zero() + Duration::millis(20));
  EXPECT_FALSE(fired);
}

TEST(SimulationTest, LocalTimersHonorClockOffsets) {
  SimulationConfig config = quick_config();
  config.epsilon = Duration::zero();  // start with identical clocks
  Simulation sim(config);
  sim.add_process(std::make_unique<Probe>());
  sim.start();
  sim.set_clock_offset(ProcessId(0), Duration::millis(-3));  // clock is slow
  RealTime fired_at = RealTime::zero();
  const LocalTime target = LocalTime::zero() + Duration::millis(10);
  sim.process(ProcessId(0)).schedule_at_local(target, [&] {
    fired_at = sim.now();
  });
  sim.run_until(RealTime::zero() + Duration::seconds(1));
  // Clock reads real-3ms, so it reaches l=10ms at r=13ms.
  EXPECT_EQ(fired_at, RealTime::zero() + Duration::millis(13));
}

TEST(SimulationTest, LocalTimersRearmAfterDesync) {
  SimulationConfig config = quick_config();
  config.epsilon = Duration::zero();
  Simulation sim(config);
  sim.add_process(std::make_unique<Probe>());
  sim.start();
  RealTime fired_at = RealTime::zero();
  sim.process(ProcessId(0)).schedule_at_local(
      LocalTime::zero() + Duration::millis(10),
      [&] { fired_at = sim.now(); });
  // Before the timer fires, slow the clock down by 5ms.
  sim.at(RealTime::zero() + Duration::millis(5),
         [&] { sim.set_clock_offset(ProcessId(0), Duration::millis(-5)); });
  sim.run_until(RealTime::zero() + Duration::seconds(1));
  EXPECT_EQ(fired_at, RealTime::zero() + Duration::millis(15));
}

TEST(SimulationTest, DeterministicBySeed) {
  auto run = [](std::uint64_t seed) {
    Simulation sim(quick_config(seed));
    for (int i = 0; i < 3; ++i) sim.add_process(std::make_unique<Probe>());
    sim.start();
    for (int round = 0; round < 20; ++round) {
      sim.process(ProcessId(round % 3))
          .broadcast("r" + std::to_string(round), std::string());
      sim.run_until(sim.now() + Duration::millis(1));
    }
    sim.run_until(sim.now() + Duration::millis(50));
    std::vector<std::string> all;
    for (int i = 0; i < 3; ++i) {
      const auto& events = sim.process_as<Probe>(ProcessId(i)).events;
      all.insert(all.end(), events.begin(), events.end());
    }
    return all;
  };
  EXPECT_EQ(run(42), run(42));
  EXPECT_NE(run(42), run(43));
}

TEST(SimulationTest, RunUntilPredicate) {
  Simulation sim(quick_config());
  sim.add_process(std::make_unique<Probe>());
  sim.start();
  int count = 0;
  std::function<void()> tick = [&] {
    ++count;
    sim.after(Duration::millis(1), tick);
  };
  sim.after(Duration::millis(1), tick);
  const bool reached = sim.run_until([&] { return count >= 5; },
                                     RealTime::zero() + Duration::seconds(1));
  EXPECT_TRUE(reached);
  EXPECT_EQ(count, 5);
  const bool unreachable = sim.run_until([&] { return count >= 1'000'000; },
                                         RealTime::zero() + Duration::millis(20));
  EXPECT_FALSE(unreachable);
}

TEST(SimulationTest, ClockOffsetsWithinEpsilon) {
  SimulationConfig config = quick_config(99);
  config.epsilon = Duration::millis(4);
  Simulation sim(config);
  for (int i = 0; i < 10; ++i) sim.add_process(std::make_unique<Probe>());
  sim.start();
  for (int i = 0; i < 10; ++i) {
    for (int j = 0; j < 10; ++j) {
      const Duration skew =
          sim.clock(ProcessId(i)).offset() - sim.clock(ProcessId(j)).offset();
      EXPECT_LE(skew, config.epsilon);
      EXPECT_GE(skew, Duration::zero() - config.epsilon);
    }
  }
}

TEST(SimulationTest, SyncStorageZeroLatencyRunsContinuationInline) {
  Simulation sim(quick_config());
  sim.add_process(std::make_unique<Probe>());
  sim.start();
  Process& p = sim.process(ProcessId(0));
  bool ran = false;
  p.sync_storage([&] { ran = true; });
  EXPECT_TRUE(ran) << "zero-latency sync must not schedule an event";
  EXPECT_EQ(sim.storage(ProcessId(0)).fsyncs(), 1);
}

TEST(SimulationTest, SyncStorageNonzeroLatencyDelaysContinuation) {
  SimulationConfig config = quick_config();
  config.storage.sync_latency = Duration::millis(4);
  Simulation sim(config);
  sim.add_process(std::make_unique<Probe>());
  sim.start();
  Process& p = sim.process(ProcessId(0));
  const Duration lat = sim.storage(ProcessId(0)).effective_sync_latency();
  RealTime done = RealTime::min();
  p.storage().write("k", "v");
  p.sync_storage([&] { done = sim.now(); });
  // Durable at call time; the continuation waits out the latency.
  EXPECT_FALSE(p.storage().dirty());
  EXPECT_EQ(done, RealTime::min());
  sim.run_until(RealTime::zero() + Duration::seconds(1));
  EXPECT_EQ(done, RealTime::zero() + lat);
}

TEST(SimulationTest, RequestSyncCoalescesAWindowIntoOneSync) {
  SimulationConfig config = quick_config();
  config.storage.sync_latency = Duration::millis(4);
  Simulation sim(config);
  sim.add_process(std::make_unique<Probe>());
  sim.start();
  Process& p = sim.process(ProcessId(0));
  const Duration lat = sim.storage(ProcessId(0)).effective_sync_latency();
  std::vector<std::pair<int, RealTime>> acks;
  // First request opens a window; the two issued while its sync is in
  // flight share one following sync and ack back-to-back as one burst.
  p.request_sync([&] { acks.emplace_back(0, sim.now()); });
  p.schedule_after(Duration::millis(1), [&] {
    p.request_sync([&] { acks.emplace_back(1, sim.now()); });
    p.request_sync([&] { acks.emplace_back(2, sim.now()); });
  });
  sim.run_until(RealTime::zero() + Duration::seconds(1));
  ASSERT_EQ(acks.size(), 3u);
  EXPECT_EQ(acks[0].second, RealTime::zero() + lat);
  EXPECT_EQ(acks[1].second, acks[2].second) << "one burst, one completion";
  EXPECT_EQ(acks[1].second, RealTime::zero() + lat + lat);
  // 3 requests, but only 2 fsyncs: the window coalesced the last two.
  EXPECT_EQ(sim.storage(ProcessId(0)).fsyncs(), 2);
}

TEST(SimulationTest, RequestSyncWithoutGroupCommitSyncsEveryRequest) {
  SimulationConfig config = quick_config();
  config.storage.sync_latency = Duration::millis(4);
  config.storage.group_commit = false;
  Simulation sim(config);
  sim.add_process(std::make_unique<Probe>());
  sim.start();
  Process& p = sim.process(ProcessId(0));
  const Duration lat = sim.storage(ProcessId(0)).effective_sync_latency();
  std::vector<RealTime> acks;
  p.request_sync([&] { acks.push_back(sim.now()); });
  p.request_sync([&] { acks.push_back(sim.now()); });
  p.request_sync([&] { acks.push_back(sim.now()); });
  sim.run_until(RealTime::zero() + Duration::seconds(1));
  ASSERT_EQ(acks.size(), 3u);
  // Naive discipline: three syncs queue serially at the device.
  EXPECT_EQ(acks[0], RealTime::zero() + lat);
  EXPECT_EQ(acks[1], RealTime::zero() + lat + lat);
  EXPECT_EQ(acks[2], RealTime::zero() + lat + lat + lat);
  EXPECT_EQ(sim.storage(ProcessId(0)).fsyncs(), 3);
}

TEST(SimulationTest, PendingSyncContinuationsDieWithTheIncarnation) {
  SimulationConfig config = quick_config();
  config.storage.sync_latency = Duration::millis(4);
  Simulation sim(config);
  sim.add_process(std::make_unique<Probe>());
  sim.start();
  bool ran = false;
  sim.process(ProcessId(0)).request_sync([&] { ran = true; });
  sim.crash(ProcessId(0));
  sim.run_until(RealTime::zero() + Duration::seconds(1));
  EXPECT_FALSE(ran) << "a crashed incarnation's ack burst must never fire";
}

}  // namespace
}  // namespace cht::sim
