#include <gtest/gtest.h>

#include <sstream>

#include "metrics/stats.h"
#include "metrics/table.h"

namespace cht::metrics {
namespace {

TEST(LatencyRecorderTest, OrderStatistics) {
  LatencyRecorder r;
  for (int i = 1; i <= 100; ++i) r.record(Duration::micros(i));
  EXPECT_EQ(r.count(), 100u);
  EXPECT_EQ(r.min(), Duration::micros(1));
  EXPECT_EQ(r.max(), Duration::micros(100));
  EXPECT_EQ(r.mean(), Duration::micros(50));  // 5050/100 truncated
  EXPECT_EQ(r.p50(), Duration::micros(51));   // nearest rank: sorted[50]
  EXPECT_EQ(r.p99(), Duration::micros(99));
  EXPECT_EQ(r.percentile(0.0), Duration::micros(1));
  EXPECT_EQ(r.percentile(1.0), Duration::micros(100));
}

TEST(LatencyRecorderTest, SingleSample) {
  LatencyRecorder r;
  r.record(Duration::millis(7));
  EXPECT_EQ(r.p50(), Duration::millis(7));
  EXPECT_EQ(r.min(), r.max());
}

TEST(LatencyRecorderTest, ClearResets) {
  LatencyRecorder r;
  r.record(Duration::millis(1));
  r.clear();
  EXPECT_TRUE(r.empty());
}

TEST(LatencyRecorderTest, UnsortedInput) {
  LatencyRecorder r;
  for (int v : {30, 10, 20}) r.record(Duration::micros(v));
  EXPECT_EQ(r.min(), Duration::micros(10));
  EXPECT_EQ(r.p50(), Duration::micros(20));
  EXPECT_EQ(r.max(), Duration::micros(30));
}

TEST(TableTest, AlignsColumns) {
  Table table({"a", "long-header"});
  table.add_row({"xxxxx", "1"});
  table.add_row({"y", "22"});
  std::ostringstream os;
  table.print(os);
  const std::string expected =
      "| a     | long-header |\n"
      "|-------|-------------|\n"
      "| xxxxx | 1           |\n"
      "| y     | 22          |\n";
  EXPECT_EQ(os.str(), expected);
}

TEST(TableTest, MissingCellsRenderEmpty) {
  Table table({"a", "b"});
  table.add_row({"only-one"});
  std::ostringstream os;
  table.print(os);
  EXPECT_NE(os.str().find("| only-one | "), std::string::npos);
}

TEST(TableTest, NumberFormatting) {
  EXPECT_EQ(Table::num(3.14159, 2), "3.14");
  EXPECT_EQ(Table::num(3.14159, 0), "3");
  EXPECT_EQ(Table::num(static_cast<std::int64_t>(42)), "42");
}

}  // namespace
}  // namespace cht::metrics
