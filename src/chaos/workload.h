// Workload generator: mixed read/RMW operation streams over every object
// model in the repo (KV, counter, bank, queue, lock), with a tunable read
// fraction and geometric key skew. Deterministic given its seed, and
// independent of the nemesis and driver streams, so fault schedules and
// workloads can be varied independently without perturbing each other.
#pragma once

#include <cstdint>
#include <string>

#include "chaos/spec.h"
#include "common/rng.h"
#include "object/object.h"

namespace cht::chaos {

class WorkloadGen {
 public:
  WorkloadGen(const RunSpec& spec, std::uint64_t seed);

  // The next operation in the stream: a read with probability
  // spec.read_fraction, otherwise a model-appropriate RMW. Values carry a
  // unique sequence number so every written value is distinguishable (the
  // linearizability checker needs distinct writes to detect reordering).
  object::Operation next();

 private:
  std::string pick_key();

  std::string object_;
  double read_fraction_;
  double key_skew_;
  int keys_;
  Rng rng_;
  std::int64_t seq_ = 0;
};

}  // namespace cht::chaos
