// Fixture: negative for rule D3 — src/object is not a protocol directory,
// so unordered containers are allowed without justification there (object
// models are pure state machines; they never drive scheduling decisions).
#include <string>
#include <unordered_map>

namespace fixture {

struct Cache {
  std::unordered_map<std::string, int> entries_;

  int lookup_only(const std::string& key) const {
    auto it = entries_.find(key);
    return it == entries_.end() ? 0 : it->second;
  }
};

}  // namespace fixture
