#include "sim/network.h"

#include <algorithm>

#include "common/assert.h"

namespace cht::sim {

Duration Network::sample_delay(RealTime now, bool& lose, bool& duplicate) {
  lose = false;
  duplicate = false;
  if (now >= config_.gst) {
    return Duration::micros(rng_.next_in(config_.delta_min.to_micros(),
                                         config_.delta.to_micros()));
  }
  if (rng_.next_bool(config_.pre_gst_loss_probability)) lose = true;
  if (rng_.next_bool(config_.pre_gst_duplicate_probability)) duplicate = true;
  return Duration::micros(rng_.next_in(config_.pre_gst_delay_min.to_micros(),
                                       config_.pre_gst_delay_max.to_micros()));
}

void Network::send(Message message) {
  const RealTime now = queue_.now();
  message.sent_at = now;
  ++stats_.sent;
  ++stats_.sent_by_type[message.type];
  if (trace_ != nullptr && trace_->network_enabled()) {
    trace_->record(now, message.from, "net.send",
                   message.type + " -> p" + std::to_string(message.to.index()));
  }

  if (down_links_.contains({message.from.index(), message.to.index()})) {
    ++stats_.dropped;
    return;
  }

  bool lose = false;
  bool duplicate = false;
  Duration delay = sample_delay(now, lose, duplicate);
  if (auto it = extra_delay_.find({message.from.index(), message.to.index()});
      it != extra_delay_.end()) {
    delay = delay + it->second;
    extra_delay_.erase(it);
  }
  if (lose) {
    ++stats_.dropped;
    return;
  }

  RealTime arrival = now + delay;
  // In-flight messages obey the delta bound once the system stabilizes.
  if (now < config_.gst && arrival > config_.gst + config_.delta) {
    arrival = config_.gst + Duration::micros(rng_.next_in(
                                config_.delta_min.to_micros(),
                                config_.delta.to_micros()));
    arrival = std::max(arrival, now + config_.delta_min);
  }

  const int copies = duplicate ? 2 : 1;
  for (int i = 0; i < copies; ++i) {
    RealTime when = arrival;
    if (i > 0) when = when + config_.delta_min;  // duplicates arrive later
    queue_.schedule(when, [this, message] {
      CHT_ASSERT(deliver_ != nullptr, "network has no delivery callback");
      ++stats_.delivered;
      deliver_(message);
    });
  }
}

void Network::set_link_down(ProcessId from, ProcessId to, bool down) {
  if (down) {
    down_links_.insert({from.index(), to.index()});
  } else {
    down_links_.erase({from.index(), to.index()});
  }
}

void Network::set_process_isolated(ProcessId p, bool isolated, int n) {
  for (int i = 0; i < n; ++i) {
    if (i == p.index()) continue;
    set_link_down(p, ProcessId(i), isolated);
    set_link_down(ProcessId(i), p, isolated);
  }
}

void Network::add_link_delay(ProcessId from, ProcessId to, Duration extra) {
  extra_delay_[{from.index(), to.index()}] = extra;
}

}  // namespace cht::sim
