// E5 — Lease maintenance traffic: Theta(n) vs Theta(n^2) (paper S5, PQL).
//
// Claims:
//   - our algorithm renews all leases with n-1 one-way messages per renewal
//     period (only the leader sends LeaseGrant);
//   - PQL needs ~4 * n * (n-1) messages per renewal period (every grantor
//     runs a 4-message, two-round-trip exchange with every leaseholder).
//
// We sweep n and count lease-related messages over a fixed window with no
// client operations, plus the per-pair round trips.
#include <iostream>
#include <memory>

#include "baselines/pql_lease.h"
#include "common/bench_util.h"
#include "common/experiment.h"
#include "core/messages.h"
#include "object/register_object.h"

namespace cht::bench {
namespace {

// Messages per renewal period for the paper's algorithm at cluster size n.
double ours_per_period(ExperimentResult& result, int n, bool observe) {
  harness::ClusterConfig config;
  config.n = n;
  config.seed = 5;
  config.delta = Duration::millis(10);
  harness::Cluster cluster(config, std::make_shared<object::RegisterObject>());
  cluster.await_steady_leader(Duration::seconds(10));
  cluster.run_for(Duration::seconds(1));
  const Duration window = cluster.core_config().lease_renew_interval * 20;
  const auto before =
      cluster.sim().network().stats().sent_of(core::msg::kLeaseGrant);
  cluster.run_for(window);
  const auto grants =
      cluster.sim().network().stats().sent_of(core::msg::kLeaseGrant) - before;
  if (observe) {
    const std::string label = "ours-n" + std::to_string(n);
    result.config(label, cluster.config(), cluster.overrides());
    result.observe(label, cluster);
  }
  return static_cast<double>(grants) / 20.0;
}

// Messages per renewal period for PQL at cluster size n.
double pql_per_period(int n) {
  sim::SimulationConfig sc;
  sc.seed = 5;
  sc.network.gst = RealTime::zero();
  sc.network.delta = Duration::millis(10);
  sc.network.delta_min = Duration::micros(500);
  sim::Simulation sim(sc);
  baselines::PqlConfig config;
  for (int i = 0; i < n; ++i) {
    sim.add_process(std::make_unique<baselines::PqlProcess>(config));
  }
  sim.start();
  sim.run_until(RealTime::zero() + Duration::millis(300));
  const auto before = sim.network().stats().sent;
  sim.run_until(sim.now() + config.renewal_interval * 20);
  return static_cast<double>(sim.network().stats().sent - before) / 20.0;
}

}  // namespace
}  // namespace cht::bench

int main(int argc, char** argv) {
  using namespace cht;
  using namespace cht::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  ExperimentResult result("lease_traffic", args);
  result.begin(
      "E5: lease renewal traffic vs cluster size",
      "Claim (paper S5): ours is Theta(n) one-way messages per renewal\n"
      "(leader -> others); PQL is Theta(n^2) with 2 round trips per\n"
      "grantor-leaseholder pair (4 * n * (n - 1) messages).");
  result.columns({"n", "ours msgs/period", "ours predicted (n-1)",
                  "pql msgs/period", "pql predicted 4n(n-1)", "pql/ours"});
  const std::vector<int> sweep = result.smoke()
                                     ? std::vector<int>{3, 7}
                                     : std::vector<int>{3, 5, 7, 9, 11, 13, 15};
  for (const int n : sweep) {
    const double ours = ours_per_period(result, n, n == sweep.back());
    const double pql = pql_per_period(n);
    result.row({metrics::Table::num(static_cast<std::int64_t>(n)),
                metrics::Table::num(ours, 1),
                metrics::Table::num(static_cast<std::int64_t>(n - 1)),
                metrics::Table::num(pql, 1),
                metrics::Table::num(static_cast<std::int64_t>(4 * n * (n - 1))),
                metrics::Table::num(pql / ours, 1)});
    result.metric("ours_msgs_per_period_n" + std::to_string(n), ours);
    result.metric("pql_msgs_per_period_n" + std::to_string(n), pql);
  }
  result.note(
      "Expected shape: 'ours' matches n-1 (linear); 'pql' matches\n"
      "4n(n-1) (quadratic); the ratio grows ~4n.\n"
      "Latency per renewal: ours is one one-way message; PQL takes\n"
      "two round trips before a guarantee activates.");
  result.end();
  return result.finish();
}
