// Shared harness plumbing for networked clients: adds the configured number
// of client::Client processes to a simulation (after the replicas, so they
// never enter quorum math — see Simulation::add_client) and exposes the
// deterministic replica-slot -> client mapping the cluster submit paths use.
#pragma once

#include <memory>

#include "client/client.h"
#include "harness/common_config.h"
#include "metrics/registry.h"
#include "sim/simulation.h"

namespace cht::harness {

class ClientPool {
 public:
  explicit ClientPool(sim::Simulation& sim) : sim_(sim) {}

  // Adds the clients. Must run after every add_process and before
  // sim.start(). Client j's home replica is j % n, spreading the local-read
  // fast path across the cluster.
  void populate(const CommonConfig& config) {
    replicas_ = config.n;
    clients_ = config.clients;
    for (int j = 0; j < clients_; ++j) {
      sim_.add_client(std::make_unique<client::Client>(
          j % replicas_, client::ClientConfig::defaults_for(config.delta)));
    }
  }

  bool enabled() const { return clients_ > 0; }
  int size() const { return clients_; }

  client::Client& client(int j) {
    return sim_.process_as<client::Client>(ProcessId(replicas_ + j));
  }

  // The client that carries operations nominally addressed at replica slot
  // i (harness submit(i, ...) keeps its signature when clients are on).
  client::Client& for_slot(int i) { return client(i % clients_); }

  void merge_metrics_into(metrics::Registry& out) {
    for (int j = 0; j < clients_; ++j) out.merge_from(client(j).metrics());
  }

 private:
  sim::Simulation& sim_;
  int replicas_ = 0;
  int clients_ = 0;
};

}  // namespace cht::harness
