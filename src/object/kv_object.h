// A key-value store.
//
// Operations:
//   get(k)          -> value or ""          (read)
//   put(k, v)       -> "ok"                 (RMW)
//   del(k)          -> "ok"                 (RMW)
//   cas(k, old, new)-> "ok" | "fail"        (RMW)
//   size()          -> #keys                (read)
//
// Conflicts are per key: get(k) conflicts only with RMWs on the same key;
// size() conflicts with put/del (which may change the key count) but not
// with cas (which never inserts or removes in this encoding... it can fail
// or overwrite, so it never changes the key set only if the key exists;
// conservatively size() conflicts with cas too).
#pragma once

#include <map>
#include <memory>
#include <string>

#include "object/object.h"

namespace cht::object {

class KVState final : public ObjectState {
 public:
  std::unique_ptr<ObjectState> clone() const override {
    return std::make_unique<KVState>(*this);
  }
  std::string fingerprint() const override;

  std::map<std::string, std::string>& entries() { return entries_; }
  const std::map<std::string, std::string>& entries() const { return entries_; }

 private:
  std::map<std::string, std::string> entries_;
};

class KVObject final : public ObjectModel {
 public:
  std::string name() const override { return "kv"; }
  std::unique_ptr<ObjectState> make_initial_state() const override {
    return std::make_unique<KVState>();
  }
  Response apply(ObjectState& state, const Operation& op) const override;
  bool is_read(const Operation& op) const override {
    return op.kind == "get" || op.kind == "size";
  }
  bool conflicts(const Operation& read, const Operation& rmw) const override;
  // Keys are independent sub-objects; size() spans all of them.
  std::string partition_label(const Operation& op) const override {
    return op.kind == "size" ? "" : key_of(op);
  }

  static Operation get(const std::string& key) { return {"get", key}; }
  static Operation size() { return {"size", ""}; }
  static Operation put(const std::string& key, const std::string& value) {
    return {"put", encode_args({key, value})};
  }
  static Operation del(const std::string& key) { return {"del", key}; }
  static Operation cas(const std::string& key, const std::string& expected,
                       const std::string& desired) {
    return {"cas", encode_args({key, expected, desired})};
  }

 private:
  static std::string key_of(const Operation& op);
};

}  // namespace cht::object
