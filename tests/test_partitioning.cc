// The checker's Herlihy-Wing locality partitioning: per-sub-object checking
// must agree with whole-history checking.
#include <gtest/gtest.h>

#include <map>

#include "checker/linearizability.h"
#include "common/rng.h"
#include "object/bank_object.h"
#include "object/kv_object.h"

namespace cht::checker {
namespace {

using object::BankObject;
using object::KVObject;

RealTime rt(std::int64_t us) { return RealTime::zero() + Duration::micros(us); }

HistoryOp op(int proc, object::Operation operation, std::int64_t invoke_us,
             std::int64_t respond_us, std::string response) {
  HistoryOp h;
  h.process = ProcessId(proc);
  h.op = std::move(operation);
  h.invoked = rt(invoke_us);
  h.responded = rt(respond_us);
  h.response = std::move(response);
  return h;
}

TEST(PartitionLabelTest, KVLabels) {
  KVObject model;
  EXPECT_EQ(model.partition_label(KVObject::get("a")), "a");
  EXPECT_EQ(model.partition_label(KVObject::put("a", "1")), "a");
  EXPECT_EQ(model.partition_label(KVObject::del("b")), "b");
  EXPECT_EQ(model.partition_label(KVObject::cas("c", "", "x")), "c");
  EXPECT_EQ(model.partition_label(KVObject::size()), "");  // spans keys
}

TEST(PartitionLabelTest, BankLabels) {
  BankObject model;
  EXPECT_EQ(model.partition_label(BankObject::balance("a")), "a");
  EXPECT_EQ(model.partition_label(BankObject::deposit("a", 1)), "a");
  EXPECT_EQ(model.partition_label(BankObject::transfer("a", "b", 1)), "");
  EXPECT_EQ(model.partition_label(BankObject::total()), "");
}

TEST(PartitionedCheckTest, AcceptsValidMultiKeyHistory) {
  KVObject model;
  std::vector<HistoryOp> h{
      op(0, KVObject::put("a", "1"), 0, 10, "ok"),
      op(1, KVObject::put("b", "2"), 0, 10, "ok"),
      op(0, KVObject::get("a"), 20, 30, "1"),
      op(1, KVObject::get("b"), 20, 30, "2"),
  };
  EXPECT_TRUE(check_linearizable(model, h).linearizable);
}

TEST(PartitionedCheckTest, RejectsPerKeyViolation) {
  KVObject model;
  std::vector<HistoryOp> h{
      op(0, KVObject::put("a", "1"), 0, 10, "ok"),
      op(1, KVObject::get("a"), 20, 30, ""),  // stale on key a
      op(0, KVObject::put("b", "2"), 0, 10, "ok"),
      op(1, KVObject::get("b"), 20, 30, "2"),
  };
  const auto result = check_linearizable(model, h);
  EXPECT_FALSE(result.linearizable);
  EXPECT_NE(result.explanation.find("sub-object 'a'"), std::string::npos)
      << result.explanation;
}

TEST(PartitionedCheckTest, SizeOpForcesGlobalCheck) {
  KVObject model;
  // size() spans keys: the history is checked globally and is consistent.
  std::vector<HistoryOp> h{
      op(0, KVObject::put("a", "1"), 0, 10, "ok"),
      op(0, KVObject::put("b", "2"), 20, 30, "ok"),
      op(1, KVObject::size(), 40, 50, "2"),
  };
  EXPECT_TRUE(check_linearizable(model, h).linearizable);
  h.back() = op(1, KVObject::size(), 40, 50, "1");  // stale size
  EXPECT_FALSE(check_linearizable(model, h).linearizable);
}

TEST(PartitionedCheckTest, CrossPartitionOrderingIsNotConstrained) {
  // Linearizability is local: each key independently linearizable suffices,
  // even when the realized per-key orders would "cross" in wall time.
  KVObject model;
  std::vector<HistoryOp> h{
      // Key a: read sees the concurrent write (linearized early).
      op(0, KVObject::put("a", "1"), 0, 100, "ok"),
      op(1, KVObject::get("a"), 10, 20, "1"),
      // Key b: read misses the concurrent write (linearized late).
      op(0, KVObject::put("b", "2"), 0, 100, "ok"),
      op(1, KVObject::get("b"), 10, 20, ""),
  };
  EXPECT_TRUE(check_linearizable(model, h).linearizable);
}

TEST(PartitionedCheckTest, AgreesWithGlobalCheckOnRandomHistories) {
  // Differential test: run the same per-key-safe histories through both
  // paths (partitioned via labels, global by erasing labels through a
  // wrapper) and compare verdicts.
  class NoPartitionKV final : public object::ObjectModel {
   public:
    std::string name() const override { return "kv-nopart"; }
    std::unique_ptr<object::ObjectState> make_initial_state() const override {
      return inner_.make_initial_state();
    }
    object::Response apply(object::ObjectState& s,
                           const object::Operation& op) const override {
      return inner_.apply(s, op);
    }
    bool is_read(const object::Operation& op) const override {
      return inner_.is_read(op);
    }
    bool conflicts(const object::Operation& r,
                   const object::Operation& w) const override {
      return inner_.conflicts(r, w);
    }
    // No partitioning: forces the global search path.

   private:
    KVObject inner_;
  };
  KVObject partitioned;
  NoPartitionKV global;
  Rng rng(99);
  for (int round = 0; round < 30; ++round) {
    std::vector<HistoryOp> h;
    std::map<std::string, std::string> shadow;
    std::int64_t t = 0;
    for (int i = 0; i < 20; ++i) {
      const std::string key(1, static_cast<char>('a' + rng.next_below(2)));
      t += 10;
      if (rng.next_bool(0.5)) {
        const std::string value = std::to_string(i);
        h.push_back(op(0, KVObject::put(key, value), t, t + 5, "ok"));
        shadow[key] = value;
      } else {
        std::string expect = shadow.contains(key) ? shadow[key] : "";
        // Occasionally corrupt the read to create a violation.
        const bool corrupt = rng.next_bool(0.15);
        if (corrupt) expect += "_corrupt";
        h.push_back(op(0, KVObject::get(key), t, t + 5, expect));
      }
    }
    const bool a = check_linearizable(partitioned, h).linearizable;
    const bool b = check_linearizable(global, h).linearizable;
    EXPECT_EQ(a, b) << "round " << round;
  }
}

}  // namespace
}  // namespace cht::checker
