// Crash-recovery integration tests: restart paths for the chtread stack,
// the Raft baseline (stable-storage replay) and the VR baseline (nonce
// recovery), driven through the harness clusters. These pin the lifecycle
// edges the chaos sweep only hits probabilistically: restart from an empty
// storage, restart while an election / view change is in flight, and
// durability of acked writes across a power cycle that loses unsynced
// writes.
#include <gtest/gtest.h>

#include <algorithm>
#include <memory>
#include <string>
#include <vector>

#include "checker/linearizability.h"
#include "harness/cluster.h"
#include "harness/raft_cluster.h"
#include "harness/vr_cluster.h"
#include "leader/enhanced_leader.h"
#include "object/register_object.h"
#include "raft/raft.h"
#include "vr/vr.h"

namespace cht {
namespace {

harness::ClusterConfig config_with_seed(std::uint64_t seed) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = Duration::millis(10);
  config.epsilon = Duration::millis(1);
  return config;
}

// --- chtread ---------------------------------------------------------------

TEST(CrashRecoveryTest, ChtreadAckedWriteSurvivesFollowerPowerCycle) {
  harness::Cluster cluster(config_with_seed(11),
                           std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  const int leader = cluster.steady_leader();
  cluster.submit(leader, object::RegisterObject::write("durable"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));

  const int victim = (leader + 1) % cluster.n();
  const auto target = cluster.replica(leader).snapshot().applied_upto;
  cluster.sim().crash(ProcessId(victim));
  cluster.run_for(Duration::millis(300));
  cluster.restart(victim);
  EXPECT_EQ(cluster.sim().incarnation(ProcessId(victim)), 1);

  const bool caught_up = cluster.sim().run_until(
      [&] { return cluster.replica(victim).snapshot().applied_upto >= target; },
      cluster.sim().now() + Duration::seconds(30));
  EXPECT_TRUE(caught_up) << "restarted follower never replayed to the "
                            "leader's pre-crash applied prefix";

  cluster.submit(leader, object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  EXPECT_EQ(*cluster.history().ops().back().response, "durable");
  const auto verdict =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(verdict.linearizable);
}

TEST(CrashRecoveryTest, ChtreadEmptyStorageRestart) {
  // Crash a replica before it ever synced anything; on_restart must cope
  // with a storage holding no records and no log.
  harness::Cluster cluster(config_with_seed(12),
                           std::make_shared<object::RegisterObject>());
  cluster.sim().crash(ProcessId(4));
  cluster.run_for(Duration::millis(50));
  cluster.restart(4);

  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.submit(cluster.steady_leader(),
                 object::RegisterObject::write("post-restart"));
  EXPECT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
}

// --- Raft ------------------------------------------------------------------

TEST(CrashRecoveryTest, RaftMinorityPowerCycleKeepsAckedWrites) {
  harness::RaftCluster cluster(config_with_seed(21),
                               std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_leader(Duration::seconds(10)));
  const int leader = cluster.leader();
  cluster.submit(leader, object::RegisterObject::write("acked"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));

  // Bounce two followers (a full minority) with unsynced-write loss.
  const int f1 = (leader + 1) % cluster.n();
  const int f2 = (leader + 2) % cluster.n();
  const auto commit = cluster.replica(leader).commit_index();
  cluster.sim().crash(ProcessId(f1));
  cluster.sim().crash(ProcessId(f2));
  cluster.run_for(Duration::millis(300));
  cluster.restart(f1);
  cluster.restart(f2);
  // The persistent-state replay happens inside on_restart: the log prefix
  // that was synced before the AppendReply left must already be back.
  EXPECT_GE(cluster.replica(f1).term(), 1);
  const bool caught_up = cluster.sim().run_until(
      [&] {
        return cluster.replica(f1).commit_index() >= commit &&
               cluster.replica(f2).commit_index() >= commit;
      },
      cluster.sim().now() + Duration::seconds(30));
  EXPECT_TRUE(caught_up);

  cluster.submit(leader, object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  EXPECT_EQ(*cluster.history().ops().back().response, "acked");
}

TEST(CrashRecoveryTest, RaftRestartDuringElection) {
  harness::RaftCluster cluster(config_with_seed(22),
                               std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_leader(Duration::seconds(10)));
  const int old_leader = cluster.leader();
  const auto old_term = cluster.replica(old_leader).term();

  cluster.sim().crash(ProcessId(old_leader));
  // Long enough for election timeouts to fire so the restart lands mid- or
  // post-election, not in a quiet cluster.
  cluster.run_for(cluster.raft_config().election_timeout_max * 2);
  cluster.restart(old_leader);
  // currentTerm was synced before the old incarnation ever voted, so the
  // replay cannot regress below it — the restarted node must not disrupt
  // the new term with stale-term candidacy.
  EXPECT_GE(cluster.replica(old_leader).term(), old_term);
  EXPECT_EQ(cluster.replica(old_leader).role(),
            raft::RaftReplica::Role::kFollower);

  ASSERT_TRUE(cluster.await_leader(Duration::seconds(30)));
  cluster.submit(cluster.leader(), object::RegisterObject::write("new-era"));
  EXPECT_TRUE(cluster.await_quiesce(Duration::seconds(30)));
}

// --- VR --------------------------------------------------------------------

TEST(CrashRecoveryTest, VrFollowerRecoversViaNonceProtocol) {
  harness::VrCluster cluster(config_with_seed(31),
                             std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_primary(Duration::seconds(10)));
  const int primary = cluster.primary();
  cluster.submit(primary, object::RegisterObject::write("replicated"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));

  const int victim = (primary + 1) % cluster.n();
  const auto commit = cluster.replica(primary).commit_number();
  cluster.sim().crash(ProcessId(victim));
  cluster.run_for(Duration::millis(300));
  cluster.restart(victim);
  // VR keeps no stable storage: the fresh incarnation starts in the
  // recovering state and rebuilds its log from a quorum of normal peers.
  EXPECT_EQ(cluster.replica(victim).status(),
            vr::VrReplica::Status::kRecovering);
  const bool recovered = cluster.sim().run_until(
      [&] {
        return cluster.replica(victim).status() ==
                   vr::VrReplica::Status::kNormal &&
               cluster.replica(victim).commit_number() >= commit;
      },
      cluster.sim().now() + Duration::seconds(30));
  EXPECT_TRUE(recovered) << "nonce recovery never completed";

  cluster.submit(cluster.primary(), object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  EXPECT_EQ(*cluster.history().ops().back().response, "replicated");
}

TEST(CrashRecoveryTest, VrRestartDuringViewChange) {
  harness::VrCluster cluster(config_with_seed(32),
                             std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_primary(Duration::seconds(10)));
  const int old_primary = cluster.primary();
  cluster.submit(old_primary, object::RegisterObject::write("v0"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));

  cluster.sim().crash(ProcessId(old_primary));
  // Let the backups notice the dead primary and start the view change, then
  // power the old primary back up while it is (or was just) in flight. Its
  // recovery must wait out the view change: responses only come from
  // normal-status replicas, so it rejoins in the new view, not the old one.
  cluster.run_for(cluster.vr_config().view_change_timeout * 2);
  cluster.restart(old_primary);

  ASSERT_TRUE(cluster.await_primary(Duration::seconds(30)));
  const bool rejoined = cluster.sim().run_until(
      [&] {
        return cluster.replica(old_primary).status() ==
               vr::VrReplica::Status::kNormal;
      },
      cluster.sim().now() + Duration::seconds(30));
  EXPECT_TRUE(rejoined);
  EXPECT_GT(cluster.replica(old_primary).view(), 0);

  cluster.submit(cluster.primary(), object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  EXPECT_EQ(*cluster.history().ops().back().response, "v0");
}

// --- ELS counter persistence -----------------------------------------------

// Hosts one enhanced-leader service whose believed leader the test controls;
// a fresh incarnation recovers the persisted support counter on restart.
class ElsRecoveryHost : public sim::Process {
 public:
  ElsRecoveryHost(leader::EnhancedLeaderConfig config, ProcessId believed)
      : els_(*this, [this] { return believed_; }, config), believed_(believed) {}
  void on_start() override { els_.start(); }
  void on_restart() override { els_.recover(); }
  void on_message(const sim::Message& message) override {
    els_.handle_message(message);
  }
  void set_believed(ProcessId p) { believed_ = p; }

 private:
  leader::EnhancedLeaderService els_;
  ProcessId believed_;
};

class GrantSink : public sim::Process {
 public:
  void on_message(const sim::Message& message) override {
    grants.push_back(message.as<leader::SupportGrant>());
  }
  std::vector<leader::SupportGrant> grants;
};

TEST(CrashRecoveryTest, ElsCounterBumpLostInCrashNeverRegressesAnEpoch) {
  // The supporter switches leaders and crashes while the counter bump's
  // covering sync is still in flight; key_loss = 1.0 guarantees the
  // unsynced counter write is gone on restart. Because the first grant
  // after a bump only leaves once that sync completes, no delivered grant
  // ever carries a counter the restart can forget — so the evidence
  // AmLeader(t1, t2) builds from delivered grants never regresses: every
  // post-restart grant uses a strictly larger counter and starts strictly
  // after every pre-crash interval.
  sim::SimulationConfig config;
  config.seed = 41;
  config.epsilon = Duration::zero();
  config.network.gst = RealTime::zero();
  config.network.delta = Duration::millis(1);
  config.network.delta_min = Duration::micros(500);
  config.storage.sync_latency = Duration::millis(4);
  config.storage.unsynced_key_loss = 1.0;

  leader::EnhancedLeaderConfig els_config;
  els_config.support_interval = Duration::millis(5);
  els_config.support_duration = Duration::millis(40);

  sim::Simulation sim(config);
  sim.add_process(
      std::make_unique<ElsRecoveryHost>(els_config, ProcessId(1)));
  sim.add_process(std::make_unique<GrantSink>());
  sim.add_process(std::make_unique<GrantSink>());
  sim.start();

  // Grants to p1 flow once the first bump's covering sync completes (the
  // per-process drawn latency is in [3ms, 5ms]); the counter is durable.
  sim.run_until(RealTime::zero() + Duration::millis(31));
  auto& p1 = sim.process_as<GrantSink>(ProcessId(1));
  ASSERT_FALSE(p1.grants.empty());

  // Switch to p2. The tick at t=35ms bumps the counter and requests a sync
  // that completes no earlier than t=38ms; crashing at 36.5ms lands inside
  // that window for every possible latency draw, so the bump write is lost
  // and the pending grant dies with the incarnation.
  sim.process_as<ElsRecoveryHost>(ProcessId(0)).set_believed(ProcessId(2));
  sim.run_until(RealTime::zero() + Duration::micros(36'500));
  sim.crash(ProcessId(0));
  auto& p2 = sim.process_as<GrantSink>(ProcessId(2));
  EXPECT_TRUE(p2.grants.empty())
      << "a grant carrying an unsynced counter must never be delivered";

  LocalTime pre_crash_max_end = LocalTime::min();
  std::int64_t pre_crash_max_counter = 0;
  for (const auto& g : p1.grants) {
    pre_crash_max_end = std::max(pre_crash_max_end, g.end);
    pre_crash_max_counter = std::max(pre_crash_max_counter, g.counter);
  }

  sim.restart(ProcessId(0),
              std::make_unique<ElsRecoveryHost>(els_config, ProcessId(2)));
  sim.run_until(sim.now() + Duration::millis(60));

  ASSERT_FALSE(p2.grants.empty()) << "restarted supporter never granted";
  for (const auto& g : p2.grants) {
    EXPECT_GT(g.start, pre_crash_max_end)
        << "a post-restart grant overlaps a pre-crash interval; AmLeader "
           "could stitch the two incarnations together";
    EXPECT_GT(g.counter, pre_crash_max_counter)
        << "the recovered counter regressed below a delivered grant";
  }
}

}  // namespace
}  // namespace cht
