// Protocol-phase spans: named durations that start in one event handler and
// end in another (a DoOps round, a leader reign, a blocked read). Because a
// phase crosses many simulator events, the primary primitive is the manual
// begin/end `Span`; `ScopedSpan` is the RAII form for phases confined to one
// scope. Both feed a `Histogram`, and call sites additionally emit a
// `trace_event("span.<name>", ...)` so spans land in `sim::Trace` next to
// the message-level trace.
#pragma once

#include <cstdint>

#include "metrics/registry.h"

namespace cht::metrics {

// A manually delimited phase. `begin(now)` arms it, `end(now)` records
// now - begin into the histogram and returns the duration (or -1 if the span
// was not active — e.g. a commit observed by a replica that never ran the
// prepare). Re-arming an active span restarts it; `cancel()` disarms without
// recording (e.g. a DoOps round abandoned on abdication).
class Span {
 public:
  Span() = default;
  explicit Span(Histogram* histogram) : histogram_(histogram) {}

  bool active() const { return active_; }
  std::int64_t begin_at() const { return begin_; }

  void begin(std::int64_t now) {
    begin_ = now;
    active_ = true;
  }

  std::int64_t end(std::int64_t now) {
    if (!active_) return -1;
    active_ = false;
    std::int64_t elapsed = now - begin_;
    if (elapsed < 0) elapsed = 0;
    if (histogram_ != nullptr) histogram_->record(elapsed);
    return elapsed;
  }

  void cancel() { active_ = false; }

 private:
  Histogram* histogram_ = nullptr;
  std::int64_t begin_ = 0;
  bool active_ = false;
};

// RAII span for phases that do fit one scope. The clock is read through a
// pointer so tests (and real-time callers) control it; spans nest naturally
// by scoping.
class ScopedSpan {
 public:
  ScopedSpan(Histogram& histogram, const std::int64_t* clock)
      : histogram_(histogram), clock_(clock), begin_(*clock) {}
  ~ScopedSpan() {
    std::int64_t elapsed = *clock_ - begin_;
    if (elapsed < 0) elapsed = 0;
    histogram_.record(elapsed);
  }
  ScopedSpan(const ScopedSpan&) = delete;
  ScopedSpan& operator=(const ScopedSpan&) = delete;

 private:
  Histogram& histogram_;
  const std::int64_t* clock_;
  std::int64_t begin_;
};

}  // namespace cht::metrics
