// The runtime witness for what detlint enforces statically: the same chaos
// spec run twice in one process yields byte-identical results on every
// protocol stack — same fingerprint, same history, same nemesis schedule,
// same trace, byte-identical repro-artifact files, byte-identical metrics
// JSON. Any wall-clock read, unseeded randomness, hash-order-dependent
// decision, uninitialized message field, or cross-run shared state would
// show up here as a diff between the two runs.
//
// Compile-time half of the audit: including core/wire_audit.h applies the
// static_assert battery over every wire-format struct (trivially copyable
// fixed-size payloads, value-semantics variable-size payloads).
#include <gtest/gtest.h>

#include <cstdio>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>

#include "chaos/adapter.h"
#include "chaos/spec.h"
#include "chaos/sweep.h"
#include "core/wire_audit.h"
#include "metrics/json.h"
#include "metrics/registry.h"

namespace cht {
namespace {

// Pure observer: captures the merged per-replica metric registries at
// adapter teardown (the last point the replicas exist inside run_one).
// Every protocol-visible call forwards unchanged, so a captured run's
// fingerprint is identical to an undecorated one.
class MetricsProbe final : public chaos::ForwardingAdapter {
 public:
  MetricsProbe(std::unique_ptr<chaos::ClusterAdapter> inner,
               metrics::Registry& out)
      : ForwardingAdapter(std::move(inner)), out_(out) {}
  ~MetricsProbe() override { inner().merge_metrics_into(out_); }

 private:
  metrics::Registry& out_;
};

struct CapturedRun {
  chaos::RunResult result;
  std::string metrics_json;
  std::string artifact_bytes;
};

CapturedRun run_captured(const chaos::RunSpec& spec) {
  CapturedRun captured;
  metrics::Registry merged;
  captured.result = chaos::run_one(
      spec, [&merged](std::unique_ptr<chaos::ClusterAdapter> inner) {
        return std::make_unique<MetricsProbe>(std::move(inner), merged);
      });
  captured.metrics_json = metrics::registry_to_json(merged).dump();

  // Both runs write to the SAME path: the artifact embeds its own path in
  // the "# replay:" header, so distinct filenames would differ trivially.
  const std::string path =
      ::testing::TempDir() + "det_twice_" + spec.protocol + ".txt";
  EXPECT_TRUE(chaos::write_artifact(path, captured.result));
  std::ifstream in(path, std::ios::binary);
  std::ostringstream bytes;
  bytes << in.rdbuf();
  captured.artifact_bytes = bytes.str();
  std::remove(path.c_str());
  return captured;
}

class DeterminismTwiceTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DeterminismTwiceTest, SecondRunIsByteIdentical) {
  chaos::RunSpec spec;
  spec.protocol = GetParam();
  spec.profile = "rolling-partitions";
  spec.object = "kv";
  spec.seed = 42;
  spec.ops = 40;

  const CapturedRun first = run_captured(spec);
  const CapturedRun second = run_captured(spec);

  EXPECT_EQ(first.result.fingerprint, second.result.fingerprint);
  EXPECT_EQ(first.result.violations, second.result.violations);
  EXPECT_EQ(first.result.quiesced, second.result.quiesced);
  EXPECT_EQ(first.result.checker_decided, second.result.checker_decided);
  EXPECT_EQ(first.result.submitted, second.result.submitted);
  EXPECT_EQ(first.result.completed, second.result.completed);
  EXPECT_EQ(first.result.leadership_changes, second.result.leadership_changes);
  EXPECT_EQ(first.result.crashes, second.result.crashes);
  EXPECT_EQ(first.result.restarts, second.result.restarts);
  EXPECT_EQ(first.result.nemesis_schedule, second.result.nemesis_schedule);
  EXPECT_EQ(first.result.trace_tail, second.result.trace_tail);
  EXPECT_EQ(first.result.history, second.result.history);
  EXPECT_EQ(first.artifact_bytes, second.artifact_bytes)
      << "repro artifact not byte-identical across same-spec runs";
  EXPECT_EQ(first.metrics_json, second.metrics_json)
      << "merged metrics registry not byte-identical across same-spec runs";
  // Sanity: the runs did something worth comparing.
  EXPECT_GT(first.result.completed, 0u);
  EXPECT_FALSE(first.artifact_bytes.empty());
}

// Restart-heavy determinism: the power-cycle profile exercises the entire
// crash-recovery machinery (StableStorage loss draws, Simulation::restart,
// recovery protocols, the durability invariant) and must be exactly as
// reproducible as the crash-stop profiles. Catches any RNG draw, container
// ordering or time read sneaking into the recovery paths.
TEST_P(DeterminismTwiceTest, RestartHeavyRunIsByteIdentical) {
  chaos::RunSpec spec;
  spec.protocol = GetParam();
  spec.profile = "power-cycle";
  spec.object = "kv";
  spec.seed = 7;
  spec.ops = 40;

  const CapturedRun first = run_captured(spec);
  const CapturedRun second = run_captured(spec);

  EXPECT_EQ(first.result.fingerprint, second.result.fingerprint);
  EXPECT_EQ(first.result.violations, second.result.violations);
  EXPECT_EQ(first.result.crashes, second.result.crashes);
  EXPECT_EQ(first.result.restarts, second.result.restarts);
  EXPECT_EQ(first.result.nemesis_schedule, second.result.nemesis_schedule);
  EXPECT_EQ(first.result.history, second.result.history);
  EXPECT_EQ(first.artifact_bytes, second.artifact_bytes)
      << "power-cycle repro artifact not byte-identical";
  EXPECT_EQ(first.metrics_json, second.metrics_json)
      << "power-cycle metrics not byte-identical";
  EXPECT_GT(first.result.completed, 0u);
  // The profile is only doing its job if processes actually went down and
  // came back (the end-of-run revival alone requires a prior bounce).
  EXPECT_GT(first.result.restarts, 0);
}

// Crash-loop determinism: the crash-loop profile re-crashes the same victim
// from nested timer closures (downtime/uptime draws interleaved with the
// recovery protocols), the most event-ordering-sensitive path the nemesis
// has. Any nondeterminism in the re-crash scheduling, the incarnation
// counter, or the per-incarnation sync-continuation teardown shows up here.
TEST_P(DeterminismTwiceTest, CrashLoopRunIsByteIdentical) {
  chaos::RunSpec spec;
  spec.protocol = GetParam();
  spec.profile = "crash-loop";
  spec.object = "kv";
  spec.seed = 13;
  spec.ops = 40;

  const CapturedRun first = run_captured(spec);
  const CapturedRun second = run_captured(spec);

  EXPECT_EQ(first.result.fingerprint, second.result.fingerprint);
  EXPECT_EQ(first.result.violations, second.result.violations);
  EXPECT_EQ(first.result.crashes, second.result.crashes);
  EXPECT_EQ(first.result.restarts, second.result.restarts);
  EXPECT_EQ(first.result.nemesis_schedule, second.result.nemesis_schedule);
  EXPECT_EQ(first.result.history, second.result.history);
  EXPECT_EQ(first.artifact_bytes, second.artifact_bytes)
      << "crash-loop repro artifact not byte-identical";
  EXPECT_EQ(first.metrics_json, second.metrics_json)
      << "crash-loop metrics not byte-identical";
  EXPECT_GT(first.result.completed, 0u);
  // The profile only earns its keep if the loop actually cycled: more
  // crashes than distinct victims requires at least one re-crash.
  EXPECT_GT(first.result.restarts, 0);
}

// Clock-storm determinism with the guard on: skew injections drive the
// clock-health guard through suspect/requalify transitions, reroute pending
// reads onto the degraded RMW path, and feed the exposure-window accounting
// (skew events, guard transitions, excused-read counts all recorded in the
// result). Every one of those moving parts must replay bit-identically —
// including the artifact, which now serializes clock_guard and
// reads_excused.
TEST_P(DeterminismTwiceTest, ClockStormGuardOnRunIsByteIdentical) {
  chaos::RunSpec spec;
  spec.protocol = GetParam();
  spec.profile = "clock-storm";
  spec.object = "kv";
  spec.seed = 23;
  spec.ops = 40;

  const CapturedRun first = run_captured(spec);
  const CapturedRun second = run_captured(spec);

  EXPECT_EQ(first.result.fingerprint, second.result.fingerprint);
  EXPECT_EQ(first.result.violations, second.result.violations);
  EXPECT_EQ(first.result.reads_excused, second.result.reads_excused);
  EXPECT_EQ(first.result.nemesis_schedule, second.result.nemesis_schedule);
  EXPECT_EQ(first.result.history, second.result.history);
  EXPECT_EQ(first.artifact_bytes, second.artifact_bytes)
      << "clock-storm repro artifact not byte-identical";
  EXPECT_EQ(first.metrics_json, second.metrics_json)
      << "clock-storm metrics not byte-identical";
  EXPECT_GT(first.result.completed, 0u);
  // The profile only earns its keep if clocks were actually skewed.
  EXPECT_FALSE(first.result.skew_events.empty());
}

// Legacy direct-submit determinism: with the client path disabled the
// harness injects operations straight into replicas (the pre-client data
// path, still used when replaying old repro artifacts). Both routing modes
// must stay independently byte-reproducible; the three cases above cover
// the default client path, this one pins the legacy path.
TEST_P(DeterminismTwiceTest, LegacyDirectSubmitRunIsByteIdentical) {
  chaos::RunSpec spec;
  spec.protocol = GetParam();
  spec.profile = "rolling-partitions";
  spec.object = "kv";
  spec.seed = 42;
  spec.ops = 40;
  spec.client_path = false;

  const CapturedRun first = run_captured(spec);
  const CapturedRun second = run_captured(spec);

  EXPECT_EQ(first.result.fingerprint, second.result.fingerprint);
  EXPECT_EQ(first.result.violations, second.result.violations);
  EXPECT_EQ(first.result.nemesis_schedule, second.result.nemesis_schedule);
  EXPECT_EQ(first.result.history, second.result.history);
  EXPECT_EQ(first.artifact_bytes, second.artifact_bytes)
      << "legacy-path repro artifact not byte-identical";
  EXPECT_EQ(first.metrics_json, second.metrics_json)
      << "legacy-path metrics not byte-identical";
  EXPECT_GT(first.result.completed, 0u);
}

INSTANTIATE_TEST_SUITE_P(AllStacks, DeterminismTwiceTest,
                         ::testing::ValuesIn(chaos::known_protocols()),
                         [](const ::testing::TestParamInfo<std::string>& info) {
                           std::string name = info.param;
                           for (char& c : name) {
                             if (c == '-') c = '_';
                           }
                           return name;
                         });

}  // namespace
}  // namespace cht
