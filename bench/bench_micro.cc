// Micro benchmarks (google-benchmark): substrate costs underlying the
// experiment harnesses — object apply, event-queue throughput, simulated
// cluster event rate, and linearizability checking.
//
// Unlike the stock BENCHMARK_MAIN(), the main() below understands the common
// bench flags (--smoke, --out=) and renders results through ExperimentResult,
// so this target emits the same BENCH_micro.json artifact schema as the
// experiment benches. Unrecognized flags are forwarded to google-benchmark
// (e.g. --benchmark_filter=...).
#include <benchmark/benchmark.h>

#include <memory>
#include <string>
#include <vector>

#include "checker/linearizability.h"
#include "common/experiment.h"
#include "harness/cluster.h"
#include "object/kv_object.h"
#include "object/register_object.h"
#include "sim/event_queue.h"

namespace {

using namespace cht;  // NOLINT: bench-local convenience

void BM_ObjectApplyKV(benchmark::State& state) {
  object::KVObject model;
  auto obj = model.make_initial_state();
  std::int64_t i = 0;
  for (auto _ : state) {
    benchmark::DoNotOptimize(
        model.apply(*obj, object::KVObject::put("k" + std::to_string(i % 64),
                                                "v")));
    ++i;
  }
}
BENCHMARK(BM_ObjectApplyKV);

void BM_EventQueueScheduleStep(benchmark::State& state) {
  sim::EventQueue queue;
  std::int64_t fired = 0;
  for (auto _ : state) {
    queue.schedule(queue.now() + Duration::micros(1), [&fired] { ++fired; });
    queue.step();
  }
  benchmark::DoNotOptimize(fired);
}
BENCHMARK(BM_EventQueueScheduleStep);

void BM_SimulatedClusterSecond(benchmark::State& state) {
  // Cost of simulating one second of a quiet 5-process cluster (heartbeats,
  // supports, lease renewals).
  for (auto _ : state) {
    harness::ClusterConfig config;
    config.n = static_cast<int>(state.range(0));
    harness::Cluster cluster(config,
                             std::make_shared<object::RegisterObject>());
    cluster.run_for(Duration::seconds(1));
    benchmark::DoNotOptimize(cluster.sim().network().stats().sent);
  }
}
BENCHMARK(BM_SimulatedClusterSecond)->Arg(3)->Arg(5)->Arg(9);

void BM_LinearizabilityChecker(benchmark::State& state) {
  // Sequential register history of `range` ops: checker fast path.
  const std::int64_t ops = state.range(0);
  object::RegisterObject model;
  std::vector<checker::HistoryOp> history;
  for (std::int64_t i = 0; i < ops; ++i) {
    checker::HistoryOp op;
    op.process = ProcessId(0);
    const bool write = i % 2 == 0;
    op.op = write ? object::RegisterObject::write(std::to_string(i))
                  : object::RegisterObject::read();
    op.invoked = RealTime::zero() + Duration::micros(10 * i);
    op.responded = op.invoked + Duration::micros(5);
    op.response = write ? "ok" : std::to_string(i - 1);
    history.push_back(op);
  }
  for (auto _ : state) {
    auto result = checker::check_linearizable(model, history);
    benchmark::DoNotOptimize(result.linearizable);
  }
}
BENCHMARK(BM_LinearizabilityChecker)->Arg(100)->Arg(1000);

void BM_FullProtocolWriteThroughput(benchmark::State& state) {
  // End-to-end protocol cost: committed writes per wall-second through the
  // full stack (leader batching, majority round, lease gate) on a quiet
  // post-GST cluster.
  harness::ClusterConfig config;
  config.n = 5;
  harness::Cluster cluster(config, std::make_shared<object::RegisterObject>());
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  std::int64_t writes = 0;
  for (auto _ : state) {
    cluster.submit(static_cast<int>(writes % 5),
                   object::RegisterObject::write(std::to_string(writes)));
    cluster.await_quiesce(Duration::seconds(10));
    ++writes;
  }
  state.SetItemsProcessed(writes);
}
BENCHMARK(BM_FullProtocolWriteThroughput);

void BM_FullProtocolLocalRead(benchmark::State& state) {
  harness::ClusterConfig config;
  config.n = 5;
  harness::Cluster cluster(config, std::make_shared<object::RegisterObject>());
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.submit(0, object::RegisterObject::write("v"));
  cluster.await_quiesce(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  std::int64_t reads = 0;
  for (auto _ : state) {
    cluster.submit(static_cast<int>(reads % 5), object::RegisterObject::read());
    ++reads;
  }
  cluster.await_quiesce(Duration::seconds(5));
  state.SetItemsProcessed(reads);
}
BENCHMARK(BM_FullProtocolLocalRead);

void BM_CheckerConcurrentWindow(benchmark::State& state) {
  // Checker cost as the concurrent-window width grows: `width` fully
  // overlapping writes followed by a read.
  const std::int64_t width = state.range(0);
  object::RegisterObject model("0");
  std::vector<checker::HistoryOp> history;
  for (std::int64_t i = 0; i < width; ++i) {
    checker::HistoryOp op;
    op.process = ProcessId(static_cast<int>(i % 5));
    op.op = object::RegisterObject::write(std::to_string(i));
    op.invoked = RealTime::zero();
    op.responded = RealTime::zero() + Duration::millis(100);
    op.response = "ok";
    history.push_back(op);
  }
  checker::HistoryOp read;
  read.process = ProcessId(0);
  read.op = object::RegisterObject::read();
  read.invoked = RealTime::zero() + Duration::millis(200);
  read.responded = read.invoked + Duration::millis(1);
  read.response = std::to_string(width - 1);
  history.push_back(read);
  for (auto _ : state) {
    auto result = checker::check_linearizable(model, history);
    benchmark::DoNotOptimize(result.linearizable);
  }
}
BENCHMARK(BM_CheckerConcurrentWindow)->Arg(4)->Arg(8)->Arg(12);

// Collects per-benchmark runs into the shared ExperimentResult (table rows +
// named metrics); console rendering is left to the builder's table printer.
class ResultCollector : public benchmark::BenchmarkReporter {
 public:
  explicit ResultCollector(cht::bench::ExperimentResult& result)
      : result_(result) {}

  bool ReportContext(const Context& context) override {
    result_.metric("cpus", static_cast<std::int64_t>(context.cpu_info.num_cpus));
    return true;
  }

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.run_type != Run::RT_Iteration || run.error_occurred) continue;
      const std::string name = run.benchmark_name();
      const double iters = run.iterations > 0
                               ? static_cast<double>(run.iterations)
                               : 1.0;
      const double real_ns = run.real_accumulated_time / iters * 1e9;
      const double cpu_ns = run.cpu_accumulated_time / iters * 1e9;
      result_.row({name,
                   metrics::Table::num(static_cast<std::int64_t>(run.iterations)),
                   metrics::Table::num(real_ns, 1),
                   metrics::Table::num(cpu_ns, 1)});
      result_.metric(name + ".real_time_ns", real_ns);
      result_.metric(name + ".cpu_time_ns", cpu_ns);
      const auto items = run.counters.find("items_per_second");
      if (items != run.counters.end()) {
        result_.metric(name + ".items_per_second",
                       static_cast<double>(items->second.value));
      }
    }
  }

 private:
  cht::bench::ExperimentResult& result_;
};

}  // namespace

int main(int argc, char** argv) {
  bool smoke = false;
  std::string out;
  std::vector<char*> fwd_argv = {argv[0]};
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    if (arg == "--smoke") {
      smoke = true;
    } else if (arg.rfind("--out=", 0) == 0) {
      out = arg.substr(6);
    } else {
      fwd_argv.push_back(argv[i]);
    }
  }
  // google-benchmark 1.7 expects a bare double for min_time (no "s" suffix).
  std::string min_time = "--benchmark_min_time=0.01";
  if (smoke) fwd_argv.push_back(min_time.data());
  int fwd_argc = static_cast<int>(fwd_argv.size());
  benchmark::Initialize(&fwd_argc, fwd_argv.data());
  if (benchmark::ReportUnrecognizedArguments(fwd_argc, fwd_argv.data())) {
    return 2;
  }

  cht::bench::ExperimentResult result("micro", out, smoke);
  result.begin("micro: substrate costs (google-benchmark)",
               "Object apply, event-queue throughput, full-stack simulated\n"
               "cluster rates, and linearizability-checker scaling.");
  result.columns({"benchmark", "iterations", "real ns/iter", "cpu ns/iter"});
  ResultCollector collector(result);
  benchmark::RunSpecifiedBenchmarks(&collector);
  benchmark::Shutdown();
  result.end();
  return result.finish();
}
