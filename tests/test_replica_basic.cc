// Basic end-to-end behaviour of the replication algorithm on a synchronous
// (post-GST from the start) network.
#include <gtest/gtest.h>

#include <memory>

#include "checker/linearizability.h"
#include "harness/cluster.h"
#include "object/kv_object.h"
#include "object/register_object.h"

namespace cht {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

ClusterConfig small_cluster() {
  ClusterConfig config;
  config.n = 5;
  config.seed = 7;
  config.delta = Duration::millis(10);
  config.epsilon = Duration::millis(1);
  config.gst = RealTime::zero();
  return config;
}

TEST(ReplicaBasicTest, ElectsASteadyLeader) {
  Cluster cluster(small_cluster(), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  const int leader = cluster.steady_leader();
  ASSERT_GE(leader, 0);
  // Exactly one steady leader.
  int count = 0;
  for (int i = 0; i < cluster.n(); ++i) {
    if (cluster.replica(i).is_steady_leader()) ++count;
  }
  EXPECT_EQ(count, 1);
}

TEST(ReplicaBasicTest, CommitsAnRmwAndRespondsOnce) {
  Cluster cluster(small_cluster(), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.submit(1, object::RegisterObject::write("hello"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  EXPECT_EQ(cluster.completed(), 1u);
  const auto& record = cluster.history().ops().front();
  EXPECT_EQ(*record.response, "ok");
}

TEST(ReplicaBasicTest, ReadSeesCommittedWrite) {
  Cluster cluster(small_cluster(), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.submit(1, object::RegisterObject::write("v1"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  // Let the new batch's lease propagate so every process can read it.
  cluster.run_for(cluster.core_config().lease_renew_interval * 3);
  for (int i = 0; i < cluster.n(); ++i) {
    cluster.submit(i, object::RegisterObject::read());
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  for (const auto& op : cluster.history().ops()) {
    if (cluster.model().is_read(op.op)) {
      EXPECT_EQ(*op.response, "v1");
    }
  }
}

TEST(ReplicaBasicTest, AllReplicasConvergeToSameState) {
  Cluster cluster(small_cluster(), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  for (int i = 0; i < 20; ++i) {
    cluster.submit(i % cluster.n(),
                   object::KVObject::put("k" + std::to_string(i % 4),
                                         "v" + std::to_string(i)));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  // Allow commit rebroadcast to reach everyone.
  cluster.run_for(Duration::seconds(1));
  const std::string expect = cluster.replica(0).applied_state().fingerprint();
  for (int i = 1; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.replica(i).applied_state().fingerprint(), expect)
        << "replica " << i;
    EXPECT_EQ(cluster.replica(i).snapshot().applied_upto,
              cluster.replica(0).snapshot().applied_upto);
  }
}

TEST(ReplicaBasicTest, HistoryIsLinearizable) {
  Cluster cluster(small_cluster(), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  for (int round = 0; round < 10; ++round) {
    for (int i = 0; i < cluster.n(); ++i) {
      if ((round + i) % 3 == 0) {
        cluster.submit(i, object::KVObject::put(
                              "k", "r" + std::to_string(round) + "p" +
                                       std::to_string(i)));
      } else {
        cluster.submit(i, object::KVObject::get("k"));
      }
    }
    cluster.run_for(Duration::millis(25));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(ReplicaBasicTest, LeaderReadsAreNonBlocking) {
  Cluster cluster(small_cluster(), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));  // fully stabilized
  const int leader = cluster.steady_leader();
  ASSERT_GE(leader, 0);
  auto& metrics = cluster.replica(leader).metrics();
  const auto blocked_before = metrics.value("reads_blocked");
  const auto completed_before = metrics.value("reads_completed");
  for (int i = 0; i < 50; ++i) {
    cluster.submit(leader, object::RegisterObject::read());
    cluster.run_for(Duration::millis(1));
  }
  EXPECT_EQ(metrics.value("reads_blocked") - blocked_before, 0);
  EXPECT_EQ(metrics.value("reads_completed") - completed_before, 50);
}

TEST(ReplicaBasicTest, FollowerReadsAreNonBlockingWithoutConflicts) {
  Cluster cluster(small_cluster(), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  int blocked = 0;
  for (int round = 0; round < 20; ++round) {
    for (int i = 0; i < cluster.n(); ++i) {
      if (i == leader) continue;
      const auto before = cluster.replica(i).metrics().value("reads_blocked");
      cluster.submit(i, object::RegisterObject::read());
      blocked += static_cast<int>(
          cluster.replica(i).metrics().value("reads_blocked") - before);
    }
    cluster.run_for(Duration::millis(2));
  }
  EXPECT_EQ(blocked, 0);
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
}

}  // namespace
}  // namespace cht
