// Property-based testing: randomized workloads, crash schedules and network
// chaos, sweeping seeds via TEST_P. After every run we assert the paper's
// invariants and properties:
//   (a) the full history is linearizable;
//   (b) I1 across replicas: agreed, stable batches; no op in two batches;
//   (c) I3: every batch below a committed one is held by a majority;
//   (d) post-GST termination of every operation issued by a correct process;
//   (e) read locality: messages do not scale with reads.
#include <gtest/gtest.h>

#include <cstdlib>
#include <iostream>
#include <map>
#include <memory>
#include <set>

#include "checker/linearizability.h"
#include "common/rng.h"
#include "harness/cluster.h"
#include "object/bank_object.h"
#include "object/kv_object.h"

namespace cht {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

struct PropertyCase {
  std::uint64_t seed;
  bool chaos;        // pre-GST asynchrony + loss
  bool crash_leader; // crash one leader mid-run
  bool partition;    // temporarily isolate a process mid-run, then heal
  bool flapping;     // toggle a random process's connectivity repeatedly
  double read_fraction;
};

void check_cross_replica_invariants(Cluster& cluster) {
  // I1: all replicas agree on batch contents; no operation id appears in two
  // different batch numbers anywhere in the cluster.
  std::map<BatchNumber, core::Batch> global;
  std::map<OperationId, BatchNumber> op_to_batch;
  for (int i = 0; i < cluster.n(); ++i) {
    for (const auto& [number, ops] : cluster.replica(i).snapshot().batches) {
      auto it = global.find(number);
      if (it == global.end()) {
        global.emplace(number, ops);
      } else {
        ASSERT_EQ(it->second, ops)
            << "I1 violated: replica " << i << " disagrees on batch " << number;
      }
    }
  }
  for (const auto& [number, ops] : global) {
    for (const auto& op : ops) {
      auto [it, inserted] = op_to_batch.try_emplace(op.id, number);
      ASSERT_TRUE(inserted || it->second == number)
          << "I1 violated: " << op.id << " in batches " << it->second
          << " and " << number;
    }
  }
  // I3: if any process has batch j, every i < j is held by a majority.
  BatchNumber max_committed = 0;
  for (const auto& [number, ops] : global) {
    max_committed = std::max(max_committed, number);
  }
  for (BatchNumber i = 1; i < max_committed; ++i) {
    int holders = 0;
    for (int p = 0; p < cluster.n(); ++p) {
      if (cluster.replica(p).snapshot().batches.contains(i)) ++holders;
    }
    ASSERT_GT(holders, cluster.n() / 2)
        << "I3 violated: batch " << i << " held by " << holders << " of "
        << cluster.n();
  }
}

class RandomWorkloadTest : public ::testing::TestWithParam<PropertyCase> {};

TEST_P(RandomWorkloadTest, LinearizableAndInvariantsHold) {
  const PropertyCase param = GetParam();
  ClusterConfig config;
  config.n = 5;
  config.seed = param.seed;
  config.delta = Duration::millis(10);
  if (param.chaos) {
    config.gst = RealTime::zero() + Duration::seconds(1);
    config.pre_gst_loss = 0.2;
    config.pre_gst_delay_max = Duration::millis(150);
  }
  Cluster cluster(config, std::make_shared<object::KVObject>());
  Rng rng(param.seed * 7919 + 13);

  const std::vector<std::string> keys = {"a", "b", "c"};
  bool crashed_one = false;
  int isolated = -1;
  for (int step = 0; step < 120; ++step) {
    // Partition injection: cut one random process off for ~20 steps, then
    // heal. (Post-GST partitions violate the stabilization assumption on
    // purpose; safety must hold and liveness must return after healing.)
    if (param.partition && step == 40) {
      isolated = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(cluster.n())));
      cluster.sim().network().set_process_isolated(ProcessId(isolated), true,
                                                   cluster.n());
    }
    if (param.partition && step == 60 && isolated >= 0) {
      cluster.sim().network().set_process_isolated(ProcessId(isolated), false,
                                                   cluster.n());
      isolated = -1;
    }
    const int proc = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(cluster.n())));
    if (cluster.replica(proc).crashed()) continue;
    const std::string& key = keys[rng.next_below(keys.size())];
    if (rng.next_double() < param.read_fraction) {
      cluster.submit(proc, object::KVObject::get(key));
    } else if (rng.next_bool(0.2)) {
      cluster.submit(proc, object::KVObject::cas(key, "", "s" + std::to_string(step)));
    } else {
      cluster.submit(proc, object::KVObject::put(key, "s" + std::to_string(step)));
    }
    // Pre-GST, space submissions out: with loss and retries, operations
    // overlap heavily, and the linearizability check of a deeply concurrent
    // prefix gets exponentially expensive. The chaos is in the network, not
    // in the submission rate.
    const bool pre_gst = param.chaos && cluster.sim().now() < config.gst;
    cluster.run_for(Duration::millis(pre_gst ? rng.next_in(40, 120)
                                             : rng.next_in(1, 30)));
    if (param.crash_leader && !crashed_one && step == 60) {
      const int leader = cluster.steady_leader();
      if (leader >= 0) {
        cluster.sim().crash(ProcessId(leader));
        crashed_one = true;
      }
    }
    if (param.flapping && step % 10 == 5) {
      // Isolate a random process for a few steps: link flapping stresses the
      // retry/reintegration paths far harder than one clean partition. The
      // bursts are kept short so operation latencies stay bounded — the
      // final linearizability check is exponential in the width of the
      // concurrent windows that stalled operations create.
      const int victim = static_cast<int>(rng.next_below(
          static_cast<std::uint64_t>(cluster.n())));
      if (isolated >= 0) {
        cluster.sim().network().set_process_isolated(ProcessId(isolated),
                                                     false, cluster.n());
      }
      cluster.sim().network().set_process_isolated(ProcessId(victim), true,
                                                   cluster.n());
      isolated = victim;
    }
    if (param.flapping && step % 10 == 9 && isolated >= 0) {
      cluster.sim().network().set_process_isolated(ProcessId(isolated), false,
                                                   cluster.n());
      isolated = -1;
    }
    // Online invariant checking: I1/I3 must hold in *every* reachable
    // state, not only at the end of the run.
    if (step % 20 == 19) check_cross_replica_invariants(cluster);
  }
  if (isolated >= 0) {
    cluster.sim().network().set_process_isolated(ProcessId(isolated), false,
                                                 cluster.n());
  }

  // (d) termination: ops issued by correct (non-crashed) processes complete.
  // Ops issued by the crashed leader before its crash may stay pending.
  const bool quiesced = cluster.await_quiesce(Duration::seconds(120));
  if (!quiesced) {
    for (const auto& op : cluster.history().ops()) {
      if (!op.completed()) {
        ASSERT_TRUE(cluster.replica(op.process.index()).crashed())
            << "op from correct process " << op.process << " never completed";
      }
    }
  }

  // (a) linearizability of everything that happened.
  if (std::getenv("CHT_PROP_TIMING") != nullptr) {
    std::cerr << "[timing] sim done, ops=" << cluster.history().ops().size()
              << " completed=" << cluster.completed() << "\n";
  }
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  ASSERT_TRUE(result.linearizable) << "seed " << param.seed << ": "
                                   << result.explanation;

  // (b) + (c).
  check_cross_replica_invariants(cluster);
}

std::vector<PropertyCase> make_cases() {
  std::vector<PropertyCase> cases;
  for (std::uint64_t seed = 1; seed <= 10; ++seed) {
    cases.push_back({seed, false, false, false, false, 0.6});
  }
  for (std::uint64_t seed = 11; seed <= 18; ++seed) {
    cases.push_back({seed, true, false, false, false, 0.5});
  }
  for (std::uint64_t seed = 19; seed <= 26; ++seed) {
    cases.push_back({seed, false, true, false, false, 0.5});
  }
  for (std::uint64_t seed = 27; seed <= 30; ++seed) {
    cases.push_back({seed, true, true, false, false, 0.4});
  }
  for (std::uint64_t seed = 31; seed <= 38; ++seed) {
    cases.push_back({seed, false, false, true, false, 0.5});
  }
  for (std::uint64_t seed = 39; seed <= 42; ++seed) {
    cases.push_back({seed, false, true, true, false, 0.5});
  }
  for (std::uint64_t seed = 43; seed <= 48; ++seed) {
    cases.push_back({seed, false, false, false, true, 0.5});
  }
  // Everything at once: pre-GST chaos, a leader crash, and link flapping.
  for (std::uint64_t seed = 49; seed <= 56; ++seed) {
    cases.push_back({seed, true, true, false, true, 0.5});
  }
  // Read-heavy and write-heavy extremes.
  for (std::uint64_t seed = 57; seed <= 60; ++seed) {
    cases.push_back({seed, false, false, false, false, 0.95});
  }
  for (std::uint64_t seed = 61; seed <= 64; ++seed) {
    cases.push_back({seed, false, false, false, false, 0.05});
  }
  return cases;
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomWorkloadTest,
                         ::testing::ValuesIn(make_cases()),
                         [](const ::testing::TestParamInfo<PropertyCase>& info) {
                           const auto& p = info.param;
                           std::string name = "seed" + std::to_string(p.seed);
                           if (p.chaos) name += "_chaos";
                           if (p.crash_leader) name += "_crash";
                           if (p.partition) name += "_partition";
                           if (p.flapping) name += "_flapping";
                           return name;
                         });

// Read locality as a property: for any seed, adding 10x reads leaves the
// message count within noise.
class ReadLocalityTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ReadLocalityTest, MessagesIndependentOfReadCount) {
  auto run = [&](int reads_per_step) {
    ClusterConfig config;
    config.n = 5;
    config.seed = GetParam();
    config.delta = Duration::millis(10);
    Cluster cluster(config, std::make_shared<object::BankObject>());
    EXPECT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
    cluster.run_for(Duration::seconds(1));
    const auto before = cluster.sim().network().stats().sent;
    for (int step = 0; step < 20; ++step) {
      cluster.submit(step % cluster.n(),
                     object::BankObject::deposit("acct", 1));
      for (int r = 0; r < reads_per_step; ++r) {
        cluster.submit((step + r) % cluster.n(),
                       object::BankObject::balance("acct"));
      }
      cluster.run_for(Duration::millis(50));
    }
    cluster.await_quiesce(Duration::seconds(30));
    return cluster.sim().network().stats().sent - before;
  };
  const auto with_few = run(1);
  const auto with_many = run(10);
  EXPECT_LT(static_cast<double>(with_many),
            static_cast<double>(with_few) * 1.05)
      << "10x reads must not increase message traffic";
}

INSTANTIATE_TEST_SUITE_P(Seeds, ReadLocalityTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u));

}  // namespace
}  // namespace cht
