// Mutation self-test support: an adapter decorator that deliberately breaks
// linearizability, so the chaos harness can prove it has teeth.
//
// EvilAdapter interposes on the submit path of any ClusterAdapter and serves
// a fraction of reads from a frozen snapshot of the initial object state —
// the classic "read from a stale applied index" bug. Any read answered this
// way after a completed conflicting write yields a non-linearizable history
// that the sweep MUST flag; test_chaos_mutation.cc asserts it does within a
// bounded seed budget.
//
// Build-time gated: this header and evil.cc refuse to compile unless
// CHT_CHAOS_ENABLE_EVIL is defined, and evil.cc is deliberately NOT part of
// the cht_chaos library — only the mutation self-test target compiles it.
#pragma once

#ifndef CHT_CHAOS_ENABLE_EVIL
#error "chaos evil mode must be enabled explicitly (-DCHT_CHAOS_ENABLE_EVIL)"
#endif

#include <memory>

#include "chaos/adapter.h"

namespace cht::chaos {

class EvilAdapter final : public ForwardingAdapter {
 public:
  // Serves every `stale_every`-th read from the frozen initial state.
  EvilAdapter(std::unique_ptr<ClusterAdapter> inner, int stale_every = 3);

  void submit(int process, object::Operation op) override;
  std::size_t submitted() const override {
    return inner().submitted() + stale_served_;
  }
  std::size_t completed() const override {
    return inner().completed() + stale_served_;
  }

  std::size_t stale_served() const { return stale_served_; }

 private:
  int stale_every_;
  int reads_seen_ = 0;
  std::size_t stale_served_ = 0;
  std::unique_ptr<object::ObjectState> frozen_state_;
};

}  // namespace cht::chaos
