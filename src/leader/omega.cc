#include "leader/omega.h"

namespace cht::leader {

namespace {
struct Heartbeat {};
}  // namespace

void OmegaDetector::start() {
  last_seen_.assign(host_.cluster_size(), LocalTime::min());
  send_heartbeat();
}

void OmegaDetector::send_heartbeat() {
  host_.broadcast(kHeartbeatType, Heartbeat{});
  host_.schedule_after(config_.heartbeat_interval, [this] { send_heartbeat(); });
}

bool OmegaDetector::handle_message(const sim::Message& message) {
  if (!message.is(kHeartbeatType)) return false;
  last_seen_.at(message.from.index()) = host_.now_local();
  return true;
}

ProcessId OmegaDetector::leader() {
  const LocalTime now = host_.now_local();
  for (int i = 0; i < host_.cluster_size(); ++i) {
    if (i == host_.id().index()) return host_.id();  // self is always alive
    if (last_seen_[i] != LocalTime::min() &&
        now - last_seen_[i] <= config_.timeout) {
      return ProcessId(i);
    }
  }
  return host_.id();
}

}  // namespace cht::leader
