// E8 — Necessity of blocking (paper Section 4, Theorem 4.1).
//
// The theorem: any linearizable implementation has a run in which reads at
// n-1 processes block for at least alpha = min(epsilon, delta/2) - 2*gamma
// real time (gamma = minimum op-issue spacing, negligible). Its proof uses
// shifting executions: delay one process by alpha + 2*gamma; the shifted run
// is indistinguishable and still legal, but if two processes had fast reads,
// the shifted run would order a v0-read after a completed v1-read —
// violating linearizability.
//
// Three executable parts:
//   (1) the shift-legality arithmetic: for each (epsilon, delta) we verify
//       that shifting by s = min(epsilon, delta/2) keeps clocks within
//       epsilon/2 of real time and delays within [0, delta] — the exact
//       side conditions the proof needs;
//   (2) the predicted violation, realized: an algorithm whose reads answer
//       instantly from local state (ReadPolicy::kUnsafeLocal) — i.e. reads
//       "faster than alpha" — produces a history our checker rejects;
//   (3) our algorithm's worst-case blocking (<= 3*delta) against alpha:
//       within a constant factor of optimal when delta = Theta(epsilon).
#include <iostream>
#include <memory>

#include "checker/linearizability.h"
#include "common/bench_util.h"
#include "common/experiment.h"
#include "object/register_object.h"

namespace cht::bench {
namespace {

struct ShiftCheck {
  Duration shift;
  bool clock_in_bounds;
  bool delay_to_in_bounds;
  bool delay_from_in_bounds;
};

// The proof's run r: clocks epsilon/2 ahead, all delays delta/2. Run r'
// shifts process p later by s: clock_p slower by s, delays to p + s, delays
// from p - s. Legal iff the three shifted quantities stay within the model.
ShiftCheck check_shift(Duration epsilon, Duration delta) {
  const Duration s = std::min(epsilon, delta / 2);
  ShiftCheck check;
  check.shift = s;
  // Clock: epsilon/2 - s must be >= -epsilon/2  <=>  s <= epsilon.
  check.clock_in_bounds = s <= epsilon;
  // Delay to p: delta/2 + s <= delta  <=>  s <= delta/2.
  check.delay_to_in_bounds = s <= delta / 2;
  // Delay from p: delta/2 - s >= 0    <=>  s <= delta/2.
  check.delay_from_in_bounds = s <= delta / 2;
  return check;
}

// Part (2): reads faster than the bound => linearizability violation.
bool demonstrate_violation(ExperimentResult& result, Duration delta) {
  const std::uint64_t max_seed = result.smoke() ? 10 : 30;
  for (std::uint64_t seed = 1; seed <= max_seed; ++seed) {
    harness::ClusterConfig config;
    config.n = 5;
    config.seed = seed;
    config.delta = delta;
    core::ConfigOverrides overrides;
    overrides.read_policy = core::ReadPolicy::kUnsafeLocal;
    harness::Cluster cluster(config, std::make_shared<object::RegisterObject>(),
                             overrides);
    if (!cluster.await_steady_leader(Duration::seconds(5))) continue;
    cluster.run_for(Duration::seconds(1));
    const int leader = cluster.steady_leader();
    for (int i = 0; i < 40; ++i) {
      cluster.submit(leader, object::RegisterObject::write(std::to_string(i)));
      cluster.run_for(delta / 3);
      cluster.submit((leader + 1) % cluster.n(), object::RegisterObject::read());
      cluster.run_for(delta * 2);
    }
    cluster.await_quiesce(Duration::seconds(30));
    const auto check =
        checker::check_linearizable(cluster.model(), cluster.history().ops());
    if (!check.linearizable) {
      result.config("unsafe-local", cluster.config(), cluster.overrides());
      return true;
    }
  }
  return false;
}

// Part (3): measured worst-case blocking of the real algorithm.
Duration measured_blocking(ExperimentResult& result, Duration epsilon,
                           Duration delta, const std::string& label) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = 88;
  config.delta = delta;
  config.epsilon = epsilon;
  harness::Cluster cluster(config, std::make_shared<object::RegisterObject>());
  cluster.await_steady_leader(Duration::seconds(10));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  for (int i = 0; i < result.scaled(150, 30); ++i) {
    cluster.submit((leader + 1) % cluster.n(),
                   object::RegisterObject::write(std::to_string(i)));
    cluster.run_for(delta / 2);
    for (int p = 0; p < cluster.n(); ++p) {
      cluster.submit(p, object::RegisterObject::read());
    }
    cluster.run_for(delta);
  }
  cluster.await_quiesce(Duration::seconds(60));
  std::int64_t worst_us = 0;
  for (int p = 0; p < cluster.n(); ++p) {
    const auto* blocks =
        cluster.replica(p).metrics().find_histogram("span.read.block_us");
    if (blocks != nullptr) worst_us = std::max(worst_us, blocks->max());
  }
  result.observe(label, cluster);
  return Duration::micros(worst_us);
}

}  // namespace
}  // namespace cht::bench

int main(int argc, char** argv) {
  using namespace cht;
  using namespace cht::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  ExperimentResult result("lower_bound", args);

  result.begin(
      "E8a: shifting-execution legality (Theorem 4.1 side conditions)",
      "For each (epsilon, delta), shifting one process by\n"
      "s = min(epsilon, delta/2) must keep the run legal: clock within\n"
      "epsilon/2 of real time, delays within [0, delta].");
  result.columns({"epsilon (ms)", "delta (ms)",
                  "alpha = min(eps, delta/2) (ms)", "clock ok", "delay-to ok",
                  "delay-from ok"});
  for (const auto& [e_ms, d_ms] :
       std::vector<std::pair<int, int>>{{1, 10}, {5, 10}, {10, 10},
                                        {20, 10}, {1, 100}, {50, 20}}) {
    const auto c = check_shift(Duration::millis(e_ms), Duration::millis(d_ms));
    result.row({metrics::Table::num(static_cast<std::int64_t>(e_ms)),
                metrics::Table::num(static_cast<std::int64_t>(d_ms)),
                ms2(c.shift), c.clock_in_bounds ? "yes" : "NO",
                c.delay_to_in_bounds ? "yes" : "NO",
                c.delay_from_in_bounds ? "yes" : "NO"});
  }
  result.end();

  result.begin(
      "E8b: the predicted violation, realized",
      "An algorithm whose reads answer instantly from local state (blocking\n"
      "< alpha) must violate linearizability in some run; we search seeds\n"
      "until the checker exhibits one.");
  const bool violated = demonstrate_violation(result, Duration::millis(10));
  std::cout << "linearizability violation found with instant local reads: "
            << (violated ? "YES (as Theorem 4.1 predicts)" : "no (unexpected)")
            << "\n";
  result.metric("unsafe_local_violation_found",
                static_cast<std::int64_t>(violated ? 1 : 0));
  result.end();

  result.begin(
      "E8c: our algorithm against the bound",
      "Measured worst-case read blocking vs the alpha lower bound: within a\n"
      "constant factor when delta = Theta(epsilon) (paper S4 conclusion).");
  result.columns({"epsilon (ms)", "delta (ms)", "alpha (ms)",
                  "ours max block (ms)", "ours bound 3*delta (ms)",
                  "ratio ours/alpha"});
  for (const auto& [e_ms, d_ms] :
       std::vector<std::pair<int, int>>{{10, 10}, {5, 10}, {20, 20}}) {
    const Duration epsilon = Duration::millis(e_ms);
    const Duration delta = Duration::millis(d_ms);
    const Duration alpha = std::min(epsilon, delta / 2);
    const std::string label =
        "eps" + std::to_string(e_ms) + "-delta" + std::to_string(d_ms);
    const Duration measured = measured_blocking(result, epsilon, delta, label);
    result.row({metrics::Table::num(static_cast<std::int64_t>(e_ms)),
                metrics::Table::num(static_cast<std::int64_t>(d_ms)),
                ms2(alpha), ms2(measured), ms2(3 * delta),
                metrics::Table::num(static_cast<double>(measured.to_micros()) /
                                        alpha.to_micros(),
                                    2)});
    result.metric("max_block_us_" + label, measured.to_micros());
  }
  result.note(
      "Expected shape: all legality checks pass; E8b finds the\n"
      "violation; E8c ratio is a small constant (<= 6 = 3delta /\n"
      "(delta/2)) when delta = Theta(epsilon).");
  result.end();
  return result.finish();
}
