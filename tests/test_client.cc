// Networked client subsystem tests: session-table admission semantics,
// exactly-once RMWs under message duplication and crash loops, leader
// routing via Redirects, and session-table rebuild through power-cycle
// recovery. These pin the client-visible contract the chaos exactly-once
// invariant checks probabilistically.
#include <gtest/gtest.h>

#include <memory>
#include <string>

#include "client/client.h"
#include "client/session.h"
#include "harness/cluster.h"
#include "harness/raft_cluster.h"
#include "harness/vr_cluster.h"
#include "object/counter_object.h"

namespace cht {
namespace {

// --- SessionTable unit ------------------------------------------------------

OperationId cid(int client, std::int64_t seq) {
  return OperationId{ProcessId(client), seq};
}

TEST(SessionTableTest, AdmissionClassesFollowAppliedPrefix) {
  client::SessionTable table;
  // Unknown client: everything is fresh.
  EXPECT_EQ(table.admit(cid(7, 1)), client::SessionTable::Admit::kFresh);
  EXPECT_EQ(table.admit(cid(7, 9)), client::SessionTable::Admit::kFresh);

  table.record(cid(7, 1), "r1");
  EXPECT_EQ(table.admit(cid(7, 1)), client::SessionTable::Admit::kDuplicate);
  EXPECT_EQ(table.admit(cid(7, 2)), client::SessionTable::Admit::kFresh);

  table.record(cid(7, 2), "r2");
  EXPECT_EQ(table.admit(cid(7, 1)), client::SessionTable::Admit::kStale);
  EXPECT_EQ(table.admit(cid(7, 2)), client::SessionTable::Admit::kDuplicate);
  EXPECT_EQ(table.admit(cid(7, 3)), client::SessionTable::Admit::kFresh);
}

TEST(SessionTableTest, CachesOnlyTheLastResponsePerClient) {
  client::SessionTable table;
  table.record(cid(5, 1), "first");
  ASSERT_NE(table.cached(cid(5, 1)), nullptr);
  EXPECT_EQ(*table.cached(cid(5, 1)), "first");

  table.record(cid(5, 2), "second");
  EXPECT_EQ(table.cached(cid(5, 1)), nullptr) << "older entries must be gone";
  ASSERT_NE(table.cached(cid(5, 2)), nullptr);
  EXPECT_EQ(*table.cached(cid(5, 2)), "second");
  // A different client's same seq is a different session.
  EXPECT_EQ(table.cached(cid(6, 2)), nullptr);
}

TEST(SessionTableTest, RecordIgnoresSeqRegression) {
  client::SessionTable table;
  table.record(cid(3, 4), "newer");
  table.record(cid(3, 2), "older");  // impossible for sequential clients
  EXPECT_EQ(table.admit(cid(3, 4)), client::SessionTable::Admit::kDuplicate);
  EXPECT_EQ(*table.cached(cid(3, 4)), "newer");
}

TEST(SessionTableTest, SizeBoundedByClientCount) {
  client::SessionTable table;
  for (int round = 0; round < 10; ++round) {
    for (int c = 5; c < 8; ++c) {
      table.record(cid(c, round + 1), "r");
    }
  }
  EXPECT_EQ(table.size(), 3u);
}

TEST(SessionTableTest, CapacityEvictsLeastRecentlyApplied) {
  client::SessionTable table;
  table.set_capacity(2);
  table.record(cid(5, 1), "a");
  table.record(cid(6, 1), "b");
  table.record(cid(7, 1), "c");  // client 5 is now the idlest: evicted
  EXPECT_EQ(table.size(), 2u);

  // The documented session-expiry cost: the evicted client's retry is no
  // longer recognized as a duplicate and readmits as fresh.
  EXPECT_EQ(table.admit(cid(5, 1)), client::SessionTable::Admit::kFresh);
  EXPECT_EQ(table.cached(cid(5, 1)), nullptr);
  // Survivors keep their dedup state.
  EXPECT_EQ(table.admit(cid(6, 1)), client::SessionTable::Admit::kDuplicate);
  EXPECT_EQ(*table.cached(cid(7, 1)), "c");

  // Applying for client 6 refreshes its recency, so the next newcomer
  // evicts client 7 instead.
  table.record(cid(6, 2), "b2");
  table.record(cid(8, 1), "d");
  EXPECT_EQ(table.admit(cid(7, 1)), client::SessionTable::Admit::kFresh);
  EXPECT_EQ(table.admit(cid(6, 2)), client::SessionTable::Admit::kDuplicate);
}

TEST(SessionTableTest, ShrinkingCapacityEvictsImmediately) {
  client::SessionTable table;  // default: unbounded
  table.record(cid(1, 1), "a");
  table.record(cid(2, 1), "b");
  table.record(cid(3, 1), "c");
  EXPECT_EQ(table.size(), 3u);

  table.set_capacity(1);
  EXPECT_EQ(table.size(), 1u);
  EXPECT_EQ(table.admit(cid(3, 1)), client::SessionTable::Admit::kDuplicate);

  table.set_capacity(0);  // back to unbounded: nothing else is evicted
  table.record(cid(1, 2), "a2");
  table.record(cid(2, 2), "b2");
  EXPECT_EQ(table.size(), 3u);
}

TEST(SessionTableTest, SeqRegressionStillRefreshesRecency) {
  client::SessionTable table;
  table.set_capacity(2);
  table.record(cid(1, 5), "a");
  table.record(cid(2, 1), "b");
  // A stale-seq record for client 1 (ignored for dedup state) still counts
  // as recency — the client is demonstrably active in the apply stream.
  table.record(cid(1, 3), "old");
  table.record(cid(3, 1), "c");  // evicts client 2, not client 1
  EXPECT_EQ(table.admit(cid(1, 5)), client::SessionTable::Admit::kDuplicate);
  EXPECT_EQ(table.admit(cid(2, 1)), client::SessionTable::Admit::kFresh);
}

// --- chtread integration ----------------------------------------------------

harness::ClusterConfig client_config(std::uint64_t seed) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = Duration::millis(10);
  config.epsilon = Duration::millis(1);
  config.clients = 5;
  return config;
}

TEST(ClientPathTest, CalmRunCompletesThroughClients) {
  harness::Cluster cluster(client_config(21),
                           std::make_shared<object::CounterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  for (int i = 0; i < 10; ++i) {
    cluster.submit(i % cluster.n(), object::CounterObject::add(1));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)));

  std::string value;
  cluster.submit(0, object::CounterObject::value(),
                 [&](const object::Response& r) { value = r; });
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)));
  EXPECT_EQ(value, "10");

  // The ops actually traveled through the client processes.
  ASSERT_TRUE(cluster.client_path());
  metrics::Registry merged;
  cluster.merge_metrics_into(merged);
  EXPECT_EQ(merged.value("client.rmws"), 10);
  EXPECT_GE(merged.value("client.reads"), 1);
  EXPECT_EQ(merged.value("gateway.rmws"), 10);
}

// Pre-GST message duplication delivers some ClientRequests twice; the
// replica-side dedup (pending/log dedup before apply, session table after)
// must still apply each acked increment exactly once.
TEST(ClientPathTest, DuplicateDeliveryAppliesRmwsOnce) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    harness::ClusterConfig config = client_config(seed);
    config.gst = RealTime::zero() + Duration::seconds(2);
    config.pre_gst_loss = 0.05;
    harness::Cluster cluster(config,
                             std::make_shared<object::CounterObject>());
    cluster.sim().network().set_pre_gst_duplicate_probability(0.3);

    for (int i = 0; i < 20; ++i) {
      cluster.submit(i % cluster.n(), object::CounterObject::add(1));
    }
    ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(60)))
        << "seed " << seed;

    std::string value;
    cluster.submit(0, object::CounterObject::value(),
                   [&](const object::Response& r) { value = r; });
    ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)));
    EXPECT_EQ(value, "20")
        << "seed " << seed
        << ": a duplicated or retried increment was applied more than once";
  }
}

// Crash-loop the leader while increments are in flight: clients retry the
// same OperationIds across elections and the rebuilt session tables must
// collapse every retry. The final count is exact, not approximate.
TEST(ClientPathTest, LeaderCrashLoopKeepsRmwsExactlyOnce) {
  harness::Cluster cluster(client_config(33),
                           std::make_shared<object::CounterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));

  for (int round = 0; round < 3; ++round) {
    for (int i = 0; i < 5; ++i) {
      cluster.submit(i, object::CounterObject::add(1));
    }
    // Take down the current leader with the round's increments still in
    // flight, let the cluster re-elect and the clients chase it, then bring
    // the victim back so the next round has a full cluster again.
    const int victim = cluster.steady_leader();
    if (victim >= 0) {
      cluster.sim().crash(ProcessId(victim));
      cluster.run_for(Duration::millis(400));
      cluster.restart(victim);
    }
    ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(60)))
        << "round " << round;
  }

  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(10)));
  std::string value;
  cluster.submit(0, object::CounterObject::value(),
                 [&](const object::Response& r) { value = r; });
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)));
  EXPECT_EQ(value, "15") << "a retried increment was lost or double-applied";
}

// A power-cycled replica rebuilds its session table by replaying the
// durable log through the apply path: the retry of an already-applied RMW
// must classify as a duplicate on the restarted replica, not as fresh.
TEST(ClientPathTest, PowerCycleRebuildsSessionTable) {
  harness::Cluster cluster(client_config(44),
                           std::make_shared<object::CounterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  const int leader = cluster.steady_leader();

  bool done = false;
  const OperationId id = cluster.client(0).submit(
      object::CounterObject::add(5), /*is_read=*/false,
      [&](const OperationId&, const std::string&) { done = true; });
  ASSERT_TRUE(cluster.sim().run_until([&] { return done; },
                                      cluster.sim().now() +
                                          Duration::seconds(30)));

  const int victim = (leader + 1) % cluster.n();
  const auto target = cluster.replica(leader).snapshot().applied_upto;
  cluster.sim().crash(ProcessId(victim));
  cluster.run_for(Duration::millis(300));
  cluster.restart(victim);
  ASSERT_TRUE(cluster.sim().run_until(
      [&] {
        return cluster.replica(victim).snapshot().applied_upto >= target;
      },
      cluster.sim().now() + Duration::seconds(30)))
      << "restarted follower never replayed to the pre-crash applied prefix";

  const client::SessionTable& rebuilt =
      cluster.replica(victim).client_gateway().sessions();
  EXPECT_EQ(rebuilt.admit(id), client::SessionTable::Admit::kDuplicate)
      << "replayed session table forgot an applied client RMW";
  ASSERT_NE(rebuilt.cached(id), nullptr);
  EXPECT_EQ(*rebuilt.cached(id), "5");
}

// --- Raft / VR routing ------------------------------------------------------

// A client whose home replica is a follower gets a Redirect pointing at the
// leader and completes there; no timeout-rotation luck involved.
TEST(RaftClientTest, FollowerRedirectsRmwToLeader) {
  harness::RaftCluster cluster(client_config(8),
                               std::make_shared<object::CounterObject>());
  ASSERT_TRUE(cluster.await_leader(Duration::seconds(5)));
  const int leader = cluster.leader();
  const int follower_slot = (leader + 1) % cluster.n();

  cluster.submit(follower_slot, object::CounterObject::add(3));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)));

  client::Client& via = cluster.client(follower_slot);
  EXPECT_GE(via.metrics().value("client.redirects"), 1)
      << "first attempt lands on the follower home and must be redirected";
  metrics::Registry merged;
  cluster.merge_metrics_into(merged);
  EXPECT_GE(merged.value("gateway.redirects"), 1);
  EXPECT_EQ(merged.value("gateway.rmws"), 1);
}

TEST(VrClientTest, ClientPathCompletesAndCountsExactly) {
  harness::VrCluster cluster(client_config(12),
                             std::make_shared<object::CounterObject>());
  ASSERT_TRUE(cluster.await_primary(Duration::seconds(5)));
  for (int i = 0; i < 8; ++i) {
    cluster.submit(i % cluster.n(), object::CounterObject::add(1));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(60)));

  bool done = false;
  std::string value;
  cluster.client(0).submit(object::CounterObject::value(), /*is_read=*/true,
                           [&](const OperationId&, const std::string& r) {
                             done = true;
                             value = r;
                           });
  ASSERT_TRUE(cluster.sim().run_until([&] { return done; },
                                      cluster.sim().now() +
                                          Duration::seconds(30)));
  EXPECT_EQ(value, "8");
}

}  // namespace
}  // namespace cht
