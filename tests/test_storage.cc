// StableStorage unit tests: the write/sync/crash semantics every recovery
// path builds on. The crash-time behaviour (lose_unsynced_writes) is the
// subtle part — each unsynced keyed write is lost independently, the
// unsynced log suffix is cut at a seed-drawn point — so these tests pin
// both the boundary cases (loss probability 0 and 1, cut at the durable
// prefix) and the determinism contract (same seed => same losses).
#include <gtest/gtest.h>

#include <optional>
#include <string>
#include <vector>

#include "sim/storage.h"

namespace cht::sim {
namespace {

StableStorage make(std::uint64_t seed = 1, int index = 0,
                   double key_loss = 0.5) {
  StorageConfig config;
  config.unsynced_key_loss = key_loss;
  return StableStorage(seed, index, config);
}

TEST(StorageTest, ReadYourWritesBeforeSync) {
  StableStorage s = make();
  EXPECT_FALSE(s.read("a").has_value());
  s.write("a", "1");
  EXPECT_EQ(s.read("a"), std::optional<std::string>("1"));
  s.write("a", "2");
  EXPECT_EQ(s.read("a"), std::optional<std::string>("2"));
  s.erase("a");
  EXPECT_FALSE(s.read("a").has_value());
}

TEST(StorageTest, KeysWithPrefixAreSortedAndScoped) {
  StableStorage s = make();
  s.write("log/2", "b");
  s.write("log/1", "a");
  s.write("meta", "m");
  s.write("log/10", "c");
  const std::vector<std::string> expected = {"log/1", "log/10", "log/2"};
  EXPECT_EQ(s.keys_with_prefix("log/"), expected);
  EXPECT_TRUE(s.keys_with_prefix("zzz").empty());
}

TEST(StorageTest, SyncedWritesSurviveCrash) {
  StableStorage s = make(/*seed=*/1, /*index=*/0, /*key_loss=*/1.0);
  s.write("term", "3");
  s.append("entry0");
  s.append("entry1");
  s.sync();
  EXPECT_FALSE(s.dirty());
  s.lose_unsynced_writes();  // crash with nothing unsynced
  EXPECT_EQ(s.read("term"), std::optional<std::string>("3"));
  ASSERT_EQ(s.log_size(), 2u);
  EXPECT_EQ(s.log()[0], "entry0");
  EXPECT_EQ(s.log()[1], "entry1");
}

TEST(StorageTest, CrashBetweenWriteAndSyncCanLoseTheWrite) {
  // key_loss = 1.0: every unsynced keyed write reverts to its last durable
  // value at the crash — the canonical "crashed between write and fsync".
  StableStorage s = make(/*seed=*/1, /*index=*/0, /*key_loss=*/1.0);
  s.write("vote", "p2");
  s.sync();
  s.write("vote", "p4");   // overwrites durable value, never synced
  s.write("fresh", "new");  // never durable at all
  EXPECT_TRUE(s.dirty());
  s.lose_unsynced_writes();
  EXPECT_EQ(s.read("vote"), std::optional<std::string>("p2"));
  EXPECT_FALSE(s.read("fresh").has_value());
  EXPECT_FALSE(s.dirty());
}

TEST(StorageTest, ZeroLossProbabilityKeepsUnsyncedKeys) {
  StableStorage s = make(/*seed=*/1, /*index=*/0, /*key_loss=*/0.0);
  s.write("a", "1");
  s.lose_unsynced_writes();
  EXPECT_EQ(s.read("a"), std::optional<std::string>("1"));
}

TEST(StorageTest, UnsyncedEraseCanResurrectTheDurableValue) {
  StableStorage s = make(/*seed=*/1, /*index=*/0, /*key_loss=*/1.0);
  s.write("a", "durable");
  s.sync();
  s.erase("a");
  EXPECT_FALSE(s.read("a").has_value());
  s.lose_unsynced_writes();  // the erase itself was the unsynced write
  EXPECT_EQ(s.read("a"), std::optional<std::string>("durable"));
}

TEST(StorageTest, UnsyncedLogSuffixIsTornAtOrAboveDurablePrefix) {
  StableStorage s = make();
  s.append("d0");
  s.append("d1");
  s.sync();
  s.append("u2");
  s.append("u3");
  s.append("u4");
  s.lose_unsynced_writes();
  // The durable prefix always survives; the cut lands somewhere in the
  // unsynced suffix (possibly keeping all of it, possibly tearing at d1).
  ASSERT_GE(s.log_size(), 2u);
  ASSERT_LE(s.log_size(), 5u);
  EXPECT_EQ(s.log()[0], "d0");
  EXPECT_EQ(s.log()[1], "d1");
}

TEST(StorageTest, EmptyStorageCrashIsANoOp) {
  StableStorage s = make();
  s.lose_unsynced_writes();
  EXPECT_EQ(s.log_size(), 0u);
  EXPECT_FALSE(s.dirty());
  EXPECT_TRUE(s.keys_with_prefix("").empty());
}

TEST(StorageTest, TruncateBelowDurableIsDirtyUntilSynced) {
  StableStorage s = make();
  s.append("e0");
  s.append("e1");
  s.append("e2");
  s.sync();
  s.truncate_log(1);  // conflict rewrite below the durable prefix
  EXPECT_TRUE(s.dirty());
  s.sync();
  EXPECT_FALSE(s.dirty());
  s.lose_unsynced_writes();
  ASSERT_EQ(s.log_size(), 1u);
  EXPECT_EQ(s.log()[0], "e0");
}

TEST(StorageTest, CrashLossIsDeterministicPerSeedAndProcess) {
  auto scenario = [](StableStorage& s) {
    for (int i = 0; i < 8; ++i) {
      s.write("k" + std::to_string(i), "v");
      s.append("r" + std::to_string(i));
    }
    s.lose_unsynced_writes();
  };
  StableStorage a = make(/*seed=*/7, /*index=*/2);
  StableStorage b = make(/*seed=*/7, /*index=*/2);
  scenario(a);
  scenario(b);
  EXPECT_EQ(a.log(), b.log());
  EXPECT_EQ(a.keys_with_prefix(""), b.keys_with_prefix(""));
  // A different process index draws a different loss pattern from the same
  // sim seed (storage streams are per-slot, not shared).
  StableStorage c = make(/*seed=*/7, /*index=*/3);
  scenario(c);
  const bool differs = a.log() != c.log() ||
                       a.keys_with_prefix("") != c.keys_with_prefix("");
  EXPECT_TRUE(differs) << "per-process storage streams should decorrelate";
}

TEST(StorageTest, FsyncCounterCountsSyncsOnly) {
  StableStorage s = make();
  EXPECT_EQ(s.fsyncs(), 0);
  s.write("a", "1");
  s.sync();
  s.append("r");
  s.sync();
  s.sync();  // clean syncs still count (they would still hit the disk)
  EXPECT_EQ(s.fsyncs(), 3);
}

TEST(StorageTest, PerProcessSyncLatencySpreadIsDeterministicAndBounded) {
  StorageConfig config;
  config.sync_latency = Duration::millis(10);
  StableStorage a(42, 1, config);
  StableStorage b(42, 1, config);
  EXPECT_EQ(a.effective_sync_latency().to_micros(),
            b.effective_sync_latency().to_micros());
  const std::int64_t us = a.effective_sync_latency().to_micros();
  EXPECT_GE(us, 7500);
  EXPECT_LE(us, 12500);
  // Different slots draw different factors from the same sim seed.
  bool differs = false;
  for (int i = 2; i < 8; ++i) {
    StableStorage c(42, i, config);
    if (c.effective_sync_latency() != a.effective_sync_latency()) {
      differs = true;
    }
  }
  EXPECT_TRUE(differs) << "per-process sync latencies should decorrelate";
  // A zero base is exactly zero — the paper's instantaneous-sync model, and
  // the guarantee that existing seeds replay unchanged.
  StorageConfig zero;
  EXPECT_EQ(StableStorage(42, 1, zero).effective_sync_latency(),
            Duration::zero());
}

TEST(StorageTest, SyncCompletionQueuesAtTheSerialDevice) {
  StorageConfig config;
  config.sync_latency = Duration::millis(10);
  StableStorage s(1, 0, config);
  const std::int64_t lat = s.effective_sync_latency().to_micros();
  const std::int64_t first = s.sync_completion_us(1000);
  EXPECT_EQ(first, 1000 + lat);
  // A sync issued while the first is in flight queues behind it.
  const std::int64_t second = s.sync_completion_us(1000);
  EXPECT_EQ(second, first + lat);
  EXPECT_EQ(s.sync_stall_us(), (first - 1000) + (second - 1000));
  // Once the device drains, a later sync pays only its own latency.
  const std::int64_t third = s.sync_completion_us(second + 5000);
  EXPECT_EQ(third, second + 5000 + lat);
}

TEST(StorageTest, CrashMidGroupCommitWindowLosesTheWholeUnflushedWindow) {
  // The group-commit crash shape: records covered by a completed sync
  // survive; every keyed write buffered for the still-pending covering sync
  // dies together at key_loss = 1.0. No partially-durable window.
  StableStorage s = make(/*seed=*/1, /*index=*/0, /*key_loss=*/1.0);
  s.write("promised", "t5");
  s.sync();  // window 1's covering sync completed
  s.write("promised", "t6");  // window 2: buffered, sync still in flight
  s.write("estimate", "x");
  s.lose_unsynced_writes();
  EXPECT_EQ(s.read("promised"), std::optional<std::string>("t5"));
  EXPECT_FALSE(s.read("estimate").has_value());
}

TEST(StorageTest, CrashMidWindowAtZeroLossKeepsTheBufferedWrites) {
  // key_loss = 0.0 extreme: the crash tears nothing ("the page cache made
  // it to the platter anyway") — recovery sees the full window despite the
  // missing covering sync. Protocols must be correct in both worlds.
  StableStorage s = make(/*seed=*/1, /*index=*/0, /*key_loss=*/0.0);
  s.write("a", "1");
  s.sync();
  s.write("a", "2");
  s.write("b", "3");
  s.lose_unsynced_writes();
  EXPECT_EQ(s.read("a"), std::optional<std::string>("2"));
  EXPECT_EQ(s.read("b"), std::optional<std::string>("3"));
}

TEST(StorageTest, TornLogWindowNeverCutsBelowTheCoveringSync) {
  // The coalesced batch replays appended during one group-commit window
  // form an unsynced suffix; the crash cut lands inside that window only —
  // batches covered by the last completed sync are untouchable.
  StableStorage s = make(/*seed=*/9, /*index=*/4);
  s.append("covered0");
  s.append("covered1");
  s.sync();
  s.append("window0");
  s.append("window1");
  s.append("window2");
  s.lose_unsynced_writes();
  ASSERT_GE(s.log_size(), 2u);
  ASSERT_LE(s.log_size(), 5u);
  EXPECT_EQ(s.log()[0], "covered0");
  EXPECT_EQ(s.log()[1], "covered1");
}

TEST(StorageCodecTest, EncodeDecodeRoundTrip) {
  const std::vector<std::string> fields = {
      "", "plain", "with:colon", std::string("\0binary\n", 8), "123"};
  EXPECT_EQ(decode_fields(encode_fields(fields)), fields);
  EXPECT_TRUE(decode_fields("").empty());
  EXPECT_EQ(decode_fields(encode_fields({})).size(), 0u);
}

}  // namespace
}  // namespace cht::sim
