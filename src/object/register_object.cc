#include "object/register_object.h"

#include "common/assert.h"

namespace cht::object {

Response RegisterObject::apply(ObjectState& state, const Operation& op) const {
  auto& reg = dynamic_cast<RegisterState&>(state);
  if (op.kind == "read") return reg.value();
  if (op.kind == "write") {
    reg.set_value(op.arg);
    return "ok";
  }
  if (op.kind == "noop") return "ok";
  CHT_UNREACHABLE("unknown register operation");
}

}  // namespace cht::object
