// E12 — Networked client path: end-to-end latency, retries and routing.
//
// Claims:
//   - on a calm network the client path adds one network round trip over the
//     colocated submit path, and after GST retries die out: the home-replica
//     lease read is the fast path on chtread, while raft/vr reads pay the
//     redirect-to-leader tax (calm cells still cross the lossy pre-GST
//     window, which is where their retries concentrate);
//   - under faults (partitions, power cycles) the retry/redirect machinery —
//     not client luck — delivers every acked RMW exactly once; retries-per-op
//     and redirect counts quantify what the faults cost the request path.
//
// Runs each protocol stack under the chaos harness with the client path on,
// capturing the merged client/gateway registries at adapter teardown (the
// last point the processes exist inside run_one).
#include <memory>
#include <string>
#include <vector>

#include "chaos/adapter.h"
#include "chaos/spec.h"
#include "chaos/sweep.h"
#include "common/bench_util.h"
#include "common/experiment.h"
#include "metrics/registry.h"

namespace cht::bench {
namespace {

// Same teardown-capture decorator idiom as chtread_fuzz's CapturingAdapter:
// run_one owns and destroys the adapter, so the destructor is the last
// chance to merge the per-process registries.
struct Cell {
  chaos::RunResult result;
  metrics::Registry merged;
  sim::MessageStats messages;
};

class ClientPathProbe final : public chaos::ForwardingAdapter {
 public:
  ClientPathProbe(std::unique_ptr<chaos::ClusterAdapter> inner, Cell& out)
      : ForwardingAdapter(std::move(inner)), out_(out) {}
  ~ClientPathProbe() override {
    inner().merge_metrics_into(out_.merged);
    out_.messages = inner().sim().network().stats();
  }

 private:
  Cell& out_;
};

void run_cell(const std::string& protocol, const std::string& profile,
              int ops, std::uint64_t seed, Cell& cell) {
  chaos::RunSpec spec;
  spec.protocol = protocol;
  spec.profile = profile;
  spec.object = "kv";
  spec.seed = seed;
  spec.ops = ops;
  spec.client_path = true;

  cell.result = chaos::run_one(
      spec, [&cell](std::unique_ptr<chaos::ClusterAdapter> inner) {
        return std::make_unique<ClientPathProbe>(std::move(inner), cell);
      });
}

std::int64_t hist_percentile(const metrics::Registry& r,
                             std::string_view name, double q) {
  const metrics::Histogram* h = r.find_histogram(name);
  return (h && h->count() > 0) ? h->percentile(q) : 0;
}

double per_op(const metrics::Registry& r, std::string_view name,
              std::int64_t ops) {
  return ops > 0 ? static_cast<double>(r.value(name)) / ops : 0.0;
}

}  // namespace
}  // namespace cht::bench

int main(int argc, char** argv) {
  using namespace cht;
  using namespace cht::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  ExperimentResult result("client_path", args);

  const int ops = result.scaled(120, 30);
  const std::vector<std::string> profiles =
      result.smoke()
          ? std::vector<std::string>{"calm", "rolling-partitions"}
          : std::vector<std::string>{"calm", "rolling-partitions",
                                     "power-cycle"};

  result.begin(
      "E12: networked client path — latency, retries, routing",
      "Every operation travels client -> replica over the simulated network\n"
      "(sessions, exactly-once retries, Redirect-based leader routing).\n"
      "Calm rows show the steady-state cost of the client hop per stack;\n"
      "faulty rows show what partitions and power cycles cost the request\n"
      "path. Acked-RMW exactly-once is enforced by the chaos invariant on\n"
      "every run. n = 5, delta = 10 ms, ops = " +
          std::to_string(ops) + " per cell.");
  result.columns({"protocol", "profile", "rmw p50 (ms)", "rmw p99 (ms)",
                  "read p50 (ms)", "retries/op", "redirects", "escalations",
                  "dup replies", "invariants"});

  bool all_clean = true;
  for (const auto& protocol : chaos::known_protocols()) {
    for (const auto& profile : profiles) {
      Cell cell;
      run_cell(protocol, profile, ops, /*seed=*/profile == "calm" ? 301 : 302,
               cell);
      const metrics::Registry& m = cell.merged;
      const std::int64_t client_ops =
          m.value("client.rmws") + m.value("client.reads");
      const bool clean = cell.result.ok();
      all_clean = all_clean && clean;

      result.row(
          {protocol, profile,
           ms2(Duration::micros(
               hist_percentile(m, "client.rmw_latency_us", 0.50))),
           ms2(Duration::micros(
               hist_percentile(m, "client.rmw_latency_us", 0.99))),
           ms2(Duration::micros(
               hist_percentile(m, "client.read_latency_us", 0.50))),
           metrics::Table::num(per_op(m, "client.retries", client_ops), 3),
           metrics::Table::num(m.value("client.redirects")),
           metrics::Table::num(m.value("client.read_escalations")),
           metrics::Table::num(m.value("gateway.dup_replies")),
           clean ? "clean" : "VIOLATED"});

      const std::string suffix = "_" + protocol + "_" + profile;
      result.metric("rmw_p50_us" + suffix,
                    hist_percentile(m, "client.rmw_latency_us", 0.50));
      result.metric("rmw_p99_us" + suffix,
                    hist_percentile(m, "client.rmw_latency_us", 0.99));
      result.metric("read_p50_us" + suffix,
                    hist_percentile(m, "client.read_latency_us", 0.50));
      result.metric("retries_per_op" + suffix,
                    per_op(m, "client.retries", client_ops));
      result.metric("redirects" + suffix, m.value("client.redirects"));
      result.metric("read_escalations" + suffix,
                    m.value("client.read_escalations"));
      result.metric("gateway_dup_replies" + suffix,
                    m.value("gateway.dup_replies"));
      if (profile == "calm") {
        result.observe_registry(protocol, m, cell.messages);
      }
      if (!clean) {
        for (const auto& v : cell.result.violations) {
          result.note("VIOLATION [" + protocol + "/" + profile + "]: " + v);
        }
      }
    }
  }
  result.metric("all_runs_clean", static_cast<std::int64_t>(all_clean ? 1 : 0));
  result.note(
      "Expected shape: chtread serves reads at the home replica (low read\n"
      "p50, redirects only from escalated reads) while raft/raft-lease/vr\n"
      "pay a redirect or a leader round trip per op. Calm cells retry only\n"
      "inside the lossy pre-GST window; the faulty profiles add retries\n"
      "and redirects throughout, but every cell stays 'clean' — the\n"
      "exactly-once and durability invariants hold.");
  result.end();
  return result.finish();
}
