// A FIFO queue.
//
// Operations:
//   enqueue(v)  -> new size                    (RMW)
//   dequeue()   -> front value or "" if empty  (RMW: removes)
//   front()     -> front value or ""           (read)
//   length()    -> size                        (read)
//
// Conflicts: front() is unaffected by enqueues onto a (possibly) non-empty
// queue — but from the empty state an enqueue changes front(), so front()
// conservatively conflicts with enqueue and dequeue. length() conflicts
// with both (they always change the size).
#pragma once

#include <deque>
#include <memory>
#include <string>

#include "object/object.h"

namespace cht::object {

class QueueState final : public ObjectState {
 public:
  std::unique_ptr<ObjectState> clone() const override {
    return std::make_unique<QueueState>(*this);
  }
  std::string fingerprint() const override;

  std::deque<std::string>& items() { return items_; }
  const std::deque<std::string>& items() const { return items_; }

 private:
  std::deque<std::string> items_;
};

class QueueObject final : public ObjectModel {
 public:
  std::string name() const override { return "queue"; }
  std::unique_ptr<ObjectState> make_initial_state() const override {
    return std::make_unique<QueueState>();
  }
  Response apply(ObjectState& state, const Operation& op) const override;
  bool is_read(const Operation& op) const override {
    return op.kind == "front" || op.kind == "length";
  }
  bool conflicts(const Operation&, const Operation& rmw) const override {
    return !is_no_op(rmw);
  }

  static Operation enqueue(const std::string& value) {
    return {"enqueue", value};
  }
  static Operation dequeue() { return {"dequeue", ""}; }
  static Operation front() { return {"front", ""}; }
  static Operation length() { return {"length", ""}; }
};

}  // namespace cht::object
