// Shared helpers for the experiment harnesses (bench/bench_*.cc).
#pragma once

#include <iostream>
#include <memory>
#include <string>

#include "harness/cluster.h"
#include "harness/raft_cluster.h"
#include "metrics/stats.h"
#include "metrics/table.h"

namespace cht::bench {

// Experiment headers/tables/artifacts are declared through ExperimentResult
// (common/experiment.h); this header keeps only the small formatting and
// history helpers.

inline std::string us(Duration d) {
  return metrics::Table::num(static_cast<std::int64_t>(d.to_micros()));
}

inline std::string ms2(Duration d) {
  return metrics::Table::num(d.to_millis_f(), 2);
}

// Latency of completed ops recorded in a history, split by read/RMW.
struct SplitLatencies {
  metrics::LatencyRecorder reads;
  metrics::LatencyRecorder rmws;
};

inline SplitLatencies split_latencies(const object::ObjectModel& model,
                                      const checker::HistoryRecorder& history) {
  SplitLatencies out;
  for (const auto& op : history.ops()) {
    if (!op.completed()) continue;
    if (model.is_read(op.op)) {
      out.reads.record(op.latency());
    } else {
      out.rmws.record(op.latency());
    }
  }
  return out;
}

}  // namespace cht::bench
