// PQL lease mechanism baseline: message complexity and revocation behaviour.
#include <gtest/gtest.h>

#include <memory>

#include "baselines/pql_lease.h"
#include "sim/simulation.h"

namespace cht {
namespace {

using baselines::PqlConfig;
using baselines::PqlProcess;

struct PqlFixture {
  sim::Simulation sim;
  explicit PqlFixture(int n, std::uint64_t seed = 1)
      : sim(make_config(seed)) {
    PqlConfig config;
    for (int i = 0; i < n; ++i) {
      sim.add_process(std::make_unique<PqlProcess>(config));
    }
    sim.start();
  }
  static sim::SimulationConfig make_config(std::uint64_t seed) {
    sim::SimulationConfig c;
    c.seed = seed;
    c.network.gst = RealTime::zero();
    c.network.delta = Duration::millis(5);
    c.network.delta_min = Duration::micros(200);
    return c;
  }
  PqlProcess& process(int i) {
    return sim.process_as<PqlProcess>(ProcessId(i));
  }
};

TEST(PqlTest, LeasesBecomeActiveEverywhere) {
  PqlFixture f(5);
  f.sim.run_until(RealTime::zero() + Duration::millis(200));
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(f.process(i).lease_active()) << "process " << i;
  }
}

TEST(PqlTest, RenewalTrafficIsQuadraticInN) {
  // Each renewal period: every grantor exchanges 4 messages with every
  // leaseholder => ~4 * n * (n-1) messages per period.
  auto messages_per_period = [](int n) {
    PqlFixture f(n);
    f.sim.run_until(RealTime::zero() + Duration::millis(200));  // warm up
    const auto before = f.sim.network().stats().sent;
    f.sim.run_until(f.sim.now() + Duration::millis(300));  // 10 periods
    return static_cast<double>(f.sim.network().stats().sent - before) / 10.0;
  };
  const double at5 = messages_per_period(5);
  const double at10 = messages_per_period(10);
  EXPECT_NEAR(at5, 4.0 * 5 * 4, 0.25 * 4 * 5 * 4);
  // Doubling n should roughly quadruple traffic (quadratic scaling).
  EXPECT_GT(at10 / at5, 3.0);
  EXPECT_LT(at10 / at5, 6.0);
}

TEST(PqlTest, WriteRevokesLeases) {
  PqlFixture f(5);
  f.sim.run_until(RealTime::zero() + Duration::millis(200));
  ASSERT_TRUE(f.process(1).lease_active());
  f.process(0).begin_write();
  f.sim.run_until(f.sim.now() + Duration::millis(20));
  EXPECT_FALSE(f.process(1).lease_active());
  EXPECT_EQ(f.process(0).writes_completed(), 1);
}

TEST(PqlTest, WriteCompletesViaExpiryWhenLeaseholderCrashed) {
  PqlFixture f(5);
  f.sim.run_until(RealTime::zero() + Duration::millis(200));
  f.sim.crash(ProcessId(4));
  const RealTime t0 = f.sim.now();
  f.process(0).begin_write();
  ASSERT_TRUE(f.sim.run_until(
      [&] { return f.process(0).writes_completed() == 1; },
      t0 + Duration::seconds(2)));
  // Had to wait out the crashed process's lease.
  EXPECT_GT(f.sim.now() - t0, Duration::millis(100));
}

TEST(PqlTest, SteadyWritesPermanentlyDisableLocalReads) {
  // The paper's contrast: a steady stream of writes keeps revoking leases,
  // so leaseholders (almost) never hold an active lease.
  PqlFixture f(5);
  f.sim.run_until(RealTime::zero() + Duration::millis(200));
  int active_samples = 0;
  int samples = 0;
  // Write every 10ms (renewal interval is 30ms), sampling lease state.
  for (int i = 0; i < 100; ++i) {
    f.process(0).begin_write();
    f.sim.run_until(f.sim.now() + Duration::millis(10));
    for (int p = 1; p < 5; ++p) {
      ++samples;
      if (f.process(p).lease_active()) ++active_samples;
    }
  }
  const double availability =
      static_cast<double>(active_samples) / static_cast<double>(samples);
  EXPECT_LT(availability, 0.5)
      << "local reads should be mostly disabled under steady writes";
}

}  // namespace
}  // namespace cht
