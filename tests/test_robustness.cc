// Robustness under clock desynchronization (paper Section 1): RMW operations
// stay linearizable no matter what the clocks do; reads may stall (fast
// clock: leases look expired) or return stale states (slow clock + missed
// messages: leases look valid beyond the leader's conservative wait), and
// become current again once synchrony is restored.
#include <gtest/gtest.h>

#include <memory>

#include "checker/linearizability.h"
#include "harness/cluster.h"
#include "object/register_object.h"

namespace cht {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

ClusterConfig robust_config(std::uint64_t seed) {
  ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = Duration::millis(10);
  config.epsilon = Duration::millis(1);
  // These two scenarios document the *unguarded* failure modes the paper
  // accepts under broken clocks (and that the clock-health guard exists to
  // bound). With the guard on, the frozen-clock victim degrades its reads
  // and the stale read never happens — that contrast is tested in
  // test_clock_guard.cc.
  config.clock_guard = false;
  return config;
}

// Slow (frozen) clock + partition: the victim keeps believing its lease is
// valid and serves stale reads — exactly the failure mode the paper accepts
// under broken clocks — while the RMW sub-history stays linearizable.
TEST(RobustnessTest, SlowClockYieldsStaleReadsButRmwsStayLinearizable) {
  Cluster cluster(robust_config(51), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const int victim = (leader + 1) % cluster.n();
  // Seed a value everyone has applied.
  cluster.submit(leader, object::RegisterObject::write("old"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  cluster.run_for(cluster.core_config().lease_renew_interval * 3);

  // Break the model: freeze the victim's clock (maximally slow) and cut it
  // off so it misses the Prepares/Commits that would update it.
  cluster.sim().set_clock_offset(ProcessId(victim), Duration::seconds(-3600));
  cluster.sim().network().set_process_isolated(ProcessId(victim), true,
                                               cluster.n());
  // Commit new values. The leader waits out the victim's lease *on its own
  // clock* (the guarantee only covers skew <= epsilon), then proceeds.
  for (int i = 0; i < 3; ++i) {
    cluster.submit(leader, object::RegisterObject::write("new" + std::to_string(i)));
    ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(60)));
  }
  // The victim still considers its lease valid and answers locally: stale.
  cluster.submit(victim, object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  EXPECT_EQ(*cluster.history().ops().back().response, "old");

  // Full history: NOT linearizable (the stale read started after "new2"
  // completed). RMW sub-history: linearizable.
  const auto full =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_FALSE(full.linearizable);
  const auto rmw = checker::check_rmw_subhistory_linearizable(
      cluster.model(), cluster.history().ops());
  EXPECT_TRUE(rmw.linearizable) << rmw.explanation;
}

// Fast clock: every lease looks expired, so reads stall — they never return
// wrong values, and they complete once synchrony is restored.
TEST(RobustnessTest, FastClockStallsReadsUntilResync) {
  Cluster cluster(robust_config(52), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const int victim = (leader + 1) % cluster.n();
  cluster.submit(leader, object::RegisterObject::write("current"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));

  const Duration skip = Duration::seconds(30);
  cluster.sim().set_clock_offset(ProcessId(victim), skip);
  cluster.submit(victim, object::RegisterObject::read());
  cluster.run_for(Duration::seconds(5));
  // The read is stalled: all leases look expired on the fast clock.
  EXPECT_EQ(cluster.completed(), cluster.submitted() - 1);

  // Restore the offset. The clock clamps at its high-water mark until real
  // time catches up (~30s), after which fresh leases are valid again and the
  // read completes with the *current* value.
  cluster.sim().set_clock_offset(ProcessId(victim), Duration::zero());
  ASSERT_TRUE(cluster.await_quiesce(skip + Duration::seconds(10)));
  EXPECT_EQ(*cluster.history().ops().back().response, "current");
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

// Randomized clock-desync chaos (skew beyond epsilon under concurrent
// workloads, with the RMW sub-history invariant) lives in the unified chaos
// matrix: see test_chaos_matrix.cc, profile "clock-storm". This file keeps
// only the two *directed* scenarios above, whose setups (a frozen victim
// clock behind a partition; a fast clock that must clamp at its high-water
// mark) are too specific for a seed-driven nemesis to hit reliably.

}  // namespace
}  // namespace cht
