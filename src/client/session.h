// Replica-side client session table (Raft-thesis §6.3 style dedup).
//
// One entry per client, holding the sequence number and response of that
// client's last *applied* RMW. Because clients issue RMWs strictly
// sequentially with monotonic sequence numbers, one entry is enough to
// decide every arriving request: seq > last is fresh, seq == last is a
// retry of the completed op (answer from the cache), seq < last is stale
// (the client has already moved on; drop).
//
// The table is replicated state: every replica updates it at *apply* time,
// in log order, from the same applied sequence — so all replicas agree on
// it, and crash recovery rebuilds it for free when the stack replays its
// durable log/batches through the apply path. No separate persistence, and
// the size is bounded by the number of clients.
//
// Eviction: set_capacity(k) bounds the table to the k most recently
// *applied* clients (Raft thesis §6.3's session expiry, by LRU instead of
// wall time — there is no wall time here). Because every replica applies
// the same records in the same order, the apply stamp — and therefore the
// eviction decision — is identical everywhere, keeping the table
// replicated state. The documented cost of eviction is the documented cost
// of session expiry: a retry from an evicted client is no longer
// recognized as a duplicate and readmits as fresh, so capacity should
// comfortably exceed the number of concurrently active clients. Capacity 0
// (the default) means unbounded.
#pragma once

#include <cstdint>
#include <map>
#include <string>

#include "common/types.h"

namespace cht::client {

class SessionTable {
 public:
  enum class Admit { kFresh, kDuplicate, kStale };

  // Classifies an arriving RMW against the client's applied prefix.
  Admit admit(const OperationId& id) const {
    const auto it = entries_.find(id.process.index());
    if (it == entries_.end() || id.seq > it->second.last_seq) {
      return Admit::kFresh;
    }
    return id.seq == it->second.last_seq ? Admit::kDuplicate : Admit::kStale;
  }

  // The cached response for a kDuplicate request; nullptr otherwise.
  const std::string* cached(const OperationId& id) const {
    const auto it = entries_.find(id.process.index());
    if (it == entries_.end() || it->second.last_seq != id.seq) return nullptr;
    return &it->second.last_response;
  }

  // Records an applied RMW. Called in apply order; a lower-seq record after
  // a higher one (impossible for sequential clients, but cheap to guard) is
  // ignored — it still refreshes the client's recency.
  void record(const OperationId& id, const std::string& response) {
    Entry& entry = entries_[id.process.index()];
    entry.last_applied = ++applied_ticks_;
    if (id.seq < entry.last_seq) return;
    entry.last_seq = id.seq;
    entry.last_response = response;
    evict_idle();
  }

  // Bounds the table to the `capacity` most recently applied clients
  // (0 = unbounded). Shrinking below the current size evicts immediately.
  void set_capacity(std::size_t capacity) {
    capacity_ = capacity;
    evict_idle();
  }
  std::size_t capacity() const { return capacity_; }

  std::size_t size() const { return entries_.size(); }

 private:
  struct Entry {
    std::int64_t last_seq = 0;
    std::int64_t last_applied = 0;
    std::string last_response;
  };

  void evict_idle() {
    while (capacity_ > 0 && entries_.size() > capacity_) {
      // The idlest client; ties (impossible — stamps are unique) would fall
      // to the lowest client index, keeping eviction deterministic.
      auto victim = entries_.begin();
      for (auto it = entries_.begin(); it != entries_.end(); ++it) {
        if (it->second.last_applied < victim->second.last_applied) victim = it;
      }
      entries_.erase(victim);
    }
  }

  // Keyed by client process index; ordered for deterministic iteration.
  std::map<int, Entry> entries_;
  // Monotonic apply stamp; advances identically at every replica because
  // record() is called in the shared apply order.
  std::int64_t applied_ticks_ = 0;
  std::size_t capacity_ = 0;
};

}  // namespace cht::client
