// A RunSpec is the complete, serializable description of one deterministic
// chaos run: protocol stack, nemesis profile, workload shape and every
// simulation parameter. Two runs with equal specs are bit-identical (same
// history, same trace, same verdict) — this is what makes a dumped repro
// artifact an exact replay and a seed sweep embarrassingly parallel.
#pragma once

#include <cstdint>
#include <string>
#include <vector>

#include "common/time.h"

namespace cht::chaos {

struct RunSpec {
  // Which stack to exercise: "chtread" (the paper's algorithm),
  // "raft" (ReadIndex reads), "raft-lease" (leader-lease reads), or "vr".
  std::string protocol = "chtread";
  // Nemesis intensity profile: "calm", "rolling-partitions",
  // "leader-hunter", "clock-storm", "power-cycle", or "crash-loop"
  // (see nemesis.h).
  std::string profile = "calm";
  // Object model the workload runs over: kv|counter|bank|queue|lock.
  std::string object = "kv";

  std::uint64_t seed = 1;
  int n = 5;
  std::int64_t delta_ms = 10;
  std::int64_t epsilon_ms = 1;
  std::int64_t gst_ms = 1000;
  double pre_gst_loss = 0.1;

  // Stable-storage model. Chaos runs pay a nonzero fsync cost by default
  // (half a delta at the default delta_ms = 10) so every sweep exercises the
  // group-commit and pipelined write paths; benches sweep this axis
  // explicitly. unsynced_key_loss is the per-key probability that a keyed
  // write which was never synced is lost at crash time (0.0 and 1.0 are the
  // interesting extremes: "the page cache always survived" vs "everything
  // unsynced is gone").
  std::int64_t sync_latency_us = 5000;
  double unsynced_key_loss = 0.5;
  bool group_commit = true;

  // Networked client path (src/client/): when true (the default), the
  // harness adds n client processes and every workload operation travels
  // through one of them — over the simulated network, with timeouts,
  // exactly-once retries, Redirect-chasing and replica-side session dedup
  // all under the nemesis. false = legacy colocated submission (ops injected
  // directly at replica slots), kept for old corpus pins and A/B runs.
  bool client_path = true;

  // Clock-health guard (core/clock_guard.h): when true (the default),
  // replicas watch message stamps for epsilon-synchrony violations and
  // degrade lease reads to a clock-free path while suspect. With the guard
  // on, a stale read is only tolerated inside the bounded exposure window
  // between skew injection and the arrival of detecting evidence (see
  // invariants.cc); with it off, profiles with allows_stale_reads fall back
  // to the legacy RMW-sub-history check. Old repro artifacts carry no
  // clock_guard key and replay with it off.
  bool clock_guard = true;

  // Workload shape.
  int ops = 80;
  double read_fraction = 0.5;
  // Key selection bias: probability of stopping at each successive key
  // (geometric); 0 = uniform over `keys`.
  double key_skew = 0.5;
  int keys = 4;
  // Pacing between submissions (tripled before GST to bound the concurrency
  // the checker must untangle).
  std::int64_t op_gap_min_ms = 10;
  std::int64_t op_gap_max_ms = 60;
  // Hard cap on concurrently open operations at live processes. Bounds the
  // concurrency window the linearizability search must untangle (it is
  // exponential in that window); mirrors real clients with bounded
  // outstanding requests. The driver stalls (in simulated time) until an
  // operation completes before submitting past the cap.
  int max_inflight = 6;
  // State budget for the linearizability search (0 = unlimited). A run whose
  // search exhausts the budget is reported as undecided, not failed — a
  // safety valve so one adversarial seed cannot hang a sweep.
  std::int64_t check_budget = 500000;

  std::int64_t quiesce_timeout_s = 180;

  Duration delta() const { return Duration::millis(delta_ms); }
  Duration epsilon() const { return Duration::millis(epsilon_ms); }
  RealTime gst() const { return RealTime::zero() + Duration::millis(gst_ms); }
};

// The protocols a sweep with --protocol=all fans over.
const std::vector<std::string>& known_protocols();
// The profiles a sweep with --profile=all fans over.
const std::vector<std::string>& known_profiles();
// The object models a sweep with --object=all fans over.
const std::vector<std::string>& known_objects();

// Derives an independent seed stream for one component of a run (nemesis,
// workload, driver), so adding randomness to one never perturbs another.
std::uint64_t derive_seed(std::uint64_t seed, std::uint64_t stream);

}  // namespace cht::chaos
