// Plain-text table printer for benchmark harness output.
//
// Each bench binary prints the table/series it reproduces in this format so
// EXPERIMENTS.md can quote results verbatim.
#pragma once

#include <iomanip>
#include <ostream>
#include <sstream>
#include <string>
#include <vector>

namespace cht::metrics {

class Table {
 public:
  explicit Table(std::vector<std::string> headers)
      : headers_(std::move(headers)) {}

  Table& add_row(std::vector<std::string> cells) {
    rows_.push_back(std::move(cells));
    return *this;
  }

  void print(std::ostream& os) const;

  // Convenience formatting.
  static std::string num(double v, int precision = 2) {
    std::ostringstream os;
    os << std::fixed << std::setprecision(precision) << v;
    return os.str();
  }
  static std::string num(std::int64_t v) { return std::to_string(v); }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

}  // namespace cht::metrics
