// The parallel seed sweeper must be a pure function of (base spec,
// first_seed, count): `--threads N` may change wall-clock time and the order
// progress callbacks fire, but never which seeds fail, their fingerprints,
// or the repro-artifact list. A regression here is the worst kind of flake —
// "this seed fails on CI (8 workers) but not locally (--threads 1)" — so the
// test pins a sweep with both passing and failing seeds and demands equal
// outcomes across worker counts.
//
// The protocols themselves pass every seed (stop_and_heal shifts GST, so
// even a blackout run completes during quiesce), so failures are injected
// through SweepOptions::hook — the sanctioned interposition point — with a
// synthetic invariant that trips on a seed-deterministic property of the
// run. The sweep machinery cannot tell a synthetic violation from a real
// one: failing seeds get artifacts, failing_seeds() lists them, and all of
// it must be identical at --threads 1 and --threads 4.
#include <gtest/gtest.h>

#include <filesystem>
#include <memory>
#include <string>
#include <vector>

#include "chaos/adapter.h"
#include "chaos/spec.h"
#include "chaos/sweep.h"

namespace cht {
namespace {

// Forwards everything; protocol_invariants() additionally reports a
// synthetic violation iff the run's final simulated time has odd parity in
// microseconds — a property that is deterministic per seed but varies
// across seeds, giving the sweep a stable pass/fail mix.
class SyntheticFault final : public chaos::ForwardingAdapter {
 public:
  explicit SyntheticFault(std::unique_ptr<chaos::ClusterAdapter> inner)
      : ForwardingAdapter(std::move(inner)) {}

  std::vector<std::string> protocol_invariants() override {
    std::vector<std::string> violations = inner().protocol_invariants();
    if (inner().sim().now().to_micros() % 2 == 1) {
      violations.push_back("synthetic: odd final clock (test-injected)");
    }
    return violations;
  }
};

chaos::AdapterHook synthetic_fault_hook() {
  return [](std::unique_ptr<chaos::ClusterAdapter> inner) {
    return std::make_unique<SyntheticFault>(std::move(inner));
  };
}

chaos::RunSpec base_spec() {
  chaos::RunSpec spec;
  spec.protocol = "chtread";
  spec.profile = "rolling-partitions";
  spec.object = "kv";
  spec.ops = 12;
  return spec;
}

chaos::SweepResult sweep_with(const chaos::RunSpec& base, int threads,
                              const std::string& artifact_dir) {
  chaos::SweepOptions options;
  options.threads = threads;
  options.artifact_dir = artifact_dir;
  options.hook = synthetic_fault_hook();
  return chaos::sweep_seeds(base, /*first_seed=*/100, /*count=*/6, options);
}

std::string basename_of(const std::string& path) {
  const auto pos = path.find_last_of('/');
  return pos == std::string::npos ? path : path.substr(pos + 1);
}

TEST(SweepDeterminismTest, ThreadCountDoesNotChangeOutcomes) {
  const chaos::RunSpec base = base_spec();

  const std::string dir1 = ::testing::TempDir() + "sweep_det_t1";
  const std::string dir4 = ::testing::TempDir() + "sweep_det_t4";
  std::filesystem::remove_all(dir1);
  std::filesystem::remove_all(dir4);
  std::filesystem::create_directories(dir1);
  std::filesystem::create_directories(dir4);

  const chaos::SweepResult serial = sweep_with(base, 1, dir1);
  const chaos::SweepResult parallel = sweep_with(base, 4, dir4);

  // The sweep must exercise both paths, else the artifact comparison below
  // is vacuous. Fixed seeds make this deterministic: if a protocol change
  // shifts every run to the same parity, pick a different first_seed.
  ASSERT_EQ(serial.results.size(), 6u);
  ASSERT_EQ(parallel.results.size(), 6u);
  ASSERT_GT(serial.failures(), 0)
      << "no failing seeds; the synthetic-fault mix needs retuning";
  ASSERT_LT(serial.failures(), 6)
      << "no passing seeds; the synthetic-fault mix needs retuning";

  EXPECT_EQ(serial.failing_seeds(), parallel.failing_seeds());
  for (std::size_t i = 0; i < serial.results.size(); ++i) {
    const auto& a = serial.results[i];
    const auto& b = parallel.results[i];
    EXPECT_EQ(a.spec.seed, b.spec.seed) << "seed order differs at index " << i;
    EXPECT_EQ(a.fingerprint, b.fingerprint) << "seed " << a.spec.seed;
    EXPECT_EQ(a.violations, b.violations) << "seed " << a.spec.seed;
    EXPECT_EQ(a.completed, b.completed) << "seed " << a.spec.seed;
    EXPECT_EQ(a.history, b.history) << "seed " << a.spec.seed;
  }

  // Artifact lists must match in order and (seed-derived) name, not merely
  // as sets: downstream tooling replays artifacts[k] for failure #k.
  ASSERT_EQ(serial.artifacts.size(), parallel.artifacts.size());
  EXPECT_EQ(static_cast<int>(serial.artifacts.size()), serial.failures());
  for (std::size_t i = 0; i < serial.artifacts.size(); ++i) {
    EXPECT_EQ(basename_of(serial.artifacts[i]),
              basename_of(parallel.artifacts[i]))
        << "artifact order depends on worker count at index " << i;
  }

  // And every artifact replays to the fingerprint recorded at dump time
  // (under the same hook, since injected violations hash into it).
  for (const auto& path : serial.artifacts) {
    const auto artifact = chaos::load_artifact(path);
    ASSERT_TRUE(artifact.has_value()) << path;
    const chaos::RunResult replay =
        chaos::run_one(artifact->spec, synthetic_fault_hook());
    EXPECT_EQ(replay.fingerprint, artifact->fingerprint) << path;
  }
}

TEST(SweepDeterminismTest, SweepMatchesSerialRunOne) {
  // The sweep adds orchestration, not semantics: each per-seed result must
  // equal a standalone run_one() of the same spec.
  chaos::RunSpec base = base_spec();
  base.profile = "calm";

  chaos::SweepOptions options;
  options.threads = 3;
  const chaos::SweepResult sweep =
      chaos::sweep_seeds(base, /*first_seed=*/7, /*count=*/4, options);
  ASSERT_EQ(sweep.results.size(), 4u);
  for (const auto& result : sweep.results) {
    chaos::RunSpec spec = base;
    spec.seed = result.spec.seed;
    const chaos::RunResult solo = chaos::run_one(spec);
    EXPECT_EQ(result.fingerprint, solo.fingerprint)
        << "seed " << spec.seed << " differs between sweep and run_one";
    EXPECT_EQ(result.violations, solo.violations) << "seed " << spec.seed;
  }
}

}  // namespace
}  // namespace cht
