// E9 — Robustness when model assumptions break (paper Section 1).
//
// Claims:
//   (a) majority crash: liveness lost, safety kept (no wrong results);
//   (b) clocks desynchronized: the RMW sub-execution remains linearizable;
//       reads may stall (fast clock) or return stale states (slow clock +
//       missed messages);
//   (c) synchrony restored: reads return the current state again.
//   (d) rolling power cycles (crash-recovery extension): acked writes
//       survive replica restarts, the cluster stays available while a
//       minority bounces, and recovery time is bounded (percentiles
//       reported from the restart -> caught-up interval);
//   (f) clock-health guard (robustness extension): with the guard on, every
//       stale read a clock-storm produces is confined to the exposure
//       window between skew injection and heal+drain — zero outside it —
//       and guard detection latency is bounded;
//   (g) degraded reads cost consensus-round latency where lease reads were
//       local, the price of freshness under a distrusted clock.
#include <iostream>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "chaos/spec.h"
#include "chaos/sweep.h"
#include "checker/linearizability.h"
#include "common/bench_util.h"
#include "common/experiment.h"
#include "metrics/stats.h"
#include "object/register_object.h"

namespace cht::bench {
namespace {

harness::ClusterConfig base_config(std::uint64_t seed) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = Duration::millis(10);
  config.epsilon = Duration::millis(1);
  return config;
}

}  // namespace
}  // namespace cht::bench

int main(int argc, char** argv) {
  using namespace cht;
  using namespace cht::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  ExperimentResult result("robustness", args);
  result.begin(
      "E9: robustness under broken assumptions",
      "Each scenario breaks one model assumption and reports what was lost\n"
      "(liveness, read freshness) and what survived (safety, RMW\n"
      "linearizability) — matching the paper's robustness discussion.");
  result.columns({"scenario", "ops completed", "full history lin.",
                  "RMW sub-history lin.", "notes"});

  // (a) Majority crash.
  {
    harness::Cluster cluster(base_config(91),
                             std::make_shared<object::RegisterObject>());
    cluster.await_steady_leader(Duration::seconds(5));
    cluster.submit(0, object::RegisterObject::write("pre"));
    cluster.await_quiesce(Duration::seconds(5));
    for (int i = 0; i < 3; ++i) cluster.sim().crash(ProcessId(i));
    cluster.submit(3, object::RegisterObject::write("post"));
    cluster.submit(4, object::RegisterObject::read());
    cluster.run_for(Duration::seconds(20));
    const auto full =
        checker::check_linearizable(cluster.model(), cluster.history().ops());
    const auto rmw = checker::check_rmw_subhistory_linearizable(
        cluster.model(), cluster.history().ops());
    result.row({"majority (3/5) crash",
                metrics::Table::num(static_cast<std::int64_t>(
                    cluster.completed())) +
                    "/" + metrics::Table::num(static_cast<std::int64_t>(
                              cluster.submitted())),
                full.linearizable ? "yes" : "NO",
                rmw.linearizable ? "yes" : "NO",
                "post-crash ops pend forever (liveness lost, safety kept)"});
    result.metric("majority_crash_safety_kept",
                  static_cast<std::int64_t>(full.linearizable ? 1 : 0));
    result.config("majority-crash", cluster.config(), cluster.overrides());
    result.observe("majority-crash", cluster);
  }

  // (b) slow clock + partition => stale reads, RMW still linearizable.
  // Guard pinned off: this row documents the *unguarded* failure mode the
  // paper accepts; the guard-on contrast is the clock-guard axis below.
  {
    harness::ClusterConfig config = base_config(92);
    config.clock_guard = false;
    harness::Cluster cluster(config,
                             std::make_shared<object::RegisterObject>());
    cluster.await_steady_leader(Duration::seconds(5));
    cluster.run_for(Duration::seconds(1));
    const int leader = cluster.steady_leader();
    const int victim = (leader + 1) % cluster.n();
    cluster.submit(leader, object::RegisterObject::write("old"));
    cluster.await_quiesce(Duration::seconds(5));
    cluster.run_for(cluster.core_config().lease_renew_interval * 3);
    cluster.sim().set_clock_offset(ProcessId(victim), Duration::seconds(-3600));
    cluster.sim().network().set_process_isolated(ProcessId(victim), true,
                                                 cluster.n());
    for (int i = 0; i < 3; ++i) {
      cluster.submit(leader, object::RegisterObject::write("new" + std::to_string(i)));
      cluster.await_quiesce(Duration::seconds(60));
    }
    cluster.submit(victim, object::RegisterObject::read());
    cluster.await_quiesce(Duration::seconds(5));
    const std::string got = *cluster.history().ops().back().response;
    const auto full =
        checker::check_linearizable(cluster.model(), cluster.history().ops());
    const auto rmw = checker::check_rmw_subhistory_linearizable(
        cluster.model(), cluster.history().ops());
    result.row({"slow clock + partition",
                metrics::Table::num(static_cast<std::int64_t>(
                    cluster.completed())) +
                    "/" + metrics::Table::num(static_cast<std::int64_t>(
                              cluster.submitted())),
                full.linearizable ? "yes (unexpected)" : "NO (stale read)",
                rmw.linearizable ? "yes" : "NO",
                "victim read \"" + got + "\" after new0..new2 committed"});
    result.metric("slow_clock_rmw_linearizable",
                  static_cast<std::int64_t>(rmw.linearizable ? 1 : 0));
  }

  // (c) fast clock stalls reads; resync restores freshness. Guard pinned
  // off: with it on, the victim's reads degrade to consensus instead of
  // stalling (measured by the clock-guard axis below).
  {
    harness::ClusterConfig config = base_config(93);
    config.clock_guard = false;
    harness::Cluster cluster(config,
                             std::make_shared<object::RegisterObject>());
    cluster.await_steady_leader(Duration::seconds(5));
    cluster.run_for(Duration::seconds(1));
    const int leader = cluster.steady_leader();
    const int victim = (leader + 1) % cluster.n();
    cluster.submit(leader, object::RegisterObject::write("current"));
    cluster.await_quiesce(Duration::seconds(5));
    cluster.sim().set_clock_offset(ProcessId(victim), Duration::seconds(30));
    cluster.submit(victim, object::RegisterObject::read());
    cluster.run_for(Duration::seconds(5));
    const bool stalled = cluster.completed() + 1 == cluster.submitted();
    cluster.sim().set_clock_offset(ProcessId(victim), Duration::zero());
    cluster.await_quiesce(Duration::seconds(45));
    const std::string got = *cluster.history().ops().back().response;
    const auto full =
        checker::check_linearizable(cluster.model(), cluster.history().ops());
    result.row({"fast clock, then resync",
                metrics::Table::num(static_cast<std::int64_t>(
                    cluster.completed())) +
                    "/" + metrics::Table::num(static_cast<std::int64_t>(
                              cluster.submitted())),
                full.linearizable ? "yes" : "NO",
                "yes",
                std::string(stalled ? "read stalled while desynced; " : "") +
                    "after resync read \"" + got + "\" (current)"});
    result.metric("fast_clock_resync_linearizable",
                  static_cast<std::int64_t>(full.linearizable ? 1 : 0));
  }

  // (d) Rolling power cycles: bounce each follower in turn while the
  // leader keeps committing. Availability = every submitted op completes;
  // durability = the final read observes the last acked write; recovery
  // time = sim-time from restart until the rebooted replica's applied
  // prefix catches the leader's pre-crash prefix.
  {
    harness::Cluster cluster(base_config(94),
                             std::make_shared<object::RegisterObject>());
    cluster.await_steady_leader(Duration::seconds(5));
    metrics::LatencyRecorder recovery;
    const int cycles = result.scaled(10, 3);
    int bounced = 0;
    std::string last_value;
    for (int c = 0; c < cycles; ++c) {
      const int leader = cluster.steady_leader();
      int victim = (leader + 1 + c) % cluster.n();
      if (victim == leader) victim = (victim + 1) % cluster.n();
      last_value = "epoch" + std::to_string(c);
      cluster.submit(leader, object::RegisterObject::write(last_value));
      cluster.await_quiesce(Duration::seconds(10));
      const auto target = cluster.replica(leader).snapshot().applied_upto;
      cluster.sim().crash(ProcessId(victim));
      cluster.run_for(Duration::millis(200));  // downtime with the op acked
      const RealTime restarted_at = cluster.sim().now();
      cluster.restart(victim);
      ++bounced;
      const bool caught_up = cluster.sim().run_until(
          [&] {
            return cluster.replica(victim).snapshot().applied_upto >= target;
          },
          restarted_at + Duration::seconds(30));
      if (caught_up) recovery.record(cluster.sim().now() - restarted_at);
    }
    cluster.submit(cluster.steady_leader(), object::RegisterObject::read());
    cluster.await_quiesce(Duration::seconds(10));
    const std::string got = *cluster.history().ops().back().response;
    const auto full =
        checker::check_linearizable(cluster.model(), cluster.history().ops());
    const auto rmw = checker::check_rmw_subhistory_linearizable(
        cluster.model(), cluster.history().ops());
    const bool durable = got == last_value;
    result.row({"rolling power cycles",
                metrics::Table::num(static_cast<std::int64_t>(
                    cluster.completed())) +
                    "/" + metrics::Table::num(static_cast<std::int64_t>(
                              cluster.submitted())),
                full.linearizable ? "yes" : "NO",
                rmw.linearizable ? "yes" : "NO",
                std::to_string(bounced) + " bounces; recovery p50 " +
                    metrics::Table::num(recovery.p50().to_micros()) +
                    "us p99 " +
                    metrics::Table::num(recovery.p99().to_micros()) +
                    "us; final read \"" + got + "\""});
    result.metric("power_cycle_bounces", static_cast<std::int64_t>(bounced));
    result.metric("power_cycle_recoveries",
                  static_cast<std::int64_t>(recovery.count()));
    result.metric("power_cycle_all_ops_completed",
                  static_cast<std::int64_t>(
                      cluster.completed() == cluster.submitted() ? 1 : 0));
    result.metric("power_cycle_durable",
                  static_cast<std::int64_t>(durable ? 1 : 0));
    result.metric("power_cycle_linearizable",
                  static_cast<std::int64_t>(full.linearizable ? 1 : 0));
    if (!recovery.empty()) {
      result.latency("power-cycle recovery", recovery);
    }
    result.config("power-cycle", cluster.config(), cluster.overrides());
    result.observe("power-cycle", cluster);
  }

  // (e) Power cycles under real fsync cost: the same bounce loop as (d),
  // swept over the sync-latency axis. Durability and linearizability must
  // hold at every point; fsync count and device stall quantify what the
  // group-commit write path pays for them.
  for (const auto& [axis_label, sync_latency] :
       std::vector<std::pair<std::string, Duration>>{
           {"0", Duration::zero()},
           {"0.5*delta", Duration::millis(5)},
           {"2*delta", Duration::millis(20)}}) {
    harness::ClusterConfig config = base_config(95);
    config.storage.sync_latency = sync_latency;
    harness::Cluster cluster(config,
                             std::make_shared<object::RegisterObject>());
    cluster.await_steady_leader(Duration::seconds(5));
    const int cycles = result.scaled(5, 2);
    std::string last_value;
    for (int c = 0; c < cycles; ++c) {
      const int leader = cluster.steady_leader();
      int victim = (leader + 1 + c) % cluster.n();
      if (victim == leader) victim = (victim + 1) % cluster.n();
      last_value = "sync-epoch" + std::to_string(c);
      cluster.submit(leader, object::RegisterObject::write(last_value));
      cluster.await_quiesce(Duration::seconds(10));
      cluster.sim().crash(ProcessId(victim));
      cluster.run_for(Duration::millis(200));
      cluster.restart(victim);
      cluster.run_for(Duration::seconds(1));
    }
    cluster.submit(cluster.steady_leader(), object::RegisterObject::read());
    cluster.await_quiesce(Duration::seconds(10));
    const std::string got = *cluster.history().ops().back().response;
    const auto full =
        checker::check_linearizable(cluster.model(), cluster.history().ops());
    std::int64_t fsyncs = 0, stall = 0;
    for (int i = 0; i < cluster.n(); ++i) {
      fsyncs += cluster.sim().storage(ProcessId(i)).fsyncs();
      stall += cluster.sim().storage(ProcessId(i)).sync_stall_us();
    }
    const bool durable = got == last_value;
    result.row({"power cycles @ sync=" + axis_label,
                metrics::Table::num(static_cast<std::int64_t>(
                    cluster.completed())) +
                    "/" + metrics::Table::num(static_cast<std::int64_t>(
                              cluster.submitted())),
                full.linearizable ? "yes" : "NO",
                "yes",
                std::to_string(fsyncs) + " fsyncs, stall " +
                    metrics::Table::num(stall / 1000) + "ms; final read \"" +
                    got + "\""});
    const std::string suffix = "_sync" + std::to_string(sync_latency.to_micros());
    result.metric("sync_axis_durable" + suffix,
                  static_cast<std::int64_t>(durable ? 1 : 0));
    result.metric("sync_axis_linearizable" + suffix,
                  static_cast<std::int64_t>(full.linearizable ? 1 : 0));
    result.metric("sync_axis_fsyncs" + suffix, fsyncs);
    result.metric("sync_axis_stall_us" + suffix, stall);
    result.config("sync-axis-" + axis_label, cluster.config(),
                  cluster.overrides());
  }

  // (f) Clock-health guard axis: the same clock-storm chaos cells swept
  // with the guard off (legacy accounting: stale reads blanket-tolerated,
  // only the RMW sub-history is checked) and on (full linearizability under
  // exposure-window accounting: a stale read is excused only inside the
  // bounded window between skew injection and heal+drain; any other stale
  // read fails the seed). Detection latency is derived offline by matching
  // each replica's suspect transitions to the latest prior skew injection.
  for (const bool guard_on : {false, true}) {
    chaos::RunSpec base;
    base.protocol = "chtread";
    base.profile = "clock-storm";
    base.object = "kv";
    base.ops = result.scaled(40, 20);
    base.clock_guard = guard_on;
    const int seeds = result.scaled(30, 6);
    const auto sweep = chaos::sweep_seeds(base, 1, seeds);
    std::size_t submitted = 0, completed = 0, excused = 0;
    metrics::LatencyRecorder detection;
    for (const auto& run : sweep.results) {
      submitted += run.submitted;
      completed += run.completed;
      excused += run.reads_excused;
      for (const auto& transitions : run.guard_transitions) {
        for (const auto& t : transitions) {
          if (!t.suspect) continue;
          RealTime latest = RealTime::min();
          bool found = false;
          for (const auto& ev : run.skew_events) {
            if (ev.at <= t.at && ev.at >= latest) {
              latest = ev.at;
              found = true;
            }
          }
          if (found) detection.record(t.at - latest);
        }
      }
    }
    const std::string label =
        std::string("clock-storm sweep, guard ") + (guard_on ? "on" : "off");
    std::string notes;
    if (guard_on) {
      notes = std::to_string(excused) + " stale reads, all inside exposure "
              "windows; detection p50 " +
              metrics::Table::num(detection.p50().to_micros()) + "us p99 " +
              metrics::Table::num(detection.p99().to_micros()) + "us";
    } else {
      notes = "stale reads blanket-tolerated (pre-guard accounting)";
    }
    result.row({label,
                metrics::Table::num(static_cast<std::int64_t>(completed)) +
                    "/" +
                    metrics::Table::num(static_cast<std::int64_t>(submitted)),
                guard_on ? (sweep.failures() == 0 ? "yes (exposure-window)"
                                                  : "NO")
                         : "n/a (legacy)",
                sweep.failures() == 0 ? "yes" : "NO",
                std::to_string(seeds) + " seeds, " +
                    std::to_string(sweep.failures()) + " failures; " + notes});
    const std::string prefix = guard_on ? "guard_on" : "guard_off";
    result.metric(prefix + "_failures",
                  static_cast<std::int64_t>(sweep.failures()));
    if (guard_on) {
      result.metric("guard_on_reads_excused",
                    static_cast<std::int64_t>(excused));
      result.metric("guard_on_suspect_trips",
                    static_cast<std::int64_t>(detection.count()));
      if (!detection.empty()) {
        result.latency("guard detection", detection);
      }
    }
  }

  // (g) Degraded-read cost: with the guard on, a clock-suspect replica
  // answers reads through consensus — correct but no longer local. Compare
  // the same replica's read latency while healthy (lease-local) and while
  // suspect (degraded RMW path).
  {
    harness::Cluster cluster(base_config(96),
                             std::make_shared<object::RegisterObject>());
    cluster.await_steady_leader(Duration::seconds(5));
    cluster.run_for(Duration::seconds(1));
    const int leader = cluster.steady_leader();
    const int victim = (leader + 1) % cluster.n();
    cluster.submit(leader, object::RegisterObject::write("v"));
    cluster.await_quiesce(Duration::seconds(5));
    const int reads = result.scaled(50, 10);
    metrics::LatencyRecorder lease_reads, degraded_reads;
    for (int i = 0; i < reads; ++i) {
      cluster.submit(victim, object::RegisterObject::read());
      cluster.await_quiesce(Duration::seconds(5));
      lease_reads.record(cluster.history().ops().back().latency());
    }
    // Skew the victim beyond epsilon; incoming traffic trips its guard.
    cluster.sim().set_clock_offset(ProcessId(victim), Duration::millis(30));
    cluster.run_for(Duration::millis(100));
    for (int i = 0; i < reads; ++i) {
      cluster.submit(victim, object::RegisterObject::read());
      cluster.await_quiesce(Duration::seconds(5));
      degraded_reads.record(cluster.history().ops().back().latency());
    }
    const auto full =
        checker::check_linearizable(cluster.model(), cluster.history().ops());
    result.row({"degraded-read cost (guard on)",
                metrics::Table::num(static_cast<std::int64_t>(
                    cluster.completed())) +
                    "/" + metrics::Table::num(static_cast<std::int64_t>(
                              cluster.submitted())),
                full.linearizable ? "yes" : "NO",
                "yes",
                "lease p50 " +
                    metrics::Table::num(lease_reads.p50().to_micros()) +
                    "us -> degraded p50 " +
                    metrics::Table::num(degraded_reads.p50().to_micros()) +
                    "us"});
    result.metric("degraded_read_linearizable",
                  static_cast<std::int64_t>(full.linearizable ? 1 : 0));
    result.metric("lease_read_p50_us", lease_reads.p50().to_micros());
    result.metric("degraded_read_p50_us", degraded_reads.p50().to_micros());
    result.latency("lease reads (healthy)", lease_reads);
    result.latency("degraded reads (suspect)", degraded_reads);
    result.observe("degraded-reads", cluster);
  }

  result.note(
      "Expected shape: RMW sub-history linearizable in every row;\n"
      "full-history violations only in the stale-read row; majority\n"
      "crash completes only pre-crash ops; the power-cycle row completes\n"
      "every op, stays linearizable, and reads the last acked write after\n"
      "the final bounce (durability across restarts); the sync-axis rows\n"
      "stay durable and linearizable at every fsync cost, with fsync count\n"
      "flat across the axis (group commit) while stall grows with the cost;\n"
      "the guard-on sweep has zero failures (every stale read confined to\n"
      "its exposure window) and the degraded-read row trades lease-local\n"
      "latency for consensus-round latency while staying linearizable.");
  result.end();
  return result.finish();
}
