// Fixture: rule D7 — direct file I/O in a protocol directory. Durable
// protocol state must flow through sim::StableStorage so that simulated
// power cycles can lose or tear unsynced writes; a host file would survive
// every simulated crash and the durability invariant would test nothing.
#include <fstream>  // detlint-expect: D7
#include <string>

namespace fixture {

void bad_stream_log(const std::string& entry) {
  std::ofstream log("raft.log", std::ios::app);  // detlint-expect: D7
  log << entry << "\n";
}

std::string bad_stream_read() {
  std::ifstream in("raft.state");  // detlint-expect: D7
  std::string s;
  in >> s;
  return s;
}

void bad_cstdio(const char* path) {
  auto* f = fopen(path, "wb");  // detlint-expect: D7
  if (f) {
    auto* g = freopen(path, "ab", f);  // detlint-expect: D7
    (void)g;
  }
}

int bad_posix(const char* path) {
  int fd = open(path, 0);  // detlint-expect: D7
  int fd2 = openat(fd, path, 0);  // detlint-expect: D7
  int fd3 = creat(path, 0600);  // detlint-expect: D7
  return fd + fd2 + fd3;
}

// Negative cases: member calls and identifiers that merely contain "open"
// are not file I/O. (Declaring a method literally named `open` still trips
// the pattern — rename it or carry an allow(D7); none exist in this repo.)
struct Storage {
  bool is_open() const { return open_; }
  void open_slot(int slot) { open_ = slot >= 0; }
  bool open_ = false;
};

bool good_member_calls(Storage& storage) {
  storage.open_slot(3);
  return storage.is_open();
}

// Suppression grammar works for D7 like every other rule.
void good_suppressed(const char* path) {
  // detlint: allow(D7) test fixture exercising the suppression path
  auto* f = fopen(path, "rb");
  (void)f;
}

}  // namespace fixture
