#include "checker/linearizability.h"

#include <algorithm>
#include <map>
#include <sstream>
#include <unordered_set>
#include <utility>

#include "common/assert.h"

namespace cht::checker {
namespace {

class Search {
 public:
  Search(const object::ObjectModel& model, std::vector<HistoryOp> history,
         std::size_t max_states)
      : model_(model), history_(std::move(history)), max_states_(max_states) {
    std::stable_sort(history_.begin(), history_.end(),
                     [](const HistoryOp& a, const HistoryOp& b) {
                       return a.invoked < b.invoked;
                     });
    linearized_.assign(history_.size(), false);
    completed_remaining_ = 0;
    for (const auto& op : history_) {
      if (op.completed()) ++completed_remaining_;
    }
    completed_total_ = completed_remaining_;
    stuck_example_ = history_.size();
  }

  LinearizabilityResult run() {
    LinearizabilityResult result;
    auto state = model_.make_initial_state();
    if (dfs(*state, 0)) {
      result.linearizable = true;
      result.order = order_;
    } else if (budget_exhausted_) {
      result.linearizable = false;
      result.decided = false;
      std::ostringstream os;
      os << "undecided: search state budget (" << max_states_
         << " states) exhausted; deepest progress " << best_progress_ << "/"
         << completed_total_ << " completed ops";
      result.explanation = os.str();
    } else {
      result.linearizable = false;
      std::ostringstream os;
      os << "no linearization; deepest progress " << best_progress_ << "/"
         << completed_total_ << " completed ops";
      if (stuck_example_ < history_.size()) {
        const HistoryOp& op = history_[stuck_example_];
        os << "; first unplaceable: " << op.process << " " << op.op
           << " -> " << (op.response ? *op.response : std::string("<pending>"))
           << " invoked@" << op.invoked.to_micros() << "us";
      }
      result.explanation = os.str();
    }
    return result;
  }

 private:
  // Encodes (linearized-beyond-base set, object state) for memoization.
  std::string memo_key(const object::ObjectState& state,
                       std::size_t base) const {
    std::string key = std::to_string(base);
    key += '|';
    for (std::size_t i = base; i < history_.size(); ++i) {
      if (linearized_[i]) {
        key += std::to_string(i);
        key += ',';
      }
      // Operations far beyond any linearized index cannot have been touched.
      if (!linearized_[i] && i > last_linearized_ && i > base) break;
    }
    key += '|';
    key += state.fingerprint();
    return key;
  }

  bool dfs(object::ObjectState& state, std::size_t base) {
    if (budget_exhausted_) return false;
    while (base < history_.size() && linearized_[base]) ++base;
    if (completed_remaining_ == 0) return true;  // all completed ops placed

    if (completed_total_ - completed_remaining_ > best_progress_) {
      best_progress_ = completed_total_ - completed_remaining_;
      stuck_example_ = history_.size();
    }

    if (!memo_.insert(memo_key(state, base)).second) return false;
    if (max_states_ != 0 && memo_.size() >= max_states_) {
      budget_exhausted_ = true;
      return false;
    }

    // The earliest response among non-linearized ops bounds which op may be
    // linearized next: anything invoked after that response must come later.
    RealTime min_response = RealTime::max();
    for (std::size_t i = base; i < history_.size(); ++i) {
      if (linearized_[i]) continue;
      if (history_[i].completed()) {
        min_response = std::min(min_response, *history_[i].responded);
      }
      // Ops invoked after min_response cannot tighten it further in a way
      // that matters for candidacy; stop once invocations pass it.
      if (history_[i].invoked > min_response) break;
    }

    // Try completed candidates before pending ones: pending operations
    // (typically writes whose submitter crashed) most often never took
    // effect, and exploring their speculative insertions first makes the
    // search exponential in their number. Completed-first finds witnesses
    // of linearizable histories quickly; completeness is unaffected (both
    // passes together cover every candidate).
    for (const bool pending_pass : {false, true}) {
      for (std::size_t i = base; i < history_.size(); ++i) {
        if (linearized_[i]) continue;
        if (history_[i].invoked > min_response) break;  // sorted by invocation
        const HistoryOp& op = history_[i];
        if (op.completed() == pending_pass) continue;

        auto next_state = state.clone();
        const object::Response got = model_.apply(*next_state, op.op);
        if (op.completed() && got != *op.response) {
          if (stuck_example_ == history_.size()) stuck_example_ = i;
          continue;  // response mismatch: cannot take effect here
        }

        linearized_[i] = true;
        const std::size_t saved_last = last_linearized_;
        last_linearized_ = std::max(last_linearized_, i);
        if (op.completed()) --completed_remaining_;
        order_.push_back(i);

        if (dfs(*next_state, base)) return true;

        order_.pop_back();
        if (op.completed()) ++completed_remaining_;
        last_linearized_ = saved_last;
        linearized_[i] = false;
      }
    }
    return false;
  }

  const object::ObjectModel& model_;
  std::vector<HistoryOp> history_;
  std::vector<bool> linearized_;
  std::size_t completed_remaining_ = 0;
  std::size_t completed_total_ = 0;
  std::size_t last_linearized_ = 0;
  std::vector<std::size_t> order_;
  // Hash set is safe here: the search only does insert()/size() — the
  // verdict and the budget cut depend on how many distinct states were
  // memoized, never on the order they would enumerate in.
  std::unordered_set<std::string> memo_;  // detlint: order-independent (insert/size only; never iterated)
  std::size_t max_states_ = 0;
  bool budget_exhausted_ = false;
  std::size_t best_progress_ = 0;
  std::size_t stuck_example_ = static_cast<std::size_t>(-1);
};

}  // namespace

LinearizabilityResult check_linearizable(const object::ObjectModel& model,
                                         std::vector<HistoryOp> history,
                                         std::size_t max_states) {
  // Locality (Herlihy & Wing): if every operation touches exactly one
  // sub-object, the history is linearizable iff each sub-object's
  // sub-history is. Partitioning collapses the search space dramatically
  // for multi-key workloads.
  bool partitionable = !history.empty();
  for (const auto& op : history) {
    if (model.partition_label(op.op).empty()) {
      partitionable = false;
      break;
    }
  }
  if (partitionable) {
    std::map<std::string, std::vector<HistoryOp>> groups;
    for (auto& op : history) {
      groups[model.partition_label(op.op)].push_back(std::move(op));
    }
    if (groups.size() > 1) {
      LinearizabilityResult combined;
      combined.linearizable = true;
      LinearizabilityResult undecided;  // kept only if no group fails outright
      for (auto& [label, group] : groups) {
        Search search(model, std::move(group), max_states);
        LinearizabilityResult result = search.run();
        if (!result.linearizable) {
          result.explanation = "sub-object '" + label + "': " +
                               result.explanation;
          if (result.decided) return result;  // definite failure wins
          undecided = std::move(result);
        }
        // Note: per-group orders are not merged into a global order; callers
        // needing `order` should check unpartitioned histories.
      }
      if (!undecided.decided) return undecided;
      return combined;
    }
    // Single group: fall through to the plain search (preserves `order`).
    history.clear();
    for (auto& [label, group] : groups) history = std::move(group);
  }
  Search search(model, std::move(history), max_states);
  return search.run();
}

LinearizabilityResult check_rmw_subhistory_linearizable(
    const object::ObjectModel& model, const std::vector<HistoryOp>& history,
    std::size_t max_states) {
  std::vector<HistoryOp> rmw_only;
  for (const auto& op : history) {
    if (!model.is_read(op.op)) rmw_only.push_back(op);
  }
  return check_linearizable(model, std::move(rmw_only), max_states);
}

}  // namespace cht::checker
