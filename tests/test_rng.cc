#include "common/rng.h"

#include <gtest/gtest.h>

#include <set>
#include <vector>

namespace cht {
namespace {

TEST(RngTest, DeterministicBySeed) {
  Rng a(123), b(123), c(124);
  std::vector<std::uint64_t> va, vb, vc;
  for (int i = 0; i < 100; ++i) {
    va.push_back(a.next_u64());
    vb.push_back(b.next_u64());
    vc.push_back(c.next_u64());
  }
  EXPECT_EQ(va, vb);
  EXPECT_NE(va, vc);
}

TEST(RngTest, NextInIsInclusiveAndCoversRange) {
  Rng rng(7);
  std::set<std::int64_t> seen;
  for (int i = 0; i < 2000; ++i) {
    const std::int64_t v = rng.next_in(-3, 3);
    EXPECT_GE(v, -3);
    EXPECT_LE(v, 3);
    seen.insert(v);
  }
  EXPECT_EQ(seen.size(), 7u);
}

TEST(RngTest, NextInSingleton) {
  Rng rng(7);
  for (int i = 0; i < 10; ++i) EXPECT_EQ(rng.next_in(5, 5), 5);
}

TEST(RngTest, NextDoubleInUnitInterval) {
  Rng rng(9);
  double sum = 0;
  for (int i = 0; i < 10000; ++i) {
    const double d = rng.next_double();
    EXPECT_GE(d, 0.0);
    EXPECT_LT(d, 1.0);
    sum += d;
  }
  EXPECT_NEAR(sum / 10000, 0.5, 0.02);
}

TEST(RngTest, NextBoolRespectsProbability) {
  Rng rng(11);
  int trues = 0;
  for (int i = 0; i < 10000; ++i) trues += rng.next_bool(0.2) ? 1 : 0;
  EXPECT_NEAR(trues / 10000.0, 0.2, 0.02);
  for (int i = 0; i < 100; ++i) EXPECT_FALSE(rng.next_bool(0.0));
  for (int i = 0; i < 100; ++i) EXPECT_TRUE(rng.next_bool(1.0));
}

TEST(RngTest, SplitProducesIndependentStream) {
  Rng parent(13);
  Rng child = parent.split();
  std::vector<std::uint64_t> a, b;
  for (int i = 0; i < 50; ++i) {
    a.push_back(parent.next_u64());
    b.push_back(child.next_u64());
  }
  EXPECT_NE(a, b);
}

TEST(RngTest, NextBelowUnbiasedEnough) {
  Rng rng(17);
  std::vector<int> buckets(10, 0);
  for (int i = 0; i < 100000; ++i) ++buckets[rng.next_below(10)];
  for (int count : buckets) EXPECT_NEAR(count, 10000, 500);
}

}  // namespace
}  // namespace cht
