// Message duplication: the pre-GST network may deliver a message twice.
// Every protocol step must be idempotent (resends are already part of the
// design; duplication exercises the same paths harder).
#include <gtest/gtest.h>

#include <memory>

#include "checker/linearizability.h"
#include "core/replica.h"
#include "harness/cluster.h"
#include "object/kv_object.h"

namespace cht {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

TEST(DuplicationTest, LinearizableUnderDuplication) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
    ClusterConfig config;
    config.n = 5;
    config.seed = seed;
    config.delta = Duration::millis(10);
    config.gst = RealTime::zero() + Duration::seconds(2);
    config.pre_gst_loss = 0.05;
    sim::SimulationConfig sc = config.to_sim_config();
    sc.network.pre_gst_duplicate_probability = 0.3;
    // Assemble manually to set the duplication probability.
    auto model = std::make_shared<object::KVObject>();
    const auto cc = core::Config::defaults_for(config.delta, config.epsilon);
    sim::Simulation sim(sc);
    for (int i = 0; i < config.n; ++i) {
      sim.add_process(std::make_unique<core::Replica>(model, cc));
    }
    sim.start();

    checker::HistoryRecorder history;
    std::size_t submitted = 0, completed = 0;
    auto submit = [&](int i, object::Operation op) {
      const auto token = history.begin(ProcessId(i), op, sim.now());
      ++submitted;
      auto cb = [&, token](const object::Response& r) {
        history.end(token, r, sim.now());
        ++completed;
      };
      auto& replica = sim.process_as<core::Replica>(ProcessId(i));
      if (model->is_read(op)) {
        replica.submit_read(std::move(op), cb);
      } else {
        replica.submit_rmw(std::move(op), cb);
      }
    };

    for (int step = 0; step < 20; ++step) {
      if (step % 3 == 0) {
        submit(step % config.n, object::KVObject::put("k", std::to_string(step)));
      } else {
        submit(step % config.n, object::KVObject::get("k"));
      }
      sim.run_until(sim.now() + Duration::millis(150));
    }
    const bool done = sim.run_until([&] { return completed == submitted; },
                                    sim.now() + Duration::seconds(60));
    EXPECT_TRUE(done) << "seed " << seed;
    const auto result = checker::check_linearizable(*model, history.ops());
    EXPECT_TRUE(result.linearizable) << "seed " << seed << ": "
                                     << result.explanation;
    // Each committed op appears in exactly one batch everywhere (I1 held
    // under duplication) — asserted internally; verify convergence too.
    sim.run_until(sim.now() + Duration::seconds(2));
    for (int i = 1; i < config.n; ++i) {
      EXPECT_EQ(sim.process_as<core::Replica>(ProcessId(i))
                    .applied_state()
                    .fingerprint(),
                sim.process_as<core::Replica>(ProcessId(0))
                    .applied_state()
                    .fingerprint());
    }
  }
}

TEST(DuplicationTest, RmwRespondsExactlyOnce) {
  ClusterConfig config;
  config.n = 5;
  config.seed = 77;
  config.delta = Duration::millis(10);
  config.gst = RealTime::zero() + Duration::seconds(1);
  sim::SimulationConfig sc = config.to_sim_config();
  sc.network.pre_gst_duplicate_probability = 0.5;
  auto model = std::make_shared<object::KVObject>();
  const auto cc = core::Config::defaults_for(config.delta, config.epsilon);
  sim::Simulation sim(sc);
  for (int i = 0; i < config.n; ++i) {
    sim.add_process(std::make_unique<core::Replica>(model, cc));
  }
  sim.start();
  int responses = 0;
  sim.process_as<core::Replica>(ProcessId(1))
      .submit_rmw(object::KVObject::put("k", "v"),
                  [&](const object::Response&) { ++responses; });
  sim.run_until(RealTime::zero() + Duration::seconds(30));
  EXPECT_EQ(responses, 1);
}

}  // namespace
}  // namespace cht
