// Omega failure detector and enhanced leader service (paper Section 2).
#include <gtest/gtest.h>

#include <map>
#include <memory>
#include <vector>

#include "leader/enhanced_leader.h"
#include "leader/omega.h"
#include "sim/simulation.h"

namespace cht {
namespace {

using leader::EnhancedLeaderConfig;
using leader::EnhancedLeaderService;
using leader::OmegaConfig;
using leader::OmegaDetector;

// Hosts an OmegaDetector and an EnhancedLeaderService, recording every
// interval for which am_leader returned true (for EL1 checking).
class LeaderHost : public sim::Process {
 public:
  LeaderHost(OmegaConfig omega_config, EnhancedLeaderConfig els_config)
      : omega_(*this, omega_config),
        els_(*this, [this] { return omega_.leader(); }, els_config) {}

  void on_start() override {
    omega_.start();
    els_.start();
  }
  void on_message(const sim::Message& message) override {
    if (omega_.handle_message(message)) return;
    if (els_.handle_message(message)) return;
  }

  OmegaDetector& omega() { return omega_; }
  EnhancedLeaderService& els() { return els_; }

  struct TrueInterval {
    LocalTime t1;
    LocalTime t2;
  };
  std::vector<TrueInterval> confirmed;

  // Calls am_leader(reign_start, now) like the algorithm does, recording
  // positive results.
  bool probe(LocalTime t1) {
    const LocalTime t2 = now_local();
    if (els_.am_leader(t1, t2)) {
      confirmed.push_back({t1, t2});
      return true;
    }
    return false;
  }

 private:
  OmegaDetector omega_;
  EnhancedLeaderService els_;
};

struct LeaderFixture {
  sim::Simulation sim;
  explicit LeaderFixture(int n, std::uint64_t seed = 1,
                         RealTime gst = RealTime::zero())
      : sim(make_config(seed, gst)) {
    OmegaConfig omega;
    omega.heartbeat_interval = Duration::millis(5);
    omega.timeout = Duration::millis(25);
    EnhancedLeaderConfig els;
    els.support_interval = Duration::millis(5);
    els.support_duration = Duration::millis(40);
    for (int i = 0; i < n; ++i) {
      sim.add_process(std::make_unique<LeaderHost>(omega, els));
    }
    sim.start();
  }
  static sim::SimulationConfig make_config(std::uint64_t seed, RealTime gst) {
    sim::SimulationConfig c;
    c.seed = seed;
    c.network.gst = gst;
    c.network.delta = Duration::millis(5);
    c.network.delta_min = Duration::micros(100);
    return c;
  }
  LeaderHost& host(int i) { return sim.process_as<LeaderHost>(ProcessId(i)); }
};

TEST(OmegaTest, ConvergesToSmallestAliveId) {
  LeaderFixture f(5);
  f.sim.run_until(RealTime::zero() + Duration::millis(200));
  for (int i = 0; i < 5; ++i) {
    EXPECT_EQ(f.host(i).omega().leader(), ProcessId(0)) << "at host " << i;
  }
}

TEST(OmegaTest, ReconvergesAfterLeaderCrash) {
  LeaderFixture f(5);
  f.sim.run_until(RealTime::zero() + Duration::millis(200));
  f.sim.crash(ProcessId(0));
  f.sim.run_until(RealTime::zero() + Duration::millis(600));
  for (int i = 1; i < 5; ++i) {
    EXPECT_EQ(f.host(i).omega().leader(), ProcessId(1)) << "at host " << i;
  }
}

TEST(OmegaTest, SurvivesChainOfCrashes) {
  LeaderFixture f(7);
  f.sim.run_until(RealTime::zero() + Duration::millis(200));
  for (int victim = 0; victim < 3; ++victim) {
    f.sim.crash(ProcessId(victim));
    f.sim.run_until(f.sim.now() + Duration::millis(500));
    for (int i = victim + 1; i < 7; ++i) {
      EXPECT_EQ(f.host(i).omega().leader(), ProcessId(victim + 1))
          << "after crash of " << victim << " at host " << i;
    }
  }
}

TEST(EnhancedLeaderTest, EventualLeaderPassesAmLeader) {
  LeaderFixture f(5);
  f.sim.run_until(RealTime::zero() + Duration::millis(300));
  LeaderHost& leader = f.host(0);
  const LocalTime t1 = leader.now_local();
  f.sim.run_until(f.sim.now() + Duration::millis(100));
  EXPECT_TRUE(leader.els().am_leader(t1, leader.now_local()));
}

TEST(EnhancedLeaderTest, NonLeadersFailAmLeader) {
  LeaderFixture f(5);
  f.sim.run_until(RealTime::zero() + Duration::millis(300));
  for (int i = 1; i < 5; ++i) {
    const LocalTime t = f.host(i).now_local();
    EXPECT_FALSE(f.host(i).els().am_leader(t, t)) << "host " << i;
  }
}

TEST(EnhancedLeaderTest, AmLeaderRejectsInvertedInterval) {
  LeaderFixture f(3);
  f.sim.run_until(RealTime::zero() + Duration::millis(300));
  LeaderHost& leader = f.host(0);
  const LocalTime now = leader.now_local();
  EXPECT_FALSE(leader.els().am_leader(now + Duration::millis(1), now));
}

TEST(EnhancedLeaderTest, LeadershipMovesAfterCrash) {
  LeaderFixture f(5);
  f.sim.run_until(RealTime::zero() + Duration::millis(300));
  f.sim.crash(ProcessId(0));
  f.sim.run_until(f.sim.now() + Duration::seconds(1));
  LeaderHost& successor = f.host(1);
  const LocalTime t1 = successor.now_local();
  f.sim.run_until(f.sim.now() + Duration::millis(100));
  EXPECT_TRUE(successor.els().am_leader(t1, successor.now_local()));
  // And nobody else (alive) considers themselves leader.
  for (int i = 2; i < 5; ++i) {
    const LocalTime t = f.host(i).now_local();
    EXPECT_FALSE(f.host(i).els().am_leader(t, t));
  }
}

// EL1: across the whole run, the set of (process, interval) pairs for which
// am_leader returned true contains no overlapping intervals from *distinct*
// processes — even under pre-GST chaos with message loss and a crash.
TEST(EnhancedLeaderTest, EL1NoTwoLeadersAtTheSameLocalTime) {
  for (std::uint64_t seed : {1ull, 2ull, 3ull, 4ull, 5ull}) {
    LeaderFixture f(5, seed, RealTime::zero() + Duration::millis(400));
    // Probe every host's am_leader continuously while the network is still
    // asynchronous and lossy and leadership churns.
    std::map<int, LocalTime> reign_start;
    for (int step = 0; step < 400; ++step) {
      f.sim.run_until(f.sim.now() + Duration::millis(2));
      if (step == 150) f.sim.crash(ProcessId(0));
      for (int i = 0; i < 5; ++i) {
        if (f.host(i).crashed()) continue;
        LeaderHost& host = f.host(i);
        if (!reign_start.contains(i)) {
          const LocalTime t = host.now_local();
          if (host.probe(t)) reign_start[i] = t;
        } else if (!host.probe(reign_start[i])) {
          reign_start.erase(i);
        }
      }
    }
    // Validate pairwise disjointness across distinct processes.
    for (int i = 0; i < 5; ++i) {
      for (int j = i + 1; j < 5; ++j) {
        for (const auto& a : f.host(i).confirmed) {
          for (const auto& b : f.host(j).confirmed) {
            const bool disjoint = a.t2 < b.t1 || b.t2 < a.t1;
            EXPECT_TRUE(disjoint)
                << "seed " << seed << ": EL1 violated between p" << i
                << " [" << a.t1 << "," << a.t2 << "] and p" << j << " ["
                << b.t1 << "," << b.t2 << "]";
          }
        }
      }
    }
  }
}

// EL2: eventually exactly one correct process is permanently the leader.
TEST(EnhancedLeaderTest, EL2EventualPermanentLeader) {
  LeaderFixture f(5, 9, RealTime::zero() + Duration::millis(300));
  f.sim.run_until(RealTime::zero() + Duration::seconds(2));
  LeaderHost& leader = f.host(0);
  const LocalTime t_star = leader.now_local();
  // From t_star on, every probe by p0 succeeds and every probe by others
  // fails.
  for (int step = 0; step < 100; ++step) {
    f.sim.run_until(f.sim.now() + Duration::millis(10));
    EXPECT_TRUE(leader.els().am_leader(t_star, leader.now_local()));
    for (int i = 1; i < 5; ++i) {
      const LocalTime t = f.host(i).now_local();
      EXPECT_FALSE(f.host(i).els().am_leader(t, t));
    }
  }
}

}  // namespace
}  // namespace cht
