// Actor base class for simulated processes.
//
// A process reacts to messages and timers; handlers execute instantaneously
// in simulated time (the paper's lower bound on process speed is satisfied
// trivially; periodic work is modelled with explicit timers). Processes are
// subject to crash failures only: once crashed, a process receives no
// further events and sends no messages.
//
// The paper's per-process "three parallel threads" map onto this runtime as
// message handlers plus timers; blocking waits in the pseudocode become
// explicit state machines in subclasses.
#pragma once

#include <any>
#include <functional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"
#include "common/types.h"
#include "sim/clock.h"
#include "sim/event_queue.h"
#include "sim/message.h"

namespace cht::sim {

class Simulation;
class StableStorage;

class Process {
 public:
  virtual ~Process() = default;

  ProcessId id() const { return id_; }
  int cluster_size() const { return n_; }
  bool crashed() const { return crashed_; }

  // --- Overridables -------------------------------------------------------
  virtual void on_start() {}
  virtual void on_message(const Message& message) = 0;
  virtual void on_crash() {}
  // Called instead of on_start() when this incarnation replaces a crashed
  // one (Simulation::restart). Recovery-aware processes override this to
  // replay their StableStorage before rejoining; the default treats a
  // restart like a cold start.
  virtual void on_restart() { on_start(); }

  // --- Services (valid after attachment to a Simulation) ------------------
  RealTime now_real() const;
  LocalTime now_local() const;  // this process's clock reading

  void send(ProcessId to, std::string type, std::any payload);
  // Sends to every process except this one.
  void broadcast(const std::string& type, const std::any& payload);

  // Schedules `fn` at real time now + delay (models step timing / periodic
  // work). The handle can cancel the timer. No-op after crash.
  EventHandle schedule_after(Duration delay, std::function<void()> fn);

  // Schedules `fn` to run once this process's clock reads at least `when`.
  // Robust to clock adjustments: re-arms itself until the condition holds.
  EventHandle schedule_at_local(LocalTime when, std::function<void()> fn);

  // The simulation's deterministic random stream (for randomized timeouts).
  Rng& rng() const;

  // This process's stable storage. Survives crashes and restarts (minus
  // whatever unsynced writes the crash lost); the only storage protocol
  // code may use — detlint rule D7 forbids direct file I/O in protocol dirs.
  StableStorage& storage() const;

  // How many restarts this process slot has been through (0 before any).
  // Useful for namespacing identifiers so they never collide across
  // incarnations without per-use fsyncs.
  int incarnation() const;

  // Syncs this process's stable storage, then runs `fn`. With the default
  // zero sync latency the continuation runs inline (no event scheduled);
  // with nonzero configured latency it runs once the device completes the
  // fsync — fsync cost is paid serially, so a sync issued while an earlier
  // one is still in flight queues behind it. Either way the written data is
  // durable from the moment of the call.
  void sync_storage(std::function<void()> fn = {});

  // Group-commit entry point for ack-critical durability: runs `fn` after a
  // sync() covering every write made before this call. With group commit
  // enabled (StorageConfig::group_commit), requests arriving while an
  // earlier sync's latency window is in flight coalesce into the single
  // next sync, whose completion releases all their continuations
  // back-to-back as one ack burst. With group commit disabled, or at zero
  // sync latency, each call is exactly sync_storage(fn).
  void request_sync(std::function<void()> fn);

  // Records a protocol-level trace event (no-op unless tracing is enabled).
  void trace_event(std::string category, std::string detail = "") const;
  // True when the simulation's trace is recording. Lets hot paths skip
  // building trace_event detail strings entirely (e.g. span-end events).
  bool tracing() const;

 protected:
  Process() = default;

 private:
  friend class Simulation;
  void attach(Simulation* sim, ProcessId id, int n) {
    sim_ = sim;
    id_ = id;
    n_ = n;
  }
  void mark_crashed() { crashed_ = true; }

  void start_group_sync();

  Simulation* sim_ = nullptr;
  ProcessId id_;
  int n_ = 0;
  bool crashed_ = false;
  // Group-commit state (request_sync): continuations awaiting the next
  // covering sync, and whether one is currently in flight. Dies with the
  // incarnation — a restart starts with a clean window, matching a real
  // process losing its in-memory commit queue.
  std::vector<std::function<void()>> sync_pending_;
  bool sync_in_flight_ = false;
};

}  // namespace cht::sim
