// Nemesis: composes fault actions over simulated time, driven only by a
// seed-derived random stream, so a fault schedule is a pure function of the
// RunSpec. Actions cover the full injection surface of the simulator:
//
//   crash            kill a process (bounded: always leaves a majority)
//   partition        directed link cut, healed after a drawn duration
//   isolate          cut a process off entirely, healed later
//   link delay       one-shot extra delay on a directed link
//   clock skew       clock-offset bump, within or beyond epsilon
//   gst shift        push GST into the future (re-opens asynchrony)
//   duplication      raise the pre-GST duplicate probability for a while
//   restart          power a crashed process back up (recovery path runs)
//   bounce           power cycle: crash now, restart after a drawn downtime
//   crash-loop       bounce the *same* process repeatedly, with downtimes
//                    and up-times shorter than recovery completes, so each
//                    incarnation is killed mid-replay (stresses
//                    incarnation-namespaced OperationIds and repeated
//                    recovery over half-synced storage)
//
// Crashes are budgeted by how many processes are down *right now*, so a
// restart refunds the budget: profiles with restart/bounce weight can cycle
// through every process over a run while never exceeding a minority down.
//
// Intensity profiles weight these actions. "leader-hunter" resolves its
// victim at fire time via ClusterAdapter::leader(), so it chases leadership
// wherever it moves. Every action is appended to a human-readable schedule
// log that repro artifacts embed verbatim.
#pragma once

#include <cstdint>
#include <set>
#include <string>
#include <utility>
#include <vector>

#include "chaos/adapter.h"
#include "common/rng.h"
#include "common/time.h"

namespace cht::chaos {

struct NemesisProfile {
  std::string name;

  // Time between fault decisions.
  Duration tick_min = Duration::millis(150);
  Duration tick_max = Duration::millis(400);

  // Per-tick action weights (relative; all zero = no faults).
  double w_partition = 0;
  double w_isolate = 0;
  double w_crash = 0;
  double w_link_delay = 0;
  double w_clock_skew = 0;
  double w_gst_shift = 0;
  double w_duplicate = 0;
  double w_restart = 0;
  double w_bounce = 0;
  double w_crash_loop = 0;

  // Fault shaping.
  Duration partition_min = Duration::millis(100);
  Duration partition_max = Duration::millis(600);
  Duration link_delay_max = Duration::millis(80);
  // Clock offsets are drawn uniformly in [-clock_skew_max, clock_skew_max];
  // beyond epsilon this knowingly breaks the paper's synchrony assumption.
  Duration clock_skew_max = Duration::zero();
  Duration gst_shift_max = Duration::millis(400);
  // Downtime a bounced process spends powered off before its restart.
  Duration downtime_min = Duration::millis(100);
  Duration downtime_max = Duration::millis(500);
  // Crash-loop shaping: per-cycle powered-off downtime, running up-time
  // before the next kill (both deliberately shorter than any stack's
  // recovery round), and how many kills one crash-loop action strings
  // together on its victim.
  Duration loop_downtime_min = Duration::millis(5);
  Duration loop_downtime_max = Duration::millis(20);
  Duration loop_uptime_min = Duration::millis(2);
  Duration loop_uptime_max = Duration::millis(10);
  int loop_cycles_min = 2;
  int loop_cycles_max = 4;
  // Bound on processes down at once (additionally clamped to a minority of
  // n). With restart/bounce weight this is a concurrency bound, not a total:
  // restarts refund it.
  int max_crashes = 0;
  // Aim faults at whoever leader() currently returns.
  bool target_leader = false;

  // Reads may legitimately return stale values under this profile (clock
  // skew beyond epsilon): the invariant registry then checks the RMW
  // sub-history instead of the full history (paper Section 1 robustness).
  bool allows_stale_reads = false;
};

// Built-in profiles, scaled to the run's delta/epsilon: "calm",
// "rolling-partitions", "leader-hunter", "clock-storm", "power-cycle",
// "crash-loop", "degraded-reads".
NemesisProfile nemesis_profile(const std::string& name, Duration delta,
                               Duration epsilon);

// One clock-offset injection, as recorded by the schedule: when, whom, and
// the absolute offset the victim's clock was bumped to. The exposure-window
// accounting (invariants.cc) uses the earliest event as the instant
// synchrony first broke; benches derive guard detection latency from these
// against ClusterAdapter::guard_transitions_of.
struct SkewEvent {
  RealTime at = RealTime::zero();
  int process = -1;
  Duration offset = Duration::zero();
};

class Nemesis {
 public:
  Nemesis(ClusterAdapter& cluster, NemesisProfile profile, std::uint64_t seed);

  // Schedules fault ticks from now until now + active_window. Call once,
  // before driving the workload.
  void arm(Duration active_window);

  // Ends the chaos: cancels pending ticks, heals all partitions and
  // isolation, restores clock offsets and duplication, and pulls GST back to
  // "stabilized now" if an earlier shift pushed it past the present. Under a
  // profile with restart/bounce weight, every process still down is powered
  // back up ("the outage ends"); otherwise crashed processes stay crashed
  // (crash-stop model), preserving the historical profiles' runs exactly.
  void stop_and_heal();

  const std::vector<std::string>& schedule_log() const { return log_; }
  int crashes() const { return crashes_; }
  int restarts() const { return restarts_; }
  // Every clock-offset bump performed, in injection order (empty under
  // profiles with zero clock_skew_max).
  const std::vector<SkewEvent>& skew_events() const { return skew_events_; }

 private:
  void tick();
  void act();
  int pick_victim();
  void note(const std::string& line);
  // Number of processes down right now (the crash budget's denominator).
  int down_now() const;
  // Powers crashed process p back up and logs it.
  void do_restart(int p);
  // Crash-loop chain step: restart p after a short drawn downtime, and if
  // `remaining` cycles are left, kill it again after a short drawn up-time.
  void schedule_loop_restart(int p, int remaining);

  ClusterAdapter& cluster_;
  NemesisProfile profile_;
  Rng rng_;
  RealTime active_until_ = RealTime::zero();
  sim::EventHandle tick_timer_;

  std::set<std::pair<int, int>> cut_links_;
  std::set<int> isolated_;
  std::set<int> skewed_;
  std::vector<SkewEvent> skew_events_;
  int crashes_ = 0;
  int restarts_ = 0;
  // Processes with a bounce-scheduled restart still pending; membership is
  // checked at fire time so stop_and_heal's revival can't double-restart.
  std::set<int> pending_restarts_;
  bool duplication_on_ = false;
  std::vector<std::string> log_;
};

}  // namespace cht::chaos
