// Mutation self-test: prove the chaos harness has teeth by injecting a known
// linearizability bug and asserting the sweep catches it.
//
// This binary is the ONLY place src/chaos/evil.cc is compiled (behind
// -DCHT_CHAOS_ENABLE_EVIL, set on this target alone in tests/CMakeLists.txt).
// The EvilAdapter decorator serves every third read from a frozen snapshot of
// the initial object state — the classic "read at a stale applied index" bug.
// A test harness that cannot flag that within a handful of seeds would also
// miss the real thing, so detection failures here fail the build.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <utility>

#include "chaos/evil.h"
#include "chaos/spec.h"
#include "chaos/sweep.h"

namespace cht::chaos {
namespace {

RunSpec mutation_spec(const std::string& protocol) {
  RunSpec spec;
  spec.protocol = protocol;
  // A calm profile on purpose: with no faults in play, every violation the
  // checker reports is attributable to the injected mutation, and the control
  // sweep below is expected to be perfectly clean.
  spec.profile = "calm";
  spec.object = "kv";
  spec.ops = 30;
  return spec;
}

constexpr std::uint64_t kFirstSeed = 1;
constexpr int kSeedBudget = 8;

TEST(ChaosMutationTest, SweepDetectsInjectedStaleReads) {
  for (const auto& protocol : known_protocols()) {
    SweepOptions options;
    options.threads = 2;
    options.hook = [](std::unique_ptr<ClusterAdapter> inner) {
      return std::make_unique<EvilAdapter>(std::move(inner), /*stale_every=*/3);
    };
    const SweepResult swept =
        sweep_seeds(mutation_spec(protocol), kFirstSeed, kSeedBudget, options);
    EXPECT_GT(swept.failures(), 0)
        << protocol << ": injected stale reads went undetected across "
        << kSeedBudget << " seeds — the harness has lost its teeth";
    // The injected failures must be *decided* verdicts, not budget blowups.
    EXPECT_EQ(swept.undecided(), 0) << protocol;
  }
}

TEST(ChaosMutationTest, ControlSweepWithoutMutationIsClean) {
  // The identical sweep minus the hook: any failure here would mean the
  // detection above could be a false positive of the harness itself.
  for (const auto& protocol : known_protocols()) {
    const SweepResult swept =
        sweep_seeds(mutation_spec(protocol), kFirstSeed, kSeedBudget, {});
    EXPECT_EQ(swept.failures(), 0) << protocol;
    EXPECT_EQ(swept.undecided(), 0) << protocol;
  }
}

TEST(ChaosMutationTest, ViolationNamesLinearizability) {
  // The flagged violation should be the linearizability invariant (the bug
  // corrupts read results, not protocol-internal state).
  SweepOptions options;
  options.hook = [](std::unique_ptr<ClusterAdapter> inner) {
    return std::make_unique<EvilAdapter>(std::move(inner), /*stale_every=*/2);
  };
  const SweepResult swept =
      sweep_seeds(mutation_spec("chtread"), kFirstSeed, kSeedBudget, options);
  ASSERT_GT(swept.failures(), 0);
  bool found = false;
  for (const auto& result : swept.results) {
    for (const auto& violation : result.violations) {
      if (violation.find("linearizab") != std::string::npos) found = true;
    }
  }
  EXPECT_TRUE(found)
      << "stale reads were flagged, but not by the linearizability invariant";
}

}  // namespace
}  // namespace cht::chaos
