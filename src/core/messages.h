// Wire types of the replication algorithm.
//
// Following the paper's presentation, messages split into the consensus
// mechanism for RMW operations ("black code": EstReq/EstReply, Prepare/
// PrepareAck, Commit, RmwRequest, BatchRequest/BatchReply) and the read-
// lease mechanism ("red code": LeaseGrant, LeaseRequest). The read path
// itself sends no messages at all (reads are local).
#pragma once

#include <algorithm>
#include <optional>
#include <set>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "object/object.h"

namespace cht::core {

// One client operation inside a batch.
struct BatchOp {
  OperationId id;
  object::Operation op;
  auto operator<=>(const BatchOp&) const = default;
};

// A batch is the set O of RMW operations committed together. Canonical form:
// sorted by operation id, no duplicates — the "pre-determined order, the
// same for all processes" in which batch operations are applied.
using Batch = std::vector<BatchOp>;

inline void canonicalize(Batch& batch) {
  std::sort(batch.begin(), batch.end());
  batch.erase(std::unique(batch.begin(), batch.end()), batch.end());
}

// A process's estimate: the freshest batch it has been notified of (not
// necessarily committed). Freshness order is lexicographic on (ts, k);
// `ts` is the local time at which the notifying leader became leader,
// unique across reigns by property EL1.
struct Estimate {
  Batch ops;
  LocalTime ts;
  BatchNumber k = 0;

  std::pair<LocalTime, BatchNumber> freshness() const { return {ts, k}; }
};

// A read lease: a promise by the leader that no batch numbered beyond
// `batch` will be committed before local time `issued + LeasePeriod` at the
// holder, unless the holder has been notified (Prepared) of it.
struct Lease {
  BatchNumber batch = 0;
  LocalTime issued;
};

// --- Message payloads -------------------------------------------------------

namespace msg {

inline constexpr const char* kRmwRequest = "core.rmw";
inline constexpr const char* kEstReq = "core.estreq";
inline constexpr const char* kEstReply = "core.estreply";
inline constexpr const char* kPrepare = "core.prepare";
inline constexpr const char* kPrepareAck = "core.prepareack";
inline constexpr const char* kCommit = "core.commit";
inline constexpr const char* kLeaseGrant = "core.leasegrant";
inline constexpr const char* kLeaseRequest = "core.leaserequest";
inline constexpr const char* kBatchRequest = "core.batchrequest";
inline constexpr const char* kBatchReply = "core.batchreply";
// Only used by ReadPolicy::kLeaderForward (baseline): the paper's algorithm
// never sends messages for reads.
inline constexpr const char* kReadRequest = "core.readrequest";
inline constexpr const char* kReadReply = "core.readreply";

struct RmwRequest {
  OperationId id;
  object::Operation op;
};

struct EstReq {
  LocalTime leader_time;  // when the sender became leader
};

struct EstReply {
  LocalTime leader_time;               // echoed from the request
  std::optional<Estimate> estimate;    // responder's estimate, if any
  std::optional<Batch> prev_batch;     // responder's Batch[estimate.k - 1]
};

struct Prepare {
  Batch ops;              // the batch O being proposed
  LocalTime leader_time;  // t: when the proposing leader became leader
  BatchNumber number = 0;     // j
  Batch prev_batch;       // Batch[j-1] (committed), empty for j == 1
};

struct PrepareAck {
  LocalTime leader_time;
  BatchNumber number = 0;
};

struct Commit {
  Batch ops;
  BatchNumber number = 0;
};

struct LeaseGrant {
  BatchNumber batch = 0;            // latest committed batch number
  LocalTime issued;             // leader's local time of issue
  std::set<int> leaseholders;   // current leaseholder set (process indices)
};

struct LeaseRequest {};

struct BatchRequest {
  BatchNumber number = 0;
};

struct BatchReply {
  BatchNumber number = 0;
  Batch ops;
};

struct ReadRequest {
  OperationId id;
  object::Operation op;
};

struct ReadReply {
  OperationId id;
  object::Response response;
};

}  // namespace msg
}  // namespace cht::core
