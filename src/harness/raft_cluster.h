// Harness for clusters of the Raft baseline, mirroring harness::Cluster.
#pragma once

#include <memory>

#include "checker/history.h"
#include "harness/client_pool.h"
#include "harness/cluster.h"  // ClusterConfig
#include "object/object.h"
#include "raft/raft.h"
#include "sim/simulation.h"

namespace cht::harness {

class RaftCluster {
 public:
  RaftCluster(ClusterConfig config,
              std::shared_ptr<const object::ObjectModel> model,
              raft::ReadMode read_mode = raft::ReadMode::kReadIndex);

  sim::Simulation& sim() { return sim_; }
  int n() const { return config_.n; }
  const ClusterConfig& config() const { return config_; }
  raft::RaftReplica& replica(int i) {
    return sim_.process_as<raft::RaftReplica>(ProcessId(i));
  }
  const object::ObjectModel& model() const { return *model_; }
  checker::HistoryRecorder& history() { return history_; }
  const raft::RaftConfig& raft_config() const { return raft_config_; }

  // With config.clients > 0 the operation travels through a networked
  // client (slot i picks client i % clients); see harness::Cluster::submit.
  void submit(int i, object::Operation op);
  client::Client& client(int j) { return clients_.client(j); }
  bool client_path() const { return clients_.enabled(); }

  // Merges all replicas' (and clients', when enabled) registries plus
  // storage counters into `out`; mirrors harness::Cluster.
  void merge_metrics_into(metrics::Registry& out);
  // Power-cycles crashed process i back up with a fresh RaftReplica over
  // slot i's surviving StableStorage (term/vote/log replay in on_restart).
  void restart(int i);
  void run_for(Duration d) { sim_.run_until(sim_.now() + d); }
  bool await_quiesce(Duration timeout);
  int leader();  // index of the unique leader in the highest term, or -1
  bool await_leader(Duration timeout);

  std::size_t completed() const { return completed_; }
  std::size_t submitted() const { return submitted_; }

 private:
  ClusterConfig config_;
  std::shared_ptr<const object::ObjectModel> model_;
  raft::RaftConfig raft_config_;
  sim::Simulation sim_;
  ClientPool clients_;
  checker::HistoryRecorder history_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
};

}  // namespace cht::harness
