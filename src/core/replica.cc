#include "core/replica.h"

#include <algorithm>
#include <string>
#include <utility>

#include "common/assert.h"
#include "common/logging.h"
#include "sim/storage.h"

namespace cht::core {

namespace {
constexpr const char* kTag = "replica";

// Stable-storage schema. "promised" and "est" are synced before the message
// they back leaves the process; "batch.<j>" records ride along with the next
// sync (losing one only loses committed data a majority still holds).
constexpr const char* kKeyPromised = "promised";
constexpr const char* kKeyEstimate = "est";
constexpr const char* kBatchKeyPrefix = "batch.";

// Smallest representable local-time advance — "strictly after" an instant
// on a clock that ticks in whole microseconds.
constexpr Duration kTickAfter = Duration::micros(1);

std::string encode_batch(const Batch& ops) {
  std::vector<std::string> fields;
  fields.reserve(ops.size() * 4);
  for (const BatchOp& b : ops) {
    fields.push_back(std::to_string(b.id.process.index()));
    fields.push_back(std::to_string(b.id.seq));
    fields.push_back(b.op.kind);
    fields.push_back(b.op.arg);
  }
  return sim::encode_fields(fields);
}

Batch decode_batch(const std::string& record) {
  const std::vector<std::string> fields = sim::decode_fields(record);
  CHT_ASSERT(fields.size() % 4 == 0, "malformed batch record");
  Batch ops;
  ops.reserve(fields.size() / 4);
  for (std::size_t i = 0; i < fields.size(); i += 4) {
    ops.push_back(BatchOp{OperationId{ProcessId(std::stoi(fields[i])),
                                      std::stoll(fields[i + 1])},
                          object::Operation{fields[i + 2], fields[i + 3]}});
  }
  return ops;
}

}  // namespace

Replica::Replica(std::shared_ptr<const object::ObjectModel> model,
                 Config config)
    : model_(std::move(model)),
      config_(config),
      omega_(*this, config_.omega),
      els_(*this, [this] { return omega_.leader(); }, config_.els),
      metrics_(config_.metrics_enabled),
      gateway_(*this, &metrics_),
      clock_guard_(config_.clock_guard) {
  client::ReplicaGateway::Hooks hooks;
  // Any chtread replica accepts RMWs: rmw_send forwards them to the believed
  // leader with retries, so the client never needs to find the leader itself.
  hooks.accepts_rmw = [] { return true; };
  hooks.is_leader = [this] { return is_steady_leader(); };
  hooks.leader_hint = [this] { return els_.believed_leader().index(); };
  // Plain reads are served locally (the paper's lease-read fast path).
  hooks.local_reads = true;
  hooks.submit_rmw = [this](const OperationId& id,
                            const object::Operation& op) {
    submit_rmw_as(id, op);
  };
  hooks.submit_read = [this](const object::Operation& op,
                             std::function<void(std::string)> done) {
    submit_read(op,
                [done = std::move(done)](const object::Response& r) { done(r); });
  };
  gateway_.set_hooks(std::move(hooks));
  // Register every metric up front: the record path then only touches
  // pre-allocated storage, and exported artifacts list the full inventory
  // even for phases that never ran.
  c_rmws_submitted_ = &metrics_.counter("rmws_submitted");
  c_rmws_completed_ = &metrics_.counter("rmws_completed");
  c_reads_submitted_ = &metrics_.counter("reads_submitted");
  c_reads_completed_ = &metrics_.counter("reads_completed");
  c_reads_blocked_ = &metrics_.counter("reads_blocked");
  c_batches_committed_ = &metrics_.counter("batches_committed_as_leader");
  c_became_leader_ = &metrics_.counter("became_leader");
  c_abdicated_ = &metrics_.counter("abdicated");
  h_read_block_ = &metrics_.histogram("span.read.block_us");
  h_lease_interval_ = &metrics_.histogram("span.lease.interval_us");
  span_doops_prepare_ =
      metrics::Span(&metrics_.histogram("span.doops.prepare_us"));
  span_doops_gate_ = metrics::Span(&metrics_.histogram("span.doops.gate_us"));
  span_doops_total_ = metrics::Span(&metrics_.histogram("span.doops.total_us"));
  span_leader_init_ = metrics::Span(&metrics_.histogram("span.leader.init_us"));
  span_leader_reign_ =
      metrics::Span(&metrics_.histogram("span.leader.reign_us"));
  c_recoveries_ = &metrics_.counter("recoveries");
  c_recovered_batches_ = &metrics_.counter("recovery_batches_replayed");
  span_recovery_ = metrics::Span(&metrics_.histogram("span.recovery_us"));
  c_clock_transitions_ = &metrics_.counter("clock.suspect_transitions");
  c_reads_degraded_ = &metrics_.counter("reads.degraded");
}

void Replica::end_span(metrics::Span& span, const char* name) {
  const std::int64_t us = span.end(now_local().to_micros());
  if (us >= 0 && tracing()) trace_event(name, "us=" + std::to_string(us));
}

Replica::Snapshot Replica::snapshot() {
  Snapshot s;
  s.phase = phase_;
  s.steady_leader = is_steady_leader();
  s.applied_upto = applied_upto_;
  s.max_known_batch = max_known_batch_;
  s.estimate = estimate_;
  s.lease = lease_;
  s.leaseholders = leaseholders_;
  s.batches = batches_;
  s.pending_reads = pending_reads_.size();
  s.pending_rmws = pending_rmw_.size();
  s.forwarded_reads = forwarded_reads_.size();
  s.clock_suspect = clock_guard_.suspect();
  s.clock_suspect_transitions = clock_guard_.transitions().size();
  return s;
}

void Replica::on_start() {
  state_ = model_->make_initial_state();
  seed_op_sequences();
  omega_.start();
  els_.start();
  leader_check_tick();
  anti_entropy_tick();
}

void Replica::on_restart() {
  span_recovery_.begin(now_local().to_micros());
  c_recoveries_->inc();
  state_ = model_->make_initial_state();
  seed_op_sequences();
  recover_from_storage();
  omega_.start();
  els_.recover();  // resumes the persisted support counter (EL1 across crash)
  leader_check_tick();
  anti_entropy_tick();
}

void Replica::seed_op_sequences() {
  // A fresh incarnation must never reuse an OperationId from a previous life
  // (committed RMWs are deduplicated by id, so a reused id would silently
  // swallow the new operation). Namespacing the sequence by incarnation
  // avoids the alternative of an fsync on every submit.
  const std::int64_t base = static_cast<std::int64_t>(incarnation()) << 40;
  rmw_seq_ = base;
  read_seq_ = base;
}

void Replica::recover_from_storage() {
  sim::StableStorage& st = storage();
  for (const std::string& key : st.keys_with_prefix(kBatchKeyPrefix)) {
    const BatchNumber j = std::stoll(key.substr(6));
    store_batch(j, decode_batch(*st.read(key)));
    c_recovered_batches_->inc();
  }
  if (const auto promised = st.read(kKeyPromised)) {
    promised_ = LocalTime::micros(std::stoll(*promised));
  }
  if (const auto est = st.read(kKeyEstimate)) {
    const std::vector<std::string> fields = sim::decode_fields(*est);
    CHT_ASSERT(fields.size() == 4, "malformed estimate record");
    const LocalTime ts = LocalTime::micros(std::stoll(fields[0]));
    const BatchNumber k = std::stoll(fields[1]);
    // The estimate record embeds Batch[k-1] so a torn crash can never leave
    // an estimate without its predecessor (I2 holds record-atomically).
    if (k >= 2) store_batch(k - 1, decode_batch(fields[3]));
    adopt_estimate(decode_batch(fields[2]), ts, k);
  }
  apply_ready();
  trace_event("recovery",
              "batches=" + std::to_string(batches_.size()) +
                  " applied=" + std::to_string(applied_upto_));
}

// ===========================================================================
// Client API (Thread 1)
// ===========================================================================

OperationId Replica::submit_rmw(object::Operation op, Callback callback) {
  CHT_ASSERT(!model_->is_read(op), "submit_rmw called with a read operation");
  c_rmws_submitted_->inc();
  const OperationId id{this->id(), ++rmw_seq_};
  auto [it, inserted] =
      pending_rmw_.try_emplace(id, PendingRmw{std::move(op), std::move(callback),
                                              sim::EventHandle()});
  CHT_ASSERT(inserted, "duplicate RMW id");
  (void)it;
  rmw_send(id);
  return id;
}

void Replica::submit_rmw_as(const OperationId& id, object::Operation op,
                            Callback callback) {
  CHT_ASSERT(!model_->is_read(op), "submit_rmw_as called with a read operation");
  // Already committed here: the batch will (or did) reach the apply path,
  // which answers the gateway waiter; nothing to inject.
  if (committed_op_batch_.contains(id)) return;
  auto [it, inserted] = pending_rmw_.try_emplace(
      id,
      PendingRmw{std::move(op), std::move(callback), sim::EventHandle()});
  if (!inserted) return;  // a retry of an id this replica is already pushing
  (void)it;
  c_rmws_submitted_->inc();
  rmw_send(id);
}

void Replica::rmw_send(const OperationId& id) {
  auto it = pending_rmw_.find(id);
  if (it == pending_rmw_.end()) return;  // already completed
  const ProcessId leader = els_.believed_leader();
  const msg::RmwRequest request{id, it->second.op};
  if (leader == this->id()) {
    on_rmw_request(this->id(), request);
  } else {
    send(leader, msg::kRmwRequest, request);
  }
  // Re-send periodically: rides out pre-GST message loss and changes in the
  // leader belief (paper lines 2-5).
  it->second.retry_timer =
      schedule_after(config_.rmw_retry, [this, id] { rmw_send(id); });
}

void Replica::complete_rmw(const OperationId& id,
                           const object::Response& response) {
  auto node = pending_rmw_.extract(id);
  if (node.empty()) return;
  node.mapped().retry_timer.cancel();
  if (node.mapped().is_read) {
    // A degraded read that rode the RMW path to commit: account it as the
    // read it is, including its full invocation-to-completion wait.
    c_reads_completed_->inc();
    const std::int64_t blocked_us =
        (now_real() - node.mapped().invoked).to_micros();
    h_read_block_->record(blocked_us);
    if (tracing()) {
      trace_event("span.read.block", "us=" + std::to_string(blocked_us));
    }
  } else {
    c_rmws_completed_->inc();
  }
  if (node.mapped().callback) node.mapped().callback(response);
}

void Replica::submit_read(object::Operation op, Callback callback) {
  CHT_ASSERT(model_->is_read(op), "submit_read called with a RMW operation");
  c_reads_submitted_->inc();
  if (config_.read_policy == ReadPolicy::kLeaderForward) {
    // Baseline: every read travels to the leader and back (never local,
    // always blocking).
    c_reads_blocked_->inc();
    const OperationId id{this->id(), ++read_seq_};
    forwarded_reads_.try_emplace(
        id, ForwardedRead{std::move(op), std::move(callback), now_real(),
                          sim::EventHandle()});
    forward_read_send(id);
    return;
  }
  if (clock_guard_.suspect() &&
      config_.read_policy != ReadPolicy::kUnsafeLocal) {
    // Clock-suspect: the lease fast path (and every other clock-dependent
    // read policy) is off the table until the guard re-qualifies. Push the
    // read through consensus instead — slower, but correct under arbitrary
    // skew. kUnsafeLocal stays unguarded: it exists to demonstrate the
    // lower-bound violation and must keep misbehaving.
    c_reads_blocked_->inc();
    submit_read_degraded(std::move(op), std::move(callback), now_real());
    return;
  }
  pending_reads_.push_back(
      PendingRead{std::move(op), std::move(callback), std::nullopt, now_real(),
                  std::nullopt, false});
  auto it = std::prev(pending_reads_.end());
  if (try_advance_read(*it)) {
    pending_reads_.erase(it);  // non-blocking read: completed synchronously
  } else {
    it->counted_blocked = true;
    c_reads_blocked_->inc();
  }
}

bool Replica::batch_conflicts_with(const object::Operation& read,
                                   const Batch& batch) const {
  return std::any_of(batch.begin(), batch.end(), [&](const BatchOp& b) {
    return !model_->is_read(b.op) && model_->conflicts(read, b.op);
  });
}

// Paper lines 7-19. Returns true iff the read completed.
bool Replica::try_advance_read(PendingRead& read) {
  if (config_.read_policy == ReadPolicy::kUnsafeLocal) {
    read.khat = 0;  // no waiting whatsoever; see config.h for why this exists
  }
  if (clock_guard_.suspect() && !read.khat.has_value()) {
    // Every k-hat source below trusts this replica's clock (the leader
    // shortcut via AmLeader, lease validity, the safe-time beacon compare).
    // While suspect none of them may serve; guard_observe reroutes pending
    // reads through consensus on the trip, so this is only reached by a
    // read racing the flip inside a single delivery.
    return false;
  }
  if (config_.read_policy == ReadPolicy::kSafeTime && !read.khat.has_value()) {
    // Spanner option (b): read at timestamp `stamp`; serve once the safe
    // time (the newest LeaseGrant's issue time, acting as a safe-time
    // beacon) passes the stamp and the corresponding prefix is applied.
    if (!read.stamp.has_value()) read.stamp = now_local();
    if (phase_ == Phase::kSteady && els_.am_leader(leader_time_, now_local())) {
      read.khat = leader_next_batch_ - 1;  // the leader's time is safe time
    } else if (lease_.has_value() &&
               lease_->issued > *read.stamp + config_.epsilon) {
      // The beacon's issue time is on the leader's clock and the stamp on
      // ours; the +epsilon guard ensures the beacon was really issued after
      // the read's invocation, so its batch covers every completed write.
      read.khat = lease_->batch;
    } else {
      return false;  // wait for the next safe-time beacon
    }
  }
  if (!read.khat.has_value()) {
    if (phase_ == Phase::kSteady &&
        els_.am_leader(leader_time_, now_local())) {
      // Leader path: the leader is the only committer, so no batch beyond its
      // own last commit can be committed without its knowledge; its reads
      // linearize right after that batch with no pending-batch scan.
      read.khat = leader_next_batch_ - 1;
    } else if (lease_.has_value() &&
               now_local() < lease_->issued + config_.lease_period) {
      // Valid lease (k, ts): linearize after k, unless a *pending* batch
      // beyond k conflicts with the read, in which case after the largest
      // such batch (line 15).
      BatchNumber khat = lease_->batch;
      const bool conflict_blind =
          config_.read_policy == ReadPolicy::kAnyPendingBlocks;
      for (const auto& [j, ops] : pending_batch_) {
        if (j > lease_->batch && j > khat &&
            (conflict_blind || batch_conflicts_with(read.op, ops))) {
          khat = j;
        }
      }
      read.khat = khat;
    } else {
      return false;  // wait for a (renewed) lease
    }
  }
  if (applied_upto_ < *read.khat) return false;  // wait for batches <= k-hat
  const object::Response response = model_->apply(*state_, read.op);
  c_reads_completed_->inc();
  if (read.counted_blocked) {
    // The k-hat wait span: invocation to completion, real time. Reads that
    // completed synchronously never blocked and are not recorded.
    const std::int64_t blocked_us = (now_real() - read.invoked).to_micros();
    h_read_block_->record(blocked_us);
    if (tracing()) {
      trace_event("span.read.block", "us=" + std::to_string(blocked_us));
    }
  }
  if (read.callback) read.callback(response);
  return true;
}

void Replica::try_advance_reads() {
  for (auto it = pending_reads_.begin(); it != pending_reads_.end();) {
    it = try_advance_read(*it) ? pending_reads_.erase(it) : std::next(it);
  }
}

// ===========================================================================
// Clock-health guard (synchrony self-defense; see clock_guard.h)
// ===========================================================================

void Replica::guard_observe(const sim::Message& message) {
  if (!clock_guard_.observe(message.sent_local, now_local(), now_real())) {
    return;
  }
  c_clock_transitions_->inc();
  if (tracing()) {
    trace_event("clock.guard",
                clock_guard_.suspect() ? "suspect" : "requalified");
  }
  if (!clock_guard_.suspect()) return;
  // Trip: reads already waiting on the lease path computed (or will compute)
  // k-hat from a clock we no longer trust. Reroute every one of them through
  // consensus — their callbacks move over, so each still fires exactly once.
  std::list<PendingRead> rerouted;
  rerouted.swap(pending_reads_);
  for (PendingRead& read : rerouted) {
    // Reads that already failed to advance once were counted blocked then.
    if (!read.counted_blocked) c_reads_blocked_->inc();
    submit_read_degraded(std::move(read.op), std::move(read.callback),
                         read.invoked);
  }
}

void Replica::submit_read_degraded(object::Operation op, Callback callback,
                                   RealTime invoked) {
  c_reads_degraded_->inc();
  // Degraded reads share read_seq_ but set bit 39: the id lands in the
  // committed-op dedup map next to RMW ids built from the same
  // incarnation<<40 base, so the sequence spaces must stay disjoint.
  const OperationId id{this->id(),
                       (std::int64_t{1} << 39) | ++read_seq_};
  auto [it, inserted] = pending_rmw_.try_emplace(
      id, PendingRmw{std::move(op), std::move(callback), sim::EventHandle(),
                     /*is_read=*/true, invoked});
  CHT_ASSERT(inserted, "duplicate degraded-read id");
  (void)it;
  rmw_send(id);
}

// ===========================================================================
// Thread 2: leadership
// ===========================================================================

void Replica::leader_check_tick() {
  if (phase_ == Phase::kFollower) {
    const LocalTime t = now_local();
    if (els_.am_leader(t, t)) become_leader(t);
  }
  leader_check_timer_ = schedule_after(config_.leader_check_interval,
                                       [this] { leader_check_tick(); });
}

bool Replica::is_steady_leader() {
  return phase_ == Phase::kSteady && els_.am_leader(leader_time_, now_local());
}

void Replica::become_leader(LocalTime t) {
  CHT_DEBUG(kTag) << id() << " becomes leader at " << t;
  trace_event("leader.become", "t=" + std::to_string(t.to_micros()));
  c_became_leader_->inc();
  end_span(span_recovery_, "span.recovery");  // recovered straight to leading
  span_leader_init_.begin(t.to_micros());
  span_leader_reign_.begin(t.to_micros());
  phase_ = Phase::kCollecting;
  leader_time_ = t;
  est_replies_.clear();
  chosen_.reset();
  next_ops_.clear();
  doops_.reset();
  // Line 25: initially consider every other process a potential leaseholder.
  leaseholders_.clear();
  for (int i = 0; i < cluster_size(); ++i) {
    if (i != id().index()) leaseholders_.insert(i);
  }
  last_lease_issued_ = LocalTime::min();
  // Our own estimate counts toward the majority (lines 26-30).
  est_replies_[id().index()] = msg::EstReply{leader_time_, estimate_, {}};
  send_est_reqs();
  maybe_finish_collecting();
}

void Replica::abdicate() {
  CHT_DEBUG(kTag) << id() << " abdicates (reign " << leader_time_ << ")";
  trace_event("leader.abdicate");
  c_abdicated_->inc();
  end_span(span_leader_reign_, "span.leader.reign");
  // A reign that never reached steady, or a DoOps cut short, has no
  // meaningful phase duration: disarm rather than record.
  span_leader_init_.cancel();
  span_doops_prepare_.cancel();
  span_doops_gate_.cancel();
  span_doops_total_.cancel();
  phase_ = Phase::kFollower;
  estreq_timer_.cancel();
  fetch_timer_.cancel();
  steady_timer_.cancel();
  if (doops_.has_value()) {
    doops_->resend_timer.cancel();
    doops_->gate_timer.cancel();
    doops_->expiry_timer.cancel();
    doops_.reset();
  }
  est_replies_.clear();
  chosen_.reset();
  next_ops_.clear();  // submitters keep retrying toward the new leader
}

bool Replica::check_still_leader() {
  if (els_.am_leader(leader_time_, now_local())) return true;
  abdicate();
  return false;
}

// --- Initialization: collect estimates (lines 26-31) ----------------------

void Replica::send_est_reqs() {
  if (phase_ != Phase::kCollecting) return;
  if (!check_still_leader()) return;
  broadcast(msg::kEstReq, msg::EstReq{leader_time_});
  estreq_timer_ =
      schedule_after(config_.estreq_resend, [this] { send_est_reqs(); });
}

void Replica::on_est_reply(ProcessId from, const msg::EstReply& reply) {
  if (phase_ != Phase::kCollecting || reply.leader_time != leader_time_) return;
  // I2 in transit: the responder's Batch[k-1] rides along with its estimate.
  if (reply.estimate.has_value() && reply.estimate->k >= 2 &&
      reply.prev_batch.has_value()) {
    store_batch(reply.estimate->k - 1, *reply.prev_batch);
  }
  est_replies_[from.index()] = reply;
  maybe_finish_collecting();
}

void Replica::maybe_finish_collecting() {
  if (phase_ != Phase::kCollecting) return;
  if (static_cast<int>(est_replies_.size()) < majority()) return;
  estreq_timer_.cancel();
  // Select the freshest estimate (line 31).
  for (const auto& [index, reply] : est_replies_) {
    if (!reply.estimate.has_value()) continue;
    if (!chosen_.has_value() ||
        chosen_->freshness() < reply.estimate->freshness()) {
      chosen_ = reply.estimate;
    }
  }
  phase_ = Phase::kFetching;
  fetch_tick();
}

// --- Initialization: FindMissingBatches(k*-2) (line 33) -------------------

void Replica::fetch_tick() {
  if (phase_ != Phase::kFetching) return;
  if (!check_still_leader()) return;
  maybe_finish_fetching();
  if (phase_ != Phase::kFetching) return;
  // I3 guarantees each batch < k* is held by a majority, hence by at least
  // one correct peer.
  const BatchNumber upto = chosen_.has_value() ? chosen_->k - 1 : 0;
  for (BatchNumber j = 1; j <= upto; ++j) {
    if (!batches_.contains(j)) {
      broadcast(msg::kBatchRequest, msg::BatchRequest{j});
    }
  }
  fetch_timer_ =
      schedule_after(config_.anti_entropy_interval, [this] { fetch_tick(); });
}

void Replica::maybe_finish_fetching() {
  if (phase_ != Phase::kFetching) return;
  const BatchNumber upto = chosen_.has_value() ? chosen_->k - 1 : 0;
  for (BatchNumber j = 1; j <= upto; ++j) {
    if (!batches_.contains(j)) return;
  }
  fetch_timer_.cancel();
  // ExecuteUpToBatch(k*-1), picking up from the current applied state
  // (line 34).
  apply_ready();
  CHT_ASSERT(applied_upto_ >= upto, "leader catch-up failed to apply");
  begin_initial_commit();
}

void Replica::begin_initial_commit() {
  if (chosen_.has_value()) {
    phase_ = Phase::kInitDoOps;
    leader_next_batch_ = chosen_->k;  // will advance on commit
    start_doops(chosen_->ops, chosen_->k, /*initial=*/true);
  } else {
    // No process in our majority was ever notified of any batch: nothing to
    // recover; the NoOp below forms batch 1.
    leader_next_batch_ = 1;
    enter_steady();
  }
}

// --- DoOps (lines 52-70) ---------------------------------------------------

void Replica::start_doops(Batch ops, BatchNumber number, bool initial) {
  canonicalize(ops);
  CHT_ASSERT(!ops.empty(), "DoOps with empty batch");
  // Line 52: if we answered an EstReq from a leader later than ourselves, we
  // must not try to commit; abdicate.
  if (promised_ > leader_time_) {
    abdicate();
    return;
  }
  doops_.emplace();
  doops_->ops = ops;
  doops_->number = number;
  doops_->initial = initial;
  doops_->prepare_started = now_local();
  span_doops_prepare_.begin(doops_->prepare_started.to_micros());
  span_doops_total_.begin(doops_->prepare_started.to_micros());
  // Line 53: adopt (O, t, j) as our own estimate.
  adopt_estimate(std::move(ops), leader_time_, number);
  // Pipelined write path: the Prepares go out while our own covering sync is
  // still in flight, so batch j's prepare round overlaps the fsync instead
  // of serializing behind it. Our self-ack counts toward the majority
  // exactly like a follower's PrepareAck, so it is recorded only once the
  // covering sync completes — until then our adoption is no more durable
  // than an unacked follower's (see DESIGN.md on group-commit safety).
  send_prepares();
  const LocalTime t = leader_time_;
  request_sync([this, t, number] {
    if (!doops_.has_value() || t != leader_time_ ||
        number != doops_->number) {
      return;  // reign or batch changed while the sync was in flight
    }
    doops_->ackers.insert(id().index());
    maybe_reach_majority();  // n == 1: our own ack already is a majority
    check_leaseholder_gate();
  });
}

void Replica::maybe_reach_majority() {
  if (!doops_.has_value() || doops_->majority_reached ||
      static_cast<int>(doops_->ackers.size()) < majority()) {
    return;
  }
  doops_->majority_reached = true;
  doops_->resend_timer.cancel();
  end_span(span_doops_prepare_, "span.doops.prepare");
  span_doops_gate_.begin(now_local().to_micros());
  // Condition (ii) of the leaseholder gate: the worst-case ack round trip
  // after stabilization (2*delta of messages, plus fsync cost — see
  // prepare_ack_deadline()).
  doops_->gate_timer =
      schedule_at_local(doops_->prepare_started + prepare_ack_deadline(),
                        [this] { check_leaseholder_gate(); });
  check_leaseholder_gate();
}

Duration Replica::prepare_ack_deadline() const {
  return 2 * config_.delta + 3 * storage().config().sync_latency;
}

void Replica::send_prepares() {
  if (!doops_.has_value() || doops_->majority_reached) return;
  if (!check_still_leader()) return;
  // B = Batch[j-1]: committed by construction (initialization recovered it;
  // steady-state committed it one step earlier). Receivers store it, which
  // preserves I2 when they adopt (O, t, j).
  Batch prev;
  if (doops_->number >= 2) {
    auto it = batches_.find(doops_->number - 1);
    CHT_ASSERT(it != batches_.end(), "preparing j without committed j-1");
    prev = it->second;
  }
  broadcast(msg::kPrepare,
            msg::Prepare{doops_->ops, leader_time_, doops_->number, prev});
  doops_->resend_timer =
      schedule_after(config_.prepare_resend, [this] { send_prepares(); });
}

void Replica::on_prepare_ack(ProcessId from, const msg::PrepareAck& ack) {
  if (!doops_.has_value() || ack.leader_time != leader_time_ ||
      ack.number != doops_->number) {
    return;
  }
  doops_->ackers.insert(from.index());
  maybe_reach_majority();
  check_leaseholder_gate();
}

void Replica::check_leaseholder_gate() {
  if (!doops_.has_value() || !doops_->majority_reached ||
      doops_->waiting_expiry) {
    return;
  }
  if (config_.commit_gate == CommitGate::kMajorityOnly) {
    // Plain SMR baseline: majority suffices (no lease safety for readers).
    doops_->gate_timer.cancel();
    finish_doops();
    return;
  }
  // kAllProcesses (Megastore-style) requires every process to ack each
  // write; with kLeaseholders (the paper) only the tracked set must.
  const bool all_leaseholders_acked =
      config_.commit_gate == CommitGate::kAllProcesses
          ? static_cast<int>(doops_->ackers.size()) == cluster_size()
          : std::all_of(leaseholders_.begin(), leaseholders_.end(),
                        [&](int lh) { return doops_->ackers.contains(lh); });
  if (all_leaseholders_acked) {
    // Condition (i): every process potentially holding a valid lease has
    // been notified of batch j; committing now cannot make any read stale.
    doops_->gate_timer.cancel();
    finish_doops();
    return;
  }
  if (now_local() >= doops_->prepare_started + prepare_ack_deadline()) {
    // Condition (ii) fired with a leaseholder missing: delay the commit
    // until every lease we or a predecessor issued has expired, even on
    // clocks running epsilon slow (lines 60-61).
    doops_->waiting_expiry = true;
    const LocalTime base = std::max(leader_time_, last_lease_issued_);
    const LocalTime safe =
        base + config_.lease_period + config_.epsilon + kTickAfter;
    doops_->expiry_timer =
        schedule_at_local(safe, [this] { finish_doops(); });
  }
}

void Replica::finish_doops() {
  if (!doops_.has_value()) return;
  if (config_.commit_wait > Duration::zero() && !doops_->commit_waited) {
    // Spanner-style commit wait: sit out the clock uncertainty before the
    // commit becomes visible. The paper's algorithm never does this.
    doops_->commit_waited = true;
    schedule_after(config_.commit_wait, [this] { finish_doops(); });
    return;
  }
  if (config_.commit_gate == CommitGate::kLeaseholders) {
    // Line 62: processes that did not acknowledge in time cease being
    // leaseholders (they rejoin via LeaseRequest). The Megastore-style gate
    // deliberately has no such memory.
    leaseholders_ = doops_->ackers;
    leaseholders_.erase(id().index());
  }
  // Lines 63-64: we must have been the leader continuously from t to now;
  // otherwise another leader may have taken over and committed differently.
  if (!check_still_leader()) return;

  const BatchNumber number = doops_->number;
  const Batch ops = std::move(doops_->ops);
  const bool initial = doops_->initial;
  doops_->gate_timer.cancel();
  doops_->expiry_timer.cancel();
  doops_.reset();

  // Lines 65-70: commit.
  store_batch(number, ops);
  pending_batch_.erase(number);
  apply_ready();
  leader_next_batch_ = number + 1;
  broadcast(msg::kCommit, msg::Commit{ops, number});
  last_commit_rebroadcast_ = now_real();
  c_batches_committed_->inc();
  end_span(span_doops_gate_, "span.doops.gate");
  end_span(span_doops_total_, "span.doops.total");
  trace_event("batch.commit", "j=" + std::to_string(number) + " ops=" +
                                  std::to_string(ops.size()));
  CHT_DEBUG(kTag) << id() << " committed batch " << number << " ("
                  << ops.size() << " ops)";

  if (initial) {
    enter_steady();
    // Line 37: one NoOp RMW guarantees read liveness even if clients stop
    // submitting RMW operations (it commits a batch beyond every batch that
    // can be pending anywhere).
    submit_rmw(object::no_op(), Callback());
  } else {
    maybe_start_next_batch();
  }
}

// --- Steady state (lines 39-51) --------------------------------------------

void Replica::enter_steady() {
  phase_ = Phase::kSteady;
  end_span(span_leader_init_, "span.leader.init");
  if (!chosen_.has_value()) {
    // First-ever leader: still announce read leases and liveness NoOp.
    submit_rmw(object::no_op(), Callback());
  }
  steady_tick();
}

void Replica::steady_tick() {
  if (phase_ != Phase::kSteady) return;
  const LocalTime t2 = now_local();
  if (promised_ > leader_time_ || !els_.am_leader(leader_time_, t2)) {
    abdicate();
    return;
  }
  // Renew leases only between DoOps calls, exactly as the paper's
  // sequential leader loop does (lines 39-51). Renewing *during* a commit
  // would be unsound: the leaseholder gate computes the lease-expiry wait
  // from the last lease issued when the wait begins; a renewal issued
  // mid-wait could hand an unresponsive process a fresh lease that outlives
  // the wait and lets it read a stale state.
  if (!doops_.has_value()) issue_leases(t2);
  maybe_start_next_batch();
  // Lazy rebroadcast of the last committed batch guards against Commit loss
  // (line 51).
  if (leader_next_batch_ >= 2 &&
      now_real() - last_commit_rebroadcast_ >= config_.commit_rebroadcast) {
    const BatchNumber last = leader_next_batch_ - 1;
    auto it = batches_.find(last);
    if (it != batches_.end()) {
      broadcast(msg::kCommit, msg::Commit{it->second, last});
      last_commit_rebroadcast_ = now_real();
    }
  }
  steady_timer_ =
      schedule_after(config_.steady_tick, [this] { steady_tick(); });
}

void Replica::issue_leases(LocalTime now) {
  if (clock_guard_.suspect()) {
    // A suspect leader must not grant: its issue stamps could sit far in
    // holders' futures, stretching their validity windows past the expiry
    // the commit gate waits out. Holders' leases lapse within lease_period
    // and their reads block (or degrade) until this clock re-qualifies.
    return;
  }
  if (last_lease_issued_ != LocalTime::min() &&
      now - last_lease_issued_ < config_.lease_renew_interval) {
    return;
  }
  if (last_lease_issued_ != LocalTime::min()) {
    // Renewal cadence within a reign: how far apart consecutive LeaseGrant
    // broadcasts actually land (>= lease_renew_interval; stretched by
    // in-flight DoOps rounds, which defer renewals).
    h_lease_interval_->record((now - last_lease_issued_).to_micros());
  }
  last_lease_issued_ = now;
  trace_event("lease.grant",
              "k=" + std::to_string(leader_next_batch_ - 1) + " holders=" +
                  std::to_string(leaseholders_.size()));
  broadcast(msg::kLeaseGrant,
            msg::LeaseGrant{leader_next_batch_ - 1, now, leaseholders_});
}

void Replica::maybe_start_next_batch() {
  if (phase_ != Phase::kSteady || doops_.has_value() || next_ops_.empty()) {
    return;
  }
  // The paper's loop renews leases (line 44) before each DoOps (line 49);
  // under a continuous write stream this is where renewals happen. It is
  // safe exactly here: the grant precedes this batch's Prepares, so the
  // leaseholder gate's expiry computation accounts for it.
  issue_leases(now_local());
  Batch ops;
  for (auto& [id, op] : next_ops_) {
    if (!committed_op_batch_.contains(id)) ops.push_back(BatchOp{id, op});
  }
  next_ops_.clear();
  if (ops.empty()) return;
  start_doops(std::move(ops), leader_next_batch_, /*initial=*/false);
}

// ===========================================================================
// Thread 3: message handling
// ===========================================================================

void Replica::on_message(const sim::Message& message) {
  // Every delivery is skew evidence, whichever module consumes the payload:
  // the guard must see the failure-detector heartbeats too, since they are
  // the steadiest stamp stream a quiet replica receives.
  guard_observe(message);
  if (omega_.handle_message(message)) return;
  if (els_.handle_message(message)) return;
  if (gateway_.handle(message)) return;

  if (message.is(msg::kRmwRequest)) {
    on_rmw_request(message.from, message.as<msg::RmwRequest>());
  } else if (message.is(msg::kEstReq)) {
    on_est_req(message.from, message.as<msg::EstReq>());
  } else if (message.is(msg::kEstReply)) {
    on_est_reply(message.from, message.as<msg::EstReply>());
  } else if (message.is(msg::kPrepare)) {
    on_prepare(message.from, message.as<msg::Prepare>());
  } else if (message.is(msg::kPrepareAck)) {
    on_prepare_ack(message.from, message.as<msg::PrepareAck>());
  } else if (message.is(msg::kCommit)) {
    on_commit(message.as<msg::Commit>());
  } else if (message.is(msg::kLeaseGrant)) {
    on_lease_grant(message.from, message.as<msg::LeaseGrant>());
  } else if (message.is(msg::kLeaseRequest)) {
    // Reintegration (line 46): the process asks to hold leases again.
    if (phase_ == Phase::kSteady) leaseholders_.insert(message.from.index());
  } else if (message.is(msg::kReadRequest)) {
    on_read_request(message.from, message.as<msg::ReadRequest>());
  } else if (message.is(msg::kReadReply)) {
    on_read_reply(message.as<msg::ReadReply>());
  } else if (message.is(msg::kBatchRequest)) {
    on_batch_request(message.from, message.as<msg::BatchRequest>());
  } else if (message.is(msg::kBatchReply)) {
    const auto& reply = message.as<msg::BatchReply>();
    store_batch(reply.number, reply.ops);
    apply_ready();
    if (phase_ == Phase::kFetching) maybe_finish_fetching();
  } else {
    CHT_UNREACHABLE("unknown message type for core replica");
  }
}

void Replica::on_rmw_request(ProcessId from, const msg::RmwRequest& request) {
  auto committed = committed_op_batch_.find(request.id);
  if (committed != committed_op_batch_.end()) {
    // Already committed: the submitter evidently missed the Commit; resend
    // that batch directly so it can respond to its client.
    if (from != id()) {
      auto it = batches_.find(committed->second);
      CHT_ASSERT(it != batches_.end(), "committed map points at missing batch");
      send(from, msg::kCommit, msg::Commit{it->second, committed->second});
    }
    return;
  }
  if (phase_ == Phase::kFollower) return;  // submitter retries elsewhere
  next_ops_.try_emplace(request.id, request.op);
  maybe_start_next_batch();
}

void Replica::forward_read_send(const OperationId& id) {
  auto it = forwarded_reads_.find(id);
  if (it == forwarded_reads_.end()) return;
  const ProcessId leader = els_.believed_leader();
  const msg::ReadRequest request{id, it->second.op};
  if (leader == this->id()) {
    on_read_request(this->id(), request);
    if (!forwarded_reads_.contains(id)) return;  // answered synchronously
  } else {
    send(leader, msg::kReadRequest, request);
  }
  it->second.retry_timer =
      schedule_after(config_.rmw_retry, [this, id] { forward_read_send(id); });
}

void Replica::on_read_request(ProcessId from, const msg::ReadRequest& request) {
  // Serve only as a verified steady leader: the leader's applied state
  // reflects every committed batch, so evaluating there is linearizable.
  // "Verified" leans on AmLeader's clock arithmetic, so a clock-suspect
  // leader stays silent too — the forwarder retries against the (possibly
  // new) believed leader rather than trusting a stale verdict here.
  if (clock_guard_.suspect()) return;
  if (!is_steady_leader() || applied_upto_ < leader_next_batch_ - 1) return;
  const object::Response response = model_->apply(*state_, request.op);
  if (from == id()) {
    on_read_reply(msg::ReadReply{request.id, response});
  } else {
    send(from, msg::kReadReply, msg::ReadReply{request.id, response});
  }
}

void Replica::on_read_reply(const msg::ReadReply& reply) {
  auto node = forwarded_reads_.extract(reply.id);
  if (node.empty()) return;
  node.mapped().retry_timer.cancel();
  c_reads_completed_->inc();
  const std::int64_t blocked_us =
      (now_real() - node.mapped().invoked).to_micros();
  h_read_block_->record(blocked_us);
  if (tracing()) {
    trace_event("span.read.block", "us=" + std::to_string(blocked_us));
  }
  if (node.mapped().callback) node.mapped().callback(reply.response);
}

void Replica::on_est_req(ProcessId from, const msg::EstReq& request) {
  if (request.leader_time < promised_) return;  // stale leader
  promised_ = request.leader_time;
  msg::EstReply reply{request.leader_time, estimate_, std::nullopt};
  if (estimate_.has_value() && estimate_->k >= 2) {
    auto it = batches_.find(estimate_->k - 1);
    // I2: we only adopt (O, t, j) when we know batch j-1.
    CHT_ASSERT(it != batches_.end(), "I2 violated: estimate without prev batch");
    reply.prev_batch = it->second;
  }
  // The promise must survive a crash: a recovered process that forgot it
  // could ack an older leader's Prepare the live quorum already superseded.
  // The reply only leaves once the covering sync completes; promise syncs
  // pending in one group-commit window share a single sync() and their
  // replies depart as one burst.
  persist_promised();
  request_sync([this, from, reply] { send(from, msg::kEstReply, reply); });
}

void Replica::adopt_estimate(Batch ops, LocalTime t, BatchNumber j) {
  CHT_ASSERT(j <= 1 || batches_.contains(j - 1),
             "I2 violated: adopting estimate without previous batch");
  pending_batch_[j] = ops;
  estimate_ = Estimate{std::move(ops), t, j};
  persist_estimate();
}

void Replica::persist_promised() {
  storage().write(kKeyPromised, std::to_string(promised_.to_micros()));
}

void Replica::persist_estimate() {
  CHT_ASSERT(estimate_.has_value(), "persisting an absent estimate");
  Batch prev;
  if (estimate_->k >= 2) prev = batches_.at(estimate_->k - 1);
  storage().write(
      kKeyEstimate,
      sim::encode_fields({std::to_string(estimate_->ts.to_micros()),
                          std::to_string(estimate_->k),
                          encode_batch(estimate_->ops), encode_batch(prev)}));
}

void Replica::persist_batch(BatchNumber number, const Batch& ops) {
  storage().write(kBatchKeyPrefix + std::to_string(number), encode_batch(ops));
}

void Replica::on_prepare(ProcessId from, const msg::Prepare& prepare) {
  // Store B into Batch[j-1] unconditionally: it is committed information.
  if (prepare.number >= 2) {
    store_batch(prepare.number - 1, prepare.prev_batch);
    apply_ready();
  }
  const std::pair<LocalTime, BatchNumber> freshness{prepare.leader_time,
                                                    prepare.number};
  const bool fresh =
      !estimate_.has_value() || estimate_->freshness() <= freshness;
  if (prepare.leader_time >= promised_ && fresh) {
    promised_ = prepare.leader_time;
    adopt_estimate(prepare.ops, prepare.leader_time, prepare.number);
    // Durability before the ack leaves: the leader counts this process
    // toward its majority (and leaseholder gate) on the strength of the ack,
    // so the adopted estimate and promise must survive a crash. Under group
    // commit the ack rides the next covering sync — every Prepare (or
    // duplicate resend) that lands while a sync is in flight coalesces into
    // one following sync(), and the acks leave as one burst. A later sync
    // covering a *fresher* estimate still justifies this ack: recovery then
    // restores state at least as advanced as what was acked.
    persist_promised();
    const msg::PrepareAck ack{prepare.leader_time, prepare.number};
    request_sync([this, from, ack] { send(from, msg::kPrepareAck, ack); });
  }
}

void Replica::on_commit(const msg::Commit& commit) {
  end_span(span_recovery_, "span.recovery");  // first post-restart live sign
  store_batch(commit.number, commit.ops);
  pending_batch_.erase(commit.number);
  apply_ready();
  // Commit-path gap fill (paper line ~105): fetch any missing earlier batch.
  if (applied_upto_ < commit.number) request_missing_batches();
}

void Replica::on_lease_grant(ProcessId from, const msg::LeaseGrant& grant) {
  end_span(span_recovery_, "span.recovery");  // first post-restart live sign
  if (!grant.leaseholders.contains(id().index())) {
    // We were dropped from the leaseholder set (we missed a Prepare round);
    // ask to be reintegrated (lines 45-46 / 102-104).
    send(from, msg::kLeaseRequest, msg::LeaseRequest{});
    return;
  }
  if (!lease_.has_value() || lease_->issued < grant.issued) {
    lease_ = Lease{grant.batch, grant.issued};
  }
  max_known_batch_ = std::max(max_known_batch_, grant.batch);
  try_advance_reads();
}

void Replica::on_batch_request(ProcessId from,
                               const msg::BatchRequest& request) {
  auto it = batches_.find(request.number);
  if (it == batches_.end()) return;
  send(from, msg::kBatchReply, msg::BatchReply{request.number, it->second});
}

// ===========================================================================
// Shared machinery
// ===========================================================================

void Replica::store_batch(BatchNumber number, const Batch& ops) {
  CHT_ASSERT(number >= 1, "batch numbers start at 1");
  auto it = batches_.find(number);
  if (it != batches_.end()) {
    // I1: once assigned, a batch's value is stable and agreed upon.
    CHT_ASSERT(it->second == ops, "I1 violated: conflicting batch contents");
    return;
  }
  for (const BatchOp& op : ops) {
    auto [entry, inserted] = committed_op_batch_.try_emplace(op.id, number);
    // I1: no operation is included in two different batches.
    CHT_ASSERT(inserted || entry->second == number,
               "I1 violated: operation in two batches");
  }
  batches_.emplace(number, ops);
  persist_batch(number, ops);
  if (!storage().config().group_commit) {
    // Naive sync-per-batch discipline (the bench A/B baseline): each batch
    // record is fsynced on its own instead of riding the next ack-critical
    // covering sync. Fire-and-forget — correctness never depended on this
    // sync, but the device time it occupies delays the syncs acks do wait on.
    sync_storage();
  }
  max_known_batch_ = std::max(max_known_batch_, number);
}

void Replica::apply_ready() {
  bool advanced = false;
  while (true) {
    auto it = batches_.find(applied_upto_ + 1);
    if (it == batches_.end()) break;
    // Operations within a batch are applied in canonical id order -- the
    // same pre-determined order at every process.
    for (const BatchOp& op : it->second) {
      const object::Response response = model_->apply(*state_, op.op);
      // Unconditional: pending_rmw_ may hold client-session ids injected via
      // submit_rmw_as, not just this replica's own ids.
      complete_rmw(op.id, response);
      // Every applied RMW feeds the client session table (in apply order, at
      // every replica — including crash-recovery replay, which is what
      // rebuilds it).
      gateway_.on_applied(op.id, response);
    }
    ++applied_upto_;
    pending_batch_.erase(applied_upto_);
    advanced = true;
  }
  if (advanced) try_advance_reads();
}

BatchNumber Replica::fetch_target() const {
  BatchNumber target = max_known_batch_;
  if (lease_.has_value()) target = std::max(target, lease_->batch);
  for (const PendingRead& read : pending_reads_) {
    if (read.khat.has_value()) target = std::max(target, *read.khat);
  }
  return target;
}

void Replica::request_missing_batches() {
  const BatchNumber target = fetch_target();
  int outstanding = 0;
  for (BatchNumber j = applied_upto_ + 1; j <= target && outstanding < 64;
       ++j) {
    if (!batches_.contains(j)) {
      broadcast(msg::kBatchRequest, msg::BatchRequest{j});
      ++outstanding;
    }
  }
}

void Replica::anti_entropy_tick() {
  // Fixed-rate gap filling keeps reads message-free: a read waiting on
  // batches <= k-hat is served by this timer (and by commit-path triggers),
  // whose frequency does not depend on the number of reads.
  if (applied_upto_ < fetch_target()) request_missing_batches();
  anti_entropy_timer_ = schedule_after(config_.anti_entropy_interval,
                                       [this] { anti_entropy_tick(); });
}

}  // namespace cht::core
