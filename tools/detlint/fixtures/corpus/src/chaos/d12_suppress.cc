// Fixture: rule D12 — dead-suppression audit. A detlint annotation must be
// well-formed (reason mandatory) and must still suppress at least one real
// finding at its covered lines; anything else is justification debt and is
// itself a finding. D12 can never be suppressed.
#include <map>
#include <unordered_map>
#include <unordered_set>

namespace fixture {

struct Audit {
  // Negative: a live justification — the annotated line really is a D4
  // finding, so the allow earns its keep.
  std::map<int*, int> by_slot_;  // detlint: allow(D4) slot set compared for identity only

  // Negative: a live standalone justification covering the next line.
  // detlint: order-independent (membership-only set; never iterated)
  std::unordered_set<int> seen_;

  // Positive: well-formed but stale — nothing on this line triggers D4.
  std::map<long, int> plain_;  // detlint: allow(D4) keyed by stable id [detlint-expect: D12]

  // Positive: stale standalone annotation — the clock call it justified is
  // long deleted, the annotation lingered.
  // detlint: allow(D1) scheduling experiment read the host clock [detlint-expect: D12]
  int counter_ = 0;

  // Positive: malformed — order-independent demands a (reason), so the
  // suppression is void: the D3 fires AND the annotation is flagged.
  std::unordered_map<int, int> relay_;  // detlint: order-independent [detlint-expect: D3, D12]

  // Positive: malformed — allow() must name a rule D1..D11; D12 itself can
  // never be suppressed, so this is void and flagged.
  std::map<char*, int> warp_;  // detlint: allow(D12) trying to silence the auditor [detlint-expect: D4, D12]
};

}  // namespace fixture
