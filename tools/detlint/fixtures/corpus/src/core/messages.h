// Fixture: rule D5 — wire-format structs must initialize every scalar
// field. (This path is on the D5 file list, mirroring the real repo's
// src/core/messages.h.)
#pragma once
#include <string>
#include <vector>

namespace fixture::msg {

struct Prepare {
  std::int64_t term;  // detlint-expect: D5
  long number;  // detlint-expect: D5
  bool initial;  // detlint-expect: D5
  double weight;  // detlint-expect: D5
  std::vector<int> ops;       // negative: containers value-initialize
  std::string origin;         // negative: strings value-initialize
};

struct Commit {
  std::int64_t number = 0;    // negative: initialized
  bool final_commit = false;  // negative: initialized
  unsigned flags{0};          // negative: brace-initialized
};

struct Envelope {
  char* payload;  // detlint-expect: D5
  std::size_t length = 0;  // negative: initialized

  // Negative: locals inside member functions are not fields.
  int checksum() const {
    int acc = 0;
    long base;
    base = 7;
    return acc + static_cast<int>(base);
  }
};

}  // namespace fixture::msg
