// Clock-health guard (core/clock_guard.h) and its integration: skew
// evidence soundness (never a false positive within the model's epsilon),
// degraded read modes in every lease-serving stack, lazy re-qualification,
// the exposure-window invariant accounting, and the chtread durability
// stored-batch fallback.
#include <gtest/gtest.h>

#include <memory>
#include <string>
#include <vector>

#include "baselines/pql_lease.h"
#include "chaos/invariants.h"
#include "checker/linearizability.h"
#include "core/clock_guard.h"
#include "harness/cluster.h"
#include "harness/raft_cluster.h"
#include "object/register_object.h"
#include "sim/simulation.h"

namespace cht {
namespace {

using core::ClockGuardConfig;
using core::ClockSkewGuard;

LocalTime lt(std::int64_t ms) { return LocalTime::zero() + Duration::millis(ms); }
RealTime rt(std::int64_t ms) { return RealTime::zero() + Duration::millis(ms); }

ClockGuardConfig guard_config() {
  return ClockGuardConfig::defaults_for(Duration::millis(10),
                                        Duration::millis(1));
}

// --- Evidence soundness ------------------------------------------------------

TEST(ClockSkewGuardTest, TripsOnFastReceiverEvidence) {
  ClockSkewGuard guard(guard_config());
  // Receiver's clock reads 15ms after a stamp of 0 with delta = 10ms:
  // lb = 15 - 0 - 10 = 5ms > epsilon.
  EXPECT_TRUE(guard.observe(lt(0), lt(15), rt(15)));
  EXPECT_TRUE(guard.suspect());
  ASSERT_EQ(guard.transitions().size(), 1u);
  EXPECT_TRUE(guard.transitions()[0].suspect);
}

TEST(ClockSkewGuardTest, TripsOnFastSenderEvidence) {
  ClockSkewGuard guard(guard_config());
  // The stamp is *ahead* of the receiver's clock: flight is nonnegative, so
  // lb = send - recv = 5ms of provable skew.
  EXPECT_TRUE(guard.observe(lt(10), lt(5), rt(10)));
  EXPECT_TRUE(guard.suspect());
}

TEST(ClockSkewGuardTest, NeverTripsWithinModelBounds) {
  // Grid over every in-model combination: pairwise offset difference within
  // +-epsilon and flight within [0, delta]. The lower bound can reach but
  // never exceed epsilon, so the guard must stay quiet.
  ClockSkewGuard guard(guard_config());
  for (std::int64_t offset_us = -1000; offset_us <= 1000; offset_us += 100) {
    for (std::int64_t flight_us = 0; flight_us <= 10000; flight_us += 500) {
      const LocalTime sent = LocalTime::zero() + Duration::seconds(1);
      const LocalTime recv =
          sent + Duration::micros(flight_us) + Duration::micros(offset_us);
      EXPECT_FALSE(guard.observe(sent, recv, rt(1000)))
          << "offset=" << offset_us << "us flight=" << flight_us << "us";
      EXPECT_FALSE(guard.suspect());
    }
  }
  EXPECT_TRUE(guard.transitions().empty());
}

TEST(ClockSkewGuardTest, IgnoresUnstampedMessages) {
  // Hand-crafted test messages carry the LocalTime::min() sentinel; the
  // guard must not treat the sentinel as an ancient (wildly skewed) stamp.
  ClockSkewGuard guard(guard_config());
  EXPECT_FALSE(guard.observe(LocalTime::min(), lt(5000), rt(5000)));
  EXPECT_FALSE(guard.suspect());
}

TEST(ClockSkewGuardTest, DisabledGuardNeverSuspects) {
  ClockGuardConfig config = guard_config();
  config.enabled = false;
  ClockSkewGuard guard(config);
  EXPECT_FALSE(guard.observe(lt(0), lt(5000), rt(5000)));
  EXPECT_FALSE(guard.suspect());
}

// --- Re-qualification --------------------------------------------------------

TEST(ClockSkewGuardTest, RequalifiesOnlyAfterCleanWindow) {
  ClockSkewGuard guard(guard_config());  // requalify_window = 21ms
  ASSERT_TRUE(guard.observe(lt(0), lt(15), rt(15)));  // bad at local 15ms
  // Clean samples inside the window keep it suspect.
  EXPECT_FALSE(guard.observe(lt(20), lt(25), rt(25)));
  EXPECT_FALSE(guard.observe(lt(30), lt(35), rt(35)));
  EXPECT_TRUE(guard.suspect());
  // First clean sample at least 21ms past the last bad one clears it.
  EXPECT_TRUE(guard.observe(lt(31), lt(36), rt(36)));
  EXPECT_FALSE(guard.suspect());
  ASSERT_EQ(guard.transitions().size(), 2u);
  EXPECT_FALSE(guard.transitions()[1].suspect);
}

TEST(ClockSkewGuardTest, FreshBadEvidenceRestartsTheWindow) {
  ClockSkewGuard guard(guard_config());
  ASSERT_TRUE(guard.observe(lt(0), lt(15), rt(15)));
  // More bad evidence at local 30ms: no new transition, but the clean
  // window must now count from 30ms, not 15ms.
  EXPECT_FALSE(guard.observe(lt(10), lt(30), rt(30)));
  EXPECT_FALSE(guard.observe(lt(40), lt(45), rt(45)));  // 45 - 30 < 21
  EXPECT_TRUE(guard.suspect());
  EXPECT_TRUE(guard.observe(lt(46), lt(51), rt(51)));  // 51 - 30 >= 21
  EXPECT_FALSE(guard.suspect());
}

// --- chtread: degraded reads and lease gating --------------------------------

harness::ClusterConfig chtread_config(std::uint64_t seed) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = Duration::millis(10);
  config.epsilon = Duration::millis(1);
  return config;
}

// The guard-on counterpart of test_robustness.cc's fast-clock scenario: the
// victim's skewed clock is detected from incoming stamps, its reads degrade
// to the consensus path (completing promptly and fresh instead of stalling
// for the 30s clamp decay), and the full history stays linearizable.
TEST(ClockGuardChtreadTest, SkewedReplicaDegradesReadsAndStaysLinearizable) {
  harness::Cluster cluster(chtread_config(61),
                           std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const int victim = (leader + 1) % cluster.n();
  cluster.submit(leader, object::RegisterObject::write("current"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));

  cluster.sim().set_clock_offset(ProcessId(victim), Duration::seconds(30));
  // Any message arriving at the victim now shows ~30s of provable skew.
  cluster.run_for(Duration::millis(50));
  EXPECT_TRUE(cluster.replica(victim).snapshot().clock_suspect);
  EXPECT_GE(cluster.replica(victim).snapshot().clock_suspect_transitions, 1u);

  const RealTime before = cluster.sim().now();
  cluster.submit(victim, object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  // Degraded, not stalled: the read rode the RMW path and completed in a
  // few message delays, far below the 30s the unguarded stall costs.
  EXPECT_LT(cluster.sim().now() - before, Duration::seconds(1));
  EXPECT_EQ(*cluster.history().ops().back().response, "current");
  EXPECT_GE(cluster.replica(victim).metrics().value("reads.degraded"), 1);
  EXPECT_GE(cluster.replica(victim).metrics().value("clock.suspect_transitions"),
            1);
  const auto full =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(full.linearizable) << full.explanation;
}

// A suspect *leader* must stop issuing leases (its lease timestamps are
// measured on the distrusted clock) and serve its own reads through
// consensus; once its offset is healed and the clamp decays, it
// re-qualifies and lease reads resume.
TEST(ClockGuardChtreadTest, SuspectLeaderStopsLeasesAndRequalifies) {
  harness::Cluster cluster(chtread_config(62),
                           std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  cluster.submit(leader, object::RegisterObject::write("v1"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));

  // 50ms fast: replies from followers trip the leader's guard immediately.
  cluster.sim().set_clock_offset(ProcessId(leader), Duration::millis(50));
  cluster.submit(leader, object::RegisterObject::write("v2"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  ASSERT_TRUE(cluster.replica(leader).snapshot().clock_suspect);

  // The leader's own read degrades but still answers, fresh.
  cluster.submit(leader, object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  EXPECT_EQ(*cluster.history().ops().back().response, "v2");
  EXPECT_GE(cluster.replica(leader).metrics().value("reads.degraded"), 1);

  // Heal: the clamp holds the clock ~50ms ahead until real time catches up,
  // the stale evidence decays, a clean window passes, and the guard clears.
  cluster.sim().set_clock_offset(ProcessId(leader), Duration::zero());
  cluster.run_for(Duration::millis(400));
  EXPECT_FALSE(cluster.replica(leader).snapshot().clock_suspect);

  // Lease reads work again: a follower read completes with the live value.
  cluster.submit((leader + 1) % cluster.n(), object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  EXPECT_EQ(*cluster.history().ops().back().response, "v2");
  const auto full =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(full.linearizable) << full.explanation;
}

// --- Raft: lease reads fall back to ReadIndex --------------------------------

TEST(ClockGuardRaftTest, SuspectLeaderDemotesLeaseReadsToReadIndex) {
  harness::ClusterConfig config = chtread_config(63);
  harness::RaftCluster cluster(config,
                               std::make_shared<object::RegisterObject>(),
                               raft::ReadMode::kLeaderLease);
  ASSERT_TRUE(cluster.await_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.leader();
  cluster.submit(leader, object::RegisterObject::write("committed"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));

  cluster.sim().set_clock_offset(ProcessId(leader), Duration::seconds(30));
  cluster.run_for(Duration::millis(100));
  EXPECT_TRUE(cluster.replica(leader).clock_guard().suspect());

  // Lease-mode reads still complete (via the clock-free ReadIndex round)
  // and are counted as degraded.
  cluster.submit(leader, object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  EXPECT_EQ(*cluster.history().ops().back().response, "committed");
  EXPECT_GE(cluster.replica(leader).stats().reads_degraded, 1);
  const auto full =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(full.linearizable) << full.explanation;
}

// --- PQL: lease_active degrades ----------------------------------------------

TEST(ClockGuardPqlTest, SuspectProcessReportsLeaseInactive) {
  sim::SimulationConfig sc;
  sc.seed = 7;
  sc.network.gst = RealTime::zero();
  sc.network.delta = Duration::millis(5);
  sc.network.delta_min = Duration::micros(200);
  sim::Simulation sim(sc);
  baselines::PqlConfig config;
  config.clock_guard =
      ClockGuardConfig::defaults_for(Duration::millis(5), Duration::millis(1));
  for (int i = 0; i < 5; ++i) {
    sim.add_process(std::make_unique<baselines::PqlProcess>(config));
  }
  sim.start();
  sim.run_until(RealTime::zero() + Duration::millis(200));
  auto& victim = sim.process_as<baselines::PqlProcess>(ProcessId(1));
  ASSERT_TRUE(victim.lease_active());

  sim.set_clock_offset(ProcessId(1), Duration::millis(100));
  sim.run_until(sim.now() + Duration::millis(100));
  EXPECT_TRUE(victim.clock_guard().suspect());
  EXPECT_GE(victim.stats().clock_suspect_transitions, 1);
  // The guarantees may still be formally unexpired, but the guard forces the
  // quorum path.
  EXPECT_FALSE(victim.lease_active());
  EXPECT_GE(victim.stats().lease_checks_degraded, 1);
}

// --- Exposure-window accounting and durability fallback ----------------------

// Minimal adapter over a hand-crafted history: enough surface for
// check_invariants to run, with committed/durable id sets and guard
// transition timelines scripted by the test.
class FakeAdapter final : public chaos::ClusterAdapter {
 public:
  FakeAdapter()
      : sim_(sim::SimulationConfig{}),
        model_(std::make_shared<object::RegisterObject>()) {}

  const std::string& protocol() const override {
    static const std::string kName = "fake";
    return kName;
  }
  sim::Simulation& sim() override { return sim_; }
  int n() const override { return 3; }
  const object::ObjectModel& model() const override { return *model_; }
  checker::HistoryRecorder& history() override { return history_; }
  void submit(int, object::Operation) override {}
  bool crashed(int) const override { return false; }
  void restart(int) override {}
  std::vector<OperationId> committed_op_ids_of(int) override {
    return committed_;
  }
  std::vector<OperationId> durable_op_ids_of(int) override {
    return durable_.empty() ? committed_ : durable_;
  }
  std::vector<core::ClockSkewGuard::Transition> guard_transitions_of(
      int replica) override {
    if (replica < static_cast<int>(transitions_.size())) {
      return transitions_[static_cast<std::size_t>(replica)];
    }
    return {};
  }
  int leader() override { return 0; }
  bool await_quiesce(Duration) override { return true; }
  std::size_t submitted() const override { return history_.ops().size(); }
  std::size_t completed() const override { return history_.completed_count(); }
  std::vector<std::string> protocol_invariants() override { return {}; }
  std::int64_t leadership_changes() override { return 0; }
  void merge_metrics_into(metrics::Registry&) override {}

  sim::Simulation sim_;
  std::shared_ptr<const object::ObjectModel> model_;
  checker::HistoryRecorder history_;
  std::vector<OperationId> committed_;
  std::vector<OperationId> durable_;
  std::vector<std::vector<core::ClockSkewGuard::Transition>> transitions_;
};

void record(checker::HistoryRecorder& h, int process, object::Operation op,
            std::int64_t invoked_ms, std::int64_t responded_ms,
            const std::string& response, OperationId id = OperationId{}) {
  const auto token = h.begin(ProcessId(process), std::move(op), rt(invoked_ms));
  h.end(token, response, rt(responded_ms));
  if (id.process.valid()) h.set_id(token, id);
}

// Simulated time only advances by draining events; park a no-op so the
// adapter's sim().now() (the exposure-window end) is past the history.
void advance_to(sim::Simulation& sim, RealTime t) {
  sim.after(t - sim.now(), [] {});
  sim.run_until(t);
}

chaos::NemesisProfile stale_profile() {
  chaos::NemesisProfile p;
  p.name = "test";
  p.allows_stale_reads = true;
  return p;
}

chaos::ExposureInput exposure_for(std::int64_t first_skew_ms,
                                  std::int64_t heal_ms) {
  chaos::ExposureInput e;
  e.clock_guard = true;
  e.delta = Duration::millis(10);
  e.epsilon = Duration::millis(1);
  e.skew_max = Duration::millis(5);
  e.first_skew = rt(first_skew_ms);
  e.heal_time = rt(heal_ms);
  return e;
}

// A stale read inside the exposure window is excused by the second pass.
TEST(ExposureWindowTest, StaleReadInsideWindowIsExcused) {
  FakeAdapter fake;
  advance_to(fake.sim_, rt(10000));
  record(fake.history_, 0, object::RegisterObject::write("a"), 100, 110, "ok");
  record(fake.history_, 0, object::RegisterObject::write("b"), 200, 210, "ok");
  // Stale read: returns "a" strictly after "b" completed, inside the skew
  // window [300, heal + drain).
  record(fake.history_, 1, object::RegisterObject::read(), 400, 410, "a");

  const auto report = chaos::check_invariants(fake, stale_profile(), true, 0,
                                              exposure_for(300, 1000));
  EXPECT_TRUE(report.violations.empty())
      << (report.violations.empty() ? "" : report.violations.front());
  EXPECT_EQ(report.reads_excused, 1u);
}

// The same stale read before any skew was injected is a real bug.
TEST(ExposureWindowTest, StaleReadOutsideWindowFails) {
  FakeAdapter fake;
  advance_to(fake.sim_, rt(10000));
  record(fake.history_, 0, object::RegisterObject::write("a"), 100, 110, "ok");
  record(fake.history_, 0, object::RegisterObject::write("b"), 200, 210, "ok");
  record(fake.history_, 1, object::RegisterObject::read(), 400, 410, "a");

  // Skew first injected at 5000ms: the read at 400ms predates every skewed
  // clock and must have been fresh.
  const auto report = chaos::check_invariants(fake, stale_profile(), true, 0,
                                              exposure_for(5000, 6000));
  ASSERT_EQ(report.violations.size(), 1u);
  EXPECT_NE(report.violations[0].find("outside clock-skew exposure"),
            std::string::npos)
      << report.violations[0];
  EXPECT_EQ(report.reads_excused, 0u);
}

// While *every* replica is clock-suspect no lease read is served anywhere,
// so a stale read wholly inside the all-suspect span is not excused.
TEST(ExposureWindowTest, AllSuspectSpanIsCarvedOut) {
  FakeAdapter fake;
  advance_to(fake.sim_, rt(10000));
  record(fake.history_, 0, object::RegisterObject::write("a"), 100, 110, "ok");
  record(fake.history_, 0, object::RegisterObject::write("b"), 200, 210, "ok");
  record(fake.history_, 1, object::RegisterObject::read(), 400, 410, "a");
  // All three replicas suspect across [350, 500): the read at [400, 410]
  // falls wholly inside the carve-out.
  for (int i = 0; i < 3; ++i) {
    fake.transitions_.push_back({{rt(350), true}, {rt(500), false}});
  }
  const auto report = chaos::check_invariants(fake, stale_profile(), true, 0,
                                              exposure_for(300, 1000));
  ASSERT_EQ(report.violations.size(), 1u);

  // With one replica never suspect, the carve-out vanishes and the read is
  // excusable again.
  fake.transitions_.back().clear();
  const auto lenient = chaos::check_invariants(fake, stale_profile(), true, 0,
                                               exposure_for(300, 1000));
  EXPECT_TRUE(lenient.violations.empty());
}

// With the guard off, the legacy fallback still checks the RMW sub-history
// (and tolerates the stale read unconditionally).
TEST(ExposureWindowTest, GuardOffKeepsLegacyRmwSubhistoryCheck) {
  FakeAdapter fake;
  advance_to(fake.sim_, rt(10000));
  record(fake.history_, 0, object::RegisterObject::write("a"), 100, 110, "ok");
  record(fake.history_, 0, object::RegisterObject::write("b"), 200, 210, "ok");
  record(fake.history_, 1, object::RegisterObject::read(), 400, 410, "a");
  chaos::ExposureInput off;  // defaults: guard off
  const auto report =
      chaos::check_invariants(fake, stale_profile(), true, 0, off);
  EXPECT_TRUE(report.violations.empty());
  EXPECT_EQ(report.reads_excused, 0u);
}

// Durability accounting falls back from the applied prefix to stored-batch
// contents: an acked write a replica durably holds but has not yet
// re-applied at check time must not be reported rolled back.
TEST(DurabilityFallbackTest, StoredButUnappliedWriteIsNotAViolation) {
  FakeAdapter fake;
  advance_to(fake.sim_, rt(1000));
  const OperationId id{ProcessId(0), 7};
  record(fake.history_, 0, object::RegisterObject::write("w"), 100, 110, "ok",
         id);
  // Applied prefix (committed_op_ids_of) is empty everywhere, but the write
  // survives in stored batches (durable_op_ids_of).
  fake.durable_ = {id};
  chaos::NemesisProfile calm;
  calm.name = "calm";
  const auto report = chaos::check_invariants(fake, calm, true);
  for (const auto& v : report.violations) {
    EXPECT_EQ(v.find("durability"), std::string::npos) << v;
  }
}

}  // namespace
}  // namespace cht
