// Invariant registry: every safety/liveness property a chaos run is held to,
// in one place, shared by the seed sweeper, the fuzzer CLI and the ctest
// chaos suites.
//
//   linearizability      full history through the object model; under
//                        profiles that legally break read freshness (clock
//                        skew beyond epsilon) the RMW sub-history is checked
//                        instead (the paper's Section 1 robustness claim)
//   liveness             after the nemesis healed every fault and the run
//                        quiesced, an operation may remain pending only if
//                        its submitting process crashed while it was open
//                        (even if that process has since restarted)
//   durability           every acknowledged write is still committed on some
//                        live replica — power cycles that lose unsynced
//                        storage writes must never roll back an acked op
//   protocol invariants  per-stack final-state checks supplied by the
//                        adapter: election safety / single steady leader,
//                        committed-prefix agreement, ...
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "chaos/adapter.h"
#include "chaos/nemesis.h"

namespace cht::chaos {

struct InvariantReport {
  std::vector<std::string> violations;  // empty = pass
  // False iff the linearizability search exhausted `check_budget` before
  // reaching a verdict: the run is neither pass nor fail on that axis.
  bool checker_decided = true;
};

// Runs the full registry. `quiesced` is the result of await_quiesce after
// Nemesis::stop_and_heal(); `check_budget` bounds the linearizability
// search's explored states (0 = unlimited).
InvariantReport check_invariants(ClusterAdapter& cluster,
                                 const NemesisProfile& profile, bool quiesced,
                                 std::size_t check_budget = 0);

}  // namespace cht::chaos
