// Test/benchmark harness: builds a cluster of core::Replica processes on the
// simulator, drives client operations, and records a real-time history for
// the linearizability checker.
#pragma once

#include <memory>
#include <vector>

#include "checker/history.h"
#include "core/config.h"
#include "core/replica.h"
#include "harness/client_pool.h"
#include "harness/common_config.h"
#include "object/object.h"
#include "sim/simulation.h"

namespace cht::harness {

// All knobs live in CommonConfig (shared verbatim by the Raft and VR
// harnesses); the alias-struct keeps the historical name at call sites.
struct ClusterConfig : CommonConfig {};

class Cluster {
 public:
  // `overrides` names the experiment's deviations from the derived
  // core::Config (read policy, commit gate, lease timing, ...) and is kept
  // for introspection: harnesses print/serialize it into bench artifacts.
  Cluster(ClusterConfig config,
          std::shared_ptr<const object::ObjectModel> model,
          core::ConfigOverrides overrides = {});

  sim::Simulation& sim() { return sim_; }
  int n() const { return config_.n; }
  core::Replica& replica(int i) {
    return sim_.process_as<core::Replica>(ProcessId(i));
  }
  const object::ObjectModel& model() const { return *model_; }
  checker::HistoryRecorder& history() { return history_; }
  const ClusterConfig& config() const { return config_; }
  const core::Config& core_config() const { return core_config_; }
  const core::ConfigOverrides& overrides() const { return overrides_; }

  // Merges all replicas' (and clients', when enabled) registries
  // (name-matched) into `out`, giving one cluster-wide observability view.
  void merge_metrics_into(metrics::Registry& out);

  // Submits an operation via process i, recording it in the history. The
  // optional callback also receives the response (after recording). With
  // config.clients > 0 the operation instead travels through a networked
  // client (slot i picks client i % clients) and the history records the
  // client's ProcessId and session OperationId.
  void submit(int i, object::Operation op,
              core::Replica::Callback callback = nullptr);

  // The networked clients (valid indices: 0 .. config().clients - 1).
  client::Client& client(int j) { return clients_.client(j); }
  bool client_path() const { return clients_.enabled(); }

  // Power-cycles crashed process i back up: builds a fresh Replica over the
  // same model/config and hands it to Simulation::restart, which reattaches
  // it to slot i's surviving StableStorage and calls on_restart().
  void restart(int i);

  // Runs the simulation for `d` of real time.
  void run_for(Duration d) { sim_.run_until(sim_.now() + d); }

  // Runs until every submitted operation has completed, or the deadline.
  // Returns true on full completion.
  bool await_quiesce(Duration timeout);

  // Index of the unique steady leader, or -1.
  int steady_leader();
  // Runs until some process is a steady leader. True on success.
  bool await_steady_leader(Duration timeout);

  std::size_t completed() const { return completed_; }
  std::size_t submitted() const { return submitted_; }

 private:
  ClusterConfig config_;
  std::shared_ptr<const object::ObjectModel> model_;
  core::ConfigOverrides overrides_;
  core::Config core_config_;
  sim::Simulation sim_;
  ClientPool clients_;
  checker::HistoryRecorder history_;
  std::size_t submitted_ = 0;
  std::size_t completed_ = 0;
};

}  // namespace cht::harness
