#include "client/gateway.h"

namespace cht::client {

bool ReplicaGateway::handle(const sim::Message& message) {
  if (!message.is(msg::kRequest)) return false;
  const auto& request = message.as<msg::ClientRequest>();

  if (request.is_read) {
    if ((request.leader_only || !hooks_.local_reads) && !hooks_.is_leader()) {
      redirect(message.from, request.id);
      return true;
    }
    if (metrics_) metrics_->add("gateway.reads");
    const ProcessId from = message.from;
    const OperationId id = request.id;
    hooks_.submit_read(request.op, [this, from, id](std::string response) {
      reply(from, id, response);
    });
    return true;
  }

  switch (sessions_.admit(request.id)) {
    case SessionTable::Admit::kStale:
      if (metrics_) metrics_->add("gateway.stale_dropped");
      return true;
    case SessionTable::Admit::kDuplicate:
      if (metrics_) metrics_->add("gateway.dup_replies");
      reply(message.from, request.id, *sessions_.cached(request.id));
      return true;
    case SessionTable::Admit::kFresh:
      break;
  }
  if (!hooks_.accepts_rmw()) {
    redirect(message.from, request.id);
    return true;
  }
  if (metrics_) metrics_->add("gateway.rmws");
  // Remember (or refresh) the waiter first: submit_rmw may apply and reply
  // synchronously in a single-replica cluster.
  rmw_waiters_[request.id.process.index()] = {request.id, message.from};
  // Always (re)submit on a fresh id — the stack dedups ids already pending
  // or in its log, and a retry after this replica lost and regained
  // leadership may genuinely need the re-injection.
  hooks_.submit_rmw(request.id, request.op);
  return true;
}

void ReplicaGateway::on_applied(const OperationId& id,
                                const std::string& response) {
  if (!is_client(id)) return;
  sessions_.record(id, response);
  const auto it = rmw_waiters_.find(id.process.index());
  if (it != rmw_waiters_.end() && it->second.first == id) {
    reply(it->second.second, id, response);
    rmw_waiters_.erase(it);
  }
}

void ReplicaGateway::reply(ProcessId to, const OperationId& id,
                           const std::string& response) {
  host_.send(to, msg::kReply, msg::ClientReply{id, response});
}

void ReplicaGateway::redirect(ProcessId to, const OperationId& id) {
  if (metrics_) metrics_->add("gateway.redirects");
  host_.send(to, msg::kRedirect, msg::Redirect{id, hooks_.leader_hint()});
}

}  // namespace cht::client
