// Simulated per-process stable storage with explicit fsync semantics.
//
// The paper assumes crash-stop processes; our crash-recovery extension gives
// every process a StableStorage holding (a) keyed records and (b) an append
// log. Writes are buffered (the "OS page cache") until sync() makes them
// durable. When the owning process crashes, the simulation calls
// lose_unsynced_writes(): each unsynced keyed write is lost independently and
// the unsynced log suffix is cut at a seed-drawn point (the record at the cut
// is "torn" — partially written, discarded by the checksum on recovery —
// together with everything after it). What survives is exactly what the next
// incarnation of the process observes after Simulation::restart.
//
// Determinism: each storage owns a private Rng derived from the simulation
// seed and the process index. It never draws from the simulation's global
// stream, so adding storage (or crashing with unsynced writes) perturbs no
// existing seed's event interleaving.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace cht::sim {

struct StorageConfig {
  // Simulated fsync cost. Zero (the default) models an instantaneous sync:
  // sync() is a plain synchronous call and Process::sync_storage runs its
  // continuation inline, scheduling no event. Nonzero latency delays the
  // continuation on the simulation timeline.
  Duration sync_latency = Duration::zero();
  // Each keyed write that was never synced is lost independently with this
  // probability when the process crashes (reverting the key to its last
  // durable value).
  double unsynced_key_loss = 0.5;
};

class StableStorage {
 public:
  StableStorage(std::uint64_t sim_seed, int process_index,
                StorageConfig config);

  // --- Keyed records ------------------------------------------------------
  // Current view (read-your-writes: a process sees its own unsynced writes).
  void write(const std::string& key, const std::string& value);
  void erase(const std::string& key);
  std::optional<std::string> read(const std::string& key) const;
  // All current keys with the given prefix, in order.
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  // --- Append log ---------------------------------------------------------
  void append(const std::string& record);
  // Rewinds the log to new_size records (conflict rewrite, e.g. Raft log
  // truncation). May cut below the durable prefix; the truncation itself
  // becomes durable at the next sync().
  void truncate_log(std::size_t new_size);
  const std::vector<std::string>& log() const { return log_; }
  std::size_t log_size() const { return log_.size(); }

  // --- Durability ---------------------------------------------------------
  // Makes everything written so far durable.
  void sync();
  bool dirty() const { return !dirty_keys_.empty() || log_dirty(); }
  std::int64_t fsyncs() const { return fsyncs_; }
  const StorageConfig& config() const { return config_; }

  // Called by the simulation when the owning process crashes. Applies the
  // seed-deterministic loss/tearing of unsynced writes described above.
  void lose_unsynced_writes();

 private:
  bool log_dirty() const {
    return log_.size() != durable_log_size_ || log_truncated_below_durable_;
  }

  StorageConfig config_;
  Rng rng_;
  // Current keyed view. Durable state is reconstructed at crash time from
  // dirty_keys_, which remembers each dirty key's last durable value
  // (nullopt = key absent durably).
  std::map<std::string, std::string> records_;
  std::map<std::string, std::optional<std::string>> dirty_keys_;
  std::vector<std::string> log_;
  std::size_t durable_log_size_ = 0;
  bool log_truncated_below_durable_ = false;
  std::int64_t fsyncs_ = 0;
};

// --- Record codec ----------------------------------------------------------
// Length-prefixed field packing ("<len>:<bytes>" per field, concatenated) so
// protocols can serialize structured records without inventing ad-hoc escape
// schemes. decode_fields asserts on malformed input (storage never corrupts
// within a record; torn records are dropped whole).
std::string encode_fields(const std::vector<std::string>& fields);
std::vector<std::string> decode_fields(const std::string& record);

}  // namespace cht::sim
