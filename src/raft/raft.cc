#include "raft/raft.h"

#include <algorithm>
#include <string>

#include "common/assert.h"
#include "common/logging.h"
#include "sim/storage.h"

namespace cht::raft {

namespace {
constexpr const char* kTag = "raft";

// Stable-storage schema: keyed "term"/"vote" records plus one append-log
// record per log entry (index i+1 lives at storage log position i).
constexpr const char* kKeyTerm = "term";
constexpr const char* kKeyVote = "vote";

std::string encode_entry(const LogEntry& e) {
  return sim::encode_fields({std::to_string(e.term),
                             std::to_string(e.id.process.index()),
                             std::to_string(e.id.seq), e.op.kind, e.op.arg});
}

LogEntry decode_entry(const std::string& record) {
  const std::vector<std::string> fields = sim::decode_fields(record);
  CHT_ASSERT(fields.size() == 5, "malformed raft log record");
  return LogEntry{std::stoll(fields[0]),
                  OperationId{ProcessId(std::stoi(fields[1])),
                              std::stoll(fields[2])},
                  object::Operation{fields[3], fields[4]}};
}

}  // namespace

RaftReplica::RaftReplica(std::shared_ptr<const object::ObjectModel> model,
                         RaftConfig config)
    : model_(std::move(model)),
      config_(config),
      clock_guard_(config_.clock_guard),
      gateway_(*this, &metrics_) {
  span_election_ = metrics::Span(&metrics_.histogram("span.election_us"));
  h_readindex_round_ = &metrics_.histogram("span.readindex.round_us");
  c_recoveries_ = &metrics_.counter("recoveries");
  c_recovered_entries_ = &metrics_.counter("recovery_log_replayed");
  span_recovery_ = metrics::Span(&metrics_.histogram("span.recovery_us"));
  c_clock_transitions_ = &metrics_.counter("clock.suspect_transitions");
  c_reads_degraded_ = &metrics_.counter("reads.degraded");

  client::ReplicaGateway::Hooks hooks;
  hooks.accepts_rmw = [this] { return role_ == Role::kLeader; };
  hooks.is_leader = [this] { return role_ == Role::kLeader; };
  hooks.leader_hint = [this] {
    return role_ == Role::kLeader ? id().index() : leader_hint_.index();
  };
  hooks.local_reads = false;  // Raft reads are never follower-local
  hooks.submit_rmw = [this](const OperationId& id,
                            const object::Operation& op) {
    // ids_in_log_ dedups retries whose entry already survives in our log.
    on_client_rmw(this->id(), msg::ClientRmw{id, op});
  };
  hooks.submit_read = [this](const object::Operation& op,
                             std::function<void(std::string)> done) {
    // Reuses the replica-local read path (lease or ReadIndex round under a
    // replica-own id), which already retries across leadership changes.
    submit_read(op,
                [done = std::move(done)](const object::Response& r) { done(r); });
  };
  gateway_.set_hooks(std::move(hooks));
}

void RaftReplica::on_start() {
  state_ = model_->make_initial_state();
  seed_op_sequence();
  next_index_.assign(cluster_size(), 1);
  match_index_.assign(cluster_size(), 0);
  probe_acked_.assign(cluster_size(), 0);
  last_ack_local_.assign(cluster_size(), LocalTime::min());
  reset_election_timer();
}

void RaftReplica::on_restart() {
  span_recovery_.begin(now_local().to_micros());
  c_recoveries_->inc();
  state_ = model_->make_initial_state();
  seed_op_sequence();
  next_index_.assign(cluster_size(), 1);
  match_index_.assign(cluster_size(), 0);
  probe_acked_.assign(cluster_size(), 0);
  last_ack_local_.assign(cluster_size(), LocalTime::min());
  recover_from_storage();
  reset_election_timer();
}

void RaftReplica::seed_op_sequence() {
  // Fresh incarnations must never reuse an OperationId (entries are
  // deduplicated by id); namespacing by incarnation avoids per-submit syncs.
  op_seq_ = static_cast<std::int64_t>(incarnation()) << 40;
}

void RaftReplica::persist_hard_state() {
  sim::StableStorage& st = storage();
  st.write(kKeyTerm, std::to_string(term_));
  if (voted_for_.has_value()) {
    st.write(kKeyVote, std::to_string(*voted_for_));
  } else {
    st.erase(kKeyVote);
  }
}

void RaftReplica::append_log_entry(const LogEntry& entry) {
  log_.push_back(entry);
  ids_in_log_.insert(entry.id);
  storage().append(encode_entry(entry));
}

void RaftReplica::truncate_log_suffix(std::int64_t first_dropped) {
  for (std::int64_t i = first_dropped; i <= last_log_index(); ++i) {
    ids_in_log_.erase(log_.at(static_cast<std::size_t>(i - 1)).id);
  }
  log_.resize(static_cast<std::size_t>(first_dropped - 1));
  storage().truncate_log(static_cast<std::size_t>(first_dropped - 1));
  if (synced_log_index_ > first_dropped - 1) {
    synced_log_index_ = first_dropped - 1;
  }
}

void RaftReplica::recover_from_storage() {
  sim::StableStorage& st = storage();
  if (const auto term = st.read(kKeyTerm)) term_ = std::stoll(*term);
  if (const auto vote = st.read(kKeyVote)) voted_for_ = std::stoi(*vote);
  for (const std::string& record : st.log()) {
    const LogEntry entry = decode_entry(record);
    log_.push_back(entry);
    ids_in_log_.insert(entry.id);
    c_recovered_entries_->inc();
  }
  // Whatever survived the crash is durable by definition.
  synced_log_index_ = last_log_index();
  // commit_index_/last_applied_ stay 0: they are volatile and re-learned
  // from the next leader's AppendEntries (entries re-apply from scratch
  // against the fresh state machine).
  trace_event("recovery", "term=" + std::to_string(term_) +
                              " log=" + std::to_string(log_.size()));
}

// ===========================================================================
// Elections
// ===========================================================================

void RaftReplica::reset_election_timer() {
  election_timer_.cancel();
  const Duration timeout = Duration::micros(
      rng().next_in(config_.election_timeout_min.to_micros(),
                    config_.election_timeout_max.to_micros()));
  election_timer_ = schedule_after(timeout, [this] { start_election(); });
}

void RaftReplica::start_election() {
  if (role_ == Role::kLeader) return;
  ++stats_.elections_started;
  // The election span restarts on every timeout, so it measures the round
  // that actually won, not the full leaderless stretch.
  span_election_.begin(now_local().to_micros());
  role_ = Role::kCandidate;
  ++term_;
  voted_for_ = id().index();
  votes_ = {id().index()};
  // The self-vote must be durable before anyone can learn of the candidacy:
  // the RequestVote broadcast waits for the covering sync to complete.
  persist_hard_state();
  CHT_DEBUG(kTag) << id() << " starts election for term " << term_;
  const std::int64_t t = term_;
  request_sync([this, t] {
    if (role_ != Role::kCandidate || term_ != t) {
      return;  // a leader emerged (or a newer term) while the sync ran
    }
    broadcast(msg::kRequestVote, msg::RequestVote{term_, last_log_index(),
                                                  term_at(last_log_index())});
    reset_election_timer();
    if (static_cast<int>(votes_.size()) >= majority()) become_leader();  // n == 1
  });
}

void RaftReplica::become_follower(std::int64_t term) {
  const bool was_leader = role_ == Role::kLeader;
  if (term > term_) {
    term_ = term;
    voted_for_.reset();
    // Written now, durable at the next sync (a granted vote or successful
    // append); losing an unsynced term bump only re-learns the term.
    persist_hard_state();
  }
  role_ = Role::kFollower;
  span_election_.cancel();
  if (was_leader) {
    heartbeat_timer_.cancel();
    leader_reads_.clear();  // requesters retry against the new leader
  }
  reset_election_timer();
}

void RaftReplica::become_leader() {
  CHT_DEBUG(kTag) << id() << " wins term " << term_;
  ++stats_.terms_won;
  const std::int64_t election_us = span_election_.end(now_local().to_micros());
  if (election_us >= 0 && tracing()) {
    trace_event("span.election", "us=" + std::to_string(election_us));
  }
  span_recovery_.cancel();  // recovered straight into leading
  role_ = Role::kLeader;
  leader_hint_ = id();
  next_index_.assign(cluster_size(), last_log_index() + 1);
  match_index_.assign(cluster_size(), 0);
  probe_acked_.assign(cluster_size(), 0);
  last_ack_local_.assign(cluster_size(), LocalTime::min());
  election_timer_.cancel();
  // A new leader commits a no-op of its own term: required so commit_index
  // can advance (only current-term entries commit by counting) and so
  // ReadIndex reads observe every previously committed entry.
  const OperationId noop_id{id(), ++op_seq_};
  append_log_entry(LogEntry{term_, noop_id, object::no_op()});
  // Pipelined: the heartbeats below advertise the no-op while its covering
  // sync is still in flight; our own log counts toward commit only up to
  // synced_log_index_, which advances when the sync completes.
  const std::int64_t idx = last_log_index();
  const std::int64_t t = term_;
  request_sync([this, idx, t] {
    if (synced_log_index_ < idx) synced_log_index_ = idx;
    if (role_ == Role::kLeader && term_ == t) advance_commit();
  });
  heartbeat_tick();
}

void RaftReplica::on_request_vote(ProcessId from,
                                  const msg::RequestVote& request) {
  // Leader stickiness: while we recently heard from (or were) a live leader,
  // disregard the request entirely — not even a term bump. Required for
  // lease-read safety and prevents a rejoining partitioned node with an
  // inflated term from disrupting a healthy leader.
  if (last_leader_contact_ != LocalTime::min() &&
      now_local() < last_leader_contact_ + config_.election_timeout_min) {
    send(from, msg::kVoteReply, msg::VoteReply{term_, false});
    return;
  }
  if (request.term > term_) become_follower(request.term);
  bool granted = false;
  if (request.term == term_ &&
      (!voted_for_.has_value() || *voted_for_ == from.index())) {
    // Election restriction: grant only to candidates whose log is at least
    // as up-to-date as ours.
    const std::int64_t our_last_term = term_at(last_log_index());
    const bool up_to_date =
        request.last_log_term > our_last_term ||
        (request.last_log_term == our_last_term &&
         request.last_log_index >= last_log_index());
    if (up_to_date) {
      voted_for_ = from.index();
      // The vote must survive a crash: a recovered replica that forgot it
      // could vote twice in one term and elect two leaders. The grant leaves
      // only after the covering sync completes (vote syncs pending in one
      // group-commit window coalesce and their replies burst together).
      persist_hard_state();
      reset_election_timer();
      const std::int64_t t = term_;
      request_sync([this, from, t] {
        send(from, msg::kVoteReply, msg::VoteReply{t, true});
      });
      return;
    }
  }
  send(from, msg::kVoteReply, msg::VoteReply{term_, granted});
}

void RaftReplica::on_vote_reply(ProcessId from, const msg::VoteReply& reply) {
  if (reply.term > term_) {
    become_follower(reply.term);
    return;
  }
  if (role_ != Role::kCandidate || reply.term != term_ || !reply.granted) {
    return;
  }
  votes_.insert(from.index());
  if (static_cast<int>(votes_.size()) >= majority()) become_leader();
}

// ===========================================================================
// Replication
// ===========================================================================

void RaftReplica::heartbeat_tick() {
  if (role_ != Role::kLeader) return;
  last_leader_contact_ = now_local();  // we are the live leader
  ++probe_seq_;
  for (int i = 0; i < cluster_size(); ++i) {
    if (i == id().index()) continue;
    send_append(ProcessId(i));
  }
  heartbeat_timer_ =
      schedule_after(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

void RaftReplica::send_append(ProcessId to) {
  const std::int64_t next = next_index_.at(to.index());
  const std::int64_t prev = next - 1;
  msg::AppendEntries append{term_,         prev,       term_at(prev), {},
                            commit_index_, probe_seq_, now_local()};
  for (std::int64_t i = next; i <= last_log_index(); ++i) {
    append.entries.push_back(log_.at(static_cast<std::size_t>(i - 1)));
  }
  send(to, msg::kAppendEntries, append);
}

void RaftReplica::on_append_entries(ProcessId from,
                                    const msg::AppendEntries& append) {
  if (append.term > term_) become_follower(append.term);
  if (append.term < term_) {
    send(from, msg::kAppendReply,
         msg::AppendReply{term_, false, last_log_index(), append.probe_seq,
                          append.lease_stamp});
    return;
  }
  // append.term == term_: `from` is the legitimate leader of this term.
  if (role_ != Role::kFollower) become_follower(append.term);
  leader_hint_ = from;
  last_leader_contact_ = now_local();
  // First leader contact after a restart closes the recovery span.
  const std::int64_t recovery_us = span_recovery_.end(now_local().to_micros());
  if (recovery_us >= 0 && tracing()) {
    trace_event("span.recovery", "us=" + std::to_string(recovery_us));
  }
  reset_election_timer();

  if (append.prev_index > last_log_index() ||
      term_at(append.prev_index) != append.prev_term) {
    send(from, msg::kAppendReply,
         msg::AppendReply{term_, false, last_log_index(), append.probe_seq,
                          append.lease_stamp});
    return;
  }
  // Append, truncating conflicting suffixes.
  std::int64_t index = append.prev_index;
  bool log_changed = false;
  for (const LogEntry& entry : append.entries) {
    ++index;
    if (index <= last_log_index()) {
      if (term_at(index) == entry.term) continue;  // already have it
      // Conflict: drop our suffix from here on.
      truncate_log_suffix(index);
    }
    append_log_entry(entry);
    log_changed = true;
  }
  // Durability before the success reply: the leader counts this replica's
  // match_index toward commit on its strength. One sync covers the whole
  // flight's appends; under group commit, flights (or other promise work)
  // landing while that sync is in flight coalesce into the next one and
  // their replies leave as one burst. Heartbeats that changed nothing
  // re-claim an already-durable prefix and need no sync.
  const std::int64_t appended_upto =
      append.prev_index + static_cast<std::int64_t>(append.entries.size());
  const msg::AppendReply reply{term_, true, appended_upto, append.probe_seq,
                               append.lease_stamp};
  const std::int64_t leader_commit = append.leader_commit;
  auto complete = [this, from, reply, leader_commit] {
    if (leader_commit > commit_index_) {
      commit_index_ = std::min(leader_commit, last_log_index());
      apply_committed();
    }
    send(from, msg::kAppendReply, reply);
  };
  if (log_changed) {
    request_sync([this, appended_upto, complete] {
      if (synced_log_index_ < appended_upto) synced_log_index_ = appended_upto;
      complete();
    });
  } else {
    complete();
  }
}

void RaftReplica::on_append_reply(ProcessId from,
                                  const msg::AppendReply& reply) {
  if (reply.term > term_) {
    become_follower(reply.term);
    return;
  }
  if (role_ != Role::kLeader || reply.term != term_) return;
  const int f = from.index();
  probe_acked_[f] = std::max(probe_acked_[f], reply.probe_seq);
  // The echoed stamp is when we *sent* the round this follower is acking —
  // the latest provable lower bound on its election-timer reset.
  last_ack_local_[f] = std::max(last_ack_local_[f], reply.lease_stamp);
  if (reply.success) {
    match_index_[f] = std::max(match_index_[f], reply.match_index);
    next_index_[f] = match_index_[f] + 1;
    advance_commit();
  } else {
    // Fast back-off: jump straight past the follower's log end.
    next_index_[f] = std::min(next_index_[f] - 1, reply.match_index + 1);
    if (next_index_[f] < 1) next_index_[f] = 1;
    send_append(from);
  }
  maybe_answer_reads();
}

void RaftReplica::advance_commit() {
  for (std::int64_t n = last_log_index(); n > commit_index_; --n) {
    if (term_at(n) != term_) break;  // only current-term entries by counting
    // Self counts only up to the completed-sync watermark: with the
    // pipelined write path our log may run ahead of the covering fsync.
    int replicas = synced_log_index_ >= n ? 1 : 0;
    for (int i = 0; i < cluster_size(); ++i) {
      if (i != id().index() && match_index_[i] >= n) ++replicas;
    }
    if (replicas >= majority()) {
      commit_index_ = n;
      apply_committed();
      break;
    }
  }
}

void RaftReplica::apply_committed() {
  while (last_applied_ < commit_index_) {
    ++last_applied_;
    const LogEntry& entry = log_.at(static_cast<std::size_t>(last_applied_ - 1));
    const object::Response response = model_->apply(*state_, entry.op);
    if (entry.id.process == id()) {
      auto node = pending_ops_.extract(entry.id);
      if (!node.empty()) {
        node.mapped().retry_timer.cancel();
        ++stats_.rmws_completed;
        if (node.mapped().callback) node.mapped().callback(response);
      }
    }
    // Every applied entry feeds the client session table in log order (also
    // during recovery replay, which rebuilds it).
    gateway_.on_applied(entry.id, response);
  }
  maybe_answer_reads();
}

// ===========================================================================
// Clients
// ===========================================================================

OperationId RaftReplica::submit_rmw(object::Operation op, Callback callback) {
  CHT_ASSERT(!model_->is_read(op), "submit_rmw called with a read");
  ++stats_.rmws_submitted;
  const OperationId id{this->id(), ++op_seq_};
  pending_ops_.try_emplace(
      id, PendingClientOp{std::move(op), std::move(callback), false,
                          sim::EventHandle()});
  client_send(id);
  return id;
}

void RaftReplica::submit_read(object::Operation op, Callback callback) {
  CHT_ASSERT(model_->is_read(op), "submit_read called with a RMW");
  ++stats_.reads_submitted;
  const OperationId id{this->id(), ++op_seq_};
  pending_ops_.try_emplace(
      id, PendingClientOp{std::move(op), std::move(callback), true,
                          sim::EventHandle()});
  client_send(id);
}

void RaftReplica::client_send(const OperationId& id) {
  auto it = pending_ops_.find(id);
  if (it == pending_ops_.end()) return;
  ProcessId target = role_ == Role::kLeader ? this->id() : leader_hint_;
  if (!target.valid()) {
    // No known leader yet: try a deterministic guess; retries rotate.
    target = ProcessId(static_cast<int>(rng().next_below(
        static_cast<std::uint64_t>(cluster_size()))));
  }
  if (it->second.is_read) {
    const msg::ClientRead request{id, it->second.op};
    if (target == this->id()) {
      on_client_read(this->id(), request);
      // A lease read at the leader completes synchronously and erases the
      // pending entry; the iterator is dead then.
      it = pending_ops_.find(id);
      if (it == pending_ops_.end()) return;
    } else {
      send(target, msg::kClientRead, request);
    }
  } else {
    const msg::ClientRmw request{id, it->second.op};
    if (target == this->id()) {
      on_client_rmw(this->id(), request);
      it = pending_ops_.find(id);
      if (it == pending_ops_.end()) return;
    } else {
      send(target, msg::kClientRmw, request);
    }
  }
  it->second.retry_timer =
      schedule_after(config_.client_retry, [this, id] { client_send(id); });
}

void RaftReplica::on_client_rmw(ProcessId /*from*/, const msg::ClientRmw& rmw) {
  if (role_ != Role::kLeader) return;  // submitter retries
  if (ids_in_log_.contains(rmw.id)) return;  // duplicate retry
  append_log_entry(LogEntry{term_, rmw.id, rmw.op});
  // Pipelined: the replication flights below leave while our own covering
  // sync is in flight; our match counts toward the majority only once it
  // completes (synced_log_index_), so a commit never rests on an unsynced
  // leader log.
  const std::int64_t idx = last_log_index();
  const std::int64_t t = term_;
  request_sync([this, idx, t] {
    if (synced_log_index_ < idx) synced_log_index_ = idx;
    if (role_ == Role::kLeader && term_ == t) advance_commit();
  });
  for (int i = 0; i < cluster_size(); ++i) {
    if (i != id().index()) send_append(ProcessId(i));
  }
}

void RaftReplica::on_client_read(ProcessId from, const msg::ClientRead& read) {
  if (role_ != Role::kLeader) return;  // submitter retries
  if (config_.read_mode == ReadMode::kLeaderLease && clock_guard_.suspect()) {
    // Degraded: lease validity is clock arithmetic this replica no longer
    // trusts; fall through to the clock-free ReadIndex round below.
    ++stats_.reads_degraded;
    c_reads_degraded_->inc();
  } else if (config_.read_mode == ReadMode::kLeaderLease && lease_valid() &&
             last_applied_ >= commit_index_) {
    ++stats_.reads_served_by_lease;
    const object::Response response = model_->apply(*state_, read.op);
    const msg::ReadReply reply{read.id, response};
    if (from == id()) {
      on_message_read_reply(reply);
    } else {
      send(from, msg::kReadReply, reply);
    }
    return;
  }
  // ReadIndex: record the commit index and confirm leadership with a fresh
  // heartbeat round before answering.
  ++probe_seq_;
  leader_reads_.push_back(PendingLeaderRead{from, read.id, read.op,
                                            commit_index_, probe_seq_,
                                            now_local()});
  for (int i = 0; i < cluster_size(); ++i) {
    if (i != id().index()) send_append(ProcessId(i));
  }
  maybe_answer_reads();  // n == 1: no confirmation needed
}

bool RaftReplica::lease_valid() {
  // The leader holds a read lease until (send time of the quorum-th most
  // recently acked heartbeat round) + election_timeout_min. Followers
  // disregard votes within election_timeout_min of leader contact, so every
  // electing majority intersects the acking quorum in a replica that cannot
  // vote before this lease expires (local clocks advance at rate 1, so
  // cross-clock duration arithmetic is exact).
  std::vector<LocalTime> acks;
  for (int i = 0; i < cluster_size(); ++i) {
    if (i != id().index()) acks.push_back(last_ack_local_[i]);
  }
  std::sort(acks.begin(), acks.end(), std::greater<>());
  const int needed = majority() - 1;  // besides ourselves
  if (needed == 0) return true;
  if (static_cast<int>(acks.size()) < needed) return false;
  const LocalTime quorum_time = acks[static_cast<std::size_t>(needed - 1)];
  if (quorum_time == LocalTime::min()) return false;
  return now_local() < quorum_time + config_.election_timeout_min;
}

void RaftReplica::maybe_answer_reads() {
  if (role_ != Role::kLeader) return;
  for (auto it = leader_reads_.begin(); it != leader_reads_.end();) {
    int confirmations = 1;  // self
    for (int i = 0; i < cluster_size(); ++i) {
      if (i != id().index() && probe_acked_[i] >= it->probe_seq) {
        ++confirmations;
      }
    }
    if (confirmations >= majority() && last_applied_ >= it->read_index) {
      answer_read(*it);
      it = leader_reads_.erase(it);
    } else {
      ++it;
    }
  }
}

void RaftReplica::answer_read(const PendingLeaderRead& read) {
  const std::int64_t round_us = (now_local() - read.enqueued).to_micros();
  h_readindex_round_->record(round_us);
  if (tracing()) {
    trace_event("span.readindex.round", "us=" + std::to_string(round_us));
  }
  const object::Response response = model_->apply(*state_, read.op);
  const msg::ReadReply reply{read.id, response};
  if (read.from == id()) {
    on_message_read_reply(reply);
  } else {
    send(read.from, msg::kReadReply, reply);
  }
}

// ===========================================================================
// Dispatch
// ===========================================================================

void RaftReplica::on_message(const sim::Message& message) {
  if (clock_guard_.observe(message.sent_local, now_local(), now_real())) {
    c_clock_transitions_->inc();
    if (tracing()) {
      trace_event("clock.guard",
                  clock_guard_.suspect() ? "suspect" : "requalified");
    }
  }
  if (gateway_.handle(message)) return;
  if (message.is(msg::kRequestVote)) {
    on_request_vote(message.from, message.as<msg::RequestVote>());
  } else if (message.is(msg::kVoteReply)) {
    on_vote_reply(message.from, message.as<msg::VoteReply>());
  } else if (message.is(msg::kAppendEntries)) {
    on_append_entries(message.from, message.as<msg::AppendEntries>());
  } else if (message.is(msg::kAppendReply)) {
    on_append_reply(message.from, message.as<msg::AppendReply>());
  } else if (message.is(msg::kClientRmw)) {
    on_client_rmw(message.from, message.as<msg::ClientRmw>());
  } else if (message.is(msg::kClientRead)) {
    on_client_read(message.from, message.as<msg::ClientRead>());
  } else if (message.is(msg::kReadReply)) {
    on_message_read_reply(message.as<msg::ReadReply>());
  } else {
    CHT_UNREACHABLE("unknown message type for raft replica");
  }
}

void RaftReplica::on_message_read_reply(const msg::ReadReply& reply) {
  auto node = pending_ops_.extract(reply.id);
  if (node.empty()) return;
  node.mapped().retry_timer.cancel();
  ++stats_.reads_completed;
  if (node.mapped().callback) node.mapped().callback(reply.response);
}

}  // namespace cht::raft
