// Leader failover: half-done batches are resolved consistently, leadership
// changes preserve linearizability, minority partitions make no progress.
#include <gtest/gtest.h>

#include <memory>

#include "checker/linearizability.h"
#include "harness/cluster.h"
#include "object/kv_object.h"
#include "object/register_object.h"

namespace cht {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

ClusterConfig config_with_seed(std::uint64_t seed) {
  ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = Duration::millis(10);
  return config;
}

TEST(FailoverTest, NewLeaderElectedAfterCrash) {
  Cluster cluster(config_with_seed(1), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  const int old_leader = cluster.steady_leader();
  cluster.sim().crash(ProcessId(old_leader));
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(10)));
  EXPECT_NE(cluster.steady_leader(), old_leader);
}

TEST(FailoverTest, CommittedDataSurvivesLeaderCrash) {
  Cluster cluster(config_with_seed(2), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.submit(1, object::KVObject::put("k", "must-survive"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  const int old_leader = cluster.steady_leader();
  cluster.sim().crash(ProcessId(old_leader));
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(10)));
  const int reader = (old_leader + 1) % cluster.n();
  cluster.submit(reader, object::KVObject::get("k"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  EXPECT_EQ(*cluster.history().ops().back().response, "must-survive");
}

// Crash the leader at several points during a commit; whatever happens, the
// surviving processes must agree and the history must stay linearizable.
TEST(FailoverTest, CrashMidCommitResolvesHalfDoneBatch) {
  for (int crash_after_ms : {0, 2, 5, 8, 12, 20}) {
    Cluster cluster(config_with_seed(100 + crash_after_ms),
                    std::make_shared<object::KVObject>());
    ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
    const int leader = cluster.steady_leader();
    const int submitter = (leader + 1) % cluster.n();
    cluster.submit(submitter, object::KVObject::put("k", "v"));
    cluster.run_for(Duration::millis(crash_after_ms));
    cluster.sim().crash(ProcessId(leader));
    // The operation must eventually complete: either the new leader found
    // and re-committed the half-done batch, or the submitter's retry
    // re-introduced it.
    ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)))
        << "crash_after_ms=" << crash_after_ms;
    cluster.run_for(Duration::seconds(2));
    // All survivors converge.
    std::string fingerprint;
    for (int i = 0; i < cluster.n(); ++i) {
      if (cluster.replica(i).crashed()) continue;
      if (fingerprint.empty()) {
        fingerprint = cluster.replica(i).applied_state().fingerprint();
      } else {
        EXPECT_EQ(cluster.replica(i).applied_state().fingerprint(), fingerprint)
            << "crash_after_ms=" << crash_after_ms << " replica " << i;
      }
    }
    const auto result =
        checker::check_linearizable(cluster.model(), cluster.history().ops());
    EXPECT_TRUE(result.linearizable)
        << "crash_after_ms=" << crash_after_ms << ": " << result.explanation;
  }
}

TEST(FailoverTest, ToleratesMinorityCrashes) {
  Cluster cluster(config_with_seed(3), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  // Crash two of five (the largest tolerable minority), including the leader.
  const int leader = cluster.steady_leader();
  cluster.sim().crash(ProcessId(leader));
  cluster.sim().crash(ProcessId((leader + 1) % cluster.n()));
  const int survivor = (leader + 2) % cluster.n();
  cluster.submit(survivor, object::KVObject::put("x", "alive"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)));
  cluster.submit(survivor, object::KVObject::get("x"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  EXPECT_EQ(*cluster.history().ops().back().response, "alive");
}

TEST(FailoverTest, MajorityCrashLosesOnlyLiveness) {
  // The paper's robustness claim: if a majority crashes, operations may not
  // terminate but never return incorrect results.
  Cluster cluster(config_with_seed(4), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.submit(0, object::KVObject::put("k", "before"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  for (int i = 0; i < 3; ++i) cluster.sim().crash(ProcessId(i));
  // RMWs submitted now cannot commit (no majority). The submitting process
  // survives, so the op stays pending forever.
  cluster.submit(3, object::KVObject::put("k", "after"));
  cluster.run_for(Duration::seconds(10));
  EXPECT_EQ(cluster.completed(), 1u);  // only the pre-crash op
  // Safety: the full history (with the pending op) is still linearizable.
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(FailoverTest, ChainOfLeaderCrashes) {
  Cluster cluster(config_with_seed(5), std::make_shared<object::KVObject>());
  for (int round = 0; round < 2; ++round) {
    ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(20)))
        << "round " << round;
    const int leader = cluster.steady_leader();
    int submitter = -1;
    for (int i = 0; i < cluster.n(); ++i) {
      if (i != leader && !cluster.replica(i).crashed()) {
        submitter = i;
        break;
      }
    }
    ASSERT_GE(submitter, 0);
    cluster.submit(submitter,
                   object::KVObject::put("round", std::to_string(round)));
    cluster.run_for(Duration::millis(3));
    cluster.sim().crash(ProcessId(leader));
    ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)))
        << "round " << round;
  }
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(FailoverTest, IsolatedOldLeaderCannotCommit) {
  Cluster cluster(config_with_seed(6), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  const int old_leader = cluster.steady_leader();
  // Partition the leader away (it is alive but cut off) — note this
  // violates the post-GST assumption on purpose.
  cluster.sim().network().set_process_isolated(ProcessId(old_leader), true,
                                               cluster.n());
  // The old leader keeps believing in its reign until its majority support
  // lapses; wait specifically for a *different* steady leader to emerge.
  int new_leader = -1;
  ASSERT_TRUE(cluster.sim().run_until(
      [&] {
        new_leader = cluster.steady_leader();
        return new_leader >= 0 && new_leader != old_leader;
      },
      cluster.sim().now() + Duration::seconds(20)));
  // Ops submitted at the isolated old leader must not complete...
  cluster.submit(old_leader, object::KVObject::put("k", "from-isolated"));
  // ...while the rest of the cluster commits normally.
  cluster.submit(new_leader, object::KVObject::put("k", "from-majority"));
  cluster.run_for(Duration::seconds(5));
  EXPECT_EQ(cluster.completed(), 1u);
  const auto& ops = cluster.history().ops();
  for (const auto& record : ops) {
    if (record.completed()) {
      EXPECT_EQ(record.process, ProcessId(new_leader));
    }
  }
  // Heal the partition: the pending op eventually commits too.
  cluster.sim().network().set_process_isolated(ProcessId(old_leader), false,
                                               cluster.n());
  EXPECT_TRUE(cluster.await_quiesce(Duration::seconds(30)));
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

}  // namespace
}  // namespace cht
