// Object model.
//
// The paper defines an object by a set of states Sigma, operations Ops,
// responses Res, and a transition function tau: Sigma x Ops -> Sigma x Res.
// An operation is a *read* if it never changes the state; otherwise it is a
// read-modify-write (RMW). A read R *conflicts* with a RMW W if there is a
// state from which R returns different values depending on whether it runs
// before or after W.
//
// Concrete objects implement ObjectModel. The conflict predicate may be
// conservative (returning true when unsure is always safe: it can only make
// a read wait longer, never return a stale value).
#pragma once

#include <cstdint>
#include <memory>
#include <ostream>
#include <string>

namespace cht::object {

// An operation instance. `kind` selects the transition; `arg` carries
// parameters in a model-defined encoding. Cheap to copy and hashable, so it
// can travel in messages and batches.
struct Operation {
  std::string kind;
  std::string arg;

  auto operator<=>(const Operation&) const = default;
  friend std::ostream& operator<<(std::ostream& os, const Operation& op) {
    os << op.kind;
    if (!op.arg.empty()) os << "(" << op.arg << ")";
    return os;
  }
};

using Response = std::string;

// Mutable object state. Cloneable for snapshots (checker, new-leader catch
// up) and fingerprintable for checker memoization.
class ObjectState {
 public:
  virtual ~ObjectState() = default;
  virtual std::unique_ptr<ObjectState> clone() const = 0;
  // A string that uniquely encodes the state (equal states <=> equal
  // fingerprints).
  virtual std::string fingerprint() const = 0;
};

class ObjectModel {
 public:
  virtual ~ObjectModel() = default;

  virtual std::string name() const = 0;
  virtual std::unique_ptr<ObjectState> make_initial_state() const = 0;

  // Applies `op` to `state` in place and returns the response. Must be
  // deterministic.
  virtual Response apply(ObjectState& state, const Operation& op) const = 0;

  // True iff `op` never modifies any state.
  virtual bool is_read(const Operation& op) const = 0;

  // True iff the read `read` conflicts with the RMW `rmw` (see header
  // comment). Only called with is_read(read) && !is_read(rmw).
  virtual bool conflicts(const Operation& read, const Operation& rmw) const = 0;

  // Locality hook for the linearizability checker (Herlihy & Wing:
  // linearizability is compositional across independent sub-objects). If
  // every operation of a history touches exactly one sub-object, returning
  // distinct non-empty labels per sub-object lets the checker verify each
  // sub-history independently. Return "" for operations that span
  // sub-objects (forces a whole-history check). Purely an optimization: the
  // default partitions nothing.
  virtual std::string partition_label(const Operation& op) const {
    (void)op;
    return "";
  }
};

// The universal no-op RMW operation. The replication algorithm submits one
// when a new leader finishes initialization (to guarantee read liveness even
// if no client ever submits another RMW). Every ObjectModel must accept it:
// it is not a read (it flows through the RMW path), it leaves the state
// unchanged, and it conflicts with nothing.
inline Operation no_op() { return {"noop", ""}; }
inline bool is_no_op(const Operation& op) { return op.kind == "noop"; }

// --- Argument codec helpers (colon-separated fields) -----------------------
std::string encode_args(std::initializer_list<std::string> fields);
std::string arg_field(const std::string& arg, int index);

}  // namespace cht::object
