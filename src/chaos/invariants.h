// Invariant registry: every safety/liveness property a chaos run is held to,
// in one place, shared by the seed sweeper, the fuzzer CLI and the ctest
// chaos suites.
//
//   linearizability      full history through the object model. Under
//                        profiles that legally break read freshness (clock
//                        skew beyond epsilon) the treatment depends on the
//                        clock-health guard: with the guard ON, stale reads
//                        are only excused inside the bounded *exposure
//                        window* between skew injection and the arrival of
//                        detecting evidence (two-pass check: full history
//                        first, then with excused reads dropped); with the
//                        guard OFF, the legacy fallback checks only the RMW
//                        sub-history (the paper's Section 1 robustness
//                        claim)
//   liveness             after the nemesis healed every fault and the run
//                        quiesced, an operation may remain pending only if
//                        its submitting process crashed while it was open
//                        (even if that process has since restarted)
//   durability           every acknowledged write is still committed on some
//                        live replica — power cycles that lose unsynced
//                        storage writes must never roll back an acked op
//   protocol invariants  per-stack final-state checks supplied by the
//                        adapter: election safety / single steady leader,
//                        committed-prefix agreement, ...
#pragma once

#include <cstddef>
#include <string>
#include <vector>

#include "chaos/adapter.h"
#include "chaos/nemesis.h"

namespace cht::chaos {

struct InvariantReport {
  std::vector<std::string> violations;  // empty = pass
  // False iff the linearizability search exhausted `check_budget` before
  // reaching a verdict: the run is neither pass nor fail on that axis.
  bool checker_decided = true;
  // Completed reads excused by the exposure-window second pass (0 when the
  // full history linearized outright, or when the guard/profile made the
  // exposure accounting inapplicable).
  std::size_t reads_excused = 0;
};

// What the exposure-window accounting needs to know about the run: whether
// the replicas ran the clock-health guard, the synchrony parameters, and
// when the nemesis first broke and finally restored clock synchrony. The
// default (clock_guard = false, no skew) reproduces the legacy behavior
// exactly.
struct ExposureInput {
  bool clock_guard = false;  // RunSpec::clock_guard of the run
  Duration delta = Duration::zero();
  Duration epsilon = Duration::zero();
  // The profile's clock_skew_max: upper bound on any injected offset, and
  // on how long a monotonicity-clamped (frozen) clock lags real time after
  // the heal restored its offset.
  Duration skew_max = Duration::zero();
  // Earliest clock-offset injection; RealTime::max() = clocks never skewed
  // (no window: the full history must linearize even under an
  // allows_stale_reads profile).
  RealTime first_skew = RealTime::max();
  // When Nemesis::stop_and_heal restored every clock offset.
  RealTime heal_time = RealTime::max();
};

// Runs the full registry. `quiesced` is the result of await_quiesce after
// Nemesis::stop_and_heal(); `check_budget` bounds the linearizability
// search's explored states (0 = unlimited); `exposure` feeds the
// exposure-window accounting under allows_stale_reads profiles.
InvariantReport check_invariants(ClusterAdapter& cluster,
                                 const NemesisProfile& profile, bool quiesced,
                                 std::size_t check_budget = 0,
                                 const ExposureInput& exposure = {});

}  // namespace cht::chaos
