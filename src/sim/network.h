// Partially synchronous network.
//
// The paper's model: before an unknown global stabilization time (GST) the
// system is asynchronous -- messages can take arbitrarily long and can be
// lost; after GST every message delay is bounded by a known delta (as
// measured on any local clock; since clocks progress at real-time rate here,
// we bound real-time delay by delta). Messages are never corrupted and no
// spurious messages are generated.
//
// The network also supports fault injection used by robustness experiments:
// dropping all traffic on a directed link ("partitions") and message
// duplication before GST. Per-type delivery/send counters feed the
// message-locality experiments (E1, E5).
#pragma once

#include <cstdint>
#include <functional>
#include <map>
#include <set>
#include <string>
#include <utility>

#include "common/rng.h"
#include "common/time.h"
#include "sim/event_queue.h"
#include "sim/message.h"
#include "sim/trace.h"

namespace cht::sim {

struct NetworkConfig {
  // Real time at which the system stabilizes. Zero means "synchronous from
  // the start". Use RealTime::max() for a permanently asynchronous run.
  RealTime gst = RealTime::zero();

  // Post-GST delays: uniform in [delta_min, delta]. `delta` is the paper's
  // known upper bound on message delay.
  Duration delta_min = Duration::micros(100);
  Duration delta = Duration::millis(10);

  // Pre-GST behaviour.
  Duration pre_gst_delay_min = Duration::micros(100);
  Duration pre_gst_delay_max = Duration::millis(200);
  double pre_gst_loss_probability = 0.05;
  double pre_gst_duplicate_probability = 0.0;

  // A message sent before GST must still respect the post-GST bound once the
  // system has stabilized: we cap its arrival at gst + delta.
  // (This matches "there is a time after which every message delay <= delta";
  // messages in flight at GST arrive within delta after GST.)
};

struct MessageStats {
  std::int64_t sent = 0;
  std::int64_t delivered = 0;
  std::int64_t dropped = 0;
  std::map<std::string, std::int64_t> sent_by_type;

  std::int64_t sent_of(const std::string& type) const {
    auto it = sent_by_type.find(type);
    return it == sent_by_type.end() ? 0 : it->second;
  }
};

class Network {
 public:
  using DeliverFn = std::function<void(const Message&)>;

  Network(EventQueue& queue, Rng rng, NetworkConfig config)
      : queue_(queue), rng_(rng), config_(config) {}

  // Deliveries are handed to this callback (installed by the Simulation).
  void set_deliver_fn(DeliverFn fn) { deliver_ = std::move(fn); }

  void send(Message message);

  // Fault injection: while a directed link is down, messages on it are lost
  // (this models partitions / disconnections; using it after GST knowingly
  // violates the stabilization assumption, which is the point of the
  // robustness experiments).
  void set_link_down(ProcessId from, ProcessId to, bool down);
  void set_process_isolated(ProcessId p, bool isolated, int n);

  // One-shot extra delay on the next message matching (from,to); used by
  // targeted tests. Negative-free: adds on top of the sampled delay.
  void add_link_delay(ProcessId from, ProcessId to, Duration extra);

  const MessageStats& stats() const { return stats_; }
  void reset_stats() { stats_ = MessageStats{}; }

  const NetworkConfig& config() const { return config_; }
  void set_gst(RealTime gst) { config_.gst = gst; }
  // Runtime knobs for chaos schedules: adjust pre-GST misbehaviour rates
  // mid-run (they only bite while now < gst, e.g. after a GST shift).
  void set_pre_gst_duplicate_probability(double p) {
    config_.pre_gst_duplicate_probability = p;
  }
  void set_pre_gst_loss_probability(double p) {
    config_.pre_gst_loss_probability = p;
  }
  void set_trace(Trace* trace) { trace_ = trace; }

 private:
  Duration sample_delay(RealTime now, bool& lose, bool& duplicate);

  EventQueue& queue_;
  Rng rng_;
  NetworkConfig config_;
  DeliverFn deliver_;
  std::set<std::pair<int, int>> down_links_;
  std::map<std::pair<int, int>, Duration> extra_delay_;
  MessageStats stats_;
  Trace* trace_ = nullptr;
};

}  // namespace cht::sim
