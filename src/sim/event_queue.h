// Deterministic discrete-event queue.
//
// Events are ordered by (real time, insertion sequence), so two events at the
// same instant fire in insertion order and every run of the simulator is a
// deterministic function of its seed. Cancellation is supported through
// shared handles; cancelled events are skipped lazily at pop time.
#pragma once

#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <vector>

#include "common/time.h"

namespace cht::sim {

class EventQueue;

// Handle for cancelling a scheduled event. Default-constructed handles are
// inert. Copyable; cancelling any copy cancels the event.
class EventHandle {
 public:
  EventHandle() = default;
  void cancel() {
    if (cancelled_) *cancelled_ = true;
  }
  bool active() const { return cancelled_ != nullptr && !*cancelled_; }

 private:
  friend class EventQueue;
  explicit EventHandle(std::shared_ptr<bool> cancelled)
      : cancelled_(std::move(cancelled)) {}
  std::shared_ptr<bool> cancelled_;
};

class EventQueue {
 public:
  EventHandle schedule(RealTime at, std::function<void()> fn);

  // Runs the next non-cancelled event, advancing the queue clock.
  // Returns false if the queue is empty.
  bool step();

  RealTime now() const { return now_; }
  bool empty() const;
  std::size_t size() const { return heap_.size(); }  // includes cancelled

  // Real time of the next pending event; RealTime::max() if none.
  RealTime next_event_time() const;

 private:
  struct Event {
    RealTime at;
    std::uint64_t seq;
    std::function<void()> fn;
    std::shared_ptr<bool> cancelled;
  };
  struct Later {
    bool operator()(const Event& a, const Event& b) const {
      if (a.at != b.at) return a.at > b.at;
      return a.seq > b.seq;
    }
  };

  void drop_cancelled() const;

  mutable std::priority_queue<Event, std::vector<Event>, Later> heap_;
  RealTime now_ = RealTime::zero();
  std::uint64_t next_seq_ = 0;
};

}  // namespace cht::sim
