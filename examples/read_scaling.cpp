// Read scaling: the paper's second motivation for replication (Section 1)
// — "a process that requires the object can access its local copy" — only
// pays off if reads really are local. Because they are, aggregate read
// capacity grows with the number of replicas, while leader-forwarded reads
// bottleneck on one process.
//
// We run a fixed per-replica read rate and count how many reads the cluster
// completes within a simulated second, plus the messages each design puts
// on the network, as n grows.
#include <iostream>
#include <memory>

#include "harness/cluster.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "object/kv_object.h"

namespace {

using namespace cht;  // NOLINT: example brevity

struct Outcome {
  std::int64_t reads_completed;
  std::int64_t messages;
  double read_p99_ms;
};

Outcome run(int n, core::ReadPolicy policy) {
  harness::ClusterConfig config;
  config.n = n;
  config.seed = 1234;
  config.delta = Duration::millis(10);
  harness::Cluster cluster(config, std::make_shared<object::KVObject>(),
                           core::ConfigOverrides{.read_policy = policy});
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.submit(0, object::KVObject::put("page", "content"));
  cluster.await_quiesce(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));

  const auto msgs_before = cluster.sim().network().stats().sent;
  const auto reads_before = cluster.completed();
  // 100 reads per replica, spread over one simulated second.
  for (int burst = 0; burst < 100; ++burst) {
    for (int i = 0; i < n; ++i) {
      cluster.submit(i, object::KVObject::get("page"));
    }
    cluster.run_for(Duration::millis(10));
  }
  cluster.await_quiesce(Duration::seconds(30));

  Outcome out;
  out.reads_completed =
      static_cast<std::int64_t>(cluster.completed() - reads_before);
  out.messages =
      static_cast<std::int64_t>(cluster.sim().network().stats().sent -
                                msgs_before);
  metrics::LatencyRecorder lat;
  for (const auto& op : cluster.history().ops()) {
    if (op.completed() && op.op.kind == "get") lat.record(op.latency());
  }
  out.read_p99_ms = lat.p99().to_millis_f();
  return out;
}

}  // namespace

int main() {
  std::cout << "Read scaling: 100 reads/replica over 1 s, delta = 10 ms\n\n";
  metrics::Table table({"n", "local reads done", "local msgs", "local p99 (ms)",
                        "forwarded reads done", "fwd msgs", "fwd p99 (ms)"});
  for (int n : {3, 5, 7, 9}) {
    const Outcome local = run(n, core::ReadPolicy::kLocalLease);
    const Outcome fwd = run(n, core::ReadPolicy::kLeaderForward);
    table.add_row({std::to_string(n), std::to_string(local.reads_completed),
                   std::to_string(local.messages),
                   metrics::Table::num(local.read_p99_ms, 2),
                   std::to_string(fwd.reads_completed),
                   std::to_string(fwd.messages),
                   metrics::Table::num(fwd.read_p99_ms, 2)});
  }
  table.print(std::cout);
  std::cout << "\nEvery added replica adds read capacity at zero message\n"
               "cost with local reads; with forwarding, message load grows\n"
               "with reads and concentrates on the leader.\n";
  return 0;
}
