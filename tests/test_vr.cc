// Viewstamped Replication baseline: normal operation, view changes, the
// static-successor weakness the paper points out, and linearizability.
#include <gtest/gtest.h>

#include <memory>

#include "checker/linearizability.h"
#include "harness/vr_cluster.h"
#include "object/kv_object.h"
#include "object/register_object.h"

namespace cht {
namespace {

using harness::ClusterConfig;
using harness::VrCluster;

ClusterConfig base_config(std::uint64_t seed = 3) {
  ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = Duration::millis(10);
  return config;
}

TEST(VrTest, StartsInViewZeroWithPrimaryP0) {
  VrCluster cluster(base_config(), std::make_shared<object::RegisterObject>());
  cluster.run_for(Duration::millis(100));
  EXPECT_EQ(cluster.primary(), 0);
  EXPECT_EQ(cluster.replica(0).view(), 0);
}

TEST(VrTest, CommitsAndApplies) {
  VrCluster cluster(base_config(), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_primary(Duration::seconds(5)));
  for (int i = 0; i < 10; ++i) {
    cluster.submit(i % cluster.n(),
                   object::KVObject::put("k" + std::to_string(i), "v"));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  cluster.run_for(Duration::seconds(1));
  for (int i = 1; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.replica(i).applied_state().fingerprint(),
              cluster.replica(0).applied_state().fingerprint());
  }
}

TEST(VrTest, ViewChangeOnPrimaryCrash) {
  VrCluster cluster(base_config(7), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_primary(Duration::seconds(5)));
  cluster.submit(1, object::KVObject::put("k", "before"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  cluster.sim().crash(ProcessId(0));
  // The next view's primary is p1 (static order).
  const RealTime deadline = cluster.sim().now() + Duration::seconds(30);
  ASSERT_TRUE(cluster.sim().run_until(
      [&] { return cluster.primary() == 1; }, deadline));
  cluster.submit(2, object::KVObject::put("k", "after"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)));
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(VrTest, CommittedDataSurvivesViewChange) {
  VrCluster cluster(base_config(9), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_primary(Duration::seconds(5)));
  cluster.submit(1, object::KVObject::put("k", "must-survive"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  cluster.sim().crash(ProcessId(0));
  cluster.run_for(Duration::seconds(2));
  cluster.submit(2, object::KVObject::get("k"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)));
  EXPECT_EQ(*cluster.history().ops().back().response, "must-survive");
}

// The paper's S5 point: with the static view order, if the next several
// successors are partitioned away from the majority, VR cycles through
// ineffective views before recovering.
TEST(VrTest, CyclesThroughIneffectiveViewsWhenSuccessorsPartitioned) {
  // n = 7 so that a majority (4) stays connected after isolating the two
  // successors and crashing the primary.
  ClusterConfig config = base_config(11);
  config.n = 7;
  VrCluster cluster(config, std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_primary(Duration::seconds(5)));
  // Cut p1 and p2 (the next two static successors) off, then crash p0.
  cluster.sim().network().set_process_isolated(ProcessId(1), true, cluster.n());
  cluster.sim().network().set_process_isolated(ProcessId(2), true, cluster.n());
  cluster.sim().crash(ProcessId(0));
  const RealTime crash_at = cluster.sim().now();
  const RealTime deadline = crash_at + Duration::seconds(60);
  int new_primary = -1;
  ASSERT_TRUE(cluster.sim().run_until(
      [&] {
        new_primary = cluster.primary();
        return new_primary >= 3;
      },
      deadline));
  // Views 1 (p1) and 2 (p2) must have been skipped as ineffective: the
  // first working view is >= 3.
  EXPECT_GE(cluster.replica(new_primary).view(), 3);
  // And recovery took at least two extra view-change timeouts.
  EXPECT_GT(cluster.sim().now() - crash_at,
            2 * cluster.vr_config().view_change_timeout);
  cluster.submit(3, object::KVObject::put("k", "recovered"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)));
}

TEST(VrTest, MixedWorkloadLinearizable) {
  VrCluster cluster(base_config(13), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_primary(Duration::seconds(5)));
  for (int round = 0; round < 8; ++round) {
    for (int i = 0; i < cluster.n(); ++i) {
      if ((round + i) % 3 == 0) {
        cluster.submit(i, object::KVObject::put("k", "r" + std::to_string(round) +
                                                         "p" + std::to_string(i)));
      } else {
        cluster.submit(i, object::KVObject::get("k"));
      }
    }
    cluster.run_for(Duration::millis(30));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)));
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(VrTest, ReadsAreNeitherLocalNorFast) {
  // VR treats reads like writes: a follower read costs a request to the
  // primary plus a full Prepare round.
  VrCluster cluster(base_config(15), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_primary(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const auto before = cluster.sim().network().stats().sent;
  cluster.submit(2, object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  EXPECT_GE(cluster.sim().network().stats().sent - before, 3);
  EXPECT_GT(cluster.history().ops().back().latency(), Duration::zero());
}

}  // namespace
}  // namespace cht
