// Cluster-size sweeps: the protocol works at n = 1..9, tolerating
// floor((n-1)/2) crashes, with exactly one steady leader.
#include <gtest/gtest.h>

#include <memory>

#include "checker/linearizability.h"
#include "harness/cluster.h"
#include "object/kv_object.h"
#include "object/register_object.h"

namespace cht {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

class ScaleTest : public ::testing::TestWithParam<int> {};

ClusterConfig config_for(int n, std::uint64_t seed = 5) {
  ClusterConfig config;
  config.n = n;
  config.seed = seed;
  config.delta = Duration::millis(10);
  return config;
}

TEST_P(ScaleTest, ElectsOneLeaderCommitsAndReads) {
  const int n = GetParam();
  Cluster cluster(config_for(n), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(10)));
  int leaders = 0;
  for (int i = 0; i < n; ++i) {
    if (cluster.replica(i).is_steady_leader()) ++leaders;
  }
  EXPECT_EQ(leaders, 1);
  cluster.submit(0, object::RegisterObject::write("v"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  cluster.run_for(cluster.core_config().lease_renew_interval * 3);
  for (int i = 0; i < n; ++i) {
    cluster.submit(i, object::RegisterObject::read());
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  for (const auto& op : cluster.history().ops()) {
    if (cluster.model().is_read(op.op)) {
      EXPECT_EQ(*op.response, "v");
    }
  }
}

TEST_P(ScaleTest, ToleratesMaxMinorityCrashes) {
  const int n = GetParam();
  const int tolerable = (n - 1) / 2;
  if (tolerable == 0) GTEST_SKIP() << "n too small to crash anyone";
  Cluster cluster(config_for(n, 6), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(10)));
  for (int i = 0; i < tolerable; ++i) cluster.sim().crash(ProcessId(i));
  cluster.submit(n - 1, object::KVObject::put("k", "survives"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(60)));
  cluster.submit(n - 1, object::KVObject::get("k"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)));
  EXPECT_EQ(*cluster.history().ops().back().response, "survives");
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST_P(ScaleTest, LinearizableMixedWorkload) {
  const int n = GetParam();
  Cluster cluster(config_for(n, 8), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(10)));
  for (int step = 0; step < 12 * n; ++step) {
    const int proc = step % n;
    if (step % 4 == 0) {
      cluster.submit(proc, object::KVObject::put("k", std::to_string(step)));
    } else {
      cluster.submit(proc, object::KVObject::get("k"));
    }
    cluster.run_for(Duration::millis(5));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(60)));
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

INSTANTIATE_TEST_SUITE_P(N, ScaleTest, ::testing::Values(1, 2, 3, 5, 7, 9),
                         [](const auto& info) {
                           return "n" + std::to_string(info.param);
                         });

}  // namespace
}  // namespace cht
