// Batching and the liveness NoOp: RMW operations submitted concurrently are
// committed together; the new-leader NoOp guarantees read liveness even
// when client RMW traffic stops.
#include <gtest/gtest.h>

#include <memory>

#include "checker/linearizability.h"
#include "harness/cluster.h"
#include "object/counter_object.h"
#include "object/kv_object.h"
#include "object/register_object.h"

namespace cht {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

ClusterConfig base_config(std::uint64_t seed) {
  ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = Duration::millis(10);
  return config;
}

TEST(BatchingTest, ConcurrentSubmissionsShareBatches) {
  Cluster cluster(base_config(61), std::make_shared<object::CounterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const auto committed_before =
      cluster.replica(leader).metrics().value("batches_committed_as_leader");
  // 50 increments fired simultaneously from all processes.
  for (int i = 0; i < 50; ++i) {
    cluster.submit(i % cluster.n(), object::CounterObject::add(1));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  const auto committed_after =
      cluster.replica(leader).metrics().value("batches_committed_as_leader");
  const auto batches = committed_after - committed_before;
  EXPECT_LT(batches, 25) << "expected batching, got ~1 batch per op";
  EXPECT_GE(batches, 1);
  // All 50 increments applied exactly once.
  cluster.submit(leader, object::CounterObject::value());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  EXPECT_EQ(*cluster.history().ops().back().response, "50");
  // The add() responses must form a permutation of 1..50 (each RMW sees a
  // distinct state: no lost updates, no double-applies).
  std::set<std::string> seen;
  for (const auto& op : cluster.history().ops()) {
    if (op.op.kind == "add") {
      EXPECT_TRUE(seen.insert(*op.response).second)
          << "duplicate add response " << *op.response;
    }
  }
  EXPECT_EQ(seen.size(), 50u);
}

TEST(BatchingTest, ResponsesMatchBatchOrder) {
  Cluster cluster(base_config(62), std::make_shared<object::CounterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  for (int i = 0; i < 20; ++i) {
    cluster.submit(i % cluster.n(), object::CounterObject::add(1));
    if (i % 5 == 4) cluster.run_for(Duration::millis(30));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(10)));
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

// The liveness NoOp (paper line 37): a batch Prepared at a follower by a
// leader that dies before committing would otherwise block conflicting
// reads forever once RMW traffic stops; the successor's NoOp commits a
// batch with a number >= every pending batch, unblocking them.
TEST(BatchingTest, NoOpUnblocksReadsAfterLeaderCrash) {
  Cluster cluster(base_config(63), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const int reader = (leader + 1) % cluster.n();
  // Start a write and kill the leader while the Prepare is likely delivered
  // but the Commit is not.
  cluster.submit((leader + 2) % cluster.n(),
                 object::RegisterObject::write("in-flight"));
  cluster.run_for(Duration::millis(12));
  cluster.sim().crash(ProcessId(leader));
  // Issue a conflicting read at the follower; submit NO further RMWs: only
  // the new leader's NoOp (or its recovery commit of the pending batch) can
  // unblock it.
  cluster.submit(reader, object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(60)))
      << "read never completed: NoOp liveness broken";
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

TEST(BatchingTest, NoOpCommittedOnQuietLeadershipChange) {
  // Even with zero client traffic, a new leader commits its NoOp so that
  // lease batch numbers advance and reads stay live.
  Cluster cluster(base_config(64), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  const int first = cluster.steady_leader();
  // The first leader's own NoOp commits shortly after it enters steady
  // state.
  ASSERT_TRUE(cluster.sim().run_until(
      [&] { return cluster.replica(first).snapshot().max_known_batch >= 1; },
      cluster.sim().now() + Duration::seconds(5)));
  const BatchNumber before = cluster.replica(first).snapshot().max_known_batch;
  cluster.sim().crash(ProcessId(first));
  int second = -1;
  ASSERT_TRUE(cluster.sim().run_until(
      [&] {
        second = cluster.steady_leader();
        return second >= 0 && second != first;
      },
      cluster.sim().now() + Duration::seconds(30)));
  cluster.run_for(Duration::seconds(1));
  EXPECT_GT(cluster.replica(second).snapshot().max_known_batch, before)
      << "new leader should have committed a fresh NoOp batch";
}

}  // namespace
}  // namespace cht
