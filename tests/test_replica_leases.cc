// The read-lease mechanism: blocking bounds, conflict awareness, leaseholder
// tracking and reintegration.
#include <gtest/gtest.h>

#include <memory>

#include "checker/linearizability.h"
#include "harness/cluster.h"
#include "object/counter_object.h"
#include "object/kv_object.h"
#include "object/register_object.h"

namespace cht {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

ClusterConfig lease_config(std::uint64_t seed = 21) {
  ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = Duration::millis(10);
  config.epsilon = Duration::millis(1);
  return config;
}

// A read that lands while a conflicting RMW is pending blocks, but for at
// most 3*delta (paper Section 3, "Non-blocking reads").
TEST(LeaseTest, BlockedReadsBoundedBy3Delta) {
  Cluster cluster(lease_config(), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const int follower = (leader + 1) % cluster.n();
  // Fire writes continuously and interleave follower reads so that many
  // reads observe a pending conflicting batch. (Moderate count and spacing:
  // the final whole-history linearizability check is exponential in the
  // width of concurrent windows.)
  for (int i = 0; i < 100; ++i) {
    cluster.submit((leader + 2) % cluster.n(),
                   object::RegisterObject::write("v" + std::to_string(i)));
    cluster.run_for(Duration::millis(3));
    cluster.submit(follower, object::RegisterObject::read());
    cluster.run_for(Duration::millis(9));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(20)));
  const auto& metrics = cluster.replica(follower).metrics();
  EXPECT_GT(metrics.value("reads_blocked"), 0)
      << "test needs some blocked reads";
  const auto* block = metrics.find_histogram("span.read.block_us");
  ASSERT_NE(block, nullptr);
  EXPECT_LE(Duration::micros(block->max()), 3 * cluster.config().delta)
      << "a read blocked for longer than 3*delta";
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;
}

// Reads that do not conflict with in-flight RMW operations (almost) never
// block — the conflict predicate is semantic, not "any write blocks all
// reads". The tolerated residue: a LeaseGrant can overtake the Commit of
// the batch it references (both are broadcasts subject to independent
// delays — the paper's sequential loop issues the grant right after the
// commit too), forcing a wait of at most ~delta for that batch to arrive.
TEST(LeaseTest, NonConflictingReadsAlmostNeverBlock) {
  Cluster cluster(lease_config(22), std::make_shared<object::KVObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const int follower = (leader + 1) % cluster.n();
  int blocked = 0;
  for (int i = 0; i < 100; ++i) {
    // Writes hammer key "hot"; reads touch key "cold" — no conflicts.
    cluster.submit((leader + 2) % cluster.n(),
                   object::KVObject::put("hot", std::to_string(i)));
    cluster.run_for(Duration::millis(2));
    const auto before = cluster.replica(follower).metrics().value("reads_blocked");
    cluster.submit(follower, object::KVObject::get("cold"));
    blocked += static_cast<int>(
        cluster.replica(follower).metrics().value("reads_blocked") - before);
    cluster.run_for(Duration::millis(2));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(20)));
  EXPECT_LE(blocked, 10) << "conflict-free reads should essentially not block";
  // And any such block is the short grant-overtook-commit wait, not a full
  // conflicting-batch wait.
  EXPECT_LE(Duration::micros(cluster.replica(follower)
                                 .metrics()
                                 .find_histogram("span.read.block_us")
                                 ->max()),
            3 * cluster.config().delta / 2);
}

// Parity reads do not conflict with even increments (exact semantic
// conflicts via the transition function, per the paper's definition).
TEST(LeaseTest, SemanticConflictsCounterParity) {
  Cluster cluster(lease_config(23), std::make_shared<object::CounterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const int follower = (leader + 1) % cluster.n();
  int blocked = 0;
  for (int i = 0; i < 50; ++i) {
    cluster.submit((leader + 2) % cluster.n(), object::CounterObject::add(2));
    cluster.run_for(Duration::millis(2));
    const auto before = cluster.replica(follower).metrics().value("reads_blocked");
    cluster.submit(follower, object::CounterObject::parity());
    blocked += static_cast<int>(
        cluster.replica(follower).metrics().value("reads_blocked") - before);
    cluster.run_for(Duration::millis(2));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(20)));
  // Tolerate the short grant-overtook-commit waits (see the previous test);
  // semantic non-conflicts must never pay a full conflicting-batch wait.
  EXPECT_LE(blocked, 5);
  EXPECT_LE(Duration::micros(cluster.replica(follower)
                                 .metrics()
                                 .find_histogram("span.read.block_us")
                                 ->max()),
            3 * cluster.config().delta / 2);
  for (const auto& record : cluster.history().ops()) {
    if (record.op.kind == "parity") {
      EXPECT_EQ(*record.response, "even");
    }
  }
}

// A crashed leaseholder delays a commit at most once: the leader waits out
// its lease for the first write, drops it from the leaseholder set, and
// subsequent writes commit at full speed.
TEST(LeaseTest, CrashedLeaseholderDelaysWritesAtMostOnce) {
  Cluster cluster(lease_config(24), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const int victim = (leader + 1) % cluster.n();
  const int submitter = (leader + 2) % cluster.n();
  cluster.sim().crash(ProcessId(victim));

  // First write after the crash: pays the lease-expiry wait.
  const RealTime t0 = cluster.sim().now();
  cluster.submit(submitter, object::RegisterObject::write("first"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(20)));
  const Duration first_write = cluster.sim().now() - t0;

  // Subsequent writes: no leaseholder wait (victim was dropped).
  Duration worst_later = Duration::zero();
  for (int i = 0; i < 5; ++i) {
    const RealTime t = cluster.sim().now();
    cluster.submit(submitter,
                   object::RegisterObject::write("later" + std::to_string(i)));
    ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(20)));
    worst_later = std::max(worst_later, cluster.sim().now() - t);
  }
  EXPECT_GT(first_write, cluster.core_config().lease_period)
      << "first write should wait out the victim's lease";
  EXPECT_LT(worst_later, cluster.core_config().lease_period / 2)
      << "later writes must not wait for the crashed leaseholder again";
  EXPECT_FALSE(
      cluster.replica(leader).snapshot().leaseholders.contains(victim));
}

// A process dropped from the leaseholder set (here: temporarily partitioned)
// rejoins via LeaseRequest and serves local reads again.
TEST(LeaseTest, DroppedLeaseholderReintegrates) {
  Cluster cluster(lease_config(25), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const int victim = (leader + 1) % cluster.n();
  const int submitter = (leader + 2) % cluster.n();
  // Cut the victim off long enough to miss a Prepare round.
  cluster.sim().network().set_process_isolated(ProcessId(victim), true,
                                               cluster.n());
  cluster.submit(submitter, object::RegisterObject::write("while-cut"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(20)));
  EXPECT_FALSE(cluster.replica(leader).snapshot().leaseholders.contains(victim));
  // Heal; the victim asks back in on the next LeaseGrant it sees.
  cluster.sim().network().set_process_isolated(ProcessId(victim), false,
                                               cluster.n());
  const RealTime deadline = cluster.sim().now() + Duration::seconds(10);
  ASSERT_TRUE(cluster.sim().run_until(
      [&] {
        return cluster.replica(leader).snapshot().leaseholders.contains(victim);
      },
      deadline));
  // And it can serve a fresh local read.
  cluster.run_for(cluster.core_config().lease_renew_interval * 3);
  const auto blocked_before =
      cluster.replica(victim).metrics().value("reads_blocked");
  cluster.submit(victim, object::RegisterObject::read());
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  EXPECT_EQ(*cluster.history().ops().back().response, "while-cut");
  EXPECT_EQ(cluster.replica(victim).metrics().value("reads_blocked"),
            blocked_before);
}

// With the leader gone, follower leases expire and reads block (no stale
// reads!) until a new leader issues fresh leases.
TEST(LeaseTest, ReadsBlockWhileLeaderlessThenRecover) {
  Cluster cluster(lease_config(26), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.submit(0, object::RegisterObject::write("v"));
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(5)));
  const int leader = cluster.steady_leader();
  cluster.sim().crash(ProcessId(leader));
  // Wait until every lease has surely expired but (likely) before a new
  // leader finished initializing.
  cluster.run_for(cluster.core_config().lease_period +
                  cluster.config().epsilon);
  const int reader = (leader + 1) % cluster.n();
  if (!cluster.replica(reader).is_steady_leader()) {
    const auto blocked_before =
        cluster.replica(reader).metrics().value("reads_blocked");
    cluster.submit(reader, object::RegisterObject::read());
    // The read must not answer from a stale lease.
    EXPECT_GT(cluster.replica(reader).metrics().value("reads_blocked"),
              blocked_before);
  } else {
    cluster.submit(reader, object::RegisterObject::read());
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(30)));
  EXPECT_EQ(*cluster.history().ops().back().response, "v");
}

// Reads remain message-free even when they block on conflicting writes.
TEST(LeaseTest, BlockedReadsSendNoMessages) {
  Cluster cluster(lease_config(27), std::make_shared<object::RegisterObject>());
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();
  const int follower = (leader + 1) % cluster.n();

  // Baseline traffic over a quiet window with writes only.
  auto measure = [&](bool with_reads) {
    const auto before = cluster.sim().network().stats().sent;
    for (int i = 0; i < 40; ++i) {
      cluster.submit((leader + 2) % cluster.n(),
                     object::RegisterObject::write("v" + std::to_string(i)));
      if (with_reads) {
        cluster.run_for(Duration::millis(1));
        for (int r = 0; r < 25; ++r) {
          cluster.submit(follower, object::RegisterObject::read());
        }
      }
      cluster.run_for(Duration::millis(20));
    }
    cluster.await_quiesce(Duration::seconds(20));
    return cluster.sim().network().stats().sent - before;
  };
  const auto writes_only = measure(false);
  const auto with_thousand_reads = measure(true);
  // 1000 reads (many blocked) must add no messages beyond run-to-run noise
  // in background traffic.
  const double ratio =
      static_cast<double>(with_thousand_reads) / static_cast<double>(writes_only);
  EXPECT_LT(ratio, 1.05) << "reads generated network traffic";
}

}  // namespace
}  // namespace cht
