// E11 — RMW efficiency parity (paper Section 1).
//
// Claim: the algorithm "handles ... RMW operations about as efficiently as
// existing implementations of linearizable replicated objects". We run the
// same write-only workload through ours, Raft, and Viewstamped Replication
// on identical network conditions and compare commit latency and messages
// per committed operation — once with one write in flight at a time, and
// once with pipelined offered load (where batching kicks in).
#include <iostream>
#include <memory>

#include "common/bench_util.h"
#include "common/experiment.h"
#include "harness/vr_cluster.h"
#include "object/register_object.h"

namespace cht::bench {
namespace {

constexpr Duration kDelta = Duration::millis(10);

harness::ClusterConfig net_config(std::uint64_t seed) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = kDelta;
  return config;
}

struct RmwResult {
  metrics::LatencyRecorder latency;
  double messages_per_op;
};

// `pipelined`: submit `count` writes up front (batching allowed) instead of
// one at a time.
template <class ClusterT>
RmwResult measure(ClusterT& cluster, bool pipelined, int count) {
  const auto msgs_before = cluster.sim().network().stats().sent;
  RmwResult result;
  if (pipelined) {
    for (int i = 0; i < count; ++i) {
      cluster.submit(i % cluster.n(),
                     object::RegisterObject::write(std::to_string(i)));
    }
    cluster.await_quiesce(Duration::seconds(120));
    for (const auto& op : cluster.history().ops()) {
      if (op.completed()) result.latency.record(op.latency());
    }
  } else {
    for (int i = 0; i < count; ++i) {
      const RealTime t0 = cluster.sim().now();
      cluster.submit(i % cluster.n(),
                     object::RegisterObject::write(std::to_string(i)));
      cluster.await_quiesce(Duration::seconds(30));
      result.latency.record(cluster.sim().now() - t0);
    }
  }
  result.messages_per_op =
      static_cast<double>(cluster.sim().network().stats().sent - msgs_before) /
      count;
  return result;
}

template <class ClusterT, class AwaitFn>
RmwResult run(ClusterT& cluster, AwaitFn await_ready, bool pipelined,
              int count) {
  await_ready();
  cluster.run_for(Duration::seconds(1));
  return measure(cluster, pipelined, count);
}

void add_row(ExperimentResult& result, const std::string& name,
             const std::string& label, const RmwResult& r) {
  result.row({name, ms2(r.latency.p50()), ms2(r.latency.p99()),
              metrics::Table::num(r.messages_per_op, 1)});
  result.latency(label, r.latency);
  result.metric(label + "_msgs_per_op", r.messages_per_op);
}

}  // namespace
}  // namespace cht::bench

int main(int argc, char** argv) {
  using namespace cht;
  using namespace cht::bench;

  const BenchArgs args = parse_bench_args(argc, argv);
  ExperimentResult result("rmw_cost", args);
  const int count = result.scaled(50, 12);

  for (const bool pipelined : {false, true}) {
    result.begin(
        pipelined ? "E11: RMW cost parity — pipelined (writes offered at "
                    "once; batching allowed)"
                  : "E11: RMW cost parity — closed loop (one write in flight)",
        "Claim (paper S1): RMW operations are handled about as efficiently\n"
        "as existing linearizable replication algorithms. Same write\n"
        "workload on identical simulated networks (delta = 10 ms, n = 5).\n"
        "Note: messages/op includes each protocol's fixed background\n"
        "traffic (heartbeats, leases, supports) amortized over the writes.");
    result.columns({"algorithm", "p50 (ms)", "p99 (ms)", "msgs/op"});
    const std::string suffix = pipelined ? "-pipelined" : "-closed";
    {
      harness::Cluster cluster(net_config(3),
                               std::make_shared<object::RegisterObject>());
      add_row(result, "ours", "ours" + suffix,
              run(cluster,
                  [&] { cluster.await_steady_leader(Duration::seconds(10)); },
                  pipelined, count));
      result.observe("ours" + suffix, cluster);
    }
    {
      harness::RaftCluster cluster(net_config(3),
                                   std::make_shared<object::RegisterObject>());
      add_row(result, "raft", "raft" + suffix,
              run(cluster,
                  [&] { cluster.await_leader(Duration::seconds(10)); },
                  pipelined, count));
      result.observe("raft" + suffix, cluster);
    }
    {
      harness::VrCluster cluster(net_config(3),
                                 std::make_shared<object::RegisterObject>());
      add_row(result, "viewstamped replication", "vr" + suffix,
              run(cluster,
                  [&] { cluster.await_primary(Duration::seconds(10)); },
                  pipelined, count));
      result.observe("vr" + suffix, cluster);
    }
    if (pipelined) {
      result.note(
          "Expected shape: same order of magnitude across all three\n"
          "(one forward hop when the submitter is a follower, plus one\n"
          "round to a majority, ~2-3*delta end to end); ours batches\n"
          "aggressively in the pipelined case.");
    }
    result.end();
  }
  return result.finish();
}
