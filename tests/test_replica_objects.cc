// Every object model, run through the real replication protocol with a
// mixed workload and checked for linearizability — exercising each model's
// conflict predicate against real pending batches.
#include <gtest/gtest.h>

#include <memory>

#include "checker/linearizability.h"
#include "common/rng.h"
#include "harness/cluster.h"
#include "object/bank_object.h"
#include "object/counter_object.h"
#include "object/kv_object.h"
#include "object/lock_object.h"
#include "object/queue_object.h"
#include "object/register_object.h"

namespace cht {
namespace {

using harness::Cluster;
using harness::ClusterConfig;

ClusterConfig base_config(std::uint64_t seed) {
  ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = Duration::millis(10);
  return config;
}

// Drives `steps` operations produced by `next_op` and checks the history.
void run_and_check(std::shared_ptr<const object::ObjectModel> model,
                   std::uint64_t seed,
                   const std::function<object::Operation(Rng&, int)>& next_op,
                   int steps = 60) {
  Cluster cluster(base_config(seed), model);
  ASSERT_TRUE(cluster.await_steady_leader(Duration::seconds(5)));
  cluster.run_for(Duration::seconds(1));
  Rng rng(seed * 97 + 3);
  for (int step = 0; step < steps; ++step) {
    cluster.submit(static_cast<int>(rng.next_below(5)), next_op(rng, step));
    cluster.run_for(Duration::millis(rng.next_in(2, 25)));
  }
  ASSERT_TRUE(cluster.await_quiesce(Duration::seconds(60)));
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << model->name() << ": "
                                   << result.explanation;
  // All replicas converge.
  cluster.run_for(Duration::seconds(1));
  for (int i = 1; i < cluster.n(); ++i) {
    EXPECT_EQ(cluster.replica(i).applied_state().fingerprint(),
              cluster.replica(0).applied_state().fingerprint());
  }
}

TEST(ObjectIntegrationTest, Register) {
  run_and_check(std::make_shared<object::RegisterObject>(), 71,
                [](Rng& rng, int step) -> object::Operation {
                  return rng.next_bool(0.6)
                             ? object::RegisterObject::read()
                             : object::RegisterObject::write(
                                   std::to_string(step));
                });
}

TEST(ObjectIntegrationTest, Counter) {
  run_and_check(std::make_shared<object::CounterObject>(), 72,
                [](Rng& rng, int) -> object::Operation {
                  const double roll = rng.next_double();
                  if (roll < 0.3) return object::CounterObject::value();
                  if (roll < 0.5) return object::CounterObject::parity();
                  return object::CounterObject::add(rng.next_in(-2, 3));
                });
}

TEST(ObjectIntegrationTest, Bank) {
  const std::vector<std::string> accounts = {"alice", "bob", "carol"};
  run_and_check(std::make_shared<object::BankObject>(), 73,
                [accounts](Rng& rng, int) -> object::Operation {
                  const auto& a = accounts[rng.next_below(accounts.size())];
                  const auto& b = accounts[rng.next_below(accounts.size())];
                  const double roll = rng.next_double();
                  if (roll < 0.35) return object::BankObject::balance(a);
                  if (roll < 0.45) return object::BankObject::total();
                  if (roll < 0.75) {
                    return object::BankObject::deposit(a, rng.next_in(1, 50));
                  }
                  return object::BankObject::transfer(a, b, rng.next_in(1, 30));
                });
}

TEST(ObjectIntegrationTest, Lock) {
  run_and_check(std::make_shared<object::LockObject>(), 74,
                [](Rng& rng, int) -> object::Operation {
                  const double roll = rng.next_double();
                  const std::string who =
                      "w" + std::to_string(rng.next_below(3));
                  if (roll < 0.4) return object::LockObject::holder();
                  if (roll < 0.7) return object::LockObject::try_acquire(who);
                  return object::LockObject::release(who);
                });
}

TEST(ObjectIntegrationTest, Queue) {
  run_and_check(std::make_shared<object::QueueObject>(), 75,
                [](Rng& rng, int step) -> object::Operation {
                  const double roll = rng.next_double();
                  if (roll < 0.25) return object::QueueObject::front();
                  if (roll < 0.4) return object::QueueObject::length();
                  if (roll < 0.75) {
                    return object::QueueObject::enqueue(std::to_string(step));
                  }
                  return object::QueueObject::dequeue();
                });
}

TEST(ObjectIntegrationTest, KVWithDeletesAndCas) {
  run_and_check(std::make_shared<object::KVObject>(), 76,
                [](Rng& rng, int step) -> object::Operation {
                  const std::string key(1, static_cast<char>('a' + rng.next_below(3)));
                  const double roll = rng.next_double();
                  if (roll < 0.4) return object::KVObject::get(key);
                  if (roll < 0.5) return object::KVObject::size();
                  if (roll < 0.75) {
                    return object::KVObject::put(key, std::to_string(step));
                  }
                  if (roll < 0.9) return object::KVObject::del(key);
                  return object::KVObject::cas(key, "", std::to_string(step));
                });
}

}  // namespace
}  // namespace cht
