// chtread_sim — command-line scenario runner.
//
// Runs a configurable simulated cluster and prints a summary: latencies,
// message traffic, blocking statistics, and a linearizability verdict.
// With --metrics-out=PATH it also writes the versioned bench-artifact JSON
// (schema cht.bench.v1: merged per-replica metric registries, protocol-phase
// span histograms, message counts by type, latency percentiles).
//
// Usage:
//   chtread_sim [--n=5] [--delta-ms=10] [--epsilon-ms=1] [--seed=1]
//               [--protocol=core|raft|vr]
//               [--reads=core-local|core-forward|core-anypending|
//                raft-readindex|raft-lease]
//               [--workload=read-heavy|write-heavy|mixed]
//               [--ops=500] [--gst-ms=0] [--loss=0.05]
//               [--crash-leader-at-ms=N] [--check=on|off] [--trace=N]
//               [--metrics-out=PATH.json]
#include <cstring>
#include <iostream>
#include <memory>
#include <string>

#include "checker/linearizability.h"
#include "common/experiment.h"
#include "common/rng.h"
#include "harness/cluster.h"
#include "harness/raft_cluster.h"
#include "harness/vr_cluster.h"
#include "metrics/stats.h"
#include "metrics/table.h"
#include "object/kv_object.h"

namespace {

using namespace cht;  // NOLINT: tool brevity

struct Options {
  int n = 5;
  std::int64_t delta_ms = 10;
  std::int64_t epsilon_ms = 1;
  std::uint64_t seed = 1;
  std::string protocol = "core";
  std::string reads = "core-local";
  std::string workload = "read-heavy";
  int ops = 500;
  std::int64_t gst_ms = 0;
  double loss = 0.05;
  std::int64_t crash_leader_at_ms = -1;
  bool check = true;
  int trace = 0;  // dump last N protocol trace events (0 = off)
  std::string metrics_out;  // artifact path; empty = no artifact
};

bool parse_flag(const std::string& arg, const std::string& name,
                std::string& out) {
  const std::string prefix = "--" + name + "=";
  if (arg.rfind(prefix, 0) != 0) return false;
  out = arg.substr(prefix.size());
  return true;
}

Options parse(int argc, char** argv) {
  Options options;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    std::string value;
    if (parse_flag(arg, "n", value)) {
      options.n = std::stoi(value);
    } else if (parse_flag(arg, "delta-ms", value)) {
      options.delta_ms = std::stoll(value);
    } else if (parse_flag(arg, "epsilon-ms", value)) {
      options.epsilon_ms = std::stoll(value);
    } else if (parse_flag(arg, "seed", value)) {
      options.seed = std::stoull(value);
    } else if (parse_flag(arg, "protocol", value)) {
      options.protocol = value;
    } else if (parse_flag(arg, "reads", value)) {
      options.reads = value;
    } else if (parse_flag(arg, "workload", value)) {
      options.workload = value;
    } else if (parse_flag(arg, "ops", value)) {
      options.ops = std::stoi(value);
    } else if (parse_flag(arg, "gst-ms", value)) {
      options.gst_ms = std::stoll(value);
    } else if (parse_flag(arg, "loss", value)) {
      options.loss = std::stod(value);
    } else if (parse_flag(arg, "crash-leader-at-ms", value)) {
      options.crash_leader_at_ms = std::stoll(value);
    } else if (parse_flag(arg, "check", value)) {
      options.check = value != "off";
    } else if (parse_flag(arg, "trace", value)) {
      options.trace = std::stoi(value);
    } else if (parse_flag(arg, "metrics-out", value)) {
      options.metrics_out = value;
    } else if (arg == "--help" || arg == "-h") {
      std::cout << "see the usage comment at the top of tools/chtread_sim.cc\n";
      std::exit(0);
    } else {
      std::cerr << "unknown flag: " << arg << "\n";
      std::exit(2);
    }
  }
  return options;
}

harness::ClusterConfig cluster_config(const Options& options) {
  harness::ClusterConfig config;
  config.n = options.n;
  config.seed = options.seed;
  config.delta = Duration::millis(options.delta_ms);
  config.epsilon = Duration::millis(options.epsilon_ms);
  config.gst = RealTime::zero() + Duration::millis(options.gst_ms);
  config.pre_gst_loss = options.loss;
  return config;
}

double read_fraction(const std::string& workload) {
  if (workload == "read-heavy") return 0.9;
  if (workload == "write-heavy") return 0.1;
  return 0.5;  // mixed
}

// Drives any harness exposing submit/run_for/await_quiesce/sim/history.
template <class ClusterT>
int drive(ClusterT& cluster, const Options& options,
          const std::function<int()>& leader_of) {
  if (options.trace > 0) {
    // Record protocol-level events only (network tracing would dwarf them).
    cluster.sim().trace().enable(/*include_network=*/false);
  }
  Rng rng(options.seed * 31 + 1);
  const double reads = read_fraction(options.workload);
  bool crashed = false;
  for (int i = 0; i < options.ops; ++i) {
    const int proc = static_cast<int>(rng.next_below(
        static_cast<std::uint64_t>(options.n)));
    if (cluster.replica(proc).crashed()) continue;
    if (rng.next_double() < reads) {
      cluster.submit(proc, object::KVObject::get(
                               "k" + std::to_string(rng.next_in(0, 3))));
    } else {
      cluster.submit(proc,
                     object::KVObject::put("k" + std::to_string(rng.next_in(0, 3)),
                                           "v" + std::to_string(i)));
    }
    cluster.run_for(Duration::millis(rng.next_in(2, 20)));
    if (!crashed && options.crash_leader_at_ms >= 0 &&
        cluster.sim().now() >=
            RealTime::zero() + Duration::millis(options.crash_leader_at_ms)) {
      const int leader = leader_of();
      if (leader >= 0) {
        std::cout << "[crash] killing leader p" << leader << " at "
                  << cluster.sim().now().to_millis_f() << " ms\n";
        cluster.sim().crash(ProcessId(leader));
        crashed = true;
      }
    }
  }
  const bool quiesced = cluster.await_quiesce(Duration::seconds(300));
  if (options.trace > 0) {
    std::cout << "\n--- last " << options.trace
              << " protocol trace events (leader/batch/lease/crash) ---\n";
    cluster.sim().trace().dump(std::cout,
                               static_cast<std::size_t>(options.trace));
    std::cout << "\n";
  }

  metrics::LatencyRecorder read_lat, write_lat;
  std::size_t pending = 0;
  for (const auto& op : cluster.history().ops()) {
    if (!op.completed()) {
      ++pending;
      continue;
    }
    (op.op.kind == "get" ? read_lat : write_lat).record(op.latency());
  }
  cht::bench::ExperimentResult result("sim", options.metrics_out,
                                      /*smoke=*/false);
  result.begin("chtread_sim: protocol=" + options.protocol +
                   " workload=" + options.workload,
               "seed=" + std::to_string(options.seed) +
                   " n=" + std::to_string(options.n) +
                   " delta=" + std::to_string(options.delta_ms) + "ms");
  result.columns({"metric", "value"});
  result.row({"simulated time (s)",
              metrics::Table::num(cluster.sim().now().to_seconds_f(), 2)});
  result.row({"operations completed",
              metrics::Table::num(static_cast<std::int64_t>(
                  cluster.completed()))});
  result.row({"operations pending",
              metrics::Table::num(static_cast<std::int64_t>(pending))});
  if (!read_lat.empty()) {
    result.row({"read p50/p99 (ms)",
                metrics::Table::num(read_lat.p50().to_millis_f(), 2) + " / " +
                    metrics::Table::num(read_lat.p99().to_millis_f(), 2)});
  }
  if (!write_lat.empty()) {
    result.row({"write p50/p99 (ms)",
                metrics::Table::num(write_lat.p50().to_millis_f(), 2) + " / " +
                    metrics::Table::num(write_lat.p99().to_millis_f(), 2)});
  }
  result.row({"messages sent",
              metrics::Table::num(cluster.sim().network().stats().sent)});
  result.end();

  result.metric("ops_completed",
                static_cast<std::int64_t>(cluster.completed()));
  result.metric("ops_pending", static_cast<std::int64_t>(pending));
  result.metric("simulated_time_us", (cluster.sim().now() - RealTime::zero())
                                         .to_micros());
  result.latency("reads", read_lat);
  result.latency("rmws", write_lat);
  if constexpr (requires { cluster.overrides(); }) {
    result.config(options.protocol, cluster.config(), cluster.overrides());
  } else {
    result.config(options.protocol, cluster.config());
  }
  result.observe(options.protocol, cluster);

  if (!quiesced) {
    std::cout << "note: some operations never completed (expected when the\n"
              << "submitting process crashed or no majority is connected)\n";
  }
  int exit_code = 0;
  if (options.check) {
    const auto check =
        checker::check_linearizable(cluster.model(), cluster.history().ops());
    std::cout << "linearizable: " << (check.linearizable ? "YES" : "NO");
    if (!check.linearizable) std::cout << "  (" << check.explanation << ")";
    std::cout << "\n";
    result.metric("linearizable",
                  static_cast<std::int64_t>(check.linearizable ? 1 : 0));
    exit_code = check.linearizable ? 0 : 1;
  }
  if (!options.metrics_out.empty()) {
    const int finish_code = result.finish();
    if (exit_code == 0) exit_code = finish_code;
  }
  return exit_code;
}

}  // namespace

int main(int argc, char** argv) {
  const Options options = parse(argc, argv);
  auto model = std::make_shared<object::KVObject>();
  std::cout << "chtread_sim: protocol=" << options.protocol
            << " reads=" << options.reads << " n=" << options.n
            << " delta=" << options.delta_ms << "ms seed=" << options.seed
            << "\n";

  if (options.protocol == "core") {
    core::ConfigOverrides overrides;
    if (options.reads == "core-forward") {
      overrides.read_policy = core::ReadPolicy::kLeaderForward;
    } else if (options.reads == "core-anypending") {
      overrides.read_policy = core::ReadPolicy::kAnyPendingBlocks;
    }
    harness::Cluster cluster(cluster_config(options), model, overrides);
    cluster.await_steady_leader(Duration::seconds(30));
    return drive(cluster, options, [&] { return cluster.steady_leader(); });
  }
  if (options.protocol == "raft") {
    const raft::ReadMode mode = options.reads == "raft-lease"
                                    ? raft::ReadMode::kLeaderLease
                                    : raft::ReadMode::kReadIndex;
    harness::RaftCluster cluster(cluster_config(options), model, mode);
    cluster.await_leader(Duration::seconds(30));
    return drive(cluster, options, [&] { return cluster.leader(); });
  }
  if (options.protocol == "vr") {
    harness::VrCluster cluster(cluster_config(options), model);
    cluster.await_primary(Duration::seconds(30));
    return drive(cluster, options, [&] { return cluster.primary(); });
  }
  std::cerr << "unknown protocol: " << options.protocol << "\n";
  return 2;
}
