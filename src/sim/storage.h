// Simulated per-process stable storage with explicit fsync semantics.
//
// The paper assumes crash-stop processes; our crash-recovery extension gives
// every process a StableStorage holding (a) keyed records and (b) an append
// log. Writes are buffered (the "OS page cache") until sync() makes them
// durable. When the owning process crashes, the simulation calls
// lose_unsynced_writes(): each unsynced keyed write is lost independently and
// the unsynced log suffix is cut at a seed-drawn point (the record at the cut
// is "torn" — partially written, discarded by the checksum on recovery —
// together with everything after it). What survives is exactly what the next
// incarnation of the process observes after Simulation::restart.
//
// Determinism: each storage owns a private Rng derived from the simulation
// seed and the process index. It never draws from the simulation's global
// stream, so adding storage (or crashing with unsynced writes) perturbs no
// existing seed's event interleaving.
#pragma once

#include <cstdint>
#include <map>
#include <optional>
#include <string>
#include <vector>

#include "common/rng.h"
#include "common/time.h"

namespace cht::sim {

struct StorageConfig {
  // Simulated fsync cost (base value). Zero (the default) models an
  // instantaneous sync: sync() is a plain synchronous call and
  // Process::sync_storage runs its continuation inline, scheduling no event.
  // Nonzero latency delays continuations on the simulation timeline; each
  // process pays a deterministic per-process latency within +/-25% of this
  // base, drawn from a private splitmix stream over (sim seed, process
  // index) — never from the simulation Rng — so turning latency on or off
  // perturbs none of an existing seed's other random draws.
  Duration sync_latency = Duration::zero();
  // Each keyed write that was never synced is lost independently with this
  // probability when the process crashes (reverting the key to its last
  // durable value).
  double unsynced_key_loss = 0.5;
  // Group commit: durability requests issued through Process::request_sync
  // while an earlier sync's latency window is still in flight coalesce into
  // one following sync() covering all of them, whose completion releases the
  // whole ack burst. false selects the naive discipline: every request
  // issues its own sync immediately (queueing at the device), and protocols
  // additionally sync records that would normally ride along with the next
  // ack-critical sync. At zero sync latency the two behave identically.
  bool group_commit = true;
};

class StableStorage {
 public:
  StableStorage(std::uint64_t sim_seed, int process_index,
                StorageConfig config);

  // --- Keyed records ------------------------------------------------------
  // Current view (read-your-writes: a process sees its own unsynced writes).
  void write(const std::string& key, const std::string& value);
  void erase(const std::string& key);
  std::optional<std::string> read(const std::string& key) const;
  // All current keys with the given prefix, in order.
  std::vector<std::string> keys_with_prefix(const std::string& prefix) const;

  // --- Append log ---------------------------------------------------------
  void append(const std::string& record);
  // Rewinds the log to new_size records (conflict rewrite, e.g. Raft log
  // truncation). May cut below the durable prefix; the truncation itself
  // becomes durable at the next sync().
  void truncate_log(std::size_t new_size);
  const std::vector<std::string>& log() const { return log_; }
  std::size_t log_size() const { return log_.size(); }

  // --- Durability ---------------------------------------------------------
  // Makes everything written so far durable.
  void sync();
  bool dirty() const { return !dirty_keys_.empty() || log_dirty(); }
  std::int64_t fsyncs() const { return fsyncs_; }
  const StorageConfig& config() const { return config_; }

  // This process's actual fsync latency: the configured base stretched by a
  // deterministic per-process factor in [0.75, 1.25]. A zero base stays
  // exactly zero.
  Duration effective_sync_latency() const { return sync_latency_; }

  // Device-time model used by Process::sync_storage: fsync cost is paid
  // serially at the (single) storage device, so a sync issued while an
  // earlier one is still in flight queues behind it. Returns the completion
  // time of a sync issued at now_us and accrues the total stall (queueing +
  // latency) into sync_stall_us(). Only meaningful with nonzero latency.
  std::int64_t sync_completion_us(std::int64_t now_us);
  // Cumulative time continuations spent waiting on sync completions.
  std::int64_t sync_stall_us() const { return sync_stall_us_; }

  // Group-commit observability: one sample per covering sync issued through
  // Process::request_sync, counting how many durability requests it covered
  // (1 = no coalescing). Sample counts keyed by width, in width order;
  // harnesses fold these into the "storage.flush_width" histogram.
  void note_flush_width(std::size_t width) { ++flush_widths_[width]; }
  const std::map<std::size_t, std::int64_t>& flush_widths() const {
    return flush_widths_;
  }

  // Called by the simulation when the owning process crashes. Applies the
  // seed-deterministic loss/tearing of unsynced writes described above.
  void lose_unsynced_writes();

 private:
  bool log_dirty() const {
    return log_.size() != durable_log_size_ || log_truncated_below_durable_;
  }

  StorageConfig config_;
  Duration sync_latency_ = Duration::zero();
  std::int64_t device_free_at_us_ = 0;
  std::int64_t sync_stall_us_ = 0;
  Rng rng_;
  // Current keyed view. Durable state is reconstructed at crash time from
  // dirty_keys_, which remembers each dirty key's last durable value
  // (nullopt = key absent durably).
  std::map<std::string, std::string> records_;
  std::map<std::string, std::optional<std::string>> dirty_keys_;
  std::vector<std::string> log_;
  std::size_t durable_log_size_ = 0;
  bool log_truncated_below_durable_ = false;
  std::int64_t fsyncs_ = 0;
  std::map<std::size_t, std::int64_t> flush_widths_;
};

// --- Record codec ----------------------------------------------------------
// Length-prefixed field packing ("<len>:<bytes>" per field, concatenated) so
// protocols can serialize structured records without inventing ad-hoc escape
// schemes. decode_fields asserts on malformed input (storage never corrupts
// within a record; torn records are dropped whole).
std::string encode_fields(const std::vector<std::string>& fields);
std::vector<std::string> decode_fields(const std::string& record);

}  // namespace cht::sim
