// Viewstamped Replication under adversarial conditions: pre-GST asynchrony
// and loss, primary crashes — safety (linearizability, log prefix
// agreement) must hold and liveness must return after stabilization.
#include <gtest/gtest.h>

#include <memory>

#include "checker/linearizability.h"
#include "common/rng.h"
#include "harness/vr_cluster.h"
#include "object/kv_object.h"

namespace cht {
namespace {

using harness::ClusterConfig;
using harness::VrCluster;

class VrChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(VrChaosTest, LinearizableUnderChaosAndCrash) {
  ClusterConfig config;
  config.n = 5;
  config.seed = GetParam();
  config.delta = Duration::millis(10);
  config.gst = RealTime::zero() + Duration::seconds(1);
  config.pre_gst_loss = 0.15;
  config.pre_gst_delay_max = Duration::millis(120);
  VrCluster cluster(config, std::make_shared<object::KVObject>());
  Rng rng(GetParam() * 131 + 17);

  bool crashed = false;
  for (int step = 0; step < 50; ++step) {
    const int proc = static_cast<int>(rng.next_below(5));
    if (cluster.replica(proc).crashed()) continue;
    const std::string key = rng.next_bool(0.5) ? "k1" : "k2";
    if (rng.next_bool(0.5)) {
      cluster.submit(proc, object::KVObject::get(key));
    } else {
      cluster.submit(proc,
                     object::KVObject::put(key, "s" + std::to_string(step)));
    }
    const bool pre_gst = cluster.sim().now() < config.gst;
    cluster.run_for(Duration::millis(pre_gst ? rng.next_in(60, 140)
                                             : rng.next_in(20, 80)));
    if (!crashed && step == 25) {
      const int primary = cluster.primary();
      if (primary >= 0) {
        cluster.sim().crash(ProcessId(primary));
        crashed = true;
      }
    }
  }
  const bool quiesced = cluster.await_quiesce(Duration::seconds(120));
  if (!quiesced) {
    for (const auto& op : cluster.history().ops()) {
      if (!op.completed()) {
        EXPECT_TRUE(cluster.replica(op.process.index()).crashed())
            << op.process << " op never completed";
      }
    }
  }
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  EXPECT_TRUE(result.linearizable) << result.explanation;

  // Committed log prefixes agree across survivors.
  cluster.run_for(Duration::seconds(1));
  int reference = -1;
  for (int i = 0; i < cluster.n(); ++i) {
    if (!cluster.replica(i).crashed()) {
      reference = i;
      break;
    }
  }
  ASSERT_GE(reference, 0);
  const auto& ref_log = cluster.replica(reference).log();
  const std::int64_t ref_commit = cluster.replica(reference).commit_number();
  for (int i = reference + 1; i < cluster.n(); ++i) {
    if (cluster.replica(i).crashed()) continue;
    const auto& log = cluster.replica(i).log();
    const std::int64_t upto =
        std::min(ref_commit, cluster.replica(i).commit_number());
    for (std::int64_t j = 0; j < upto; ++j) {
      ASSERT_EQ(log.at(static_cast<std::size_t>(j)),
                ref_log.at(static_cast<std::size_t>(j)))
          << "committed prefix divergence at " << j + 1 << " on replica " << i;
    }
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, VrChaosTest,
                         ::testing::Values(1u, 2u, 3u, 4u, 5u, 6u));

}  // namespace
}  // namespace cht
