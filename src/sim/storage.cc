#include "sim/storage.h"

#include <utility>

#include "common/assert.h"

namespace cht::sim {
namespace {

// splitmix64 — derives the storage's private seed from (sim seed, process
// index) without touching the simulation's global Rng stream.
std::uint64_t mix(std::uint64_t x) {
  x += 0x9e3779b97f4a7c15ULL;
  x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9ULL;
  x = (x ^ (x >> 27)) * 0x94d049bb133111ebULL;
  return x ^ (x >> 31);
}

constexpr std::uint64_t kStorageStream = 0x73746f7261676531ULL;  // "storage1"
// Separate stream for the per-process fsync-latency draw: it must not
// consume from the crash-loss rng_, so enabling nonzero sync latency leaves
// every existing seed's loss/tearing draw sequence untouched.
constexpr std::uint64_t kSyncLatencyStream = 0x73796e636c617431ULL;  // "synclat1"

// The per-process fsync latency: base stretched by a deterministic factor in
// [0.75, 1.25] derived from (sim seed, process index). Integer permille
// arithmetic keeps the result exact (and reproducible) in microseconds.
Duration draw_sync_latency(std::uint64_t sim_seed, int process_index,
                           Duration base) {
  if (base == Duration::zero()) return Duration::zero();
  const std::uint64_t u = mix(mix(sim_seed ^ kSyncLatencyStream) +
                              static_cast<std::uint64_t>(process_index));
  const std::int64_t permille = 750 + static_cast<std::int64_t>(u % 501);
  const std::int64_t us = base.to_micros() * permille / 1000;
  return Duration::micros(us < 1 ? 1 : us);
}

}  // namespace

StableStorage::StableStorage(std::uint64_t sim_seed, int process_index,
                             StorageConfig config)
    : config_(config),
      sync_latency_(
          draw_sync_latency(sim_seed, process_index, config.sync_latency)),
      rng_(mix(mix(sim_seed ^ kStorageStream) +
               static_cast<std::uint64_t>(process_index))) {}

std::int64_t StableStorage::sync_completion_us(std::int64_t now_us) {
  const std::int64_t start =
      now_us > device_free_at_us_ ? now_us : device_free_at_us_;
  const std::int64_t done = start + sync_latency_.to_micros();
  device_free_at_us_ = done;
  sync_stall_us_ += done - now_us;
  return done;
}

void StableStorage::write(const std::string& key, const std::string& value) {
  auto it = records_.find(key);
  if (!dirty_keys_.count(key)) {
    dirty_keys_[key] = it == records_.end()
                           ? std::optional<std::string>{}
                           : std::optional<std::string>{it->second};
  }
  records_[key] = value;
}

void StableStorage::erase(const std::string& key) {
  auto it = records_.find(key);
  if (it == records_.end()) return;
  if (!dirty_keys_.count(key)) dirty_keys_[key] = it->second;
  records_.erase(it);
}

std::optional<std::string> StableStorage::read(const std::string& key) const {
  auto it = records_.find(key);
  if (it == records_.end()) return std::nullopt;
  return it->second;
}

std::vector<std::string> StableStorage::keys_with_prefix(
    const std::string& prefix) const {
  std::vector<std::string> keys;
  for (auto it = records_.lower_bound(prefix); it != records_.end(); ++it) {
    if (it->first.compare(0, prefix.size(), prefix) != 0) break;
    keys.push_back(it->first);
  }
  return keys;
}

void StableStorage::append(const std::string& record) {
  log_.push_back(record);
}

void StableStorage::truncate_log(std::size_t new_size) {
  CHT_ASSERT(new_size <= log_.size(), "truncate_log cannot grow the log");
  log_.resize(new_size);
  if (new_size < durable_log_size_) {
    durable_log_size_ = new_size;
    log_truncated_below_durable_ = true;
  }
}

void StableStorage::sync() {
  ++fsyncs_;
  dirty_keys_.clear();
  durable_log_size_ = log_.size();
  log_truncated_below_durable_ = false;
}

void StableStorage::lose_unsynced_writes() {
  // Keyed records: each unsynced write lost independently.
  for (const auto& [key, durable] : dirty_keys_) {
    if (!rng_.next_bool(config_.unsynced_key_loss)) continue;
    if (durable) {
      records_[key] = *durable;
    } else {
      records_.erase(key);
    }
  }
  dirty_keys_.clear();
  // Append log: the unsynced suffix is cut at a uniform point. cut ==
  // log_.size() models writes that reached the platter despite the missing
  // fsync; any smaller cut tears the record at the cut (discarded by the
  // recovery checksum along with everything after it).
  if (log_.size() > durable_log_size_) {
    const auto cut = static_cast<std::size_t>(rng_.next_in(
        static_cast<std::int64_t>(durable_log_size_),
        static_cast<std::int64_t>(log_.size())));
    log_.resize(cut);
  }
  durable_log_size_ = log_.size();
  log_truncated_below_durable_ = false;
}

std::string encode_fields(const std::vector<std::string>& fields) {
  std::string out;
  for (const auto& f : fields) {
    out += std::to_string(f.size());
    out += ':';
    out += f;
  }
  return out;
}

std::vector<std::string> decode_fields(const std::string& record) {
  std::vector<std::string> fields;
  std::size_t pos = 0;
  while (pos < record.size()) {
    const std::size_t colon = record.find(':', pos);
    CHT_ASSERT(colon != std::string::npos, "malformed storage record");
    const std::size_t len = std::stoull(record.substr(pos, colon - pos));
    CHT_ASSERT(colon + 1 + len <= record.size(), "malformed storage record");
    fields.push_back(record.substr(colon + 1, len));
    pos = colon + 1 + len;
  }
  return fields;
}

}  // namespace cht::sim
