// Fixture: rule D8 — stable-storage persistence completeness. Every key a
// stack writes must be read back on a recovery path (a function whose name
// contains recover/restart); a key read but never written is state nobody
// produces. Exercises exact keys, named-constant keys, prefix families and
// the append log.
#include <string>

namespace fixture {

inline constexpr const char* kKeyTerm = "term";
inline constexpr const char* kKeyVote = "vote";

struct Acceptor {
  struct Store& storage();

  void persist(int round) {
    storage().write(kKeyTerm, "1");
    storage().write(kKeyVote, "2");
    storage().write("orphan", "x");  // detlint-expect: D8
    storage().write("snap." + std::to_string(round), "s");
    storage().write("audit", "y");  // detlint-expect: D8
    storage().append("entry");
  }

  void tick() {
    // Negative for "never read", positive context for "never read on a
    // recovery path": this read is outside any recover*/on_restart.
    if (storage().read("audit")) {
    }
  }

  void on_restart() {
    if (storage().read(kKeyTerm)) {
    }
    if (storage().read(kKeyVote)) {
    }
    for (const std::string& key : storage().keys_with_prefix("snap.")) {
      // Dynamic-key reads (variable key) are recorded but never matched;
      // the covering prefix read above is what satisfies D8.
      if (storage().read(key)) {
      }
    }
    for (const std::string& rec : storage().log()) {
      (void)rec;
    }
    if (storage().read("ghost")) {  // detlint-expect: D8
    }
  }
};

}  // namespace fixture
