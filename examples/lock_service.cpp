// A replicated lock service (the paper's motivating "generic shared
// resource, such as ... a lock"; compare Chubby in the Megastore
// discussion, Section 5).
//
// Worker processes contend for a lock with try_acquire/release (RMW
// operations) while monitors watch the holder with local reads. Shows that
// the lock is linearizable: never two holders, and the holder() reads are
// consistent with the acquire/release history.
#include <iostream>
#include <memory>

#include "checker/linearizability.h"
#include "harness/cluster.h"
#include "object/lock_object.h"

int main() {
  using namespace cht;  // NOLINT: example brevity

  harness::ClusterConfig config;
  config.n = 5;
  config.seed = 77;
  config.delta = Duration::millis(10);
  harness::Cluster cluster(config, std::make_shared<object::LockObject>());
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));

  // Each process repeatedly tries to take the lock; on success it holds it
  // for 30 ms, then releases. Monitors read the holder continuously.
  int acquisitions = 0;
  int contentions = 0;
  for (int round = 0; round < 30; ++round) {
    for (int p = 0; p < cluster.n(); ++p) {
      const std::string who = "worker-" + std::to_string(p);
      cluster.submit(
          p, object::LockObject::try_acquire(who),
          [&, p, who](const object::Response& response) {
            if (response == "ok") {
              ++acquisitions;
              // Hold briefly, then release.
              cluster.replica(p).schedule_after(
                  Duration::millis(30), [&cluster, p, who] {
                    cluster.submit(p, object::LockObject::release(who));
                  });
            } else {
              ++contentions;
            }
          });
      // Monitor reads (local, free).
      cluster.submit((p + 2) % cluster.n(), object::LockObject::holder());
      cluster.run_for(Duration::millis(7));
    }
  }
  cluster.run_for(Duration::seconds(3));
  cluster.await_quiesce(Duration::seconds(30));

  std::cout << "lock service over " << cluster.n() << " replicas\n";
  std::cout << "  successful acquisitions: " << acquisitions << "\n";
  std::cout << "  contended attempts:      " << contentions << "\n";

  // The recorded reads + the per-callback RMWs must form a linearizable
  // lock history (note: the monitor reads are in the recorded history).
  const auto result =
      checker::check_linearizable(cluster.model(), cluster.history().ops());
  std::cout << "  holder() reads linearizable with the lock protocol: "
            << (result.linearizable ? "yes" : "NO") << "\n";

  // Observed holders from the reads.
  std::map<std::string, int> holder_counts;
  for (const auto& op : cluster.history().ops()) {
    if (op.completed() && op.op.kind == "holder" && !op.response->empty()) {
      ++holder_counts[*op.response];
    }
  }
  std::cout << "  holders observed by monitors:";
  for (const auto& [who, count] : holder_counts) {
    std::cout << " " << who << "(x" << count << ")";
  }
  std::cout << "\n";
  return result.linearizable ? 0 : 1;
}
