// E2 + E3 — Non-blocking reads and the 3*delta blocking bound (paper S3).
//
// Claims:
//   (E2) After the system stabilizes, reads at the leader never block; reads
//        at any other process block only when a *conflicting* RMW operation
//        is pending there.
//   (E3) A read that does block does so for at most 3*delta local time.
//
// We sweep the conflicting-write rate and report, per process class
// (leader / followers), the fraction of reads that blocked and the maximum
// blocking duration, as a multiple of delta. A second table sweeps delta
// itself to show the 3*delta scaling.
#include <iostream>
#include <memory>

#include "common/bench_util.h"
#include "object/kv_object.h"

namespace cht::bench {
namespace {

struct BlockingResult {
  std::int64_t leader_reads = 0;
  std::int64_t leader_blocked = 0;
  std::int64_t follower_reads = 0;
  std::int64_t follower_blocked = 0;
  Duration follower_max_block = Duration::zero();
};

BlockingResult run(Duration delta, Duration write_gap, bool conflicting,
                   std::uint64_t seed) {
  harness::ClusterConfig config;
  config.n = 5;
  config.seed = seed;
  config.delta = delta;
  harness::Cluster cluster(config, std::make_shared<object::KVObject>());
  cluster.await_steady_leader(Duration::seconds(5));
  cluster.run_for(Duration::seconds(1));
  const int leader = cluster.steady_leader();

  std::vector<core::Replica::Stats> before(cluster.n());
  for (int i = 0; i < cluster.n(); ++i) before[i] = cluster.replica(i).stats();

  const std::string read_key = "hot";
  const std::string write_key = conflicting ? "hot" : "cold";
  for (int step = 0; step < 300; ++step) {
    cluster.submit((leader + 1) % cluster.n(),
                   object::KVObject::put(write_key, std::to_string(step)));
    // Reads land while the write is (likely) still pending.
    cluster.run_for(delta / 2);
    for (int i = 0; i < cluster.n(); ++i) {
      cluster.submit(i, object::KVObject::get(read_key));
    }
    cluster.run_for(write_gap);
  }
  cluster.await_quiesce(Duration::seconds(60));

  BlockingResult result;
  for (int i = 0; i < cluster.n(); ++i) {
    const auto& s = cluster.replica(i).stats();
    const auto reads = s.reads_completed - before[i].reads_completed;
    const auto blocked = s.reads_blocked - before[i].reads_blocked;
    if (i == leader) {
      result.leader_reads += reads;
      result.leader_blocked += blocked;
    } else {
      result.follower_reads += reads;
      result.follower_blocked += blocked;
      result.follower_max_block =
          std::max(result.follower_max_block, s.max_read_block);
    }
  }
  return result;
}

std::string pct(std::int64_t part, std::int64_t whole) {
  if (whole == 0) return "-";
  return metrics::Table::num(100.0 * part / whole, 1) + "%";
}

}  // namespace
}  // namespace cht::bench

int main() {
  using namespace cht;
  using namespace cht::bench;

  print_experiment_header(
      "E2: which reads block (post-GST)",
      "Claim (paper S3): leader reads never block; follower reads block only\n"
      "when a pending RMW *conflicts*; non-conflicting writes never block\n"
      "reads. Workload: continuous writes, reads at every process.");

  {
    const Duration delta = Duration::millis(10);
    metrics::Table table({"writes", "leader blocked", "follower blocked",
                          "follower max block (x delta)"});
    for (const bool conflicting : {true, false}) {
      const auto r = run(delta, Duration::millis(15), conflicting, 7);
      table.add_row(
          {conflicting ? "conflicting (same key)" : "non-conflicting (other key)",
           pct(r.leader_blocked, r.leader_reads),
           pct(r.follower_blocked, r.follower_reads),
           metrics::Table::num(r.follower_max_block.to_micros() /
                                   static_cast<double>(delta.to_micros()),
                               2)});
    }
    table.print(std::cout);
  }

  print_experiment_header(
      "E3: blocked reads are bounded by 3*delta",
      "Claim (paper S3): a read that blocks does so for at most 3*delta.\n"
      "Sweep delta; the max observed block must stay below 3*delta.");

  {
    metrics::Table table({"delta (ms)", "max block (ms)", "max block / delta",
                          "bound 3*delta respected"});
    for (const std::int64_t delta_ms : {2, 5, 10, 20, 50}) {
      const Duration delta = Duration::millis(delta_ms);
      Duration worst = Duration::zero();
      for (std::uint64_t seed : {1ull, 2ull, 3ull}) {
        const auto r = run(delta, Duration::millis(delta_ms * 3 / 2), true, seed);
        worst = std::max(worst, r.follower_max_block);
      }
      table.add_row({metrics::Table::num(static_cast<std::int64_t>(delta_ms)),
                     ms2(worst),
                     metrics::Table::num(worst.to_micros() /
                                             static_cast<double>(delta.to_micros()),
                                         2),
                     worst <= 3 * delta ? "yes" : "NO"});
    }
    table.print(std::cout);
  }
  std::cout << "\nExpected shape: leader 0% blocked; follower blocking only in\n"
               "the conflicting row; max block / delta <= 3 at every delta.\n";
  return 0;
}
