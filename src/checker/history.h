// Operation histories for linearizability checking.
//
// A history is a set of operation records with real-time invocation and
// response instants. Records of operations that never completed (pending at
// the end of a run) have no response; the checker may linearize them with
// any effect or drop them entirely.
#pragma once

#include <cstdint>
#include <optional>
#include <string>
#include <vector>

#include "common/time.h"
#include "common/types.h"
#include "object/object.h"

namespace cht::checker {

struct HistoryOp {
  ProcessId process;
  object::Operation op;
  RealTime invoked;
  std::optional<RealTime> responded;  // nullopt => pending at end of run
  std::optional<object::Response> response;
  // Protocol-level id of the operation, when the submitting stack exposes
  // one (RMW paths do; local reads never enter a log and keep the invalid
  // default). The durability invariant joins on this id to ask "is every
  // acknowledged write still committed somewhere after the power cycles".
  OperationId id{};

  bool completed() const { return responded.has_value(); }
  Duration latency() const {
    return completed() ? *responded - invoked : Duration::max();
  }
};

// Collects operation records from client callbacks. Each begin() returns a
// token; complete it with the response when the operation's callback fires.
class HistoryRecorder {
 public:
  using Token = std::size_t;

  Token begin(ProcessId process, object::Operation op, RealTime now) {
    ops_.push_back(HistoryOp{process, std::move(op), now, std::nullopt,
                             std::nullopt, OperationId{}});
    return ops_.size() - 1;
  }

  void end(Token token, object::Response response, RealTime now) {
    ops_.at(token).responded = now;
    ops_.at(token).response = std::move(response);
  }

  // Attaches the protocol-level operation id once the submit path returns
  // it (after begin(), which only knows the client-facing request).
  void set_id(Token token, OperationId id) { ops_.at(token).id = id; }

  const std::vector<HistoryOp>& ops() const { return ops_; }
  std::vector<HistoryOp>& mutable_ops() { return ops_; }

  std::size_t completed_count() const {
    std::size_t n = 0;
    for (const auto& op : ops_) {
      if (op.completed()) ++n;
    }
    return n;
  }

 private:
  std::vector<HistoryOp> ops_;
};

}  // namespace cht::checker
