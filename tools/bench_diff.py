#!/usr/bin/env python3
"""Validate and diff BENCH_*.json artifacts (schema cht.bench.v1).

Usage:
  bench_diff.py validate ARTIFACT.json [ARTIFACT.json ...]
      Checks every artifact against the pinned schema. Exit 1 on any
      violation — CI's bench-smoke job runs this over all emitted artifacts.

  bench_diff.py diff OLD_DIR NEW_DIR
      Validates both sides, then prints per-metric deltas for artifacts
      present in both directories (matched by file name). Purely
      informational: exit code reflects schema validity only.

No third-party dependencies; the artifact format is plain JSON written by
src/metrics/json.cc (see docs/OBSERVABILITY.md for the field-by-field spec).
"""

import json
import pathlib
import sys

SCHEMA = "cht.bench.v1"
SCHEMA_VERSION = 1

ROOT_KEYS = [
    "schema",
    "schema_version",
    "name",
    "smoke",
    "sections",
    "metrics",
    "configs",
    "observability",
    "latencies",
]

LATENCY_KEYS = {"label", "count", "p50_us", "p90_us", "p99_us", "max_us", "mean_us"}
HISTOGRAM_KEYS = {"count", "sum", "min", "max", "mean", "p50", "p99", "buckets"}
MESSAGE_KEYS = {"sent", "delivered", "dropped", "by_type"}
CONFIG_KEYS = {"label", "n", "seed", "delta_us", "epsilon_us", "gst_us",
               "pre_gst_loss", "overrides"}


class Violation(Exception):
    pass


def _require(cond, msg):
    if not cond:
        raise Violation(msg)


def _check_number(value, where):
    _require(isinstance(value, (int, float)) and not isinstance(value, bool),
             f"{where}: expected a number, got {type(value).__name__}")


def validate_artifact(doc, name):
    _require(isinstance(doc, dict), f"{name}: root is not an object")
    for key in ROOT_KEYS:
        _require(key in doc, f"{name}: missing root key '{key}'")
    _require(doc["schema"] == SCHEMA,
             f"{name}: schema is {doc['schema']!r}, expected {SCHEMA!r}")
    _require(doc["schema_version"] == SCHEMA_VERSION,
             f"{name}: schema_version is {doc['schema_version']!r}, "
             f"expected {SCHEMA_VERSION}")
    _require(isinstance(doc["name"], str) and doc["name"],
             f"{name}: 'name' must be a non-empty string")
    _require(isinstance(doc["smoke"], bool), f"{name}: 'smoke' must be a bool")

    _require(isinstance(doc["sections"], list), f"{name}: 'sections' not a list")
    for i, section in enumerate(doc["sections"]):
        where = f"{name}: sections[{i}]"
        _require(isinstance(section, dict), f"{where} not an object")
        for key in ("id", "claim", "rows", "notes"):
            _require(key in section, f"{where} missing '{key}'")
        headers = section.get("headers", [])
        for row in section["rows"]:
            _require(isinstance(row, list), f"{where}: row not a list")
            if headers:
                _require(len(row) <= len(headers),
                         f"{where}: row wider than headers")

    _require(isinstance(doc["metrics"], dict), f"{name}: 'metrics' not an object")
    for key, value in doc["metrics"].items():
        _check_number(value, f"{name}: metrics['{key}']")

    _require(isinstance(doc["configs"], list), f"{name}: 'configs' not a list")
    for i, config in enumerate(doc["configs"]):
        where = f"{name}: configs[{i}]"
        _require(isinstance(config, dict), f"{where} not an object")
        missing = CONFIG_KEYS - config.keys()
        _require(not missing, f"{where} missing {sorted(missing)}")
        _require(isinstance(config["overrides"], dict),
                 f"{where}: 'overrides' not an object")

    _require(isinstance(doc["observability"], list),
             f"{name}: 'observability' not a list")
    for i, obs in enumerate(doc["observability"]):
        where = f"{name}: observability[{i}]"
        _require(isinstance(obs, dict), f"{where} not an object")
        _require("label" in obs, f"{where} missing 'label'")
        _require("messages" in obs, f"{where} missing 'messages'")
        missing = MESSAGE_KEYS - obs["messages"].keys()
        _require(not missing, f"{where}: messages missing {sorted(missing)}")
        for hname, hist in obs.get("histograms", {}).items():
            hwhere = f"{where}: histograms['{hname}']"
            missing = HISTOGRAM_KEYS - hist.keys()
            _require(not missing, f"{hwhere} missing {sorted(missing)}")
            for lower, count in hist["buckets"]:
                _check_number(lower, f"{hwhere}: bucket lower bound")
                _require(isinstance(count, int) and count > 0,
                         f"{hwhere}: bucket counts must be positive ints")

    _require(isinstance(doc["latencies"], list), f"{name}: 'latencies' not a list")
    for i, latency in enumerate(doc["latencies"]):
        where = f"{name}: latencies[{i}]"
        missing = LATENCY_KEYS - latency.keys()
        _require(not missing, f"{where} missing {sorted(missing)}")
        _require(latency["p50_us"] <= latency["p99_us"] <= latency["max_us"],
                 f"{where}: percentiles not monotone "
                 f"(p50={latency['p50_us']} p99={latency['p99_us']} "
                 f"max={latency['max_us']})")


def load(path):
    try:
        with open(path) as f:
            return json.load(f)
    except (OSError, json.JSONDecodeError) as e:
        raise Violation(f"{path}: unreadable or invalid JSON: {e}")


def cmd_validate(paths):
    failures = 0
    for path in paths:
        try:
            validate_artifact(load(path), str(path))
            print(f"ok       {path}")
        except Violation as e:
            print(f"INVALID  {e}")
            failures += 1
    return 1 if failures else 0


def flat_metrics(doc):
    """All comparable numbers in one artifact, as {dotted-name: value}."""
    out = dict(doc["metrics"])
    for latency in doc["latencies"]:
        for key in ("count", "p50_us", "p99_us", "max_us"):
            out[f"latency.{latency['label']}.{key}"] = latency[key]
    for obs in doc["observability"]:
        label = obs["label"]
        msgs = obs["messages"]
        for key in ("sent", "delivered", "dropped"):
            out[f"observability.{label}.messages.{key}"] = msgs[key]
        for cname, value in obs.get("counters", {}).items():
            out[f"observability.{label}.{cname}"] = value
    return out


def cmd_diff(old_dir, new_dir):
    old_dir, new_dir = pathlib.Path(old_dir), pathlib.Path(new_dir)
    rc = 0
    old_files = {p.name: p for p in sorted(old_dir.glob("*.json"))}
    new_files = {p.name: p for p in sorted(new_dir.glob("*.json"))}
    rc |= cmd_validate(list(old_files.values()) + list(new_files.values()))
    for name in sorted(old_files.keys() & new_files.keys()):
        old = flat_metrics(load(old_files[name]))
        new = flat_metrics(load(new_files[name]))
        print(f"\n== {name} ==")
        for key in sorted(old.keys() | new.keys()):
            a, b = old.get(key), new.get(key)
            if a is None:
                print(f"  + {key} = {b}")
            elif b is None:
                print(f"  - {key} (was {a})")
            elif a != b:
                pct = f" ({(b - a) / a * 100.0:+.1f}%)" if a else ""
                print(f"    {key}: {a} -> {b}{pct}")
    for name in sorted(new_files.keys() - old_files.keys()):
        print(f"\n== {name} == (new artifact)")
    for name in sorted(old_files.keys() - new_files.keys()):
        print(f"\n== {name} == (artifact disappeared)")
        rc = 1
    return rc


def main(argv):
    if len(argv) >= 3 and argv[1] == "validate":
        return cmd_validate(argv[2:])
    if len(argv) == 4 and argv[1] == "diff":
        return cmd_diff(argv[2], argv[3])
    print(__doc__, file=sys.stderr)
    return 2


if __name__ == "__main__":
    sys.exit(main(sys.argv))
