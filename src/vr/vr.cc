#include "vr/vr.h"

#include <algorithm>

#include "common/assert.h"
#include "common/logging.h"

namespace cht::vr {

namespace {
constexpr const char* kTag = "vr";
}

VrReplica::VrReplica(std::shared_ptr<const object::ObjectModel> model,
                     VrConfig config)
    : model_(std::move(model)), config_(config), gateway_(*this, &metrics_) {
  span_viewchange_ =
      metrics::Span(&metrics_.histogram("span.viewchange_us"));
  c_recoveries_ = &metrics_.counter("recoveries");
  c_recovered_entries_ = &metrics_.counter("recovery_log_replayed");
  span_recovery_ = metrics::Span(&metrics_.histogram("span.recovery_us"));

  client::ReplicaGateway::Hooks hooks;
  hooks.accepts_rmw = [this] { return is_primary(); };
  hooks.is_leader = [this] { return is_primary(); };
  hooks.leader_hint = [this] { return primary_of(view_).index(); };
  hooks.local_reads = false;  // VR reads take the full consensus round
  hooks.submit_rmw = [this](const OperationId& id,
                            const object::Operation& op) {
    // ids_in_log_ dedups retries whose entry already survives in our log.
    on_request(this->id(), msg::Request{id, op});
  };
  hooks.submit_read = [this](const object::Operation& op,
                             std::function<void(std::string)> done) {
    // VR treats reads like any other operation: run them through the log
    // under a replica-own id (invisible to client sessions).
    submit(op,
           [done = std::move(done)](const object::Response& r) { done(r); });
  };
  gateway_.set_hooks(std::move(hooks));
}

void VrReplica::end_viewchange_span() {
  const std::int64_t us = span_viewchange_.end(now_local().to_micros());
  if (us >= 0 && tracing()) {
    trace_event("span.viewchange", "us=" + std::to_string(us));
  }
}

void VrReplica::on_start() {
  state_ = model_->make_initial_state();
  seed_op_sequence();
  acked_op_.assign(cluster_size(), 0);
  if (is_primary()) {
    ++stats_.views_led;
    heartbeat_tick();
  } else {
    reset_view_timer();
  }
}

void VrReplica::on_restart() {
  span_recovery_.begin(now_local().to_micros());
  c_recoveries_->inc();
  state_ = model_->make_initial_state();
  seed_op_sequence();
  acked_op_.assign(cluster_size(), 0);
  status_ = Status::kRecovering;
  // The nonce distinguishes this recovery attempt from any earlier one; a
  // stale response cannot satisfy it. Drawn from the shared simulation
  // stream — safe, since restarts only exist on schedules that draw it.
  recovery_nonce_ = rng().next_u64();
  recovery_tick();
}

void VrReplica::seed_op_sequence() {
  // Fresh incarnations must never reuse an OperationId (requests are
  // deduplicated by id); namespacing by incarnation avoids collisions
  // without any stable storage — fitting, as VR keeps none.
  op_seq_ = static_cast<std::int64_t>(incarnation()) << 40;
}

void VrReplica::recovery_tick() {
  if (status_ != Status::kRecovering) return;
  broadcast(msg::kRecovery, msg::Recovery{recovery_nonce_});
  recovery_timer_ =
      schedule_after(config_.view_change_timeout, [this] { recovery_tick(); });
}

void VrReplica::on_recovery(ProcessId from, const msg::Recovery& m) {
  // Only normal-status replicas may answer (sec. 4.3): a view-changing or
  // recovering replica's view count could go backwards.
  if (status_ != Status::kNormal) return;
  msg::RecoveryResponse response{m.nonce, view_, false, {}, 0, 0};
  if (is_primary()) {
    response.is_primary = true;
    response.log = log_;
    response.op_number = op_number();
    response.commit_number = commit_number_;
  }
  send(from, msg::kRecoveryResponse, response);
}

void VrReplica::on_recovery_response(ProcessId from,
                                     const msg::RecoveryResponse& m) {
  if (status_ != Status::kRecovering || m.nonce != recovery_nonce_) return;
  recovery_responses_[from.index()] = m;
  maybe_finish_recovery();
}

void VrReplica::maybe_finish_recovery() {
  if (static_cast<int>(recovery_responses_.size()) < majority()) return;
  // Among the responses, find the newest view and require the response of
  // that view's primary (with its log). Without it we keep waiting: either
  // the primary's response is still in flight, or the view has moved on and
  // retries will collect responses for the newer view.
  std::int64_t max_view = 0;
  for (const auto& [sender, response] : recovery_responses_) {
    max_view = std::max(max_view, response.view);
  }
  const ProcessId primary = primary_of(max_view);
  auto it = recovery_responses_.find(primary.index());
  if (it == recovery_responses_.end() || it->second.view != max_view ||
      !it->second.is_primary) {
    return;
  }
  const msg::RecoveryResponse& from_primary = it->second;
  view_ = max_view;
  log_ = from_primary.log;
  ids_in_log_.clear();
  for (const auto& entry : log_) ids_in_log_.insert(entry.id);
  commit_number_ = 0;
  applied_ = 0;
  advance_commit(from_primary.commit_number);
  c_recovered_entries_->inc(static_cast<std::int64_t>(log_.size()));
  status_ = Status::kNormal;
  last_normal_view_ = view_;
  recovery_timer_.cancel();
  recovery_responses_.clear();
  const std::int64_t us = span_recovery_.end(now_local().to_micros());
  if (us >= 0 && tracing()) {
    trace_event("span.recovery", "us=" + std::to_string(us));
  }
  trace_event("recovery", "view=" + std::to_string(view_) +
                              " log=" + std::to_string(log_.size()));
  // Ack our adopted prefix to the primary and fall back into the follower
  // rhythm (the recovered replica is never the primary of max_view: a view
  // whose primary crashed moves on before its primary can be told about it).
  send(primary, msg::kPrepareOk, msg::PrepareOk{view_, op_number()});
  reset_view_timer();
}

// ===========================================================================
// Normal operation
// ===========================================================================

void VrReplica::on_request(ProcessId /*from*/, const msg::Request& request) {
  if (!is_primary()) return;  // client retries toward the current primary
  if (ids_in_log_.contains(request.id)) return;  // duplicate retry
  log_.push_back(VrLogEntry{request.id, request.op});
  ids_in_log_.insert(request.id);
  for (int i = 0; i < cluster_size(); ++i) {
    if (i != id().index()) send_prepare_to(ProcessId(i));
  }
  if (cluster_size() == 1) advance_commit(op_number());
}

void VrReplica::send_prepare_to(ProcessId to) {
  msg::Prepare prepare{view_, op_number(), {}, commit_number_};
  const std::int64_t from_index = acked_op_.at(to.index());
  for (std::int64_t i = from_index + 1; i <= op_number(); ++i) {
    prepare.entries.push_back(log_.at(static_cast<std::size_t>(i - 1)));
  }
  send(to, msg::kPrepare, prepare);
}

void VrReplica::on_prepare(ProcessId from, const msg::Prepare& prepare) {
  if (prepare.view < view_) return;
  if (prepare.view > view_ || status_ != Status::kNormal) {
    // We are behind: transfer state from the sender (the newer primary).
    // Entries beyond our commit point may conflict with the newer view's log
    // (e.g. we were an isolated primary still appending); drop them before
    // asking for the suffix (VR Revisited sec. 5.2).
    truncate_uncommitted_tail();
    send(from, msg::kGetState, msg::GetState{prepare.view, op_number()});
    return;
  }
  reset_view_timer();
  // Append the part of the suffix we miss. Within a view the primary assigns
  // op-numbers sequentially, so logs never diverge -- only lag.
  const std::int64_t first =
      prepare.op_number - static_cast<std::int64_t>(prepare.entries.size()) + 1;
  if (first > op_number() + 1) {
    send(from, msg::kGetState, msg::GetState{view_, op_number()});
    return;
  }
  for (std::int64_t i = first; i <= prepare.op_number; ++i) {
    if (i <= op_number()) continue;  // already have it
    const auto& entry =
        prepare.entries.at(static_cast<std::size_t>(i - first));
    log_.push_back(entry);
    ids_in_log_.insert(entry.id);
  }
  send(from, msg::kPrepareOk, msg::PrepareOk{view_, op_number()});
  advance_commit(std::min(prepare.commit_number, op_number()));
}

void VrReplica::on_prepare_ok(ProcessId from, const msg::PrepareOk& ok) {
  if (ok.view != view_ || !is_primary()) return;
  acked_op_[from.index()] = std::max(acked_op_[from.index()], ok.op_number);
  for (std::int64_t n = op_number(); n > commit_number_; --n) {
    int replicas = 1;  // self
    for (int i = 0; i < cluster_size(); ++i) {
      if (i != id().index() && acked_op_[i] >= n) ++replicas;
    }
    if (replicas >= majority()) {
      advance_commit(n);
      broadcast(msg::kCommit, msg::Commit{view_, commit_number_});
      break;
    }
  }
}

void VrReplica::on_commit(ProcessId from, const msg::Commit& commit) {
  if (commit.view < view_) return;
  if (commit.view > view_ || status_ != Status::kNormal) {
    truncate_uncommitted_tail();
    send(from, msg::kGetState, msg::GetState{commit.view, op_number()});
    return;
  }
  reset_view_timer();
  advance_commit(std::min(commit.commit_number, op_number()));
}

void VrReplica::advance_commit(std::int64_t to) {
  if (to > commit_number_) {
    commit_number_ = to;
    apply_committed();
  }
}

void VrReplica::apply_committed() {
  while (applied_ < commit_number_) {
    ++applied_;
    const VrLogEntry& entry = log_.at(static_cast<std::size_t>(applied_ - 1));
    const object::Response response = model_->apply(*state_, entry.op);
    if (entry.id.process == id()) {
      auto node = pending_ops_.extract(entry.id);
      if (!node.empty()) {
        node.mapped().retry_timer.cancel();
        ++stats_.ops_completed;
        if (node.mapped().callback) node.mapped().callback(response);
      }
    }
    // Every applied entry feeds the client session table in log order (also
    // after a view change or nonce recovery installs a longer log).
    gateway_.on_applied(entry.id, response);
  }
}

void VrReplica::heartbeat_tick() {
  if (!is_primary()) return;
  broadcast(msg::kCommit, msg::Commit{view_, commit_number_});
  // Nudge lagging replicas with their missing suffix.
  for (int i = 0; i < cluster_size(); ++i) {
    if (i != id().index() && acked_op_[i] < op_number()) {
      send_prepare_to(ProcessId(i));
    }
  }
  heartbeat_timer_ =
      schedule_after(config_.heartbeat_interval, [this] { heartbeat_tick(); });
}

// ===========================================================================
// View changes
// ===========================================================================

void VrReplica::reset_view_timer() {
  view_timer_.cancel();
  if (is_primary()) return;
  // Jitter to avoid lock-step view changes.
  const Duration timeout = Duration::micros(
      rng().next_in(config_.view_change_timeout.to_micros(),
                    config_.view_change_timeout.to_micros() * 3 / 2));
  view_timer_ = schedule_after(timeout, [this] { suspect_primary(); });
}

void VrReplica::suspect_primary() {
  ++stats_.view_changes_started;
  begin_view_change(view_ + 1);
}

void VrReplica::begin_view_change(std::int64_t new_view) {
  CHT_ASSERT(new_view > view_ || (new_view == view_ && status_ ==
                                      Status::kViewChange),
             "view change must move forward");
  if (new_view > view_) {
    view_ = new_view;
    svc_votes_.clear();
    dvc_received_.clear();
    dvc_sent_ = false;
  }
  // Span the whole leaderless stretch: successive ineffective views extend
  // one span rather than restarting it.
  if (!span_viewchange_.active()) {
    span_viewchange_.begin(now_local().to_micros());
  }
  status_ = Status::kViewChange;
  heartbeat_timer_.cancel();
  svc_votes_.insert(id().index());
  broadcast(msg::kStartViewChange, msg::StartViewChange{view_});
  // If this view also stalls (e.g. its static next-in-line primary is
  // partitioned away), move on to the next one -- the "succession of
  // ineffective views" the paper points out.
  view_timer_.cancel();
  const Duration timeout = Duration::micros(
      rng().next_in(config_.view_change_timeout.to_micros(),
                    config_.view_change_timeout.to_micros() * 3 / 2));
  view_timer_ = schedule_after(timeout, [this] {
    ++stats_.view_changes_started;
    begin_view_change(view_ + 1);
  });
  maybe_send_do_view_change();
}

void VrReplica::on_start_view_change(ProcessId from,
                                     const msg::StartViewChange& m) {
  if (m.view < view_) return;
  // Seeing evidence of a newer view change: join it.
  if (m.view > view_) begin_view_change(m.view);
  if (m.view == view_ && status_ == Status::kViewChange) {
    svc_votes_.insert(from.index());
    maybe_send_do_view_change();
  }
}

void VrReplica::maybe_send_do_view_change() {
  // Once a majority agrees the view changed, each participant sends its log
  // to the new (statically determined) primary, exactly once per view.
  if (status_ != Status::kViewChange || dvc_sent_ ||
      static_cast<int>(svc_votes_.size()) < majority()) {
    return;
  }
  dvc_sent_ = true;
  const msg::DoViewChange dvc{view_, log_, last_normal_view_, op_number(),
                              commit_number_};
  const ProcessId primary = primary_of(view_);
  if (primary == id()) {
    on_do_view_change(id(), dvc);
  } else {
    send(primary, msg::kDoViewChange, dvc);
  }
}

void VrReplica::on_do_view_change(ProcessId from, const msg::DoViewChange& m) {
  if (m.view < view_) return;
  if (m.view > view_) begin_view_change(m.view);
  if (primary_of(view_) != id() || status_ != Status::kViewChange) return;
  dvc_received_[from.index()] = m;
  maybe_become_primary();
}

void VrReplica::maybe_become_primary() {
  if (static_cast<int>(dvc_received_.size()) < majority()) return;
  // Select the log from the DoViewChange with the largest
  // (last_normal_view, op_number).
  const msg::DoViewChange* best = nullptr;
  std::int64_t max_commit = 0;
  for (const auto& [sender, dvc] : dvc_received_) {
    max_commit = std::max(max_commit, dvc.commit_number);
    if (best == nullptr ||
        std::pair(dvc.last_normal_view, dvc.op_number) >
            std::pair(best->last_normal_view, best->op_number)) {
      best = &dvc;
    }
  }
  log_ = best->log;
  ids_in_log_.clear();
  for (const auto& entry : log_) ids_in_log_.insert(entry.id);
  status_ = Status::kNormal;
  end_viewchange_span();
  last_normal_view_ = view_;
  acked_op_.assign(cluster_size(), 0);
  view_timer_.cancel();
  ++stats_.views_led;
  CHT_DEBUG(kTag) << id() << " is primary of view " << view_;
  broadcast(msg::kStartView,
            msg::StartView{view_, log_, op_number(), max_commit});
  advance_commit(std::max(commit_number_, max_commit));
  dvc_received_.clear();
  dvc_sent_ = false;
  heartbeat_tick();
}

void VrReplica::on_start_view(ProcessId from, const msg::StartView& m) {
  if (m.view < view_) return;
  view_ = m.view;
  log_ = m.log;
  ids_in_log_.clear();
  for (const auto& entry : log_) ids_in_log_.insert(entry.id);
  status_ = Status::kNormal;
  end_viewchange_span();
  last_normal_view_ = view_;
  svc_votes_.clear();
  dvc_received_.clear();
  dvc_sent_ = false;
  // The new log may be shorter than what we applied? Impossible: the chosen
  // log extends every committed prefix (majority intersection), and we only
  // apply committed entries.
  CHT_ASSERT(static_cast<std::int64_t>(log_.size()) >= applied_,
             "StartView log shorter than applied prefix");
  send(from, msg::kPrepareOk, msg::PrepareOk{view_, op_number()});
  advance_commit(std::min(m.commit_number, op_number()));
  reset_view_timer();
}

// ===========================================================================
// State transfer
// ===========================================================================

void VrReplica::on_get_state(ProcessId from, const msg::GetState& m) {
  if (status_ != Status::kNormal || m.view > view_) return;
  msg::NewState reply{view_, {}, op_number(), commit_number_};
  for (std::int64_t i = m.op_number + 1; i <= op_number(); ++i) {
    reply.suffix.push_back(log_.at(static_cast<std::size_t>(i - 1)));
  }
  send(from, msg::kNewState, reply);
}

void VrReplica::on_new_state(const msg::NewState& m) {
  if (m.view < view_) return;
  if (m.view > view_ || status_ != Status::kNormal) {
    // Crossing into a newer view: our uncommitted tail may hold different
    // operations at the op-numbers the new view committed. Only the committed
    // prefix is guaranteed to be a prefix of the sender's log.
    truncate_uncommitted_tail();
    view_ = m.view;
    status_ = Status::kNormal;
    last_normal_view_ = view_;
  }
  const std::int64_t first =
      m.op_number - static_cast<std::int64_t>(m.suffix.size()) + 1;
  if (first > op_number() + 1) return;  // still a gap; retries will fill
  for (std::int64_t i = first; i <= m.op_number; ++i) {
    if (i <= op_number()) continue;
    const auto& entry = m.suffix.at(static_cast<std::size_t>(i - first));
    log_.push_back(entry);
    ids_in_log_.insert(entry.id);
  }
  advance_commit(std::min(m.commit_number, op_number()));
  reset_view_timer();
}

void VrReplica::truncate_uncommitted_tail() {
  while (static_cast<std::int64_t>(log_.size()) > commit_number_) {
    ids_in_log_.erase(log_.back().id);
    log_.pop_back();
  }
}

// ===========================================================================
// Clients
// ===========================================================================

OperationId VrReplica::submit(object::Operation op, Callback callback) {
  ++stats_.ops_submitted;
  const OperationId id{this->id(), ++op_seq_};
  pending_ops_.try_emplace(
      id, PendingClientOp{std::move(op), std::move(callback),
                          sim::EventHandle()});
  client_send(id);
  return id;
}

void VrReplica::client_send(const OperationId& id) {
  auto it = pending_ops_.find(id);
  if (it == pending_ops_.end()) return;
  const msg::Request request{id, it->second.op};
  const ProcessId primary = primary_of(view_);
  if (primary == this->id()) {
    on_request(this->id(), request);
    it = pending_ops_.find(id);
    if (it == pending_ops_.end()) return;  // n == 1 completes synchronously
  } else {
    send(primary, msg::kRequest, request);
  }
  it->second.retry_timer =
      schedule_after(config_.client_retry, [this, id] { client_send(id); });
}

// ===========================================================================
// Dispatch
// ===========================================================================

void VrReplica::on_message(const sim::Message& message) {
  if (message.is(msg::kRecovery)) {
    on_recovery(message.from, message.as<msg::Recovery>());
    return;
  }
  if (message.is(msg::kRecoveryResponse)) {
    on_recovery_response(message.from, message.as<msg::RecoveryResponse>());
    return;
  }
  // A recovering replica takes no other protocol steps (sec. 4.3): its state
  // is unknown even to itself until the recovery quorum answers. Client
  // traffic is likewise ignored until then (the client retries elsewhere).
  if (status_ == Status::kRecovering) return;
  if (gateway_.handle(message)) return;
  if (message.is(msg::kRequest)) {
    on_request(message.from, message.as<msg::Request>());
  } else if (message.is(msg::kPrepare)) {
    on_prepare(message.from, message.as<msg::Prepare>());
  } else if (message.is(msg::kPrepareOk)) {
    on_prepare_ok(message.from, message.as<msg::PrepareOk>());
  } else if (message.is(msg::kCommit)) {
    on_commit(message.from, message.as<msg::Commit>());
  } else if (message.is(msg::kStartViewChange)) {
    on_start_view_change(message.from, message.as<msg::StartViewChange>());
  } else if (message.is(msg::kDoViewChange)) {
    on_do_view_change(message.from, message.as<msg::DoViewChange>());
  } else if (message.is(msg::kStartView)) {
    on_start_view(message.from, message.as<msg::StartView>());
  } else if (message.is(msg::kGetState)) {
    on_get_state(message.from, message.as<msg::GetState>());
  } else if (message.is(msg::kNewState)) {
    on_new_state(message.as<msg::NewState>());
  } else {
    CHT_UNREACHABLE("unknown message type for vr replica");
  }
}

}  // namespace cht::vr
