// Unified chaos matrix: every protocol stack under every nemesis profile,
// a few seeds each, through the shared invariant registry. This replaces the
// bespoke per-protocol chaos suites (test_raft_chaos, test_vr_chaos and the
// randomized half of test_robustness): one parameterized body, one invariant
// registry, and a repro path — any failing cell maps 1:1 onto a
// `chtread_fuzz --protocol=... --profile=... --seed-start=...` invocation.
//
// Deeper sweeps (hundreds of seeds per cell) run in the nightly fuzz job;
// this suite pins a small deterministic corner of the same space so every
// ctest run exercises all four stacks under faults.
#include <gtest/gtest.h>

#include <string>
#include <tuple>

#include "chaos/spec.h"
#include "chaos/sweep.h"

namespace cht {
namespace {

using Cell = std::tuple<std::string, std::string, std::uint64_t>;

class ChaosMatrixTest : public ::testing::TestWithParam<Cell> {};

TEST_P(ChaosMatrixTest, InvariantsHold) {
  const auto& [protocol, profile, seed] = GetParam();
  chaos::RunSpec spec;
  spec.protocol = protocol;
  spec.profile = profile;
  spec.seed = seed;
  spec.ops = 40;
  // Rotate the object model per seed so the matrix also covers the
  // unpartitionable single-object types (counter, bank, queue, lock).
  const auto& objects = chaos::known_objects();
  spec.object = objects[static_cast<std::size_t>(seed) % objects.size()];

  const chaos::RunResult result = chaos::run_one(spec);
  EXPECT_TRUE(result.checker_decided)
      << "linearizability search exhausted its state budget";
  std::string all;
  for (const auto& v : result.violations) all += "\n  " + v;
  EXPECT_TRUE(result.ok()) << "seed " << seed << " object " << spec.object
                           << " violations:" << all;
  EXPECT_GT(result.completed, 0u);
}

std::string cell_name(const ::testing::TestParamInfo<Cell>& info) {
  std::string name = std::get<0>(info.param) + "_" + std::get<1>(info.param) +
                     "_seed" + std::to_string(std::get<2>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    Matrix, ChaosMatrixTest,
    ::testing::Combine(::testing::ValuesIn(chaos::known_protocols()),
                       ::testing::ValuesIn(chaos::known_profiles()),
                       ::testing::Values(1u, 2u, 3u)),
    cell_name);

// Key-loss extremes: the default sweep runs power cycles at
// unsynced_key_loss = 0.5, which can mask bugs that only show at the
// boundaries. 1.0 is the adversarial disk (every unsynced keyed write dies
// with the crash — recovery must rebuild from the durable prefix alone);
// 0.0 is the lucky disk (everything unsynced survives — recovery must not
// be confused by state it never acknowledged). Both must stay linearizable
// and durable on every stack.
using LossCell = std::tuple<std::string, double, std::uint64_t>;

class KeyLossExtremesTest : public ::testing::TestWithParam<LossCell> {};

TEST_P(KeyLossExtremesTest, InvariantsHoldAtTheBoundary) {
  const auto& [protocol, key_loss, seed] = GetParam();
  chaos::RunSpec spec;
  spec.protocol = protocol;
  spec.profile = "power-cycle";
  spec.seed = seed;
  spec.ops = 40;
  spec.unsynced_key_loss = key_loss;
  const auto& objects = chaos::known_objects();
  spec.object = objects[static_cast<std::size_t>(seed) % objects.size()];

  const chaos::RunResult result = chaos::run_one(spec);
  EXPECT_TRUE(result.checker_decided)
      << "linearizability search exhausted its state budget";
  std::string all;
  for (const auto& v : result.violations) all += "\n  " + v;
  EXPECT_TRUE(result.ok()) << "seed " << seed << " key_loss " << key_loss
                           << " object " << spec.object << " violations:"
                           << all;
  EXPECT_GT(result.completed, 0u);
}

std::string loss_cell_name(const ::testing::TestParamInfo<LossCell>& info) {
  std::string name = std::get<0>(info.param) +
                     (std::get<1>(info.param) > 0.5 ? "_loss1" : "_loss0") +
                     "_seed" + std::to_string(std::get<2>(info.param));
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(
    LossExtremes, KeyLossExtremesTest,
    ::testing::Combine(::testing::ValuesIn(chaos::known_protocols()),
                       ::testing::Values(0.0, 1.0),
                       ::testing::Values(2u, 6u)),
    loss_cell_name);

}  // namespace
}  // namespace cht
