// ReplicaGateway: the replica-side endpoint of the client wire protocol.
//
// Each replica embeds one gateway and gives it stack-specific hooks (am I
// the leader, where do I think the leader is, how do I submit an RMW under
// a caller-chosen OperationId, how do I serve a read). The gateway then
// owns everything stack-independent about client traffic:
//
//   - request admission through the replicated SessionTable (fresh /
//     duplicate-answered-from-cache / stale-dropped), which is what makes
//     retried RMWs exactly-once even across leader changes and crashes;
//   - Redirect generation for requests this replica must not serve;
//   - reply routing: the stack reports *every* applied RMW (its own, other
//     replicas', recovered ones) through on_applied(); the gateway updates
//     the session table in apply order and answers the waiting client, if
//     any. Waiters are volatile — after a crash the client's retry hits the
//     rebuilt session table and gets the cached response instead.
//
// The gateway never sets timers and never retries; all retry/backoff logic
// lives in the Client. It is bounded: one session entry and at most one
// waiter per client.
#pragma once

#include <functional>
#include <map>
#include <string>
#include <utility>

#include "client/session.h"
#include "client/wire.h"
#include "common/types.h"
#include "metrics/registry.h"
#include "object/object.h"
#include "sim/process.h"

namespace cht::client {

class ReplicaGateway {
 public:
  struct Hooks {
    // May this replica inject an RMW into the replication path right now?
    // (chtread: always — any replica forwards to the leader; raft/vr: only
    // the leader/primary.)
    std::function<bool()> accepts_rmw;
    // Is this replica the leader/primary (gates leader_only reads)?
    std::function<bool()> is_leader;
    // Best-effort leader index for Redirects; -1 = unknown.
    std::function<int()> leader_hint;
    // Whether plain (non-leader_only) reads are served at any replica
    // (chtread's local lease reads) or must be redirected to the leader.
    bool local_reads = false;
    // Stack entry points. submit_rmw must tolerate duplicate ids (ids
    // already pending or in the log) by ignoring them.
    std::function<void(const OperationId&, const object::Operation&)>
        submit_rmw;
    std::function<void(const object::Operation&,
                       std::function<void(std::string)>)>
        submit_read;
  };

  // `metrics` may be null (metrics disabled); `host` must outlive the
  // gateway.
  ReplicaGateway(sim::Process& host, metrics::Registry* metrics)
      : host_(host), metrics_(metrics) {}

  void set_hooks(Hooks hooks) { hooks_ = std::move(hooks); }

  // Consumes client.request messages; returns false for everything else.
  bool handle(const sim::Message& message);

  // Called by the stack for every applied RMW, in apply order, with the
  // response the state machine produced. Safe (and required) during
  // crash-recovery replay: that is what rebuilds the session table.
  void on_applied(const OperationId& id, const std::string& response);

  const SessionTable& sessions() const { return sessions_; }

  // Bounds the session table to the k most recently applied clients
  // (0 = unbounded; see session.h for the eviction semantics). Must be set
  // identically at every replica — the table is replicated state.
  void set_session_capacity(std::size_t capacity) {
    sessions_.set_capacity(capacity);
  }

 private:
  void reply(ProcessId to, const OperationId& id, const std::string& response);
  void redirect(ProcessId to, const OperationId& id);
  bool is_client(const OperationId& id) const {
    return id.process.index() >= host_.cluster_size();
  }

  sim::Process& host_;
  metrics::Registry* metrics_;
  Hooks hooks_;
  SessionTable sessions_;
  // At most one outstanding RMW waiter per client (clients are sequential):
  // client index -> (op id, where to send the reply).
  std::map<int, std::pair<OperationId, ProcessId>> rmw_waiters_;
};

}  // namespace cht::client
