// Pinned seed corpus: chaos runs that once exposed real protocol bugs, or
// that are unusually eventful, replayed on every ctest run as regression
// guards. Each entry records why it earned its place; if one of these cells
// regresses, `chtread_fuzz --protocol=<p> --profile=<f> --object=<o>
// --seed-start=<s> --seeds=1 --artifact-dir=...` reproduces it exactly.
//
// The corpus also doubles as a determinism regression: every entry is run
// twice and must produce bit-identical fingerprints, which is the property
// the whole repro workflow rests on.
#include <gtest/gtest.h>

#include <string>
#include <vector>

#include "chaos/spec.h"
#include "chaos/sweep.h"

namespace cht::chaos {
namespace {

struct CorpusEntry {
  std::string protocol;
  std::string profile;
  std::string object;
  std::uint64_t seed;
  const char* why;
  // Unsynced-write loss probability for power cycles; 0.5 is the sweep
  // default, 0.0/1.0 pin the boundary disks.
  double key_loss = 0.5;
  // Whether operations route through networked client sessions (retries,
  // redirects, replica-side dedup) or the legacy direct-submit path. The
  // pre-client pins stay on the legacy path to preserve the schedules that
  // earned them their place; client-path pins exercise the session machinery
  // and the exactly-once invariant.
  bool client_path = false;
  // Clock-health guard (core/clock_guard.h). On (the sweep default) a
  // skew-allowing profile is checked with full linearizability plus
  // exposure-window excusing; off restores the legacy RMW-sub-history
  // accounting that blanket-tolerates stale reads.
  bool clock_guard = true;
};

const std::vector<CorpusEntry>& corpus() {
  static const std::vector<CorpusEntry> entries{
      // These three exposed the missing uncommitted-tail truncation on
      // view-crossing state transfer in vr.cc (VR Revisited Section 5.2):
      // committed-prefix divergence plus stale reads from a deposed primary.
      {"vr", "leader-hunter", "kv", 2, "vr state-transfer truncation bug"},
      {"vr", "leader-hunter", "kv", 5, "vr state-transfer truncation bug"},
      {"vr", "leader-hunter", "kv", 8, "vr state-transfer truncation bug"},
      // Same root cause surfaced through a different fault mix.
      {"vr", "clock-storm", "kv", 6, "vr state-transfer truncation bug"},
      {"vr", "clock-storm", "kv", 9, "vr state-transfer truncation bug"},
      // Exposed two raft-lease read bugs at once: the lease anchored at ack
      // *receive* time (overestimates by the reply flight time) and missing
      // leader stickiness (a partitioned node's vote request deposed the
      // leader inside its own lease window). A deposed-but-leased leader
      // served a stale read.
      {"raft-lease", "rolling-partitions", "kv", 144,
       "raft-lease anchor + stickiness stale read"},
      // High-churn seeds (many leadership changes) for the remaining stacks,
      // picked from sweep metrics: eventful but historically clean.
      {"chtread", "leader-hunter", "bank", 7, "high-churn coverage"},
      {"chtread", "rolling-partitions", "queue", 17, "high-churn coverage"},
      {"raft", "leader-hunter", "counter", 11, "high-churn coverage"},
      {"raft", "rolling-partitions", "lock", 29, "high-churn coverage"},
      // Exposed the recovering-counts-as-down bug: the nemesis crash budget
      // counted only crashed processes, so rolling bounces pushed a majority
      // of VR replicas into the recovering state simultaneously — a
      // permanent deadlock under VR Revisited sec. 4.3's failure assumption
      // (recovery needs a majority of *normal* replicas to answer). Fixed by
      // ClusterAdapter::recovering() + Nemesis::down_now().
      {"vr", "power-cycle", "kv", 4, "vr recovering-counts-as-down deadlock"},
      // Restart-heavy coverage for the storage-replay recovery paths: every
      // stack through the power-cycle profile, exercising unsynced-write
      // loss, log tearing and the durability invariant on each run.
      {"chtread", "power-cycle", "kv", 3, "power-cycle recovery coverage"},
      {"raft", "power-cycle", "bank", 5, "power-cycle recovery coverage"},
      {"raft-lease", "power-cycle", "counter", 9,
       "power-cycle recovery coverage"},
      {"vr", "power-cycle", "queue", 12, "power-cycle recovery coverage"},
      // Key-loss boundary pins, one eventful seed per extreme. 1.0 is the
      // failing-shaped disk: every unsynced write (promise, estimate, log
      // batch, ELS counter) dies with the crash, so any ack that left before
      // its covering sync would surface here as a durability violation. 0.0
      // is the opposite trap: state the replica never acked comes back.
      {"chtread", "power-cycle", "kv", 14, "key-loss=1.0 boundary pin", 1.0},
      {"raft", "power-cycle", "kv", 15, "key-loss=0.0 boundary pin", 0.0},
      // Crash-loop coverage: the same victim bounced repeatedly with
      // downtimes shorter than recovery, stressing incarnation-namespaced
      // OperationIds and mid-recovery re-crash handling.
      {"chtread", "crash-loop", "kv", 6, "crash-loop incarnation churn"},
      {"vr", "crash-loop", "counter", 8, "crash-loop mid-recovery re-crash"},
      // Client-path pins: operations travel through networked client
      // sessions, so retries, Redirect-chasing and replica-side dedup are
      // under the nemesis and the exactly-once invariant is live. Seeds
      // picked from sweep metrics as eventful-but-clean: the raft cell
      // retries 62 times across 118 redirects (leader churn mid-request,
      // including a deduplicated duplicate reply); the chtread cell rebuilds
      // session tables through four crash-loop recoveries; the vr cell
      // answers three retried RMWs from the session cache across power
      // cycles — a double-apply would show up as a wrong counter value.
      {"raft", "leader-hunter", "kv", 7, "client retry/redirect churn", 0.5,
       true},
      {"chtread", "crash-loop", "kv", 3,
       "session-table rebuild through crash loops", 0.5, true},
      {"vr", "power-cycle", "counter", 6,
       "session dedup across power cycles", 0.5, true},
      // Skew-boundary pins for the clock-health guard. The guard-on cells
      // are checked with full linearizability under exposure-window
      // accounting (any stale read outside the injection..heal+drain window
      // fails the run); the guard-off twin of the first cell pins the legacy
      // RMW-sub-history accounting on the *same schedule*, so a behaviour
      // drift between the two modes shows up as exactly one cell flipping.
      {"chtread", "clock-storm", "kv", 21,
       "guard-on exposure-window accounting pin"},
      {"chtread", "clock-storm", "kv", 21,
       "guard-off legacy stale-read accounting pin", 0.5, false, false},
      {"raft-lease", "degraded-reads", "kv", 5,
       "lease demotion to ReadIndex under pure-skew nemesis"},
  };
  return entries;
}

class ChaosCorpusTest : public ::testing::TestWithParam<CorpusEntry> {};

TEST_P(ChaosCorpusTest, PinnedSeedStaysClean) {
  const CorpusEntry& entry = GetParam();
  RunSpec spec;
  spec.protocol = entry.protocol;
  spec.profile = entry.profile;
  spec.object = entry.object;
  spec.seed = entry.seed;
  spec.ops = 40;
  spec.unsynced_key_loss = entry.key_loss;
  spec.client_path = entry.client_path;
  spec.clock_guard = entry.clock_guard;

  const RunResult first = run_one(spec);
  EXPECT_TRUE(first.checker_decided) << entry.why;
  std::string all;
  for (const auto& v : first.violations) all += "\n  " + v;
  EXPECT_TRUE(first.ok()) << entry.why << " regressed:" << all;
  EXPECT_GT(first.completed, 0u);

  // Bit-identical replay: the exact property `chtread_fuzz --repro` checks.
  const RunResult second = run_one(spec);
  EXPECT_EQ(first.fingerprint, second.fingerprint)
      << "determinism broke: same spec, different fingerprint";
}

std::string entry_name(const ::testing::TestParamInfo<CorpusEntry>& info) {
  std::string name = info.param.protocol + "_" + info.param.profile + "_" +
                     info.param.object + "_seed" +
                     std::to_string(info.param.seed);
  if (info.param.client_path) name += "_client";
  if (!info.param.clock_guard) name += "_noguard";
  for (char& c : name) {
    if (c == '-') c = '_';
  }
  return name;
}

INSTANTIATE_TEST_SUITE_P(Corpus, ChaosCorpusTest,
                         ::testing::ValuesIn(corpus()), entry_name);

}  // namespace
}  // namespace cht::chaos
